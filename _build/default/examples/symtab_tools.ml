(** PostScript programs manipulating PostScript symbol tables (Sec. 7).

    The paper: "ldb's PostScript symbol tables can be manipulated by
    PostScript programs.  For example, we wrote PostScript code that reads
    the top-level dictionary for the nub and constructs a Modula-3
    description of one of the nub's machine-dependent data structures."

    Here a PostScript program — not OCaml — walks a unit's procedure
    entries and generates two artifacts: a human-readable interface report
    and a C header of extern declarations, using nothing but the ordinary
    dictionary operators and the same interpreter ldb itself runs on.

    Run with: dune exec examples/symtab_tools.exe *)

module I = Ldb_pscript.Interp
open Ldb_ldb

let prog =
  {|
struct config { int verbosity; int limit; };
static struct config cfg;
double rate = 0.25;

int setup(int verbosity, int limit)
{
    cfg.verbosity = verbosity;
    cfg.limit = limit;
    return 0;
}
double charge(int units, double base) { return units * base * rate; }
int main(void) { setup(1, 10); printf("%g\n", charge(8, 2.0)); return 0; }
|}

(* The tool itself, written in the debugger's PostScript dialect: walk the
   unit result dictionary, visiting each procedure entry and its formals
   chain (the Fig. 2 uplink tree). *)
let report_tool =
  {|
% --- symbol-table report generator (pure PostScript) ---
/ReportProc {              % procentry ->
  4 dict begin
  /&p exch def
  (  ) Put &p /type get /decl get &p /name get DeclSubst Put Newline
  % walk the formals chain (parameters link via /uplink)
  &p /formals get
  {                         % entry-or-null
    dup null eq { pop exit } if
    dup /kind get (parameter) ne { pop exit } if
    (      param ) Put
    dup /type get /decl get 1 index /name get DeclSubst Put Newline
    dup /uplink known { /uplink get } { pop exit } ifelse
  } loop
  (      stopping points: ) Put &p /loci get length cvs Put
  (   frame size: ) Put &p /framesize get cvs Put Newline
  end
} def

/Report {                  % unitresult ->
  (=== procedures ===) Put Newline
  /procs get { ReportProc } forall
} def

/CHeader {                 % unitresult ->
  (/* generated from the PostScript symbol table */) Put Newline
  /externs get {
    exch pop              % drop the name key, keep the entry
    dup /kind get (procedure) eq {
      dup /type get /decl get exch /name get DeclSubst Put (;) Put Newline
    } { pop } ifelse
  } forall
} def
|}

let () =
  let d = Ldb.create () in
  let _proc, tg = Host.spawn d ~arch:Sparc ~name:"billing" [ ("billing.c", prog) ] in
  Ldb.force_symbols d tg;
  Printf.printf "== a PostScript program reads the symbol table and reports:\n\n";
  let output =
    Ldb.with_target d tg (fun () ->
        I.run_string d.Ldb.interp report_tool;
        ignore (I.take_output d.Ldb.interp);
        I.run_string d.Ldb.interp "UNITRESULT$billing_c Report";
        I.take_output d.Ldb.interp)
  in
  print_string output;
  Printf.printf "\n== and generates a C header from the same dictionaries:\n\n";
  let header =
    Ldb.with_target d tg (fun () ->
        I.run_string d.Ldb.interp "UNITRESULT$billing_c CHeader";
        I.take_output d.Ldb.interp)
  in
  print_string header;
  Printf.printf
    "\nNo OCaml touched the symbol data above: the report and the header\n\
     are produced by PostScript procedures over the compiler-emitted\n\
     dictionaries, interpreted by the same engine that prints values and\n\
     evaluates expressions inside ldb.\n"
