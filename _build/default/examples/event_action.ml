(** Event-action debugging above ldb (Sec. 6, 7.1).

    The paper argues event-action tools (Dalek-style) are "well suited for
    implementation above ldb" through a client interface, and that
    event-driven debugging subsumes conditional breakpoints as a special
    case.  This example builds a tiny monitor on the client interface:

    - a conditional breakpoint that only fires when a predicate holds in
      the stopped frame;
    - an action that logs state and keeps the target running;
    - a data watchpoint found by single-stepping (the Sec. 7.1 protocol
      extension).

    Run with: dune exec examples/event_action.exe *)

open Ldb_ldb

let prog =
  {|
int balance = 100;

int withdraw(int amount)
{
    balance = balance - amount;
    return balance;
}

int main(void)
{
    int day;
    for (day = 1; day <= 8; day++)
        withdraw(day * 7);
    printf("final %d\n", balance);
    return 0;
}
|}

let () =
  let arch = Ldb_machine.Arch.M68k in
  let d = Ldb.create () in
  let proc, tg = Host.spawn d ~arch ~name:"bank" [ ("bank.c", prog) ] in
  let client = Client.create d tg in

  (* event: withdraw called with amount > 40; action: log and resume *)
  let addr = Ldb.break_function d tg "withdraw" in
  Client.break_when client ~addr (fun fr -> Ldb.read_int_var d tg fr "amount" > 40);
  Printf.printf "== monitoring withdraw(amount > 40)\n";
  let overdraft = ref None in
  let ev =
    Client.run client ~handler:(fun ev ->
        match ev with
        | Client.Ev_breakpoint { frame; _ } ->
            let amount = Ldb.read_int_var d tg frame "amount" in
            Printf.printf "   event: withdraw(%d), balance=%s -- logged, resuming\n" amount
              (Ldb.print_value d tg frame "balance");
            if !overdraft = None then overdraft := Some amount;
            Client.Resume
        | Client.Ev_signal { signal; _ } ->
            Printf.printf "   unexpected %s\n" (Ldb_machine.Signal.name signal);
            Client.Pause
        | Client.Ev_exit n ->
            Printf.printf "   target exited with %d\n" n;
            Client.Pause)
  in
  ignore ev;
  Printf.printf "   first large withdrawal seen: %s\n"
    (match !overdraft with Some a -> string_of_int a | None -> "none");
  Printf.printf "   program output: %s\n" (Host.output proc);

  (* second run: find the instant balance goes negative with a watchpoint *)
  Printf.printf "== second target: watch the balance cross zero\n";
  let _proc2, tg2 = Host.spawn d ~arch ~name:"bank2" [ ("bank.c", prog) ] in
  let client2 = Client.create d tg2 in
  let bp = Ldb.break_function d tg2 "main" in
  ignore (Ldb.continue_ d tg2);
  Ldb.clear_breakpoint tg2 ~addr:bp;
  let fr = Ldb.top_frame d tg2 in
  let baddr =
    match Ldb.resolve d tg2 fr "balance" with
    | Some e -> (
        match Ldb.location_of d tg2 fr e with
        | Ldb_amemory.Amemory.Absolute { offset; _ } -> offset
        | _ -> failwith "no address")
    | None -> failwith "balance not found"
  in
  let rec watch_until_negative () =
    match Client.watch client2 ~addr:baddr () with
    | Client.Ev_exit _ -> Printf.printf "   never went negative\n"
    | _ ->
        let fr = Ldb.top_frame d tg2 in
        let v = Ldb.read_int_var d tg2 fr "balance" in
        if v < 0 then
          Printf.printf "   balance first negative (%d) in %s, day=%s\n" v
            (Ldb.frame_function d tg2 fr)
            (match Ldb.backtrace d tg2 with
            | _ :: caller :: _ -> Ldb.print_value d tg2 caller "day"
            | _ -> "?")
        else begin
          Printf.printf "   balance now %d, watching on\n" v;
          watch_until_negative ()
        end
  in
  watch_until_negative ()
