examples/postmortem.ml: Frame Host Int32 Ldb Ldb_amemory Ldb_ldb Ldb_machine List Printf Symtab
