examples/multi_target.ml: Breakpoint Host Ldb Ldb_ldb Printf
