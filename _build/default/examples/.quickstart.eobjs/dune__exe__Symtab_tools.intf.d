examples/symtab_tools.mli:
