examples/expr_eval.mli:
