examples/quickstart.mli:
