examples/postmortem.mli:
