examples/cross_debug.mli:
