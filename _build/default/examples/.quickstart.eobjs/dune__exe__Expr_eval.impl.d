examples/expr_eval.ml: Host Ldb Ldb_cc Ldb_exprserver Ldb_ldb Ldb_machine List Printf
