examples/event_action.ml: Client Host Ldb Ldb_amemory Ldb_ldb Ldb_machine Printf
