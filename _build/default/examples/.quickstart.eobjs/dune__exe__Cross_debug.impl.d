examples/cross_debug.ml: Host Ldb Ldb_ldb Ldb_machine List Printf
