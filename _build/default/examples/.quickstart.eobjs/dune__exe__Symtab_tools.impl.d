examples/symtab_tools.ml: Host Ldb Ldb_ldb Ldb_pscript Printf
