examples/quickstart.ml: Frame Hashtbl Host Ldb Ldb_ldb Ldb_link Ldb_machine Ldb_pscript List Printf String Symtab
