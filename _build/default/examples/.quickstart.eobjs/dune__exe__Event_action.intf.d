examples/event_action.mli:
