(** The expression server (Sec. 3, Fig. 3).

    ldb treats each expression as a string: it sends it to a variant of
    the compiler front end running behind a pair of pipes; unknown
    identifiers come back as "/x ExpressionServer.lookup" requests that
    ldb answers from the PostScript symbol tables; the server rewrites its
    IR tree as PostScript, which ldb interprets against the stopped
    frame's abstract memory.

    Run with: dune exec examples/expr_eval.exe *)

open Ldb_ldb

let prog =
  {|
struct vec { int x; int y; };
static int weights[8];
double factor = 1.5;

int work(int n)
{
    struct vec v;
    int i;
    v.x = n; v.y = 2 * n;
    for (i = 0; i < 8; i++) weights[i] = 10 * i;
    printf("working\n");
    return v.x + v.y;
}
int main(void) { return work(6) == 18 ? 0 : 1; }
|}

let () =
  let arch = Ldb_machine.Arch.Sparc in
  let d = Ldb.create () in
  let _proc, tg = Host.spawn d ~arch ~name:"expr" [ ("work.c", prog) ] in
  ignore (Ldb.break_line d tg ~line:13);  (* the printf: locals all set *)
  ignore (Ldb.continue_ d tg);
  let fr = Ldb.top_frame d tg in
  let sess = Ldb_exprserver.Eval.start ~arch in

  Printf.printf "== evaluating C expressions through the expression server:\n";
  List.iter
    (fun e ->
      match Ldb_exprserver.Eval.evaluate d tg fr sess e with
      | v, ty -> Printf.printf "   %-28s = %-10s : %s\n" e v ty
      | exception Ldb_exprserver.Eval.Error m -> Printf.printf "   %-28s ! %s\n" e m)
    [
      "n";
      "v.x * v.y";
      "weights[n]";
      "weights[v.x - n + 3]";
      "factor";
      "factor * n";
      "n > 4 && weights[1] == 10";
      "v.y = v.y + 100";          (* assignment through the server *)
      "v.y";
      "work(1)";                  (* calls are future work, as in the paper *)
    ];

  Printf.printf
    "\nEach evaluation is: ldb sends the text; the server parses and\n\
     type-checks, asking ldb for each unknown symbol; the IR tree is\n\
     rewritten as PostScript (%d nominal IR operators); ldb interprets it\n\
     until ExpressionServer.result stops the pipe.\n"
    Ldb_cc.Ir.operator_count
