(** Cross-architecture debugging (Sec. 1, 4.1).

    The same machine-independent debugger code drives a big-endian
    SIM-SPARC and a little-endian SIM-VAX: the nub re-serializes values
    little-endian on the wire, and the register memory turns sub-register
    accesses into full-register ones, so byte order never reaches the
    debugger proper.  "Cross-architecture debugging is identical to
    single-architecture debugging."

    Run with: dune exec examples/cross_debug.exe *)

open Ldb_ldb

let prog =
  {|
struct sample { char tag; short level; int count; double mean; };

int probe(int seed)
{
    struct sample s;
    char low;
    s.tag = 'S';
    s.level = seed * 3;
    s.count = seed * 1000 + 99;
    s.mean = seed / 4.0;
    low = s.count;            /* low byte of a 32-bit value */
    printf("probe %d %d\n", s.count, low);
    return s.count;
}
int main(void) { return probe(7) > 0 ? 0 : 1; }
|}

let inspect d tg name =
  (* this function is identical for every target: that is the point *)
  ignore (Ldb.break_line d tg ~line:13);  (* printf line: everything is set *)
  ignore (Ldb.continue_ d tg);
  let fr = Ldb.top_frame d tg in
  Printf.printf "  [%s / %s-endian]\n" name
    (match Ldb_machine.Arch.endian tg.Ldb.tg_arch with Big -> "big" | Little -> "little");
  Printf.printf "    s     = %s\n" (Ldb.print_value d tg fr "s");
  Printf.printf "    low   = %s   (least significant byte of s.count, via the register/alias machinery)\n"
    (Ldb.print_value d tg fr "low");
  Printf.printf "    seed  = %s\n" (Ldb.print_value d tg fr "seed");
  ignore (Ldb.continue_ d tg)

let () =
  (* one ldb instance; two architectures with opposite byte orders *)
  let d = Ldb.create () in
  Printf.printf "== one debugger, two byte orders\n";
  List.iter
    (fun arch ->
      let name = Ldb_machine.Arch.name arch in
      let _proc, tg = Host.spawn d ~arch ~name [ ("probe.c", prog) ] in
      inspect d tg name)
    [ Ldb_machine.Arch.Sparc; Ldb_machine.Arch.Vax ];
  Printf.printf
    "\nThe inspection code above is one function: no per-architecture branches.\n\
     The debugger can change architectures dynamically because machine-dependent\n\
     names are rebound by pushing a per-target PostScript dictionary (Sec. 5).\n"
