(** 80-bit extended-precision floats, as on the Motorola 68020's FPU.

    The paper notes that the 68020 port needs assembly code to fetch and
    store 80-bit values; our SIM-68020 stores extended floats in the m68k
    memory format (big-endian: 2-byte sign+exponent, 2 bytes of zero
    padding is NOT used here — we use the packed 10-byte form: sexp(2) then
    64-bit mantissa with explicit integer bit).

    OCaml floats are IEEE doubles, so conversion double->extended->double is
    exact; extended values produced by the simulated FPU are therefore
    doubles carried in extended format, which is faithful enough for the
    debugger experiments (what matters is that the {e format in target
    memory} is 10 bytes with an explicit-integer-bit layout the debugger
    must decode). *)

type repr = { sign : int; exponent : int; mantissa : int64 }
(** [exponent] is the biased 15-bit exponent; [mantissa] has the explicit
    integer bit at bit 63. *)

let bias80 = 16383
let bias64 = 1023

(** Decompose an OCaml double into the extended representation. *)
let of_float (x : float) : repr =
  let bits = Int64.bits_of_float x in
  let sign = Int64.to_int (Int64.shift_right_logical bits 63) land 1 in
  let exp64 = Int64.to_int (Int64.shift_right_logical bits 52) land 0x7ff in
  let frac = Int64.logand bits 0xF_FFFF_FFFF_FFFFL in
  if exp64 = 0 && frac = 0L then { sign; exponent = 0; mantissa = 0L }
  else if exp64 = 0x7ff then
    (* inf / nan *)
    { sign; exponent = 0x7fff; mantissa = Int64.logor Int64.min_int (Int64.shift_left frac 11) }
  else if exp64 = 0 then begin
    (* subnormal double: normalize *)
    let rec norm f e =
      if Int64.logand f 0x10_0000_0000_0000L <> 0L then (f, e)
      else norm (Int64.shift_left f 1) (e - 1)
    in
    let f, e = norm frac (1 - bias64) in
    let mant = Int64.logor Int64.min_int (Int64.shift_left (Int64.logand f 0xF_FFFF_FFFF_FFFFL) 11) in
    { sign; exponent = e + bias80; mantissa = mant }
  end
  else
    let e = exp64 - bias64 + bias80 in
    let mant = Int64.logor Int64.min_int (Int64.shift_left frac 11) in
    { sign; exponent = e; mantissa = mant }

(** Recompose; values outside double range become infinities. *)
let to_float (r : repr) : float =
  if r.exponent = 0 && r.mantissa = 0L then if r.sign = 1 then -0.0 else 0.0
  else if r.exponent = 0x7fff then
    if Int64.logand r.mantissa 0x7FFF_FFFF_FFFF_FFFFL = 0L then
      if r.sign = 1 then neg_infinity else infinity
    else nan
  else
    let e = r.exponent - bias80 + bias64 in
    if e >= 0x7ff then if r.sign = 1 then neg_infinity else infinity
    else if e <= 0 then if r.sign = 1 then -0.0 else 0.0 (* flush tiny to zero *)
    else
      let frac = Int64.logand (Int64.shift_right_logical r.mantissa 11) 0xF_FFFF_FFFF_FFFFL in
      let bits =
        Int64.logor
          (Int64.logor
             (Int64.shift_left (Int64.of_int r.sign) 63)
             (Int64.shift_left (Int64.of_int e) 52))
          frac
      in
      Int64.float_of_bits bits

(** Serialize to the 10-byte m68k memory format (big-endian within the
    record: sign+exponent word first, then the 8 mantissa bytes most
    significant first). *)
let to_bytes (x : float) : string =
  let r = of_float x in
  let b = Bytes.create 10 in
  let se = (r.sign lsl 15) lor (r.exponent land 0x7fff) in
  Bytes.set b 0 (Char.chr ((se lsr 8) land 0xff));
  Bytes.set b 1 (Char.chr (se land 0xff));
  for i = 0 to 7 do
    let byte =
      Int64.to_int (Int64.logand (Int64.shift_right_logical r.mantissa (8 * (7 - i))) 0xffL)
    in
    Bytes.set b (2 + i) (Char.chr byte)
  done;
  Bytes.to_string b

let of_bytes (s : string) : float =
  if String.length s <> 10 then invalid_arg "Float80.of_bytes";
  let se = (Char.code s.[0] lsl 8) lor Char.code s.[1] in
  let mant = ref 0L in
  for i = 0 to 7 do
    mant := Int64.logor (Int64.shift_left !mant 8) (Int64.of_int (Char.code s.[2 + i]))
  done;
  to_float { sign = (se lsr 15) land 1; exponent = se land 0x7fff; mantissa = !mant }
