(** The four simulated target architectures.

    They stand in for the paper's MIPS R3000, SPARC, Motorola 68020 and VAX,
    and differ along exactly the axes the paper calls out as sources of
    machine dependence: byte order, presence of a frame pointer, register
    file shape, instruction widths, trap/no-op encodings, and floating-point
    formats (the 68020 has 80-bit extended floats). *)

type t = Mips | Sparc | M68k | Vax

let all = [ Mips; Sparc; M68k; Vax ]

let name = function
  | Mips -> "mips"
  | Sparc -> "sparc"
  | M68k -> "m68k"
  | Vax -> "vax"

let of_name = function
  | "mips" -> Some Mips
  | "sparc" -> Some Sparc
  | "m68k" | "68020" -> Some M68k
  | "vax" -> Some Vax
  | _ -> None

let endian : t -> Ldb_util.Endian.order = function
  | Mips | Sparc | M68k -> Big
  | Vax -> Little

(** General-purpose register count. *)
let nregs = function Mips | Sparc -> 32 | M68k | Vax -> 16

(** Floating-point register count. *)
let nfregs = function Mips | Sparc -> 16 | M68k | Vax -> 8

(** Widest floating value the architecture manipulates, in bits. *)
let max_float_bits = function M68k -> 80 | Mips | Sparc | Vax -> 64

(** Does the architecture maintain a real frame pointer?  The SIM-MIPS, like
    the real R3000 under lcc, does not; the debugger must consult the runtime
    procedure table to walk its stack. *)
let has_frame_pointer = function Mips -> false | Sparc | M68k | Vax -> true

(** Do loads have an architectural delay slot (result not visible to the next
    instruction)?  True only for SIM-MIPS; the assembler's scheduler must
    fill or pad the slot. *)
let has_load_delay = function Mips -> true | Sparc | M68k | Vax -> false

let pp ppf a = Fmt.string ppf (name a)
let equal (a : t) b = a = b
