lib/machine/arch.ml: Fmt Ldb_util
