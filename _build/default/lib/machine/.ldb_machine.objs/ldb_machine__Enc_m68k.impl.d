lib/machine/enc_m68k.ml: Arch Bytes Encoder Fmt Insn Ldb_util Optab
