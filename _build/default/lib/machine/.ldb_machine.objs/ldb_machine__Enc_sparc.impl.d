lib/machine/enc_sparc.ml: Arch Encoder Fmt Insn Int32 Optab
