lib/machine/enc_vax.ml: Arch Array Buffer Char Encoder Fmt Insn Optab String
