lib/machine/target.ml: Arch Array Enc_m68k Enc_mips Enc_sparc Enc_vax Encoder Insn List Printf
