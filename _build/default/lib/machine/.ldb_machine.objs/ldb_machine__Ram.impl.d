lib/machine/ram.ml: Buffer Bytes Char Endian Int32 Int64 Ldb_util String
