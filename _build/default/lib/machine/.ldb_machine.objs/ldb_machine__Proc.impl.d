lib/machine/proc.ml: Buffer Char Cpu Int32 Int64 Printf Ram Signal String Target
