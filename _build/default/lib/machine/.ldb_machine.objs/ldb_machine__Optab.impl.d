lib/machine/optab.ml: Array Hashtbl Insn List
