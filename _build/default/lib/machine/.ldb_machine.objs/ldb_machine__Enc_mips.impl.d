lib/machine/enc_mips.ml: Arch Encoder Fmt Insn Int32 Optab
