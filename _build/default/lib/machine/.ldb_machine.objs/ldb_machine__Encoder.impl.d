lib/machine/encoder.ml: Arch Bytes Insn Int32 Ldb_util
