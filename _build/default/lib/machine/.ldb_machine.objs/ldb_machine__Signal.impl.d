lib/machine/signal.ml: Fmt
