lib/machine/float80.ml: Bytes Char Int64 String
