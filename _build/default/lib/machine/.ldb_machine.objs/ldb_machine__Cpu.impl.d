lib/machine/cpu.ml: Arch Array Float80 Insn Int32 Int64 Ldb_util Optab Ram Signal Target
