lib/machine/rpt.ml: Int32 List Ram
