(** SIM-SPARC instruction encoding: fixed 4-byte big-endian words like
    SIM-MIPS, but with a different field layout — register fields live in
    the top bits, the shape code sits in bits 9..16, and the low 9 bits hold
    a format tag (0x1CA).  The no-op is the real SPARC [nop] (0x01000000)
    and the trap is the real [ta 1] (0x91D02001). *)

open Optab

let arch = Arch.Sparc

let format_tag = 0x1CA
let nop_word = 0x01000000l
let break_word = 0x91D02001l

let nop_bytes = Encoder.be32_to_string nop_word
let break_bytes = Encoder.be32_to_string break_word

let length (i : Insn.t) =
  match i with
  | Nop | Break -> 4
  | _ ->
      let s, _, _, _, _ = fields i in
      if has_imm s then 8 else 4

let pack_word code a b c =
  let ( <| ) x s = Int32.shift_left (Int32.of_int x) s in
  Int32.logor
    (Int32.logor (a <| 27) (b <| 22))
    (Int32.logor (c <| 17) (Int32.logor (code <| 9) (Int32.of_int format_tag)))

let encode (i : Insn.t) =
  match i with
  | Nop -> nop_bytes
  | Break -> break_bytes
  | _ ->
      let s, a, b, c, imm = fields i in
      let head = Encoder.be32_to_string (pack_word (code_of_shape s) a b c) in
      (match imm with None -> head | Some v -> head ^ Encoder.be32_to_string v)

let decode ~fetch addr =
  let w0 = Encoder.fetch32 ~order:Big ~fetch addr in
  if Int32.equal w0 nop_word then (Insn.Nop, 4)
  else if Int32.equal w0 break_word then (Insn.Break, 4)
  else if Int32.to_int (Int32.logand w0 0x1ffl) <> format_tag then
    raise (Bad_encoding (Fmt.str "sparc: bad format %#lx at %#x" w0 addr))
  else begin
    let code = Int32.to_int (Int32.shift_right_logical w0 9) land 0xff in
    let field sh = Int32.to_int (Int32.shift_right_logical w0 sh) land 0x1f in
    match shape_of_code code with
    | None -> raise (Bad_encoding (Fmt.str "sparc: bad opcode %#lx at %#x" w0 addr))
    | Some s ->
        let a = field 27 and b = field 22 and c = field 17 in
        if has_imm s then
          let imm = Encoder.fetch32 ~order:Big ~fetch (addr + 4) in
          (build s ~a ~b ~c ~imm, 8)
        else (build s ~a ~b ~c ~imm:0l, 4)
  end
