(** Per-target descriptors: everything about a simulated architecture that
    the compiler, the nub, and the debugger's machine-dependent modules need
    to know.  This record is the OCaml analogue of the paper's
    "machine-dependent data manipulated by machine-independent code". *)

type t = {
  arch : Arch.t;
  encoder : Encoder.t;
  (* register conventions *)
  sp : Insn.reg;                 (** stack pointer *)
  fp : Insn.reg option;          (** frame pointer; [None] on SIM-MIPS *)
  ra : Insn.reg option;          (** link register; [None] when calls push the
                                     return address on the stack (68020/VAX) *)
  arg_regs : Insn.reg list;      (** registers carrying leading arguments;
                                     [[]] means all arguments on the stack *)
  ret_reg : Insn.reg;            (** integer return value *)
  fret_reg : Insn.freg;          (** floating return value *)
  temps : Insn.reg list;         (** expression temporaries for the codegen *)
  ftemps : Insn.freg list;
  reg_vars : Insn.reg list;      (** callee-saved registers available for
                                     [register]-class variables *)
  scratch : Insn.reg;            (** assembler/codegen scratch register *)
  (* breakpoint support: the paper's "four items of machine-dependent data" *)
  nop : string;                  (** no-op bit pattern at stopping points *)
  brk : string;                  (** trap bit pattern planted over a no-op *)
  insn_unit : int;               (** granularity used to fetch/store
                                     instructions: 4, 2, or 1 bytes *)
  nop_advance : int;             (** pc advance after "interpreting" the no-op *)
  (* context layout: where the nub saves state on a signal *)
  ctx_size : int;
  ctx_pc_off : int;
  ctx_reg_off : int -> int;
  ctx_freg_off : int -> int;
  ctx_freg_bytes : int;          (** 8, or 10 on the 68020 (80-bit extended) *)
  reg_names : string array;
  freg_prefix : string;
}

let order t = Arch.endian t.arch
let nregs t = Arch.nregs t.arch
let nfregs t = Arch.nfregs t.arch

let encode t i = let (module E : Encoder.S) = t.encoder in E.encode i
let insn_length t i = let (module E : Encoder.S) = t.encoder in E.length i
let decode t ~fetch addr = let (module E : Encoder.S) = t.encoder in E.decode ~fetch addr

let numbered prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let mips : t =
  let nregs = 32 and nfregs = 16 in
  {
    arch = Mips;
    encoder = (module Enc_mips);
    sp = 29;
    fp = None;
    ra = Some 31;
    arg_regs = [ 4; 5; 6; 7 ];
    ret_reg = 2;
    fret_reg = 0;
    temps = [ 8; 9; 10; 11; 12; 13; 14; 15 ];
    ftemps = [ 2; 3; 4; 5; 6; 7 ];
    reg_vars = [ 16; 17; 18; 19; 20; 21; 22; 23 ];
    scratch = 1;
    nop = Enc_mips.nop_bytes;
    brk = Enc_mips.break_bytes;
    insn_unit = 4;
    nop_advance = 4;
    (* sigcontext-style: pc first, then GPRs, then FPRs as doubles *)
    ctx_size = 4 + (4 * nregs) + (8 * nfregs);
    ctx_pc_off = 0;
    ctx_reg_off = (fun r -> 4 + (4 * r));
    ctx_freg_off = (fun f -> 4 + (4 * nregs) + (8 * f));
    ctx_freg_bytes = 8;
    reg_names = numbered "r" nregs;
    freg_prefix = "f";
  }

let sparc : t =
  let nregs = 32 and nfregs = 16 in
  {
    arch = Sparc;
    encoder = (module Enc_sparc);
    sp = 14;
    fp = Some 30;
    ra = Some 15;
    arg_regs = [ 8; 9; 10; 11; 12; 13 ];
    ret_reg = 8;
    fret_reg = 0;
    temps = [ 1; 2; 3; 4; 5; 6; 7; 16; 17; 18 ];
    ftemps = [ 2; 3; 4; 5; 6; 7 ];
    reg_vars = [ 20; 21; 22; 23; 24; 25 ];
    scratch = 19;
    nop = Enc_sparc.nop_bytes;
    brk = Enc_sparc.break_bytes;
    insn_unit = 4;
    nop_advance = 4;
    ctx_size = 4 + (4 * nregs) + (8 * nfregs);
    ctx_pc_off = 0;
    ctx_reg_off = (fun r -> 4 + (4 * r));
    ctx_freg_off = (fun f -> 4 + (4 * nregs) + (8 * f));
    ctx_freg_bytes = 8;
    reg_names = numbered "r" nregs;
    freg_prefix = "f";
  }

let m68k : t =
  let nregs = 16 and nfregs = 8 in
  {
    arch = M68k;
    encoder = (module Enc_m68k);
    sp = 15;  (* a7 *)
    fp = Some 14;  (* a6 *)
    ra = None;  (* calls push the return address *)
    arg_regs = [];
    ret_reg = 0;  (* d0 *)
    fret_reg = 0;
    temps = [ 1; 2; 3; 4; 5; 6; 7 ];
    ftemps = [ 1; 2; 3; 4; 5 ];
    reg_vars = [ 10; 11; 12; 13 ];  (* a2-a5 *)
    scratch = 8;  (* a0 *)
    nop = Enc_m68k.nop_bytes;
    brk = Enc_m68k.break_bytes;
    insn_unit = 2;
    nop_advance = 2;
    (* "another representation must be used": GPRs first, then pc, then the
       FPRs in 80-bit extended format *)
    ctx_size = (4 * nregs) + 4 + (10 * nfregs);
    ctx_pc_off = 4 * nregs;
    ctx_reg_off = (fun r -> 4 * r);
    ctx_freg_off = (fun f -> (4 * nregs) + 4 + (10 * f));
    ctx_freg_bytes = 10;
    reg_names =
      Array.init nregs (fun i -> if i < 8 then Printf.sprintf "d%d" i else Printf.sprintf "a%d" (i - 8));
    freg_prefix = "fp";
  }

let vax : t =
  let nregs = 16 and nfregs = 8 in
  {
    arch = Vax;
    encoder = (module Enc_vax);
    sp = 14;
    fp = Some 13;
    ra = None;
    arg_regs = [];
    ret_reg = 0;
    fret_reg = 0;
    temps = [ 1; 2; 3; 4; 5; 6; 7 ];
    ftemps = [ 1; 2; 3; 4; 5 ];
    reg_vars = [ 9; 10; 11; 12 ];
    scratch = 8;
    nop = Enc_vax.nop_bytes;
    brk = Enc_vax.break_bytes;
    insn_unit = 1;
    nop_advance = 1;
    (* GPRs, then FPRs, then pc at the end *)
    ctx_size = (4 * nregs) + (8 * nfregs) + 4;
    ctx_pc_off = (4 * nregs) + (8 * nfregs);
    ctx_reg_off = (fun r -> 4 * r);
    ctx_freg_off = (fun f -> (4 * nregs) + (8 * f));
    ctx_freg_bytes = 8;
    reg_names = numbered "r" nregs;
    freg_prefix = "f";
  }

let of_arch : Arch.t -> t = function
  | Mips -> mips
  | Sparc -> sparc
  | M68k -> m68k
  | Vax -> vax

let all = List.map of_arch Arch.all

let reg_name t r =
  if r >= 0 && r < Array.length t.reg_names then t.reg_names.(r)
  else Printf.sprintf "r?%d" r
