(** SIM-MIPS instruction encoding: fixed 4-byte big-endian words; the shape
    code occupies the top byte and three 5-bit register fields follow.
    Instructions that carry a 32-bit immediate take a second payload word
    (the analogue of the real MIPS lui/ori expansion for wide constants).

    The no-op is the all-zeros word and the trap is 0x0000000D — the real
    R3000 [nop] and [break] encodings. *)

open Optab

let arch = Arch.Mips

let nop_word = 0x00000000l
let break_word = 0x0000000Dl

let nop_bytes = Encoder.be32_to_string nop_word
let break_bytes = Encoder.be32_to_string break_word

let length (i : Insn.t) =
  match i with
  | Nop | Break -> 4
  | _ ->
      let s, _, _, _, _ = fields i in
      if has_imm s then 8 else 4

let pack_word code a b c =
  let ( <| ) x s = Int32.shift_left (Int32.of_int x) s in
  Int32.logor (code <| 24) (Int32.logor (a <| 19) (Int32.logor (b <| 14) (c <| 9)))

let encode (i : Insn.t) =
  match i with
  | Nop -> nop_bytes
  | Break -> break_bytes
  | _ ->
      let s, a, b, c, imm = fields i in
      let w0 = pack_word (code_of_shape s) a b c in
      let head = Encoder.be32_to_string w0 in
      (match imm with None -> head | Some v -> head ^ Encoder.be32_to_string v)

let decode ~fetch addr =
  let w0 = Encoder.fetch32 ~order:Big ~fetch addr in
  if Int32.equal w0 nop_word then (Insn.Nop, 4)
  else if Int32.equal w0 break_word then (Insn.Break, 4)
  else begin
    let code = Int32.to_int (Int32.shift_right_logical w0 24) land 0xff in
    let field sh = Int32.to_int (Int32.shift_right_logical w0 sh) land 0x1f in
    match shape_of_code code with
    | None -> raise (Bad_encoding (Fmt.str "mips: bad opcode %#lx at %#x" w0 addr))
    | Some s ->
        let a = field 19 and b = field 14 and c = field 9 in
        if has_imm s then
          let imm = Encoder.fetch32 ~order:Big ~fetch (addr + 4) in
          (build s ~a ~b ~c ~imm, 8)
        else (build s ~a ~b ~c ~imm:0l, 4)
  end
