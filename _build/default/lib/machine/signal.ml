(** Signals a simulated target process can receive.  The nub installs a
    handler for these at program startup (Sec. 4.2). *)

type t =
  | SIGTRAP  (** breakpoint trap *)
  | SIGSEGV  (** bad memory reference *)
  | SIGFPE   (** arithmetic fault, e.g. integer divide by zero *)
  | SIGILL   (** illegal instruction *)
  | SIGABRT  (** abort() *)
  | SIGINT   (** interrupt from the debugger *)

let number = function
  | SIGINT -> 2
  | SIGILL -> 4
  | SIGTRAP -> 5
  | SIGABRT -> 6
  | SIGFPE -> 8
  | SIGSEGV -> 11

let of_number = function
  | 2 -> Some SIGINT
  | 4 -> Some SIGILL
  | 5 -> Some SIGTRAP
  | 6 -> Some SIGABRT
  | 8 -> Some SIGFPE
  | 11 -> Some SIGSEGV
  | _ -> None

let name = function
  | SIGTRAP -> "SIGTRAP"
  | SIGSEGV -> "SIGSEGV"
  | SIGFPE -> "SIGFPE"
  | SIGILL -> "SIGILL"
  | SIGABRT -> "SIGABRT"
  | SIGINT -> "SIGINT"

let pp ppf s = Fmt.string ppf (name s)
let equal (a : t) b = a = b
