(** SIM-68020 instruction encoding: variable-width, big-endian, built from
    16-bit words like the real 68020.  The first word holds the shape code
    and two 4-bit register fields; three-register operations take a 2-byte
    extension word, and immediate operations a 4-byte extension.

    The no-op is the real 68020 [nop] (0x4E71) and the trap is the real
    [bkpt #0] (0x4848); both are 2 bytes, so planting a breakpoint is a
    single 16-bit store. *)

open Optab

let arch = Arch.M68k

let nop_word = 0x4E71
let break_word = 0x4848

let word_to_string w =
  let b = Bytes.create 2 in
  Ldb_util.Endian.set_u16 Big b 0 (w land 0xffff);
  Bytes.to_string b

let nop_bytes = word_to_string nop_word
let break_bytes = word_to_string break_word

let three_reg (s : shape) = match s with SAlu _ | SFalu _ | SFcmp _ -> true | _ -> false

(* Shape codes are offset so the high byte of a shape-coded first word can
   never collide with the nop (0x4E71) or bkpt (0x4848) patterns. *)
let code_offset = 0x50
let () = assert (Optab.max_code + code_offset < 0x100)

let length (i : Insn.t) =
  match i with
  | Nop | Break -> 2
  | _ ->
      let s, _, _, _, _ = fields i in
      if has_imm s then 6 else if three_reg s then 4 else 2

let encode (i : Insn.t) =
  match i with
  | Nop -> nop_bytes
  | Break -> break_bytes
  | _ ->
      let s, a, b, c, imm = fields i in
      let w0 = ((code_of_shape s + code_offset) lsl 8) lor ((a land 0xf) lsl 4) lor (b land 0xf) in
      let head = word_to_string w0 in
      if has_imm s then
        head ^ Encoder.be32_to_string (match imm with Some v -> v | None -> 0l)
      else if three_reg s then head ^ word_to_string (c land 0xf)
      else head

let decode ~fetch addr =
  let w0 = Encoder.fetch16_be ~fetch addr in
  if w0 = nop_word then (Insn.Nop, 2)
  else if w0 = break_word then (Insn.Break, 2)
  else begin
    let code = ((w0 lsr 8) land 0xff) - code_offset in
    match shape_of_code code with
    | None -> raise (Bad_encoding (Fmt.str "m68k: bad opcode %#x at %#x" w0 addr))
    | Some s ->
        let a = (w0 lsr 4) land 0xf and b = w0 land 0xf in
        if has_imm s then
          let imm = Encoder.fetch32 ~order:Big ~fetch (addr + 2) in
          (build s ~a ~b ~c:0 ~imm, 6)
        else if three_reg s then
          let c = Encoder.fetch16_be ~fetch (addr + 2) land 0xf in
          (build s ~a ~b ~c ~imm:0l, 4)
        else (build s ~a ~b ~c:0 ~imm:0l, 2)
  end
