(** Signature every target instruction encoder implements.

    [decode] reads bytes through a fetch callback so the same decoder serves
    the CPU (reading its own RAM) and the debugger's out-of-line
    interpretation of instructions fetched through abstract memories. *)

module type S = sig
  val arch : Arch.t

  val length : Insn.t -> int
  (** Encoded size in bytes of one abstract instruction on this target. *)

  val encode : Insn.t -> string
  (** Binary encoding; [String.length (encode i) = length i]. *)

  val decode : fetch:(int -> int) -> int -> Insn.t * int
  (** [decode ~fetch addr] decodes the instruction at [addr], returning it
      with its encoded length.  Raises {!Optab.Bad_encoding} on an illegal
      instruction (the CPU converts that to SIGILL). *)

  val nop_bytes : string
  (** The no-op bit pattern lcc-sim plants at stopping points. *)

  val break_bytes : string
  (** The trap bit pattern ldb writes over a no-op to plant a breakpoint.
      Always the same length as [nop_bytes] so planting is a plain store. *)
end

type t = (module S)

(** Helpers shared by the word-oriented encoders. *)

let be32_to_string (w : int32) =
  let b = Bytes.create 4 in
  Ldb_util.Endian.set_u32 Big b 0 w;
  Bytes.to_string b

let le32_to_string (w : int32) =
  let b = Bytes.create 4 in
  Ldb_util.Endian.set_u32 Little b 0 w;
  Bytes.to_string b

let fetch32 ~order ~(fetch : int -> int) addr : int32 =
  let byte i = Int32.of_int (fetch (addr + i)) in
  let ( <| ) x s = Int32.shift_left x s in
  match (order : Ldb_util.Endian.order) with
  | Big ->
      Int32.logor
        (Int32.logor (byte 0 <| 24) (byte 1 <| 16))
        (Int32.logor (byte 2 <| 8) (byte 3))
  | Little ->
      Int32.logor
        (Int32.logor (byte 3 <| 24) (byte 2 <| 16))
        (Int32.logor (byte 1 <| 8) (byte 0))

let fetch16_be ~(fetch : int -> int) addr = (fetch addr lsl 8) lor fetch (addr + 1)
