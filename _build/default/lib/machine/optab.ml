(** Shape table shared by the four target encoders.

    Every abstract instruction reduces to a {e shape} (operation + static
    subcode) plus up to three register fields and an optional 32-bit
    immediate.  Each target packs these into its own binary format — fixed
    big-endian words on SIM-MIPS/SIM-SPARC (with different field layouts),
    variable-width big-endian words on SIM-68020, byte-coded little-endian
    on SIM-VAX.  The debugger never sees shapes; it sees only the
    machine-dependent bit patterns, widths and byte orders. *)

open Insn

type shape =
  | SLi | SMov
  | SAlu of aluop | SAlui of aluop
  | SLoad of size | SLoadu of size | SStore of size
  | SFload of fsize | SFstore of fsize
  | SFalu of faluop | SFcmp of cond | SFmov
  | SCvtif | SCvtfi
  | SBr of cond | SJmp | SJr | SCall | SCallr | SRet
  | SPush | SPop | SNop | SBreak | SSyscall

let aluops = [ Add; Sub; Mul; Div; Rem; Divu; Remu; And; Or; Xor; Shl; Shr; Slt; Sltu ]
let conds = [ Eq; Ne; Lt; Le; Gt; Ge ]
let sizes = [ S8; S16; S32 ]
let fsizes = [ F32; F64; F80 ]
let faluops = [ Fadd; Fsub; Fmul; Fdiv ]

let all_shapes : shape list =
  [ SLi; SMov ]
  @ List.map (fun o -> SAlu o) aluops
  @ List.map (fun o -> SAlui o) aluops
  @ List.map (fun s -> SLoad s) sizes
  @ List.map (fun s -> SLoadu s) sizes
  @ List.map (fun s -> SStore s) sizes
  @ List.map (fun s -> SFload s) fsizes
  @ List.map (fun s -> SFstore s) fsizes
  @ List.map (fun o -> SFalu o) faluops
  @ List.map (fun c -> SFcmp c) conds
  @ [ SFmov; SCvtif; SCvtfi ]
  @ List.map (fun c -> SBr c) conds
  @ [ SJmp; SJr; SCall; SCallr; SRet; SPush; SPop; SNop; SBreak; SSyscall ]

(* Codes are 1-based so that an all-zero word never decodes as a valid
   shape by accident. *)
let code_of_shape : shape -> int =
  let tbl = Hashtbl.create 97 in
  List.iteri (fun i s -> Hashtbl.replace tbl s (i + 1)) all_shapes;
  fun s -> Hashtbl.find tbl s

let shape_of_code : int -> shape option =
  let arr = Array.of_list all_shapes in
  fun c -> if c >= 1 && c <= Array.length arr then Some arr.(c - 1) else None

let max_code = List.length all_shapes

(** Decompose an instruction into (shape, a, b, c, imm). *)
let fields (i : Insn.t) : shape * int * int * int * int32 option =
  match i with
  | Li (rd, v) -> (SLi, rd, 0, 0, Some v)
  | Mov (rd, rs) -> (SMov, rd, rs, 0, None)
  | Alu (op, rd, rs, rt) -> (SAlu op, rd, rs, rt, None)
  | Alui (op, rd, rs, v) -> (SAlui op, rd, rs, 0, Some v)
  | Load (sz, rd, rs, off) -> (SLoad sz, rd, rs, 0, Some off)
  | Loadu (sz, rd, rs, off) -> (SLoadu sz, rd, rs, 0, Some off)
  | Store (sz, rv, rs, off) -> (SStore sz, rv, rs, 0, Some off)
  | Fload (sz, fd, rs, off) -> (SFload sz, fd, rs, 0, Some off)
  | Fstore (sz, fv, rs, off) -> (SFstore sz, fv, rs, 0, Some off)
  | Falu (op, fd, fa, fb) -> (SFalu op, fd, fa, fb, None)
  | Fcmp (c, rd, fa, fb) -> (SFcmp c, rd, fa, fb, None)
  | Fmov (fd, fs) -> (SFmov, fd, fs, 0, None)
  | Cvtif (fd, rs) -> (SCvtif, fd, rs, 0, None)
  | Cvtfi (rd, fs) -> (SCvtfi, rd, fs, 0, None)
  | Br (c, rs, rt, a) -> (SBr c, rs, rt, 0, Some a)
  | Jmp a -> (SJmp, 0, 0, 0, Some a)
  | Jr rs -> (SJr, rs, 0, 0, None)
  | Call a -> (SCall, 0, 0, 0, Some a)
  | Callr rs -> (SCallr, rs, 0, 0, None)
  | Ret -> (SRet, 0, 0, 0, None)
  | Push rs -> (SPush, rs, 0, 0, None)
  | Pop rd -> (SPop, rd, 0, 0, None)
  | Nop -> (SNop, 0, 0, 0, None)
  | Break -> (SBreak, 0, 0, 0, None)
  | Syscall n -> (SSyscall, n, 0, 0, None)

let has_imm (s : shape) =
  match s with
  | SLi | SAlui _ | SLoad _ | SLoadu _ | SStore _ | SFload _ | SFstore _
  | SBr _ | SJmp | SCall ->
      true
  | _ -> false

exception Bad_encoding of string

(** Recompose an instruction from its packed fields. *)
let build (s : shape) ~a ~b ~c ~(imm : int32) : Insn.t =
  match s with
  | SLi -> Li (a, imm)
  | SMov -> Mov (a, b)
  | SAlu op -> Alu (op, a, b, c)
  | SAlui op -> Alui (op, a, b, imm)
  | SLoad sz -> Load (sz, a, b, imm)
  | SLoadu sz -> Loadu (sz, a, b, imm)
  | SStore sz -> Store (sz, a, b, imm)
  | SFload sz -> Fload (sz, a, b, imm)
  | SFstore sz -> Fstore (sz, a, b, imm)
  | SFalu op -> Falu (op, a, b, c)
  | SFcmp cd -> Fcmp (cd, a, b, c)
  | SFmov -> Fmov (a, b)
  | SCvtif -> Cvtif (a, b)
  | SCvtfi -> Cvtfi (a, b)
  | SBr cd -> Br (cd, a, b, imm)
  | SJmp -> Jmp imm
  | SJr -> Jr a
  | SCall -> Call imm
  | SCallr -> Callr a
  | SRet -> Ret
  | SPush -> Push a
  | SPop -> Pop a
  | SNop -> Nop
  | SBreak -> Break
  | SSyscall -> Syscall a
