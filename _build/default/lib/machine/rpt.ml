(** The SIM-MIPS runtime procedure table (Sec. 4.3).

    The real MIPS has no frame pointer, so ldb's MIPS linker interface reads
    procedure addresses and frame sizes from a runtime procedure table kept
    in the target's address space.  Our linker emits the same structure:
    at a well-known data address, a word count N followed by N records of
    three 32-bit words: [proc address; frame size; return-address save
    offset from the incoming sp]. *)

let base = Ram.Layout.data_base + 0x8000
let record_words = 3

type entry = { addr : int; frame_size : int; ra_offset : int }

let write ram (entries : entry list) =
  Ram.set_u32 ram base (Int32.of_int (List.length entries));
  List.iteri
    (fun i e ->
      let off = base + 4 + (4 * record_words * i) in
      Ram.set_u32 ram off (Int32.of_int e.addr);
      Ram.set_u32 ram (off + 4) (Int32.of_int e.frame_size);
      Ram.set_u32 ram (off + 8) (Int32.of_int e.ra_offset))
    entries

(** Read the table back through an arbitrary 32-bit fetch function, so the
    debugger can read it through its abstract-memory stack exactly as the
    paper's ldb does ("from the runtime procedure table located in the
    target address space"). *)
let read (fetch32 : int -> int32) : entry list =
  let n = Int32.to_int (fetch32 base) in
  if n < 0 || n > 65536 then []
  else
    List.init n (fun i ->
        let off = base + 4 + (4 * record_words * i) in
        {
          addr = Int32.to_int (fetch32 off);
          frame_size = Int32.to_int (fetch32 (off + 4));
          ra_offset = Int32.to_int (fetch32 (off + 8));
        })

(** Find the entry governing [pc]: the entry with the greatest address not
    exceeding [pc]. *)
let find entries ~pc =
  List.fold_left
    (fun best e ->
      if e.addr <= pc then
        match best with
        | Some b when b.addr >= e.addr -> best
        | _ -> Some e
      else best)
    None entries
