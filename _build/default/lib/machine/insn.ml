(** The abstract instruction set shared by the four simulated targets.

    Semantics are common; each target supplies its own binary {e encoding}
    (see [Enc_mips] etc.), its own widths, and its own register/calling
    conventions.  This mirrors how the paper's four real targets share one
    compiler IR while differing in machine language. *)

type reg = int
(** General-purpose register number, 0 .. nregs-1.  Register 0 is NOT
    hardwired to zero (unlike the real MIPS); the codegen treats it as an
    ordinary register so the same generator serves all four targets. *)

type freg = int
(** Floating-point register number. *)

type aluop =
  | Add | Sub | Mul | Div | Rem
  | Divu | Remu  (** unsigned division, as every real target provides *)
  | And | Or | Xor
  | Shl | Shr  (** arithmetic right shift *)
  | Slt  (** set if signed less-than *)
  | Sltu (** set if unsigned less-than *)

type cond = Eq | Ne | Lt | Le | Gt | Ge

type size = S8 | S16 | S32
(** Integer access widths for loads and stores. *)

type fsize = F32 | F64 | F80
(** Floating access widths.  F80 is meaningful only on SIM-68020. *)

type faluop = Fadd | Fsub | Fmul | Fdiv

(** One abstract instruction.  Branch and call targets are absolute
    addresses once assembled; the assembler works with symbolic labels and
    resolves them during layout. *)
type t =
  | Li of reg * int32                  (** rd <- imm32 *)
  | Mov of reg * reg                   (** rd <- rs *)
  | Alu of aluop * reg * reg * reg     (** rd <- rs op rt *)
  | Alui of aluop * reg * reg * int32  (** rd <- rs op imm *)
  | Load of size * reg * reg * int32   (** rd <- mem[rs + off], sign-extended *)
  | Loadu of size * reg * reg * int32  (** rd <- mem[rs + off], zero-extended *)
  | Store of size * reg * reg * int32  (** mem[rs + off] <- rv *)
  | Fload of fsize * freg * reg * int32
  | Fstore of fsize * freg * reg * int32
  | Falu of faluop * freg * freg * freg
  | Fcmp of cond * reg * freg * freg   (** rd <- (fa cond fb) ? 1 : 0 *)
  | Fmov of freg * freg
  | Cvtif of freg * reg                (** fd <- float(rs) *)
  | Cvtfi of reg * freg                (** rd <- trunc(fs) *)
  | Br of cond * reg * reg * int32     (** if rs cond rt then pc <- addr *)
  | Jmp of int32                       (** pc <- addr *)
  | Jr of reg                          (** pc <- rs *)
  | Call of int32                      (** link per convention, pc <- addr *)
  | Callr of reg                       (** indirect call *)
  | Ret                                (** return per convention *)
  | Push of reg
  | Pop of reg
  | Nop                                (** stopping-point no-op *)
  | Break                              (** breakpoint trap: raises SIGTRAP *)
  | Syscall of int                     (** simulated-kernel service *)

let aluop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | Divu -> "divu" | Remu -> "remu"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Slt -> "slt" | Sltu -> "sltu"

let cond_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let size_bytes = function S8 -> 1 | S16 -> 2 | S32 -> 4
let fsize_bytes = function F32 -> 4 | F64 -> 8 | F80 -> 10

let pp ppf (i : t) =
  let r n = Fmt.str "r%d" n and f n = Fmt.str "f%d" n in
  match i with
  | Li (rd, v) -> Fmt.pf ppf "li %s, %ld" (r rd) v
  | Mov (rd, rs) -> Fmt.pf ppf "mov %s, %s" (r rd) (r rs)
  | Alu (op, rd, rs, rt) ->
      Fmt.pf ppf "%s %s, %s, %s" (aluop_name op) (r rd) (r rs) (r rt)
  | Alui (op, rd, rs, v) ->
      Fmt.pf ppf "%si %s, %s, %ld" (aluop_name op) (r rd) (r rs) v
  | Load (sz, rd, rs, off) ->
      Fmt.pf ppf "ld%d %s, %ld(%s)" (8 * size_bytes sz) (r rd) off (r rs)
  | Loadu (sz, rd, rs, off) ->
      Fmt.pf ppf "ld%du %s, %ld(%s)" (8 * size_bytes sz) (r rd) off (r rs)
  | Store (sz, rv, rs, off) ->
      Fmt.pf ppf "st%d %s, %ld(%s)" (8 * size_bytes sz) (r rv) off (r rs)
  | Fload (sz, fd, rs, off) ->
      Fmt.pf ppf "fld%d %s, %ld(%s)" (8 * fsize_bytes sz) (f fd) off (r rs)
  | Fstore (sz, fv, rs, off) ->
      Fmt.pf ppf "fst%d %s, %ld(%s)" (8 * fsize_bytes sz) (f fv) off (r rs)
  | Falu (op, fd, fa, fb) ->
      let n = match op with Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv" in
      Fmt.pf ppf "%s %s, %s, %s" n (f fd) (f fa) (f fb)
  | Fcmp (c, rd, fa, fb) -> Fmt.pf ppf "fcmp%s %s, %s, %s" (cond_name c) (r rd) (f fa) (f fb)
  | Fmov (fd, fs) -> Fmt.pf ppf "fmov %s, %s" (f fd) (f fs)
  | Cvtif (fd, rs) -> Fmt.pf ppf "cvtif %s, %s" (f fd) (r rs)
  | Cvtfi (rd, fs) -> Fmt.pf ppf "cvtfi %s, %s" (r rd) (f fs)
  | Br (c, rs, rt, a) -> Fmt.pf ppf "b%s %s, %s, 0x%lx" (cond_name c) (r rs) (r rt) a
  | Jmp a -> Fmt.pf ppf "jmp 0x%lx" a
  | Jr rs -> Fmt.pf ppf "jr %s" (r rs)
  | Call a -> Fmt.pf ppf "call 0x%lx" a
  | Callr rs -> Fmt.pf ppf "callr %s" (r rs)
  | Ret -> Fmt.string ppf "ret"
  | Push rs -> Fmt.pf ppf "push %s" (r rs)
  | Pop rd -> Fmt.pf ppf "pop %s" (r rd)
  | Nop -> Fmt.string ppf "nop"
  | Break -> Fmt.string ppf "break"
  | Syscall n -> Fmt.pf ppf "syscall %d" n

let to_string i = Fmt.str "%a" pp i

(** Does this instruction write [reg] as an integer destination?  Used by the
    SIM-MIPS load-delay scheduler. *)
let writes_reg (i : t) (rg : reg) =
  match i with
  | Li (rd, _) | Mov (rd, _) | Alu (_, rd, _, _) | Alui (_, rd, _, _)
  | Load (_, rd, _, _) | Loadu (_, rd, _, _) | Fcmp (_, rd, _, _)
  | Cvtfi (rd, _) | Pop rd ->
      rd = rg
  | _ -> false

(** Integer registers read by [i]. *)
let reads (i : t) : reg list =
  match i with
  | Li _ | Nop | Break | Ret | Jmp _ | Call _ -> []
  | Mov (_, rs) -> [ rs ]
  | Alu (_, _, rs, rt) -> [ rs; rt ]
  | Alui (_, _, rs, _) -> [ rs ]
  | Load (_, _, rs, _) | Loadu (_, _, rs, _) -> [ rs ]
  | Store (_, rv, rs, _) -> [ rv; rs ]
  | Fload (_, _, rs, _) | Fstore (_, _, rs, _) -> [ rs ]
  | Falu _ | Fmov _ -> []
  | Fcmp _ -> []
  | Cvtif (_, rs) -> [ rs ]
  | Cvtfi _ -> []
  | Br (_, rs, rt, _) -> [ rs; rt ]
  | Jr rs | Callr rs -> [ rs ]
  | Push rs -> [ rs ]
  | Pop _ -> []
  | Syscall _ -> []

(** Is [i] an integer load (the only instructions with a delay slot on
    SIM-MIPS)? *)
let is_load = function Load _ | Loadu _ -> true | _ -> false
