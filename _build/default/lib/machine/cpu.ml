(** The shared execution engine.  One [step] decodes the instruction at the
    pc through the target's own encoder and executes the shared semantics.

    SIM-MIPS load delay slots are modelled architecturally: the result of an
    integer load is not visible to the immediately following instruction
    (the assembler's scheduler must fill or pad the slot; the test suite
    exercises programs whose correctness depends on it). *)

open Insn

type event =
  | Running
  | Trap of Signal.t * int  (** signal and an associated code (eg fault addr) *)
  | Sys of int              (** syscall wanting kernel service *)

type t = {
  target : Target.t;
  regs : int32 array;
  fregs : float array;
  mutable pc : int;
  mutable pending_load : (reg * int32) option;  (* SIM-MIPS delay slot *)
  mutable icount : int;  (** instructions retired, for benchmarks *)
}

let create target =
  {
    target;
    regs = Array.make (Target.nregs target) 0l;
    fregs = Array.make (Target.nfregs target) 0.0;
    pc = Ram.Layout.code_base;
    pending_load = None;
    icount = 0;
  }

let reg cpu r = cpu.regs.(r)
let set_reg cpu r v = cpu.regs.(r) <- v
let freg cpu f = cpu.fregs.(f)
let set_freg cpu f v = cpu.fregs.(f) <- v

(** Commit a delayed load (used before capturing a context so the nub never
    sees a half-completed load). *)
let drain cpu =
  match cpu.pending_load with
  | Some (r, v) ->
      cpu.regs.(r) <- v;
      cpu.pending_load <- None
  | None -> ()

let i32 = Int32.of_int
let to_addr (v : int32) = Int32.to_int (Int32.logand v 0xffffffffl) land 0xffffffff

let alu op (x : int32) (y : int32) : int32 =
  match op with
  | Add -> Int32.add x y
  | Sub -> Int32.sub x y
  | Mul -> Int32.mul x y
  | Div -> if Int32.equal y 0l then raise Division_by_zero else Int32.div x y
  | Rem -> if Int32.equal y 0l then raise Division_by_zero else Int32.rem x y
  | Divu ->
      if Int32.equal y 0l then raise Division_by_zero
      else
        let u v = Int64.logand (Int64.of_int32 v) 0xffffffffL in
        Int64.to_int32 (Int64.div (u x) (u y))
  | Remu ->
      if Int32.equal y 0l then raise Division_by_zero
      else
        let u v = Int64.logand (Int64.of_int32 v) 0xffffffffL in
        Int64.to_int32 (Int64.rem (u x) (u y))
  | And -> Int32.logand x y
  | Or -> Int32.logor x y
  | Xor -> Int32.logxor x y
  | Shl -> Int32.shift_left x (Int32.to_int y land 31)
  | Shr -> Int32.shift_right x (Int32.to_int y land 31)
  | Slt -> if Int32.compare x y < 0 then 1l else 0l
  | Sltu ->
      let u v = Int64.logand (Int64.of_int32 v) 0xffffffffL in
      if Int64.compare (u x) (u y) < 0 then 1l else 0l

let cond_holds c (x : int32) (y : int32) =
  let cmp = Int32.compare x y in
  match c with
  | Eq -> cmp = 0
  | Ne -> cmp <> 0
  | Lt -> cmp < 0
  | Le -> cmp <= 0
  | Gt -> cmp > 0
  | Ge -> cmp >= 0

let fcond_holds c (x : float) (y : float) =
  match c with
  | Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y

let load_value ram sz ~unsigned addr : int32 =
  match sz with
  | S8 ->
      let v = Ram.get_u8 ram addr in
      if unsigned then i32 v else i32 (Ldb_util.Endian.sext v 8)
  | S16 ->
      let v = Ram.get_u16 ram addr in
      if unsigned then i32 v else i32 (Ldb_util.Endian.sext v 16)
  | S32 -> Ram.get_u32 ram addr

let store_value ram sz addr (v : int32) =
  match sz with
  | S8 -> Ram.set_u8 ram addr (Int32.to_int v land 0xff)
  | S16 -> Ram.set_u16 ram addr (Int32.to_int v land 0xffff)
  | S32 -> Ram.set_u32 ram addr v

let fload_value ram fsz addr : float =
  match fsz with
  | F32 -> Ram.get_f32 ram addr
  | F64 -> Ram.get_f64 ram addr
  | F80 -> Float80.of_bytes (Ram.read_string ram ~addr ~len:10)

let fstore_value ram fsz addr (v : float) =
  match fsz with
  | F32 -> Ram.set_f32 ram addr v
  | F64 -> Ram.set_f64 ram addr v
  | F80 -> Ram.blit_in ram ~addr (Float80.to_bytes v)

let push cpu ram v =
  let sp = Int32.sub cpu.regs.(cpu.target.Target.sp) 4l in
  cpu.regs.(cpu.target.Target.sp) <- sp;
  Ram.set_u32 ram (to_addr sp) v

let pop cpu ram =
  let spr = cpu.target.Target.sp in
  let v = Ram.get_u32 ram (to_addr cpu.regs.(spr)) in
  cpu.regs.(spr) <- Int32.add cpu.regs.(spr) 4l;
  v

(** Execute one instruction.  Returns the resulting event; on [Trap], the pc
    is left at the faulting instruction. *)
let step cpu (ram : Ram.t) : event =
  let t = cpu.target in
  let start_pc = cpu.pc in
  let fetch a = Ram.get_u8 ram a in
  match Target.decode t ~fetch cpu.pc with
  | exception Ram.Fault _ -> Trap (SIGSEGV, start_pc)
  | exception Optab.Bad_encoding _ -> Trap (SIGILL, start_pc)
  | insn, len -> (
      let next = cpu.pc + len in
      (* Read all source operands before committing any pending load, so the
         delay-slot instruction observes the pre-load register value. *)
      let rd r = cpu.regs.(r) in
      let result =
        try
          let new_pending = ref None in
          let ev = ref Running in
          (match insn with
          | Li (r, v) ->
              drain cpu;
              cpu.regs.(r) <- v
          | Mov (r, s) ->
              let v = rd s in
              drain cpu;
              cpu.regs.(r) <- v
          | Alu (op, r, s, u) ->
              let a = rd s and b = rd u in
              drain cpu;
              cpu.regs.(r) <- alu op a b
          | Alui (op, r, s, imm) ->
              let a = rd s in
              drain cpu;
              cpu.regs.(r) <- alu op a imm
          | Load (sz, r, s, off) ->
              let addr = to_addr (Int32.add (rd s) off) in
              drain cpu;
              let v = load_value ram sz ~unsigned:false addr in
              if Arch.has_load_delay t.Target.arch then new_pending := Some (r, v)
              else cpu.regs.(r) <- v
          | Loadu (sz, r, s, off) ->
              let addr = to_addr (Int32.add (rd s) off) in
              drain cpu;
              let v = load_value ram sz ~unsigned:true addr in
              if Arch.has_load_delay t.Target.arch then new_pending := Some (r, v)
              else cpu.regs.(r) <- v
          | Store (sz, rv, rs, off) ->
              let addr = to_addr (Int32.add (rd rs) off) and v = rd rv in
              drain cpu;
              store_value ram sz addr v
          | Fload (fsz, fd, rs, off) ->
              let addr = to_addr (Int32.add (rd rs) off) in
              drain cpu;
              cpu.fregs.(fd) <- fload_value ram fsz addr
          | Fstore (fsz, fv, rs, off) ->
              let addr = to_addr (Int32.add (rd rs) off) in
              drain cpu;
              fstore_value ram fsz addr cpu.fregs.(fv)
          | Falu (op, fd, fa, fb) ->
              drain cpu;
              let x = cpu.fregs.(fa) and y = cpu.fregs.(fb) in
              cpu.fregs.(fd) <-
                (match op with
                | Fadd -> x +. y
                | Fsub -> x -. y
                | Fmul -> x *. y
                | Fdiv -> x /. y)
          | Fcmp (c, r, fa, fb) ->
              drain cpu;
              cpu.regs.(r) <- (if fcond_holds c cpu.fregs.(fa) cpu.fregs.(fb) then 1l else 0l)
          | Fmov (fd, fs) ->
              drain cpu;
              cpu.fregs.(fd) <- cpu.fregs.(fs)
          | Cvtif (fd, rs) ->
              let v = rd rs in
              drain cpu;
              cpu.fregs.(fd) <- Int32.to_float v
          | Cvtfi (r, fs) ->
              drain cpu;
              cpu.regs.(r) <- Int32.of_float cpu.fregs.(fs)
          | Br (c, rs, rt, addr) ->
              let a = rd rs and b = rd rt in
              drain cpu;
              if cond_holds c a b then cpu.pc <- to_addr addr - len
              (* -len: compensated below by +len *)
          | Jmp addr ->
              drain cpu;
              cpu.pc <- to_addr addr - len
          | Jr rs ->
              let a = rd rs in
              drain cpu;
              cpu.pc <- to_addr a - len
          | Call addr ->
              drain cpu;
              (match t.Target.ra with
              | Some ra -> cpu.regs.(ra) <- i32 next
              | None -> push cpu ram (i32 next));
              cpu.pc <- to_addr addr - len
          | Callr rs ->
              let a = rd rs in
              drain cpu;
              (match t.Target.ra with
              | Some ra -> cpu.regs.(ra) <- i32 next
              | None -> push cpu ram (i32 next));
              cpu.pc <- to_addr a - len
          | Ret ->
              drain cpu;
              let dest =
                match t.Target.ra with
                | Some ra -> cpu.regs.(ra)
                | None -> pop cpu ram
              in
              cpu.pc <- to_addr dest - len
          | Push rs ->
              let v = rd rs in
              drain cpu;
              push cpu ram v
          | Pop r ->
              drain cpu;
              cpu.regs.(r) <- pop cpu ram
          | Nop -> drain cpu
          | Break ->
              drain cpu;
              ev := Trap (SIGTRAP, start_pc)
          | Syscall n ->
              drain cpu;
              ev := Sys n);
          cpu.pending_load <- !new_pending;
          !ev
        with
        | Ram.Fault a ->
            drain cpu;
            Trap (SIGSEGV, a)
        | Division_by_zero ->
            drain cpu;
            Trap (SIGFPE, start_pc)
      in
      match result with
      | Running | Sys _ ->
          cpu.pc <- cpu.pc + len;
          cpu.icount <- cpu.icount + 1;
          result
      | Trap _ ->
          cpu.pc <- start_pc;
          result)
