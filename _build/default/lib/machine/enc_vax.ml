(** SIM-VAX instruction encoding: byte-coded and little-endian, like the
    real VAX.  One opcode byte, then one byte per register operand, then a
    little-endian 32-bit immediate when present.  Shape codes are offset by
    0x10 so that the single-byte opcodes below 0x10 are free for the real
    VAX [nop] (0x01) and [bpt] (0x03) encodings — planting a breakpoint on
    SIM-VAX is a single byte store. *)

open Optab

let arch = Arch.Vax

let code_offset = 0x10
let nop_byte = 0x01
let break_byte = 0x03

let nop_bytes = String.make 1 (Char.chr nop_byte)
let break_bytes = String.make 1 (Char.chr break_byte)

(* number of register-operand bytes for each shape *)
let nregs_of (s : shape) =
  match s with
  | SLi -> 1
  | SMov -> 2
  | SAlu _ -> 3
  | SAlui _ -> 2
  | SLoad _ | SLoadu _ | SStore _ | SFload _ | SFstore _ -> 2
  | SFalu _ | SFcmp _ -> 3
  | SFmov | SCvtif | SCvtfi -> 2
  | SBr _ -> 2
  | SJmp | SCall -> 0
  | SJr | SCallr -> 1
  | SRet -> 0
  | SPush | SPop -> 1
  | SNop | SBreak -> 0
  | SSyscall -> 1

let length (i : Insn.t) =
  match i with
  | Nop | Break -> 1
  | _ ->
      let s, _, _, _, _ = fields i in
      1 + nregs_of s + if has_imm s then 4 else 0

let encode (i : Insn.t) =
  match i with
  | Nop -> nop_bytes
  | Break -> break_bytes
  | _ ->
      let s, a, b, c, imm = fields i in
      let buf = Buffer.create 8 in
      Buffer.add_char buf (Char.chr (code_of_shape s + code_offset));
      let regs = [| a; b; c |] in
      for k = 0 to nregs_of s - 1 do
        Buffer.add_char buf (Char.chr (regs.(k) land 0xff))
      done;
      (match imm with
      | Some v -> Buffer.add_string buf (Encoder.le32_to_string v)
      | None -> ());
      Buffer.contents buf

let decode ~fetch addr =
  let op = fetch addr in
  if op = nop_byte then (Insn.Nop, 1)
  else if op = break_byte then (Insn.Break, 1)
  else
    match shape_of_code (op - code_offset) with
    | None -> raise (Bad_encoding (Fmt.str "vax: bad opcode %#x at %#x" op addr))
    | Some s ->
        let nr = nregs_of s in
        let reg k = if k < nr then fetch (addr + 1 + k) else 0 in
        let a = reg 0 and b = reg 1 and c = reg 2 in
        if has_imm s then
          let imm = Encoder.fetch32 ~order:Little ~fetch (addr + 1 + nr) in
          (build s ~a ~b ~c ~imm, 1 + nr + 4)
        else (build s ~a ~b ~c ~imm:0l, 1 + nr)
