(** Byte-addressable memory for a simulated target process.

    The address space is flat; accesses outside it raise {!Fault}, which the
    CPU turns into a SIGSEGV for the process.  All multi-byte accesses honour
    the owning architecture's byte order. *)

open Ldb_util

exception Fault of int  (** bad address *)

type t = {
  bytes : Bytes.t;
  order : Endian.order;
}

(** Standard layout of a simulated process image.  The nub's context area
    lives in high data memory; the stack grows down from [stack_top]. *)
module Layout = struct
  let code_base = 0x1000
  let data_base = 0x100000
  let context_base = 0x1f0000
  let sysarg_base = 0x1f8000 (* simulated-kernel argument block *)
  let stack_top = 0x3ffff0
  let size = 0x400000
end

let create ?(size = Layout.size) order = { bytes = Bytes.make size '\000'; order }

let size m = Bytes.length m.bytes
let order m = m.order

let check m addr len =
  if addr < 0 || len < 0 || addr + len > Bytes.length m.bytes then raise (Fault addr)

let get_u8 m addr =
  check m addr 1;
  Endian.get_u8 m.bytes addr

let set_u8 m addr v =
  check m addr 1;
  Endian.set_u8 m.bytes addr v

let get_u16 m addr =
  check m addr 2;
  Endian.get_u16 m.order m.bytes addr

let set_u16 m addr v =
  check m addr 2;
  Endian.set_u16 m.order m.bytes addr v

let get_u32 m addr =
  check m addr 4;
  Endian.get_u32 m.order m.bytes addr

let set_u32 m addr v =
  check m addr 4;
  Endian.set_u32 m.order m.bytes addr v

let get_u64 m addr =
  check m addr 8;
  Endian.get_u64 m.order m.bytes addr

let set_u64 m addr v =
  check m addr 8;
  Endian.set_u64 m.order m.bytes addr v

(** Raw byte-string accessors, used to load program images and to service
    nub fetch requests. *)
let blit_in m ~addr (s : string) =
  check m addr (String.length s);
  Bytes.blit_string s 0 m.bytes addr (String.length s)

let read_string m ~addr ~len =
  check m addr len;
  Bytes.sub_string m.bytes addr len

(** Read a NUL-terminated C string (bounded at 64k to stay safe on garbage
    pointers). *)
let read_cstring m ~addr =
  let buf = Buffer.create 16 in
  let rec go a n =
    if n > 65536 then Buffer.contents buf
    else
      let c = get_u8 m a in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (a + 1) (n + 1)
      end
  in
  go addr 0

(** IEEE single/double stored per the memory's byte order. *)
let get_f32 m addr = Int32.float_of_bits (get_u32 m addr)
let set_f32 m addr v = set_u32 m addr (Int32.bits_of_float v)
let get_f64 m addr = Int64.float_of_bits (get_u64 m addr)
let set_f64 m addr v = set_u64 m addr (Int64.bits_of_float v)
