(** The machine-independent PostScript support code: the printing
    procedures referenced by compiler-emitted type dictionaries (INT,
    CHAR, ARRAY, STRUCT, ...) and the [print] dispatcher.

    This corresponds to the paper's ~1200 lines of shared PostScript; the
    compiler's type dictionaries carry any machine-dependent information
    (element sizes, field offsets), so these procedures stay
    machine-independent. *)

let source = {|
% ---- ldb shared PostScript prelude ----

/PrintLimit 10 def      % adjustable element limit for aggregate printing

% print: mem loc typedict -> (prints the value)
% dispatches on the /printer procedure stored in the type dictionary;
% applied to a plain string it behaves like the system print, so the
% builtin remains usable
/print {
  dup type /dicttype eq { dup /printer get exec } { SysPrint } ifelse
} def

% INT: mem loc type -> ; fetches a 32-bit integer and prints it
/INT { pop FetchI32 cvs Put } def

% UNSIGNED: as INT but unsigned
/UNSIGNED { pop FetchU32 cvs Put } def

% SHORT/USHORT: 16-bit integers
/SHORT { pop FetchI16 cvs Put } def
/USHORT { pop FetchU16 cvs Put } def

% CHAR: print a character as 'c' (or its code when unprintable); the
% dialect has no mutable strings, so one-character strings come from the
% charstr operator
/CHAR {
  pop FetchI8
  dup dup 32 ge exch 127 lt and {
    (') Put charstr Put (') Put
  } {
    cvs Put
  } ifelse
} def

% FLOAT/DOUBLE/LDOUBLE: floating values of the three supported widths
/FLOAT  { pop FetchF32 cvs Put } def
/DOUBLE { pop FetchF64 cvs Put } def
/LDOUBLE { pop FetchF80 cvs Put } def

% POINTER: print the address in hex
/POINTER { pop FetchI32 hexstr Put } def

% CSTRING: fetch the char* then print the NUL-terminated text it points to
/CSTRING {
  pop               % mem loc
  exch dup          % loc mem mem
  3 -1 roll         % mem mem loc
  FetchI32          % mem addr
  dup 0 eq {
    pop pop (0x0) Put
  } {
    DataLoc 128 FetchString
    (") Put Put (") Put
  } ifelse
} def

% ARRAY: mem loc type -> ; loops through element offsets (Sec. 2)
/ARRAY {
  8 dict begin
  /&type exch def /&loc exch def /&machine exch def
  /&elemtype &type /elemtype get def
  /&elemsize &type /elemsize get def
  /&arraysize &type /arraysize get def
  /&limit PrintLimit &elemsize mul def
  ({) Put 0 Begin
  0 &elemsize &arraysize 1 sub {
    dup 0 ne { (, ) Put 0 Break } if
    dup &limit ge { (...) Put pop exit } if
    &machine &loc 3 -1 roll Shifted &elemtype print
  } for
  (}) Put End
  end
} def

% STRUCT: mem loc type -> ; fields is an array of [name offset type]
/STRUCT {
  8 dict begin
  /&type exch def /&loc exch def /&machine exch def
  /&first true def
  ({) Put 2 Begin
  &type /fields get {
    /&f exch def
    &first { /&first false def } { (, ) Put 0 Break } ifelse
    &f 0 get Put (=) Put
    &machine &loc &f 1 get Shifted &f 2 get print
  } forall
  (}) Put End
  end
} def

% helper: find the symbol-table entry for a name by walking the uplink
% tree from a starting entry (name resolution, Sec. 2); returns entry true
% or false
/FindLocal {            % startentry namestring -> entry true | false
  2 dict begin
  /&want exch def
  {                     % entry
    dup null eq { pop false exit } if
    dup /name get &want eq { true exit } if
    dup /uplink known { /uplink get } { pop false exit } ifelse
  } loop
  end
} def
|}
