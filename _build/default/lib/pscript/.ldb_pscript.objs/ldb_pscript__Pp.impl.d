lib/pscript/pp.ml: Buffer String
