lib/pscript/scan.ml: Buffer Char Printf String Value
