lib/pscript/ops.ml: Array Buffer Char Float Hashtbl Interp List Pp String Value
