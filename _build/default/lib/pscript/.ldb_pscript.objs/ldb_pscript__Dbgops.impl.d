lib/pscript/dbgops.ml: Buffer Char Int32 Int64 Interp Ldb_amemory Printf String Value
