lib/pscript/prelude.ml:
