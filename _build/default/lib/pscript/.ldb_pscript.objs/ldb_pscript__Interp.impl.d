lib/pscript/interp.ml: Array Buffer List Pp Scan Value
