lib/pscript/value.ml: Array Char Fmt Hashtbl Ldb_amemory List Printf String
