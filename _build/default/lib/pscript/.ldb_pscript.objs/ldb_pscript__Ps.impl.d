lib/pscript/ps.ml: Char Dbgops Interp Ops Prelude String Value
