(** The prettyprinter behind the [Put]/[Break]/[Begin]/[End] operators.

    The paper's ldb exposes an interface to a prettyprinter supplied with
    Modula-3; the PostScript code that prints structured data calls it so
    that large values wrap sensibly.  This is a small greedy version: [Put]
    appends text, [Break] marks a place where a newline may be taken, and
    [Begin]/[End] bracket groups whose continuation lines are indented. *)

type t = {
  out : Buffer.t;
  mutable width : int;       (** right margin *)
  mutable column : int;      (** current output column *)
  mutable indents : int list;
}

let create ?(width = 72) out = { out; width; column = 0; indents = [] }

let set_width t w = t.width <- max 8 w

let current_indent t = match t.indents with i :: _ -> i | [] -> 0

let put t (s : string) =
  String.iter
    (fun c ->
      Buffer.add_char t.out c;
      if c = '\n' then t.column <- 0 else t.column <- t.column + 1)
    s

(** Begin a group: continuation lines inside the group indent to the
    current column plus [offset]. *)
let begin_group t offset = t.indents <- (t.column + offset) :: t.indents

let end_group t = match t.indents with _ :: rest -> t.indents <- rest | [] -> ()

(** A break opportunity: if the line has passed the margin, take a newline
    and indent by the group indent plus [offset]. *)
let break t offset =
  if t.column >= t.width then begin
    Buffer.add_char t.out '\n';
    t.column <- 0;
    let ind = max 0 (current_indent t + offset) in
    put t (String.make ind ' ')
  end

let newline t =
  Buffer.add_char t.out '\n';
  t.column <- 0
