lib/exprserver/rewrite.ml: Buffer Int32 Ldb_cc Printf
