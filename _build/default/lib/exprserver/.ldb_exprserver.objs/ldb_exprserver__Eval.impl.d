lib/exprserver/eval.ml: Arch Array Exprserver Fun Hashtbl Ldb_amemory Ldb_ldb Ldb_machine Ldb_nub Ldb_pscript List Printf String
