lib/exprserver/exprserver.ml: Arch Buffer Hashtbl Int32 Ldb_cc Ldb_machine Ldb_nub List Printf Rewrite String
