(** Rewriting intermediate code into PostScript (Sec. 3).

    The expression server does not pass its IR trees to the compiler back
    end; it rewrites them as PostScript procedures for ldb's interpreter.
    The paper notes the lcc version of this rewriter is 124 lines of C for
    112 IR operators; this module is its analogue (the T7 experiment
    counts it).

    Generated code runs with [FrameMem] (the frame's joined abstract
    memory) and the per-architecture dictionary on the dictionary stack:
    target memory is reached through [DataLoc]/[Absolute] locations and
    Fetch*/Store* operators, so evaluation is machine-independent. *)

open Ldb_cc.Ir

exception Unsupported of string

let fetch_op = function
  | I1 -> "FetchI8" | U1 -> "FetchU8" | I2 -> "FetchI16" | U2 -> "FetchU16"
  | I4 -> "FetchI32" | U4 -> "FetchU32" | P4 -> "FetchU32"
  | F4 -> "FetchF32" | F8 -> "FetchF64" | F10 -> "FetchF80"
  | V -> raise (Unsupported "void load")

let store_op = function
  | I1 | U1 -> "StoreI8" | I2 | U2 -> "StoreI16" | I4 | U4 | P4 -> "StoreI32"
  | F4 -> "StoreF32" | F8 -> "StoreF64" | F10 -> "StoreF80"
  | V -> raise (Unsupported "void store")

let int_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "idiv" | Rem -> "mod"
  | Band -> "and" | Bor -> "or" | Bxor -> "xor"
  | Shl -> "bitshift" | Shr -> "neg bitshift"

let float_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div"
  | op -> raise (Unsupported ("float " ^ binop_name op))

let relop = function
  | Req -> "eq" | Rne -> "ne" | Rlt -> "lt" | Rle -> "le" | Rgt -> "gt" | Rge -> "ge"

(** Rewrite one expression tree to PostScript. *)
let rec exp buf (e : Ldb_cc.Ir.exp) =
  let add s = Buffer.add_string buf s in
  match e with
  | Cnst (_, v) -> add (Int32.to_string v)
  | Cnstf f -> add (Printf.sprintf "%.17g" f)
  | Addrg l -> raise (Unsupported ("unresolved global " ^ l))
  | Addrl _ -> raise (Unsupported "frame-relative address leaked into server IR")
  | Reguse r ->
      (* register variable: read through the frame's register space *)
      add (Printf.sprintf "FrameMem %d Regset0 Absolute FetchI32" r)
  | Indir (ty, a) ->
      add "FrameMem ";
      exp buf a;
      add (Printf.sprintf " DataLoc %s" (fetch_op ty))
  | Bin (ty, op, a, b) ->
      exp buf a;
      add " ";
      exp buf b;
      add " ";
      add (if is_float_ty ty then float_binop op else int_binop op)
  | Cmp (_, op, a, b) ->
      exp buf a;
      add " ";
      exp buf b;
      add (Printf.sprintf " %s {1} {0} ifelse" (relop op))
  | Cvt (from, to_, a) ->
      exp buf a;
      if is_float_ty from && not (is_float_ty to_) then add " truncate cvi"
      else if (not (is_float_ty from)) && is_float_ty to_ then add " cvr"
  | Asgn (ty, addr, v) ->
      (* leave the assigned value on the stack *)
      exp buf v;
      add " dup FrameMem ";
      exp buf addr;
      add (Printf.sprintf " DataLoc 3 -1 roll %s" (store_op ty))
  | Regasgn (r, v) ->
      exp buf v;
      add (Printf.sprintf " dup FrameMem %d Regset0 Absolute 3 -1 roll StoreI32" r)
  | Call _ | Callind _ ->
      raise (Unsupported "procedure calls into the target are not yet supported")

(** Rewrite a complete expression; the result is PostScript that leaves
    the expression's value on the operand stack. *)
let rewrite (e : Ldb_cc.Ir.exp) : string =
  let buf = Buffer.create 128 in
  exp buf e;
  Buffer.contents buf
