(** In-memory duplex byte channels standing in for the paper's sockets.

    A channel endpoint reads bytes its peer wrote.  Reads never block:
    when bytes are missing, the endpoint invokes its registered {e pump} —
    a closure that gives the peer a chance to produce output (for the
    debugger's endpoint, the pump runs the target's nub).  This is the
    discrete-event analogue of blocking on a socket while the other process
    runs.

    Endpoints survive a peer "crash": [disconnect] drops the link but the
    nub's endpoint object remains, matching the paper's requirement that
    the nub preserve target state across debugger crashes. *)

exception Disconnected

type fifo = { q : Buffer.t; mutable rpos : int }

let fifo () = { q = Buffer.create 256; rpos = 0 }
let fifo_len f = Buffer.length f.q - f.rpos

let fifo_read f n =
  let avail = fifo_len f in
  let take = min n avail in
  let s = Buffer.sub f.q f.rpos take in
  f.rpos <- f.rpos + take;
  if f.rpos > 65536 && f.rpos = Buffer.length f.q then begin
    Buffer.clear f.q;
    f.rpos <- 0
  end;
  s

type endpoint = {
  mutable rx : fifo;  (** bytes the peer wrote for us *)
  mutable tx : fifo;  (** bytes we write for the peer *)
  mutable connected : bool;
  mutable pump : unit -> unit;  (** let the peer make progress *)
  label : string;
}

(** Create a connected pair of endpoints. *)
let pair ?(labels = ("a", "b")) () =
  let ab = fifo () and ba = fifo () in
  let a = { rx = ba; tx = ab; connected = true; pump = (fun () -> ()); label = fst labels } in
  let b = { rx = ab; tx = ba; connected = true; pump = (fun () -> ()); label = snd labels } in
  (a, b)

let set_pump e f = e.pump <- f
let is_connected e = e.connected

(** Sever the link from this side.  The peer observes [Disconnected] on its
    next read past the already-buffered bytes. *)
let disconnect e = e.connected <- false

let send e (s : string) =
  if not e.connected then raise Disconnected;
  Buffer.add_string e.tx.q s

(** Bytes currently readable without pumping. *)
let available e = fifo_len e.rx

(** Read exactly [n] bytes, pumping the peer as needed.  Raises
    {!Disconnected} if the link is down and the bytes never arrive. *)
let recv_exactly e n =
  let buf = Buffer.create n in
  let stalled = ref 0 in
  while Buffer.length buf < n do
    let need = n - Buffer.length buf in
    let got = fifo_read e.rx need in
    Buffer.add_string buf got;
    if Buffer.length buf < n then begin
      if not e.connected then raise Disconnected;
      let before = fifo_len e.rx in
      e.pump ();
      if fifo_len e.rx = before then begin
        incr stalled;
        if !stalled > 2 then raise Disconnected
      end
      else stalled := 0
    end
  done;
  Buffer.contents buf

let recv_u8 e = Char.code (recv_exactly e 1).[0]
