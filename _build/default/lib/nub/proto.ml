(** The little-endian communication protocol between ldb and the nub
    (Sec. 4.2).

    Every message is one opcode byte followed by fixed-width little-endian
    fields.  Values fetched from target memory travel in little-endian
    order {e regardless of host and target byte order} — the nub performs
    the target-order access and re-serializes; this is what lets the same
    debugger code drive big- and little-endian targets.

    The paper notes the protocol was validated; here the codec is validated
    by qcheck round-trip properties in the test suite.

    Deliberately absent, as in the paper: breakpoint messages.
    Breakpoints are implemented entirely in the debugger with ordinary
    fetches and stores.  [Step] is the optional protocol extension the
    paper's Sec. 7.1 anticipates: a nub may not offer it, and the
    debugger must keep functioning when it doesn't. *)

open Ldb_util

type request =
  | Hello
  | Fetch of { space : char; addr : int; size : int }
      (** [size] in 1..16 bytes; the reply carries the value little-endian *)
  | Store of { space : char; addr : int; bytes : string }
  | Continue  (** restore registers from the context and resume *)
  | Step      (** protocol extension (Sec. 7.1): restore, execute one
                  instruction, stop again.  Nubs may not support it; the
                  debugger must keep working without it. *)
  | Kill
  | Detach    (** break the connection but preserve target state *)

type stop_state =
  | St_running
  | St_stopped of { signal : int; code : int; ctx_addr : int }
  | St_exited of int

type reply =
  | Hello_reply of { arch : string; state : stop_state; can_step : bool }
  | Fetched of string
  | Stored
  | Event of { signal : int; code : int; ctx_addr : int }
      (** unsolicited: the target hit a signal *)
  | Exit_event of int
  | Nub_error of string

(* --- serialization ---------------------------------------------------- *)

let u32_to_le (v : int) =
  let b = Bytes.create 4 in
  Endian.set_u32 Little b 0 (Int32.of_int v);
  Bytes.to_string b

let str16 s = u32_to_le (String.length s) ^ s

let encode_request (r : request) : string =
  match r with
  | Hello -> "H"
  | Fetch { space; addr; size } ->
      Printf.sprintf "F%c" space ^ u32_to_le addr ^ String.make 1 (Char.chr size)
  | Store { space; addr; bytes } ->
      Printf.sprintf "S%c" space ^ u32_to_le addr
      ^ String.make 1 (Char.chr (String.length bytes))
      ^ bytes
  | Continue -> "C"
  | Step -> "T"
  | Kill -> "K"
  | Detach -> "D"

let encode_reply (r : reply) : string =
  match r with
  | Hello_reply { arch; state; can_step } ->
      let st =
        match state with
        | St_running -> "r" ^ u32_to_le 0 ^ u32_to_le 0 ^ u32_to_le 0
        | St_stopped { signal; code; ctx_addr } ->
            "s" ^ u32_to_le signal ^ u32_to_le code ^ u32_to_le ctx_addr
        | St_exited status -> "x" ^ u32_to_le status ^ u32_to_le 0 ^ u32_to_le 0
      in
      "h" ^ st ^ (if can_step then "S" else "-") ^ str16 arch
  | Fetched bytes -> "f" ^ String.make 1 (Char.chr (String.length bytes)) ^ bytes
  | Stored -> "a"
  | Event { signal; code; ctx_addr } ->
      "e" ^ u32_to_le signal ^ u32_to_le code ^ u32_to_le ctx_addr
  | Exit_event status -> "X" ^ u32_to_le status
  | Nub_error msg -> "E" ^ str16 msg

(* --- deserialization over a channel endpoint --------------------------- *)

let recv_u32 ep =
  let s = Chan.recv_exactly ep 4 in
  Int32.to_int (Endian.get_u32 Little (Bytes.of_string s) 0)

let recv_str ep =
  let n = recv_u32 ep in
  if n < 0 || n > 1_000_000 then failwith "Proto: bad string length"
  else Chan.recv_exactly ep n

exception Protocol_error of string

let read_request ep : request =
  match Char.chr (Chan.recv_u8 ep) with
  | 'H' -> Hello
  | 'F' ->
      let space = Char.chr (Chan.recv_u8 ep) in
      let addr = recv_u32 ep in
      let size = Chan.recv_u8 ep in
      Fetch { space; addr; size }
  | 'S' ->
      let space = Char.chr (Chan.recv_u8 ep) in
      let addr = recv_u32 ep in
      let len = Chan.recv_u8 ep in
      let bytes = Chan.recv_exactly ep len in
      Store { space; addr; bytes }
  | 'C' -> Continue
  | 'T' -> Step
  | 'K' -> Kill
  | 'D' -> Detach
  | c -> raise (Protocol_error (Printf.sprintf "bad request opcode %C" c))

let read_reply ep : reply =
  match Char.chr (Chan.recv_u8 ep) with
  | 'h' ->
      let st = Char.chr (Chan.recv_u8 ep) in
      let a = recv_u32 ep and b = recv_u32 ep and c = recv_u32 ep in
      let can_step = Char.chr (Chan.recv_u8 ep) = 'S' in
      let arch = recv_str ep in
      let state =
        match st with
        | 'r' -> St_running
        | 's' -> St_stopped { signal = a; code = b; ctx_addr = c }
        | 'x' -> St_exited a
        | c -> raise (Protocol_error (Printf.sprintf "bad hello state %C" c))
      in
      Hello_reply { arch; state; can_step }
  | 'f' ->
      let len = Chan.recv_u8 ep in
      Fetched (Chan.recv_exactly ep len)
  | 'a' -> Stored
  | 'e' ->
      let signal = recv_u32 ep and code = recv_u32 ep and ctx_addr = recv_u32 ep in
      Event { signal; code; ctx_addr }
  | 'X' -> Exit_event (recv_u32 ep)
  | 'E' -> Nub_error (recv_str ep)
  | c -> raise (Protocol_error (Printf.sprintf "bad reply opcode %C" c))

let send_request ep r = Chan.send ep (encode_request r)
let send_reply ep r = Chan.send ep (encode_reply r)

let pp_request ppf = function
  | Hello -> Fmt.string ppf "Hello"
  | Fetch { space; addr; size } -> Fmt.pf ppf "Fetch %c:%#x/%d" space addr size
  | Store { space; addr; bytes } ->
      Fmt.pf ppf "Store %c:%#x/%d" space addr (String.length bytes)
  | Continue -> Fmt.string ppf "Continue"
  | Step -> Fmt.string ppf "Step"
  | Kill -> Fmt.string ppf "Kill"
  | Detach -> Fmt.string ppf "Detach"

let pp_reply ppf = function
  | Hello_reply { arch; _ } -> Fmt.pf ppf "HelloReply(%s)" arch
  | Fetched b -> Fmt.pf ppf "Fetched/%d" (String.length b)
  | Stored -> Fmt.string ppf "Stored"
  | Event { signal; _ } -> Fmt.pf ppf "Event(sig %d)" signal
  | Exit_event s -> Fmt.pf ppf "Exit(%d)" s
  | Nub_error m -> Fmt.pf ppf "Error(%s)" m
