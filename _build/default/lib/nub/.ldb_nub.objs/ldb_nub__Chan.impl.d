lib/nub/chan.ml: Buffer Char String
