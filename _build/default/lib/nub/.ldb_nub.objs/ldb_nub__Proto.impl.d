lib/nub/proto.ml: Bytes Chan Char Endian Fmt Int32 Ldb_util Printf String
