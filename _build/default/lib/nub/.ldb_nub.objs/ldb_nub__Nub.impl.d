lib/nub/nub.ml: Arch Bytes Chan Char Cpu Float80 Int32 Int64 Ldb_machine Ldb_util Printf Proc Proto Ram Signal String Target
