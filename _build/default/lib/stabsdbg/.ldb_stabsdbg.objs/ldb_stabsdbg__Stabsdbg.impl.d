lib/stabsdbg/stabsdbg.ml: Char Hashtbl Ldb_cc Ldb_link List String
