(** Byte-order primitives shared by the machine simulators, the nub wire
    protocol, and the abstract-memory layer.

    All multi-byte accessors operate on [Bytes.t] at a byte offset and never
    allocate.  Values are carried as [int32]/[int64] so that 32-bit target
    words are exact regardless of the host word size. *)

type order = Little | Big

let pp_order ppf = function
  | Little -> Fmt.string ppf "little"
  | Big -> Fmt.string ppf "big"

let order_equal a b =
  match (a, b) with Little, Little | Big, Big -> true | _ -> false

(* 8-bit *)

let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

(* 16-bit *)

let get_u16 order b off =
  let b0 = get_u8 b off and b1 = get_u8 b (off + 1) in
  match order with
  | Little -> b0 lor (b1 lsl 8)
  | Big -> b1 lor (b0 lsl 8)

let set_u16 order b off v =
  let lo = v land 0xff and hi = (v lsr 8) land 0xff in
  match order with
  | Little ->
      set_u8 b off lo;
      set_u8 b (off + 1) hi
  | Big ->
      set_u8 b off hi;
      set_u8 b (off + 1) lo

(* 32-bit *)

let get_u32 order b off =
  let byte i = Int32.of_int (get_u8 b (off + i)) in
  let combine b0 b1 b2 b3 =
    let ( <| ) x s = Int32.shift_left x s and ( || ) = Int32.logor in
    b0 || (b1 <| 8) || (b2 <| 16) || (b3 <| 24)
  in
  match order with
  | Little -> combine (byte 0) (byte 1) (byte 2) (byte 3)
  | Big -> combine (byte 3) (byte 2) (byte 1) (byte 0)

let set_u32 order b off (v : int32) =
  let byte i = Int32.to_int (Int32.logand (Int32.shift_right_logical v (8 * i)) 0xffl) in
  match order with
  | Little ->
      for i = 0 to 3 do
        set_u8 b (off + i) (byte i)
      done
  | Big ->
      for i = 0 to 3 do
        set_u8 b (off + i) (byte (3 - i))
      done

(* 64-bit, used for doubles travelling over the wire *)

let get_u64 order b off =
  let byte i = Int64.of_int (get_u8 b (off + i)) in
  let acc = ref 0L in
  (match order with
  | Little ->
      for i = 7 downto 0 do
        acc := Int64.logor (Int64.shift_left !acc 8) (byte i)
      done
  | Big ->
      for i = 0 to 7 do
        acc := Int64.logor (Int64.shift_left !acc 8) (byte i)
      done);
  !acc

let set_u64 order b off (v : int64) =
  let byte i = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL) in
  match order with
  | Little ->
      for i = 0 to 7 do
        set_u8 b (off + i) (byte i)
      done
  | Big ->
      for i = 0 to 7 do
        set_u8 b (off + i) (byte (7 - i))
      done

(** Sign-extend the low [bits] bits of [v]. *)
let sext v bits =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let sext32 (v : int32) = v

(** Truncate a host int to an unsigned [bits]-bit value. *)
let trunc v bits = v land ((1 lsl bits) - 1)
