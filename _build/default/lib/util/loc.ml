(** Source-line counting, used by the T1 bench to regenerate the paper's
    machine-dependent-code table (Sec. 4.3) from this repository's own
    sources.

    A line counts if it is neither blank nor a pure comment line; this is the
    convention the paper's "lines of code" figures use for Modula-3 and C. *)

let is_blank line =
  let n = String.length line in
  let rec go i = i >= n || ((line.[i] = ' ' || line.[i] = '\t') && go (i + 1)) in
  go 0

let is_comment_line line =
  let line = String.trim line in
  let starts p =
    String.length line >= String.length p && String.sub line 0 (String.length p) = p
  in
  starts "(*" || starts "*)" || starts "//" || starts "/*" || starts "%" || starts "--"

(** Count non-blank, non-comment lines in a string. *)
let count_string s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> not (is_blank l) && not (is_comment_line l))
  |> List.length

(** Count non-blank, non-comment lines in a file; 0 if unreadable. *)
let count_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> count_string s
  | exception Sys_error _ -> 0

(** Sum over every file under [dir] whose name passes [keep]. *)
let count_dir ?(keep = fun _ -> true) dir =
  let rec walk acc path =
    if Sys.is_directory path then
      Array.fold_left (fun acc f -> walk acc (Filename.concat path f)) acc (Sys.readdir path)
    else if keep path then acc + count_file path
    else acc
  in
  if Sys.file_exists dir then walk 0 dir else 0
