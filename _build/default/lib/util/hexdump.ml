(** Hex dumps for debugging target memory and wire traffic. *)

let printable c = Char.code c >= 0x20 && Char.code c < 0x7f

(** [pp ?base ppf s] renders [s] as a classic 16-bytes-per-row hex dump,
    addressing rows starting at [base] (default 0). *)
let pp ?(base = 0) ppf (s : string) =
  let n = String.length s in
  let row_start = ref 0 in
  while !row_start < n do
    let row_end = min n (!row_start + 16) in
    Fmt.pf ppf "%08x  " (base + !row_start);
    for i = !row_start to !row_start + 15 do
      if i < row_end then Fmt.pf ppf "%02x " (Char.code s.[i]) else Fmt.string ppf "   ";
      if i - !row_start = 7 then Fmt.string ppf " "
    done;
    Fmt.string ppf " |";
    for i = !row_start to row_end - 1 do
      Fmt.char ppf (if printable s.[i] then s.[i] else '.')
    done;
    Fmt.string ppf "|";
    if row_end < n then Fmt.cut ppf ();
    row_start := row_end
  done

let to_string ?base s = Fmt.str "%a" (fun ppf -> pp ?base ppf) s
