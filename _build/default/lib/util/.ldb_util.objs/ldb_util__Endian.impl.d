lib/util/endian.ml: Bytes Char Fmt Int32 Int64 Sys
