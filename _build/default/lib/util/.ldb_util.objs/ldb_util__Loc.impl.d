lib/util/loc.ml: Array Filename In_channel List String Sys
