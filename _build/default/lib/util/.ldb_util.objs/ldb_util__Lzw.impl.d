lib/util/lzw.ml: Buffer Char Hashtbl String
