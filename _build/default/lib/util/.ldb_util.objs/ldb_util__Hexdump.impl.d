lib/util/hexdump.ml: Char Fmt String
