lib/link/driver.ml: Asm Buffer Compile Ldb_cc Ldb_machine Link List Nm Printf Psemit String
