lib/link/link.ml: Arch Asm Buffer Bytes Hashtbl Insn Int32 Ldb_cc Ldb_machine Ldb_util List Proc Ram Rpt String Target
