lib/link/nm.ml: Link List Printf String
