(** The linker: lays out object files into an executable image, resolves
    relocations, and collects everything the debugger's loader interface
    needs (symbols for nm, anchor addresses, the SIM-MIPS runtime
    procedure table, the PostScript symbol tables).

    The system startup code "calls the nub instead of main": in image
    terms the entry stub calls [_main] and then traps into the kernel's
    exit; the nub gains control first because the loader starts the
    process paused under it. *)

open Ldb_machine
open Ldb_cc

exception Error of string

type image = {
  i_arch : Arch.t;
  i_code : string;
  i_data : string;
  i_entry : int;
  i_main : int;
  i_symbols : (string * int * char) list;
      (** (name, address, kind): 'T'/'D' global text/data, 't'/'d' local *)
  i_ps : Asm.ps_pieces list;
  i_stabs : string;
  i_rpt : Rpt.entry list;
}

let start_symbol = "__start"

(** The per-target startup stub: call main, then exit(main's result). *)
let startup_stub (target : Target.t) : Asm.text_item list =
  let scratch = target.Target.scratch in
  [
    Asm.Label start_symbol;
    Asm.InsR (Insn.Call 0l, "_main", 0);
    Asm.Ins (Insn.Li (scratch, Int32.of_int Ram.Layout.sysarg_base));
    Asm.Ins (Insn.Store (Insn.S32, target.Target.ret_reg, scratch, 0l));
    Asm.Ins (Insn.Syscall Proc.Sys_abi.exit);
  ]

let internal_label name =
  let prefixes = [ "L$"; "Lf$"; "Lu$"; "Lret$"; "__stop$" ] in
  List.exists
    (fun p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p)
    prefixes

(** Link a set of objects (all for the same architecture). *)
let link (objs : Asm.t list) : image =
  let arch =
    match objs with
    | [] -> raise (Error "no objects")
    | o :: rest ->
        List.iter
          (fun o' ->
            if not (Arch.equal o'.Asm.o_arch o.Asm.o_arch) then
              raise (Error "mixed architectures"))
          rest;
        o.Asm.o_arch
  in
  let target = Target.of_arch arch in
  let globals = List.concat_map (fun o -> o.Asm.o_globals) objs in
  let all_text = startup_stub target :: List.map (fun o -> o.Asm.o_text) objs in
  let all_data = List.map (fun o -> o.Asm.o_data) objs in

  (* pass 1: lay out text and data, assigning label addresses *)
  let addrs : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let define_label name addr kind_list =
    if Hashtbl.mem addrs name then raise (Error ("duplicate symbol " ^ name));
    Hashtbl.replace addrs name addr;
    kind_list := (name, addr) :: !kind_list
  in
  let text_syms = ref [] and data_syms = ref [] in
  let code_end = ref Ram.Layout.code_base in
  List.iter
    (List.iter (function
      | Asm.Label l -> define_label l !code_end text_syms
      | Asm.Ins i | Asm.InsR (i, _, _) -> code_end := !code_end + Target.insn_length target i))
    all_text;
  let data_end = ref Ram.Layout.data_base in
  List.iter
    (List.iter (function
      | Asm.Dlabel l -> define_label l !data_end data_syms
      | Asm.Dword _ | Asm.Dwordsym _ -> data_end := !data_end + 4
      | Asm.Dbytes s -> data_end := !data_end + String.length s
      | Asm.Dspace n -> data_end := !data_end + n
      | Asm.Dalign a -> data_end := (!data_end + a - 1) / a * a))
    all_data;

  let resolve sym =
    match Hashtbl.find_opt addrs sym with
    | Some a -> a
    | None -> raise (Error ("undefined symbol " ^ sym))
  in

  (* pass 2: encode *)
  let code = Buffer.create (!code_end - Ram.Layout.code_base) in
  List.iter
    (List.iter (function
      | Asm.Label _ -> ()
      | Asm.Ins i -> Buffer.add_string code (Target.encode target i)
      | Asm.InsR (i, sym, add) ->
          let v = Int32.of_int (resolve sym + add) in
          Buffer.add_string code (Target.encode target (Asm.set_imm i v))))
    all_text;
  let data = Buffer.create (max 1 (!data_end - Ram.Layout.data_base)) in
  let dpos = ref Ram.Layout.data_base in
  let emit_word (v : int32) =
    let b = Bytes.create 4 in
    Ldb_util.Endian.set_u32 (Arch.endian arch) b 0 v;
    Buffer.add_bytes data b;
    dpos := !dpos + 4
  in
  List.iter
    (List.iter (function
      | Asm.Dlabel _ -> ()
      | Asm.Dword v -> emit_word v
      | Asm.Dwordsym (sym, add) -> emit_word (Int32.of_int (resolve sym + add))
      | Asm.Dbytes s ->
          Buffer.add_string data s;
          dpos := !dpos + String.length s
      | Asm.Dspace n ->
          Buffer.add_string data (String.make n '\000');
          dpos := !dpos + n
      | Asm.Dalign a ->
          let pad = ((!dpos + a - 1) / a * a) - !dpos in
          Buffer.add_string data (String.make pad '\000');
          dpos := !dpos + pad))
    all_data;

  (* symbol list for nm *)
  let symbols =
    List.filter_map
      (fun (name, addr) ->
        if internal_label name then None
        else Some (name, addr, if List.mem name globals || name = start_symbol then 'T' else 't'))
      !text_syms
    @ List.filter_map
        (fun (name, addr) ->
          if internal_label name then None
          else Some (name, addr, if List.mem name globals then 'D' else 'd'))
        !data_syms
  in
  let symbols = List.sort (fun (_, a, _) (_, b, _) -> compare a b) symbols in

  let rpt =
    List.concat_map
      (fun o ->
        List.map
          (fun (label, fsize, raoff) ->
            { Rpt.addr = resolve label; frame_size = fsize; ra_offset = raoff })
          o.Asm.o_rpt)
      objs
  in
  {
    i_arch = arch;
    i_code = Buffer.contents code;
    i_data = Buffer.contents data;
    i_entry = resolve start_symbol;
    i_main = (match Hashtbl.find_opt addrs "_main" with Some a -> a | None -> 0);
    i_symbols = symbols;
    i_ps = List.filter_map (fun o -> o.Asm.o_ps) objs;
    i_stabs = String.concat "" (List.map (fun o -> o.Asm.o_stabs) objs);
    i_rpt = rpt;
  }

(** Load an image into a fresh simulated process. *)
let load (img : image) : Proc.t =
  let target = Target.of_arch img.i_arch in
  let p = Proc.create target in
  Ram.blit_in p.Proc.ram ~addr:Ram.Layout.code_base img.i_code;
  Ram.blit_in p.Proc.ram ~addr:Ram.Layout.data_base img.i_data;
  if Arch.equal img.i_arch Mips then Rpt.write p.Proc.ram img.i_rpt;
  p.Proc.entry <- img.i_entry;
  Proc.set_pc p img.i_entry;
  p
