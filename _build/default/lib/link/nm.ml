(** The UNIX [nm] equivalent: list an image's symbols.  The compiler
    driver transforms this output into the PostScript loader table (Sec. 3),
    which keeps ldb independent of linker and object-file formats. *)

type entry = { addr : int; kind : char; name : string }

let run (img : Link.image) : entry list =
  List.map (fun (name, addr, kind) -> { addr; kind; name }) img.Link.i_symbols
  |> List.sort (fun a b -> compare (a.addr, a.name) (b.addr, b.name))

(** Classic textual output: "00002270 T _fib". *)
let to_text entries =
  String.concat ""
    (List.map (fun e -> Printf.sprintf "%08x %c %s\n" e.addr e.kind e.name) entries)

let is_anchor name =
  String.length name >= 10 && String.sub name 0 10 = "_stanchor_"

let is_text e = e.kind = 'T' || e.kind = 't'
