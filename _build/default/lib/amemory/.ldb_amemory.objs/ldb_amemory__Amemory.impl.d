lib/amemory/amemory.ml: Bytes Char Endian Fmt Hashtbl Int32 Int64 Ldb_machine Ldb_nub Ldb_util List String
