(** lcc-style intermediate representation: typed operator trees plus a thin
    layer of statement-level control flow.

    Like lcc's IR, operators carry a type suffix; [operator_count] reports
    the size of the nominal (operator × type) table, the figure the paper
    compares against lcc's 112 operators when sizing the expression
    server's PostScript rewriter. *)

type ty = I1 | U1 | I2 | U2 | I4 | U4 | F4 | F8 | F10 | P4 | V

let ty_name = function
  | I1 -> "I1" | U1 -> "U1" | I2 -> "I2" | U2 -> "U2" | I4 -> "I4" | U4 -> "U4"
  | F4 -> "F4" | F8 -> "F8" | F10 -> "F10" | P4 -> "P4" | V -> "V"

let ty_bytes = function
  | I1 | U1 -> 1
  | I2 | U2 -> 2
  | I4 | U4 | F4 | P4 -> 4
  | F8 -> 8
  | F10 -> 10
  | V -> 0

let is_float_ty = function F4 | F8 | F10 -> true | _ -> false

(** Memory type of a C type on [arch]. *)
let of_ctype (arch : Ldb_machine.Arch.t) (t : Ctype.t) : ty =
  match t with
  | Ctype.Void -> V
  | Ctype.Char -> I1
  | Ctype.Short -> I2
  | Ctype.Int -> I4
  | Ctype.Unsigned -> U4
  | Ctype.Float -> F4
  | Ctype.Double -> F8
  | Ctype.LongDouble -> if Ldb_machine.Arch.equal arch M68k then F10 else F8
  | Ctype.Ptr _ | Ctype.Array _ | Ctype.Func _ -> P4
  | Ctype.Struct _ -> V (* aggregates are manipulated by address *)

type binop = Add | Sub | Mul | Div | Rem | Band | Bor | Bxor | Shl | Shr
type relop = Req | Rne | Rlt | Rle | Rgt | Rge

let negate_rel = function
  | Req -> Rne | Rne -> Req | Rlt -> Rge | Rge -> Rlt | Rle -> Rgt | Rgt -> Rle

type exp =
  | Cnst of ty * int32
  | Cnstf of float                       (** floating constant, computed as F8 *)
  | Addrg of string                      (** address of a label (global/static/string) *)
  | Addrl of int                         (** frame-base-relative address *)
  | Reguse of int                        (** register-allocated variable *)
  | Indir of ty * exp                    (** load; narrow loads widen to I4/U4,
                                             float loads widen to F8 *)
  | Bin of ty * binop * exp * exp        (** computation type: I4, U4 or F8 *)
  | Cmp of ty * relop * exp * exp        (** 0/1 result; ty is the operand type *)
  | Cvt of ty * ty * exp                 (** from, to *)
  | Asgn of ty * exp * exp               (** mem[addr] <- value; yields the value *)
  | Regasgn of int * exp                 (** reg <- value; yields the value *)
  | Call of ty * string * exp list       (** direct call by label *)
  | Callind of ty * exp * exp list

type stmt =
  | Sexp of exp
  | Slabel of string
  | Sjump of string
  | Scjump of ty * relop * exp * exp * string  (** conditional branch *)
  | Sret of exp option
  | Sstop of int * string                      (** stopping point: id, text label *)

(** The computed type of an expression's value. *)
let type_of = function
  | Cnst (t, _) -> t
  | Cnstf _ -> F8
  | Addrg _ | Addrl _ -> P4
  | Reguse _ -> I4
  | Indir ((t : ty), _) -> (
      match t with
      | I1 | I2 | I4 -> I4
      | U1 | U2 | U4 -> U4
      | F4 | F8 | F10 -> F8
      | P4 -> P4
      | V -> V)
  | Bin (t, _, _, _) -> t
  | Cmp _ -> I4
  | Cvt (_, t, _) -> t
  | Asgn (t, _, _) -> (
      match t with F4 | F8 | F10 -> F8 | I1 | I2 -> I4 | U1 | U2 -> U4 | t -> t)
  | Regasgn _ -> I4
  | Call (t, _, _) | Callind (t, _, _) -> t

let is_float_exp e = is_float_ty (type_of e)

(* --- pretty printing ----------------------------------------------------- *)

let binop_name = function
  | Add -> "ADD" | Sub -> "SUB" | Mul -> "MUL" | Div -> "DIV" | Rem -> "MOD"
  | Band -> "BAND" | Bor -> "BOR" | Bxor -> "BXOR" | Shl -> "LSH" | Shr -> "RSH"

let relop_name = function
  | Req -> "EQ" | Rne -> "NE" | Rlt -> "LT" | Rle -> "LE" | Rgt -> "GT" | Rge -> "GE"

let rec pp_exp ppf = function
  | Cnst (t, v) -> Fmt.pf ppf "CNST%s(%ld)" (ty_name t) v
  | Cnstf f -> Fmt.pf ppf "CNSTF8(%g)" f
  | Addrg s -> Fmt.pf ppf "ADDRG(%s)" s
  | Addrl o -> Fmt.pf ppf "ADDRL(%d)" o
  | Reguse r -> Fmt.pf ppf "REG(%d)" r
  | Indir (t, e) -> Fmt.pf ppf "INDIR%s(%a)" (ty_name t) pp_exp e
  | Bin (t, op, a, b) -> Fmt.pf ppf "%s%s(%a,%a)" (binop_name op) (ty_name t) pp_exp a pp_exp b
  | Cmp (t, op, a, b) -> Fmt.pf ppf "%s%s(%a,%a)" (relop_name op) (ty_name t) pp_exp a pp_exp b
  | Cvt (f, t, e) -> Fmt.pf ppf "CV%s%s(%a)" (ty_name f) (ty_name t) pp_exp e
  | Asgn (t, a, v) -> Fmt.pf ppf "ASGN%s(%a,%a)" (ty_name t) pp_exp a pp_exp v
  | Regasgn (r, v) -> Fmt.pf ppf "ASGNREG(%d,%a)" r pp_exp v
  | Call (t, f, args) ->
      Fmt.pf ppf "CALL%s(%s%a)" (ty_name t) f
        (fun ppf -> List.iter (Fmt.pf ppf ",%a" pp_exp))
        args
  | Callind (t, f, args) ->
      Fmt.pf ppf "CALLI%s(%a%a)" (ty_name t) pp_exp f
        (fun ppf -> List.iter (Fmt.pf ppf ",%a" pp_exp))
        args

let pp_stmt ppf = function
  | Sexp e -> Fmt.pf ppf "EXP %a" pp_exp e
  | Slabel l -> Fmt.pf ppf "LABEL %s:" l
  | Sjump l -> Fmt.pf ppf "JUMP %s" l
  | Scjump (t, op, a, b, l) ->
      Fmt.pf ppf "CJUMP %s%s(%a,%a) -> %s" (relop_name op) (ty_name t) pp_exp a pp_exp b l
  | Sret None -> Fmt.string ppf "RET"
  | Sret (Some e) -> Fmt.pf ppf "RET %a" pp_exp e
  | Sstop (n, _) -> Fmt.pf ppf "STOP %d" n

(** Size of the nominal operator x type table, lcc-style (cf. lcc's 112
    operators).  This is the table the expression server's rewriter covers. *)
let operator_count =
  let mem_tys = 9 (* I1 U1 I2 U2 I4 U4 F4 F8 P4; F10 counted per target *) in
  let cnst = 4 (* CNSTI4 CNSTU4 CNSTP4 CNSTF8 *) in
  let addr = 3 (* ADDRG ADDRL REG *) in
  let indir = mem_tys in
  let asgn = mem_tys + 1 (* + ASGNREG *) in
  let bin = 10 * 2 (* I4/U4 *) + (5 * 1) (* ADD SUB MUL DIV on F8, plus NEG folded *) in
  let cmp = 6 * 3 (* I4 U4 F8 *) in
  let cvt = 12 (* II widen/narrow, IF, FI, FF pairs *) in
  let call = 3 (* CALLI CALLF CALLV *) in
  let control = 4 (* LABEL JUMP CJUMP RET *) in
  cnst + addr + indir + asgn + bin + cmp + cvt + call + control
