(** Code generation: lcc-style IR trees to abstract assembly.

    One generator serves all four targets; everything machine-dependent
    comes from the [Target] descriptor (registers, conventions, frame
    discipline).  Notable conventions, chosen to mirror the real machines:

    - SIM-MIPS has no frame pointer and, like real MIPS code, keeps sp
      fixed after the prologue: outgoing arguments live in a pre-allocated
      area at the bottom of the frame, values live across calls are saved
      in per-nesting-level save areas, and arguments are staged per level
      before being copied to the outgoing area — so the runtime procedure
      table is sufficient to walk the stack.  The virtual frame pointer
      (vfp = sp at entry) exists only in the debug information.
    - Arguments are fully materialized in the caller's outgoing stack area
      ("home area"); on register-argument targets the leading units are
      additionally loaded into argument registers, and the callee's
      prologue stores them back to their homes so every parameter has a
      memory address the debugger can use.
    - [register]-class variables live in callee-saved registers; the
      prologue saves them to frame slots recorded in the debug information
      so the debugger can walk past the frame.
    - Calls to [printf]/[exit]/[abort] lower to the simulated kernel's
      syscall ABI (arguments staged in the kernel argument block). *)

open Ldb_machine
open Ir

exception Error of string

let gen_fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type ctx = {
  target : Target.t;
  fi : Sema.func_ir;
  epilogue : string;
  mutable out : Asm.text_item list;  (* reversed *)
  mutable gdata : Asm.data_item list;  (* reversed: float constant pool *)
  mutable push_depth : int;  (* outstanding pushed words (fp targets only) *)
  mutable free_i : int list;
  mutable free_f : int list;
  mutable npool : int;
  unit_tag : string;
  (* fixed-sp (SIM-MIPS) frame plan *)
  fixed_sp : bool;
  out_words : int;        (* outgoing-argument area, in words *)
  depth_max : int;        (* maximum call nesting *)
  save_bytes : int;       (* per-level temp-save area *)
  frame_total : int;      (* complete frame size, known before the prologue *)
  mutable call_level : int;
}

(* sp-relative offsets of the fixed-sp areas *)
let stage_off c level u = (4 * c.out_words) + (level * 4 * c.out_words) + (4 * u)
let save_off c level = (4 * c.out_words * (1 + c.depth_max)) + (level * c.save_bytes)

let save_slot_i c level idx = save_off c level + (4 * idx)
let save_slot_f c level idx =
  save_off c level + (4 * List.length c.target.Target.temps) + (8 * idx)

let index_of x l =
  let rec go i = function [] -> gen_fail "no such register" | y :: r -> if y = x then i else go (i+1) r in
  go 0 l

let emit c i = c.out <- Asm.Ins i :: c.out
let emit_r c i sym add = c.out <- Asm.InsR (i, sym, add) :: c.out
let emit_label c l = c.out <- Asm.Label l :: c.out

let get_i c =
  match c.free_i with
  | r :: rest ->
      c.free_i <- rest;
      r
  | [] -> gen_fail "%s: expression too complex (out of integer temporaries)" c.fi.Sema.fi_name

(* round-robin release: freshly freed temporaries go to the back of the
   pool, which keeps consecutive statements in distinct registers and
   gives the delay-slot scheduler independent instructions to move *)
let put_i c r = if List.mem r c.target.Target.temps then c.free_i <- c.free_i @ [ r ]

let get_f c =
  match c.free_f with
  | r :: rest ->
      c.free_f <- rest;
      r
  | [] -> gen_fail "%s: expression too complex (out of float temporaries)" c.fi.Sema.fi_name

let put_f c r = if List.mem r c.target.Target.ftemps then c.free_f <- c.free_f @ [ r ]

let in_use_i c = List.filter (fun r -> not (List.mem r c.free_i)) c.target.Target.temps
let in_use_f c = List.filter (fun r -> not (List.mem r c.free_f)) c.target.Target.ftemps

(* --- frame addressing ---------------------------------------------------- *)

(** Base register and displacement addressing frame offset [off]. *)
let frame_operand c off =
  match c.target.Target.fp with
  | Some fp -> (fp, off)
  | None ->
      (* SIM-MIPS: sp is fixed after the prologue, vfp = sp + frame size *)
      assert (c.push_depth = 0);
      (c.target.Target.sp, c.frame_total + off)

let mem_size = function
  | I1 | U1 -> Insn.S8
  | I2 | U2 -> Insn.S16
  | I4 | U4 | P4 -> Insn.S32
  | t -> gen_fail "bad integer memory type %s" (Ir.ty_name t)

let fmem_size = function
  | F4 -> Insn.F32
  | F8 -> Insn.F64
  | F10 -> Insn.F80
  | t -> gen_fail "bad float memory type %s" (Ir.ty_name t)

(** Pool label for a floating constant. *)
let float_const c (v : float) =
  c.npool <- c.npool + 1;
  let l = Printf.sprintf "Lf$%s$%s$%d" c.unit_tag c.fi.Sema.fi_name c.npool in
  let b = Bytes.create 8 in
  Ldb_util.Endian.set_u64 (Target.order c.target) b 0 (Int64.bits_of_float v);
  c.gdata <- Asm.Dbytes (Bytes.to_string b) :: Asm.Dlabel l :: Asm.Dalign 8 :: c.gdata;
  l

(* --- Sethi-Ullman register need ------------------------------------------- *)

(** Registers needed to evaluate an expression with optimal operand
    ordering.  Calls need only one register from the caller's point of
    view: live temporaries are saved around them. *)
let rec su_need (e : Ir.exp) : int =
  match e with
  | Cnst _ | Cnstf _ | Addrg _ | Addrl _ | Reguse _ -> 1
  | Indir (_, a) | Cvt (_, _, a) | Regasgn (_, a) -> max 1 (su_need a)
  | Bin (_, _, a, b) | Cmp (_, _, a, b) | Asgn (_, a, b) ->
      let na = su_need a and nb = su_need b in
      if na = nb then na + 1 else max na nb
  | Call _ | Callind _ -> 1

(* --- addressing-mode selection -------------------------------------------- *)

(** Evaluate an address expression into (base register or scratch setup,
    displacement).  The returned register must be released with [put_i]
    unless it is a dedicated register. *)
let rec addr_operand c (a : Ir.exp) : Insn.reg * int32 * bool (* release? *) =
  match a with
  | Addrl off ->
      let base, disp = frame_operand c off in
      (base, Int32.of_int disp, false)
  | Bin (P4, Add, e, Cnst (_, k)) ->
      let r, d, rel = addr_operand c e in
      (r, Int32.add d k, rel)
  | Addrg l ->
      let r = get_i c in
      emit_r c (Insn.Li (r, 0l)) l 0;
      (r, 0l, true)
  | e ->
      let r = eval c e in
      (r, 0l, true)

(* --- integer evaluation ---------------------------------------------------- *)

and eval c (e : Ir.exp) : Insn.reg =
  match e with
  | Cnst (_, v) ->
      let r = get_i c in
      emit c (Insn.Li (r, v));
      r
  | Cnstf _ -> gen_fail "float value in integer context"
  | Addrg l ->
      let r = get_i c in
      emit_r c (Insn.Li (r, 0l)) l 0;
      r
  | Addrl off ->
      let base, disp = frame_operand c off in
      let r = get_i c in
      emit c (Insn.Alui (Insn.Add, r, base, Int32.of_int disp));
      r
  | Reguse rv ->
      let r = get_i c in
      emit c (Insn.Mov (r, rv));
      r
  | Indir ((F4 | F8 | F10), _) -> gen_fail "float load in integer context"
  | Indir (ty, a) ->
      let base, disp, rel = addr_operand c a in
      let rd = if rel && List.mem base c.target.Target.temps then base else get_i c in
      (match ty with
      | U1 | U2 -> emit c (Insn.Loadu (mem_size ty, rd, base, disp))
      | _ -> emit c (Insn.Load (mem_size ty, rd, base, disp)));
      if rel && base <> rd then put_i c base;
      rd
  | Bin ((F4 | F8 | F10), _, _, _) -> gen_fail "float arithmetic in integer context"
  | Bin (ty, Shr, a, b) when ty = U4 -> unsigned_shr c a b
  | Bin (ty, op, a, b) ->
      (* Sethi-Ullman: evaluate the register-hungrier operand first *)
      let ra, rb =
        if su_need a >= su_need b then
          let ra = eval c a in
          (ra, eval c b)
        else
          let rb = eval c b in
          (eval c a, rb)
      in
      let op' =
        match (ty, op) with
        | U4, Div -> Insn.Divu
        | U4, Rem -> Insn.Remu
        | _ -> alu_of_binop op
      in
      emit c (Insn.Alu (op', ra, ra, rb));
      put_i c rb;
      ra
  | Cmp (ty, rel, a, b) -> compare_value c ty rel a b
  | Cvt (_, (F4 | F8 | F10), _) -> gen_fail "float conversion in integer context"
  | Cvt ((F4 | F8 | F10), _, e) ->
      let f = feval c e in
      let r = get_i c in
      emit c (Insn.Cvtfi (r, f));
      put_f c f;
      r
  | Cvt (_, _, e) -> eval c e  (* integer-to-integer: 32-bit computation *)
  | Asgn (ty, a, v) -> (
      match ty with
      | F4 | F8 | F10 -> gen_fail "float assignment in integer context"
      | _ ->
          let rv = eval c v in
          let base, disp, rel = addr_operand c a in
          emit c (Insn.Store (mem_size ty, rv, base, disp));
          if rel then put_i c base;
          rv)
  | Regasgn (rv, v) ->
      let r = eval c v in
      emit c (Insn.Mov (rv, r));
      r
  | Call (ty, fn, args) -> (
      match do_call c ty (`Direct fn) args with
      | `Int r -> r
      | `Flt _ -> gen_fail "float call result in integer context"
      | `Void ->
          (* void result used as int 0 (e.g. printf in expressions) *)
          let r = get_i c in
          emit c (Insn.Li (r, 0l));
          r)
  | Callind (ty, fe, args) -> (
      match do_call c ty (`Indirect fe) args with
      | `Int r -> r
      | `Flt _ -> gen_fail "float call result in integer context"
      | `Void ->
          let r = get_i c in
          emit c (Insn.Li (r, 0l));
          r)

and alu_of_binop = function
  | Add -> Insn.Add
  | Sub -> Insn.Sub
  | Mul -> Insn.Mul
  | Div -> Insn.Div
  | Rem -> Insn.Rem
  | Band -> Insn.And
  | Bor -> Insn.Or
  | Bxor -> Insn.Xor
  | Shl -> Insn.Shl
  | Shr -> Insn.Shr

(** Unsigned right shift, which the shared ALU lacks: mask after an
    arithmetic shift ((x >> n) & (0x7fffffff >> (n-1))), with a branch for
    the n = 0 case when n is not a constant. *)
and unsigned_shr c a b =
  match b with
  | Cnst (_, n) ->
      let n = Int32.to_int n land 31 in
      let ra = eval c a in
      if n = 0 then ra
      else begin
        emit c (Insn.Alui (Insn.Shr, ra, ra, Int32.of_int n));
        let rm = get_i c in
        emit c (Insn.Li (rm, Int32.of_int ((0x7fffffff asr (n - 1)) land 0xffffffff)));
        emit c (Insn.Alu (Insn.And, ra, ra, rm));
        put_i c rm;
        ra
      end
  | _ ->
      let ra = eval c a in
      let rn = eval c b in
      let skip = Printf.sprintf "Lu$%s$%s$%d" c.unit_tag c.fi.Sema.fi_name (c.npool + 100000) in
      c.npool <- c.npool + 1;
      let rz = get_i c in
      emit c (Insn.Li (rz, 0l));
      emit_r c (Insn.Br (Insn.Eq, rn, rz, 0l)) skip 0;
      emit c (Insn.Alu (Insn.Shr, ra, ra, rn));
      let rm = get_i c in
      emit c (Insn.Li (rm, 0x7fffffffl));
      emit c (Insn.Alui (Insn.Sub, rn, rn, 1l));
      emit c (Insn.Alu (Insn.Shr, rm, rm, rn));
      emit c (Insn.Alu (Insn.And, ra, ra, rm));
      put_i c rm;
      emit_label c skip;
      put_i c rz;
      put_i c rn;
      ra

(** Materialize a 0/1 comparison result. *)
and compare_value c ty rel a b : Insn.reg =
  match ty with
  | F4 | F8 | F10 ->
      let fa = feval c a in
      let fb = feval c b in
      let r = get_i c in
      emit c (Insn.Fcmp (cond_of_rel rel, r, fa, fb));
      put_f c fa;
      put_f c fb;
      r
  | _ ->
      let slt = if ty = U4 then Insn.Sltu else Insn.Slt in
      let ra, rb =
        if su_need a >= su_need b then
          let ra = eval c a in
          (ra, eval c b)
        else
          let rb = eval c b in
          (eval c a, rb)
      in
      let result r = r in
      let r =
        match rel with
        | Rlt ->
            emit c (Insn.Alu (slt, ra, ra, rb));
            put_i c rb;
            result ra
        | Rgt ->
            emit c (Insn.Alu (slt, ra, rb, ra));
            put_i c rb;
            result ra
        | Rge ->
            emit c (Insn.Alu (slt, ra, ra, rb));
            emit c (Insn.Alui (Insn.Xor, ra, ra, 1l));
            put_i c rb;
            result ra
        | Rle ->
            emit c (Insn.Alu (slt, ra, rb, ra));
            emit c (Insn.Alui (Insn.Xor, ra, ra, 1l));
            put_i c rb;
            result ra
        | Req ->
            emit c (Insn.Alu (Insn.Xor, ra, ra, rb));
            emit c (Insn.Li (rb, 1l));
            emit c (Insn.Alu (Insn.Sltu, ra, ra, rb));
            put_i c rb;
            result ra
        | Rne ->
            emit c (Insn.Alu (Insn.Xor, ra, ra, rb));
            emit c (Insn.Li (rb, 0l));
            emit c (Insn.Alu (Insn.Sltu, ra, rb, ra));
            put_i c rb;
            result ra
      in
      r

and cond_of_rel = function
  | Req -> Insn.Eq
  | Rne -> Insn.Ne
  | Rlt -> Insn.Lt
  | Rle -> Insn.Le
  | Rgt -> Insn.Gt
  | Rge -> Insn.Ge

(* --- float evaluation ------------------------------------------------------ *)

and feval c (e : Ir.exp) : Insn.freg =
  match e with
  | Cnstf v ->
      let l = float_const c v in
      let rb = get_i c in
      emit_r c (Insn.Li (rb, 0l)) l 0;
      let f = get_f c in
      emit c (Insn.Fload (Insn.F64, f, rb, 0l));
      put_i c rb;
      f
  | Indir (((F4 | F8 | F10) as ty), a) ->
      let base, disp, rel = addr_operand c a in
      let f = get_f c in
      emit c (Insn.Fload (fmem_size ty, f, base, disp));
      if rel then put_i c base;
      f
  | Bin ((F4 | F8 | F10), op, a, b) ->
      let fa, fb =
        if su_need a >= su_need b then
          let fa = feval c a in
          (fa, feval c b)
        else
          let fb = feval c b in
          (feval c a, fb)
      in
      let fop =
        match op with
        | Add -> Insn.Fadd
        | Sub -> Insn.Fsub
        | Mul -> Insn.Fmul
        | Div -> Insn.Fdiv
        | op -> gen_fail "float %s not supported" (Ir.binop_name op)
      in
      emit c (Insn.Falu (fop, fa, fa, fb));
      put_f c fb;
      fa
  | Cvt (_, (F4 | F8 | F10), e) when not (Ir.is_float_exp e) ->
      let r = eval c e in
      let f = get_f c in
      emit c (Insn.Cvtif (f, r));
      put_i c r;
      f
  | Cvt ((F4 | F8 | F10), (F4 | F8 | F10), e) -> feval c e
  | Asgn (((F4 | F8 | F10) as ty), a, v) ->
      let fv = feval c v in
      let base, disp, rel = addr_operand c a in
      emit c (Insn.Fstore (fmem_size ty, fv, base, disp));
      if rel then put_i c base;
      fv
  | Call (ty, fn, args) -> (
      match do_call c ty (`Direct fn) args with
      | `Flt f -> f
      | `Int _ | `Void -> gen_fail "integer call result in float context")
  | Callind (ty, fe, args) -> (
      match do_call c ty (`Indirect fe) args with
      | `Flt f -> f
      | `Int _ | `Void -> gen_fail "integer call result in float context")
  | e -> gen_fail "integer value in float context: %s" (Fmt.str "%a" Ir.pp_exp e)

(* --- calls ------------------------------------------------------------------ *)

and push_int c r =
  emit c (Insn.Push r);
  c.push_depth <- c.push_depth + 1

and pop_int c r =
  emit c (Insn.Pop r);
  c.push_depth <- c.push_depth - 1

and push_f64 c f =
  let sp = c.target.Target.sp in
  emit c (Insn.Alui (Insn.Add, sp, sp, -8l));
  emit c (Insn.Fstore (Insn.F64, f, sp, 0l));
  c.push_depth <- c.push_depth + 2

and call_result c rty : [ `Int of Insn.reg | `Flt of Insn.freg | `Void ] =
  let t = c.target in
  match rty with
  | V -> `Void
  | F4 | F8 | F10 ->
      let f = get_f c in
      emit c (Insn.Fmov (f, t.Target.fret_reg));
      `Flt f
  | _ ->
      let r = get_i c in
      emit c (Insn.Mov (r, t.Target.ret_reg));
      `Int r

and copy_words c ~src ~dst_reg ~dst ~n =
  (* word copy through registers, pipelined two at a time so that no load's
     consumer sits in its delay slot *)
  let t = c.target in
  let sp = t.Target.sp in
  let dbase = match dst_reg with Some r -> r | None -> sp in
  let r1 = t.Target.scratch in
  let r2 = match c.free_i with r :: _ -> Some r | [] -> None in
  (match r2 with
  | Some r2 ->
      let u = ref 0 in
      while !u < n do
        if !u + 1 < n then begin
          emit c (Insn.Load (Insn.S32, r1, sp, Int32.of_int (src !u)));
          emit c (Insn.Load (Insn.S32, r2, sp, Int32.of_int (src (!u + 1))));
          emit c (Insn.Store (Insn.S32, r1, dbase, Int32.of_int (dst !u)));
          emit c (Insn.Store (Insn.S32, r2, dbase, Int32.of_int (dst (!u + 1))));
          u := !u + 2
        end
        else begin
          emit c (Insn.Load (Insn.S32, r1, sp, Int32.of_int (src !u)));
          emit c (Insn.Store (Insn.S32, r1, dbase, Int32.of_int (dst !u)));
          incr u
        end
      done
  | None ->
      for u = 0 to n - 1 do
        emit c (Insn.Load (Insn.S32, r1, sp, Int32.of_int (src u)));
        emit c (Insn.Store (Insn.S32, r1, dbase, Int32.of_int (dst u)))
      done)

and do_call c rty callee args : [ `Int of Insn.reg | `Flt of Insn.freg | `Void ] =
  match callee with
  | `Direct "_printf" -> do_kernel_call c 1 args true
  | `Direct "_exit" -> do_kernel_call c 0 args false
  | `Direct "_abort" -> do_kernel_call c 2 args false
  | _ -> if c.fixed_sp then do_call_fixed c rty callee args else do_call_push c rty callee args

(** Fixed-sp calling sequence (SIM-MIPS): live temporaries go to the
    current nesting level's save area; arguments are evaluated into the
    level's staging area (inner calls use deeper levels, so nothing is
    clobbered), then copied to the outgoing area at the bottom of the
    frame, where the callee's parameter homes alias them. *)
and do_call_fixed c rty callee args : [ `Int of Insn.reg | `Flt of Insn.freg | `Void ] =
  let t = c.target in
  let sp = t.Target.sp in
  let level = c.call_level in
  if level >= c.depth_max then gen_fail "%s: call nesting deeper than planned" c.fi.Sema.fi_name;
  let live_i = in_use_i c in
  let live_f = in_use_f c in
  List.iter
    (fun r ->
      let idx = index_of r t.Target.temps in
      emit c (Insn.Store (Insn.S32, r, sp, Int32.of_int (save_slot_i c level idx))))
    live_i;
  List.iter
    (fun f ->
      let idx = index_of f t.Target.ftemps in
      emit c (Insn.Fstore (Insn.F64, f, sp, Int32.of_int (save_slot_f c level idx))))
    live_f;
  (* evaluate arguments right-to-left (matching the push-based targets)
     into this level's staging area, at precomputed unit offsets *)
  c.call_level <- level + 1;
  let with_units =
    let u = ref 0 in
    List.map
      (fun a ->
        let here = !u in
        u := !u + (if Ir.is_float_exp a then 2 else 1);
        (a, here))
      args
  in
  let units = ref (List.fold_left (fun n (a, _) -> n + if Ir.is_float_exp a then 2 else 1) 0 with_units) in
  List.iter
    (fun (a, off) ->
      if Ir.is_float_exp a then begin
        let f = feval c a in
        emit c (Insn.Fstore (Insn.F64, f, sp, Int32.of_int (stage_off c level off)));
        put_f c f
      end
      else begin
        let r = eval c a in
        emit c (Insn.Store (Insn.S32, r, sp, Int32.of_int (stage_off c level off)));
        put_i c r
      end)
    (List.rev with_units);
  (* an indirect callee is evaluated while inner calls are still legal *)
  let callee_reg = match callee with `Indirect fe -> Some (eval c fe) | `Direct _ -> None in
  c.call_level <- level;
  (* copy staging to the outgoing area (no calls can intervene); the copy
     is software-pipelined over two registers so the SIM-MIPS load delay
     costs nothing *)
  copy_words c ~src:(fun u -> stage_off c level u) ~dst_reg:None ~dst:(fun u -> 4 * u)
    ~n:!units;
  (* leading units also travel in argument registers *)
  List.iteri
    (fun u r -> if u < !units then emit c (Insn.Load (Insn.S32, r, sp, Int32.of_int (4 * u))))
    t.Target.arg_regs;
  (match (callee, callee_reg) with
  | `Direct fn, _ -> emit_r c (Insn.Call 0l) fn 0
  | `Indirect _, Some r ->
      emit c (Insn.Callr r);
      put_i c r
  | `Indirect _, None -> assert false);
  let result = call_result c rty in
  (* restore saved temporaries *)
  List.iter
    (fun f ->
      let idx = index_of f t.Target.ftemps in
      emit c (Insn.Fload (Insn.F64, f, sp, Int32.of_int (save_slot_f c level idx))))
    (List.rev live_f);
  List.iter
    (fun r ->
      let idx = index_of r t.Target.temps in
      emit c (Insn.Load (Insn.S32, r, sp, Int32.of_int (save_slot_i c level idx))))
    (List.rev live_i);
  result

(** Push-based calling sequence (frame-pointer targets): arguments and
    saved temporaries go on the stack; fp-chain walking is immune to the
    moving sp. *)
and do_call_push c rty callee args : [ `Int of Insn.reg | `Flt of Insn.freg | `Void ] =
  let t = c.target in
  let live_i = in_use_i c in
  let live_f = in_use_f c in
  List.iter (fun r -> push_int c r) live_i;
  List.iter (fun f -> push_f64 c f) live_f;
  (* arguments: evaluate and push right-to-left *)
  let units = ref 0 in
  List.iter
    (fun a ->
      if Ir.is_float_exp a then begin
        let f = feval c a in
        push_f64 c f;
        put_f c f;
        units := !units + 2
      end
      else begin
        let r = eval c a in
        push_int c r;
        put_i c r;
        units := !units + 1
      end)
    (List.rev args);
  (* load leading units into argument registers (homes stay intact) *)
  let sp = t.Target.sp in
  List.iteri
    (fun u r ->
      if u < !units then emit c (Insn.Load (Insn.S32, r, sp, Int32.of_int (4 * u))))
    t.Target.arg_regs;
  (match callee with
  | `Direct fn -> emit_r c (Insn.Call 0l) fn 0
  | `Indirect fe ->
      let r = eval c fe in
      emit c (Insn.Callr r);
      put_i c r);
  (* caller pops the argument area *)
  if !units > 0 then begin
    emit c (Insn.Alui (Insn.Add, sp, sp, Int32.of_int (4 * !units)));
    c.push_depth <- c.push_depth - !units
  end;
  let result = call_result c rty in
  (* restore saved temporaries *)
  List.iter
    (fun f ->
      emit c (Insn.Fload (Insn.F64, f, sp, 0l));
      emit c (Insn.Alui (Insn.Add, sp, sp, 8l));
      c.push_depth <- c.push_depth - 2)
    (List.rev live_f);
  List.iter (fun r -> pop_int c r) (List.rev live_i);
  result

(** Calls lowered to the simulated kernel: arguments are staged (so that
    nested calls inside arguments cannot clobber the kernel block), then
    copied into the kernel argument block, then a syscall. *)
and do_kernel_call c sysno args yields_int : [ `Int of Insn.reg | `Flt of Insn.freg | `Void ] =
  let t = c.target in
  let sp = t.Target.sp in
  let base = Ram.Layout.sysarg_base in
  let scratch = t.Target.scratch in
  if c.fixed_sp then begin
    let level = c.call_level in
    if level >= c.depth_max then gen_fail "%s: call nesting deeper than planned" c.fi.Sema.fi_name;
    c.call_level <- level + 1;
    let with_units =
      let u = ref 0 in
      List.map
        (fun a ->
          let here = !u in
          u := !u + (if Ir.is_float_exp a then 2 else 1);
          (a, here))
        args
    in
    let units =
      ref (List.fold_left (fun n (a, _) -> n + if Ir.is_float_exp a then 2 else 1) 0 with_units)
    in
    List.iter
      (fun (a, off) ->
        if Ir.is_float_exp a then begin
          let f = feval c a in
          emit c (Insn.Fstore (Insn.F64, f, sp, Int32.of_int (stage_off c level off)));
          put_f c f
        end
        else begin
          let r = eval c a in
          emit c (Insn.Store (Insn.S32, r, sp, Int32.of_int (stage_off c level off)));
          put_i c r
        end)
      (List.rev with_units);
    c.call_level <- level;
    let rb = get_i c in
    emit c (Insn.Li (rb, Int32.of_int base));
    copy_words c ~src:(fun u -> stage_off c level u) ~dst_reg:(Some rb) ~dst:(fun u -> 4 * u)
      ~n:!units;
    put_i c rb
  end
  else begin
    (* push-staging: evaluate right-to-left onto the stack, then pop the
       values into the kernel block in forward order *)
    let units = ref 0 in
    List.iter
      (fun a ->
        if Ir.is_float_exp a then begin
          let f = feval c a in
          push_f64 c f;
          put_f c f;
          units := !units + 2
        end
        else begin
          let r = eval c a in
          push_int c r;
          put_i c r;
          units := !units + 1
        end)
      (List.rev args);
    let rb = get_i c in
    emit c (Insn.Li (rb, Int32.of_int base));
    for u = 0 to !units - 1 do
      emit c (Insn.Load (Insn.S32, scratch, sp, Int32.of_int (4 * u)));
      emit c (Insn.Store (Insn.S32, scratch, rb, Int32.of_int (4 * u)))
    done;
    if !units > 0 then begin
      emit c (Insn.Alui (Insn.Add, sp, sp, Int32.of_int (4 * !units)));
      c.push_depth <- c.push_depth - !units
    end;
    put_i c rb
  end;
  emit c (Insn.Syscall sysno);
  if yields_int then begin
    let r = get_i c in
    emit c (Insn.Li (r, 0l));
    `Int r
  end
  else `Void

(* --- statements -------------------------------------------------------------- *)

let eval_void c (e : Ir.exp) =
  match e with
  | Call (V, fn, args) -> ( match do_call c V (`Direct fn) args with _ -> ())
  | Callind (V, fe, args) -> ( match do_call c V (`Indirect fe) args with _ -> ())
  | e ->
      if Ir.is_float_exp e then put_f c (feval c e)
      else (
        match Ir.type_of e with
        | V -> (
            match e with
            | Call (_, fn, args) -> ignore (do_call c V (`Direct fn) args)
            | Callind (_, fe, args) -> ignore (do_call c V (`Indirect fe) args)
            | _ -> ())
        | _ -> put_i c (eval c e))

let do_stmt c (s : Ir.stmt) =
  match s with
  | Sexp e -> eval_void c e
  | Slabel l -> emit_label c l
  | Sjump l -> emit_r c (Insn.Jmp 0l) l 0
  | Sstop (_, label) ->
      emit_label c label;
      emit c Insn.Nop
  | Scjump (ty, rel, a, b, l) -> (
      match ty with
      | F4 | F8 | F10 ->
          let fa = feval c a in
          let fb = feval c b in
          let r = get_i c in
          emit c (Insn.Fcmp (cond_of_rel rel, r, fa, fb));
          put_f c fa;
          put_f c fb;
          let rz = get_i c in
          emit c (Insn.Li (rz, 0l));
          emit_r c (Insn.Br (Insn.Ne, r, rz, 0l)) l 0;
          put_i c rz;
          put_i c r
      | U4 when rel <> Req && rel <> Rne ->
          let r = compare_value c U4 rel a b in
          let rz = get_i c in
          emit c (Insn.Li (rz, 0l));
          emit_r c (Insn.Br (Insn.Ne, r, rz, 0l)) l 0;
          put_i c rz;
          put_i c r
      | _ ->
          let ra = eval c a in
          let rb = eval c b in
          emit_r c (Insn.Br (cond_of_rel rel, ra, rb, 0l)) l 0;
          put_i c ra;
          put_i c rb)
  | Sret None -> emit_r c (Insn.Jmp 0l) c.epilogue 0
  | Sret (Some e) ->
      let t = c.target in
      if Ir.is_float_exp e then begin
        let f = feval c e in
        emit c (Insn.Fmov (t.Target.fret_reg, f));
        put_f c f
      end
      else begin
        let r = eval c e in
        emit c (Insn.Mov (t.Target.ret_reg, r));
        put_i c r
      end;
      emit_r c (Insn.Jmp 0l) c.epilogue 0

(* --- prologue / epilogue ------------------------------------------------------ *)

let prologue c =
  let t = c.target in
  let fi = c.fi in
  let sp = t.Target.sp in
  (match t.Target.fp with
  | Some fp ->
      emit c (Insn.Push fp);
      emit c (Insn.Mov (fp, sp));
      if fi.Sema.fi_locals_bytes > 0 then
        emit c (Insn.Alui (Insn.Add, sp, sp, Int32.of_int (-fi.Sema.fi_locals_bytes)));
      (match t.Target.ra with
      | Some ra -> emit c (Insn.Store (Insn.S32, ra, fp, -4l))
      | None -> ())
  | None ->
      (* SIM-MIPS: one sp adjustment for the whole frame plan *)
      emit c (Insn.Alui (Insn.Add, sp, sp, Int32.of_int (-c.frame_total)));
      (match t.Target.ra with
      | Some ra -> emit c (Insn.Store (Insn.S32, ra, sp, Int32.of_int (c.frame_total - 4)))
      | None -> ()));
  (* store argument registers back to their homes *)
  List.iter
    (fun (r, home) ->
      let base, disp = frame_operand c home in
      emit c (Insn.Store (Insn.S32, r, base, Int32.of_int disp)))
    fi.Sema.fi_reg_param_stores;
  (* save register variables *)
  List.iter
    (fun (r, slot) ->
      let base, disp = frame_operand c slot in
      emit c (Insn.Store (Insn.S32, r, base, Int32.of_int disp)))
    fi.Sema.fi_saved_regs

let epilogue c =
  let t = c.target in
  let fi = c.fi in
  let sp = t.Target.sp in
  emit_label c c.epilogue;
  (* restore register variables *)
  List.iter
    (fun (r, slot) ->
      let base, disp = frame_operand c slot in
      emit c (Insn.Load (Insn.S32, r, base, Int32.of_int disp)))
    fi.Sema.fi_saved_regs;
  (match t.Target.fp with
  | Some fp ->
      (match t.Target.ra with
      | Some ra -> emit c (Insn.Load (Insn.S32, ra, fp, -4l))
      | None -> ());
      emit c (Insn.Mov (sp, fp));
      emit c (Insn.Pop fp);
      emit c Insn.Ret
  | None ->
      (match t.Target.ra with
      | Some ra -> emit c (Insn.Load (Insn.S32, ra, sp, Int32.of_int (c.frame_total - 4)))
      | None -> ());
      emit c (Insn.Alui (Insn.Add, sp, sp, Int32.of_int c.frame_total));
      emit c Insn.Ret)

(* --- frame planning (fixed-sp targets) ---------------------------------------- *)

(** Scan the IR for the largest outgoing-argument unit count and the
    deepest call nesting, so the whole frame can be laid out before the
    prologue is emitted. *)
let prescan (body : Ir.stmt list) : int * int =
  let out_max = ref 0 and depth_max = ref 0 in
  let arg_units args =
    List.fold_left (fun n a -> n + if Ir.is_float_exp a then 2 else 1) 0 args
  in
  let rec exp depth (e : Ir.exp) =
    let sub = exp depth in
    match e with
    | Cnst _ | Cnstf _ | Addrg _ | Addrl _ | Reguse _ -> ()
    | Indir (_, a) | Cvt (_, _, a) | Regasgn (_, a) -> sub a
    | Bin (_, _, a, b) | Cmp (_, _, a, b) | Asgn (_, a, b) ->
        sub a;
        sub b
    | Call (_, _, args) ->
        out_max := max !out_max (arg_units args);
        depth_max := max !depth_max (depth + 1);
        List.iter (exp (depth + 1)) args
    | Callind (_, fe, args) ->
        out_max := max !out_max (arg_units args);
        depth_max := max !depth_max (depth + 1);
        exp (depth + 1) fe;
        List.iter (exp (depth + 1)) args
  in
  List.iter
    (function
      | Sexp e -> exp 0 e
      | Scjump (_, _, a, b, _) ->
          exp 0 a;
          exp 0 b
      | Sret (Some e) -> exp 0 e
      | Sret None | Slabel _ | Sjump _ | Sstop _ -> ())
    body;
  (!out_max, !depth_max)

(** Generate one function.  Returns text items, constant-pool data, and
    the final frame size (which, on SIM-MIPS, supersedes the provisional
    size computed during semantic analysis). *)
let gen_func (target : Target.t) ~(unit_tag : string) (fi : Sema.func_ir) :
    Asm.text_item list * Asm.data_item list * int =
  let fixed_sp = target.Target.fp = None in
  let out_words, depth_max =
    if fixed_sp then
      let u, d = prescan fi.Sema.fi_body in
      (* room for incoming register-argument homes as well *)
      (max u (List.length target.Target.arg_regs), max d 1)
    else (0, 0)
  in
  let save_bytes =
    (4 * List.length target.Target.temps) + (8 * List.length target.Target.ftemps)
  in
  let frame_total =
    if fixed_sp then
      let areas = (4 * out_words * (1 + depth_max)) + (depth_max * save_bytes) in
      (areas + fi.Sema.fi_locals_bytes + 4 + 7) / 8 * 8
    else fi.Sema.fi_frame_size
  in
  let c =
    {
      target;
      fi;
      epilogue = Printf.sprintf "Lret$%s$%s" unit_tag fi.Sema.fi_name;
      out = [];
      gdata = [];
      push_depth = 0;
      free_i = target.Target.temps;
      free_f = target.Target.ftemps;
      npool = 0;
      unit_tag;
      fixed_sp;
      out_words;
      depth_max;
      save_bytes;
      frame_total;
      call_level = 0;
    }
  in
  emit_label c fi.Sema.fi_label;
  prologue c;
  List.iter (do_stmt c) fi.Sema.fi_body;
  epilogue c;
  (List.rev c.out, List.rev c.gdata, frame_total)
