(** C types for the lcc-sim front end.

    Sizes are target-dependent: [long double] is the 68020's 80-bit
    extended type (10 bytes in memory) and an alias for [double]
    elsewhere, mirroring how the paper's compiler owns all representation
    decisions. *)

open Ldb_machine

type t =
  | Void
  | Char
  | Short
  | Int
  | Unsigned
  | Float
  | Double
  | LongDouble
  | Ptr of t
  | Array of t * int
  | Struct of struct_def
  | Func of t * t list

and struct_def = {
  sname : string;
  mutable fields : field list;
  mutable ssize : int;
  mutable complete : bool;
}

and field = { fname : string; fty : t; foffset : int }

let rec equal a b =
  match (a, b) with
  | Void, Void | Char, Char | Short, Short | Int, Int | Unsigned, Unsigned
  | Float, Float | Double, Double | LongDouble, LongDouble ->
      true
  | Ptr x, Ptr y -> equal x y
  | Array (x, n), Array (y, m) -> n = m && equal x y
  | Struct s, Struct t -> s == t
  | Func (r1, a1), Func (r2, a2) ->
      equal r1 r2 && List.length a1 = List.length a2 && List.for_all2 equal a1 a2
  | _ -> false

let is_integer = function Char | Short | Int | Unsigned -> true | _ -> false
let is_float = function Float | Double | LongDouble -> true | _ -> false
let is_arith t = is_integer t || is_float t
let is_pointer = function Ptr _ | Array _ -> true | _ -> false
let is_scalar t = is_arith t || is_pointer t

(** Size in bytes on [arch]. *)
let rec size (arch : Arch.t) t =
  match t with
  | Void -> 0
  | Char -> 1
  | Short -> 2
  | Int | Unsigned | Float | Ptr _ -> 4
  | Double -> 8
  | LongDouble -> if Arch.equal arch M68k then 10 else 8
  | Array (e, n) -> n * size arch e
  | Struct s -> s.ssize
  | Func _ -> 4

let align (arch : Arch.t) t =
  match t with
  | Char -> 1
  | Short -> 2
  | LongDouble -> 2 (* m68k extended aligns to 2 *)
  | Double -> 4
  | Struct _ -> 4
  | Array _ -> 4
  | _ -> min 4 (max 1 (size arch t))

(** Complete a struct definition: lay out fields with natural alignment. *)
let layout_struct (arch : Arch.t) (s : struct_def) (raw : (string * t) list) =
  let off = ref 0 in
  let fields =
    List.map
      (fun (fname, fty) ->
        let a = align arch fty in
        off := (!off + a - 1) / a * a;
        let f = { fname; fty; foffset = !off } in
        off := !off + size arch fty;
        f)
      raw
  in
  s.fields <- fields;
  s.ssize <- (!off + 3) / 4 * 4;
  if s.ssize = 0 then s.ssize <- 4;
  s.complete <- true

let field s name = List.find_opt (fun f -> f.fname = name) s.fields

(** The type of [a op b] under the usual arithmetic conversions. *)
let usual_arith a b =
  if equal a LongDouble || equal b LongDouble then LongDouble
  else if equal a Double || equal b Double then Double
  else if equal a Float || equal b Float then Double (* floats compute as double *)
  else if equal a Unsigned || equal b Unsigned then Unsigned
  else Int

(** Declaration text with a [%s] hole for the declared name, as carried in
    the /decl entries of type dictionaries (e.g. "int %s[20]"). *)
let rec decl_string t =
  let rec go t (inner : string) =
    match t with
    | Void -> "void " ^ inner
    | Char -> "char " ^ inner
    | Short -> "short " ^ inner
    | Int -> "int " ^ inner
    | Unsigned -> "unsigned " ^ inner
    | Float -> "float " ^ inner
    | Double -> "double " ^ inner
    | LongDouble -> "long double " ^ inner
    | Ptr t -> go t ("*" ^ inner)
    | Array (t, n) -> go t (Printf.sprintf "%s[%d]" inner n)
    | Struct s -> Printf.sprintf "struct %s %s" s.sname inner
    | Func (r, _) -> go r (inner ^ "()")
  in
  go t "%s"

and to_string t =
  let s = decl_string t in
  (* drop the hole *)
  String.concat "" (String.split_on_char '%' s |> function
    | [ a; b ] when String.length b > 0 && b.[0] = 's' ->
        [ String.trim a; String.sub b 1 (String.length b - 1) ]
    | parts -> parts)

let pp ppf t = Fmt.string ppf (to_string t)
