(** Abstract syntax for the C subset (C89-flavoured: declarations at block
    heads, as in the paper's example programs). *)

type pos = Lex.pos

type expr =
  | Eint of int32 * pos
  | Efloat of float * pos
  | Echar of char * pos
  | Estr of string * pos
  | Eid of string * pos
  | Ebin of string * expr * expr * pos     (** + - * / % << >> < <= ... && || & | ^ *)
  | Eun of string * expr * pos             (** - ! ~ * & *)
  | Eassign of string * expr * expr * pos  (** = += -= *= /= %= &= |= ^= <<= >>= *)
  | Econd of expr * expr * expr * pos
  | Ecall of expr * expr list * pos
  | Eindex of expr * expr * pos
  | Efield of expr * string * pos          (** e.f *)
  | Earrow of expr * string * pos          (** e->f *)
  | Eincr of bool * int * expr * pos       (** prefix?, +1/-1, lvalue *)
  | Ecast of Ctype.t * expr * pos
  | Esizeof_t of Ctype.t * pos
  | Esizeof_e of expr * pos

let expr_pos = function
  | Eint (_, p) | Efloat (_, p) | Echar (_, p) | Estr (_, p) | Eid (_, p)
  | Ebin (_, _, _, p) | Eun (_, _, p) | Eassign (_, _, _, p) | Econd (_, _, _, p)
  | Ecall (_, _, p) | Eindex (_, _, p) | Efield (_, _, p) | Earrow (_, _, p)
  | Eincr (_, _, _, p) | Ecast (_, _, p) | Esizeof_t (_, p) | Esizeof_e (_, p) ->
      p

type storage = Auto | Register | Static | Extern

type decl = {
  dname : string;
  dty : Ctype.t;
  dstorage : storage;
  dinit : expr option;
  dpos : pos;
}

type stmt =
  | Sexpr of expr * pos
  | Sif of expr * stmt * stmt option * pos
  | Swhile of expr * stmt * pos
  | Sdo of stmt * expr * pos
  | Sfor of expr option * expr option * expr option * stmt * pos
  | Sreturn of expr option * pos
  | Sbreak of pos
  | Scontinue of pos
  | Sblock of block * pos
  | Sswitch of expr * switch_case list * pos
  | Sempty of pos

and switch_case = {
  sc_val : int32 option;  (** None for [default] *)
  sc_body : stmt list;    (** falls through to the next case, as in C *)
}

and block = { bdecls : decl list; bstmts : stmt list }

type func = {
  fname : string;
  fret : Ctype.t;
  fparams : (string * Ctype.t * pos) list;
  fstorage : storage;
  fbody : block;
  fpos : pos;
  fendpos : pos;  (** closing brace: the exit stopping point *)
}

type top =
  | Tfunc of func
  | Tvar of decl
  | Tfuncdecl of string * Ctype.t * pos  (** prototype only *)

type unit_ = {
  uname : string;  (** source file name *)
  tops : top list;
}
