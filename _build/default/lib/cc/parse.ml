(** Recursive-descent parser for the C subset.

    Grammar highlights: C89 block structure (declarations precede
    statements), struct definitions at file scope, [register]/[static]/
    [extern] storage classes, the usual expression grammar with
    precedence climbing. *)

open Ast

exception Error of string * Lex.pos

type state = {
  mutable toks : Lex.lexeme list;
  structs : (string, Ctype.struct_def) Hashtbl.t;
}

let make toks = { toks; structs = Hashtbl.create 8 }

let peek st = match st.toks with l :: _ -> l | [] -> { Lex.tok = Teof; pos = { line = 0; col = 0 } }
let pos st = (peek st).Lex.pos

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail st msg = raise (Error (msg, pos st))

let expect_punct st p =
  match (peek st).Lex.tok with
  | Tpunct q when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected %s" p)

let accept_punct st p =
  match (peek st).Lex.tok with
  | Tpunct q when q = p ->
      advance st;
      true
  | _ -> false

let accept_kw st k =
  match (peek st).Lex.tok with
  | Tkw q when q = k ->
      advance st;
      true
  | _ -> false

let expect_id st =
  match (peek st).Lex.tok with
  | Tid n ->
      advance st;
      n
  | _ -> fail st "expected identifier"

(* --- types ------------------------------------------------------------ *)

let is_type_start st =
  match (peek st).Lex.tok with
  | Tkw ("void" | "char" | "short" | "int" | "unsigned" | "float" | "double" | "long" | "struct") ->
      true
  | _ -> false

(** Parse a type specifier (the base type, before declarators). *)
let rec base_type (st : state) (arch : Ldb_machine.Arch.t) : Ctype.t =
  if accept_kw st "void" then Ctype.Void
  else if accept_kw st "char" then Ctype.Char
  else if accept_kw st "short" then begin
    ignore (accept_kw st "int");
    Ctype.Short
  end
  else if accept_kw st "int" then Ctype.Int
  else if accept_kw st "unsigned" then begin
    ignore (accept_kw st "int");
    Ctype.Unsigned
  end
  else if accept_kw st "float" then Ctype.Float
  else if accept_kw st "long" then
    if accept_kw st "double" then Ctype.LongDouble
    else begin
      ignore (accept_kw st "int");
      Ctype.Int
    end
  else if accept_kw st "double" then Ctype.Double
  else if accept_kw st "struct" then begin
    let name = expect_id st in
    let sd =
      match Hashtbl.find_opt st.structs name with
      | Some sd -> sd
      | None ->
          let sd = { Ctype.sname = name; fields = []; ssize = 0; complete = false } in
          Hashtbl.replace st.structs name sd;
          sd
    in
    if accept_punct st "{" then begin
      let fields = ref [] in
      while not (accept_punct st "}") do
        let fty = base_type st arch in
        let rec members () =
          let name, ty = declarator st arch fty in
          fields := (name, ty) :: !fields;
          if accept_punct st "," then members ()
        in
        members ();
        expect_punct st ";"
      done;
      Ctype.layout_struct arch sd (List.rev !fields)
    end;
    Ctype.Struct sd
  end
  else fail st "expected type"

(** Parse a declarator: pointers, name, array suffixes.  Function
    declarators are handled by the caller. *)
and declarator st _arch (base : Ctype.t) : string * Ctype.t =
  let rec stars ty = if accept_punct st "*" then stars (Ctype.Ptr ty) else ty in
  let ty = stars base in
  (* function-pointer declarator: ( * name ) ( param-types ) *)
  if accept_punct st "(" then begin
    expect_punct st "*";
    let name = expect_id st in
    expect_punct st ")";
    expect_punct st "(";
    let params = ref [] in
    if not (accept_punct st ")") then
      if accept_kw st "void" then expect_punct st ")"
      else begin
        let rec go () =
          let pbase = base_type st _arch in
          let pty = stars pbase in
          (* parameter names are optional in a pointer declarator *)
          (match (peek st).Lex.tok with Tid _ -> advance st | _ -> ());
          params := pty :: !params;
          if accept_punct st "," then go () else expect_punct st ")"
        in
        go ()
      end;
    (name, Ctype.Ptr (Ctype.Func (ty, List.rev !params)))
  end
  else begin
  let name = expect_id st in
  let rec suffixes ty =
    if accept_punct st "[" then begin
      let n =
        match (peek st).Lex.tok with
        | Tint n ->
            advance st;
            Int32.to_int n
        | _ -> fail st "expected array size"
      in
      expect_punct st "]";
      (* process inner suffixes first: int a[2][3] = array 2 of array 3 *)
      let inner = suffixes ty in
      Ctype.Array (inner, n)
    end
    else ty
  in
  (name, suffixes ty)
  end

(* an abstract type for casts and sizeof: base + stars (no arrays needed) *)
and abstract_type st arch : Ctype.t =
  let base = base_type st arch in
  let rec stars ty = if accept_punct st "*" then stars (Ctype.Ptr ty) else ty in
  stars base

(* --- expressions -------------------------------------------------------- *)

(* precedence for binary operators *)
let prec = function
  | "*" | "/" | "%" -> 10
  | "+" | "-" -> 9
  | "<<" | ">>" -> 8
  | "<" | "<=" | ">" | ">=" -> 7
  | "==" | "!=" -> 6
  | "&" -> 5
  | "^" -> 4
  | "|" -> 3
  | "&&" -> 2
  | "||" -> 1
  | _ -> 0

let assign_ops = [ "="; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "<<="; ">>=" ]

let rec expression st arch : expr = assignment st arch

and assignment st arch : expr =
  let p = pos st in
  let lhs = conditional st arch in
  match (peek st).Lex.tok with
  | Tpunct op when List.mem op assign_ops ->
      advance st;
      let rhs = assignment st arch in
      Eassign (op, lhs, rhs, p)
  | _ -> lhs

and conditional st arch : expr =
  let p = pos st in
  let c = binary st arch 1 in
  if accept_punct st "?" then begin
    let t = expression st arch in
    expect_punct st ":";
    let f = conditional st arch in
    Econd (c, t, f, p)
  end
  else c

and binary st arch min_prec : expr =
  let lhs = ref (unary st arch) in
  let continue_ = ref true in
  while !continue_ do
    match (peek st).Lex.tok with
    | Tpunct op when prec op >= min_prec && prec op > 0 ->
        let p = pos st in
        advance st;
        let rhs = binary st arch (prec op + 1) in
        lhs := Ebin (op, !lhs, rhs, p)
    | _ -> continue_ := false
  done;
  !lhs

and unary st arch : expr =
  let p = pos st in
  match (peek st).Lex.tok with
  | Tpunct "-" ->
      advance st;
      Eun ("-", unary st arch, p)
  | Tpunct "!" ->
      advance st;
      Eun ("!", unary st arch, p)
  | Tpunct "~" ->
      advance st;
      Eun ("~", unary st arch, p)
  | Tpunct "*" ->
      advance st;
      Eun ("*", unary st arch, p)
  | Tpunct "&" ->
      advance st;
      Eun ("&", unary st arch, p)
  | Tpunct "++" ->
      advance st;
      Eincr (true, 1, unary st arch, p)
  | Tpunct "--" ->
      advance st;
      Eincr (true, -1, unary st arch, p)
  | Tkw "sizeof" ->
      advance st;
      if accept_punct st "(" then
        if is_type_start st then begin
          let ty = abstract_type st arch in
          expect_punct st ")";
          Esizeof_t (ty, p)
        end
        else begin
          let e = expression st arch in
          expect_punct st ")";
          Esizeof_e (e, p)
        end
      else Esizeof_e (unary st arch, p)
  | Tpunct "(" when (match st.toks with
                     | _ :: l :: _ -> (
                         match l.Lex.tok with
                         | Tkw ("void" | "char" | "short" | "int" | "unsigned" | "float"
                               | "double" | "long" | "struct") ->
                             true
                         | _ -> false)
                     | _ -> false) ->
      advance st;
      let ty = abstract_type st arch in
      expect_punct st ")";
      Ecast (ty, unary st arch, p)
  | _ -> postfix st arch

and postfix st arch : expr =
  let e = ref (primary st arch) in
  let continue_ = ref true in
  while !continue_ do
    let p = pos st in
    match (peek st).Lex.tok with
    | Tpunct "[" ->
        advance st;
        let i = expression st arch in
        expect_punct st "]";
        e := Eindex (!e, i, p)
    | Tpunct "(" ->
        advance st;
        let args = ref [] in
        if not (accept_punct st ")") then begin
          let rec go () =
            args := assignment st arch :: !args;
            if accept_punct st "," then go () else expect_punct st ")"
          in
          go ()
        end;
        e := Ecall (!e, List.rev !args, p)
    | Tpunct "." ->
        advance st;
        e := Efield (!e, expect_id st, p)
    | Tpunct "->" ->
        advance st;
        e := Earrow (!e, expect_id st, p)
    | Tpunct "++" ->
        advance st;
        e := Eincr (false, 1, !e, p)
    | Tpunct "--" ->
        advance st;
        e := Eincr (false, -1, !e, p)
    | _ -> continue_ := false
  done;
  !e

and primary st arch : expr =
  let p = pos st in
  match (peek st).Lex.tok with
  | Tint n ->
      advance st;
      Eint (n, p)
  | Tfloat f ->
      advance st;
      Efloat (f, p)
  | Tchar c ->
      advance st;
      Echar (c, p)
  | Tstring s ->
      advance st;
      (* adjacent string literals concatenate *)
      let buf = Buffer.create (String.length s) in
      Buffer.add_string buf s;
      let rec more () =
        match (peek st).Lex.tok with
        | Tstring s2 ->
            advance st;
            Buffer.add_string buf s2;
            more ()
        | _ -> ()
      in
      more ();
      Estr (Buffer.contents buf, p)
  | Tid n ->
      advance st;
      Eid (n, p)
  | Tpunct "(" ->
      advance st;
      let e = expression st arch in
      expect_punct st ")";
      e
  | _ -> fail st "expected expression"

(* --- statements --------------------------------------------------------- *)

let parse_storage st : storage =
  if accept_kw st "static" then Static
  else if accept_kw st "extern" then Extern
  else if accept_kw st "register" then Register
  else Auto

let rec statement st arch : stmt =
  let p = pos st in
  match (peek st).Lex.tok with
  | Tpunct ";" ->
      advance st;
      Sempty p
  | Tpunct "{" -> Sblock (block st arch, p)
  | Tkw "if" ->
      advance st;
      expect_punct st "(";
      let cp = pos st in
      let c = expression st arch in
      expect_punct st ")";
      let then_ = statement st arch in
      let else_ = if accept_kw st "else" then Some (statement st arch) else None in
      Sif (c, then_, else_, cp)
  | Tkw "while" ->
      advance st;
      expect_punct st "(";
      let cp = pos st in
      let c = expression st arch in
      expect_punct st ")";
      Swhile (c, statement st arch, cp)
  | Tkw "do" ->
      advance st;
      let body = statement st arch in
      if not (accept_kw st "while") then fail st "expected while";
      expect_punct st "(";
      let cp = pos st in
      let c = expression st arch in
      expect_punct st ")";
      expect_punct st ";";
      Sdo (body, c, cp)
  | Tkw "for" ->
      advance st;
      expect_punct st "(";
      let init = if accept_punct st ";" then None else begin
        let e = expression st arch in
        expect_punct st ";";
        Some e
      end in
      let cond = if accept_punct st ";" then None else begin
        let e = expression st arch in
        expect_punct st ";";
        Some e
      end in
      let incr = if accept_punct st ")" then None else begin
        let e = expression st arch in
        expect_punct st ")";
        Some e
      end in
      Sfor (init, cond, incr, statement st arch, p)
  | Tkw "switch" ->
      advance st;
      expect_punct st "(";
      let scrutinee = expression st arch in
      expect_punct st ")";
      expect_punct st "{";
      let cases = ref [] in
      let rec parse_cases () =
        if accept_punct st "}" then ()
        else begin
          let v =
            if accept_kw st "case" then begin
              let v =
                match (peek st).Lex.tok with
                | Tint n ->
                    advance st;
                    Some n
                | Tchar c ->
                    advance st;
                    Some (Int32.of_int (Char.code c))
                | Tpunct "-" -> (
                    advance st;
                    match (peek st).Lex.tok with
                    | Tint n ->
                        advance st;
                        Some (Int32.neg n)
                    | _ -> fail st "expected case constant")
                | _ -> fail st "expected case constant"
              in
              expect_punct st ":";
              v
            end
            else if accept_kw st "default" then begin
              expect_punct st ":";
              None
            end
            else fail st "expected case or default"
          in
          let body = ref [] in
          let rec stmts () =
            match (peek st).Lex.tok with
            | Tkw ("case" | "default") | Tpunct "}" -> ()
            | _ ->
                body := statement st arch :: !body;
                stmts ()
          in
          stmts ();
          cases := { sc_val = v; sc_body = List.rev !body } :: !cases;
          parse_cases ()
        end
      in
      parse_cases ();
      Sswitch (scrutinee, List.rev !cases, p)
  | Tkw "return" ->
      advance st;
      if accept_punct st ";" then Sreturn (None, p)
      else begin
        let e = expression st arch in
        expect_punct st ";";
        Sreturn (Some e, p)
      end
  | Tkw "break" ->
      advance st;
      expect_punct st ";";
      Sbreak p
  | Tkw "continue" ->
      advance st;
      expect_punct st ";";
      Scontinue p
  | _ ->
      let e = expression st arch in
      expect_punct st ";";
      Sexpr (e, p)

and block st arch : block =
  expect_punct st "{";
  let decls = ref [] in
  let rec parse_decls () =
    let is_storage =
      match (peek st).Lex.tok with Tkw ("static" | "register" | "extern") -> true | _ -> false
    in
    if is_storage || is_type_start st then begin
      let storage = parse_storage st in
      let base = base_type st arch in
      let rec vars () =
        let dpos = pos st in
        let name, ty = declarator st arch base in
        let init = if accept_punct st "=" then Some (assignment st arch) else None in
        decls := { dname = name; dty = ty; dstorage = storage; dinit = init; dpos } :: !decls;
        if accept_punct st "," then vars ()
      in
      vars ();
      expect_punct st ";";
      parse_decls ()
    end
  in
  parse_decls ();
  let stmts = ref [] in
  while not (accept_punct st "}") do
    stmts := statement st arch :: !stmts
  done;
  { bdecls = List.rev !decls; bstmts = List.rev !stmts }

(* --- top level ------------------------------------------------------------ *)

let parse_top st arch : top option =
  if (peek st).Lex.tok = Teof then None
  else begin
    let storage = parse_storage st in
    let base = base_type st arch in
    (* pure struct definition: struct s { ... }; *)
    if accept_punct st ";" then
      Some (Tvar { dname = "%struct"; dty = base; dstorage = storage; dinit = None;
                   dpos = pos st })
    else begin
      let dpos = pos st in
      let name, ty = declarator st arch base in
      if accept_punct st "(" then begin
        (* function *)
        let params = ref [] in
        if not (accept_punct st ")") then begin
          if accept_kw st "void" then expect_punct st ")"
          else begin
            let rec go () =
              let pbase = base_type st arch in
              let ppos = pos st in
              let pname, pty = declarator st arch pbase in
              (* arrays decay to pointers in parameters *)
              let pty = match pty with Ctype.Array (e, _) -> Ctype.Ptr e | t -> t in
              params := (pname, pty, ppos) :: !params;
              if accept_punct st "," then go () else expect_punct st ")"
            in
            go ()
          end
        end;
        if accept_punct st ";" then
          Some (Tfuncdecl (name, Ctype.Func (ty, List.map (fun (_, t, _) -> t) (List.rev !params)), dpos))
        else begin
          let body = block st arch in
          let fendpos = pos st in
          Some
            (Tfunc
               {
                 fname = name;
                 fret = ty;
                 fparams = List.rev !params;
                 fstorage = storage;
                 fbody = body;
                 fpos = dpos;
                 fendpos;
               })
        end
      end
      else begin
        let init = if accept_punct st "=" then Some (assignment st arch) else None in
        expect_punct st ";";
        Some (Tvar { dname = name; dty = ty; dstorage = storage; dinit = init; dpos })
      end
    end
  end

(** Parse a translation unit. *)
let parse_unit ~(file : string) ~(arch : Ldb_machine.Arch.t) (src : string) : unit_ =
  let st = make (Lex.all src) in
  let rec go acc =
    match parse_top st arch with Some t -> go (t :: acc) | None -> List.rev acc
  in
  { uname = file; tops = go [] }

(** Parse a single expression (the expression server's entry point). *)
let parse_expr ~(arch : Ldb_machine.Arch.t) (src : string) : expr =
  let st = make (Lex.all src) in
  let e = expression st arch in
  (match (peek st).Lex.tok with
  | Teof | Tpunct ";" -> ()
  | _ -> fail st "trailing tokens after expression");
  e
