lib/cc/sym.ml: Arch Ctype Hashtbl Ldb_machine Lex List Printf String
