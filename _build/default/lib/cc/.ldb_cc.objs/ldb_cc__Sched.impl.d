lib/cc/sched.ml: Array Asm Insn Int32 Ldb_machine List
