lib/cc/stabsemit.ml: Arch Buffer Char Ctype Hashtbl Int32 Ldb_machine Lex List Printf String Sym
