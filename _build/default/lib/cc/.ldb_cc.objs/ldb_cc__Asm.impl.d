lib/cc/asm.ml: Arch Insn Ldb_machine List String Sym Target
