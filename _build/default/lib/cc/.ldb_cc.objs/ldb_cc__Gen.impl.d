lib/cc/gen.ml: Asm Bytes Fmt Insn Int32 Int64 Ir Ldb_machine Ldb_util List Printf Ram Sema Target
