lib/cc/psemit.ml: Arch Asm Buffer Ctype Fmt Hashtbl Ldb_machine Lex List Printf String Sym
