lib/cc/compile.ml: Arch Asm Gen Hashtbl Ldb_machine Lex List Option Parse Peephole Printf Psemit Sched Sema Stabsemit String Sym Target
