lib/cc/lex.ml: Buffer Int32 List Printf String
