lib/cc/ast.ml: Ctype Lex
