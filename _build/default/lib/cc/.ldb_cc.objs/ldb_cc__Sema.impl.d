lib/cc/sema.ml: Arch Asm Ast Bytes Char Ctype Float80 Fmt Hashtbl Int32 Int64 Ir Ldb_machine Ldb_util Lex List Printf String Sym Target
