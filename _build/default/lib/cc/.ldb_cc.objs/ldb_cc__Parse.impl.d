lib/cc/parse.ml: Ast Buffer Char Ctype Hashtbl Int32 Ldb_machine Lex List Printf String
