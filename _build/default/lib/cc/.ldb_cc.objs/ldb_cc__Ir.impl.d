lib/cc/ir.ml: Ctype Fmt Ldb_machine List
