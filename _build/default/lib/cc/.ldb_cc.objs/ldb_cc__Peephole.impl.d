lib/cc/peephole.ml: Asm Insn Ldb_machine List String Target
