lib/cc/ctype.ml: Arch Fmt Ldb_machine List Printf String
