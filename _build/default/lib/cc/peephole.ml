(** A small peephole optimizer over the abstract assembly.

    Kept deliberately conservative — it must preserve the debugger's
    invariants: stopping-point no-ops and their labels are never touched,
    and on SIM-MIPS it runs {e before} delay-slot scheduling so the
    scheduler's guarantees still hold.

    Patterns:
    - [mov r, r]                                  -> (dropped)
    - [li rK, imm; alu rD, rS, rK] (rK dead next) -> [alui rD, rS, imm]
    - [jmp L] directly before [L:]                -> (dropped)
    - [mov rA, rB; mov rA, rB]                    -> one copy

    The "rK dead" test is local: rK must be the li's target, used only as
    the second ALU operand, and not an operand or destination of the ALU
    result itself. *)

open Ldb_machine

type stats = { mutable removed : int; mutable folded : int }

let is_stop_label l = String.length l >= 7 && String.sub l 0 7 = "__stop$"

(* registers that must not be rewritten: the stack pointer and friends
   keep their instructions intact *)
let fixed_regs (target : Target.t) =
  (target.Target.sp :: (match target.Target.fp with Some r -> [ r ] | None -> []))
  @ (match target.Target.ra with Some r -> [ r ] | None -> [])

(** Does any instruction in [rest] (up to the next label/branch) read [r]
    before writing it?  Conservative: unknown constructs count as reads. *)
let used_later (rest : Asm.text_item list) (r : Insn.reg) =
  let rec go = function
    | [] -> false (* fell off the function: value dead *)
    | Asm.Label _ :: _ -> true (* joined control flow: assume live *)
    | (Asm.Ins i | Asm.InsR (i, _, _)) :: tl ->
        if List.mem r (Insn.reads i) then true
        else if Insn.writes_reg i r then false
        else (
          match i with
          | Insn.Br _ | Insn.Jmp _ | Insn.Jr _ | Insn.Call _ | Insn.Callr _ | Insn.Ret
          | Insn.Break | Insn.Syscall _ ->
              true (* control leaves: assume live *)
          | _ -> go tl)
  in
  go rest

let run (target : Target.t) (items : Asm.text_item list) : Asm.text_item list * stats =
  let stats = { removed = 0; folded = 0 } in
  let fixed = fixed_regs target in
  let rec go (items : Asm.text_item list) acc =
    match items with
    | [] -> List.rev acc
    (* mov r, r *)
    | Asm.Ins (Insn.Mov (a, b)) :: rest when a = b ->
        stats.removed <- stats.removed + 1;
        go rest acc
    (* duplicated copy *)
    | Asm.Ins (Insn.Mov (a1, b1)) :: Asm.Ins (Insn.Mov (a2, b2)) :: rest
      when a1 = a2 && b1 = b2 ->
        stats.removed <- stats.removed + 1;
        go (Asm.Ins (Insn.Mov (a1, b1)) :: rest) acc
    (* jump to the immediately following label *)
    | Asm.InsR (Insn.Jmp _, l1, 0) :: (Asm.Label l2 :: _ as rest) when l1 = l2 ->
        stats.removed <- stats.removed + 1;
        go rest acc
    (* li rK, imm; alu rD, rS, rK  with rK dead afterwards *)
    | Asm.Ins (Insn.Li (rk, imm)) :: Asm.Ins (Insn.Alu (op, rd, rs, rt)) :: rest
      when rt = rk && rs <> rk && rd <> rk
           && (not (List.mem rk fixed))
           && (not (used_later rest rk)) ->
        stats.folded <- stats.folded + 1;
        go rest (Asm.Ins (Insn.Alui (op, rd, rs, imm)) :: acc)
    | item :: rest -> go rest (item :: acc)
  in
  (go items [], stats)
