(** SIM-MIPS load-delay-slot scheduling (Sec. 3).

    The SIM-MIPS, like the R3000, does not expose the result of an integer
    load to the immediately following instruction.  The code generator
    emits code with sequential semantics; this pass repairs every hazard,
    either by moving a safe earlier instruction into the delay slot or by
    padding with a no-op.

    The paper's observation about debugging falls out naturally: labels
    end scheduling regions, and compiling for debugging plants a labelled
    no-op at every stopping point, so the scheduler can only rearrange
    within top-level expressions rather than whole basic blocks — the
    restricted scheduler fills fewer slots and pads more (the 13% MIPS
    code-size cost the paper reports). *)

open Ldb_machine

let insn_of = function Asm.Ins i | Asm.InsR (i, _, _) -> Some i | Asm.Label _ -> None

(** Integer register written by an instruction, if any. *)
let write_of (i : Insn.t) : int option =
  match i with
  | Li (rd, _) | Mov (rd, _) | Alu (_, rd, _, _) | Alui (_, rd, _, _)
  | Load (_, rd, _, _) | Loadu (_, rd, _, _) | Fcmp (_, rd, _, _)
  | Cvtfi (rd, _) | Pop rd ->
      Some rd
  | _ -> None

(** May [i] sit in a delay slot and be moved there by the scheduler? *)
let movable (i : Insn.t) =
  match i with
  | Li _ | Mov _ | Alu _ | Alui _ | Falu _ | Fcmp _ | Fmov _ | Cvtif _ | Cvtfi _ | Fload _ ->
      true
  | _ -> false

(** Next real instruction at or after index [j] on the fallthrough path
    (labels are transparent: fallthrough passes through them). *)
let rec next_insn (a : Asm.text_item array) j =
  if j >= Array.length a then None
  else match insn_of a.(j) with Some i -> Some (j, i) | None -> next_insn a (j + 1)

(** Does the fallthrough successor of the load at [i] (writing [rd]) read
    [rd] before the delayed value commits? *)
let hazard (a : Asm.text_item array) i rd =
  match next_insn a (i + 1) with
  | None -> true  (* end of stream: pad conservatively *)
  | Some (_, succ) -> (
      match succ with
      | Insn.Ret | Insn.Syscall _ ->
          (* implicit register uses (the link register, kernel arguments) *)
          true
      | succ -> List.mem rd (Insn.reads succ))

(** A store may move into a load's delay slot when both address the same
    base register at provably disjoint offsets. *)
let mem_disjoint (prev : Insn.t) (load : Insn.t) =
  match (prev, load) with
  | Insn.Store (szs, _, bs, offs), (Insn.Load (szl, _, bl, offl) | Insn.Loadu (szl, _, bl, offl)) ->
      bs = bl
      &&
      let s1 = Int32.to_int offs and n1 = Insn.size_bytes szs in
      let s2 = Int32.to_int offl and n2 = Insn.size_bytes szl in
      s1 + n1 <= s2 || s2 + n2 <= s1
  | _ -> false

let can_swap (prev : Insn.t) (load : Insn.t) rd =
  let base = match Insn.reads load with [ b ] -> b | l -> ( match l with b :: _ -> b | [] -> -1) in
  (movable prev || mem_disjoint prev load)
  && (match prev with Insn.Load _ | Insn.Loadu _ -> false | _ -> true)
  && (match write_of prev with
     | Some w -> w <> base && w <> rd
     | None -> true)
  && not (List.mem rd (Insn.reads prev))

type stats = { mutable filled : int; mutable padded : int }

(** Schedule a text stream.  Returns the repaired stream and fill/pad
    statistics. *)
let schedule (items : Asm.text_item list) : Asm.text_item list * stats =
  let stats = { filled = 0; padded = 0 } in
  let buf = ref (Array.of_list items) in
  let i = ref 0 in
  while !i < Array.length !buf do
    let a = !buf in
    (match insn_of a.(!i) with
    | Some ((Insn.Load (_, rd, _, _) | Insn.Loadu (_, rd, _, _)) as load) when hazard a !i rd ->
        (* try to move the previous instruction into the slot *)
        let swapped =
          !i > 0
          &&
          match insn_of a.(!i - 1) with
          | Some prev when can_swap prev load rd ->
              let tmp = a.(!i - 1) in
              a.(!i - 1) <- a.(!i);
              a.(!i) <- tmp;
              stats.filled <- stats.filled + 1;
              true
          | _ -> false
        in
        if swapped then i := max 0 (!i - 2)
        else begin
          (* pad with a no-op after the load *)
          let n = Array.length a in
          let b = Array.make (n + 1) (Asm.Ins Insn.Nop) in
          Array.blit a 0 b 0 (!i + 1);
          Array.blit a (!i + 1) b (!i + 2) (n - !i - 1);
          buf := b;
          stats.padded <- stats.padded + 1;
          incr i
        end
    | _ -> incr i)
  done;
  (Array.to_list !buf, stats)

(** Verify that no load-delay hazard remains.  Returns the index of the
    first offending instruction, if any. *)
let verify (items : Asm.text_item list) : int option =
  let a = Array.of_list items in
  let bad = ref None in
  Array.iteri
    (fun i item ->
      if !bad = None then
        match insn_of item with
        | Some (Insn.Load (_, rd, _, _) | Insn.Loadu (_, rd, _, _)) ->
            if hazard a i rd then bad := Some i
        | _ -> ())
    a;
  !bad

(* --- slot filling by hoisting ------------------------------------------- *)

(** Integer registers read, for dependence checks during hoisting. *)
let reads_of = Insn.reads

(** Pure register-to-register instructions are safe hoist candidates: no
    memory traffic, no floating state, no control flow. *)
let pure_reg (i : Insn.t) =
  match i with Insn.Li _ | Insn.Mov _ | Insn.Alu _ | Insn.Alui _ -> true | _ -> false

(** A load may also be hoisted if it provably cannot alias any store it
    moves above. *)
let mem_safe_candidate (cand : Insn.t) between =
  match cand with
  | Insn.Load _ | Insn.Loadu _ ->
      List.for_all
        (fun (_, b) ->
          match b with
          | Insn.Store _ -> mem_disjoint b cand
          | Insn.Fstore _ | Insn.Syscall _ | Insn.Call _ | Insn.Callr _ -> false
          | _ -> true)
        between
  | _ -> false

let block_breaker (i : Insn.t) =
  match i with
  | Insn.Br _ | Insn.Jmp _ | Insn.Jr _ | Insn.Call _ | Insn.Callr _ | Insn.Ret
  | Insn.Break | Insn.Syscall _ ->
      true
  | _ -> false

(** Try to move a later, independent, pure instruction into the delay slot
    of the load at index [i] (writing [rd]).  The search window ends at the
    first label or control transfer — so stopping-point labels, planted at
    every statement when compiling for debugging, cut the window down to a
    single expression (the paper's restricted scheduling). *)
let try_hoist (a : Asm.text_item array) i rd : bool =
  let n = Array.length a in
  let base = match insn_of a.(i) with Some l -> reads_of l | None -> [] in
  (* collect the window of real instructions after the load *)
  let rec window j acc =
    if j >= n || List.length acc > 8 then List.rev acc
    else
      match a.(j) with
      | Asm.Label _ -> List.rev acc
      | Asm.Ins ins | Asm.InsR (ins, _, _) ->
          if block_breaker ins then List.rev ((j, ins) :: acc)
          else window (j + 1) ((j, ins) :: acc)
  in
  match window (i + 1) [] with
  | [] -> false
  | (jc, consumer) :: rest ->
      if not (List.mem rd (Insn.reads consumer)) then false
      else
        (* find a candidate after the consumer that commutes with
           everything it jumps over *)
        let rec hunt between = function
          | [] -> None
          | (jk, cand) :: more ->
              if
                (pure_reg cand || mem_safe_candidate cand between)
                &&
                let cw = write_of cand in
                let creads = reads_of cand in
                let indep_load =
                  (not (List.mem rd creads))
                  && (match cw with
                     | Some w -> w <> rd && not (List.mem w base)
                     | None -> true)
                in
                let indep_between =
                  List.for_all
                    (fun (_, b) ->
                      let bw = write_of b in
                      let breads = reads_of b in
                      (match cw with
                      | Some w -> (not (List.mem w breads)) && bw <> Some w
                      | None -> true)
                      && match bw with Some w -> not (List.mem w creads) | None -> true)
                    between
                in
                indep_load && indep_between
              then Some jk
              else hunt (between @ [ (jk, cand) ]) more
        in
        (match hunt [ (jc, consumer) ] rest with
        | Some jk ->
            (* slide a.(jk) down into position i+1 *)
            let item = a.(jk) in
            for m = jk downto i + 2 do
              a.(m) <- a.(m - 1)
            done;
            a.(i + 1) <- item;
            true
        | None -> false)

(** Schedule with both fillers: swap-with-predecessor, then hoisting; pad
    when neither applies.  One forward pass — fills never move backwards
    past the cursor, so termination is structural; [verify] still checks
    the result. *)
let schedule_filled (items : Asm.text_item list) : Asm.text_item list * stats =
  let stats = { filled = 0; padded = 0 } in
  let buf = ref (Array.of_list items) in
  let i = ref 0 in
  while !i < Array.length !buf do
    let a = !buf in
    (match insn_of a.(!i) with
    | Some ((Insn.Load (_, rd, _, _) | Insn.Loadu (_, rd, _, _)) as load) when hazard a !i rd ->
        (* 1. swap with the predecessor, unless that would slide the load
           into the delay slot of an even earlier load *)
        let swap_safe =
          !i > 0
          && (match insn_of a.(!i - 1) with
             | Some prev -> can_swap prev load rd
             | None -> false)
          && (!i < 2
             ||
             match insn_of a.(!i - 2) with
             | Some (Insn.Load (_, rd2, _, _) | Insn.Loadu (_, rd2, _, _)) ->
                 not (List.mem rd2 (Insn.reads load))
             | _ -> true)
        in
        if swap_safe then begin
          let tmp = a.(!i - 1) in
          a.(!i - 1) <- a.(!i);
          a.(!i) <- tmp;
          stats.filled <- stats.filled + 1;
          (* the load now sits at i-1 with its old predecessor in the slot;
             move on past the pair *)
          incr i
        end
        else if try_hoist a !i rd then begin
          stats.filled <- stats.filled + 1;
          incr i
        end
        else begin
          let n = Array.length a in
          let b = Array.make (n + 1) (Asm.Ins Insn.Nop) in
          Array.blit a 0 b 0 (!i + 1);
          Array.blit a (!i + 1) b (!i + 2) (n - !i - 1);
          buf := b;
          stats.padded <- stats.padded + 1;
          incr i
        end
    | _ -> incr i)
  done;
  (* safety net: pad anything the fillers missed or disturbed *)
  let out, extra = schedule (Array.to_list !buf) in
  stats.padded <- stats.padded + extra.padded;
  stats.filled <- stats.filled + extra.filled;
  (out, stats)
