(** Lexer for the C subset.  Shared by the compiler proper and the
    expression server (which parses single expressions). *)

type token =
  | Tint of int32
  | Tfloat of float
  | Tchar of char
  | Tstring of string
  | Tid of string
  | Tkw of string
  | Tpunct of string
  | Teof

type pos = { line : int; col : int }

type lexeme = { tok : token; pos : pos }

exception Error of string * pos

let keywords =
  [ "void"; "char"; "short"; "int"; "unsigned"; "float"; "double"; "long";
    "struct"; "if"; "else"; "while"; "for"; "do"; "return"; "break";
    "continue"; "static"; "extern"; "register"; "sizeof"; "switch"; "case";
    "default" ]

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
}

let make src = { src; pos = 0; line = 1; bol = 0 }

let here st = { line = st.line; col = st.pos - st.bol + 1 }

let peek_char st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek_char st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let rec skip_ws st =
  match peek_char st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | Some '/' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/' ->
      while peek_char st <> None && peek_char st <> Some '\n' do
        advance st
      done;
      skip_ws st
  | Some '/' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '*' ->
      advance st;
      advance st;
      let rec go () =
        match peek_char st with
        | None -> raise (Error ("unterminated comment", here st))
        | Some '*' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/' ->
            advance st;
            advance st
        | Some _ ->
            advance st;
            go ()
      in
      go ();
      skip_ws st
  | _ -> ()

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let escape st =
  match peek_char st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | _ -> raise (Error ("bad escape", here st))

(* multi-character punctuation, longest first *)
let puncts =
  [ "<<="; ">>="; "..."; "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||";
    "++"; "--"; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "->";
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "=";
    "("; ")"; "["; "]"; "{"; "}"; ";"; ","; "."; "?"; ":" ]

let next (st : state) : lexeme =
  skip_ws st;
  let pos = here st in
  match peek_char st with
  | None -> { tok = Teof; pos }
  | Some c when is_id_start c ->
      let start = st.pos in
      while (match peek_char st with Some c -> is_id_char c | None -> false) do
        advance st
      done;
      let word = String.sub st.src start (st.pos - start) in
      if List.mem word keywords then { tok = Tkw word; pos } else { tok = Tid word; pos }
  | Some c when is_digit c ->
      let start = st.pos in
      (* hex *)
      if c = '0' && st.pos + 1 < String.length st.src
         && (st.src.[st.pos + 1] = 'x' || st.src.[st.pos + 1] = 'X') then begin
        advance st;
        advance st;
        while
          match peek_char st with
          | Some c -> is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
          | None -> false
        do
          advance st
        done;
        let text = String.sub st.src start (st.pos - start) in
        { tok = Tint (Int32.of_string text); pos }
      end
      else begin
        while (match peek_char st with Some c -> is_digit c | None -> false) do
          advance st
        done;
        let is_real =
          (match peek_char st with
          | Some '.' -> st.pos + 1 >= String.length st.src || st.src.[st.pos + 1] <> '.'
          | _ -> false)
          || match peek_char st with Some ('e' | 'E') -> true | _ -> false
        in
        if is_real then begin
          if peek_char st = Some '.' then begin
            advance st;
            while (match peek_char st with Some c -> is_digit c | None -> false) do
              advance st
            done
          end;
          (match peek_char st with
          | Some ('e' | 'E') ->
              advance st;
              (match peek_char st with Some ('+' | '-') -> advance st | _ -> ());
              while (match peek_char st with Some c -> is_digit c | None -> false) do
                advance st
              done
          | _ -> ());
          let text = String.sub st.src start (st.pos - start) in
          { tok = Tfloat (float_of_string text); pos }
        end
        else
          let text = String.sub st.src start (st.pos - start) in
          { tok = Tint (Int32.of_string text); pos }
      end
  | Some '\'' ->
      advance st;
      let c =
        match peek_char st with
        | Some '\\' ->
            advance st;
            escape st
        | Some c ->
            advance st;
            c
        | None -> raise (Error ("unterminated char literal", pos))
      in
      if peek_char st <> Some '\'' then raise (Error ("unterminated char literal", pos));
      advance st;
      { tok = Tchar c; pos }
  | Some '"' ->
      advance st;
      let buf = Buffer.create 16 in
      let rec go () =
        match peek_char st with
        | None -> raise (Error ("unterminated string literal", pos))
        | Some '"' -> advance st
        | Some '\\' ->
            advance st;
            Buffer.add_char buf (escape st);
            go ()
        | Some c ->
            advance st;
            Buffer.add_char buf c;
            go ()
      in
      go ();
      { tok = Tstring (Buffer.contents buf); pos }
  | Some _ -> (
      let rest_starts_with p =
        String.length st.src - st.pos >= String.length p
        && String.sub st.src st.pos (String.length p) = p
      in
      match List.find_opt rest_starts_with puncts with
      | Some p ->
          for _ = 1 to String.length p do
            advance st
          done;
          { tok = Tpunct p; pos }
      | None -> raise (Error (Printf.sprintf "stray character %C" st.src.[st.pos], pos)))

(** Tokenize a whole source string. *)
let all src =
  let st = make src in
  let rec go acc =
    let l = next st in
    if l.tok = Teof then List.rev (l :: acc) else go (l :: acc)
  in
  go []
