lib/ldb/client.ml: Breakpoint Frame Int32 Ldb Ldb_amemory Ldb_machine List Signal Target
