lib/ldb/disas.ml: Char Fmt Insn Ldb_amemory Ldb_machine List Printf String Target
