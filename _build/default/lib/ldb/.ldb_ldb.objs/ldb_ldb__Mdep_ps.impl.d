lib/ldb/mdep_ps.ml: Ldb_machine
