lib/ldb/frame.ml: Hashtbl Int32 Ldb_amemory Ldb_machine List Target
