lib/ldb/breakpoint.ml: Char Hashtbl Ldb_amemory Ldb_machine List Printf Signal String Target
