lib/ldb/frame_m68k.ml: Arch Frame Hashtbl Int32 Ldb_amemory Ldb_machine Target
