lib/ldb/frame_mips.ml: Arch Frame Hashtbl Int32 Ldb_amemory Ldb_machine Target
