lib/ldb/frame_sparc.ml: Arch Frame Hashtbl Int32 Ldb_amemory Ldb_machine Target
