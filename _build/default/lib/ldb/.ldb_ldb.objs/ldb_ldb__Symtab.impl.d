lib/ldb/symtab.ml: Array Hashtbl Ldb_machine Ldb_pscript List
