lib/ldb/frame_vax.ml: Arch Frame Hashtbl Int32 Ldb_amemory Ldb_machine Target
