lib/ldb/host.ml: Arch Ldb Ldb_link Ldb_machine Ldb_nub Proc
