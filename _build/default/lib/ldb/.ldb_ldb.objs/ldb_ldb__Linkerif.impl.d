lib/ldb/linkerif.ml: Arch Array Hashtbl Int32 Ldb_amemory Ldb_machine Ldb_pscript List Option Rpt
