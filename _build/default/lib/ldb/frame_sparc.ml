(** SIM-SPARC stack frames.

    The SPARC keeps a real frame pointer in r30 and a link register in
    r15; the callee's prologue pushes the caller's fp and saves the return
    address at fp-4.  Walking follows the fp chain. *)

open Ldb_machine
module A = Ldb_amemory.Amemory

let arch = Arch.Sparc

let target = Target.of_arch arch
let sp_reg = target.Target.sp
let fp_reg = match target.Target.fp with Some r -> r | None -> assert false
let ra_reg = match target.Target.ra with Some r -> r | None -> assert false

let rec make (q : Frame.query) ~pc ~fp ~sp ~aliases ~level : Frame.t =
  let mem = Frame.build_dag q.Frame.q_target q.Frame.q_wire aliases in
  (* the vfp "extra register" is just the fp on this target *)
  Hashtbl.replace aliases ('x', 1) (Frame.imm_i32 fp);
  {
    Frame.fr_pc = pc;
    fr_base = fp;
    fr_sp = sp;
    fr_level = level;
    fr_mem = mem;
    fr_aliases = aliases;
    fr_down = (fun () -> down q ~pc ~fp ~aliases ~level);
  }

and down (q : Frame.query) ~pc ~fp ~aliases ~level : Frame.t option =
  let fetch32 addr = Int32.to_int (A.fetch_i32 q.Frame.q_wire (A.absolute 'd' addr)) in
  let ret_pc = fetch32 (fp - 4) land 0xffffffff in
  let caller_fp = fetch32 fp land 0xffffffff in
  if ret_pc = 0 || caller_fp = 0 || not (q.Frame.q_known_pc ~pc:ret_pc) then None
  else begin
    let aliases' = Frame.copy_aliases aliases in
    Hashtbl.replace aliases' ('x', 0) (Frame.imm_i32 ret_pc);
    Hashtbl.replace aliases' ('r', fp_reg) (Frame.imm_i32 caller_fp);
    (* at the call, sp pointed just below the pushed fp *)
    Hashtbl.replace aliases' ('r', sp_reg) (Frame.imm_i32 (fp + 4));
    (* the caller's return address lives in its own ra slot *)
    Hashtbl.replace aliases' ('r', ra_reg) (A.absolute 'd' (caller_fp - 4));
    (match q.Frame.q_proc_info ~pc with
    | Some pi -> Frame.apply_saved_regs aliases' ~callee_base:fp pi.Frame.pi_saved_regs
    | None -> ());
    Some (make q ~pc:ret_pc ~fp:caller_fp ~sp:(fp + 4) ~aliases:aliases' ~level:(level + 1))
  end

let top (q : Frame.query) ~ctx_addr : Frame.t =
  let fetch32 addr = Int32.to_int (A.fetch_i32 q.Frame.q_wire (A.absolute 'd' addr)) in
  let pc = fetch32 (ctx_addr + target.Target.ctx_pc_off) land 0xffffffff in
  let fp = fetch32 (ctx_addr + target.Target.ctx_reg_off fp_reg) land 0xffffffff in
  let sp = fetch32 (ctx_addr + target.Target.ctx_reg_off sp_reg) land 0xffffffff in
  let aliases = Frame.context_aliases target ~ctx_addr in
  make q ~pc ~fp ~sp ~aliases ~level:0
