(** The machine-independent stack-frame abstraction (Sec. 4).

    A frame carries the program counter, the frame base (the virtual frame
    pointer on SIM-MIPS, the frame pointer elsewhere), and the abstract
    memory DAG of Fig. 4 through which every register and memory access for
    that activation travels.  Machine-dependent instances supply only the
    two methods the paper calls out: one that walks down the stack and one
    that builds the next frame's memory (register restoration is expressed
    as the alias table of the next frame). *)

open Ldb_machine
module A = Ldb_amemory.Amemory

exception Error of string

(** Per-procedure information the walkers need, from the symbol table
    (frame size, register-variable save slots). *)
type proc_info = {
  pi_frame_size : int;
  pi_ra_offset : int;
  pi_saved_regs : (int * int) list;
}

(** Everything a machine-dependent walker may consult. *)
type query = {
  q_target : Target.t;
  q_wire : A.t;
  q_frame_size : pc:int -> int option;  (** SIM-MIPS: the RPT via the linker interface *)
  q_proc_info : pc:int -> proc_info option;  (** from the symbol table *)
  q_known_pc : pc:int -> bool;  (** false ends the walk (e.g. the startup stub) *)
}

type t = {
  fr_pc : int;
  fr_base : int;  (** vfp / fp value: FrameBase for the PostScript world *)
  fr_sp : int;
  fr_level : int;
  fr_mem : A.t;  (** the joined memory presented to the rest of the debugger *)
  fr_aliases : (char * int, A.location) Hashtbl.t;
  fr_down : unit -> t option;  (** machine-dependent stack walk *)
}

(* --- shared DAG construction (Fig. 4) ---------------------------------- *)

(** Build wire -> alias -> register -> joined for a given alias table. *)
let build_dag (target : Target.t) (wire : A.t) aliases : A.t =
  let alias_mem = A.alias ~table:aliases wire in
  let reg_mem =
    A.register
      ~spaces:
        [ ('r', A.Int_reg 4); ('x', A.Int_reg 4);
          ('f', A.Float_reg target.Target.ctx_freg_bytes) ]
      alias_mem
  in
  A.joined ~routes:[ ('r', reg_mem); ('f', reg_mem); ('x', reg_mem) ] ~default:wire

(** Alias table for a stopped context: every register aliases its save
    slot in the context area (machine-dependent data; shared code). *)
let context_aliases (target : Target.t) ~ctx_addr : (char * int, A.location) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  for r = 0 to Target.nregs target - 1 do
    Hashtbl.replace tbl ('r', r) (A.absolute 'd' (ctx_addr + target.Target.ctx_reg_off r))
  done;
  for f = 0 to Target.nfregs target - 1 do
    Hashtbl.replace tbl ('f', f) (A.absolute 'd' (ctx_addr + target.Target.ctx_freg_off f))
  done;
  Hashtbl.replace tbl ('x', 0) (A.absolute 'd' (ctx_addr + target.Target.ctx_pc_off));
  tbl

let copy_aliases t = Hashtbl.copy t

let imm_i32 v = A.immediate_i32 (Int32.of_int v)

(* --- typed access through a frame's memory ------------------------------ *)

let fetch_reg fr r = Int32.to_int (A.fetch_i32 fr.fr_mem (A.absolute 'r' r)) land 0xffffffff
let fetch_pc fr = Int32.to_int (A.fetch_i32 fr.fr_mem (A.absolute 'x' 0)) land 0xffffffff
let fetch_word fr addr = Int32.to_int (A.fetch_i32 fr.fr_mem (A.absolute 'd' addr))
let store_reg fr r v = A.store_i32 fr.fr_mem (A.absolute 'r' r) (Int32.of_int v)

(** Saved-register aliases: a register variable of the {e callee} was saved
    in the callee's frame, so in the caller's frame the register aliases
    that save slot; untouched callee-saved registers keep the aliases of
    the called frame (the paper's alias reuse). *)
let apply_saved_regs aliases ~callee_base (saved : (int * int) list) =
  List.iter
    (fun (r, off) -> Hashtbl.replace aliases ('r', r) (A.absolute 'd' (callee_base + off)))
    saved
