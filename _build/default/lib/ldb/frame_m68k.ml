(** SIM-68020 stack frames.

    Calls push the return address; the prologue links a6 as the frame
    pointer, so [a6] holds the caller's a6 and [a6+4] the return address.
    The context stores floating registers in 80-bit extended format, which
    the register memory converts transparently. *)

open Ldb_machine
module A = Ldb_amemory.Amemory

let arch = Arch.M68k

let target = Target.of_arch arch
let sp_reg = target.Target.sp (* a7 *)
let fp_reg = match target.Target.fp with Some r -> r | None -> assert false (* a6 *)

let rec make (q : Frame.query) ~pc ~fp ~sp ~aliases ~level : Frame.t =
  let mem = Frame.build_dag q.Frame.q_target q.Frame.q_wire aliases in
  Hashtbl.replace aliases ('x', 1) (Frame.imm_i32 fp);
  {
    Frame.fr_pc = pc;
    fr_base = fp;
    fr_sp = sp;
    fr_level = level;
    fr_mem = mem;
    fr_aliases = aliases;
    fr_down = (fun () -> down q ~pc ~fp ~aliases ~level);
  }

and down (q : Frame.query) ~pc ~fp ~aliases ~level : Frame.t option =
  let fetch32 addr = Int32.to_int (A.fetch_i32 q.Frame.q_wire (A.absolute 'd' addr)) in
  let caller_fp = fetch32 fp land 0xffffffff in
  let ret_pc = fetch32 (fp + 4) land 0xffffffff in
  if ret_pc = 0 || caller_fp = 0 || not (q.Frame.q_known_pc ~pc:ret_pc) then None
  else begin
    let aliases' = Frame.copy_aliases aliases in
    Hashtbl.replace aliases' ('x', 0) (Frame.imm_i32 ret_pc);
    Hashtbl.replace aliases' ('r', fp_reg) (Frame.imm_i32 caller_fp);
    (* after the callee returns and the ra pops, sp sits above it *)
    Hashtbl.replace aliases' ('r', sp_reg) (Frame.imm_i32 (fp + 8));
    (match q.Frame.q_proc_info ~pc with
    | Some pi -> Frame.apply_saved_regs aliases' ~callee_base:fp pi.Frame.pi_saved_regs
    | None -> ());
    Some (make q ~pc:ret_pc ~fp:caller_fp ~sp:(fp + 8) ~aliases:aliases' ~level:(level + 1))
  end

let top (q : Frame.query) ~ctx_addr : Frame.t =
  let fetch32 addr = Int32.to_int (A.fetch_i32 q.Frame.q_wire (A.absolute 'd' addr)) in
  let pc = fetch32 (ctx_addr + target.Target.ctx_pc_off) land 0xffffffff in
  let fp = fetch32 (ctx_addr + target.Target.ctx_reg_off fp_reg) land 0xffffffff in
  let sp = fetch32 (ctx_addr + target.Target.ctx_reg_off sp_reg) land 0xffffffff in
  let aliases = Frame.context_aliases target ~ctx_addr in
  make q ~pc ~fp ~sp ~aliases ~level:0
