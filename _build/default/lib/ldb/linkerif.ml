(** The linker interface (Sec. 3, 4.3): access to link-time information
    through the loader table, hiding machine dependencies.

    The VAX, SPARC and 68020 share a single machine-independent
    implementation of frame-size queries (frame sizes come from the
    symbol table); the MIPS cannot, because it has no frame pointer — its
    implementation reads the runtime procedure table from the target's
    address space through the wire, exactly as the paper describes.

    The anchor-symbol technique lives here too: [lazy_data] finds an
    anchor's address in the loader table, fetches the relocated word at
    the given index from target memory, and memoizes the result — each
    such fetch happens at most once per symbol-table entry. *)

open Ldb_machine
module A = Ldb_amemory.Amemory
module V = Ldb_pscript.Value

exception Error of string

type t = {
  arch : Arch.t;
  loader : V.dict;  (** the __loader dictionary *)
  wire : A.t;
  anchor_cache : (string * int, int) Hashtbl.t;
  mutable rpt : Rpt.entry list option;  (** SIM-MIPS runtime procedure table *)
  mutable proctable : (int * string) array option;  (** sorted by address *)
}

let make ~(arch : Arch.t) ~(loader : V.dict) ~(wire : A.t) : t =
  { arch; loader; wire; anchor_cache = Hashtbl.create 64; rpt = None; proctable = None }

let get_dict d key =
  match V.dict_get d key with
  | Some v -> V.to_dict v
  | None -> raise (Error ("loader table lacks /" ^ key))

let fetch32 li addr = Int32.to_int (A.fetch_i32 li.wire (A.absolute 'd' addr))

(** Address of an anchor symbol, from the loader table's anchormap. *)
let anchor_address li name =
  let am = get_dict li.loader "anchormap" in
  match V.dict_get am name with
  | Some v -> V.to_int v
  | None -> raise (Error ("unknown anchor symbol " ^ name))

(** The LazyData operation: the address stored at word [idx] of anchor
    [name], fetched from the target's data space on demand and memoized. *)
let lazy_data li ~name ~idx =
  match Hashtbl.find_opt li.anchor_cache (name, idx) with
  | Some v -> v
  | None ->
      let base = anchor_address li name in
      let v = fetch32 li (base + (4 * idx)) in
      Hashtbl.replace li.anchor_cache (name, idx) v;
      v

(** Address of a global (external) symbol by linker name. *)
let global_address li name =
  let gm = get_dict li.loader "globalmap" in
  match V.dict_get gm name with
  | Some v -> V.to_int v
  | None -> raise (Error ("unknown global symbol " ^ name))

(** The procedure table: (address, name) pairs sorted by address. *)
let proctable li =
  match li.proctable with
  | Some t -> t
  | None ->
      let arr = V.to_arr (match V.dict_get li.loader "proctable" with
        | Some v -> v
        | None -> raise (Error "loader table lacks /proctable"))
      in
      let entries = ref [] in
      let i = ref 0 in
      while !i + 1 < Array.length arr do
        entries := (V.to_int arr.(!i), V.to_str arr.(!i + 1)) :: !entries;
        i := !i + 2
      done;
      let t = Array.of_list (List.sort compare !entries) in
      li.proctable <- Some t;
      t

(** Name and address of the procedure containing [pc]. *)
let proc_of_pc li ~pc : (int * string) option =
  let t = proctable li in
  let n = Array.length t in
  let rec search lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let addr, _ = t.(mid) in
      if addr <= pc then search (mid + 1) hi (Some t.(mid)) else search lo (mid - 1) best
  in
  if n = 0 then None else search 0 (n - 1) None

(* --- frame sizes ----------------------------------------------------------- *)

let mips_rpt li =
  match li.rpt with
  | Some r -> r
  | None ->
      (* read the runtime procedure table out of the target address space *)
      let r = Rpt.read (fun addr -> Int32.of_int (fetch32 li addr)) in
      li.rpt <- Some r;
      r

(** Frame size of the procedure containing [pc].

    SIM-MIPS: from the runtime procedure table in target memory (available
    even for procedures without debugging symbols).  Other targets walk
    frame-pointer chains and never need this from the linker interface. *)
let frame_size li ~pc : int option =
  match li.arch with
  | Arch.Mips ->
      Option.map (fun (e : Rpt.entry) -> e.Rpt.frame_size) (Rpt.find (mips_rpt li) ~pc)
  | _ -> None

(** Return-address save offset (from the post-prologue sp) on SIM-MIPS. *)
let ra_offset li ~pc : int option =
  match li.arch with
  | Arch.Mips -> Option.map (fun (e : Rpt.entry) -> e.Rpt.ra_offset) (Rpt.find (mips_rpt li) ~pc)
  | _ -> None
