(** SIM-MIPS stack frames.

    The MIPS has no frame pointer, so this is the largest machine-dependent
    module: the virtual frame pointer is reconstructed as sp + frame size,
    with frame sizes taken from the runtime procedure table in the target's
    address space (via the linker interface), which works even for
    procedures without debugging symbols.  The virtual frame pointer and
    the program counter are the "extra registers" — aliases for immediate
    locations, not for locations in target memory. *)

open Ldb_machine
module A = Ldb_amemory.Amemory

let arch = Arch.Mips

let sp_reg = (Target.of_arch arch).Target.sp
let ra_reg = 31

let frame_size_at (q : Frame.query) ~pc =
  match q.Frame.q_frame_size ~pc with
  | Some s -> s
  | None -> (
      match q.Frame.q_proc_info ~pc with
      | Some pi -> pi.Frame.pi_frame_size
      | None -> 0)

(** Build a frame given its pc, sp and alias table, wiring up the walk to
    the calling frame. *)
let rec make (q : Frame.query) ~pc ~sp ~aliases ~level : Frame.t =
  let target = q.Frame.q_target in
  let fsize = frame_size_at q ~pc in
  let vfp = sp + fsize in
  Hashtbl.replace aliases ('x', 1) (Frame.imm_i32 vfp);
  let mem = Frame.build_dag target q.Frame.q_wire aliases in
  {
    Frame.fr_pc = pc;
    fr_base = vfp;
    fr_sp = sp;
    fr_level = level;
    fr_mem = mem;
    fr_aliases = aliases;
    fr_down = (fun () -> down q ~pc ~sp ~vfp ~aliases ~level);
  }

(** Walk to the calling frame: the return address lives at vfp-4 (the ra
    save slot the prologue uses), and the caller's sp is this frame's vfp. *)
and down (q : Frame.query) ~pc ~sp ~vfp ~aliases ~level : Frame.t option =
  ignore sp;
  let fetch32 addr = Int32.to_int (A.fetch_i32 q.Frame.q_wire (A.absolute 'd' addr)) in
  let ra_off =
    match q.Frame.q_proc_info ~pc with
    | Some pi -> pi.Frame.pi_ra_offset - frame_size_at q ~pc (* relative to vfp *)
    | None -> -4
  in
  let ret_pc = fetch32 (vfp + ra_off) land 0xffffffff in
  if ret_pc = 0 || not (q.Frame.q_known_pc ~pc:ret_pc) then None
  else begin
    let caller_sp = vfp in
    let aliases' = Frame.copy_aliases aliases in
    Hashtbl.replace aliases' ('x', 0) (Frame.imm_i32 ret_pc);
    Hashtbl.replace aliases' ('r', sp_reg) (Frame.imm_i32 caller_sp);
    (* the caller's own return address was saved in its frame *)
    let caller_fsize = frame_size_at q ~pc:ret_pc in
    Hashtbl.replace aliases' ('r', ra_reg)
      (A.absolute 'd' (caller_sp + caller_fsize - 4));
    (* register variables the callee saved: alias to the save slots *)
    (match q.Frame.q_proc_info ~pc with
    | Some pi -> Frame.apply_saved_regs aliases' ~callee_base:vfp pi.Frame.pi_saved_regs
    | None -> ());
    Some (make q ~pc:ret_pc ~sp:caller_sp ~aliases:aliases' ~level:(level + 1))
  end

(** The topmost frame of a stopped target, from the context the nub saved. *)
let top (q : Frame.query) ~ctx_addr : Frame.t =
  let target = q.Frame.q_target in
  let fetch32 addr = Int32.to_int (A.fetch_i32 q.Frame.q_wire (A.absolute 'd' addr)) in
  let pc = fetch32 (ctx_addr + target.Target.ctx_pc_off) land 0xffffffff in
  let sp = fetch32 (ctx_addr + target.Target.ctx_reg_off sp_reg) land 0xffffffff in
  let aliases = Frame.context_aliases target ~ctx_addr in
  make q ~pc ~sp ~aliases ~level:0
