(** The machine-dependent PostScript (Sec. 4.3): one small dictionary per
    target, placed on the dictionary stack when ldb talks to that target.
    It addresses local variables ([FrameLoc]) and enumerates the target's
    registers; everything else in the PostScript world is shared.

    When ldb changes architectures it simply rebinds these names by
    pushing a different dictionary (Sec. 5). *)

let mips = {|
% --- SIM-MIPS machine-dependent PostScript ---
/Regset0 (r) def
/Fregset (f) def
/Xregset (x) def
% locals are addressed relative to the virtual frame pointer, which the
% debugger binds as FrameBase per frame (the MIPS has no real frame pointer)
/FrameLoc { FrameBase add (d) Absolute } def
/FloatFetch { FetchF64 } def
/FloatStore { StoreF64 } def
/NumRegs 32 def
/RegName { cvs (r) exch concatstr } def
|}

let sparc = {|
% --- SIM-SPARC machine-dependent PostScript ---
/Regset0 (r) def
/Fregset (f) def
/Xregset (x) def
% locals are addressed relative to the frame pointer (r30)
/FrameLoc { FrameBase add (d) Absolute } def
/FloatFetch { FetchF64 } def
/FloatStore { StoreF64 } def
/NumRegs 32 def
/RegName { cvs (r) exch concatstr } def
|}

let m68k = {|
% --- SIM-68020 machine-dependent PostScript ---
/Regset0 (r) def
/Fregset (f) def
/Xregset (x) def
% locals are addressed relative to a6, the frame pointer
/FrameLoc { FrameBase add (d) Absolute } def
% the 68020's floating registers hold 80-bit extended values
/FloatFetch { FetchF80 } def
/FloatStore { StoreF80 } def
/NumRegs 16 def
% d0-d7 then a0-a7
/RegName {
  dup 8 lt { cvs (d) exch concatstr } { 8 sub cvs (a) exch concatstr } ifelse
} def
|}

let vax = {|
% --- SIM-VAX machine-dependent PostScript ---
/Regset0 (r) def
/Fregset (f) def
/Xregset (x) def
% locals are addressed relative to r13, the frame pointer
/FrameLoc { FrameBase add (d) Absolute } def
/FloatFetch { FetchF64 } def
/FloatStore { StoreF64 } def
/NumRegs 16 def
/RegName { cvs (r) exch concatstr } def
|}

let source (a : Ldb_machine.Arch.t) =
  match a with
  | Ldb_machine.Arch.Mips -> mips
  | Ldb_machine.Arch.Sparc -> sparc
  | Ldb_machine.Arch.M68k -> m68k
  | Ldb_machine.Arch.Vax -> vax
