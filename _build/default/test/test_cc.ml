(** Tests for the lcc-sim compiler: lexer, parser, types and layout,
    constant folding, correctness of generated code on all four targets
    (differential testing), the stopping-point no-ops, the scheduler, and
    the two symbol-table emitters. *)

open Ldb_machine
open Ldb_cc

let check = Alcotest.check

(* --- lexer -------------------------------------------------------------------- *)

let toks src = List.map (fun l -> l.Lex.tok) (Lex.all src)

let test_lexer_basics () =
  check Alcotest.int "count" 6 (List.length (toks "int x = 42;"));
  (match toks "0x1F" with
  | [ Lex.Tint n; Lex.Teof ] -> check Alcotest.int32 "hex" 31l n
  | _ -> Alcotest.fail "hex literal");
  (match toks "3.5e2" with
  | [ Lex.Tfloat f; Lex.Teof ] -> check (Alcotest.float 0.0) "float" 350.0 f
  | _ -> Alcotest.fail "float literal");
  (match toks "'\\n'" with
  | [ Lex.Tchar '\n'; Lex.Teof ] -> ()
  | _ -> Alcotest.fail "char escape");
  match toks "\"a\\tb\"" with
  | [ Lex.Tstring "a\tb"; Lex.Teof ] -> ()
  | _ -> Alcotest.fail "string escape"

let test_lexer_comments () =
  check Alcotest.int "line comment" 2 (List.length (toks "x // junk\n"));
  check Alcotest.int "block comment" 3 (List.length (toks "a /* b c */ d"))

let test_lexer_positions () =
  match Lex.all "x\n  y" with
  | [ a; b; _ ] ->
      check Alcotest.int "line 1" 1 a.Lex.pos.Lex.line;
      check Alcotest.int "line 2" 2 b.Lex.pos.Lex.line;
      check Alcotest.int "col 3" 3 b.Lex.pos.Lex.col
  | _ -> Alcotest.fail "token count"

let test_lexer_multichar_punct () =
  match toks "a <<= b >= c" with
  | [ Lex.Tid "a"; Lex.Tpunct "<<="; Lex.Tid "b"; Lex.Tpunct ">="; Lex.Tid "c"; Lex.Teof ] -> ()
  | _ -> Alcotest.fail "punct"

(* --- parser -------------------------------------------------------------------- *)

let parse src = Parse.parse_unit ~file:"t.c" ~arch:Mips src

let test_parse_function () =
  let u = parse "int f(int a, int b) { return a + b; }" in
  match u.Ast.tops with
  | [ Ast.Tfunc f ] ->
      check Alcotest.string "name" "f" f.Ast.fname;
      check Alcotest.int "params" 2 (List.length f.Ast.fparams)
  | _ -> Alcotest.fail "expected one function"

let test_parse_precedence () =
  let u = parse "int f(void) { return 1 + 2 * 3; }" in
  match u.Ast.tops with
  | [ Ast.Tfunc { fbody = { bstmts = [ Ast.Sreturn (Some e, _) ]; _ }; _ } ] -> (
      match e with
      | Ast.Ebin ("+", Ast.Eint (1l, _), Ast.Ebin ("*", _, _, _), _) -> ()
      | _ -> Alcotest.fail "precedence wrong")
  | _ -> Alcotest.fail "shape"

let test_parse_declarators () =
  let u = parse "int a[3][4]; int *p; struct s { int x; char c; } ;" in
  match u.Ast.tops with
  | Ast.Tvar { dty = Ctype.Array (Ctype.Array (Ctype.Int, 4), 3); _ } :: _ -> ()
  | _ -> Alcotest.fail "array of array"

let test_parse_error_position () =
  match parse "int f(void) { return 1 +; }" with
  | exception Parse.Error (_, p) -> check Alcotest.int "error line" 1 p.Lex.line
  | _ -> Alcotest.fail "expected parse error"

(* --- types and layout ------------------------------------------------------------ *)

let test_sizes_per_target () =
  check Alcotest.int "int" 4 (Ctype.size Mips Ctype.Int);
  check Alcotest.int "double" 8 (Ctype.size Vax Ctype.Double);
  check Alcotest.int "long double on m68k" 10 (Ctype.size M68k Ctype.LongDouble);
  check Alcotest.int "long double elsewhere" 8 (Ctype.size Sparc Ctype.LongDouble);
  check Alcotest.int "array" 80 (Ctype.size Mips (Ctype.Array (Ctype.Int, 20)))

let test_struct_layout () =
  let sd = { Ctype.sname = "s"; fields = []; ssize = 0; complete = false } in
  Ctype.layout_struct Mips sd
    [ ("c", Ctype.Char); ("i", Ctype.Int); ("s", Ctype.Short); ("d", Ctype.Double) ];
  let field n = match Ctype.field sd n with Some f -> f.Ctype.foffset | None -> -1 in
  check Alcotest.int "c at 0" 0 (field "c");
  check Alcotest.int "i aligned to 4" 4 (field "i");
  check Alcotest.int "s at 8" 8 (field "s");
  check Alcotest.int "d aligned" 12 (field "d");
  check Alcotest.int "size rounded" 20 sd.Ctype.ssize

let test_decl_strings () =
  check Alcotest.string "array" "int %s[20]" (Ctype.decl_string (Ctype.Array (Ctype.Int, 20)));
  check Alcotest.string "ptr" "char *%s" (Ctype.decl_string (Ctype.Ptr Ctype.Char));
  check Alcotest.string "display" "int[20]" (Ctype.to_string (Ctype.Array (Ctype.Int, 20)))

(* --- differential execution tests across all targets ------------------------------ *)

let battery : (string * string * string) list =
  [
    ( "arith",
      {|int main(void) {
          printf("%d %d %d %d %d\n", 7+3, 7-3, 7*3, 7/3, 7%3);
          printf("%d %d %d\n", -5/2, -5%2, 1<<10);
          return 0;
        }|},
      "10 4 21 2 1\n-2 -1 1024\n" );
    ( "comparisons",
      {|int main(void) {
          int a; int b;
          a = 3; b = -4;
          printf("%d%d%d%d%d%d\n", a<b, a<=b, a>b, a>=b, a==b, a!=b);
          printf("%d%d\n", a==3, b!=-4);
          return 0;
        }|},
      "001101\n10\n" );
    ( "unsigned",
      {|int main(void) {
          unsigned u;
          u = 0x80000000;
          printf("%u %u %d\n", u >> 4, u / 2, u > 1);
          return 0;
        }|},
      "134217728 1073741824 1\n" );
    ( "shortcircuit",
      {|int side;
        int bump(int v) { side = side + 1; return v; }
        int main(void) {
          int r;
          side = 0;
          r = bump(0) && bump(1);
          printf("%d %d ", r, side);
          r = bump(1) || bump(0);
          printf("%d %d\n", r, side);
          return 0;
        }|},
      "0 1 1 2\n" );
    ( "loops",
      {|int main(void) {
          int i; int s;
          s = 0;
          for (i = 0; i < 10; i++) { if (i == 5) continue; s += i; }
          while (s > 20) s -= 7;
          do { s++; } while (s < 19);
          printf("%d\n", s);
          return 0;
        }|},
      "20\n" );
    ( "recursion",
      {|int ack(int m, int n) {
          if (m == 0) return n + 1;
          if (n == 0) return ack(m - 1, 1);
          return ack(m - 1, ack(m, n - 1));
        }
        int main(void) { printf("%d\n", ack(2, 3)); return 0; }|},
      "9\n" );
    ( "pointers",
      {|int swap(int *a, int *b) { int t; t = *a; *a = *b; *b = t; return 0; }
        int main(void) {
          int x; int y; int *p;
          x = 1; y = 2;
          swap(&x, &y);
          p = &x;
          *p += 10;
          printf("%d %d\n", x, y);
          return 0;
        }|},
      "12 1\n" );
    ( "arrays2d",
      {|int main(void) {
          int m[3][4];
          int i; int j; int s;
          for (i = 0; i < 3; i++)
            for (j = 0; j < 4; j++)
              m[i][j] = i * 10 + j;
          s = 0;
          for (i = 0; i < 3; i++) s += m[i][3];
          printf("%d %d\n", s, m[2][1]);
          return 0;
        }|},
      "39 21\n" );
    ( "strings",
      {|int len(char *s) { int n; n = 0; while (*s++) n++; return n; }
        int main(void) {
          char *msg;
          msg = "hello, world";
          printf("%s has %d chars, first %c\n", msg, len(msg), msg[0]);
          return 0;
        }|},
      "hello, world has 12 chars, first h\n" );
    ( "structs",
      {|struct point { int x; int y; };
        struct rect { struct point lo; struct point hi; };
        int area(struct rect *r) {
          return (r->hi.x - r->lo.x) * (r->hi.y - r->lo.y);
        }
        int main(void) {
          struct rect r;
          r.lo.x = 1; r.lo.y = 2; r.hi.x = 5; r.hi.y = 7;
          printf("%d\n", area(&r));
          return 0;
        }|},
      "20\n" );
    ( "floats",
      {|double square(double x) { return x * x; }
        int main(void) {
          double d; float f; int i;
          d = 1.5;
          f = 0.25;
          d = square(d) + f;
          i = d * 4.0;
          printf("%g %d %d\n", d, i, d > 2.0);
          return 0;
        }|},
      "2.5 10 1\n" );
    ( "longdouble",
      {|int main(void) {
          long double x;
          x = 1.25;
          x = x * 4.0;
          printf("%g\n", x);
          return 0;
        }|},
      "5\n" );
    ( "register",
      {|int sum(int n) {
          register int acc;
          register int i;
          acc = 0;
          for (i = 1; i <= n; i++) acc += i;
          return acc;
        }
        int main(void) { printf("%d\n", sum(100)); return 0; }|},
      "5050\n" );
    ( "globals",
      {|int counter = 5;
        static int secret = 10;
        int bump(void) { counter++; secret += 2; return secret; }
        int main(void) {
          bump(); bump();
          /* bump() evaluates before counter is read (right-to-left) */
          printf("%d %d\n", counter, bump());
          return 0;
        }|},
      "8 16\n" );
    ( "conditional",
      {|int main(void) {
          int a; int b;
          a = 3;
          b = a > 2 ? a * 100 : -1;
          printf("%d %d\n", b, a < 2 ? 1 : 2);
          return 0;
        }|},
      "300 2\n" );
    ( "manyargs",
      {|int add8(int a, int b, int c, int d, int e, int f, int g, int h) {
          return a + 10*b + 100*c + d + e + f + g + h;
        }
        int main(void) {
          printf("%d\n", add8(1, 2, 3, 4, 5, 6, 7, 8));
          return 0;
        }|},
      "351\n" );
    ( "incdec",
      {|int main(void) {
          int i; int a[4];
          i = 0;
          a[i++] = 5;
          a[i++] = 6;
          a[--i] = 7;
          /* argument evaluation is right-to-left on every target */
          printf("%d %d %d %d\n", a[0], a[1], i, ++i);
          return 0;
        }|},
      "5 7 2 2\n" );
    ( "chars",
      {|int main(void) {
          char c; short s;
          c = 200;          /* wraps to -56 as signed char */
          s = 40000;        /* wraps as signed short */
          printf("%d %d\n", c, s);
          return 0;
        }|},
      "-56 -25536\n" );
    ( "funcptr",
      {|int twice(int x) { return 2 * x; }
        int thrice(int x) { return 3 * x; }
        int main(void) {
          int (*f)(int);
          f = twice;
          printf("%d ", f(21));
          f = thrice;
          printf("%d\n", f(14));
          return 0;
        }|},
      "42 42\n" );
    ( "switch",
      {|int classify(int x) {
          int r;
          r = 0;
          switch (x) {
          case 0:
          case 1: r = 100; break;
          case 2: r = 200;          /* falls through */
          case 3: r = r + 5; break;
          case -4: r = 400; break;
          default: r = -1;
          }
          return r;
        }
        int main(void) {
          int i;
          for (i = -5; i <= 4; i++) printf("%d ", classify(i));
          printf("\n");
          return 0;
        }|},
      "-1 400 -1 -1 -1 100 100 205 5 -1 \n" );
    ( "sizeofops",
      {|struct big { double d; int i; };
        int main(void) {
          int arr[10];
          arr[0] = 0;
          printf("%d %d %d %d\n",
                 sizeof(int), sizeof(double), sizeof(struct big), sizeof(arr));
          return 0;
        }|},
      "4 8 12 40\n" );
  ]

let battery_case (name, src, expected) =
  Alcotest.test_case name `Quick (fun () ->
      Testkit.run_all_archs [ (name ^ ".c", src) ] ~expect_status:0 ~expect_out:expected)

(* --- debug no-ops and the scheduler ----------------------------------------------- *)

let count_nops (o : Asm.t) =
  List.fold_left
    (fun n item ->
      match item with Asm.Ins Ldb_machine.Insn.Nop -> n + 1 | _ -> n)
    0 o.Asm.o_text

let test_noop_overhead () =
  List.iter
    (fun arch ->
      let dbg = Compile.compile ~debug:true ~arch ~file:"fib.c" Testkit.fib_c in
      let nodbg = Compile.compile ~debug:false ~arch ~file:"fib.c" Testkit.fib_c in
      let n1, _ = Compile.text_stats dbg and n0, _ = Compile.text_stats nodbg in
      Alcotest.(check bool)
        (Arch.name arch ^ " -g adds instructions")
        true (n1 > n0);
      let pct = 100.0 *. float_of_int (n1 - n0) /. float_of_int n0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s overhead %.1f%% in a plausible band" (Arch.name arch) pct)
        true
        (pct > 5.0 && pct < 45.0))
    Arch.all

let test_scheduler_no_hazards () =
  List.iter
    (fun (name, src, _) ->
      let o = Compile.compile ~debug:true ~arch:Mips ~file:(name ^ ".c") src in
      match Sched.verify o.Asm.o_text with
      | None -> ()
      | Some i -> Alcotest.failf "%s: hazard at %d" name i)
    battery

let test_scheduler_restriction () =
  (* stopping-point labels limit scheduling, so -g pads more no-ops *)
  let total debug =
    List.fold_left
      (fun acc (name, src, _) ->
        acc + count_nops (Compile.compile ~debug ~arch:Mips ~file:(name ^ ".c") src))
      0 battery
  in
  let with_g = total true and without_g = total false in
  Alcotest.(check bool)
    (Printf.sprintf "with -g %d nops >= without %d" with_g without_g)
    true
    (with_g > without_g)

(* --- symbol table emitters ----------------------------------------------------------- *)

let test_ps_symtab_is_valid_postscript () =
  List.iter
    (fun arch ->
      let o = Compile.compile ~debug:true ~arch ~file:"fib.c" Testkit.fib_c in
      match o.Asm.o_ps with
      | None -> Alcotest.fail "no PS emitted"
      | Some ps ->
          let t = Ldb_pscript.Ps.create () in
          (* reading the defs must not raise *)
          Ldb_pscript.Interp.run_string t ps.Asm.pp_defs;
          Alcotest.(check bool)
            (Arch.name arch ^ " has procs")
            true
            (List.length ps.Asm.pp_procs = 2))
    Arch.all

let test_ps_symtab_defer_flag () =
  let o1 = Compile.compile ~debug:true ~defer:true ~arch:Vax ~file:"f.c" Testkit.fib_c in
  let o2 = Compile.compile ~debug:true ~defer:false ~arch:Vax ~file:"f.c" Testkit.fib_c in
  match (o1.Asm.o_ps, o2.Asm.o_ps) with
  | Some a, Some b ->
      (* deferred form wraps the body in a string *)
      Alcotest.(check bool) "deferred is parenthesized" true
        (String.length a.Asm.pp_defs > 0
        && String.contains a.Asm.pp_defs '('
        && a.Asm.pp_defs <> b.Asm.pp_defs)
  | _ -> Alcotest.fail "missing PS"

let test_stabs_emitted_and_smaller () =
  let o = Compile.compile ~debug:true ~arch:Mips ~file:"fib.c" Testkit.fib_c in
  match o.Asm.o_ps with
  | None -> Alcotest.fail "no ps"
  | Some ps ->
      Alcotest.(check bool) "stabs nonempty" true (String.length o.Asm.o_stabs > 0);
      Alcotest.(check bool) "PostScript much larger than stabs" true
        (String.length ps.Asm.pp_defs > 3 * String.length o.Asm.o_stabs)

let test_compile_error_reporting () =
  match Compile.compile ~arch:Mips ~file:"bad.c" "int main(void) { return x; }" with
  | exception Compile.Error m ->
      Alcotest.(check bool) "mentions undeclared" true
        (String.length m > 0 &&
         let has sub =
           let n = String.length sub in
           let rec go i = i + n <= String.length m && (String.sub m i n = sub || go (i + 1)) in
           go 0
         in
         has "undeclared")
  | _ -> Alcotest.fail "expected compile error"

(* --- peephole optimizer -------------------------------------------------- *)

let test_peephole_shrinks_code () =
  List.iter
    (fun arch ->
      let with_opt = Compile.compile ~optimize:true ~arch ~file:"f.c" Testkit.fib_c in
      let without = Compile.compile ~optimize:false ~arch ~file:"f.c" Testkit.fib_c in
      let n1, _ = Compile.text_stats with_opt and n0, _ = Compile.text_stats without in
      Alcotest.(check bool) (Arch.name arch ^ " not larger") true (n1 <= n0))
    Arch.all

let test_peephole_preserves_behaviour () =
  (* the whole battery must produce identical output with and without the
     optimizer on every architecture *)
  List.iter
    (fun (name, src, expected) ->
      List.iter
        (fun arch ->
          let img, _ =
            Ldb_link.Driver.build ~arch [ (name ^ ".c", src) ]
          in
          let p = Ldb_link.Link.load img in
          ignore (Ldb_machine.Proc.run p);
          Alcotest.(check string)
            (Printf.sprintf "%s/%s" name (Arch.name arch))
            expected
            (Ldb_machine.Proc.output p))
        [ Mips; Vax ])
    battery

let test_peephole_mov_elimination () =
  let items = [ Asm.Ins (Ldb_machine.Insn.Mov (3, 3)); Asm.Ins (Ldb_machine.Insn.Ret) ] in
  let out, st = Peephole.run (Ldb_machine.Target.of_arch Vax) items in
  Alcotest.(check int) "removed" 1 st.Peephole.removed;
  Alcotest.(check int) "one insn left" 1 (List.length out)

let test_peephole_li_alu_fold () =
  let open Ldb_machine.Insn in
  (* r5 is overwritten afterwards, so the li/alu pair may fold *)
  let items =
    [ Asm.Ins (Li (5, 42l)); Asm.Ins (Alu (Add, 2, 1, 5)); Asm.Ins (Li (5, 0l)); Asm.Ins Ret ]
  in
  let out, st = Peephole.run (Ldb_machine.Target.of_arch Vax) items in
  Alcotest.(check int) "folded" 1 st.Peephole.folded;
  match out with
  | [ Asm.Ins (Alui (Add, 2, 1, 42l)); Asm.Ins (Li (5, 0l)); Asm.Ins Ret ] -> ()
  | _ -> Alcotest.fail "expected a folded alui"

let test_peephole_keeps_live_li () =
  let open Ldb_machine.Insn in
  (* rK is used again afterwards: must NOT fold *)
  let items =
    [ Asm.Ins (Li (5, 42l)); Asm.Ins (Alu (Add, 2, 1, 5)); Asm.Ins (Mov (3, 5)); Asm.Ins Ret ]
  in
  let out, st = Peephole.run (Ldb_machine.Target.of_arch Vax) items in
  Alcotest.(check int) "not folded" 0 st.Peephole.folded;
  Alcotest.(check int) "unchanged" 4 (List.length out)

let test_peephole_keeps_stop_nops () =
  let o1 = Compile.compile ~optimize:true ~arch:M68k ~file:"f.c" Testkit.fib_c in
  let o0 = Compile.compile ~optimize:false ~arch:M68k ~file:"f.c" Testkit.fib_c in
  let stops o =
    List.filter (function Asm.Label l -> String.length l >= 7 && String.sub l 0 7 = "__stop$" | _ -> false)
      o.Asm.o_text
    |> List.length
  in
  Alcotest.(check int) "stopping points preserved" (stops o0) (stops o1)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "cc"
    [
      ( "lexer",
        [ case "basics" test_lexer_basics; case "comments" test_lexer_comments;
          case "positions" test_lexer_positions; case "punct" test_lexer_multichar_punct ] );
      ( "parser",
        [ case "function" test_parse_function; case "precedence" test_parse_precedence;
          case "declarators" test_parse_declarators;
          case "error positions" test_parse_error_position ] );
      ( "types",
        [ case "sizes" test_sizes_per_target; case "struct layout" test_struct_layout;
          case "decl strings" test_decl_strings ] );
      ("codegen (all targets)", List.map battery_case battery);
      ( "scheduler",
        [ case "no hazards remain" test_scheduler_no_hazards;
          case "-g restricts scheduling" test_scheduler_restriction;
          case "no-op overhead" test_noop_overhead ] );
      ( "peephole",
        [ case "never larger" test_peephole_shrinks_code;
          case "behaviour preserved" test_peephole_preserves_behaviour;
          case "mov elimination" test_peephole_mov_elimination;
          case "li/alu folding" test_peephole_li_alu_fold;
          case "liveness guard" test_peephole_keeps_live_li;
          case "stopping points preserved" test_peephole_keeps_stop_nops ] );
      ( "symbol tables",
        [ case "PostScript parses" test_ps_symtab_is_valid_postscript;
          case "deferral flag" test_ps_symtab_defer_flag;
          case "stabs smaller" test_stabs_emitted_and_smaller;
          case "errors" test_compile_error_reporting ] );
    ]
