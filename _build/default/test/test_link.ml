(** Tests for the linker, nm, the loader table, and multi-unit programs. *)

open Ldb_machine
open Ldb_link

let check = Alcotest.check

let two_units =
  [
    ( "main.c",
      {|extern int shared;
        int helper(int x);
        int main(void) {
          shared = 3;
          printf("%d %d\n", helper(4), shared);
          return 0;
        }|} );
    ( "helper.c",
      {|int shared = 0;
        static int scale = 10;
        int helper(int x) { shared += 1; return x * scale; }|} );
  ]

let test_multi_unit_link_and_run () =
  Testkit.run_all_archs two_units ~expect_status:0 ~expect_out:"40 3\n"

let test_undefined_symbol () =
  let obj =
    Ldb_cc.Compile.compile ~arch:Mips ~file:"u.c" "int main(void) { return missing(); }"
  in
  match Link.link [ obj ] with
  | exception Link.Error m ->
      Alcotest.(check bool) "mentions symbol" true
        (let has sub =
           let n = String.length sub in
           let rec go i = i + n <= String.length m && (String.sub m i n = sub || go (i + 1)) in
           go 0
         in
         has "_missing")
  | _ -> Alcotest.fail "expected link error"

let test_duplicate_symbol () =
  let a = Ldb_cc.Compile.compile ~arch:Vax ~file:"a.c" "int v = 1;" in
  let b = Ldb_cc.Compile.compile ~arch:Vax ~file:"b.c" "int v = 2;" in
  match Link.link [ a; b ] with
  | exception Link.Error _ -> ()
  | _ -> Alcotest.fail "expected duplicate-symbol error"

let test_mixed_arch_rejected () =
  let a = Ldb_cc.Compile.compile ~arch:Vax ~file:"a.c" "int main(void){return 0;}" in
  let b = Ldb_cc.Compile.compile ~arch:Mips ~file:"b.c" "int w = 2;" in
  match Link.link [ a; b ] with
  | exception Link.Error _ -> ()
  | _ -> Alcotest.fail "expected mixed-arch error"

let test_nm_output () =
  let img, _ = Driver.build ~arch:Sparc two_units in
  let entries = Nm.run img in
  let find n = List.find_opt (fun e -> e.Nm.name = n) entries in
  (match find "_main" with
  | Some e -> check Alcotest.char "main is global text" 'T' e.Nm.kind
  | None -> Alcotest.fail "no _main");
  (match find "_shared" with
  | Some e -> check Alcotest.char "shared is global data" 'D' e.Nm.kind
  | None -> Alcotest.fail "no _shared");
  (* the anchor symbols appear so the loader table can map them *)
  Alcotest.(check bool) "anchors present" true
    (List.exists (fun e -> Nm.is_anchor e.Nm.name) entries);
  (* text of nm looks classic *)
  let text = Nm.to_text entries in
  Alcotest.(check bool) "text format" true (String.length text > 0)

let test_loader_table_is_postscript () =
  let img, ps = Driver.build ~arch:M68k two_units in
  let t = Ldb_pscript.Ps.create () in
  Ldb_pscript.Interp.run_string t ps;
  (match Ldb_pscript.Interp.lookup t "__loader" with
  | Some _ -> ()
  | None -> Alcotest.fail "no __loader");
  (* proctable contains main and helper *)
  Ldb_pscript.Interp.run_string t "__loader /proctable get length";
  let n = Ldb_pscript.Interp.pop_int t in
  Alcotest.(check bool) "proctable entries" true (n >= 4);
  ignore img

let test_rpt_only_on_mips () =
  let img_m, _ = Driver.build ~arch:Mips two_units in
  let img_v, _ = Driver.build ~arch:Vax two_units in
  Alcotest.(check bool) "mips rpt" true (List.length img_m.Link.i_rpt >= 2);
  (* the table is built for every target but only loaded on MIPS *)
  let p = Link.load img_v in
  check Alcotest.int32 "vax has no RPT in memory" 0l (Ram.get_u32 p.Proc.ram Rpt.base);
  let pm = Link.load img_m in
  Alcotest.(check bool) "mips RPT in target memory" true
    (Ram.get_u32 pm.Proc.ram Rpt.base <> 0l)

let test_entry_calls_main_then_exits () =
  let img, _ = Driver.build ~arch:Vax [ ("r.c", "int main(void) { return 42; }") ] in
  let p = Link.load img in
  match Proc.run p with
  | Proc.Exited 42 -> ()
  | _ -> Alcotest.fail "startup stub did not propagate main's result"

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "link"
    [
      ( "linking",
        [ case "multi-unit program runs everywhere" test_multi_unit_link_and_run;
          case "undefined symbol" test_undefined_symbol;
          case "duplicate symbol" test_duplicate_symbol;
          case "mixed architectures rejected" test_mixed_arch_rejected;
          case "startup stub" test_entry_calls_main_then_exits ] );
      ( "nm and loader",
        [ case "nm output" test_nm_output;
          case "loader table interprets" test_loader_table_is_postscript;
          case "runtime procedure table" test_rpt_only_on_mips ] );
    ]
