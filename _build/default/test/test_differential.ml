(** Differential property testing: randomly generated C programs must
    behave identically on all four simulated targets.

    This is the strongest whole-pipeline check in the suite: it exercises
    the front end, the shared code generator against four register/calling
    conventions, four instruction encoders, the SIM-MIPS delay-slot
    scheduler (whose bugs would change answers, not style), the linker,
    and the CPU semantics — any divergence between targets fails. *)

open Ldb_machine

(* --- a small generator of well-defined C expressions --------------------- *)

type expr =
  | Num of int
  | Var of int  (** index into the pool of int locals *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr  (** protected: emitted as a / (b | 1) style *)
  | Cmp of string * expr * expr
  | Cond of expr * expr * expr

let nvars = 4

let rec gen_expr depth : expr QCheck.Gen.t =
  let open QCheck.Gen in
  if depth = 0 then
    oneof [ map (fun n -> Num (n mod 1000)) small_nat; map (fun v -> Var (v mod nvars)) small_nat ]
  else
    let sub = gen_expr (depth - 1) in
    frequency
      [
        (2, map (fun n -> Num (n mod 1000)) small_nat);
        (2, map (fun v -> Var (v mod nvars)) small_nat);
        (3, map2 (fun a b -> Add (a, b)) sub sub);
        (3, map2 (fun a b -> Sub (a, b)) sub sub);
        (2, map2 (fun a b -> Mul (a, b)) sub sub);
        (1, map2 (fun a b -> Div (a, b)) sub sub);
        (2, map3 (fun op a b -> Cmp (op, a, b)) (oneofl [ "<"; "<="; "=="; "!=" ]) sub sub);
        (1, map3 (fun c a b -> Cond (c, a, b)) sub sub sub);
      ]

(* Keep magnitudes small so 32-bit arithmetic cannot overflow into
   implementation-defined territory: every operand is squashed with % 997
   before use. *)
let rec to_c (e : expr) : string =
  match e with
  | Num n -> string_of_int n
  | Var v -> Printf.sprintf "v%d" v
  | Add (a, b) -> Printf.sprintf "(%s %%997 + %s %%997)" (to_c a) (to_c b)
  | Sub (a, b) -> Printf.sprintf "(%s %%997 - %s %%997)" (to_c a) (to_c b)
  | Mul (a, b) -> Printf.sprintf "(%s %%997 * %s %%997)" (to_c a) (to_c b)
  | Div (a, b) -> Printf.sprintf "(%s %%997 / ((%s %%997) * (%s %%997) + 3))" (to_c a) (to_c b) (to_c b)
  | Cmp (op, a, b) -> Printf.sprintf "(%s %s %s)" (to_c a) op (to_c b)
  | Cond (c, a, b) -> Printf.sprintf "(%s != 0 ? %s %%997 : %s %%997)" (to_c c) (to_c a) (to_c b)

let program_of (exprs : expr list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "int f(int v0, int v1, int v2, int v3)\n{\n    int r;\n    r = 0;\n";
  List.iter (fun e -> Buffer.add_string buf (Printf.sprintf "    r = r * 31 + (%s);\n" (to_c e))) exprs;
  Buffer.add_string buf "    return r;\n}\n";
  Buffer.add_string buf
    "int main(void)\n{\n    printf(\"%d %d %d\\n\", f(1,2,3,4), f(-5,0,7,1), f(100,-3,2,9));\n    return 0;\n}\n";
  Buffer.contents buf

let run_on arch (src : string) : string =
  let img, _ = Ldb_link.Driver.build ~arch [ ("rand.c", src) ] in
  let p = Ldb_link.Link.load img in
  match Proc.run ~fuel:5_000_000 p with
  | Proc.Exited 0 -> Proc.output p
  | Proc.Exited n -> Printf.sprintf "<exit %d>" n
  | Proc.Stopped (s, _) -> Printf.sprintf "<%s>" (Signal.name s)
  | Proc.Running -> "<fuel>"

let arb_program =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 5) (gen_expr 4) >|= program_of)
    ~print:(fun s -> s)

let prop_all_targets_agree =
  Testkit.qtest "random programs agree across all four targets" ~count:60 arb_program
    (fun src ->
      let outs = List.map (fun arch -> run_on arch src) Arch.all in
      match outs with
      | first :: rest ->
          (* must run cleanly AND identically everywhere *)
          (not (String.length first > 0 && first.[0] = '<'))
          && List.for_all (String.equal first) rest
      | [] -> true)

let prop_debug_does_not_change_results =
  Testkit.qtest "-g never changes a program's results" ~count:30 arb_program (fun src ->
      List.for_all
        (fun arch ->
          let run ~debug =
            let img, _ = Ldb_link.Driver.build ~debug ~arch [ ("r.c", src) ] in
            let p = Ldb_link.Link.load img in
            ignore (Proc.run ~fuel:5_000_000 p);
            Proc.output p
          in
          String.equal (run ~debug:true) (run ~debug:false))
        [ Arch.Mips; Arch.Vax ])

let () =
  Alcotest.run "differential"
    [ ("random programs", [ prop_all_targets_agree; prop_debug_does_not_change_results ]) ]
