(** Tests for the nub and its little-endian protocol: codec round-trips
    (the protocol validation), channel semantics, byte-order handling, the
    SIM-MIPS floating-save word-swap quirk, context save/restore, and
    reconnection after a debugger "crash". *)

open Ldb_machine
module Chan = Ldb_nub.Chan
module Proto = Ldb_nub.Proto
module Nub = Ldb_nub.Nub

let check = Alcotest.check

(* --- channels -------------------------------------------------------------- *)

let test_chan_basic () =
  let a, b = Chan.pair () in
  Chan.send a "hello";
  check Alcotest.string "recv" "hello" (Chan.recv_exactly b 5);
  Chan.send b "xy";
  check Alcotest.int "u8" (Char.code 'x') (Chan.recv_u8 a);
  check Alcotest.int "u8 2" (Char.code 'y') (Chan.recv_u8 a)

let test_chan_pump () =
  let a, b = Chan.pair () in
  (* b's data arrives only when a pumps *)
  Chan.set_pump a (fun () -> Chan.send b "pumped!");
  check Alcotest.string "pump delivers" "pumped!" (Chan.recv_exactly a 7)

let test_chan_disconnect () =
  let a, b = Chan.pair () in
  Chan.send a "x";
  Chan.disconnect a;
  (* buffered data still readable *)
  check Alcotest.string "buffered" "x" (Chan.recv_exactly b 1);
  match Chan.recv_exactly b 1 with
  | exception Chan.Disconnected -> ()
  | _ -> Alcotest.fail "expected Disconnected"

(* --- protocol codec -------------------------------------------------------- *)

let roundtrip_request (r : Proto.request) =
  let a, b = Chan.pair () in
  Proto.send_request a r;
  Proto.read_request b = r

let roundtrip_reply (r : Proto.reply) =
  let a, b = Chan.pair () in
  Proto.send_reply a r;
  Proto.read_reply b = r

let test_request_roundtrips () =
  List.iter
    (fun r -> Alcotest.(check bool) "request" true (roundtrip_request r))
    [ Proto.Hello;
      Proto.Fetch { space = 'd'; addr = 0x123456; size = 4 };
      Proto.Fetch { space = 'c'; addr = 0; size = 10 };
      Proto.Store { space = 'd'; addr = 0xffff; bytes = "\x01\x02\x03\x04" };
      Proto.Continue; Proto.Kill; Proto.Detach ]

let test_reply_roundtrips () =
  List.iter
    (fun r -> Alcotest.(check bool) "reply" true (roundtrip_reply r))
    [ Proto.Hello_reply { arch = "mips"; state = Proto.St_running; can_step = true };
      Proto.Hello_reply
        { arch = "vax"; state = Proto.St_stopped { signal = 5; code = 0; ctx_addr = 99 };
          can_step = false };
      Proto.Hello_reply { arch = "m68k"; state = Proto.St_exited 3; can_step = true };
      Proto.Fetched "\xde\xad\xbe\xef";
      Proto.Stored;
      Proto.Event { signal = 11; code = 0x1234; ctx_addr = 0x1f0000 };
      Proto.Exit_event 0;
      Proto.Nub_error "no such space" ]

let prop_fetch_roundtrip =
  Testkit.qtest "random fetch requests roundtrip" ~count:300
    QCheck.(triple (int_bound 0xffffff) (int_range 1 16) bool)
    (fun (addr, size, code_space) ->
      roundtrip_request
        (Proto.Fetch { space = (if code_space then 'c' else 'd'); addr; size }))

let prop_store_roundtrip =
  Testkit.qtest "random store requests roundtrip" ~count:300
    QCheck.(pair (int_bound 0xffffff) (string_gen_of_size (QCheck.Gen.int_range 1 16) QCheck.Gen.char))
    (fun (addr, bytes) -> roundtrip_request (Proto.Store { space = 'd'; addr; bytes }))

(* --- nub service ------------------------------------------------------------ *)

let stopped_nub arch =
  let proc = Proc.create (Target.of_arch arch) in
  let nub = Nub.create proc in
  proc.Proc.status <- Proc.Stopped (SIGTRAP, 0);
  Nub.save_context nub;
  let dbg, nubend = Chan.pair () in
  Nub.attach nub nubend;
  Chan.set_pump dbg (fun () -> Nub.pump nub);
  (proc, nub, dbg)

let rpc dbg req =
  Proto.send_request dbg req;
  Proto.read_reply dbg

(** Values travel little-endian regardless of target byte order. *)
let test_fetch_little_endian_wire () =
  List.iter
    (fun arch ->
      let proc, _, dbg = stopped_nub arch in
      Ram.set_u32 proc.Proc.ram 0x2000 0x11223344l;
      match rpc dbg (Proto.Fetch { space = 'd'; addr = 0x2000; size = 4 }) with
      | Proto.Fetched bytes ->
          check Alcotest.string
            (Arch.name arch ^ " wire value is little-endian")
            "\x44\x33\x22\x11" bytes
      | _ -> Alcotest.fail "bad reply")
    Arch.all

let test_store_roundtrip_all_archs () =
  List.iter
    (fun arch ->
      let proc, _, dbg = stopped_nub arch in
      (match rpc dbg (Proto.Store { space = 'd'; addr = 0x3000; bytes = "\x78\x56\x34\x12" }) with
      | Proto.Stored -> ()
      | _ -> Alcotest.fail "store failed");
      check Alcotest.int32 (Arch.name arch ^ " stored value") 0x12345678l
        (Ram.get_u32 proc.Proc.ram 0x3000))
    Arch.all

let test_hello () =
  let _, _, dbg = stopped_nub M68k in
  match rpc dbg Proto.Hello with
  | Proto.Hello_reply { arch = "m68k"; state = Proto.St_stopped { signal = 5; _ }; _ } -> ()
  | r -> Alcotest.failf "bad hello reply %s" (Fmt.str "%a" Proto.pp_reply r)

let test_bad_space_error () =
  let _, _, dbg = stopped_nub Vax in
  match rpc dbg (Proto.Fetch { space = 'q'; addr = 0; size = 4 }) with
  | Proto.Nub_error _ -> ()
  | _ -> Alcotest.fail "expected error for bad space"

(** The SIM-MIPS kernel saves FP registers least-significant-word first;
    the nub swaps on 8-byte accesses to the saved-FP area, so the debugger
    sees a normal double. *)
let test_mips_fp_word_swap () =
  let proc = Proc.create (Target.of_arch Mips) in
  Cpu.set_freg proc.Proc.cpu 3 1.2345;
  let nub = Nub.create proc in
  proc.Proc.status <- Proc.Stopped (SIGTRAP, 0);
  Nub.save_context nub;
  let dbg, nubend = Chan.pair () in
  Nub.attach nub nubend;
  Chan.set_pump dbg (fun () -> Nub.pump nub);
  let t = Target.of_arch Mips in
  let addr = Nub.ctx_base + t.Target.ctx_freg_off 3 in
  (* raw words in memory are swapped (LSW first) *)
  let bits = Int64.bits_of_float 1.2345 in
  check Alcotest.int32 "LSW stored first" (Int64.to_int32 bits)
    (Ram.get_u32 proc.Proc.ram addr);
  (* ... but an 8-byte wire fetch sees a proper little-endian double *)
  match rpc dbg (Proto.Fetch { space = 'd'; addr; size = 8 }) with
  | Proto.Fetched bytes ->
      let v = Ldb_util.Endian.get_u64 Little (Bytes.of_string bytes) 0 in
      check (Alcotest.float 0.0) "double reassembled" 1.2345 (Int64.float_of_bits v)
  | _ -> Alcotest.fail "fetch failed"

let test_context_save_restore () =
  List.iter
    (fun arch ->
      let proc = Proc.create (Target.of_arch arch) in
      let nub = Nub.create proc in
      Cpu.set_reg proc.Proc.cpu 3 111l;
      Cpu.set_freg proc.Proc.cpu 1 9.5;
      Proc.set_pc proc 0x1234;
      proc.Proc.status <- Proc.Stopped (SIGTRAP, 0);
      Nub.save_context nub;
      (* clobber, then restore *)
      Cpu.set_reg proc.Proc.cpu 3 0l;
      Cpu.set_freg proc.Proc.cpu 1 0.0;
      Proc.set_pc proc 0;
      Nub.restore_context nub;
      let an = Arch.name arch in
      check Alcotest.int32 (an ^ " reg restored") 111l (Cpu.reg proc.Proc.cpu 3);
      check (Alcotest.float 0.0) (an ^ " freg restored") 9.5 (Cpu.freg proc.Proc.cpu 1);
      check Alcotest.int (an ^ " pc restored") 0x1234 (Proc.pc proc))
    Arch.all

(** A debugger crash must not lose target state: the nub keeps the
    process, and a new debugger instance can attach. *)
let test_reconnect_preserves_state () =
  let proc, nub, dbg1 = stopped_nub Sparc in
  Ram.set_u32 proc.Proc.ram 0x2000 4242l;
  (* debugger 1 "crashes" *)
  Chan.disconnect dbg1;
  (* a new debugger connects *)
  let dbg2, nubend2 = Chan.pair () in
  Nub.attach nub nubend2;
  Chan.set_pump dbg2 (fun () -> Nub.pump nub);
  (match rpc dbg2 Proto.Hello with
  | Proto.Hello_reply { state = Proto.St_stopped _; _ } -> ()
  | _ -> Alcotest.fail "state not preserved");
  match rpc dbg2 (Proto.Fetch { space = 'd'; addr = 0x2000; size = 4 }) with
  | Proto.Fetched "\x92\x10\x00\x00" -> ()
  | Proto.Fetched b -> Alcotest.failf "wrong bytes %S" b
  | _ -> Alcotest.fail "fetch after reconnect failed"

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "nub"
    [
      ( "channels",
        [ case "basic" test_chan_basic; case "pump" test_chan_pump;
          case "disconnect" test_chan_disconnect ] );
      ( "protocol",
        [ case "requests" test_request_roundtrips; case "replies" test_reply_roundtrips;
          prop_fetch_roundtrip; prop_store_roundtrip ] );
      ( "service",
        [ case "hello" test_hello;
          case "fetch is little-endian on the wire" test_fetch_little_endian_wire;
          case "store on all targets" test_store_roundtrip_all_archs;
          case "bad space" test_bad_space_error;
          case "mips fp word swap" test_mips_fp_word_swap;
          case "context save/restore" test_context_save_restore;
          case "reconnect preserves state" test_reconnect_preserves_state ] );
    ]
