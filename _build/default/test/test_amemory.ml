(** Tests for abstract memories: the wire, alias, register, and joined
    instances of Fig. 4, byte-order insulation, immediates, and float
    width conversion. *)

open Ldb_machine
module A = Ldb_amemory.Amemory

let check = Alcotest.check

let test_local_roundtrip () =
  let m = A.local () in
  A.store_i32 m (A.absolute 'd' 0x10) 123456l;
  check Alcotest.int32 "i32" 123456l (A.fetch_i32 m (A.absolute 'd' 0x10));
  A.store_u8 m (A.absolute 'd' 0x20) 0xAB;
  check Alcotest.int "u8" 0xAB (A.fetch_u8 m (A.absolute 'd' 0x20));
  A.store_f64 m (A.absolute 'd' 0x30) 6.25;
  check (Alcotest.float 0.0) "f64" 6.25 (A.fetch_f64 m (A.absolute 'd' 0x30))

let test_immediate () =
  let loc = A.immediate_i32 99l in
  let m = A.local () in
  (* immediate locations are served from their own cell in any memory *)
  check Alcotest.int32 "fetch" 99l (A.fetch_i32 m loc);
  A.store_i32 m loc 100l;
  check Alcotest.int32 "store" 100l (A.fetch_i32 m loc);
  (* sub-width fetch takes the least significant bytes *)
  check Alcotest.int "low byte" 100 (A.fetch_u8 m loc)

let test_alias_translation () =
  let under = A.local () in
  let table = Hashtbl.create 4 in
  Hashtbl.replace table ('r', 30) (A.absolute 'd' 0x92);
  let m = A.alias ~table under in
  A.store_i32 under (A.absolute 'd' 0x92) 777l;
  check Alcotest.int32 "aliased fetch" 777l (A.fetch_i32 m (A.absolute 'r' 30));
  A.store_i32 m (A.absolute 'r' 30) 888l;
  check Alcotest.int32 "aliased store" 888l (A.fetch_i32 under (A.absolute 'd' 0x92));
  (* unaliased requests pass through *)
  A.store_i32 m (A.absolute 'd' 0x10) 5l;
  check Alcotest.int32 "passthrough" 5l (A.fetch_i32 under (A.absolute 'd' 0x10))

let test_alias_immediate () =
  let table = Hashtbl.create 4 in
  Hashtbl.replace table ('x', 1) (A.immediate_i32 0x4000l);
  let m = A.alias ~table (A.local ()) in
  check Alcotest.int32 "immediate alias" 0x4000l (A.fetch_i32 m (A.absolute 'x' 1))

(** The register memory makes byte order irrelevant: fetching the least
    significant byte of a register is the same operation regardless of
    where the register was saved or how the target orders bytes. *)
let test_register_memory_byte_order () =
  let under = A.local () in
  let table = Hashtbl.create 4 in
  Hashtbl.replace table ('r', 5) (A.absolute 'd' 0x40) ;
  let aliased = A.alias ~table under in
  let m = A.register ~spaces:[ ('r', A.Int_reg 4) ] aliased in
  A.store_i32 m (A.absolute 'r' 5) 0x11223344l;
  (* a 1-byte fetch from the register returns the least significant byte *)
  check Alcotest.int "ls byte" 0x44 (A.fetch_u8 m (A.absolute 'r' 5));
  check Alcotest.int "ls halfword" 0x3344 (A.fetch_u16 m (A.absolute 'r' 5));
  (* a 1-byte store is widened to a full-register read-modify-write *)
  A.store_u8 m (A.absolute 'r' 5) 0x99;
  check Alcotest.int32 "rmw store" 0x11223399l (A.fetch_i32 m (A.absolute 'r' 5))

let test_register_float_conversion () =
  (* the SIM-68020 saves 80-bit extended registers; fetching a double from
     one converts transparently *)
  let under = A.local () in
  let table = Hashtbl.create 4 in
  Hashtbl.replace table ('f', 2) (A.absolute 'd' 0x50);
  let aliased = A.alias ~table under in
  let m = A.register ~spaces:[ ('f', A.Float_reg 10) ] aliased in
  A.store_f80 m (A.absolute 'f' 2) 3.25;
  check (Alcotest.float 0.0) "f80 roundtrip" 3.25 (A.fetch_f80 m (A.absolute 'f' 2));
  check (Alcotest.float 0.0) "f64 from f80 register" 3.25 (A.fetch_f64 m (A.absolute 'f' 2));
  A.store_f64 m (A.absolute 'f' 2) 1.75;
  check (Alcotest.float 0.0) "f64 store converts" 1.75 (A.fetch_f80 m (A.absolute 'f' 2))

let test_joined_routing () =
  let log = ref [] in
  let regs = A.traced ~log:(fun s -> log := s :: !log) (A.local ()) in
  let data = A.traced ~log:(fun s -> log := s :: !log) (A.local ()) in
  let m = A.joined ~routes:[ ('r', regs); ('f', regs) ] ~default:data in
  ignore (A.fetch_i32 m (A.absolute 'r' 3));
  ignore (A.fetch_i32 m (A.absolute 'd' 0x100));
  let entries = List.rev !log in
  Alcotest.(check int) "two requests" 2 (List.length entries);
  Alcotest.(check bool) "register request routed to regs" true
    (String.length (List.nth entries 0) > 0 && String.sub (List.nth entries 0) 0 5 = "fetch");
  (* the second request must have gone to the default (data) memory *)
  Alcotest.(check bool) "data request routed to default" true
    (let s = List.nth entries 1 in
     String.length s > 6 && String.contains s 'd')

(** Full Fig. 4 DAG against a live simulated process via the nub. *)
let test_wire_dag_end_to_end () =
  List.iter
    (fun arch ->
      let target = Target.of_arch arch in
      let proc = Proc.create target in
      Cpu.set_reg proc.Proc.cpu 7 0xCAFE01l;
      Cpu.set_freg proc.Proc.cpu 1 2.5;
      Ram.set_u32 proc.Proc.ram 0x2000 4242l;
      let nub = Ldb_nub.Nub.create proc in
      proc.Proc.status <- Proc.Stopped (SIGTRAP, 0);
      Ldb_nub.Nub.save_context nub;
      let dbg, nubend = Ldb_nub.Chan.pair () in
      Ldb_nub.Nub.attach nub nubend;
      Ldb_nub.Chan.set_pump dbg (fun () -> Ldb_nub.Nub.pump nub);
      let wire = A.wire dbg in
      let ctx = Ldb_nub.Nub.ctx_base in
      let table = Hashtbl.create 64 in
      for r = 0 to Target.nregs target - 1 do
        Hashtbl.replace table ('r', r) (A.absolute 'd' (ctx + target.Target.ctx_reg_off r))
      done;
      for f = 0 to Target.nfregs target - 1 do
        Hashtbl.replace table ('f', f) (A.absolute 'd' (ctx + target.Target.ctx_freg_off f))
      done;
      let aliased = A.alias ~table wire in
      let regmem =
        A.register
          ~spaces:[ ('r', A.Int_reg 4); ('f', A.Float_reg target.Target.ctx_freg_bytes) ]
          aliased
      in
      let joined = A.joined ~routes:[ ('r', regmem); ('f', regmem) ] ~default:wire in
      let an = Arch.name arch in
      check Alcotest.int32 (an ^ " register via DAG") 0xCAFE01l
        (A.fetch_i32 joined (A.absolute 'r' 7));
      check Alcotest.int (an ^ " register ls byte") 0x01
        (A.fetch_u8 joined (A.absolute 'r' 7));
      check (Alcotest.float 0.0) (an ^ " float register") 2.5
        (A.fetch_f64 joined (A.absolute 'f' 1));
      check Alcotest.int32 (an ^ " data direct") 4242l
        (A.fetch_i32 joined (A.absolute 'd' 0x2000)))
    Arch.all

let test_wire_error () =
  let proc = Proc.create (Target.of_arch Mips) in
  let nub = Ldb_nub.Nub.create proc in
  let dbg, nubend = Ldb_nub.Chan.pair () in
  Ldb_nub.Nub.attach nub nubend;
  Ldb_nub.Chan.set_pump dbg (fun () -> Ldb_nub.Nub.pump nub);
  let wire = A.wire dbg in
  (match A.fetch_i32 wire (A.absolute 'z' 0) with
  | exception A.Error _ -> ()
  | _ -> Alcotest.fail "bad space accepted");
  match A.fetch_i32 wire (A.absolute 'd' 0x7fffffff) with
  | exception A.Error _ -> ()
  | _ -> Alcotest.fail "bad address accepted"

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "amemory"
    [
      ( "basic",
        [ case "local" test_local_roundtrip; case "immediate" test_immediate ] );
      ( "alias",
        [ case "translation" test_alias_translation; case "immediate alias" test_alias_immediate ] );
      ( "register",
        [ case "byte-order insulation" test_register_memory_byte_order;
          case "float width conversion" test_register_float_conversion ] );
      ( "joined", [ case "routing" test_joined_routing ] );
      ( "wire",
        [ case "full DAG end-to-end" test_wire_dag_end_to_end;
          case "errors" test_wire_error ] );
    ]
