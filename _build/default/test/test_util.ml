(** Unit and property tests for lib/util: endian codecs, the LZW codec,
    hexdump, and line counting. *)

open Ldb_util

let check = Alcotest.check

(* --- endian ------------------------------------------------------------- *)

let test_u16_roundtrip () =
  let b = Bytes.create 2 in
  List.iter
    (fun order ->
      List.iter
        (fun v ->
          Endian.set_u16 order b 0 v;
          check Alcotest.int "u16" v (Endian.get_u16 order b 0))
        [ 0; 1; 0x1234; 0xfffe; 0xffff ])
    [ Endian.Little; Endian.Big ]

let test_u32_roundtrip () =
  let b = Bytes.create 4 in
  List.iter
    (fun order ->
      List.iter
        (fun v ->
          Endian.set_u32 order b 0 v;
          check Alcotest.int32 "u32" v (Endian.get_u32 order b 0))
        [ 0l; 1l; 0x12345678l; -1l; Int32.min_int; Int32.max_int ])
    [ Endian.Little; Endian.Big ]

let test_byte_order_differs () =
  let b = Bytes.create 4 in
  Endian.set_u32 Big b 0 0x11223344l;
  check Alcotest.int "big-endian MSB first" 0x11 (Endian.get_u8 b 0);
  Endian.set_u32 Little b 0 0x11223344l;
  check Alcotest.int "little-endian LSB first" 0x44 (Endian.get_u8 b 0)

let test_u64_roundtrip () =
  let b = Bytes.create 8 in
  List.iter
    (fun order ->
      List.iter
        (fun v ->
          Endian.set_u64 order b 0 v;
          check Alcotest.int64 "u64" v (Endian.get_u64 order b 0))
        [ 0L; 1L; 0x1122334455667788L; -1L; Int64.min_int ])
    [ Endian.Little; Endian.Big ]

let test_sext () =
  check Alcotest.int "sext 8 of 0xff" (-1) (Endian.sext 0xff 8);
  check Alcotest.int "sext 8 of 0x7f" 127 (Endian.sext 0x7f 8);
  check Alcotest.int "sext 16 of 0x8000" (-32768) (Endian.sext 0x8000 16);
  check Alcotest.int "sext 16 of 42" 42 (Endian.sext 42 16)

let prop_u32_any_order =
  Testkit.qtest "u32 round trip at random offsets"
    QCheck.(pair int32 (int_bound 28))
    (fun (v, off) ->
      let b = Bytes.create 32 in
      Endian.set_u32 Big b off v;
      let big_ok = Endian.get_u32 Big b off = v in
      Endian.set_u32 Little b off v;
      big_ok && Endian.get_u32 Little b off = v)

(* --- LZW ---------------------------------------------------------------- *)

let test_lzw_simple () =
  List.iter
    (fun s -> check Alcotest.string "roundtrip" s (Lzw.decompress (Lzw.compress s)))
    [ ""; "a"; "ab"; "aaaa"; "abcabcabcabc"; String.make 10000 'x';
      "the quick brown fox jumps over the lazy dog" ]

let test_lzw_compresses_repetitive () =
  let s = String.concat "" (List.init 500 (fun i -> Printf.sprintf "/S%d symbol " i)) in
  let c = Lzw.compress s in
  Alcotest.(check bool) "smaller" true (String.length c < String.length s / 2)

let test_lzw_ratio () =
  Alcotest.(check bool) "ratio > 1 on text" true (Lzw.ratio (String.make 1000 'a') > 5.0)

let prop_lzw_roundtrip =
  Testkit.qtest "lzw roundtrip on random strings" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 2000) QCheck.Gen.char)
    (fun s -> Lzw.decompress (Lzw.compress s) = s)

let prop_lzw_printable =
  Testkit.qtest "lzw roundtrip on printable strings" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 5000) QCheck.Gen.printable)
    (fun s -> Lzw.decompress (Lzw.compress s) = s)

(* --- hexdump / loc -------------------------------------------------------- *)

let test_hexdump () =
  let d = Hexdump.to_string "Hello, world! 0123456789" in
  Alcotest.(check bool) "contains hex" true
    (String.length d > 0
    &&
    let re = "48 65 6c 6c 6f" in
    (* "Hello" *)
    let rec find i =
      i + String.length re <= String.length d
      && (String.sub d i (String.length re) = re || find (i + 1))
    in
    find 0)

let test_loc_count () =
  let src = "let x = 1\n\n(* comment *)\nlet y = 2\n  \n" in
  check Alcotest.int "counts code lines" 2 (Loc.count_string src)

let () =
  Alcotest.run "util"
    [
      ( "endian",
        [
          Alcotest.test_case "u16 roundtrip" `Quick test_u16_roundtrip;
          Alcotest.test_case "u32 roundtrip" `Quick test_u32_roundtrip;
          Alcotest.test_case "byte order differs" `Quick test_byte_order_differs;
          Alcotest.test_case "u64 roundtrip" `Quick test_u64_roundtrip;
          Alcotest.test_case "sign extension" `Quick test_sext;
          prop_u32_any_order;
        ] );
      ( "lzw",
        [
          Alcotest.test_case "simple roundtrips" `Quick test_lzw_simple;
          Alcotest.test_case "compresses repetitive text" `Quick test_lzw_compresses_repetitive;
          Alcotest.test_case "ratio" `Quick test_lzw_ratio;
          prop_lzw_roundtrip;
          prop_lzw_printable;
        ] );
      ( "misc",
        [
          Alcotest.test_case "hexdump" `Quick test_hexdump;
          Alcotest.test_case "loc counting" `Quick test_loc_count;
        ] );
    ]
