(** Tests for the expression server: the lookup round trip, arithmetic,
    array/struct/pointer expressions, assignments, type reconstruction,
    and error handling — on all four targets. *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Eval = Ldb_exprserver.Eval
module Exprserver = Ldb_exprserver.Exprserver

let check = Alcotest.check

let prog =
  {|
struct point { int x; int y; };
static int table[6];
int gv = 11;
double gd = 0.5;

int work(int n, double scale)
{
    struct point p;
    int i;
    int *ip;
    p.x = 7; p.y = 9;
    for (i = 0; i < 6; i++) table[i] = i * i;
    ip = &p.x;
    printf("%d %g %d\n", n, scale, *ip);
    return 0;
}
int main(void) { return work(5, 1.25); }
|}

(* printf is at line 16 *)

type ctx = { s : Testkit.session; fr : Ldb_ldb.Frame.t; sess : Eval.session }

let make_ctx arch =
  let s = Testkit.debug_session ~arch [ ("e.c", prog) ] in
  ignore (Ldb.break_line s.Testkit.d s.Testkit.tg ~line:16);
  ignore (Ldb.continue_ s.Testkit.d s.Testkit.tg);
  let fr = Ldb.top_frame s.Testkit.d s.Testkit.tg in
  { s; fr; sess = Eval.start ~arch }

let ev ctx expr = Eval.eval_string ctx.s.Testkit.d ctx.s.Testkit.tg ctx.fr ctx.sess expr

let evt ctx expr = Eval.evaluate ctx.s.Testkit.d ctx.s.Testkit.tg ctx.fr ctx.sess expr

let test_basics_all_archs () =
  List.iter
    (fun arch ->
      let ctx = make_ctx arch in
      let an = Arch.name arch in
      check Alcotest.string (an ^ " constant") "42" (ev ctx "42");
      check Alcotest.string (an ^ " parameter") "5" (ev ctx "n");
      check Alcotest.string (an ^ " arithmetic") "26" (ev ctx "n * n + 1");
      check Alcotest.string (an ^ " global") "11" (ev ctx "gv");
      check Alcotest.string (an ^ " static array") "16" (ev ctx "table[4]");
      check Alcotest.string (an ^ " index expr") "25" (ev ctx "table[n]");
      check Alcotest.string (an ^ " struct field") "7" (ev ctx "p.x");
      check Alcotest.string (an ^ " struct arith") "63" (ev ctx "p.x * p.y");
      check Alcotest.string (an ^ " comparison") "1" (ev ctx "p.x < p.y");
      check Alcotest.string (an ^ " double param") "1.25" (ev ctx "scale");
      check Alcotest.string (an ^ " float arith") "2.75" (ev ctx "scale * 2.0 + 0.25");
      check Alcotest.string (an ^ " mixed") "6.25" (ev ctx "n * scale");
      check Alcotest.string (an ^ " deref") "7" (ev ctx "*ip"))
    Arch.all

let test_types_reported () =
  let ctx = make_ctx Sparc in
  let _, ty = evt ctx "n" in
  check Alcotest.string "int type" "int" ty;
  let _, ty = evt ctx "scale" in
  check Alcotest.string "double type" "double" ty;
  let v, ty = evt ctx "ip" in
  check Alcotest.string "pointer type" "int *" ty;
  Alcotest.(check bool) "pointer formatted hex" true
    (String.length v > 2 && String.sub v 0 2 = "0x")

let test_assignment_through_server () =
  List.iter
    (fun arch ->
      let ctx = make_ctx arch in
      let an = Arch.name arch in
      check Alcotest.string (an ^ " assign returns value") "99" (ev ctx "gv = 99");
      check Alcotest.string (an ^ " visible after") "99" (ev ctx "gv");
      check Alcotest.string (an ^ " compound exprs") "100" (ev ctx "gv + 1");
      (* assignment through a pointer *)
      ignore (ev ctx "*ip = 70");
      check Alcotest.string (an ^ " struct field updated") "70" (ev ctx "p.x"))
    [ Mips; Vax ]

let test_sizeof_and_casts () =
  let ctx = make_ctx M68k in
  check Alcotest.string "sizeof int" "4" (ev ctx "sizeof(int)");
  (* struct definitions reach the server through lookups; prime it the way
     a user would, by first mentioning a struct-typed variable *)
  ignore (ev ctx "p.x");
  check Alcotest.string "sizeof struct" "8" (ev ctx "sizeof(struct point)");
  check Alcotest.string "cast double->int" "1" (ev ctx "(int)scale");
  check Alcotest.string "cast int->double" "5.0" (ev ctx "(double)n")

let test_errors () =
  let ctx = make_ctx Vax in
  (match ev ctx "nonexistent + 1" with
  | exception Eval.Error _ -> ()
  | v -> Alcotest.failf "undefined variable evaluated to %s" v);
  (match ev ctx "n +" with
  | exception Eval.Error _ -> ()
  | _ -> Alcotest.fail "syntax error not reported");
  (* procedure calls into the target are future work, as in the paper *)
  match ev ctx "work(1, 2.0)" with
  | exception Eval.Error m ->
      Alcotest.(check bool) "mentions calls" true
        (let has sub =
           let nn = String.length sub in
           let rec go i = i + nn <= String.length m && (String.sub m i nn = sub || go (i + 1)) in
           go 0
         in
         has "call")
  | v -> Alcotest.failf "call evaluated to %s" v

let test_server_state_lifecycle () =
  (* bindings are discarded between expressions, struct types persist *)
  let ctx = make_ctx Sparc in
  ignore (ev ctx "p.x");
  check Alcotest.int "bindings discarded" 0 (List.length ctx.sess.Eval.server.Exprserver.bindings);
  Alcotest.(check bool) "struct types kept" true
    (Hashtbl.mem ctx.sess.Eval.server.Exprserver.structs "point")

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "exprserver"
    [
      ( "evaluation",
        [ case "basics on all targets" test_basics_all_archs;
          case "types" test_types_reported;
          case "assignment" test_assignment_through_server;
          case "sizeof and casts" test_sizeof_and_casts ] );
      ( "protocol",
        [ case "errors" test_errors; case "server state lifecycle" test_server_state_lifecycle ] );
    ]
