test/test_ldb.mli:
