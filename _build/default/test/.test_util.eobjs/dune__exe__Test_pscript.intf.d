test/test_pscript.mli:
