test/test_util.ml: Alcotest Bytes Endian Hexdump Int32 Int64 Ldb_util List Loc Lzw Printf QCheck String Testkit
