test/test_cc.ml: Alcotest Arch Asm Ast Compile Ctype Ldb_cc Ldb_link Ldb_machine Ldb_pscript Lex List Parse Peephole Printf Sched String Testkit
