test/test_stepping.ml: Alcotest Arch Int32 Ldb_amemory Ldb_ldb Ldb_link Ldb_machine Ldb_nub List Ram String Target
