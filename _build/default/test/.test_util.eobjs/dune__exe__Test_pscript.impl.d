test/test_pscript.ml: Alcotest Ldb_cc Ldb_pscript Printf String
