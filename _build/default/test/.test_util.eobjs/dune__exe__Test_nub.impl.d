test/test_nub.ml: Alcotest Arch Bytes Char Cpu Fmt Int64 Ldb_machine Ldb_nub Ldb_util List Proc QCheck Ram Target Testkit
