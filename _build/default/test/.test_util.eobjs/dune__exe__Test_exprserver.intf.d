test/test_exprserver.mli:
