test/test_link.ml: Alcotest Driver Ldb_cc Ldb_link Ldb_machine Ldb_pscript Link List Nm Proc Ram Rpt String Testkit
