test/test_ldb.ml: Alcotest Arch Ldb_ldb Ldb_machine List Proc Ram String Target Testkit
