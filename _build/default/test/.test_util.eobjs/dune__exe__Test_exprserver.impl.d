test/test_exprserver.ml: Alcotest Arch Hashtbl Ldb_exprserver Ldb_ldb Ldb_machine List String Testkit
