test/test_machine.ml: Alcotest Arch Buffer Char Cpu Float Float80 Insn Int32 Ldb_machine List Optab Printf Proc QCheck Ram Rpt Signal String Target Testkit
