test/test_stabsdbg.mli:
