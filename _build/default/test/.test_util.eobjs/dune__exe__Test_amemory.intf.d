test/test_amemory.mli:
