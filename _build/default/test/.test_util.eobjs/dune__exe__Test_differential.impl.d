test/test_differential.ml: Alcotest Arch Buffer Ldb_link Ldb_machine List Printf Proc QCheck Signal String Testkit
