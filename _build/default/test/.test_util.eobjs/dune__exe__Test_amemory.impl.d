test/test_amemory.ml: Alcotest Arch Cpu Hashtbl Ldb_amemory Ldb_machine Ldb_nub List Proc Ram String Target
