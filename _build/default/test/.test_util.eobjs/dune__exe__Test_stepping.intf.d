test/test_stepping.mli:
