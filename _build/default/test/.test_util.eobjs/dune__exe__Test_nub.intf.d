test/test_nub.mli:
