test/test_stabsdbg.ml: Alcotest Ldb_cc Ldb_link Ldb_stabsdbg List Testkit
