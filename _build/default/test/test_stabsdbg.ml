(** Tests for the stabs baseline debugger front end. *)

module S = Ldb_stabsdbg.Stabsdbg

let check = Alcotest.check

let build arch =
  let img, _ = Ldb_link.Driver.build ~arch [ ("fib.c", Testkit.fib_c) ] in
  img

let test_parse_and_find () =
  let img = build Mips in
  let t = S.start img in
  Alcotest.(check bool) "has records" true (List.length t.S.stabs > 10);
  (match S.find t "fib" with
  | Some s -> check Alcotest.int "fib is a function" Ldb_cc.Stabsemit.n_fun s.S.st_type
  | None -> Alcotest.fail "fib not found");
  (match S.find t "a" with
  | Some s ->
      check Alcotest.string "array type decoded" "int[20]" (S.sym_type_display s)
  | None -> Alcotest.fail "a not found");
  check Alcotest.bool "has line records" true (t.S.nlines > 10)

let test_functions_listed () =
  let t = S.start (build Vax) in
  let names = S.function_names t in
  Alcotest.(check bool) "fib and main" true (List.mem "fib" names && List.mem "main" names)

let test_type_display () =
  check Alcotest.string "ptr" "char *" (S.type_display "*c");
  check Alcotest.string "array" "int[8]" (S.type_display "a8,i");
  check Alcotest.string "struct" "struct point" (S.type_display "Spoint");
  check Alcotest.string "nested" "double *[4]" (S.type_display "a4,*d")

let test_corrupt_rejected () =
  match S.parse "\x24\x00" with
  | exception S.Corrupt _ -> ()
  | _ -> Alcotest.fail "accepted a truncated record"

let test_machine_dependence_of_stabs () =
  (* the same program's stabs differ across targets (value fields carry
     machine-dependent frame offsets): this is the machine dependence ldb
     avoids *)
  let prog = [ ("t.c", "int main(void) { long double x; x = 1.0; return 0; }") ] in
  let stabs arch =
    let img, _ = Ldb_link.Driver.build ~arch prog in
    img.Ldb_link.Link.i_stabs
  in
  Alcotest.(check bool) "m68k differs from vax" true (stabs M68k <> stabs Vax)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "stabsdbg"
    [
      ( "stabs",
        [ case "parse and find" test_parse_and_find;
          case "functions" test_functions_listed;
          case "type display" test_type_display;
          case "corrupt input" test_corrupt_rejected;
          case "machine dependence" test_machine_dependence_of_stabs ] );
    ]
