(** Fault catching, post-mortem attach, and surviving a debugger crash
    (Sec. 4.2).

    The nub is loaded with every program, so a program that was never
    started under a debugger still catches its own faults and waits for a
    connection.  And because the nub preserves target state when a
    connection breaks, a crashed debugger can be replaced by a fresh one
    without losing the stopped process.

    Run with: dune exec examples/postmortem.exe *)

open Ldb_ldb

(* run/step now answer with a result; a dead process cannot happen here *)
let ok = function Ok v -> v | Error (`Dead_process m) -> failwith m

let faulty_c =
  {|
int average(int total, int samples)
{
    return total / samples;     /* samples == 0 faults here */
}
int collect(int run)
{
    int total;
    int samples;
    total = run * 37;
    samples = run - 3;          /* run == 3 makes this zero */
    return average(total, samples);
}
int main(void)
{
    int r;
    int acc;
    acc = 0;
    for (r = 1; r < 10; r++)
        acc += collect(r);
    printf("acc %d\n", acc);
    return 0;
}
|}

let () =
  let arch = Ldb_machine.Arch.Vax in
  Printf.printf "== running the faulty program with NO debugger attached\n";
  let p = Host.launch ~arch [ ("faulty.c", faulty_c) ] ~paused:false in
  (match p.Host.hp_proc.Ldb_machine.Proc.status with
  | Ldb_machine.Proc.Stopped (s, _) ->
      Printf.printf "   the nub caught %s and preserved the process\n"
        (Ldb_machine.Signal.name s)
  | _ -> Printf.printf "   unexpected: program did not fault\n");

  Printf.printf "\n== attaching a debugger post mortem\n";
  let d = Ldb.create () in
  let tg = Host.attach_existing d ~name:"postmortem" p in
  Printf.printf "   %s\n" (Ldb.where d tg);
  Printf.printf "   backtrace:\n";
  List.iteri
    (fun i f -> Printf.printf "     #%d %s\n" i (Ldb.frame_function d tg f))
    (Ldb.backtrace d tg);
  let frames = Ldb.backtrace d tg in
  let fr_avg = List.nth frames 0 and fr_col = List.nth frames 1 in
  Printf.printf "   in average: total=%s samples=%s\n"
    (Ldb.print_value d tg fr_avg "total")
    (Ldb.print_value d tg fr_avg "samples");
  Printf.printf "   in collect: run=%s\n" (Ldb.print_value d tg fr_col "run");

  Printf.printf "\n== first debugger crashes; a second one picks up the same process\n";
  Ldb.detach tg;
  let d2 = Ldb.create () in
  let tg2 = Host.attach_existing d2 ~name:"second" p in
  Printf.printf "   second debugger sees: %s\n" (Ldb.where d2 tg2);

  Printf.printf "\n== repairing the fault and resuming\n";
  let fr = Ldb.top_frame d2 tg2 in
  ok (Ldb.assign_int d2 tg2 fr "samples" 1);
  (* rewind the pc to the statement's stopping point so the repaired value
     is reloaded: the pc is the 'x'-space extra register, and storing to it
     updates the context the nub restores from *)
  (match Symtab.stops_at_line tg2.Ldb.tg_symtab ~line:4 with
  | stop :: _ ->
      let addr = Ldb.stop_address d2 tg2 stop in
      Ldb_amemory.Amemory.store_i32 fr.Frame.fr_mem
        (Ldb_amemory.Amemory.absolute 'x' 0) (Int32.of_int addr)
  | [] -> ());
  (match ok (Ldb.continue_ d2 tg2) with
  | Ldb.Exited 0 -> Printf.printf "   program completed normally after the repair\n"
  | st ->
      Printf.printf "   %s\n"
        (match st with Ldb.Exited n -> Printf.sprintf "exit %d" n | _ -> Ldb.where d2 tg2));
  Printf.printf "   program output: %s" (Host.output p)
