(** Record/replay time travel: reverse continue, reverse step, and
    "who last wrote this variable?".

    The simulated targets are deterministic, so a log of the debugger's
    own state-changing requests plus periodic checkpoints (an LDBCORE1
    core dump with a replay cursor) is a complete, replayable history.
    The reverse commands restore the nearest checkpoint into a fresh nub
    and re-execute forward; the replayed nub attaches as an ordinary
    target, so backtraces, printing, and disassembly work unchanged at
    any point in the past.

    Run with: dune exec examples/time_travel.exe *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Host = Ldb_ldb.Host
module Replay = Ldb_ldb.Replay

let ok = function Ok v -> v | Error (`Dead_process m) -> failwith m

let back = function
  | Ok tg -> tg
  | Error e -> failwith ("reverse motion: " ^ Replay.error_to_string e)

let counter_c =
  {|
int total;
void bump(int k)
{
    total = total + k;
}
int main(void)
{
    int i;
    for (i = 1; i <= 4; i++)
        bump(i);
    printf("%d\n", total);
    return 0;
}
|}

let () =
  let d = Ldb.create () in
  let proc, tg = Host.spawn d ~arch:Arch.Mips ~name:"travel" [ ("counter.c", counter_c) ] in

  Printf.printf "== record, then run into the loop\n";
  Ldb.start_record tg ~spacing:32;
  ignore (Ldb.break_function d tg "bump" : int);
  for _ = 1 to 3 do
    ignore (ok (Ldb.continue_ d tg) : Ldb.state)
  done;
  let show who t =
    let fr = Ldb.top_frame d t in
    Printf.printf "   %-9s %s   total = %s\n" who (Ldb.where d t)
      (Ldb.print_value d t fr "total")
  in
  show "live:" tg;

  Printf.printf "\n== reverse continue walks back through the same stops\n";
  let image = Ldb.load_image d ~loader_ps:proc.Host.hp_loader_ps in
  let rp =
    match Replay.of_string d ~name:"travel" ~image (Ldb.trace_bytes tg) with
    | Ok (rp, []) -> rp
    | Ok (_, _ :: _) -> failwith "trace came back damaged"
    | Error e -> failwith (Replay.error_to_string e)
  in
  ignore (back (Replay.seek_end rp) : Ldb.target);
  let t = back (Replay.rcontinue rp) in
  Printf.printf "   [%s]\n" (Replay.describe rp);
  show "replayed:" t;
  let t = back (Replay.rcontinue rp) in
  Printf.printf "   [%s]\n" (Replay.describe rp);
  show "replayed:" t;

  Printf.printf "\n== who last wrote total?  run back to the write itself\n";
  let t = back (Replay.seek_end rp) in
  let _, addr, size =
    match Ldb.variable_range d t (Ldb.top_frame d t) "total" with
    | Ok r -> r
    | Error m -> failwith m
  in
  let t =
    match Replay.run_back_to_write rp ~addr ~size with
    | Ok (t, _) -> t
    | Error e -> failwith (Replay.error_to_string e)
  in
  Printf.printf "   [%s]\n" (Replay.describe rp);
  show "at write:" t;
  let t = back (Replay.rstep rp) in
  show "1 before:" t;

  Printf.printf "\n== the present is untouched; finish the live run\n";
  (match Replay.target rp with Some t -> Ldb.remove_target d t | None -> ());
  (match ok (Ldb.continue_ d tg) with
  | Ldb.Stopped _ -> show "live:" tg
  | _ -> Printf.printf "   unexpected state\n");
  match ok (Ldb.continue_ d tg) with
  | Ldb.Exited n -> Printf.printf "   program exited with status %d\n" n
  | _ -> Printf.printf "   unexpected state\n"
