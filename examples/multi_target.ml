(** Multiple simultaneous targets (Sec. 6, 7).

    ldb "can debug on multiple architectures simultaneously, so it can
    process events from pieces of client-server applications that execute
    on different hardware": here a SIM-MIPS "server" producing values and a
    SIM-68020 "client" consuming them are debugged from one ldb instance,
    with per-target state held in target objects rather than globals.

    Run with: dune exec examples/multi_target.exe *)

open Ldb_ldb

(* run/step now answer with a result; a dead process cannot happen here *)
let ok = function Ok v -> v | Error (`Dead_process m) -> failwith m

let server_c =
  {|
static int sequence;
int produce(void)
{
    sequence = sequence + 1;
    return sequence * 100;
}
int main(void)
{
    int k;
    int total;
    total = 0;
    for (k = 0; k < 5; k++)
        total += produce();
    printf("server produced total %d\n", total);
    return 0;
}
|}

let client_c =
  {|
int consume(int packet)
{
    int decoded;
    decoded = packet / 100;
    printf("client decoded %d\n", decoded);
    return decoded;
}
int main(void)
{
    int sum;
    sum = consume(300) + consume(500);
    printf("client sum %d\n", sum);
    return sum == 8 ? 0 : 1;
}
|}

let () =
  let d = Ldb.create () in
  Printf.printf "== spawning server on mips, client on m68k, one debugger for both\n";
  let sproc, server = Host.spawn d ~arch:Mips ~name:"server" [ ("server.c", server_c) ] in
  let cproc, client = Host.spawn d ~arch:M68k ~name:"client" [ ("client.c", client_c) ] in

  ignore (Ldb.break_function d server "produce");
  ignore (Ldb.break_function d client "consume");

  (* interleave events from the two targets *)
  Printf.printf "\n== interleaved events:\n";
  for round = 1 to 2 do
    ignore (Ldb.continue_ d server);
    let sf = Ldb.top_frame d server in
    Printf.printf "   round %d: server stopped in %s, sequence=%s\n" round
      (Ldb.frame_function d server sf)
      (Ldb.print_value d server sf "sequence");
    ignore (Ldb.continue_ d client);
    let cf = Ldb.top_frame d client in
    Printf.printf "   round %d: client stopped in %s, packet=%s\n" round
      (Ldb.frame_function d client cf)
      (Ldb.print_value d client cf "packet")
  done;

  (* interfere: fix up the client's second packet while it is stopped *)
  let cf = Ldb.top_frame d client in
  Printf.printf "\n== rewriting the client's packet from %s to 800 before it decodes\n"
    (Ldb.print_value d client cf "packet");
  ok (Ldb.assign_int d client cf "packet" 800);

  (* run both to completion *)
  Breakpoint.remove_all server.Ldb.tg_breaks server.Ldb.tg_wire;
  Breakpoint.remove_all client.Ldb.tg_breaks client.Ldb.tg_wire;
  ignore (Ldb.continue_ d server);
  ignore (Ldb.continue_ d client);
  Printf.printf "\nserver output: %sclient output: %s" (Host.output sproc) (Host.output cproc)
