(** Quickstart: the paper's Figure 1 end to end.

    Compiles fib.c for SIM-MIPS with lcc-sim, starts it under the debug
    nub, connects ldb, plants a breakpoint, inspects variables through the
    PostScript machinery and the abstract-memory DAG, walks the stack,
    assigns to a variable in the stopped process, and resumes.

    Run with: dune exec examples/quickstart.exe *)

open Ldb_ldb

(* run/step now answer with a result; a dead process cannot happen here *)
let ok = function Ok v -> v | Error (`Dead_process m) -> failwith m

(* Figure 1 of the paper (superscripts there mark the stopping points ldb
   discovers below). *)
let fib_c =
  {|void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}

int main(void)
{
    fib(10);
    return 0;
}
|}

let () =
  let arch = Ldb_machine.Arch.Mips in
  Printf.printf "== compiling fib.c for %s and starting it under the nub\n"
    (Ldb_machine.Arch.name arch);
  let d = Ldb.create () in
  let proc, tg = Host.spawn d ~arch ~name:"fib" [ ("fib.c", fib_c) ] in
  Printf.printf "   %d bytes of code; target is %s\n\n"
    (String.length proc.Host.hp_image.Ldb_link.Link.i_code)
    (Ldb.where d tg);

  (* Figure 1: the stopping points of fib *)
  Ldb.force_symbols d tg;
  (match Symtab.proc_by_name tg.Ldb.tg_symtab "fib" with
  | Some p ->
      Printf.printf "== stopping points of fib (Fig. 1):\n  ";
      List.iter
        (fun s -> Printf.printf "%d@%d:%d " s.Symtab.stop_index s.Symtab.stop_line s.Symtab.stop_col)
        (Symtab.stops_of_proc p);
      print_newline ()
  | None -> ());

  (* Figure 2: the uplink tree of fib's local symbols *)
  Printf.printf "\n== symbol-table uplink tree (Fig. 2):\n";
  (match Symtab.proc_by_name tg.Ldb.tg_symtab "fib" with
  | Some p ->
      let stops = Symtab.stops_of_proc p in
      let seen = Hashtbl.create 8 in
      List.iter
        (fun s ->
          let rec chain (e : Ldb_pscript.Value.t) =
            match e.Ldb_pscript.Value.v with
            | Ldb_pscript.Value.Dict dd ->
                let name =
                  match Ldb_pscript.Value.dict_get dd "name" with
                  | Some n -> Ldb_pscript.Value.to_str n
                  | None -> "?"
                in
                if not (Hashtbl.mem seen name) then begin
                  Hashtbl.replace seen name ();
                  let up =
                    match Ldb_pscript.Value.dict_get dd "uplink" with
                    | Some u -> (
                        match u.Ldb_pscript.Value.v with
                        | Ldb_pscript.Value.Dict ud -> (
                            match Ldb_pscript.Value.dict_get ud "name" with
                            | Some n -> Ldb_pscript.Value.to_str n
                            | None -> "-")
                        | _ -> "-")
                    | None -> "-"
                  in
                  Printf.printf "   %-4s -> uplink %s\n" name up;
                  (match Ldb_pscript.Value.dict_get dd "uplink" with
                  | Some u -> chain u
                  | None -> ())
                end
            | _ -> ()
          in
          chain s.Symtab.stop_scope)
        stops
  | None -> ());

  (* breakpoint at the inner-loop body, then run *)
  Printf.printf "\n== breakpoint at line 8 (a[i] = a[i-1] + a[i-2])\n";
  let addrs = Ldb.break_line d tg ~line:8 in
  List.iter (fun a -> Printf.printf "   planted trap over the no-op at %#x\n" a) addrs;
  let rec hit n =
    if n > 0 then begin
      ignore (Ldb.continue_ d tg);
      hit (n - 1)
    end
  in
  hit 4;
  Printf.printf "   after 4 hits: %s\n" (Ldb.where d tg);

  (* print values: the PostScript printers fetch through the Fig. 4 DAG *)
  let fr = Ldb.top_frame d tg in
  Printf.printf "\n== values (printed by compiler-emitted PostScript procedures):\n";
  List.iter
    (fun v -> Printf.printf "   %-2s = %s\n" v (Ldb.print_value d tg fr v))
    [ "i"; "n"; "a" ];

  Printf.printf "\n== backtrace:\n";
  List.iteri
    (fun k f ->
      Printf.printf "   #%d %s (pc=%#x frame base=%#x)\n" k (Ldb.frame_function d tg f)
        f.Frame.fr_pc f.Frame.fr_base)
    (Ldb.backtrace d tg);

  (* assignment into the stopped process: shorten the run *)
  Printf.printf "\n== assigning n = 6 in the stopped target, removing breakpoints\n";
  ok (Ldb.assign_int d tg fr "n" 6);
  List.iter (fun a -> Ldb.clear_breakpoint tg ~addr:a) addrs;
  (match ok (Ldb.continue_ d tg) with
  | Ldb.Exited 0 -> Printf.printf "   program exited normally\n"
  | _ -> Printf.printf "   unexpected: %s\n" (Ldb.where d tg));
  Printf.printf "   program output: %s" (Host.output proc)
