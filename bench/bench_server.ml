(** Debug-server benchmark: N concurrent sessions multiplexed through one
    {!Server.t} with its shared image cache, against today's baseline — N
    isolated debuggers, one per session, each loading its own image.
    Measures session throughput, per-session live-heap cost, and how much
    symbol-table work the image cache saved.  Emits BENCH_server.json.

    Run with: dune exec bench/bench_server.exe
    Flags: -smoke (reduced session count, for CI), -o FILE (output path). *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Host = Ldb_ldb.Host
module Server = Ldb_ldb.Server
module Symtab = Ldb_ldb.Symtab
module Swire = Ldb_ldb.Swire
module Evloop = Ldb_ldb.Evloop
module Chan = Ldb_nub.Chan

let fib_c =
  {|void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}

int main(void)
{
    fib(10);
    return 0;
}
|}

let sources = [ ("fib.c", fib_c) ]

let smoke = Array.exists (( = ) "-smoke") Sys.argv

let out_path =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then "BENCH_server.json"
    else if Sys.argv.(i) = "-o" then Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 0

(* sessions per architecture; 4 arches -> 64 (bench) / 16 (smoke) sessions *)
let per_arch = if smoke then 4 else 16
let n_sessions = per_arch * List.length Arch.all

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

let expect what = function
  | Ok r -> r
  | Error refusal ->
      failwith (what ^ ": " ^ Server.refusal_to_string refusal)

(** The per-session workload: stop in fib, inspect, run to exit. *)
let script (sv : Server.t) (id : int) : unit =
  ignore (expect "break" (Server.exec sv id (Server.Break_function "fib")));
  ignore (expect "continue" (Server.exec sv id Server.Continue));
  (match expect "read" (Server.exec sv id (Server.Read_int "n")) with
  | Server.R_int 10 -> ()
  | r -> failwith ("bad n: " ^ Server.reply_to_string r));
  ignore (expect "backtrace" (Server.exec sv id Server.Backtrace));
  ignore (expect "exit" (Server.exec sv id Server.Continue))

type side = {
  seconds : float;
  per_session_words : int;
  forced_units : int;
  downs : int;
  failed : int;
  cache_hits : int;
  images_loaded : int;
}

(** All sessions through one server, image per architecture shared. *)
let run_server () : side =
  let images = List.map (fun arch -> Host.build_image ~arch sources) Arch.all in
  let w0 = live_words () in
  let t0 = Sys.time () in
  let sv = Server.create ~limits:{ Server.default_limits with Server.li_max_sessions = n_sessions } () in
  let ids = ref [] in
  let procs = ref [] in
  List.iter
    (fun image ->
      for i = 1 to per_arch do
        let p = Host.launch_image image in
        procs := p :: !procs;
        let id =
          expect "open"
            (Server.open_session sv
               ~name:(Printf.sprintf "s%d" i)
               ~loader_ps:p.Host.hp_loader_ps (Host.open_channel p))
        in
        script sv id;
        ids := id :: !ids
      done)
    images;
  let seconds = Sys.time () -. t0 in
  let per_session_words = (live_words () - w0) / n_sessions in
  let st = Server.stats sv in
  let forced_units =
    Hashtbl.fold
      (fun _ im acc -> acc + List.length (Symtab.forced_units im.Ldb.im_symtab))
      sv.Server.sv_images 0
  in
  List.iter (fun id -> Server.close_session ~kill:true sv id) !ids;
  {
    seconds;
    per_session_words;
    forced_units;
    downs = st.Server.sv_downs;
    failed = st.Server.sv_failed;
    cache_hits = st.Server.sv_cache_hits;
    images_loaded = st.Server.sv_cache_misses;
  }

(** The same workload, one isolated debugger (and private image) per
    session — the pre-server architecture. *)
let run_baseline () : side =
  let images = List.map (fun arch -> Host.build_image ~arch sources) Arch.all in
  let w0 = live_words () in
  let t0 = Sys.time () in
  let open_sessions = ref [] in
  List.iter
    (fun image ->
      for _ = 1 to per_arch do
        let p = Host.launch_image image in
        let d = Ldb.create () in
        let tg = Ldb.connect d ~name:"s" ~loader_ps:p.Host.hp_loader_ps (Host.open_channel p) in
        ignore (Ldb.break_function d tg "fib" : int);
        (match Ldb.continue_ d tg with
        | Ok (Ldb.Stopped _) -> ()
        | _ -> failwith "baseline: no stop");
        assert (Ldb.read_int_var d tg (Ldb.top_frame d tg) "n" = 10);
        ignore (Ldb.backtrace d tg : _ list);
        (match Ldb.continue_ d tg with
        | Ok (Ldb.Exited 0) -> ()
        | _ -> failwith "baseline: no exit");
        open_sessions := (d, tg, p) :: !open_sessions
      done)
    images;
  let seconds = Sys.time () -. t0 in
  let per_session_words = (live_words () - w0) / n_sessions in
  let forced_units =
    List.fold_left
      (fun acc (_, tg, _) ->
        acc + List.length (Symtab.forced_units tg.Ldb.tg_symtab))
      0 !open_sessions
  in
  List.iter (fun (_, tg, _) -> Ldb.kill tg) !open_sessions;
  {
    seconds;
    per_session_words;
    forced_units;
    downs = 0;
    failed = 0;
    cache_hits = 0;
    images_loaded = n_sessions;
  }

(* --- the wire front end ------------------------------------------------------- *)

type wire = {
  w_conns : int;
  w_commands : int;
  w_seconds : float;
  w_max_served : int;  (** most commands served to any client at first finish *)
  w_min_served : int;  (** fewest, ditto — fair scheduling keeps these close *)
}

(** The same workload pushed through the framed wire front end: every
    client connects, floods its whole script in one burst, and the event
    loop serves the backlog under deficit round robin.  Fairness is read
    at the moment the first client's queue empties: with identical
    scripts, a fair scheduler has served everyone almost equally. *)
let run_wire () : wire =
  let images =
    Array.of_list (List.map (fun arch -> Host.build_image ~arch sources) Arch.all)
  in
  let n_conns = if smoke then 8 else 32 in
  let sv =
    Server.create
      ~limits:{ Server.default_limits with Server.li_max_sessions = n_conns }
      ()
  in
  let arch_of_conn = Hashtbl.create n_conns in
  let loop =
    Evloop.create
      ~limits:
        { Evloop.default_limits with Evloop.el_max_conns = n_conns; el_quantum = 8 }
      sv
      ~bind:(fun ~conn_id ->
        let ix =
          match Hashtbl.find_opt arch_of_conn conn_id with Some i -> i | None -> 0
        in
        let p = Host.launch_image images.(ix) in
        Server.open_session sv
          ~name:(Printf.sprintf "wire-%d" conn_id)
          ~loader_ps:p.Host.hp_loader_ps (Host.open_channel p))
  in
  let script =
    [
      Server.Break_function "fib";
      Server.Continue;
      Server.Read_int "n";
      Server.Print "n";
      Server.Backtrace;
      Server.Continue;
    ]
  in
  let t0 = Sys.time () in
  let eps =
    Array.init n_conns (fun i ->
        let ep, io, _ = Evloop.sim_link () in
        (match Evloop.accept loop io with
        | `Conn id -> Hashtbl.replace arch_of_conn id (i mod Array.length images)
        | `Refused -> failwith "wire: admission refused");
        ep)
  in
  let seq = ref 0 in
  let send ep m =
    Chan.send ep (Swire.seal ~seq:!seq (Swire.encode_client m));
    incr seq
  in
  Array.iter (fun ep -> send ep (Swire.C_hello { magic = Swire.version_magic })) eps;
  Evloop.tick loop;
  Array.iter (fun ep -> List.iter (fun c -> send ep (Swire.C_cmd c)) script) eps;
  (* serve until the first client finishes; read the fairness spread there *)
  let first_finish = ref None in
  let ticks = ref 0 in
  while !first_finish = None && !ticks < 100_000 do
    incr ticks;
    Evloop.tick loop;
    if
      List.exists (fun c -> Queue.is_empty c.Evloop.cn_q) (Evloop.conns loop)
    then
      first_finish :=
        Some
          (List.fold_left
             (fun (mx, mn) c ->
               (max mx c.Evloop.cn_served, min mn c.Evloop.cn_served))
             (0, max_int) (Evloop.conns loop))
  done;
  let max_served, min_served =
    match !first_finish with Some (mx, mn) -> (mx, mn) | None -> (0, 0)
  in
  (* then drain the rest of the backlog for the throughput number *)
  while Evloop.queued loop > 0 && !ticks < 200_000 do
    incr ticks;
    Evloop.tick loop
  done;
  let seconds = Sys.time () -. t0 in
  {
    w_conns = n_conns;
    w_commands = (Evloop.stats loop).Evloop.es_served;
    w_seconds = seconds;
    w_max_served = max_served;
    w_min_served = min_served;
  }

let () =
  let server = run_server () in
  let baseline = run_baseline () in
  let wire = run_wire () in
  let buf = Buffer.create 1024 in
  let side_json s ~with_cache =
    let cache =
      if with_cache then
        Printf.sprintf ", \"image_cache_hits\": %d, \"images_loaded\": %d"
          s.cache_hits s.images_loaded
      else ""
    in
    Printf.sprintf
      "{\"seconds\": %.3f, \"sessions_per_sec\": %.1f, \"per_session_words\": %d, \
       \"forced_units\": %d, \"downs\": %d, \"failed\": %d%s}"
      s.seconds
      (float_of_int n_sessions /. (s.seconds +. 1e-9))
      s.per_session_words s.forced_units s.downs s.failed cache
  in
  Buffer.add_string buf "{\n  \"benchmark\": \"debug server\",\n";
  Buffer.add_string buf
    "  \"workload\": \"break fib / continue / inspect / backtrace / run to exit, all 4 targets\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"sessions\": %d,\n" n_sessions);
  Buffer.add_string buf
    (Printf.sprintf "  \"server\": %s,\n" (side_json server ~with_cache:true));
  Buffer.add_string buf
    (Printf.sprintf "  \"baseline\": %s,\n" (side_json baseline ~with_cache:false));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"wire\": {\"conns\": %d, \"commands\": %d, \"seconds\": %.3f, \
        \"commands_per_sec\": %.1f, \"fairness_max_served\": %d, \
        \"fairness_min_served\": %d, \"fairness_ratio\": %.3f}\n}\n"
       wire.w_conns wire.w_commands wire.w_seconds
       (float_of_int wire.w_commands /. (wire.w_seconds +. 1e-9))
       wire.w_max_served wire.w_min_served
       (float_of_int wire.w_max_served
       /. float_of_int (max 1 wire.w_min_served)));
  let oc = open_out out_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_string (Buffer.contents buf)
