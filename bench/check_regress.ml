(** Bench regression gate for CI: parse a committed BENCH_*.json and a
    freshly produced one (bench -smoke -o fresh.json) and fail when the
    fresh run violates the invariants the committed numbers promise.

    Wall-clock seconds are not compared across machines — CI runners and
    laptops differ wildly — so the gates are the {e shape} of the results:
    zero failed sessions, indexed lookups beating the scans by the
    required factor, lazy attach forcing only a fraction of the table.

    Usage:
      check_regress transport BENCH_transport.json fresh.json
      check_regress symtab BENCH_symtab.json fresh.json [-min-speedup N]
      check_regress core BENCH_core.json fresh.json
      check_regress server BENCH_server.json fresh.json
      check_regress replay BENCH_replay.json fresh.json

    A missing or malformed bench file is a usage problem, not a gate
    failure: it exits 2 with a message naming the file, never an
    uncaught exception.

    No JSON library ships in the build environment, so a ~60-line
    recursive-descent parser covers the subset the bench emitters use. *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Parse of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do advance () done;
              Buffer.add_char buf '?';
              go ()
          | Some c -> Buffer.add_char buf c; advance (); go ()
          | None -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
    | Some '"' -> Str (string_lit ())
    | Some 't' -> pos := !pos + 4; Bool true
    | Some 'f' -> pos := !pos + 5; Bool false
    | Some 'n' -> pos := !pos + 4; Null
    | Some _ ->
        let start = !pos in
        let rec go () =
          match peek () with
          | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> advance (); go ()
          | _ -> ()
        in
        go ();
        if !pos = start then fail "unexpected character"
        else Num (float_of_string (String.sub s start (!pos - start)))
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  v

(* missing and malformed files exit 2 (usage problem) with a message a
   human can act on, rather than escaping as Sys_error/Parse backtraces *)
let of_file path =
  let s =
    try
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    with Sys_error m ->
      Printf.eprintf "check_regress: cannot read bench file: %s\n" m;
      Printf.eprintf
        "(produce the fresh file with `bench_* -smoke -o FILE`; the committed file lives at the repo root)\n";
      exit 2
  in
  match parse s with
  | v -> v
  | exception Parse m ->
      Printf.eprintf "check_regress: %s is not valid bench JSON: %s\n" path m;
      exit 2

(* --- accessors ---------------------------------------------------------------- *)

let member k = function
  | Obj kvs -> (
      match List.assoc_opt k kvs with
      | Some v -> v
      | None -> failwith ("missing key " ^ k))
  | _ -> failwith ("not an object looking for " ^ k)

let num j = match j with Num f -> f | _ -> failwith "expected a number"
let str j = match j with Str s -> s | _ -> failwith "expected a string"
let arr j = match j with Arr l -> l | _ -> failwith "expected an array"
let keys = function Obj kvs -> List.map fst kvs | _ -> []

(* --- the gates ----------------------------------------------------------------- *)

let failures : string list ref = ref []
let flag fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt

let require cond fmt =
  Printf.ksprintf (fun m -> if not cond then failures := m :: !failures) fmt

(** The fresh file must have the committed file's shape: a renamed or
    dropped field silently disables a gate, so schema drift is an error. *)
let check_schema ~committed ~fresh =
  let rec go path c f =
    match (c, f) with
    | Obj _, Obj _ ->
        List.iter
          (fun k ->
            match f with
            | Obj kvs when List.mem_assoc k kvs -> go (path ^ "." ^ k) (member k c) (member k f)
            | _ -> flag "schema: %s.%s is missing from the fresh output" path k)
          (keys c)
    | Arr (c0 :: _), Arr (f0 :: _) -> go (path ^ "[]") c0 f0
    | Arr _, Arr _ -> ()
    | _ -> ()
  in
  go "$" committed fresh

let check_transport ~committed ~fresh =
  check_schema ~committed ~fresh;
  List.iter
    (fun row ->
      let rate = num (member "fault_rate" row) in
      require
        (num (member "failed" row) = 0.0)
        "transport: %d sessions failed at fault rate %.2f"
        (int_of_float (num (member "failed" row)))
        rate;
      if rate > 0.0 then
        require
          (num (member "retries" row) > 0.0)
          "transport: no retries at fault rate %.2f — the fault machinery did not engage" rate)
    (arr (member "rates" fresh));
  (* the conditional-break workload: nub-side evaluation must keep its
     two-orders-of-magnitude RPC edge, at identical stop semantics *)
  let cond_gates ~who j =
    let c = member "conditional_break" j in
    let iters = num (member "iterations" c) in
    require
      (num (member "nub_suppressed" c) = iters -. 1.0)
      "%s conditional_break: nub suppressed %g traps of an expected %g" who
      (num (member "nub_suppressed" c))
      (iters -. 1.0);
    require
      (num (member "debugger_suppressed" c) = num (member "nub_suppressed" c))
      "%s conditional_break: the two sites resumed different trap counts (%g vs %g)"
      who
      (num (member "debugger_suppressed" c))
      (num (member "nub_suppressed" c));
    require
      (num (member "debugger_rpcs" c) >= 100.0 *. num (member "nub_rpcs" c))
      "%s conditional_break: nub site used %g RPCs vs %g debugger-side — under the 100x gate"
      who
      (num (member "nub_rpcs" c))
      (num (member "debugger_rpcs" c))
  in
  cond_gates ~who:"committed" committed;
  cond_gates ~who:"fresh" fresh

let check_symtab ~min_speedup ~committed ~fresh =
  check_schema ~committed ~fresh;
  let target_gates ~who ~min_speedup t =
    let a = member "attach" t in
    let archn = str (member "arch" t) in
    require
      (num (member "lazy_forced_units" a) < num (member "unit_count" a))
      "%s %s: lazy attach forced every unit (%g of %g)" who archn
      (num (member "lazy_forced_units" a))
      (num (member "unit_count" a));
    require
      (num (member "lazy_forced_bytes" a) *. 2.0 < num (member "table_bytes" a))
      "%s %s: lazy attach forced %g of %g table bytes — more than half" who archn
      (num (member "lazy_forced_bytes" a))
      (num (member "table_bytes" a));
    List.iter
      (fun q ->
        require
          (num (member "speedup" (member q t)) >= min_speedup)
          "%s %s: %s indexed speedup %.1fx is below the %.0fx gate" who archn q
          (num (member "speedup" (member q t)))
          min_speedup)
      [ "proc_by_name"; "stops_at_line" ];
    require
      (num (member "speedup" (member "pc_map" t)) >= 1.0)
      "%s %s: the pc index is slower than the uncached walk" who archn;
    (* validity ranges ride along in the table; they must stay cheap *)
    let v = member "validity" t in
    require
      (num (member "table_bytes_ranges" v) > num (member "table_bytes_plain" v))
      "%s %s: the validity pass emitted nothing — ranges are missing from the table" who
      archn;
    require
      (num (member "bytes_overhead_ratio" v) < 0.10)
      "%s %s: validity ranges cost %.1f%% of the table — over the 10%% gate" who archn
      (100.0 *. num (member "bytes_overhead_ratio" v))
  in
  (* the committed numbers must meet the full acceptance criterion *)
  List.iter (target_gates ~who:"committed" ~min_speedup:10.0) (arr (member "targets" committed));
  (* the fresh (smoke) run gets a reduced gate: tiny iteration counts are
     noisy, but an index that lost its edge still shows up *)
  List.iter (target_gates ~who:"fresh" ~min_speedup) (arr (member "targets" fresh))

let check_core ~committed ~fresh =
  check_schema ~committed ~fresh;
  let target_gates ~who t =
    let archn = str (member "arch" t) in
    require
      (num (member "live_matches" t) = 1.0)
      "%s core %s: the post-mortem backtrace differs from the live one" who archn;
    require
      (num (member "backtrace_depth" t) >= 2.0)
      "%s core %s: backtrace depth %g — the frame walk over the dump collapsed" who
      archn
      (num (member "backtrace_depth" t));
    require
      (num (member "dump_bytes" t) > 0.0
      && num (member "dump_bytes" t) <= 1048576.0)
      "%s core %s: dump is %g bytes — the zero-trimmed sections are not sparse" who
      archn
      (num (member "dump_bytes" t))
  in
  List.iter (target_gates ~who:"committed") (arr (member "targets" committed));
  List.iter (target_gates ~who:"fresh") (arr (member "targets" fresh))

let check_server ~committed ~fresh =
  check_schema ~committed ~fresh;
  let gates ~who t =
    let sessions = num (member "sessions" t) in
    let sv = member "server" t and base = member "baseline" t in
    require
      (num (member "downs" sv) = 0.0)
      "%s server: %g sessions went down on clean links" who
      (num (member "downs" sv));
    require
      (num (member "failed" sv) = 0.0)
      "%s server: %g commands failed on clean links" who
      (num (member "failed" sv));
    require
      (num (member "image_cache_hits" sv)
      = sessions -. num (member "images_loaded" sv))
      "%s server: %g cache hits for %g sessions over %g images — the image cache is not sharing"
      who
      (num (member "image_cache_hits" sv))
      sessions
      (num (member "images_loaded" sv));
    require
      (num (member "per_session_words" sv) < num (member "per_session_words" base))
      "%s server: %g live words per session, no better than the %g of isolated sessions"
      who
      (num (member "per_session_words" sv))
      (num (member "per_session_words" base));
    require
      (num (member "forced_units" sv) <= num (member "forced_units" base))
      "%s server: %g units forced vs %g for isolated sessions — shared tables re-forced"
      who
      (num (member "forced_units" sv))
      (num (member "forced_units" base));
    require
      (num (member "sessions_per_sec" sv) > 0.0)
      "%s server: sessions/sec is not positive" who;
    (* the framed wire front end: throughput must be real and deficit
       round robin must keep the per-client service spread tight — the
       spread is read at the first client's finish, so an unfair loop
       shows up as one client racing ahead of a starved one *)
    let w = member "wire" t in
    require
      (num (member "commands_per_sec" w) > 0.0)
      "%s server wire: commands/sec is not positive" who;
    require
      (num (member "commands" w)
      = num (member "conns" w) *. 6.0)
      "%s server wire: %g commands served for %g clients — the loop lost work" who
      (num (member "commands" w))
      (num (member "conns" w));
    require
      (num (member "fairness_min_served" w) > 0.0)
      "%s server wire: a client was fully starved at first finish" who;
    require
      (num (member "fairness_ratio" w) <= 3.0)
      "%s server wire: max/min service ratio %.2f is over the 3.0 fairness gate" who
      (num (member "fairness_ratio" w))
  in
  gates ~who:"committed" committed;
  gates ~who:"fresh" fresh

let check_replay ~committed ~fresh =
  check_schema ~committed ~fresh;
  let gates ~who ~max_ratio t =
    let r = member "record" t in
    require
      (num (member "overhead_ratio" r) < max_ratio)
      "%s replay: record overhead %.2fx is over the %.0fx gate" who
      (num (member "overhead_ratio" r))
      max_ratio;
    require
      (num (member "trace_bytes" r) > 0.0)
      "%s replay: the recorded run produced an empty trace" who;
    List.iter
      (fun row ->
        let sp = num (member "spacing" row) in
        require
          (num (member "checkpoints" row) > 0.0)
          "%s replay: no checkpoints at spacing %g" who sp;
        require
          (num (member "instructions" row) > 0.0)
          "%s replay: the trace at spacing %g recorded no instructions" who sp;
        (* checkpoint compaction: the stored trace must beat the raw
           encoding wherever checkpoints dominate (every measured
           spacing dumps cores far bigger than the event stream) *)
        require
          (num (member "trace_bytes" row) < num (member "raw_bytes" row))
          "%s replay: stored trace (%g bytes) is no smaller than raw (%g) at spacing %g — compaction is off"
          who
          (num (member "trace_bytes" row))
          (num (member "raw_bytes" row))
          sp;
        (* the machine-independent latency bound: a reverse step restores
           the nearest checkpoint and replays forward, so it can never
           re-execute more than the spacing plus a small delay-slot
           allowance, whatever the wall clock says *)
        require
          (num (member "max_reexec_per_rstep" row) <= sp +. 16.0)
          "%s replay: a reverse step re-executed %g instructions at spacing %g — over the spacing bound"
          who
          (num (member "max_reexec_per_rstep" row))
          sp)
      (arr (member "spacings" t));
    let d = member "determinism" t in
    require
      (num (member "traces_identical" d) = 1.0)
      "%s replay: recording the same session twice gave different traces" who;
    require
      (num (member "replay_matches_live" d) = 1.0)
      "%s replay: replaying the trace to its end diverged from the live run" who
  in
  (* the committed numbers must meet the full acceptance criterion; the
     fresh (smoke) run times a sub-millisecond workload, so its overhead
     ratio gets noise headroom — determinism and the reexec bound do not *)
  gates ~who:"committed" ~max_ratio:2.0 committed;
  gates ~who:"fresh" ~max_ratio:3.0 fresh

let () =
  let args = Array.to_list Sys.argv in
  let min_speedup =
    let rec go = function
      | "-min-speedup" :: v :: _ -> float_of_string v
      | _ :: rest -> go rest
      | [] -> 3.0
    in
    go args
  in
  match args with
  | _ :: kind :: committed :: fresh :: _ ->
      let committed_path = committed in
      let committed = of_file committed and fresh = of_file fresh in
      (try
         match kind with
         | "transport" -> check_transport ~committed ~fresh
         | "symtab" -> check_symtab ~min_speedup ~committed ~fresh
         | "core" -> check_core ~committed ~fresh
         | "server" -> check_server ~committed ~fresh
         | "replay" -> check_replay ~committed ~fresh
         | k ->
             prerr_endline ("unknown benchmark kind " ^ k);
             exit 2
       with Failure m ->
         (* a parseable file missing the fields a gate reads is as
            malformed as bad JSON *)
         Printf.eprintf "check_regress: malformed bench file (%s vs %s): %s\n"
           committed_path kind m;
         exit 2);
      if !failures = [] then print_endline ("bench gate ok: " ^ kind)
      else begin
        List.iter prerr_endline (List.rev !failures);
        exit 1
      end
  | _ ->
      prerr_endline
        "usage: check_regress {transport|symtab|core|server|replay} COMMITTED.json FRESH.json [-min-speedup N]";
      exit 2
