(** Core-dump benchmark: what post-mortem debugging costs.

    For every target, a program is run to its SIGSEGV under the nub and
    three things are measured:

    - {b dump write}: serializing the stopped process into the LDBCORE1
      format (size in bytes, dumps per second) — the sparse, zero-trimmed
      sections must keep a dump of the 4 MB address space small;
    - {b post-mortem attach}: decoding the dump and opening it as a
      read-only target, up to and including the first backtrace — the
      "how long until the crash makes sense" latency;
    - {b fidelity}: whether the post-mortem backtrace equals the live one
      ([live_matches], gated to 1 by bench/check_regress.ml).

    Usage: bench_core [-smoke] [-o FILE.json]
    Emits BENCH_core.json (or FILE.json). *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Host = Ldb_ldb.Host

let segv_c =
  {|
int boom(int k)
{
    static int a[4];
    a[0] = 7;
    a[k] = 1;
    return a[0];
}
int main(void)
{
    int n;
    n = 4000000;
    boom(n);
    return 0;
}
|}

let sources = [ ("segv.c", segv_c) ]

let smoke = Array.exists (( = ) "-smoke") Sys.argv

let out_path =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then "BENCH_core.json"
    else if Sys.argv.(i) = "-o" then Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 0

let iters = if smoke then 1 else 25

type row = {
  arch : Arch.t;
  dump_bytes : int;
  dump_seconds : float;   (** per dump *)
  attach_seconds : float; (** per attach, through the first backtrace *)
  backtrace_depth : int;
  live_matches : bool;
}

let run_target arch : row =
  let d = Ldb.create () in
  let p, tg = Host.spawn d ~arch ~name:(Arch.name arch) sources in
  (match Ldb.continue_ d tg with
  | Ok (Ldb.Stopped _) -> ()
  | _ -> failwith (Arch.name arch ^ ": program did not fault"));
  let live_bt = List.map (Ldb.frame_function d tg) (Ldb.backtrace d tg) in
  (* dump write: what the nub does at the fault *)
  let signal = Signal.number Signal.SIGSEGV in
  let t0 = Sys.time () in
  let bytes = ref "" in
  for _ = 1 to iters do
    bytes := Core.to_string (Core.of_proc p.Host.hp_proc ~signal ~code:0)
  done;
  let dump_seconds = (Sys.time () -. t0) /. float_of_int iters in
  (* the wire transfer, once, so the chunking path is exercised too *)
  let wire_bytes = Ldb.core_bytes tg in
  assert (String.length wire_bytes = String.length !bytes);
  (* post-mortem attach through the first backtrace *)
  let loaded =
    match Core.of_string !bytes with
    | Ok r -> r
    | Error m -> failwith (Arch.name arch ^ ": dump does not decode: " ^ m)
  in
  let dead_bt = ref [] in
  let t0 = Sys.time () in
  for _ = 1 to iters do
    let d2 = Ldb.create () in
    let tg2 =
      Ldb.connect_core d2 ~name:"bench" ~loader_ps:p.Host.hp_loader_ps loaded
    in
    dead_bt := List.map (Ldb.frame_function d2 tg2) (Ldb.backtrace d2 tg2)
  done;
  let attach_seconds = (Sys.time () -. t0) /. float_of_int iters in
  {
    arch;
    dump_bytes = String.length !bytes;
    dump_seconds;
    attach_seconds;
    backtrace_depth = List.length !dead_bt;
    live_matches = !dead_bt = live_bt;
  }

let () =
  let rows = List.map run_target Arch.all in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"benchmark\": \"core dumps\",\n";
  Buffer.add_string buf
    "  \"workload\": \"SIGSEGV at depth 2: dump the process, attach post-mortem, first backtrace\",\n";
  Buffer.add_string buf "  \"targets\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"arch\": \"%s\", \"dump_bytes\": %d, \"dump_seconds\": %.6f, \
            \"dumps_per_sec\": %.1f, \"attach_seconds\": %.6f, \
            \"attaches_per_sec\": %.1f, \"backtrace_depth\": %d, \
            \"live_matches\": %d}%s\n"
           (Arch.name r.arch) r.dump_bytes r.dump_seconds
           (1.0 /. (r.dump_seconds +. 1e-9))
           r.attach_seconds
           (1.0 /. (r.attach_seconds +. 1e-9))
           r.backtrace_depth
           (if r.live_matches then 1 else 0)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out out_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_string (Buffer.contents buf)
