(** Record/replay benchmark: what recording costs while you debug
    forward, and what each reverse step costs once you travel back.

    Three measurements, emitted as BENCH_replay.json:

    - record overhead: the same run-to-exit workload timed untraced and
      recorded (wide checkpoint spacing, the recommended live setting);
      the gate holds the ratio under 2x.
    - reverse-step latency vs checkpoint spacing: the spacing knob
      trades trace bytes for seek work.  The wall clock is reported but
      not gated (machines differ); the gated number is deterministic —
      the instructions re-executed by a reverse step can never exceed
      the spacing plus a small delay-slot allowance, whatever the
      machine.
    - the determinism contract CI leans on: recording the same seeded
      session twice yields byte-identical traces, and replaying one to
      the end reproduces the live process's core dump exactly.

    Run with: dune exec bench/bench_replay.exe
    Flags: -smoke (reduced workload, for CI), -o FILE (output path). *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Host = Ldb_ldb.Host
module Replay = Ldb_ldb.Replay
module Trace = Ldb_nub.Trace

let smoke = Array.exists (( = ) "-smoke") Sys.argv

let out_path =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then "BENCH_replay.json"
    else if Sys.argv.(i) = "-o" then Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 0

let iterations = if smoke then 150 else 1500

let loop_c =
  Printf.sprintf
    {|
int total;
void bump(int k)
{
    total = total + k;
}
int main(void)
{
    int i;
    for (i = 1; i <= %d; i++)
        bump(i);
    printf("%%d\n", total);
    return 0;
}
|}
    iterations

let sources = [ ("loop.c", loop_c) ]

let expect_stop what = function
  | Ok (Ldb.Stopped _) -> ()
  | _ -> failwith (what ^ ": expected a stop")

let expect_exit what = function
  | Ok (Ldb.Exited _) -> ()
  | _ -> failwith (what ^ ": expected an exit")

type session = { d : Ldb.t; tg : Ldb.target; proc : Host.process }

let session () =
  let d = Ldb.create () in
  let proc, tg = Host.spawn d ~arch:Arch.Mips ~name:"bench" sources in
  { d; tg; proc }

(* --- record overhead --------------------------------------------------------- *)

(** Run the loop to completion, optionally recording, and return wall
    seconds.  Repeated and averaged: a single run is noise. *)
let run_to_exit ~(record : int option) () : float =
  let s = session () in
  (match record with Some spacing -> Ldb.start_record s.tg ~spacing | None -> ());
  let t0 = Sys.time () in
  expect_exit "run" (Ldb.continue_ s.d s.tg);
  Sys.time () -. t0

let avg_of n f =
  let rec go k acc = if k = 0 then acc else go (k - 1) (acc +. f ()) in
  go n 0.0 /. float_of_int n

(* --- reverse-step latency vs spacing ----------------------------------------- *)

type spacing_row = {
  sp : int;
  sp_checkpoints : int;
  sp_trace_bytes : int;
  sp_raw_bytes : int;  (** the same trace re-encoded without compaction *)
  sp_rsteps : int;
  sp_mean_seconds : float;
  sp_max_reexec : int;
  sp_instructions : int;
}

(** The wire trace re-encoded with checkpoint compaction off — the size
    the LZW pass is saving. *)
let raw_trace_bytes (bytes : string) : int =
  match Trace.of_string bytes with
  | Ok (tr, []) -> String.length (Trace.to_string ~compress:false tr)
  | Ok (_, _ :: _) | Error _ -> failwith "bench trace came back damaged"

let measure_spacing (sp : int) : spacing_row =
  let s = session () in
  Ldb.start_record s.tg ~spacing:sp;
  expect_exit "recorded run" (Ldb.continue_ s.d s.tg);
  let bytes = Ldb.trace_bytes s.tg in
  let image = Ldb.load_image s.d ~loader_ps:s.proc.Host.hp_loader_ps in
  let rp =
    match Replay.of_string s.d ~name:"bench" ~image bytes with
    | Ok (rp, []) -> rp
    | Ok (_, _ :: _) -> failwith "bench trace came back damaged"
    | Error e -> failwith ("open replay: " ^ Replay.error_to_string e)
  in
  (match Replay.seek_end rp with
  | Ok _ -> ()
  | Error e -> failwith ("seek end: " ^ Replay.error_to_string e));
  let rsteps = if smoke then 20 else 100 in
  let max_reexec = ref 0 in
  let t0 = Sys.time () in
  for _ = 1 to rsteps do
    (match Replay.rstep rp with
    | Ok _ -> ()
    | Error e -> failwith ("rstep: " ^ Replay.error_to_string e));
    max_reexec := max !max_reexec (Replay.last_seek_cost rp)
  done;
  let seconds = Sys.time () -. t0 in
  {
    sp;
    sp_checkpoints = Replay.checkpoint_count rp;
    sp_trace_bytes = String.length bytes;
    sp_raw_bytes = raw_trace_bytes bytes;
    sp_rsteps = rsteps;
    sp_mean_seconds = seconds /. float_of_int rsteps;
    sp_max_reexec = !max_reexec;
    sp_instructions = Replay.recorded_instructions rp;
  }

(* --- determinism -------------------------------------------------------------- *)

let determinism () : int * int =
  let script () =
    let s = session () in
    Ldb.start_record s.tg ~spacing:64;
    ignore (Ldb.break_function s.d s.tg "bump" : int);
    for _ = 1 to 3 do
      expect_stop "continue" (Ldb.continue_ s.d s.tg)
    done;
    s
  in
  let s1 = script () and s2 = script () in
  let t1 = Ldb.trace_bytes s1.tg and t2 = Ldb.trace_bytes s2.tg in
  let identical = if String.equal t1 t2 then 1 else 0 in
  let image = Ldb.load_image s1.d ~loader_ps:s1.proc.Host.hp_loader_ps in
  let matches =
    match Replay.of_string s1.d ~name:"det" ~image t1 with
    | Ok (rp, []) -> (
        match Replay.seek_end rp with
        | Ok tg ->
            if String.equal (Ldb.core_bytes tg) (Ldb.core_bytes s1.tg) then 1 else 0
        | Error _ -> 0)
    | _ -> 0
  in
  (identical, matches)

(* --- emit --------------------------------------------------------------------- *)

let () =
  let repeats = if smoke then 3 else 10 in
  (* wide spacing is the recommended live setting: the trace carries the
     events, checkpoints stay rare, and the cost is event logging only *)
  let overhead_spacing = 100_000 in
  let untraced = avg_of repeats (run_to_exit ~record:None) in
  let recorded = avg_of repeats (run_to_exit ~record:(Some overhead_spacing)) in
  let ratio = recorded /. (untraced +. 1e-9) in
  let probe =
    let s = session () in
    Ldb.start_record s.tg ~spacing:overhead_spacing;
    expect_exit "probe" (Ldb.continue_ s.d s.tg);
    Ldb.trace_bytes s.tg
  in
  let spacings = List.map measure_spacing [ 64; 256; 1024 ] in
  let identical, matches = determinism () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"benchmark\": \"record/replay\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"workload\": \"loop of %d calls run to exit on mips, then reverse-stepped\",\n"
       iterations);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"record\": {\"untraced_seconds\": %.6f, \"recorded_seconds\": %.6f, \
        \"overhead_ratio\": %.3f, \"overhead_spacing\": %d, \"trace_bytes\": %d},\n"
       untraced recorded ratio overhead_spacing (String.length probe));
  Buffer.add_string buf "  \"spacings\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"spacing\": %d, \"checkpoints\": %d, \"trace_bytes\": %d, \
            \"raw_bytes\": %d, \"instructions\": %d, \"rsteps\": %d, \
            \"mean_rstep_seconds\": %.6f, \"max_reexec_per_rstep\": %d}%s\n"
           r.sp r.sp_checkpoints r.sp_trace_bytes r.sp_raw_bytes r.sp_instructions
           r.sp_rsteps r.sp_mean_seconds r.sp_max_reexec
           (if i = 2 then "" else ",")))
    spacings;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"determinism\": {\"traces_identical\": %d, \"replay_matches_live\": %d}\n}\n"
       identical matches);
  let oc = open_out out_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_string (Buffer.contents buf)
