(** Symbol-table benchmark: demand-driven forcing and indexed lookup
    against the eager, linear-scan baseline the debugger used to run.

    Measures, on every SIM target, over a synthetic program of several
    compilation units and ~100 procedures:

    - cold attach + first breakpoint: eager (force the whole table, then
      plant) vs lazy (plant; only the queried unit forces), plus how many
      bytes of deferred table text each actually executed;
    - query throughput on a fully forced table: [proc_by_name],
      [stops_at_line] and pc->stop-addresses mapping, indexed vs the
      pre-index linear scans.

    Emits BENCH_symtab.json.

    Run with: dune exec bench/bench_symtab.exe
    Flags: -smoke (reduced iterations, for CI), -o FILE (output path). *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Host = Ldb_ldb.Host
module Symtab = Ldb_ldb.Symtab

let smoke = Array.exists (( = ) "-smoke") Sys.argv

let out_path =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then "BENCH_symtab.json"
    else if Sys.argv.(i) = "-o" then Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 0

let attach_iters = if smoke then 2 else 5
let query_iters = if smoke then 500 else 10_000

(* --- synthetic program: [n_units] units x [funcs_per_unit] procedures --- *)

let n_units = 8
let funcs_per_unit = 12

let func_name u i = Printf.sprintf "f_%d_%d" u i

let unit_source u =
  let buf = Buffer.create 1024 in
  for i = 0 to funcs_per_unit - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "int %s(int x)\n{\n    int a;\n    int b;\n    a = x + %d;\n    b = a * 2;\n    a = b - x;\n    return a;\n}\n"
         (func_name u i) (i + 1))
  done;
  if u = 0 then begin
    Buffer.add_string buf "int main(void)\n{\n    int r;\n    r = 0;\n";
    for v = 0 to n_units - 1 do
      Buffer.add_string buf (Printf.sprintf "    r = r + %s(%d);\n" (func_name v 0) v)
    done;
    Buffer.add_string buf "    printf(\"%d\\n\", r);\n    return 0;\n}\n"
  end;
  Buffer.contents buf

let sources = List.init n_units (fun u -> (Printf.sprintf "u%d.c" u, unit_source u))

let all_names =
  List.concat (List.init n_units (fun u -> List.init funcs_per_unit (func_name u)))

(* --- timing ----------------------------------------------------------------- *)

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (Sys.time () -. t0, r)

(* --- the pre-index baselines (what Symtab.proc_by_name and
   stops_at_line were before this change: scans over the flat lists) --- *)

let scan_proc_by_name all name =
  List.find_opt (fun e -> Symtab.entry_name e = name) all

let scan_stops_at_line all line =
  List.concat_map
    (fun p ->
      List.filter (fun s -> s.Symtab.stop_line = line) (Symtab.stops_of_proc p))
    all

type attach_cell = {
  at_eager_s : float;
  at_lazy_s : float;
  at_total_bytes : int;
  at_lazy_bytes : int;
  at_lazy_units : int;
  at_unit_count : int;
}

type query_cell = { q_indexed_s : float; q_scan_s : float }

type validity_cell = {
  vc_bytes_plain : int;      (** table bytes with the validity pass off *)
  vc_bytes_ranges : int;     (** table bytes with ranges emitted (the default) *)
  vc_attach_plain_s : float;
  vc_attach_ranges_s : float;
}

type target_row = {
  tr_arch : string;
  tr_attach : attach_cell;
  tr_by_name : query_cell;
  tr_by_line : query_cell;
  tr_pc_map : query_cell;
  tr_validity : validity_cell;
}

(** Cold attach + first breakpoint.  The launch (compile, link, load) is
    outside the timed region: the paper's startup cost is reading the
    symbol table, and that is what deferral attacks. *)
let bench_attach ~arch : attach_cell =
  let eager = ref 0.0 and lazy_ = ref 0.0 in
  let total_bytes = ref 0 and lazy_bytes = ref 0 and lazy_units = ref 0 in
  let unit_count = ref 0 in
  let target = func_name (n_units - 1) (funcs_per_unit / 2) in
  for _ = 1 to attach_iters do
    (* eager: read the loader table, force everything, then plant *)
    let p = Host.launch ~paused:true ~arch sources in
    let te, _ =
      time (fun () ->
          let d = Ldb.create () in
          let tg =
            Ldb.connect d ~name:(Arch.name arch) ~loader_ps:p.Host.hp_loader_ps
              (Host.open_channel p)
          in
          Ldb.force_symbols d tg;
          ignore (Ldb.break_function d tg target : int);
          tg)
    in
    eager := !eager +. te;
    (* lazy: plant directly; only the defining unit forces *)
    let p = Host.launch ~paused:true ~arch sources in
    let tl, tg =
      time (fun () ->
          let d = Ldb.create () in
          let tg =
            Ldb.connect d ~name:(Arch.name arch) ~loader_ps:p.Host.hp_loader_ps
              (Host.open_channel p)
          in
          ignore (Ldb.break_function d tg target : int);
          tg)
    in
    lazy_ := !lazy_ +. tl;
    let st = tg.Ldb.tg_symtab in
    total_bytes := Symtab.total_bytes st;
    lazy_bytes := Symtab.forced_bytes st;
    lazy_units := List.length (Symtab.forced_units st);
    unit_count := Symtab.unit_count st
  done;
  {
    at_eager_s = !eager;
    at_lazy_s = !lazy_;
    at_total_bytes = !total_bytes;
    at_lazy_bytes = !lazy_bytes;
    at_lazy_units = !lazy_units;
    at_unit_count = !unit_count;
  }

let bench_queries ~arch : query_cell * query_cell * query_cell =
  let d = Ldb.create () in
  let p = Host.launch ~paused:true ~arch sources in
  let tg =
    Ldb.connect d ~name:(Arch.name arch) ~loader_ps:p.Host.hp_loader_ps
      (Host.open_channel p)
  in
  let st = tg.Ldb.tg_symtab in
  Ldb.force_symbols d tg;
  let all = Symtab.procs st in
  let names = Array.of_list all_names in
  let nnames = Array.length names in
  (* proc_by_name: index vs scan *)
  let t_ix, _ =
    time (fun () ->
        for i = 1 to query_iters do
          ignore (Symtab.proc_by_name st names.(i mod nnames) : Ldb_pscript.Value.t option)
        done)
  in
  let t_sc, _ =
    time (fun () ->
        for i = 1 to query_iters do
          ignore (scan_proc_by_name all names.(i mod nnames) : Ldb_pscript.Value.t option)
        done)
  in
  let by_name = { q_indexed_s = t_ix; q_scan_s = t_sc } in
  (* stops_at_line: index vs scan (lines 2..9 all carry stops) *)
  let line_of i = 2 + (i mod 8) in
  let t_ix, _ =
    time (fun () ->
        for i = 1 to query_iters do
          ignore (Symtab.stops_at_line st ~line:(line_of i) : Symtab.stop list)
        done)
  in
  let t_sc, _ =
    time (fun () ->
        for i = 1 to query_iters do
          ignore (scan_stops_at_line all (line_of i) : Symtab.stop list)
        done)
  in
  let by_line = { q_indexed_s = t_ix; q_scan_s = t_sc } in
  (* pc -> stop addresses (the single-step loop's query): memoized pc
     index vs re-deriving every stop address through the interpreter *)
  let pcs =
    Array.of_list
      (List.filter_map
         (fun name ->
           match Symtab.proc_by_name st name with
           | Some e -> (
               match Symtab.stops_of_proc e with
               | s :: _ -> Some (Ldb.stop_address d tg s)
               | [] -> None)
           | None -> None)
         (List.filteri (fun i _ -> i < 16) all_names))
  in
  let npcs = Array.length pcs in
  let t_ix, _ =
    time (fun () ->
        for i = 1 to query_iters do
          ignore (Ldb.stop_addresses d tg ~pc:pcs.(i mod npcs) : int list)
        done)
  in
  let t_sc, _ =
    time (fun () ->
        for i = 1 to query_iters do
          let pc = pcs.(i mod npcs) in
          ignore
            (match Ldb.proc_entry_at d tg ~pc with
             | None -> []
             | Some proc -> List.map (Ldb.stop_address d tg) (Symtab.stops_of_proc proc)
              : int list)
        done)
  in
  (by_name, by_line, { q_indexed_s = t_ix; q_scan_s = t_sc })

(** What the validity ranges cost: table size and eager attach time with
    the analysis pass on (the default) versus gated off.  The committed
    check_regress gate holds the byte overhead under 10%. *)
let bench_validity ~arch : validity_cell =
  let measure enabled =
    let saved = !Ldb_cc.Validity.enabled in
    Ldb_cc.Validity.enabled := enabled;
    Fun.protect
      ~finally:(fun () -> Ldb_cc.Validity.enabled := saved)
      (fun () ->
        let bytes = ref 0 and secs = ref 0.0 in
        for _ = 1 to attach_iters do
          let p = Host.launch ~paused:true ~arch sources in
          let t, tg =
            time (fun () ->
                let d = Ldb.create () in
                let tg =
                  Ldb.connect d ~name:(Arch.name arch) ~loader_ps:p.Host.hp_loader_ps
                    (Host.open_channel p)
                in
                Ldb.force_symbols d tg;
                tg)
          in
          secs := !secs +. t;
          bytes := Symtab.total_bytes tg.Ldb.tg_symtab
        done;
        (!bytes, !secs))
  in
  let bytes_plain, attach_plain = measure false in
  let bytes_ranges, attach_ranges = measure true in
  {
    vc_bytes_plain = bytes_plain;
    vc_bytes_ranges = bytes_ranges;
    vc_attach_plain_s = attach_plain;
    vc_attach_ranges_s = attach_ranges;
  }

let bench_target arch : target_row =
  let attach = bench_attach ~arch in
  let by_name, by_line, pc_map = bench_queries ~arch in
  let validity = bench_validity ~arch in
  { tr_arch = Arch.name arch; tr_attach = attach; tr_by_name = by_name;
    tr_by_line = by_line; tr_pc_map = pc_map; tr_validity = validity }

(* --- report -------------------------------------------------------------------- *)

let speedup ~slow ~fast = slow /. (fast +. 1e-9)

let () =
  let rows = List.map bench_target Arch.all in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"benchmark\": \"symtab demand-driven\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"workload\": \"%d units x %d procs; attach+break, then %d queries per lookup kind\",\n"
       n_units funcs_per_unit query_iters);
  Buffer.add_string buf (Printf.sprintf "  \"query_iterations\": %d,\n" query_iters);
  Buffer.add_string buf "  \"targets\": [\n";
  List.iteri
    (fun i r ->
      let a = r.tr_attach in
      let q name (c : query_cell) =
        Printf.sprintf
          "\"%s\": {\"indexed_seconds\": %.4f, \"scan_seconds\": %.4f, \"speedup\": %.1f}"
          name c.q_indexed_s c.q_scan_s
          (speedup ~slow:c.q_scan_s ~fast:c.q_indexed_s)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"arch\": \"%s\",\n\
           \     \"attach\": {\"eager_seconds\": %.4f, \"lazy_seconds\": %.4f, \
            \"speedup\": %.1f, \"table_bytes\": %d, \"lazy_forced_bytes\": %d, \
            \"lazy_forced_units\": %d, \"unit_count\": %d},\n\
           \     %s,\n\
           \     %s,\n\
           \     %s}%s\n"
           r.tr_arch a.at_eager_s a.at_lazy_s
           (speedup ~slow:a.at_eager_s ~fast:a.at_lazy_s)
           a.at_total_bytes a.at_lazy_bytes a.at_lazy_units a.at_unit_count
           (q "proc_by_name" r.tr_by_name)
           (q "stops_at_line" r.tr_by_line)
           (let v = r.tr_validity in
            Printf.sprintf
              "%s,\n\
              \     \"validity\": {\"table_bytes_plain\": %d, \"table_bytes_ranges\": %d, \
               \"bytes_overhead_ratio\": %.4f, \"attach_plain_seconds\": %.4f, \
               \"attach_ranges_seconds\": %.4f}"
              (q "pc_map" r.tr_pc_map)
              v.vc_bytes_plain v.vc_bytes_ranges
              (float_of_int (v.vc_bytes_ranges - v.vc_bytes_plain)
              /. float_of_int (max 1 v.vc_bytes_plain))
              v.vc_attach_plain_s v.vc_attach_ranges_s)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out out_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_string (Buffer.contents buf)
