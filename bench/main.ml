(** The benchmark harness: regenerates every table and figure of the
    paper's evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md
    for paper-vs-measured numbers).

    T1  machine-dependent code per target        (Sec. 4.3 table)
    T2  startup-phase times vs a stabs debugger  (Sec. 7 table)
    T3  stopping-point no-op overhead, 16-19%    (Sec. 3)
    T4  restricted scheduling on SIM-MIPS, ~13%  (Sec. 3)
    T5  PostScript vs stabs symbol-table size    (Sec. 7: ~9x, ~2x compressed)
    T6  deferred symbol-table reading, ~40%      (Sec. 5)
    T7  size of the IR-to-PostScript rewriter    (Sec. 5: 124 lines / 112 ops)

    Timed rows use one Bechamel [Test.make] each; structural rows are
    computed directly.  Run with: dune exec bench/main.exe *)

open Ldb_machine
open Bechamel
open Bechamel.Toolkit

(* ---------------------------------------------------------------------- *)
(* bechamel plumbing: estimate ns/run for a set of staged tests           *)

let measure_tests (tests : Test.t list) : (string * float) list =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = [ Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:400 ~quota:(Time.second 0.25) ~kde:None ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"ldb" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> (name, est) :: acc
      | _ -> acc)
    results []

let ns_to_ms ns = ns /. 1_000_000.0

(* ---------------------------------------------------------------------- *)
(* workloads                                                               *)

let fib_c =
  {|void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}
int main(void) { fib(10); return 0; }
|}

let hello_c = [ ("hello.c", "int main(void) { printf(\"hello, world\\n\"); return 0; }") ]

(** A program of lcc-ish scale: [n] functions with locals, loops, statics
    and calls, to make symbol tables large. *)
let large_program n =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "static int grid[64];\nint depth0(int x) { return x + 1; }\n";
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf
         {|
static int cache%d;
int layer%d(int a, int b)
{
    int i;
    int acc;
    double scale;
    acc = 0;
    scale = a / 2.0;
    for (i = 0; i < b; i++) {
        register int t;
        t = a + i;
        acc += t * depth0(i) + (int)scale;
    }
    cache%d = acc;
    return acc;
}
|}
         i i i)
  done;
  Buffer.add_string buf
    (Printf.sprintf
       "int main(void) { printf(\"%%d\\n\", layer%d(3, 4)); return 0; }\n" n);
  [ ("large.c", Buffer.contents buf) ]

let fib_sources = [ ("fib.c", fib_c) ]

(* straight-line code, where cross-statement scheduling matters most *)
let straightline_c =
  [ ( "pack.c",
      {|int pack(int a, int b, int c, int d)
{
    int w; int x; int y; int z;
    w = a;
    x = b;
    y = c;
    z = d;
    return w + 10*x + 100*y + 1000*z;
}
int blend(int p, int q)
{
    int r0; int r1; int r2; int r3;
    r0 = p + q;
    r1 = p - q;
    r2 = p * q;
    r3 = p / (q + 1);
    return r0 + r1 + r2 + r3;
}
int main(void) { printf("%d %d
", pack(1,2,3,4), blend(9, 2)); return 0; }|} ) ]

let corpus = [ fib_sources; large_program 20; straightline_c; hello_c ]

(* ---------------------------------------------------------------------- *)

let line = String.make 78 '-'

let header title paper =
  Printf.printf "\n%s\n%s\n(paper: %s)\n%s\n" line title paper line

(* --- T1: machine-dependent code per target ----------------------------- *)

let count_loc path = Ldb_util.Loc.count_file path

let t1 () =
  header "T1  Lines of machine-dependent code per target (cf. Sec. 4.3)"
    "Debugger 476/187/206/199, PostScript 15/18/18/13, Nub 34/73/5/72; shared 12193/1203/632";
  let archs = [ "mips"; "sparc"; "m68k"; "vax" ] in
  let frame a = count_loc (Printf.sprintf "lib/ldb/frame_%s.ml" a) in
  let enc a = count_loc (Printf.sprintf "lib/machine/enc_%s.ml" a) in
  let ps a =
    match Arch.of_name a with
    | Some arch -> Ldb_util.Loc.count_string (Ldb_ldb.Mdep_ps.source arch)
    | None -> 0
  in
  let shared_dbg =
    List.fold_left (fun acc f -> acc + count_loc f) 0
      [ "lib/ldb/ldb.ml"; "lib/ldb/frame.ml"; "lib/ldb/symtab.ml"; "lib/ldb/linkerif.ml";
        "lib/ldb/breakpoint.ml"; "lib/ldb/host.ml"; "lib/amemory/amemory.ml" ]
    + Ldb_util.Loc.count_dir "lib/pscript"
  in
  let shared_ps = Ldb_util.Loc.count_string Ldb_pscript.Prelude.source in
  let shared_nub = Ldb_util.Loc.count_dir "lib/nub" in
  Printf.printf "%-22s" "";
  List.iter (Printf.printf "%8s") archs;
  Printf.printf "%10s\n" "shared";
  Printf.printf "%-22s" "Debugger (OCaml)";
  List.iter (fun a -> Printf.printf "%8d" (frame a + enc a)) archs;
  Printf.printf "%10d\n" shared_dbg;
  Printf.printf "%-22s" "PostScript";
  List.iter (fun a -> Printf.printf "%8d" (ps a)) archs;
  Printf.printf "%10d\n" shared_ps;
  Printf.printf "%-22s" "Nub+protocol";
  List.iter (fun _ -> Printf.printf "%8s" "-") archs;
  Printf.printf "%10d\n" shared_nub;
  Printf.printf
    "(per-target = stack-frame walker + instruction encoder; the nub's few\n\
    \ machine-dependent branches -- context layout, the MIPS FP word swap, the\n\
    \ 68020 80-bit save format -- live in the shared files as data)\n"

(* --- T2: startup phases -------------------------------------------------- *)

let t2 () =
  header "T2  Startup phases (cf. Sec. 7 table)"
    "M3 init 1.9s; initial PS 1.6s; symtab hello 2.2s / lcc 5.5s; connect 1.8-6.2s; dbx 1.5s gdb 1.1s";
  let arch = Arch.Mips in
  let _hello_img, hello_ps = Ldb_link.Driver.build ~arch hello_c in
  let large = large_program 120 in
  let large_img, large_ps = Ldb_link.Driver.build ~arch large in
  let large_sparc = Ldb_ldb.Host.launch ~arch:Sparc large in
  let connect_once ~arch sources =
    let d = Ldb_ldb.Ldb.create () in
    let p = Ldb_ldb.Host.launch ~arch sources in
    fun () ->
      let tg =
        Ldb_ldb.Ldb.connect d
          ~name:"bench" ~loader_ps:p.Ldb_ldb.Host.hp_loader_ps
          (Ldb_ldb.Host.open_channel p)
      in
      ignore (Ldb_ldb.Ldb.top_frame d tg)
  in
  let read_symtab ps =
    let d = Ldb_ldb.Ldb.create () in
    fun () ->
      let t = d.Ldb_ldb.Ldb.interp in
      let defs = Ldb_pscript.Value.dict_create () in
      Ldb_pscript.Interp.begin_dict t defs;
      Ldb_pscript.Interp.run_string t ps;
      Ldb_pscript.Interp.end_dict t
  in
  let tests =
    [
      Test.make ~name:"interpreter init (cf. M3 init)"
        (Staged.stage (fun () -> ignore (Ldb_pscript.Ps.create_bare ())));
      Test.make ~name:"read initial PostScript"
        (Staged.stage (fun () ->
             let t = Ldb_pscript.Ps.create_bare () in
             Ldb_pscript.Ps.load_prelude t));
      Test.make ~name:"read symtab hello.c" (Staged.stage (read_symtab hello_ps));
      Test.make ~name:"read symtab large prog" (Staged.stage (read_symtab large_ps));
      Test.make ~name:"connect (one machine)"
        (Staged.stage (connect_once ~arch:Mips hello_c));
      Test.make ~name:"connect large (one machine)"
        (Staged.stage (connect_once ~arch:Mips large));
      Test.make ~name:"connect large (two machines)"
        (Staged.stage
           (let d = Ldb_ldb.Ldb.create () in
            let p1 = Ldb_ldb.Host.launch ~arch:Mips large in
            let p2 = Ldb_ldb.Host.launch ~arch:Mips large in
            fun () ->
              let t1 =
                Ldb_ldb.Ldb.connect d ~name:"a" ~loader_ps:p1.Ldb_ldb.Host.hp_loader_ps
                  (Ldb_ldb.Host.open_channel p1)
              in
              let t2 =
                Ldb_ldb.Ldb.connect d ~name:"b" ~loader_ps:p2.Ldb_ldb.Host.hp_loader_ps
                  (Ldb_ldb.Host.open_channel p2)
              in
              ignore (Ldb_ldb.Ldb.top_frame d t1);
              ignore (Ldb_ldb.Ldb.top_frame d t2)));
      Test.make ~name:"connect large (cross: sparc target)"
        (Staged.stage (fun () ->
             let d = Ldb_ldb.Ldb.create () in
             let tg =
               Ldb_ldb.Ldb.connect d ~name:"x"
                 ~loader_ps:large_sparc.Ldb_ldb.Host.hp_loader_ps
                 (Ldb_ldb.Host.open_channel large_sparc)
             in
             ignore (Ldb_ldb.Ldb.top_frame d tg)));
      Test.make ~name:"stabs debugger: start and read (cf. dbx/gdb)"
        (Staged.stage (fun () -> ignore (Ldb_stabsdbg.Stabsdbg.start large_img)));
    ]
  in
  let results = measure_tests tests in
  List.iter
    (fun (name, ns) -> Printf.printf "  %-52s %10.3f ms\n" name (ns_to_ms ns))
    (List.sort compare results);
  Printf.printf
    "(shape to check: interpreting PostScript symbol tables costs much more\n\
    \ than the stabs baseline, and large programs cost more than hello.c)\n"

(* --- T3: no-op overhead ---------------------------------------------------- *)

let t3 () =
  header "T3  Instruction-count increase from stopping-point no-ops"
    "no-ops increase the number of instructions by 16-19% depending on the target";
  Printf.printf "%-10s %12s %12s %10s\n" "target" "-g insns" "plain insns" "increase";
  List.iter
    (fun arch ->
      let total debug =
        List.fold_left
          (fun acc sources ->
            List.fold_left
              (fun acc (file, src) ->
                let o = Ldb_cc.Compile.compile ~debug ~arch ~file src in
                acc + fst (Ldb_cc.Compile.text_stats o))
              acc sources)
          0 corpus
      in
      let dbg = total true and plain = total false in
      Printf.printf "%-10s %12d %12d %9.1f%%\n" (Arch.name arch) dbg plain
        (100.0 *. float_of_int (dbg - plain) /. float_of_int plain))
    Arch.all

(* --- T4: restricted scheduling on SIM-MIPS ---------------------------------- *)

let t4 () =
  header "T4  SIM-MIPS delay-slot scheduling restriction"
    "debugging restricts scheduling to within expressions; MIPS code grows ~13% beyond the no-ops";
  (* padding no-ops are those not sitting under a stopping-point label *)
  let pad_count (o : Ldb_cc.Asm.t) =
    let arr = Array.of_list o.Ldb_cc.Asm.o_text in
    let n = ref 0 in
    Array.iteri
      (fun i item ->
        match item with
        | Ldb_cc.Asm.Ins Insn.Nop ->
            let after_stop =
              i > 0
              &&
              match arr.(i - 1) with
              | Ldb_cc.Asm.Label l ->
                  String.length l >= 7 && String.sub l 0 7 = "__stop$"
              | _ -> false
            in
            if not after_stop then incr n
        | _ -> ())
      arr;
    !n
  in
  let totals debug =
    List.fold_left
      (fun (pads, insns) sources ->
        List.fold_left
          (fun (pads, insns) (file, src) ->
            let o = Ldb_cc.Compile.compile ~debug ~arch:Mips ~file src in
            (pads + pad_count o, insns + fst (Ldb_cc.Compile.text_stats o)))
          (pads, insns) sources)
      (0, 0) corpus
  in
  let pad_g, insns_g = totals true in
  let pad_plain, insns_plain = totals false in
  Printf.printf "  with -g:    %4d padding no-ops in %5d instructions (%.1f%%)\n" pad_g insns_g
    (100.0 *. float_of_int pad_g /. float_of_int insns_g);
  Printf.printf "  without -g: %4d padding no-ops in %5d instructions (%.1f%%)\n" pad_plain
    insns_plain
    (100.0 *. float_of_int pad_plain /. float_of_int insns_plain);
  Printf.printf
    "(stopping-point labels end scheduling regions, so -g fills fewer delay\n\
    \ slots and pads more -- the paper's separate 13%% MIPS penalty)\n"

(* --- T5: symbol-table sizes --------------------------------------------------- *)

let t5 () =
  header "T5  PostScript vs stabs symbol-table size"
    "PostScript ~9x dbx stabs; ~2x after compress(1)";
  Printf.printf "%-12s %10s %10s %7s %12s %12s %9s\n" "program" "PS bytes" "stabs" "ratio"
    "PS compr." "stabs compr." "ratio";
  List.iter
    (fun (label, sources) ->
      let ps_bytes = ref 0 and stab_bytes = ref 0 in
      let ps_all = Buffer.create 4096 and stabs_all = Buffer.create 4096 in
      List.iter
        (fun (file, src) ->
          let o = Ldb_cc.Compile.compile ~arch:Vax ~file src in
          (match o.Ldb_cc.Asm.o_ps with
          | Some p ->
              ps_bytes := !ps_bytes + String.length p.Ldb_cc.Asm.pp_defs;
              Buffer.add_string ps_all p.Ldb_cc.Asm.pp_defs
          | None -> ());
          stab_bytes := !stab_bytes + String.length o.Ldb_cc.Asm.o_stabs;
          Buffer.add_string stabs_all o.Ldb_cc.Asm.o_stabs)
        sources;
      let psc = String.length (Ldb_util.Lzw.compress (Buffer.contents ps_all)) in
      let stc = String.length (Ldb_util.Lzw.compress (Buffer.contents stabs_all)) in
      Printf.printf "%-12s %10d %10d %6.1fx %12d %12d %8.1fx\n" label !ps_bytes !stab_bytes
        (float_of_int !ps_bytes /. float_of_int (max 1 !stab_bytes))
        psc stc
        (float_of_int psc /. float_of_int (max 1 stc)))
    [ ("fib.c", fib_sources); ("large", large_program 60); ("hello.c", hello_c) ]

(* --- T6: deferral -------------------------------------------------------------- *)

let t6 () =
  header "T6  Deferred symbol-table scanning"
    "quoting defers lexical analysis and cuts symbol-table read time by 40%";
  let arch = Arch.Vax in
  let large = large_program 120 in
  let _, ps_deferred = Ldb_link.Driver.build ~arch ~defer:true large in
  let _, ps_eager = Ldb_link.Driver.build ~arch ~defer:false large in
  let read ps () =
    let t = Ldb_pscript.Ps.create () in
    let defs = Ldb_pscript.Value.dict_create () in
    Ldb_pscript.Interp.begin_dict t defs;
    Ldb_pscript.Interp.run_string t ps;
    Ldb_pscript.Interp.end_dict t
  in
  let results =
    measure_tests
      [
        Test.make ~name:"read with deferral" (Staged.stage (read ps_deferred));
        Test.make ~name:"read without deferral" (Staged.stage (read ps_eager));
      ]
  in
  let get n =
    match List.assoc_opt ("ldb/" ^ n) results with
    | Some v -> v
    | None -> ( match List.assoc_opt n results with Some v -> v | None -> nan)
  in
  let d = get "read with deferral" and e = get "read without deferral" in
  Printf.printf "  deferred reading:   %10.3f ms\n" (ns_to_ms d);
  Printf.printf "  eager reading:      %10.3f ms\n" (ns_to_ms e);
  if d < e then
    Printf.printf "  deferral saves %.0f%% of read time\n" (100.0 *. (1.0 -. (d /. e)))
  else Printf.printf "  (deferral did not win on this run)\n"

(* --- T7: the rewriter ------------------------------------------------------------ *)

let t7 () =
  header "T7  Size of the IR-to-PostScript rewriter"
    "rewriting lcc IR into PostScript took 124 lines of C for 112 operators";
  let loc = count_loc "lib/exprserver/rewrite.ml" in
  Printf.printf "  rewriter: %d lines of OCaml for %d nominal IR operators\n" loc
    Ldb_cc.Ir.operator_count

(* --- T8 (ablation): breakpoint models --------------------------------------- *)

let t8 () =
  header "T8  Ablation: no-op-skip vs single-step breakpoint resumption"
    "Sec. 7.1 proposes replacing the no-op scheme with single-stepping; this measures the cost of each resume";
  let arch = Arch.Vax in
  let hot =
    [ ( "hot.c",
        {|int tick(int x) { return x + 1; }
int main(void) {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 40; i++) acc = tick(acc);
    printf("%d\n", acc);
    return 0;
}|} ) ]
  in
  let run_with plant =
    fun () ->
      let d = Ldb_ldb.Ldb.create () in
      let p = Ldb_ldb.Host.launch ~arch hot in
      let tg =
        Ldb_ldb.Ldb.connect d ~name:"abl" ~loader_ps:p.Ldb_ldb.Host.hp_loader_ps
          (Ldb_ldb.Host.open_channel p)
      in
      plant d tg;
      let rec drive hits =
        match Ldb_ldb.Ldb.continue_ d tg with
        | Ok (Ldb_ldb.Ldb.Stopped _) -> drive (hits + 1)
        | _ -> hits
      in
      ignore (drive 0)
  in
  let noop_skip d tg = ignore (Ldb_ldb.Ldb.break_function d tg "tick") in
  let single_step d tg =
    (* the same entry point, but planted as a general breakpoint past the
       no-ops so every resume does restore / step / replant *)
    let entry = Ldb_ldb.Ldb.break_function d tg "tick" in
    Ldb_ldb.Ldb.clear_breakpoint tg ~addr:entry;
    let nop = tg.Ldb_ldb.Ldb.tg_tdesc.Target.nop in
    let rec first_real a =
      if Ldb_ldb.Breakpoint.fetch_bytes tg.Ldb_ldb.Ldb.tg_wire a (String.length nop) = nop
      then first_real (a + String.length nop)
      else a
    in
    Ldb_ldb.Ldb.break_address d tg ~addr:(first_real entry)
  in
  let results =
    measure_tests
      [
        Test.make ~name:"40 hits, no-op skip (paper's interim scheme)"
          (Staged.stage (run_with noop_skip));
        Test.make ~name:"40 hits, restore/step/replant (Sec. 7.1 model)"
          (Staged.stage (run_with single_step));
      ]
  in
  List.iter
    (fun (name, ns) -> Printf.printf "  %-52s %10.3f ms\n" name (ns_to_ms ns))
    (List.sort compare results);
  Printf.printf
    "(the general model costs one extra protocol round trip and two code\n\
    \ stores per hit, but plants anywhere and needs no compiler no-ops)\n"

let () =
  Printf.printf "ldb reproduction benchmarks (see EXPERIMENTS.md for commentary)\n";
  t1 ();
  t3 ();
  t4 ();
  t5 ();
  t7 ();
  t8 ();
  t6 ();
  t2 ();
  Printf.printf "\n%s\ndone.\n" line
