(** Transport resilience benchmark: complete debug sessions (plant a
    breakpoint, continue, inspect, run to exit) on every SIM target at
    increasing fault rates, measuring session throughput and how hard the
    retry machinery had to work.  Also measures the conditional-break
    workload: a breakpoint with a condition true once in a hot loop,
    evaluated nub-side (compiled bytecode shipped to the target) versus
    debugger-side (round trips per trap), counting the RPCs each site
    costs for byte-identical stop semantics.  Emits BENCH_transport.json.

    Run with: dune exec bench/bench_transport.exe
    Flags: -smoke (reduced iterations, for CI), -o FILE (output path). *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Host = Ldb_ldb.Host
module Transport = Ldb_ldb.Transport
module Breakpoint = Ldb_ldb.Breakpoint
module Faultchan = Ldb_nub.Faultchan
module Eval = Ldb_exprserver.Eval

let ok = function Ok v -> v | Error (`Dead_process m) -> failwith m

let fib_c =
  {|void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}

int main(void)
{
    fib(10);
    return 0;
}
|}

let sources = [ ("fib.c", fib_c) ]

(* disconnects are excluded: their recovery (reattach) is a different
   code path with its own test coverage, and here we measure the retry
   machinery *)
let bench_kinds =
  Faultchan.[ Drop; Corrupt; Truncate; Duplicate; Stall ]

(** One full session; returns the transport's work counters. *)
let session ~arch ~rate ~seed : Transport.stats =
  let d = Ldb.create () in
  let p = Host.launch ~paused:true ~arch sources in
  let tg =
    if rate = 0.0 then
      Ldb.connect d ~name:(Arch.name arch) ~loader_ps:p.Host.hp_loader_ps
        (Host.open_channel p)
    else begin
      let prof = Faultchan.profile ~rate ~kinds:bench_kinds ~stall_ticks:4 () in
      let chan, fc = Host.open_faulty_channel ~armed:false p ~seed prof in
      let tg =
        Ldb.connect d ~name:(Arch.name arch) ~loader_ps:p.Host.hp_loader_ps chan
      in
      Faultchan.set_armed fc true;
      tg
    end
  in
  ignore (Ldb.break_function d tg "fib" : int);
  (match ok (Ldb.continue_ d tg) with
  | Ldb.Stopped _ -> ()
  | _ -> failwith "no stop at breakpoint");
  assert (Ldb.read_int_var d tg (Ldb.top_frame d tg) "n" = 10);
  (match ok (Ldb.continue_ d tg) with
  | Ldb.Exited 0 -> ()
  | _ -> failwith "no clean exit");
  assert (Host.output p = "1 1 2 3 5 8 13 21 34 55 \n");
  Transport.stats (Ldb.transport tg)

type row = {
  rate : float;
  sessions : int;
  mutable failed : int;
  mutable seconds : float;
  mutable rpcs : int;
  mutable retries : int;
  mutable corrupt : int;
  mutable timeouts : int;
  mutable stale : int;
}

let smoke = Array.exists (( = ) "-smoke") Sys.argv

let out_path =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then "BENCH_transport.json"
    else if Sys.argv.(i) = "-o" then Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 0

let sessions_per_cell = if smoke then 1 else 5

let run_rate rate : row =
  let row =
    { rate; sessions = sessions_per_cell * List.length Arch.all; failed = 0;
      seconds = 0.0; rpcs = 0; retries = 0; corrupt = 0; timeouts = 0; stale = 0 }
  in
  let t0 = Sys.time () in
  List.iter
    (fun arch ->
      for i = 1 to sessions_per_cell do
        let arch_ix = match arch with Arch.Mips -> 0 | Sparc -> 1 | M68k -> 2 | Vax -> 3 in
        let seed = (int_of_float (rate *. 1000.0) * 1000) + (arch_ix * 100) + i in
        match session ~arch ~rate ~seed with
        | st ->
            row.rpcs <- row.rpcs + st.Transport.st_rpcs;
            row.retries <- row.retries + st.Transport.st_retries;
            row.corrupt <- row.corrupt + st.Transport.st_corrupt;
            row.timeouts <- row.timeouts + st.Transport.st_timeouts;
            row.stale <- row.stale + st.Transport.st_stale
        | exception Transport.Error _ -> row.failed <- row.failed + 1
      done)
    Arch.all;
  row.seconds <- Sys.time () -. t0;
  row

(* ---------------------------------------------------------------------- *)
(* the conditional-break workload: one breakpoint in a hot loop, its
   condition true exactly once, evaluated at either site on a clean link *)

let cond_iters = if smoke then 2_000 else 1_000_000

let spin_c =
  Printf.sprintf
    {|int g = 0;

void spin(int n)
{
    int i;
    for (i = 0; i < n; i++)
        g = g + 1;
    printf("%%d\n", g);
}

int main(void)
{
    spin(%d);
    return 0;
}
|}
    cond_iters

(* the hot statement's line, found rather than hardcoded so edits to the
   source above cannot silently move the breakpoint *)
let hot_line =
  let contains line sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length line && (String.sub line i n = sub || go (i + 1))
    in
    go 0
  in
  let rec go n = function
    | [] -> failwith "spin.c lost its hot statement"
    | l :: rest -> if contains l "g = g + 1" then n else go (n + 1) rest
  in
  go 1 (String.split_on_char '\n' spin_c)

type cond_result = { cr_rpcs : int; cr_suppressed : int }

(** One conditional-break session: break the hot line with
    [i == cond_iters - 1], run to the stop, and report how many RPCs the
    continue cost and how many traps were silently resumed. *)
let cond_session (site : Breakpoint.cond_site) : cond_result =
  let d = Ldb.create () in
  let p = Host.launch ~paused:true ~arch:Arch.Mips [ ("spin.c", spin_c) ] in
  let tg =
    Ldb.connect d ~name:(Arch.name Arch.Mips) ~loader_ps:p.Host.hp_loader_ps
      (Host.open_channel p)
  in
  let addr =
    let try_line l =
      match Ldb.break_line d tg ~line:l with
      | a :: _ -> Some a
      | [] -> None
      | exception Ldb.Error _ -> None
    in
    match try_line hot_line with
    | Some a -> a
    | None -> (
        match try_line (hot_line + 1) with
        | Some a -> a
        | None -> failwith "no stopping point at the hot statement")
  in
  let expr = Printf.sprintf "i == %d" (cond_iters - 1) in
  let prog =
    match Eval.compile_condition d tg (Eval.start ~arch:Arch.Mips) ~addr expr with
    | Ok prog -> prog
    | Error _ -> failwith "the condition did not compile"
  in
  (match site with
  | `Nub -> (
      match Ldb.set_condition d tg ~addr ~text:expr prog with
      | Ok `Nub -> ()
      | _ -> failwith "nub site unavailable")
  | `Debugger ->
      (* force the fallback path a condition takes when the nub refuses
         or predates the extension: installed locally, never shipped *)
      let bp = Hashtbl.find tg.Ldb.tg_breaks addr in
      bp.Breakpoint.bp_cond <-
        Some
          { Breakpoint.c_text = expr; c_prog = prog; c_site = `Debugger;
            c_suppressed = 0 });
  let before = (Transport.stats (Ldb.transport tg)).Transport.st_rpcs in
  (match ok (Ldb.continue_ d tg) with
  | Ldb.Stopped _ -> ()
  | _ -> failwith "no stop at the condition");
  let cr_rpcs = (Transport.stats (Ldb.transport tg)).Transport.st_rpcs - before in
  (* identical stop semantics at either site, or the numbers mean nothing *)
  assert (Ldb.read_int_var d tg (Ldb.top_frame d tg) "i" = cond_iters - 1);
  let cr_suppressed =
    match (Hashtbl.find tg.Ldb.tg_breaks addr).Breakpoint.bp_cond with
    | Some c -> c.Breakpoint.c_suppressed
    | None -> failwith "the condition vanished"
  in
  (match ok (Ldb.continue_ d tg) with
  | Ldb.Exited 0 -> ()
  | _ -> failwith "no clean exit");
  assert (Host.output p = Printf.sprintf "%d\n" cond_iters);
  { cr_rpcs; cr_suppressed }

let () =
  let rates = [ 0.0; 0.01; 0.05 ] in
  let rows = List.map run_rate rates in
  let nub = cond_session `Nub in
  let dbg = cond_session `Debugger in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"benchmark\": \"transport resilience\",\n";
  Buffer.add_string buf
    "  \"workload\": \"break fib / continue / inspect / run to exit, all 4 targets\",\n";
  Buffer.add_string buf "  \"rates\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"fault_rate\": %.2f, \"sessions\": %d, \"failed\": %d, \
            \"seconds\": %.3f, \"sessions_per_sec\": %.1f, \"rpcs\": %d, \
            \"retries\": %d, \"corrupt_frames\": %d, \"timeouts\": %d, \
            \"stale_replies\": %d}%s\n"
           r.rate r.sessions r.failed r.seconds
           (float_of_int (r.sessions - r.failed) /. (r.seconds +. 1e-9))
           r.rpcs r.retries r.corrupt r.timeouts r.stale
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"conditional_break\": {\"workload\": \"break spin.c hot line if i == \
        N-1 over an N-iteration loop, SIM-MIPS, clean link\", \"iterations\": \
        %d, \"nub_rpcs\": %d, \"nub_suppressed\": %d, \"debugger_rpcs\": %d, \
        \"debugger_suppressed\": %d, \"rpc_ratio\": %.1f}\n"
       cond_iters nub.cr_rpcs nub.cr_suppressed dbg.cr_rpcs dbg.cr_suppressed
       (float_of_int dbg.cr_rpcs /. float_of_int (max 1 nub.cr_rpcs)));
  Buffer.add_string buf "}\n";
  let oc = open_out out_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_string (Buffer.contents buf)
