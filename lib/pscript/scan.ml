(** Tokenizer for the PostScript dialect.

    Notable dialect points: radix numbers ([16#2a]), literal names
    ([/name]), immediately-evaluated names are not supported, and ['&'] is
    an ordinary name character (the paper's symbol-table code uses names
    like [&elemsize]).

    The scanner is deliberately fast on parenthesized strings: the deferral
    technique of Sec. 5 wraps large symbol-table bodies in parentheses so
    they are scanned as strings (cheap) and only tokenized when executed. *)

open Value

type token =
  | TNum of Value.t        (** integer or real *)
  | TStr of string
  | TName of string * bool (** text, literal? *)
  | TProcStart             (** [{] *)
  | TProcEnd               (** [}] *)
  | TEof

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012' || c = '\000'
let is_delim c = c = '(' || c = ')' || c = '{' || c = '}' || c = '[' || c = ']' || c = '/' || c = '%'
let is_regular c = not (is_space c) && not (is_delim c)

let rec skip_ws_and_comments f =
  match file_getc f with
  | None -> ()
  | Some c when is_space c -> skip_ws_and_comments f
  | Some '%' ->
      let rec to_eol () =
        match file_getc f with
        | None | Some '\n' -> ()
        | Some _ -> to_eol ()
      in
      to_eol ();
      skip_ws_and_comments f
  | Some c -> file_ungetc f c

(* ( strings ) with nesting and backslash escapes *)
let scan_string f =
  let buf = Buffer.create 32 in
  let rec go depth =
    match file_getc f with
    | None -> err "syntaxerror" "unterminated string"
    | Some '\\' -> (
        match file_getc f with
        | None -> err "syntaxerror" "unterminated escape"
        | Some 'n' -> Buffer.add_char buf '\n'; go depth
        | Some 't' -> Buffer.add_char buf '\t'; go depth
        | Some 'r' -> Buffer.add_char buf '\r'; go depth
        | Some 'b' -> Buffer.add_char buf '\b'; go depth
        | Some 'f' -> Buffer.add_char buf '\012'; go depth
        | Some '\n' -> go depth (* line continuation *)
        | Some ('0' .. '7' as d) ->
            (* up to three octal digits *)
            let v = ref (Char.code d - Char.code '0') in
            let n = ref 1 in
            let fin = ref false in
            while !n < 3 && not !fin do
              match file_getc f with
              | Some ('0' .. '7' as d2) ->
                  v := (!v * 8) + (Char.code d2 - Char.code '0');
                  incr n
              | Some other ->
                  file_ungetc f other;
                  fin := true
              | None -> fin := true
            done;
            Buffer.add_char buf (Char.chr (!v land 0xff));
            go depth
        | Some c -> Buffer.add_char buf c; go depth)
    | Some '(' ->
        Buffer.add_char buf '(';
        go (depth + 1)
    | Some ')' -> if depth = 0 then () else begin Buffer.add_char buf ')'; go (depth - 1) end
    | Some c ->
        Buffer.add_char buf c;
        go depth
  in
  go 0;
  Buffer.contents buf

let scan_word f first =
  let buf = Buffer.create 16 in
  Buffer.add_char buf first;
  let rec go () =
    match file_getc f with
    | None -> ()
    | Some c when is_regular c ->
        Buffer.add_char buf c;
        go ()
    | Some c -> file_ungetc f c
  in
  go ();
  Buffer.contents buf

(** Classify a bare word as number (decimal, real, or radix) or name. *)
let classify (w : string) : token =
  let num_opt =
    match int_of_string_opt w with
    | Some n -> Some (TNum (Value.int n))
    | None -> (
        (* radix form base#digits *)
        match String.index_opt w '#' with
        | Some i when i > 0 -> (
            match int_of_string_opt (String.sub w 0 i) with
            | Some base when base >= 2 && base <= 36 -> (
                let digits = String.sub w (i + 1) (String.length w - i - 1) in
                let value_of_digit c =
                  if c >= '0' && c <= '9' then Some (Char.code c - Char.code '0')
                  else if c >= 'a' && c <= 'z' then Some (Char.code c - Char.code 'a' + 10)
                  else if c >= 'A' && c <= 'Z' then Some (Char.code c - Char.code 'A' + 10)
                  else None
                in
                let rec go acc j =
                  if j >= String.length digits then Some acc
                  else
                    match value_of_digit digits.[j] with
                    | Some d when d < base -> go ((acc * base) + d) (j + 1)
                    | _ -> None
                in
                if String.length digits = 0 then None
                else match go 0 0 with Some v -> Some (TNum (Value.int v)) | None -> None)
            | _ -> None)
        | _ -> (
            match float_of_string_opt w with
            | Some f
              when String.exists (fun c -> c = '.' || c = 'e' || c = 'E') w ->
                Some (TNum (Value.real f))
            | _ -> None))
  in
  match num_opt with Some t -> t | None -> TName (w, false)

(** Read the next token from [f].  The position of the token's first
    character is recorded in the file and can be read back with
    [Value.file_token_pos] (or [token_pos] below) until the next token is
    scanned. *)
let token (f : Value.file) : token =
  skip_ws_and_comments f;
  f.tok_line <- f.line;
  f.tok_col <- f.col;
  match file_getc f with
  | None -> TEof
  | Some '(' -> TStr (scan_string f)
  | Some ')' -> err "syntaxerror" "unmatched )"
  | Some '{' -> TProcStart
  | Some '}' -> TProcEnd
  | Some '[' -> TName ("[", false)
  | Some ']' -> TName ("]", false)
  | Some '/' -> (
      match file_getc f with
      | None -> err "syntaxerror" "lone /"
      | Some c when is_regular c -> TName (scan_word f c, true)
      | Some c ->
          file_ungetc f c;
          err "syntaxerror" "bad literal name")
  | Some '<' -> (
      (* only << is supported (no hex strings in the dialect) *)
      match file_getc f with
      | Some '<' -> TName ("<<", false)
      | _ -> err "syntaxerror" "expected <<")
  | Some '>' -> (
      match file_getc f with
      | Some '>' -> TName (">>", false)
      | _ -> err "syntaxerror" "expected >>")
  | Some c when is_regular c -> classify (scan_word f c)
  | Some c -> err "syntaxerror" (Printf.sprintf "unexpected character %C" c)

(** Position (line, column) of the most recently scanned token. *)
let token_pos (f : Value.file) : int * int = Value.file_token_pos f
