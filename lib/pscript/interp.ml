(** The embedded PostScript interpreter (Sec. 2, Sec. 5).

    One interpreter instance supports everything: symbol tables, printing
    procedures, expression evaluation, and the loader table.  The
    dictionary stack is explicitly controlled by PostScript programs; ldb
    rebinds machine-dependent names when it changes architectures simply by
    placing a per-target dictionary on this stack. *)

open Value

exception Stop
exception Exit_loop
exception Quit

type cached_program = (Value.t * int * int) array
(** A string scanned once: top-level tokens (procedures already collected)
    paired with the source position of each, for error annotation. *)

type t = {
  mutable ostack : Value.t list;
  mutable dstack : Value.dict list;  (** top first; bottom is systemdict *)
  systemdict : Value.dict;
  userdict : Value.dict;
  out : Buffer.t;        (** destination of print/Put *)
  pp : Pp.t;
  mutable deferred_tokens : int;  (** statistics: tokens scanned lazily *)
  mutable registered : string list;  (** systemdict operator names, reverse registration order *)
  progcache : (string, cached_program) Hashtbl.t;
      (** tokenization cache: string body -> scanned program, so deferred
          symbol-table bodies and repeated [run_string]s scan once *)
  mutable scan_hits : int;    (** statistics: cache hits *)
  mutable scan_misses : int;  (** statistics: strings actually scanned *)
}

(** Past this many distinct strings the cache is emptied rather than grown
    (the expression server evaluates an unbounded stream of small one-shot
    strings; symbol-table bodies are few and large). *)
let progcache_limit = 512

let create_raw () =
  let systemdict = dict_create () in
  let userdict = dict_create () in
  let out = Buffer.create 1024 in
  {
    ostack = [];
    dstack = [ userdict; systemdict ];
    systemdict;
    userdict;
    out;
    pp = Pp.create out;
    deferred_tokens = 0;
    registered = [];
    progcache = Hashtbl.create 64;
    scan_hits = 0;
    scan_misses = 0;
  }

(* --- operator registration ------------------------------------------------ *)

(** Install a builtin in systemdict.  Registration is collision-safe: a
    duplicate name is a bug in the installer (the second definition would
    silently shadow the first), so it fails fast. *)
let register t name v =
  if dict_mem t.systemdict name then
    invalid_arg ("duplicate operator registration: " ^ name)
  else begin
    dict_put t.systemdict name v;
    (match v.Value.v with Value.Op _ -> t.registered <- name :: t.registered | _ -> ())
  end

let register_op t name f = register t name (Value.op name f)

(** Every operator registered so far, in registration order.  The static
    checker's signature table is tested for exhaustiveness against this. *)
let registered_ops t = List.rev t.registered

(* --- operand stack ------------------------------------------------------ *)

let push t v = t.ostack <- v :: t.ostack

let pop t =
  match t.ostack with
  | v :: rest ->
      t.ostack <- rest;
      v
  | [] -> err "stackunderflow" "pop on empty stack"

let peek t = match t.ostack with v :: _ -> v | [] -> err "stackunderflow" "empty stack"

let pop_int t = to_int (pop t)
let pop_float t = to_float (pop t)
let pop_bool t = to_bool (pop t)
let pop_str t = to_str (pop t)
let pop_dict t = to_dict (pop t)
let pop_arr t = to_arr (pop t)
let pop_mem t = to_mem (pop t)
let pop_loc t = to_loc (pop t)

let depth t = List.length t.ostack

(* --- dictionary stack ---------------------------------------------------- *)

let lookup t (n : string) : Value.t option =
  let rec go = function
    | [] -> None
    | d :: rest -> ( match dict_get d n with Some v -> Some v | None -> go rest)
  in
  go t.dstack

let lookup_exn t n =
  match lookup t n with Some v -> v | None -> err "undefined" n

let current_dict t = match t.dstack with d :: _ -> d | [] -> assert false

let define t n v = dict_put (current_dict t) n v

let begin_dict t d = t.dstack <- d :: t.dstack

let end_dict t =
  match t.dstack with
  | _ :: (_ :: _ :: _ as rest) -> t.dstack <- rest
  | _ -> err "dictstackunderflow" "end"

(* --- execution ------------------------------------------------------------ *)

let rec exec_value t (v : Value.t) =
  if not v.exec then push t v
  else
    match v.v with
    | Name n -> exec_value t (lookup_exn t n)
    | Op (_, f) -> f ()
    | Arr elems -> exec_proc t elems
    | Str s -> exec_string t "%string" s
    | File f -> run_file t f
    | Int _ | Real _ | Bool _ | Dict _ | Mark | Null | Mem _ | Loc _ -> push t v

(** Execute the body of a procedure: nested procedures are pushed, not
    executed. *)
and exec_proc t (elems : Value.t array) =
  Array.iter
    (fun (o : Value.t) ->
      match o.v with
      | Arr _ when o.exec -> push t o
      | _ -> if o.exec then exec_value t o else push t o)
    elems

(** Scan and execute tokens from a file until end of stream.  [Stop]
    propagates to the caller ([stopped] catches it), which is how the
    expression server tells ldb to stop listening to the pipe.

    Errors raised while executing a token are annotated with the position
    of the token that triggered them, so a runtime [typecheck] names a
    source location and not just an operator. *)
and run_file t (f : Value.file) =
  let continue_ = ref true in
  while !continue_ do
    match Scan.token f with
    | Scan.TEof -> continue_ := false
    | tok -> (
        try exec_token t f tok
        with Error (name, detail) when not (has_position detail) ->
          let line, col = Value.file_token_pos f in
          raise (Error (name, Printf.sprintf "%s [%s:%d:%d]" detail f.Value.file_name line col)))
  done

and has_position detail =
  (* already annotated by an inner (e.g. deferred-string) interpretation *)
  let n = String.length detail in
  let rec go i = i < n - 1 && ((detail.[i] = ' ' && detail.[i + 1] = '[') || go (i + 1)) in
  go 0

and exec_token t f (tok : Scan.token) =
  match tok with
  | Scan.TEof -> ()
  | Scan.TNum v -> push t v
  | Scan.TStr s -> push t (str s)
  | Scan.TName (n, true) -> push t (name_lit n)
  | Scan.TName (n, false) -> exec_value t (name_exec n)
  | Scan.TProcStart -> push t (collect_proc t f)
  | Scan.TProcEnd -> err "syntaxerror" "unmatched }"

(** Build a procedure object from tokens up to the matching [}]. *)
and collect_proc t f : Value.t =
  let items = ref [] in
  let rec go () =
    match Scan.token f with
    | Scan.TEof -> err "syntaxerror" "unterminated procedure"
    | Scan.TProcEnd -> ()
    | Scan.TProcStart ->
        items := collect_proc t f :: !items;
        go ()
    | Scan.TNum v ->
        items := v :: !items;
        go ()
    | Scan.TStr s ->
        items := str s :: !items;
        go ()
    | Scan.TName (n, true) ->
        items := name_lit n :: !items;
        go ()
    | Scan.TName (n, false) ->
        items := name_exec n :: !items;
        go ()
  in
  go ();
  proc (Array.of_list (List.rev !items))

(** Scan a whole string into its top-level token sequence, collecting
    procedures, without executing anything.  Each token keeps the position
    of its first character for later error annotation. *)
and scan_program t (f : Value.file) : cached_program =
  let items = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match Scan.token f with
    | Scan.TEof -> continue_ := false
    | tok ->
        let line, col = Value.file_token_pos f in
        let v =
          match tok with
          | Scan.TEof -> assert false
          | Scan.TNum v -> v
          | Scan.TStr s -> str s
          | Scan.TName (n, true) -> name_lit n
          | Scan.TName (n, false) -> name_exec n
          | Scan.TProcStart -> collect_proc t f
          | Scan.TProcEnd -> err "syntaxerror" "unmatched }"
        in
        items := (v, line, col) :: !items
  done;
  Array.of_list (List.rev !items)

(** Execute a scanned program, annotating errors with the recorded token
    positions (the same annotation [run_file] produces while scanning). *)
and exec_program t ~(name : string) (prog : cached_program) =
  Array.iter
    (fun ((v : Value.t), line, col) ->
      try
        match v.v with
        | Arr _ when v.exec -> push t v (* top-level procedures are pushed *)
        | _ -> if v.exec then exec_value t v else push t v
      with Error (en, detail) when not (has_position detail) ->
        raise (Error (en, Printf.sprintf "%s [%s:%d:%d]" detail name line col)))
    prog

(** The tokenization cache: scan [s] once and reuse the token array across
    re-executions (deferred unit bodies, repeated [run_string]s). *)
and program_of_string t ~(name : string) (s : string) : cached_program =
  match Hashtbl.find_opt t.progcache s with
  | Some p ->
      t.scan_hits <- t.scan_hits + 1;
      p
  | None ->
      t.scan_misses <- t.scan_misses + 1;
      let p = scan_program t (file_of_string name s) in
      if Hashtbl.length t.progcache >= progcache_limit then Hashtbl.reset t.progcache;
      Hashtbl.replace t.progcache s p;
      t.deferred_tokens <- t.deferred_tokens + Array.length p;
      p

and exec_string t (name : string) (s : string) =
  exec_program t ~name (program_of_string t ~name s)

let run_string t (s : string) = exec_string t "%string" s

(** Tokenization-cache statistics: (hits, misses). *)
let scan_stats t = (t.scan_hits, t.scan_misses)

(** Execute [s] and return everything printed during its execution. *)
let run_capture t (s : string) =
  let before = Buffer.length t.out in
  run_string t s;
  Buffer.sub t.out before (Buffer.length t.out - before)

(** Drain accumulated print output. *)
let take_output t =
  let s = Buffer.contents t.out in
  Buffer.clear t.out;
  t.pp.Pp.column <- 0;
  s
