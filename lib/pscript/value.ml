(** Object model for ldb's PostScript dialect (Sec. 2, Sec. 5).

    Compared to standard PostScript: font and imaging types are omitted;
    abstract-memory and location types are added; strings are immutable
    (for compatibility with the host language's strings); there are no
    save/restore operators (the host garbage collector reclaims memory);
    there are no substrings or subarrays; interpreter errors raise host
    exceptions; files are readers or writers.

    Every object carries an attribute telling explicitly whether it is
    literal or executable. *)

type t = { v : payload; exec : bool }

and payload =
  | Int of int
  | Real of float
  | Bool of bool
  | Str of string
  | Name of string
  | Arr of t array
  | Dict of dict
  | Op of string * (unit -> unit)
      (** built-in operator; the closure captures its interpreter *)
  | Mark
  | Null
  | Mem of Ldb_amemory.Amemory.t       (** abstract memory *)
  | Loc of Ldb_amemory.Amemory.location (** location in an abstract memory *)
  | File of file

and dict = { tbl : (string, t) Hashtbl.t; mutable access_note : string }

and file = {
  read_char : unit -> char option;  (** None at end of stream *)
  mutable pushback : char option;
  file_name : string;
  mutable line : int;       (** 1-based line of the next character *)
  mutable col : int;        (** 1-based column of the next character *)
  mutable prev_line : int;  (** position before the last [file_getc] *)
  mutable prev_col : int;
  mutable tok_line : int;   (** position of the last token's first character *)
  mutable tok_col : int;
}

exception Error of string * string
(** [(error_name, detail)]: typecheck, stackunderflow, undefined, rangecheck,
    invalidaccess, syntaxerror, ioerror. *)

let err name detail = raise (Error (name, detail))

(* --- constructors ------------------------------------------------------ *)

let lit p = { v = p; exec = false }
let exe p = { v = p; exec = true }

let int n = lit (Int n)
let real f = lit (Real f)
let bool b = lit (Bool b)
let str s = lit (Str s)
let name_lit s = lit (Name s)
let name_exec s = exe (Name s)
let mark = lit Mark
let null = lit Null
let op name f = exe (Op (name, f))
let proc elems = exe (Arr elems)
let arr elems = lit (Arr elems)

let dict_create () = { tbl = Hashtbl.create 16; access_note = "" }
let dict d = lit (Dict d)
let mem m = lit (Mem m)
let loc l = lit (Loc l)

let cvx o = { o with exec = true }
let cvlit o = { o with exec = false }

(* --- dictionary keys ---------------------------------------------------- *)

(** Dictionary keys are normalized to strings: names and strings key by
    their text, integers by their decimal form. *)
let key_of (o : t) : string =
  match o.v with
  | Name s | Str s -> s
  | Int n -> string_of_int n
  | Bool b -> string_of_bool b
  | _ -> err "typecheck" "bad dictionary key"

let dict_get d k = Hashtbl.find_opt d.tbl k
let dict_put d k v = Hashtbl.replace d.tbl k v
let dict_mem d k = Hashtbl.mem d.tbl k
let dict_len d = Hashtbl.length d.tbl

(* --- predicates and coercions ------------------------------------------ *)

let type_name (o : t) =
  match o.v with
  | Int _ -> "integertype"
  | Real _ -> "realtype"
  | Bool _ -> "booleantype"
  | Str _ -> "stringtype"
  | Name _ -> "nametype"
  | Arr _ -> "arraytype"
  | Dict _ -> "dicttype"
  | Op _ -> "operatortype"
  | Mark -> "marktype"
  | Null -> "nulltype"
  | Mem _ -> "memorytype"
  | Loc _ -> "locationtype"
  | File _ -> "filetype"

let to_int (o : t) =
  match o.v with
  | Int n -> n
  | Real f -> int_of_float f
  | _ -> err "typecheck" ("expected integer, got " ^ type_name o)

let to_float (o : t) =
  match o.v with
  | Int n -> float_of_int n
  | Real f -> f
  | _ -> err "typecheck" ("expected number, got " ^ type_name o)

let to_bool (o : t) =
  match o.v with Bool b -> b | _ -> err "typecheck" ("expected boolean, got " ^ type_name o)

let to_str (o : t) =
  match o.v with
  | Str s | Name s -> s
  | _ -> err "typecheck" ("expected string, got " ^ type_name o)

let to_dict (o : t) =
  match o.v with Dict d -> d | _ -> err "typecheck" ("expected dict, got " ^ type_name o)

let to_arr (o : t) =
  match o.v with Arr a -> a | _ -> err "typecheck" ("expected array, got " ^ type_name o)

let to_mem (o : t) =
  match o.v with Mem m -> m | _ -> err "typecheck" ("expected memory, got " ^ type_name o)

let to_loc (o : t) =
  match o.v with Loc l -> l | _ -> err "typecheck" ("expected location, got " ^ type_name o)

let to_file (o : t) =
  match o.v with File f -> f | _ -> err "typecheck" ("expected file, got " ^ type_name o)

let is_number (o : t) = match o.v with Int _ | Real _ -> true | _ -> false

(* --- equality ----------------------------------------------------------- *)

let rec equal (a : t) (b : t) =
  match (a.v, b.v) with
  | Int x, Int y -> x = y
  | Real x, Real y -> x = y
  | Int x, Real y | Real y, Int x -> float_of_int x = y
  | Bool x, Bool y -> x = y
  | Str x, Str y -> String.equal x y
  | Name x, Name y -> String.equal x y
  | Str x, Name y | Name x, Str y -> String.equal x y
  | Arr x, Arr y -> x == y
  | Dict x, Dict y -> x == y
  | Mark, Mark -> true
  | Null, Null -> true
  | Op (x, _), Op (y, _) -> String.equal x y
  | Mem x, Mem y -> x == y
  | Loc x, Loc y -> equal_loc x y
  | File x, File y -> x == y
  | _ -> false

and equal_loc (x : Ldb_amemory.Amemory.location) y =
  match (x, y) with
  | Absolute a, Absolute b -> a.space = b.space && a.offset = b.offset
  | Immediate a, Immediate b -> a == b
  | _ -> false

(* --- printing ----------------------------------------------------------- *)

(** [cvs]-style conversion: the text form of a simple object. *)
let rec to_text (o : t) =
  match o.v with
  | Int n -> string_of_int n
  | Real f ->
      let s = Printf.sprintf "%.12g" f in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
      else s ^ ".0"
  | Bool b -> string_of_bool b
  | Str s -> s
  | Name s -> s
  | Op (n, _) -> n
  | Null -> "null"
  | Mark -> "-mark-"
  | Arr _ -> "-array-"
  | Dict _ -> "-dict-"
  | Mem m -> "-memory:" ^ Ldb_amemory.Amemory.name m ^ "-"
  | Loc l -> Fmt.str "-loc:%a-" Ldb_amemory.Amemory.pp_location l
  | File f -> "-file:" ^ f.file_name ^ "-"

(** [==]-style syntactic form, with cycle-safe shallow nesting. *)
and to_syntax ?(depth = 3) (o : t) =
  match o.v with
  | Str s -> "(" ^ String.concat "" (List.map escape_char (List.init (String.length s) (String.get s))) ^ ")"
  | Name s -> if o.exec then s else "/" ^ s
  | Arr elems ->
      if depth = 0 then if o.exec then "{...}" else "[...]"
      else
        let inner =
          Array.to_list elems |> List.map (to_syntax ~depth:(depth - 1)) |> String.concat " "
        in
        if o.exec then "{" ^ inner ^ "}" else "[" ^ inner ^ "]"
  | Dict d ->
      if depth = 0 then "<<...>>"
      else
        let inner =
          Hashtbl.fold
            (fun k v acc -> ("/" ^ k ^ " " ^ to_syntax ~depth:(depth - 1) v) :: acc)
            d.tbl []
          |> List.sort String.compare |> String.concat " "
        in
        "<<" ^ inner ^ ">>"
  | _ -> to_text o

and escape_char c =
  match c with
  | '(' -> "\\("
  | ')' -> "\\)"
  | '\\' -> "\\\\"
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | c when Char.code c < 0x20 || Char.code c >= 0x7f -> Printf.sprintf "\\%03o" (Char.code c)
  | c -> String.make 1 c

(* --- files --------------------------------------------------------------- *)

let file_of_fun name read_char : file =
  { read_char; pushback = None; file_name = name;
    line = 1; col = 1; prev_line = 1; prev_col = 1; tok_line = 1; tok_col = 1 }

let file_of_string name s : file =
  let pos = ref 0 in
  file_of_fun name (fun () ->
      if !pos >= String.length s then None
      else begin
        let c = s.[!pos] in
        incr pos;
        Some c
      end)

let file_getc f =
  let c =
    match f.pushback with
    | Some c ->
        f.pushback <- None;
        Some c
    | None -> f.read_char ()
  in
  (match c with
  | Some c ->
      f.prev_line <- f.line;
      f.prev_col <- f.col;
      if c = '\n' then begin
        f.line <- f.line + 1;
        f.col <- 1
      end
      else f.col <- f.col + 1
  | None -> ());
  c

let file_ungetc f c =
  assert (f.pushback = None);
  f.pushback <- Some c;
  f.line <- f.prev_line;
  f.col <- f.prev_col

(** Position (line, column) where the most recent token started. *)
let file_token_pos f = (f.tok_line, f.tok_col)
