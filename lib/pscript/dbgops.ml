(** The debugging extensions of the dialect (Sec. 2, 4.1, 5): abstract
    memory and location types and their operators.

    Fetch and store operators take an abstract memory and a location;
    locations are built with [Absolute] (offset × space → location),
    shifted with [Shifted], or created as immediates.  These are exactly
    the operations the compiler-emitted printing procedures and the
    expression server's compiled code need. *)

open Value
module A = Ldb_amemory.Amemory

let install (t : Interp.t) =
  let def name f = Interp.register_op t name f in
  let push = Interp.push t in
  let pop_int () = Interp.pop_int t in
  let pop_mem () = Interp.pop_mem t in
  let pop_loc () = Interp.pop_loc t in

  (* ---- locations ---- *)
  def "Absolute" (fun () ->
      (* offset space -> location   (the paper's "30 Regset0 Absolute") *)
      let space = Interp.pop_str t in
      let offset = pop_int () in
      if String.length space <> 1 then err "rangecheck" "Absolute: bad space"
      else push (loc (A.absolute space.[0] offset)));
  def "Shifted" (fun () ->
      (* location delta -> location *)
      let delta = pop_int () in
      match pop_loc () with
      | A.Absolute { space; offset } -> push (loc (A.absolute space (offset + delta)))
      | A.Immediate _ -> err "typecheck" "Shifted: immediate location");
  def "Immediate" (fun () ->
      (* int -> 4-byte immediate location holding it *)
      let v = pop_int () in
      push (loc (A.immediate_i32 (Int32.of_int v))));
  def "ImmediateCell" (fun () ->
      (* width -> zeroed immediate location *)
      let w = pop_int () in
      if w < 1 || w > 16 then err "rangecheck" "ImmediateCell" else push (loc (A.immediate w)));
  def "DataLoc" (fun () ->
      (* address -> location in the data space *)
      push (loc (A.absolute 'd' (pop_int ()))));
  def "CodeLoc" (fun () -> push (loc (A.absolute 'c' (pop_int ()))));
  def "LocOffset" (fun () ->
      match pop_loc () with
      | A.Absolute { offset; _ } -> push (int offset)
      | A.Immediate _ -> err "typecheck" "LocOffset: immediate");
  def "LocSpace" (fun () ->
      match pop_loc () with
      | A.Absolute { space; _ } -> push (str (String.make 1 space))
      | A.Immediate _ -> push (str "i"));

  (* ---- fetches (mem loc -> value) ---- *)
  let fetch name f = def name (fun () ->
      let l = pop_loc () in
      let m = pop_mem () in
      push (f m l))
  in
  fetch "FetchI8" (fun m l -> int (A.fetch_i8 m l));
  fetch "FetchU8" (fun m l -> int (A.fetch_u8 m l));
  fetch "FetchI16" (fun m l -> int (A.fetch_i16 m l));
  fetch "FetchU16" (fun m l -> int (A.fetch_u16 m l));
  fetch "FetchI32" (fun m l -> int (Int32.to_int (A.fetch_i32 m l)));
  fetch "FetchU32" (fun m l ->
      int (Int64.to_int (Int64.logand (Int64.of_int32 (A.fetch_i32 m l)) 0xffffffffL)));
  fetch "FetchF32" (fun m l -> real (A.fetch_f32 m l));
  fetch "FetchF64" (fun m l -> real (A.fetch_f64 m l));
  fetch "FetchF80" (fun m l -> real (A.fetch_f80 m l));
  def "FetchString" (fun () ->
      (* mem loc maxlen -> string: NUL-terminated fetch, byte by byte *)
      let maxlen = pop_int () in
      let l = pop_loc () in
      let m = pop_mem () in
      match l with
      | A.Immediate _ -> err "typecheck" "FetchString: immediate"
      | A.Absolute { space; offset } ->
          let buf = Buffer.create 16 in
          let rec go i =
            if i < maxlen then begin
              let c = A.fetch_u8 m (A.absolute space (offset + i)) in
              if c <> 0 then begin
                Buffer.add_char buf (Char.chr c);
                go (i + 1)
              end
            end
          in
          go 0;
          push (str (Buffer.contents buf)));

  (* ---- stores (mem loc value -> ) ---- *)
  let store name f = def name (fun () ->
      let v = Interp.pop t in
      let l = pop_loc () in
      let m = pop_mem () in
      f m l v)
  in
  store "StoreI8" (fun m l v -> A.store_u8 m l (to_int v land 0xff));
  store "StoreI16" (fun m l v -> A.store_u16 m l (to_int v land 0xffff));
  store "StoreI32" (fun m l v -> A.store_i32 m l (Int32.of_int (to_int v)));
  store "StoreF32" (fun m l v -> A.store_f32 m l (to_float v));
  store "StoreF64" (fun m l v -> A.store_f64 m l (to_float v));
  store "StoreF80" (fun m l v -> A.store_f80 m l (to_float v));

  (* ---- misc ---- *)
  def "hexstr" (fun () ->
      let v = pop_int () in
      push (str (Printf.sprintf "0x%x" v)));
  def "DeclSubst" (fun () ->
      (* template name -> declaration: substitute the %s hole of a /decl
         string (e.g. "int %s[20]" (i) -> "int i[20]") *)
      let name = Interp.pop_str t in
      let tpl = Interp.pop_str t in
      let out =
        match String.index_opt tpl '%' with
        | Some i when i + 1 < String.length tpl && tpl.[i + 1] = 's' ->
            String.sub tpl 0 i ^ name ^ String.sub tpl (i + 2) (String.length tpl - i - 2)
        | _ -> tpl ^ " " ^ name
      in
      push (str out));
  def "concatstr" (fun () ->
      (* s1 s2 -> s1s2 : strings are immutable, so concatenation builds a
         fresh string *)
      let b = Interp.pop_str t in
      let a = Interp.pop_str t in
      push (str (a ^ b)));
  def "LocalMemory" (fun () ->
      (* testing convenience: a fresh local abstract memory *)
      push (mem (A.local ())))
