(** Facade: create a fully equipped interpreter (standard operators,
    debugging extensions, shared prelude). *)

let create () =
  let t = Interp.create_raw () in
  Ops.install t;
  Dbgops.install t;
  Interp.register_op t "charstr" (fun () ->
      let c = Interp.pop_int t in
      Interp.push t (Value.str (String.make 1 (Char.chr (c land 0xff)))));
  Interp.run_string t Prelude.source;
  t

(** Create without the prelude — used by the startup-phase benchmark to
    time "read initial PostScript" separately. *)
let create_bare () =
  let t = Interp.create_raw () in
  Ops.install t;
  Dbgops.install t;
  Interp.register_op t "charstr" (fun () ->
      let c = Interp.pop_int t in
      Interp.push t (Value.str (String.make 1 (Char.chr (c land 0xff)))));
  t

let load_prelude t = Interp.run_string t Prelude.source
