(** The standard operator set of the dialect.

    Font and imaging operators are omitted; [save]/[restore] are omitted
    (the host garbage collector reclaims memory); strings are immutable so
    there is no [putinterval] and no substring operators. *)

open Value

let install (t : Interp.t) =
  let def name f = Interp.register_op t name f in
  let push = Interp.push t in
  let pop () = Interp.pop t in
  let pop_int () = Interp.pop_int t in
  let pop_bool () = Interp.pop_bool t in

  (* ---- operand stack ---- *)
  def "pop" (fun () -> ignore (pop ()));
  def "exch" (fun () ->
      let b = pop () and a = pop () in
      push b;
      push a);
  def "dup" (fun () ->
      let a = Interp.peek t in
      push a);
  def "copy" (fun () ->
      (* n copy, or composite copy is not supported (immutability) *)
      let n = pop_int () in
      if n < 0 then err "rangecheck" "copy"
      else if n > 0 then begin
        let rec take k stk = if k = 0 then [] else
          match stk with [] -> err "stackunderflow" "copy" | v :: r -> v :: take (k - 1) r
        in
        let top = take n t.Interp.ostack in
        List.iter push (List.rev top)
      end);
  def "index" (fun () ->
      let n = pop_int () in
      let rec nth k = function
        | [] -> err "stackunderflow" "index"
        | v :: r -> if k = 0 then v else nth (k - 1) r
      in
      if n < 0 then err "rangecheck" "index" else push (nth n t.Interp.ostack));
  def "roll" (fun () ->
      let j = pop_int () in
      let n = pop_int () in
      if n < 0 then err "rangecheck" "roll"
      else if n = 0 then
        (* n = 0 is an explicit no-op per the spec: any j (including
           negative) is legal and the stack is untouched *)
        ()
      else begin
        let rec take k stk acc =
          if k = 0 then (acc, stk)
          else
            match stk with
            | [] -> err "stackunderflow" "roll"
            | v :: r -> take (k - 1) r (v :: acc)
        in
        let top_rev, rest = take n t.Interp.ostack [] in
        (* top_rev is bottom-to-top of the rolled region *)
        let arr = Array.of_list top_rev in
        let rolled = Array.make n arr.(0) in
        for i = 0 to n - 1 do
          rolled.(((i + j) mod n + n) mod n) <- arr.(i)
        done;
        t.Interp.ostack <- List.rev_append (Array.to_list rolled) rest
      end);
  def "clear" (fun () -> t.Interp.ostack <- []);
  def "count" (fun () -> push (int (Interp.depth t)));
  def "mark" (fun () -> push mark);
  def "cleartomark" (fun () ->
      let rec go () =
        match (pop ()).v with Mark -> () | _ -> go ()
      in
      go ());
  def "counttomark" (fun () ->
      let rec go n = function
        | [] -> err "unmatchedmark" "counttomark"
        | (v : Value.t) :: r -> ( match v.v with Mark -> n | _ -> go (n + 1) r)
      in
      push (int (go 0 t.Interp.ostack)));

  (* ---- arithmetic ---- *)
  let arith2 name fi ff =
    def name (fun () ->
        let b = pop () and a = pop () in
        match (a.v, b.v) with
        | Int x, Int y -> push (int (fi x y))
        | _ -> push (real (ff (to_float a) (to_float b))))
  in
  arith2 "add" ( + ) ( +. );
  arith2 "sub" ( - ) ( -. );
  arith2 "mul" ( * ) ( *. );
  def "div" (fun () ->
      let b = Interp.pop_float t and a = Interp.pop_float t in
      push (real (a /. b)));
  def "idiv" (fun () ->
      let b = pop_int () and a = pop_int () in
      if b = 0 then err "undefinedresult" "idiv" else push (int (a / b)));
  def "mod" (fun () ->
      let b = pop_int () and a = pop_int () in
      if b = 0 then err "undefinedresult" "mod" else push (int (a mod b)));
  def "neg" (fun () ->
      let a = pop () in
      match a.v with Int x -> push (int (-x)) | _ -> push (real (-.to_float a)));
  def "abs" (fun () ->
      let a = pop () in
      match a.v with Int x -> push (int (abs x)) | _ -> push (real (abs_float (to_float a))));
  def "max" (fun () ->
      let b = pop () and a = pop () in
      match (a.v, b.v) with
      | Int x, Int y -> push (int (max x y))
      | _ -> push (real (Float.max (to_float a) (to_float b))));
  def "min" (fun () ->
      let b = pop () and a = pop () in
      match (a.v, b.v) with
      | Int x, Int y -> push (int (min x y))
      | _ -> push (real (Float.min (to_float a) (to_float b))));
  def "ceiling" (fun () ->
      let a = pop () in
      match a.v with Int _ -> push a | _ -> push (real (ceil (to_float a))));
  def "floor" (fun () ->
      let a = pop () in
      match a.v with Int _ -> push a | _ -> push (real (floor (to_float a))));
  def "round" (fun () ->
      let a = pop () in
      match a.v with Int _ -> push a | _ -> push (real (Float.round (to_float a))));
  def "truncate" (fun () ->
      let a = pop () in
      match a.v with Int _ -> push a | _ -> push (real (Float.trunc (to_float a))));
  def "sqrt" (fun () -> push (real (sqrt (Interp.pop_float t))));
  def "exp" (fun () ->
      let e = Interp.pop_float t and b = Interp.pop_float t in
      push (real (Float.pow b e)));
  def "ln" (fun () -> push (real (log (Interp.pop_float t))));
  def "log" (fun () -> push (real (log10 (Interp.pop_float t))));
  def "sin" (fun () -> push (real (sin (Interp.pop_float t *. Float.pi /. 180.))));
  def "cos" (fun () -> push (real (cos (Interp.pop_float t *. Float.pi /. 180.))));
  def "atan" (fun () ->
      let den = Interp.pop_float t and num = Interp.pop_float t in
      let d = atan2 num den *. 180. /. Float.pi in
      push (real (if d < 0. then d +. 360. else d)));
  def "bitshift" (fun () ->
      let s = pop_int () and v = pop_int () in
      push (int (if s >= 0 then v lsl s else v asr -s)));

  (* ---- comparison and logic ---- *)
  def "eq" (fun () ->
      let b = pop () and a = pop () in
      push (bool (equal a b)));
  def "ne" (fun () ->
      let b = pop () and a = pop () in
      push (bool (not (equal a b))));
  let cmp name f =
    def name (fun () ->
        let b = pop () and a = pop () in
        match (a.v, b.v) with
        | (Int _ | Real _), (Int _ | Real _) -> push (bool (f (compare (to_float a) (to_float b)) 0))
        | (Str x | Name x), (Str y | Name y) -> push (bool (f (String.compare x y) 0))
        | _ -> err "typecheck" name)
  in
  cmp "gt" ( > );
  cmp "ge" ( >= );
  cmp "lt" ( < );
  cmp "le" ( <= );
  def "and" (fun () ->
      let b = pop () and a = pop () in
      match (a.v, b.v) with
      | Bool x, Bool y -> push (bool (x && y))
      | Int x, Int y -> push (int (x land y))
      | _ -> err "typecheck" "and");
  def "or" (fun () ->
      let b = pop () and a = pop () in
      match (a.v, b.v) with
      | Bool x, Bool y -> push (bool (x || y))
      | Int x, Int y -> push (int (x lor y))
      | _ -> err "typecheck" "or");
  def "xor" (fun () ->
      let b = pop () and a = pop () in
      match (a.v, b.v) with
      | Bool x, Bool y -> push (bool (x <> y))
      | Int x, Int y -> push (int (x lxor y))
      | _ -> err "typecheck" "xor");
  def "not" (fun () ->
      let a = pop () in
      match a.v with
      | Bool x -> push (bool (not x))
      | Int x -> push (int (lnot x))
      | _ -> err "typecheck" "not");
  Interp.register t "true" (bool true);
  Interp.register t "false" (bool false);
  Interp.register t "null" null;

  (* ---- control ---- *)
  def "exec" (fun () -> Interp.exec_value t (pop ()));
  def "if" (fun () ->
      let p = pop () in
      let c = pop_bool () in
      if c then Interp.exec_value t p);
  def "ifelse" (fun () ->
      let p2 = pop () in
      let p1 = pop () in
      let c = pop_bool () in
      Interp.exec_value t (if c then p1 else p2));
  def "for" (fun () ->
      let p = pop () in
      let limit = Interp.pop_float t in
      let step = Interp.pop_float t in
      let start = Interp.pop_float t in
      let integral = Float.is_integer start && Float.is_integer step in
      (try
         let i = ref start in
         while (step >= 0. && !i <= limit) || (step < 0. && !i >= limit) do
           push (if integral then int (int_of_float !i) else real !i);
           Interp.exec_value t p;
           i := !i +. step
         done
       with Interp.Exit_loop -> ()));
  def "repeat" (fun () ->
      let p = pop () in
      let n = pop_int () in
      if n < 0 then err "rangecheck" "repeat";
      try
        for _ = 1 to n do
          Interp.exec_value t p
        done
      with Interp.Exit_loop -> ());
  def "loop" (fun () ->
      let p = pop () in
      try
        while true do
          Interp.exec_value t p
        done
      with Interp.Exit_loop -> ());
  def "exit" (fun () -> raise Interp.Exit_loop);
  def "stop" (fun () -> raise Interp.Stop);
  def "stopped" (fun () ->
      let p = pop () in
      match Interp.exec_value t p with
      | () -> push (bool false)
      | exception Interp.Stop -> push (bool true));
  def "quit" (fun () -> raise Interp.Quit);
  def "forall" (fun () ->
      let p = pop () in
      let o = pop () in
      try
        match o.v with
        | Arr a -> Array.iter (fun v -> push v; Interp.exec_value t p) a
        | Str s ->
            String.iter (fun c -> push (int (Char.code c)); Interp.exec_value t p) s
        | Dict d ->
            let pairs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) d.tbl [] in
            let pairs = List.sort (fun (a, _) (b, _) -> String.compare a b) pairs in
            List.iter
              (fun (k, v) ->
                push (name_lit k);
                push v;
                Interp.exec_value t p)
              pairs
        | _ -> err "typecheck" "forall"
      with Interp.Exit_loop -> ());

  (* ---- dictionaries ---- *)
  def "dict" (fun () ->
      ignore (pop_int ());
      push (dict (dict_create ())));
  def "<<" (fun () -> push mark);
  def ">>" (fun () ->
      let d = dict_create () in
      let rec go acc =
        let v = pop () in
        match v.v with
        | Mark ->
            (match acc with
            | [] -> ()
            | _ ->
                let rec pairs = function
                  | k :: v :: rest ->
                      dict_put d (key_of k) v;
                      pairs rest
                  | [] -> ()
                  | _ -> err "rangecheck" ">>: odd number of operands"
                in
                pairs acc)
        | _ -> go (v :: acc)
      in
      go [];
      push (dict d));
  def "begin" (fun () -> Interp.begin_dict t (Interp.pop_dict t));
  def "end" (fun () -> Interp.end_dict t);
  def "def" (fun () ->
      let v = pop () in
      let k = pop () in
      Interp.define t (key_of k) v);
  def "load" (fun () ->
      let k = key_of (pop ()) in
      push (Interp.lookup_exn t k));
  def "store" (fun () ->
      let v = pop () in
      let k = key_of (pop ()) in
      (* replace in the topmost dict that defines k, else define here *)
      let rec go = function
        | [] -> Interp.define t k v
        | d :: rest -> if dict_mem d k then dict_put d k v else go rest
      in
      go t.Interp.dstack);
  def "known" (fun () ->
      let k = key_of (pop ()) in
      let d = Interp.pop_dict t in
      push (bool (dict_mem d k)));
  def "where" (fun () ->
      let k = key_of (pop ()) in
      let rec go = function
        | [] -> push (bool false)
        | d :: rest ->
            if dict_mem d k then begin
              push (dict d);
              push (bool true)
            end
            else go rest
      in
      go t.Interp.dstack);
  def "currentdict" (fun () -> push (dict (Interp.current_dict t)));
  def "countdictstack" (fun () -> push (int (List.length t.Interp.dstack)));
  def "undef" (fun () ->
      let k = key_of (pop ()) in
      let d = Interp.pop_dict t in
      Hashtbl.remove d.tbl k);

  (* ---- polymorphic get/put/length ---- *)
  def "get" (fun () ->
      let k = pop () in
      let o = pop () in
      match o.v with
      | Dict d -> (
          match dict_get d (key_of k) with
          | Some v -> push v
          | None -> err "undefined" (key_of k))
      | Arr a ->
          let i = to_int k in
          if i < 0 || i >= Array.length a then err "rangecheck" "get" else push a.(i)
      | Str s ->
          let i = to_int k in
          if i < 0 || i >= String.length s then err "rangecheck" "get"
          else push (int (Char.code s.[i]))
      | _ -> err "typecheck" "get");
  def "put" (fun () ->
      let v = pop () in
      let k = pop () in
      let o = pop () in
      match o.v with
      | Dict d -> dict_put d (key_of k) v
      | Arr a ->
          let i = to_int k in
          if i < 0 || i >= Array.length a then err "rangecheck" "put" else a.(i) <- v
      | Str _ -> err "invalidaccess" "strings are immutable in this dialect"
      | _ -> err "typecheck" "put");
  def "length" (fun () ->
      let o = pop () in
      match o.v with
      | Dict d -> push (int (dict_len d))
      | Arr a -> push (int (Array.length a))
      | Str s | Name s -> push (int (String.length s))
      | _ -> err "typecheck" "length");

  (* ---- arrays ---- *)
  def "array" (fun () ->
      let n = pop_int () in
      if n < 0 then err "rangecheck" "array" else push (arr (Array.make n null)));
  def "[" (fun () -> push mark);
  def "]" (fun () ->
      let rec go acc =
        let v = pop () in
        match v.v with Mark -> acc | _ -> go (v :: acc)
      in
      push (arr (Array.of_list (go []))));
  def "aload" (fun () ->
      let o = pop () in
      let a = to_arr o in
      Array.iter push a;
      push o);
  def "astore" (fun () ->
      let o = pop () in
      let a = to_arr o in
      for i = Array.length a - 1 downto 0 do
        a.(i) <- pop ()
      done;
      push o);

  (* ---- conversions and type queries ---- *)
  def "type" (fun () -> push (name_exec (type_name (pop ()))));
  def "cvi" (fun () ->
      let o = pop () in
      match o.v with
      | Int _ -> push o
      | Real f -> push (int (int_of_float (Float.trunc f)))
      | Str s -> (
          match int_of_string_opt (String.trim s) with
          | Some n -> push (int n)
          | None -> err "typecheck" "cvi")
      | _ -> err "typecheck" "cvi");
  def "cvr" (fun () ->
      let o = pop () in
      match o.v with
      | Real _ -> push o
      | Int n -> push (real (float_of_int n))
      | Str s -> (
          match float_of_string_opt (String.trim s) with
          | Some f -> push (real f)
          | None -> err "typecheck" "cvr")
      | _ -> err "typecheck" "cvr");
  def "cvn" (fun () ->
      let o = pop () in
      push { v = Name (to_str o); exec = o.exec });
  def "cvs" (fun () -> push (str (to_text (pop ()))));
  def "cvx" (fun () -> push (cvx (pop ())));
  def "cvlit" (fun () -> push (cvlit (pop ())));
  def "xcheck" (fun () -> push (bool (pop ()).exec));

  (* ---- output ---- *)
  def "print" (fun () -> Buffer.add_string t.Interp.out (Interp.pop_str t));
  def "SysPrint" (fun () -> Buffer.add_string t.Interp.out (Interp.pop_str t));
  def "=" (fun () ->
      Buffer.add_string t.Interp.out (to_text (pop ()));
      Buffer.add_char t.Interp.out '\n');
  def "==" (fun () ->
      Buffer.add_string t.Interp.out (to_syntax (pop ()));
      Buffer.add_char t.Interp.out '\n');
  def "pstack" (fun () ->
      List.iter
        (fun v ->
          Buffer.add_string t.Interp.out (to_syntax v);
          Buffer.add_char t.Interp.out '\n')
        t.Interp.ostack);
  def "flush" (fun () -> ());

  (* ---- the prettyprinter interface (Sec. 5) ---- *)
  def "Put" (fun () -> Pp.put t.Interp.pp (Interp.pop_str t));
  def "Break" (fun () -> Pp.break t.Interp.pp (pop_int ()));
  def "Begin" (fun () -> Pp.begin_group t.Interp.pp (pop_int ()));
  def "End" (fun () -> Pp.end_group t.Interp.pp);
  def "Newline" (fun () -> Pp.newline t.Interp.pp);
  def "PPWidth" (fun () -> Pp.set_width t.Interp.pp (pop_int ()));
  ()
