(** Abstract memories (Sec. 4.1): a machine-independent representation of
    the registers and memory of a target process.

    An abstract memory is a collection of {e spaces}, denoted by lower-case
    letters ('c' code, 'd' data, 'r' registers, 'f' floating registers,
    'x' extra registers); a location is a space plus an integer offset, or
    an {e immediate} — a self-contained cell holding its own bytes.

    Values cross this interface in a canonical little-endian byte order
    (matching the nub protocol); 80-bit floats travel in the packed m68k
    format, the only format that produces them.

    The debugger composes instances into a DAG per stack frame:

    - {e wire}: forwards fetch/store to the nub in the target process;
    - {e alias}: translates register-space locations into code/data-space
      (or immediate) locations where the registers were saved;
    - {e register}: turns sub-register accesses into full-register accesses
      so that target byte order becomes irrelevant;
    - {e joined}: routes each space to the memory serving it.

    Machine-independent code manipulates machine-dependent data — the alias
    tables — so none of this code depends on the architecture it runs on,
    and cross-architecture debugging is free. *)

open Ldb_util

exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type location =
  | Absolute of { space : char; offset : int }
  | Immediate of Bytes.t

let absolute space offset = Absolute { space; offset }

(** A fresh immediate cell of [width] bytes, initially zero. *)
let immediate width = Immediate (Bytes.make width '\000')

let immediate_i32 (v : int32) =
  let b = Bytes.make 4 '\000' in
  Endian.set_u32 Little b 0 v;
  Immediate b

let pp_location ppf = function
  | Absolute { space; offset } -> Fmt.pf ppf "%c:%#x" space offset
  | Immediate b -> Fmt.pf ppf "imm/%d" (Bytes.length b)

type t = {
  name : string;
  fetch_abs : space:char -> offset:int -> size:int -> string;
  store_abs : space:char -> offset:int -> bytes_:string -> unit;
}

let name m = m.name

(** Fetch [size] bytes.  Immediate locations are served from their own
    cell, in any memory. *)
let fetch m loc ~size =
  match loc with
  | Immediate cell ->
      if size > Bytes.length cell then
        fail "immediate fetch of %d bytes from %d-byte cell" size (Bytes.length cell)
      else Bytes.sub_string cell 0 size
  | Absolute { space; offset } -> m.fetch_abs ~space ~offset ~size

let store m loc (bytes_ : string) =
  match loc with
  | Immediate cell ->
      if String.length bytes_ > Bytes.length cell then
        fail "immediate store of %d bytes into %d-byte cell" (String.length bytes_)
          (Bytes.length cell)
      else Bytes.blit_string bytes_ 0 cell 0 (String.length bytes_)
  | Absolute { space; offset } -> m.store_abs ~space ~offset ~bytes_

(* --- typed accessors (canonical little-endian) ------------------------- *)

let decode_int s =
  let v = ref 0 in
  for i = String.length s - 1 downto 0 do
    v := (!v lsl 8) lor Char.code s.[i]
  done;
  !v

let encode_int v n = String.init n (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let fetch_u8 m loc = decode_int (fetch m loc ~size:1)
let fetch_i8 m loc = Endian.sext (fetch_u8 m loc) 8
let fetch_u16 m loc = decode_int (fetch m loc ~size:2)
let fetch_i16 m loc = Endian.sext (fetch_u16 m loc) 16

let fetch_i32 m loc : int32 =
  Endian.get_u32 Little (Bytes.of_string (fetch m loc ~size:4)) 0

let store_u8 m loc v = store m loc (encode_int v 1)
let store_u16 m loc v = store m loc (encode_int v 2)

let store_i32 m loc (v : int32) =
  let b = Bytes.create 4 in
  Endian.set_u32 Little b 0 v;
  store m loc (Bytes.to_string b)

let fetch_f32 m loc =
  Int32.float_of_bits (Endian.get_u32 Little (Bytes.of_string (fetch m loc ~size:4)) 0)

let fetch_f64 m loc =
  Int64.float_of_bits (Endian.get_u64 Little (Bytes.of_string (fetch m loc ~size:8)) 0)

let fetch_f80 m loc = Ldb_machine.Float80.of_bytes (fetch m loc ~size:10)

let store_f32 m loc v =
  let b = Bytes.create 4 in
  Endian.set_u32 Little b 0 (Int32.bits_of_float v);
  store m loc (Bytes.to_string b)

let store_f64 m loc v =
  let b = Bytes.create 8 in
  Endian.set_u64 Little b 0 (Int64.bits_of_float v);
  store m loc (Bytes.to_string b)

let store_f80 m loc v = store m loc (Ldb_machine.Float80.to_bytes v)

(** Fetch a floating value of 4, 8, or 10 bytes. *)
let fetch_float m loc ~size =
  match size with
  | 4 -> fetch_f32 m loc
  | 8 -> fetch_f64 m loc
  | 10 -> fetch_f80 m loc
  | n -> fail "fetch_float: bad size %d" n

let store_float m loc ~size v =
  match size with
  | 4 -> store_f32 m loc v
  | 8 -> store_f64 m loc v
  | 10 -> store_f80 m loc v
  | n -> fail "store_float: bad size %d" n

(* --- the wire ----------------------------------------------------------- *)

(** An abstract memory that forwards fetch and store requests to a nub
    through [rpc] — any transport that turns a request into a reply (the
    resilient retrying transport in ldb, or the bare framed channel of
    {!wire}). *)
let rpc_wire ?(name = "wire") (rpc : Ldb_nub.Proto.request -> Ldb_nub.Proto.reply) : t =
  {
    name;
    fetch_abs =
      (fun ~space ~offset ~size ->
        match rpc (Ldb_nub.Proto.Fetch { space; addr = offset; size }) with
        | Ldb_nub.Proto.Fetched bytes -> bytes
        | Ldb_nub.Proto.Nub_error m -> fail "wire fetch %c:%#x: %s" space offset m
        | _ -> fail "wire fetch %c:%#x: protocol confusion" space offset);
    store_abs =
      (fun ~space ~offset ~bytes_ ->
        match rpc (Ldb_nub.Proto.Store { space; addr = offset; bytes = bytes_ }) with
        | Ldb_nub.Proto.Stored -> ()
        | Ldb_nub.Proto.Nub_error m -> fail "wire store %c:%#x: %s" space offset m
        | _ -> fail "wire store %c:%#x: protocol confusion" space offset);
  }

(** An abstract memory holding a direct connection to the nub: requests
    travel as checksummed frames, one request per reply, with no retry
    policy (ldb's {e transport} layers retry and reattach on top via
    {!rpc_wire}). *)
let wire (ep : Ldb_nub.Chan.endpoint) : t =
  let seq = ref 0 in
  let rpc req =
    incr seq;
    Ldb_nub.Frame.send ep ~seq:!seq (Ldb_nub.Proto.encode_request req);
    let rec await () =
      match Ldb_nub.Frame.recv ep with
      | Ok f when f.Ldb_nub.Frame.fr_seq = !seq -> (
          match Ldb_nub.Proto.decode_reply f.Ldb_nub.Frame.fr_payload with
          | Ok r -> r
          | Error m -> fail "wire: bad reply: %s" m)
      | Ok _ -> await () (* stale duplicate *)
      | Error m -> fail "wire: corrupt frame: %s" m
    in
    await ()
  in
  rpc_wire rpc

(* --- alias memory ------------------------------------------------------- *)

(** [alias ~table under]: requests for locations present in [table] are
    redirected to the location the table records (where the register was
    saved — on the stack, in the context, or an immediate); all other
    requests pass through unchanged.

    The table is machine-dependent {e data}; this code is shared by all
    targets. *)
let alias ~(table : (char * int, location) Hashtbl.t) (under : t) : t =
  {
    name = "alias";
    fetch_abs =
      (fun ~space ~offset ~size ->
        match Hashtbl.find_opt table (space, offset) with
        | Some (Immediate cell) ->
            if size > Bytes.length cell then
              fail "alias: %d-byte fetch from %d-byte immediate" size (Bytes.length cell)
            else Bytes.sub_string cell 0 size
        | Some (Absolute { space; offset }) -> under.fetch_abs ~space ~offset ~size
        | None -> under.fetch_abs ~space ~offset ~size);
    store_abs =
      (fun ~space ~offset ~bytes_ ->
        match Hashtbl.find_opt table (space, offset) with
        | Some (Immediate cell) -> Bytes.blit_string bytes_ 0 cell 0 (String.length bytes_)
        | Some (Absolute { space; offset }) -> under.store_abs ~space ~offset ~bytes_
        | None -> under.store_abs ~space ~offset ~bytes_);
  }

(* --- register memory ----------------------------------------------------- *)

type reg_kind = Int_reg of int  (** width in bytes *) | Float_reg of int

(** [register ~spaces under] makes byte order irrelevant for register
    accesses: a fetch or store smaller than the register is widened to a
    full-register operation on the underlying memory, and the requested
    bytes are carved out of the canonical little-endian value — so the
    least significant byte of a register is the same abstract operation on
    a big-endian SIM-MIPS and a little-endian SIM-VAX.

    Float registers additionally convert between the stored width and the
    requested width (4, 8, or 10 bytes), covering the SIM-68020's 80-bit
    extended registers. *)
let register ~(spaces : (char * reg_kind) list) (under : t) : t =
  let kind space = List.assoc_opt space spaces in
  let float_of_bytes s =
    match String.length s with
    | 4 -> Int32.float_of_bits (Endian.get_u32 Little (Bytes.of_string s) 0)
    | 8 -> Int64.float_of_bits (Endian.get_u64 Little (Bytes.of_string s) 0)
    | 10 -> Ldb_machine.Float80.of_bytes s
    | n -> fail "register: bad float width %d" n
  in
  let bytes_of_float v n =
    match n with
    | 4 ->
        let b = Bytes.create 4 in
        Endian.set_u32 Little b 0 (Int32.bits_of_float v);
        Bytes.to_string b
    | 8 ->
        let b = Bytes.create 8 in
        Endian.set_u64 Little b 0 (Int64.bits_of_float v);
        Bytes.to_string b
    | 10 -> Ldb_machine.Float80.to_bytes v
    | n -> fail "register: bad float width %d" n
  in
  {
    name = "register";
    fetch_abs =
      (fun ~space ~offset ~size ->
        match kind space with
        | None -> under.fetch_abs ~space ~offset ~size
        | Some (Int_reg w) ->
            if size = w then under.fetch_abs ~space ~offset ~size
            else if size < w then
              (* full-word fetch, then the least significant bytes *)
              String.sub (under.fetch_abs ~space ~offset ~size:w) 0 size
            else fail "register: %d-byte fetch from %d-byte register" size w
        | Some (Float_reg w) ->
            if size = w then under.fetch_abs ~space ~offset ~size
            else
              let v = float_of_bytes (under.fetch_abs ~space ~offset ~size:w) in
              bytes_of_float v size);
    store_abs =
      (fun ~space ~offset ~bytes_ ->
        let size = String.length bytes_ in
        match kind space with
        | None -> under.store_abs ~space ~offset ~bytes_
        | Some (Int_reg w) ->
            if size = w then under.store_abs ~space ~offset ~bytes_
            else if size < w then begin
              let whole = Bytes.of_string (under.fetch_abs ~space ~offset ~size:w) in
              Bytes.blit_string bytes_ 0 whole 0 size;
              under.store_abs ~space ~offset ~bytes_:(Bytes.to_string whole)
            end
            else fail "register: %d-byte store into %d-byte register" size w
        | Some (Float_reg w) ->
            if size = w then under.store_abs ~space ~offset ~bytes_
            else
              let v = float_of_bytes bytes_ in
              under.store_abs ~space ~offset ~bytes_:(bytes_of_float v w));
  }

(* --- joined memory ------------------------------------------------------ *)

(** [joined ~routes ~default] routes each request to the memory serving its
    space.  This is the instance presented to the rest of the debugger as
    {e the} abstract memory for a stack frame. *)
let joined ~(routes : (char * t) list) ~(default : t) : t =
  let pick space = match List.assoc_opt space routes with Some m -> m | None -> default in
  {
    name = "joined";
    fetch_abs = (fun ~space ~offset ~size -> (pick space).fetch_abs ~space ~offset ~size);
    store_abs = (fun ~space ~offset ~bytes_ -> (pick space).store_abs ~space ~offset ~bytes_);
  }

(* --- local memory (testing and the expression server) ------------------- *)

(** An abstract memory backed by a plain byte array: every space maps onto
    one flat store.  Used by unit tests and for interpreting code out of
    line. *)
let local ?(size = 0x10000) () : t =
  let store_ = Bytes.make size '\000' in
  {
    name = "local";
    fetch_abs =
      (fun ~space:_ ~offset ~size ->
        if offset < 0 || offset + size > Bytes.length store_ then fail "local: fault %#x" offset
        else Bytes.sub_string store_ offset size);
    store_abs =
      (fun ~space:_ ~offset ~bytes_ ->
        if offset < 0 || offset + String.length bytes_ > Bytes.length store_ then
          fail "local: fault %#x" offset
        else Bytes.blit_string bytes_ 0 store_ offset (String.length bytes_));
  }

(** A tracing wrapper used by tests to observe request routing through the
    DAG. *)
let traced ~(log : string -> unit) (inner : t) : t =
  {
    name = "traced:" ^ inner.name;
    fetch_abs =
      (fun ~space ~offset ~size ->
        log (Fmt.str "fetch %s %c:%#x/%d" inner.name space offset size);
        inner.fetch_abs ~space ~offset ~size);
    store_abs =
      (fun ~space ~offset ~bytes_ ->
        log (Fmt.str "store %s %c:%#x/%d" inner.name space offset (String.length bytes_));
        inner.store_abs ~space ~offset ~bytes_);
  }
