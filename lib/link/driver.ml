(** The compiler driver's link-time step (Sec. 3): after linking, run the
    [nm] equivalent over the program and generate PostScript that, when
    interpreted, builds the {e loader table} — a dictionary holding the
    program's top-level symbol-table dictionary, the anchor map, and the
    procedure table.

    The generated text is everything the debugger reads for a program:
    the (possibly deferred) per-unit symbol-table bodies, then the
    top-level dictionary merging all units, then the loader table. *)

open Ldb_cc

let pstr s = "(" ^ Psemit.ps_escape s ^ ")"

let unit_tag_of name =
  String.map (fun c -> if c = '.' || c = '/' || c = '-' then '_' else c) name

(** Generate the full PostScript text for a linked image. *)
let loader_table_ps (img : Link.image) : string =
  let buf = Buffer.create 8192 in
  let arch = Ldb_machine.Arch.name img.Link.i_arch in
  (* unit symbol-table bodies (deferred strings or procedures) *)
  List.iter (fun (p : Asm.ps_pieces) -> Buffer.add_string buf p.Asm.pp_defs) img.Link.i_ps;
  (* top-level dictionary: units merged *)
  let anchors =
    List.concat_map (fun (p : Asm.ps_pieces) -> p.Asm.pp_anchors) img.Link.i_ps
  in
  Buffer.add_string buf "/__symtab <<\n";
  Buffer.add_string buf (Printf.sprintf "  /architecture %s\n" (pstr arch));
  Buffer.add_string buf
    (Printf.sprintf "  /anchors [ %s ]\n"
       (String.concat " " (List.map (fun a -> "/" ^ a) anchors)));
  (* unit bodies, keyed by source file name, forced on demand.  Each entry
     also carries the demand hints psemit computed: the procedures the unit
     defines (names and linker labels), the source-line range of its
     stopping points, and the body's transfer encoding — the indexes that
     let the debugger force exactly the units a query needs. *)
  Buffer.add_string buf "  /units <<\n";
  List.iter
    (fun (p : Asm.ps_pieces) ->
      List.iter
        (fun (file, _) ->
          let tag = unit_tag_of file in
          Buffer.add_string buf
            (* load, don't execute: the eager form is an executable procedure *)
            (Printf.sprintf "    %s << /body /UNITBODY$%s load cvlit /tag %s\n" (pstr file)
               tag (pstr tag));
          Buffer.add_string buf
            (Printf.sprintf "      /names [ %s ]\n"
               (String.concat " " (List.map (fun (n, _) -> pstr n) p.Asm.pp_funcs)));
          Buffer.add_string buf
            (Printf.sprintf "      /labels [ %s ]\n"
               (String.concat " " (List.map (fun (_, l) -> pstr l) p.Asm.pp_funcs)));
          (match p.Asm.pp_lines with
          | Some (lo, hi) ->
              Buffer.add_string buf (Printf.sprintf "      /minline %d /maxline %d\n" lo hi)
          | None -> ());
          (match p.Asm.pp_encoding with
          | Some enc -> Buffer.add_string buf (Printf.sprintf "      /encoding %s\n" (pstr enc))
          | None -> ());
          Buffer.add_string buf "    >>\n")
        p.Asm.pp_sourcemap)
    img.Link.i_ps;
  Buffer.add_string buf "  >>\n";
  Buffer.add_string buf ">> def\n";
  (* the loader table proper, built from nm output *)
  let nm_entries = Nm.run img in
  Buffer.add_string buf "/__loader <<\n";
  Buffer.add_string buf "  /symtab __symtab\n";
  Buffer.add_string buf "  /anchormap <<\n";
  List.iter
    (fun (e : Nm.entry) ->
      if Nm.is_anchor e.Nm.name then
        Buffer.add_string buf (Printf.sprintf "    /%s 16#%08x\n" e.Nm.name e.Nm.addr))
    nm_entries;
  Buffer.add_string buf "  >>\n";
  Buffer.add_string buf "  /proctable [\n";
  List.iter
    (fun (e : Nm.entry) ->
      if Nm.is_text e && not (Nm.is_anchor e.Nm.name) then
        Buffer.add_string buf (Printf.sprintf "    16#%08x %s\n" e.Nm.addr (pstr e.Nm.name)))
    nm_entries;
  Buffer.add_string buf "  ]\n";
  (* globals: every data symbol, so GlobalLoc can resolve extern variables *)
  Buffer.add_string buf "  /globalmap <<\n";
  List.iter
    (fun (e : Nm.entry) ->
      if not (Nm.is_anchor e.Nm.name) then
        Buffer.add_string buf (Printf.sprintf "    %s 16#%08x\n" (pstr e.Nm.name) e.Nm.addr))
    nm_entries;
  Buffer.add_string buf "  >>\n";
  Buffer.add_string buf ">> def\n";
  Buffer.contents buf

(* --- post-link artifact verification (dbgcheck) ----------------------------- *)

(** How [build] treats dbgcheck findings: [`Fail] raises [Link.Error],
    [`Warn] records them in [dbgcheck_warnings], [`Off] (the default; the
    CLI and the [@lint] alias run the checker explicitly) skips the pass. *)
let dbgcheck_mode : [ `Fail | `Warn | `Off ] ref = ref `Off

(** The checker itself, installed by [Dbgcheck.install] — a hook, so this
    library does not depend on the checker (which reads images through the
    debugger's PostScript machinery, layered above us). *)
let dbgcheck_hook : (Link.image -> string -> string list) option ref = ref None

let dbgcheck_warnings : string list ref = ref []
let dbgcheck_warning_cap = 1000

let run_dbgcheck (img : Link.image) (loader_ps : string) =
  match (!dbgcheck_mode, !dbgcheck_hook) with
  | `Off, _ | _, None -> ()
  | mode, Some hook -> (
      let findings =
        (* in [`Warn] the checker must never break the build *)
        try hook img loader_ps
        with e when mode = `Warn -> [ "dbgcheck itself failed: " ^ Printexc.to_string e ]
      in
      match findings with
      | [] -> ()
      | fs when mode = `Fail ->
          raise (Link.Error (Printf.sprintf "dbgcheck:\n%s" (String.concat "\n" fs)))
      | fs ->
          if List.length !dbgcheck_warnings < dbgcheck_warning_cap then
            dbgcheck_warnings := !dbgcheck_warnings @ fs)

(** Compile several C sources and link them, returning the image and the
    loader-table PostScript. *)
let build ?(debug = true) ?(defer = true) ?(compress = false)
    ~(arch : Ldb_machine.Arch.t) (sources : (string * string) list) :
    Link.image * string =
  let objs =
    List.map
      (fun (file, src) -> Compile.compile ~debug ~defer ~compress ~arch ~file src)
      sources
  in
  let img = Link.link objs in
  let loader_ps = loader_table_ps img in
  run_dbgcheck img loader_ps;
  (img, loader_ps)
