(** Core dumps: a serialized image of a dead (or stopping) simulated
    process.

    The dump records everything the debugger's machine-independent layers
    need to answer queries post mortem: the architecture identity, the
    fatal signal with its code and pc, both register files, and the
    occupied parts of memory as sparse, CRC-32'd sections.  A dump read
    back through {!of_string} is deliberately forgiving — truncated files
    and corrupted sections come back as typed {!salvage} warnings with
    whatever was recoverable, never as a refusal to load — so a debugger
    can still salvage a backtrace from a damaged artifact (the
    graceful-degradation discipline of the wire and symbol-table layers,
    applied to the target's death itself). *)

open Ldb_util

type section = {
  sec_name : string;
  sec_base : int;
  sec_bytes : string;
  sec_crc : int;   (** CRC-32 stored in the dump *)
  sec_ok : bool;   (** false when truncated or the CRC disagrees *)
}

type t = {
  co_arch : Arch.t;
  co_signal : int;       (** fatal signal number *)
  co_code : int;         (** signal code, e.g. the faulting address *)
  co_pc : int;
  co_ctx_addr : int;     (** where the nub's saved context lives *)
  co_regs : int32 array;
  co_freg_bytes : int;   (** bytes per floating register image: 8 or 10 *)
  co_fregs : string array;  (** raw register images, [co_freg_bytes] each *)
  co_sections : section list;
}

(** What the reader had to paper over.  These ride along with the loaded
    dump; the debugger surfaces them as salvage warnings. *)
type salvage =
  | Truncated of { what : string; expected : int; got : int }
  | Bad_crc of { section : string; stored : int; computed : int }

let salvage_to_string = function
  | Truncated { what; expected; got } ->
      Printf.sprintf "truncated %s: expected %d bytes, got %d" what expected got
  | Bad_crc { section; stored; computed } ->
      Printf.sprintf "section %S fails CRC: stored %08x, computed %08x" section stored
        computed

let pp_salvage ppf s = Fmt.string ppf (salvage_to_string s)

(** Signals whose delivery ends the process for good — the ones worth a
    dump.  SIGTRAP (breakpoints) and SIGINT (fuel/debugger interrupts)
    are recoverable stops, not deaths. *)
let fatal_signal = function
  | Signal.SIGSEGV | Signal.SIGILL | Signal.SIGFPE | Signal.SIGABRT -> true
  | Signal.SIGTRAP | Signal.SIGINT -> false

(* --- the fetch/store service ------------------------------------------- *)

(** The byte-access semantics shared by the live nub and dump-backed
    memories: sizes 1/2/4/8 are fetched in the target's byte order and
    serialized little-endian (the protocol's canonical order), 10 is the
    raw 80-bit extended format, and other positive sizes up to 64 are raw
    byte runs.  Includes the SIM-MIPS context quirk: the kernel saves
    floating-point registers least-significant-word first, so 8-byte
    accesses into the saved-FP area swap words (the paper's footnote 3). *)
module Service = struct
  let ctx_base = Ram.Layout.context_base

  let le_of_int32 v =
    let b = Bytes.create 4 in
    Endian.set_u32 Little b 0 v;
    Bytes.to_string b

  let le_of_int64 v =
    let b = Bytes.create 8 in
    Endian.set_u64 Little b 0 v;
    Bytes.to_string b

  let int32_of_le s = Endian.get_u32 Little (Bytes.of_string s) 0
  let int64_of_le s = Endian.get_u64 Little (Bytes.of_string s) 0

  (** Is [addr] an 8-byte access to a saved floating-point register in a
      SIM-MIPS context? *)
  let mips_fp_word_swap (t : Target.t) addr =
    Arch.equal t.Target.arch Mips
    &&
    let lo = ctx_base + t.Target.ctx_freg_off 0
    and hi = ctx_base + t.Target.ctx_freg_off (Target.nfregs t - 1) + 8 in
    addr >= lo && addr + 8 <= hi

  let fetch (t : Target.t) (ram : Ram.t) ~space ~addr ~size : (string, string) result =
    if space <> 'c' && space <> 'd' then Error (Printf.sprintf "no space %c" space)
    else
      try
        match size with
        | 1 -> Ok (String.make 1 (Char.chr (Ram.get_u8 ram addr)))
        | 2 ->
            let v = Ram.get_u16 ram addr in
            Ok (String.init 2 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff)))
        | 4 -> Ok (le_of_int32 (Ram.get_u32 ram addr))
        | 8 ->
            if mips_fp_word_swap t addr then begin
              (* words were saved LSW-first; swap while fetching *)
              let lo = Ram.get_u32 ram addr and hi = Ram.get_u32 ram (addr + 4) in
              Ok (le_of_int32 lo ^ le_of_int32 hi)
            end
            else Ok (le_of_int64 (Ram.get_u64 ram addr))
        | 10 ->
            (* 80-bit extended: raw packed format, SIM-68020 only *)
            Ok (Ram.read_string ram ~addr ~len:10)
        | sz when sz > 0 && sz <= 64 ->
            (* raw byte run, used for string and instruction fetches *)
            Ok (Ram.read_string ram ~addr ~len:sz)
        | _ -> Error "bad fetch size"
      with Ram.Fault a -> Error (Printf.sprintf "fault at %#x" a)

  let store (t : Target.t) (ram : Ram.t) ~space ~addr (bytes : string) :
      (unit, string) result =
    if space <> 'c' && space <> 'd' then Error (Printf.sprintf "no space %c" space)
    else
      try
        (match String.length bytes with
        | 1 -> Ram.set_u8 ram addr (Char.code bytes.[0])
        | 2 ->
            let v = Char.code bytes.[0] lor (Char.code bytes.[1] lsl 8) in
            Ram.set_u16 ram addr v
        | 4 -> Ram.set_u32 ram addr (int32_of_le bytes)
        | 8 ->
            if mips_fp_word_swap t addr then begin
              Ram.set_u32 ram addr (int32_of_le (String.sub bytes 0 4));
              Ram.set_u32 ram (addr + 4) (int32_of_le (String.sub bytes 4 4))
            end
            else Ram.set_u64 ram addr (int64_of_le bytes)
        | 10 -> Ram.blit_in ram ~addr bytes
        | _ -> Ram.blit_in ram ~addr bytes);
        Ok ()
      with Ram.Fault a -> Error (Printf.sprintf "fault at %#x" a)
end

(* --- writer ------------------------------------------------------------ *)

(** Trim the all-zero margins off [bytes], keeping 8-byte alignment so the
    trimmed section never splits a multi-byte value; zero margins are
    semantically recoverable (fresh RAM is zero-filled).  [None] when the
    whole range is zero. *)
let trim_zeros ~(base : int) (bytes : string) : (int * string) option =
  let n = String.length bytes in
  let first = ref 0 in
  while !first < n && bytes.[!first] = '\000' do
    incr first
  done;
  if !first = n then None
  else begin
    let last = ref (n - 1) in
    while bytes.[!last] = '\000' do
      decr last
    done;
    let lo = !first land lnot 7 in
    let hi = min n ((!last + 8) land lnot 7) in
    Some (base + lo, String.sub bytes lo (hi - lo))
  end

let section_of (ram : Ram.t) ~name ~base ~limit : section option =
  let raw = Ram.read_string ram ~addr:base ~len:(limit - base) in
  match trim_zeros ~base raw with
  | None -> None
  | Some (sec_base, sec_bytes) ->
      Some { sec_name = name; sec_base; sec_bytes; sec_crc = Crc32.string sec_bytes;
             sec_ok = true }

(** Freeze a stopped process into a dump.  The register files are taken
    from the CPU (after draining any pending delayed load); memory is
    split along the standard layout into code / data / ctx / stack
    sections, each trimmed of zero margins and checksummed. *)
let of_proc (p : Proc.t) ~(signal : int) ~(code : int) : t =
  let t = p.Proc.target in
  let cpu = p.Proc.cpu in
  Cpu.drain cpu;
  let freg_bytes = t.Target.ctx_freg_bytes in
  let freg_image f =
    let v = Cpu.freg cpu f in
    if freg_bytes = 10 then Float80.to_bytes v
    else
      let b = Bytes.create 8 in
      Endian.set_u64 Little b 0 (Int64.bits_of_float v);
      Bytes.to_string b
  in
  let ram = p.Proc.ram in
  let open Ram.Layout in
  let sections =
    List.filter_map
      (fun (name, base, limit) -> section_of ram ~name ~base ~limit)
      [
        ("code", code_base, data_base);
        ("data", data_base, context_base);
        ("ctx", context_base, sysarg_base);
        ("stack", sysarg_base, Ram.size ram);
      ]
  in
  {
    co_arch = t.Target.arch;
    co_signal = signal;
    co_code = code;
    co_pc = Proc.pc p;
    co_ctx_addr = Ram.Layout.context_base;
    co_regs = Array.init (Target.nregs t) (fun r -> Cpu.reg cpu r);
    co_freg_bytes = freg_bytes;
    co_fregs = Array.init (Target.nfregs t) freg_image;
    co_sections = sections;
  }

(* --- codec ------------------------------------------------------------- *)

(* Layout (all integers little-endian u32 unless noted):
     "LDBCORE1"
     u32 len + arch name bytes
     u32 signal | u32 code | u32 pc | u32 ctx_addr
     u32 nregs | nregs × u32 register images
     u32 nfregs | u32 freg_bytes | nfregs × freg_bytes raw images
     u32 nsections
     per section: u32 len + name bytes | u32 base | u32 len | u32 crc | bytes *)

let magic = "LDBCORE1"

let buf_u32 b (v : int) =
  let cell = Bytes.create 4 in
  Endian.set_u32 Little cell 0 (Int32.of_int v);
  Buffer.add_bytes b cell

let buf_i32 b (v : int32) =
  let cell = Bytes.create 4 in
  Endian.set_u32 Little cell 0 v;
  Buffer.add_bytes b cell

let buf_str b s =
  buf_u32 b (String.length s);
  Buffer.add_string b s

let to_string (co : t) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  buf_str b (Arch.name co.co_arch);
  buf_u32 b co.co_signal;
  buf_u32 b co.co_code;
  buf_u32 b co.co_pc;
  buf_u32 b co.co_ctx_addr;
  buf_u32 b (Array.length co.co_regs);
  Array.iter (fun r -> buf_i32 b r) co.co_regs;
  buf_u32 b (Array.length co.co_fregs);
  buf_u32 b co.co_freg_bytes;
  Array.iter (fun s -> Buffer.add_string b s) co.co_fregs;
  buf_u32 b (List.length co.co_sections);
  List.iter
    (fun s ->
      buf_str b s.sec_name;
      buf_u32 b s.sec_base;
      buf_u32 b (String.length s.sec_bytes);
      buf_u32 b s.sec_crc;
      Buffer.add_string b s.sec_bytes)
    co.co_sections;
  Buffer.contents b

(* Plausibility bounds: past these, a length field is garbage, not data. *)
let max_regs = 4096
let max_freg_bytes = 64
let max_name = 256
let max_section_bytes = 1 lsl 26

exception Hard of string
exception Short of string * int * int  (** what, needed, have *)

(** Load a dump.  Damage in the fixed header is a hard error (there is
    nothing to salvage without knowing the machine and the fault);
    anything after that degrades: a short register file keeps the
    registers that survived, short or corrupt sections are kept with
    [sec_ok = false], and every concession is reported as a {!salvage}
    warning. *)
let of_string (s : string) : (t * salvage list, string) result =
  let warnings = ref [] in
  let warn w = warnings := w :: !warnings in
  let pos = ref 0 in
  let remaining () = String.length s - !pos in
  let need what n = if remaining () < n then raise (Short (what, n, remaining ())) in
  let u32 what =
    need what 4;
    let v = Endian.get_u32 Little (Bytes.unsafe_of_string s) !pos in
    pos := !pos + 4;
    Int32.to_int v land 0xffffffff
  in
  let i32 what =
    need what 4;
    let v = Endian.get_u32 Little (Bytes.unsafe_of_string s) !pos in
    pos := !pos + 4;
    v
  in
  let take what n =
    need what n;
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  try
    if String.length s < String.length magic || String.sub s 0 (String.length magic) <> magic
    then raise (Hard "bad magic (not an LDBCORE1 dump)");
    pos := String.length magic;
    let arch_len = u32 "arch name length" in
    if arch_len > max_name then raise (Hard "implausible arch name length");
    let arch_name = take "arch name" arch_len in
    let arch =
      match Arch.of_name arch_name with
      | Some a -> a
      | None -> raise (Hard (Printf.sprintf "unknown architecture %S" arch_name))
    in
    let signal = u32 "signal" in
    let code = u32 "code" in
    let pc = u32 "pc" in
    let ctx_addr = u32 "ctx addr" in
    let nregs = u32 "register count" in
    if nregs > max_regs then raise (Hard "implausible register count");
    (* Header parsed: from here on, damage degrades instead of failing. *)
    let regs = Array.make nregs 0l in
    let fregs = ref [||] in
    let freg_bytes = ref 8 in
    let sections = ref [] in
    (try
       for r = 0 to nregs - 1 do
         regs.(r) <- i32 "register file"
       done;
       let nfregs = u32 "floating register count" in
       if nfregs > max_regs then raise (Hard "implausible floating register count");
       let fb = u32 "floating register width" in
       if fb > max_freg_bytes then raise (Hard "implausible floating register width");
       freg_bytes := fb;
       fregs := Array.init nfregs (fun f ->
           take (Printf.sprintf "floating register %d" f) fb);
       let nsections = u32 "section count" in
       if nsections > max_regs then raise (Hard "implausible section count");
       for _ = 1 to nsections do
         let name_len = u32 "section name length" in
         if name_len > max_name then raise (Hard "implausible section name length");
         let name = take "section name" name_len in
         let base = u32 "section base" in
         let len = u32 "section length" in
         if len > max_section_bytes then raise (Hard "implausible section length");
         let crc = u32 "section crc" in
         let have = min len (remaining ()) in
         if have < len then
           warn (Truncated { what = Printf.sprintf "section %S" name; expected = len;
                             got = have });
         let bytes = take "section bytes" have in
         let ok =
           have = len
           &&
           let computed = Crc32.string bytes in
           if computed <> crc then begin
             warn (Bad_crc { section = name; stored = crc; computed });
             false
           end
           else true
         in
         sections :=
           { sec_name = name; sec_base = base; sec_bytes = bytes; sec_crc = crc;
             sec_ok = ok }
           :: !sections
       done
     with
     | Short (what, needed, have) -> warn (Truncated { what; expected = needed; got = have })
     | Hard m ->
         (* a garbage length field mid-body: keep what parsed, note the rest *)
         warn (Truncated { what = "dump body (" ^ m ^ ")";
                           expected = String.length s; got = !pos }));
    let co =
      { co_arch = arch; co_signal = signal; co_code = code; co_pc = pc;
        co_ctx_addr = ctx_addr; co_regs = regs; co_freg_bytes = !freg_bytes;
        co_fregs = !fregs; co_sections = List.rev !sections }
    in
    Ok (co, List.rev !warnings)
  with
  | Hard m -> Error m
  | Short (what, needed, have) ->
      Error (Printf.sprintf "truncated %s: need %d bytes, have %d" what needed have)

(* --- rehydration -------------------------------------------------------- *)

(** Rebuild an addressable memory from the dump's sections.  Damaged
    sections are blitted too — partial bytes beat no bytes in salvage
    mode; {!damaged_ranges} tells callers which reads to distrust. *)
let to_ram (co : t) : Ram.t =
  let ram = Ram.create (Arch.endian co.co_arch) in
  let size = Ram.size ram in
  List.iter
    (fun s ->
      let base = max 0 s.sec_base in
      let skip = base - s.sec_base in
      let len = min (String.length s.sec_bytes - skip) (size - base) in
      if len > 0 then Ram.blit_in ram ~addr:base (String.sub s.sec_bytes skip len))
    co.co_sections;
  ram

(** Sections marked not-ok whose span overlaps [\[addr, addr+size)]. *)
let damaged_overlap (co : t) ~addr ~size : section list =
  List.filter
    (fun s ->
      (not s.sec_ok)
      && addr < s.sec_base + String.length s.sec_bytes
      && addr + size > s.sec_base)
    co.co_sections

let find_section (co : t) name =
  List.find_opt (fun s -> s.sec_name = name) co.co_sections

(** Decode floating register [f] from its raw image. *)
let freg_value (co : t) (f : int) : float =
  let img = co.co_fregs.(f) in
  if co.co_freg_bytes = 10 then Float80.of_bytes img
  else Int64.float_of_bits (Endian.get_u64 Little (Bytes.of_string img) 0)

(** Rebuild a {e runnable} process from a dump: fresh zero-filled RAM
    with the sections blitted back (the margins {!trim_zeros} dropped
    return as the zeros they were), register files and pc from the
    dump's images.  This is the inverse of {!of_proc} for the replay
    subsystem: a checkpoint dump taken at a drain-safe point restores to
    a machine that re-executes exactly as the original did.  The caller
    chooses the [Proc.status]; the stdout buffer restarts empty — output
    produced before the dump is not machine state, so replayed output
    begins at the restore point. *)
let to_proc (co : t) : Proc.t =
  let t = Target.of_arch co.co_arch in
  let p = Proc.create t in
  let size = Ram.size p.Proc.ram in
  List.iter
    (fun s ->
      let base = max 0 s.sec_base in
      let skip = base - s.sec_base in
      let len = min (String.length s.sec_bytes - skip) (size - base) in
      if len > 0 then Ram.blit_in p.Proc.ram ~addr:base (String.sub s.sec_bytes skip len))
    co.co_sections;
  let cpu = p.Proc.cpu in
  Array.iteri (fun r v -> if r < Target.nregs t then Cpu.set_reg cpu r v) co.co_regs;
  Array.iteri
    (fun f _ -> if f < Target.nfregs t then Cpu.set_freg cpu f (freg_value co f))
    co.co_fregs;
  Proc.set_pc p co.co_pc;
  p
