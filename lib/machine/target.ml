(** Per-target descriptors: everything about a simulated architecture that
    the compiler, the nub, and the debugger's machine-dependent modules need
    to know.  This record is the OCaml analogue of the paper's
    "machine-dependent data manipulated by machine-independent code". *)

type t = {
  arch : Arch.t;
  encoder : Encoder.t;
  (* register conventions *)
  sp : Insn.reg;                 (** stack pointer *)
  fp : Insn.reg option;          (** frame pointer; [None] on SIM-MIPS *)
  ra : Insn.reg option;          (** link register; [None] when calls push the
                                     return address on the stack (68020/VAX) *)
  arg_regs : Insn.reg list;      (** registers carrying leading arguments;
                                     [[]] means all arguments on the stack *)
  ret_reg : Insn.reg;            (** integer return value *)
  fret_reg : Insn.freg;          (** floating return value *)
  temps : Insn.reg list;         (** expression temporaries for the codegen *)
  ftemps : Insn.freg list;
  reg_vars : Insn.reg list;      (** callee-saved registers available for
                                     [register]-class variables *)
  scratch : Insn.reg;            (** assembler/codegen scratch register *)
  (* breakpoint support: the paper's "four items of machine-dependent data" *)
  nop : string;                  (** no-op bit pattern at stopping points *)
  brk : string;                  (** trap bit pattern planted over a no-op *)
  insn_unit : int;               (** granularity used to fetch/store
                                     instructions: 4, 2, or 1 bytes *)
  nop_advance : int;             (** pc advance after "interpreting" the no-op *)
  (* context layout: where the nub saves state on a signal *)
  ctx_size : int;
  ctx_pc_off : int;
  ctx_reg_off : int -> int;
  ctx_freg_off : int -> int;
  ctx_freg_bytes : int;          (** 8, or 10 on the 68020 (80-bit extended) *)
  reg_names : string array;
  freg_prefix : string;
}

let order t = Arch.endian t.arch
let nregs t = Arch.nregs t.arch
let nfregs t = Arch.nfregs t.arch

let encode t i = let (module E : Encoder.S) = t.encoder in E.encode i
let insn_length t i = let (module E : Encoder.S) = t.encoder in E.length i
let decode t ~fetch addr = let (module E : Encoder.S) = t.encoder in E.decode ~fetch addr

let numbered prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix i)

(** Single source of truth for the paper's "four items of machine-dependent
    data": [nop], [brk] and [nop_advance] are derived from the encoder
    itself rather than restated by hand, so the target description can
    never drift from [Enc_*].  Registration-time checks (run once, when
    this module is initialized) verify the contract the debugger relies on:
    the encoder's published [nop_bytes]/[break_bytes] agree with
    [encode Nop]/[encode Break], the two patterns have the same length (so
    planting a breakpoint is a plain store), the length is a positive
    multiple of [insn_unit], and both patterns decode back to themselves. *)
let stop_encoding ~(insn_unit : int) (encoder : Encoder.t) : string * string * int =
  let (module E : Encoder.S) = encoder in
  let fail fmt =
    Printf.ksprintf
      (fun s -> invalid_arg (Printf.sprintf "Target.stop_encoding(%s): %s" (Arch.name E.arch) s))
      fmt
  in
  let nop = E.encode Insn.Nop and brk = E.encode Insn.Break in
  if not (String.equal nop E.nop_bytes) then fail "encode Nop disagrees with nop_bytes";
  if not (String.equal brk E.break_bytes) then fail "encode Break disagrees with break_bytes";
  if String.length nop <> String.length brk then
    fail "nop and break lengths differ (%d vs %d)" (String.length nop) (String.length brk);
  if E.length Insn.Nop <> String.length nop then fail "length Nop disagrees with encode Nop";
  if String.length nop = 0 || String.length nop mod insn_unit <> 0 then
    fail "nop length %d is not a positive multiple of insn_unit %d" (String.length nop)
      insn_unit;
  let fetch_of s a = if a >= 0 && a < String.length s then Char.code s.[a] else 0 in
  (match E.decode ~fetch:(fetch_of nop) 0 with
  | Insn.Nop, w when w = String.length nop -> ()
  | i, w -> fail "nop bytes decode to %s/%d, not Nop" (Insn.to_string i) w
  | exception Optab.Bad_encoding _ -> fail "nop bytes do not decode");
  (match E.decode ~fetch:(fetch_of brk) 0 with
  | Insn.Break, w when w = String.length brk -> ()
  | i, w -> fail "break bytes decode to %s/%d, not Break" (Insn.to_string i) w
  | exception Optab.Bad_encoding _ -> fail "break bytes do not decode");
  (nop, brk, String.length nop)

let mips : t =
  let nregs = 32 and nfregs = 16 in
  let insn_unit = 4 in
  let nop, brk, nop_advance = stop_encoding ~insn_unit (module Enc_mips) in
  {
    arch = Mips;
    encoder = (module Enc_mips);
    sp = 29;
    fp = None;
    ra = Some 31;
    arg_regs = [ 4; 5; 6; 7 ];
    ret_reg = 2;
    fret_reg = 0;
    temps = [ 8; 9; 10; 11; 12; 13; 14; 15 ];
    ftemps = [ 2; 3; 4; 5; 6; 7 ];
    reg_vars = [ 16; 17; 18; 19; 20; 21; 22; 23 ];
    scratch = 1;
    nop;
    brk;
    insn_unit;
    nop_advance;
    (* sigcontext-style: pc first, then GPRs, then FPRs as doubles *)
    ctx_size = 4 + (4 * nregs) + (8 * nfregs);
    ctx_pc_off = 0;
    ctx_reg_off = (fun r -> 4 + (4 * r));
    ctx_freg_off = (fun f -> 4 + (4 * nregs) + (8 * f));
    ctx_freg_bytes = 8;
    reg_names = numbered "r" nregs;
    freg_prefix = "f";
  }

let sparc : t =
  let nregs = 32 and nfregs = 16 in
  let insn_unit = 4 in
  let nop, brk, nop_advance = stop_encoding ~insn_unit (module Enc_sparc) in
  {
    arch = Sparc;
    encoder = (module Enc_sparc);
    sp = 14;
    fp = Some 30;
    ra = Some 15;
    arg_regs = [ 8; 9; 10; 11; 12; 13 ];
    ret_reg = 8;
    fret_reg = 0;
    temps = [ 1; 2; 3; 4; 5; 6; 7; 16; 17; 18 ];
    ftemps = [ 2; 3; 4; 5; 6; 7 ];
    reg_vars = [ 20; 21; 22; 23; 24; 25 ];
    scratch = 19;
    nop;
    brk;
    insn_unit;
    nop_advance;
    ctx_size = 4 + (4 * nregs) + (8 * nfregs);
    ctx_pc_off = 0;
    ctx_reg_off = (fun r -> 4 + (4 * r));
    ctx_freg_off = (fun f -> 4 + (4 * nregs) + (8 * f));
    ctx_freg_bytes = 8;
    reg_names = numbered "r" nregs;
    freg_prefix = "f";
  }

let m68k : t =
  let nregs = 16 and nfregs = 8 in
  let insn_unit = 2 in
  let nop, brk, nop_advance = stop_encoding ~insn_unit (module Enc_m68k) in
  {
    arch = M68k;
    encoder = (module Enc_m68k);
    sp = 15;  (* a7 *)
    fp = Some 14;  (* a6 *)
    ra = None;  (* calls push the return address *)
    arg_regs = [];
    ret_reg = 0;  (* d0 *)
    fret_reg = 0;
    temps = [ 1; 2; 3; 4; 5; 6; 7 ];
    ftemps = [ 1; 2; 3; 4; 5 ];
    reg_vars = [ 10; 11; 12; 13 ];  (* a2-a5 *)
    scratch = 8;  (* a0 *)
    nop;
    brk;
    insn_unit;
    nop_advance;
    (* "another representation must be used": GPRs first, then pc, then the
       FPRs in 80-bit extended format *)
    ctx_size = (4 * nregs) + 4 + (10 * nfregs);
    ctx_pc_off = 4 * nregs;
    ctx_reg_off = (fun r -> 4 * r);
    ctx_freg_off = (fun f -> (4 * nregs) + 4 + (10 * f));
    ctx_freg_bytes = 10;
    reg_names =
      Array.init nregs (fun i -> if i < 8 then Printf.sprintf "d%d" i else Printf.sprintf "a%d" (i - 8));
    freg_prefix = "fp";
  }

let vax : t =
  let nregs = 16 and nfregs = 8 in
  let insn_unit = 1 in
  let nop, brk, nop_advance = stop_encoding ~insn_unit (module Enc_vax) in
  {
    arch = Vax;
    encoder = (module Enc_vax);
    sp = 14;
    fp = Some 13;
    ra = None;
    arg_regs = [];
    ret_reg = 0;
    fret_reg = 0;
    temps = [ 1; 2; 3; 4; 5; 6; 7 ];
    ftemps = [ 1; 2; 3; 4; 5 ];
    reg_vars = [ 9; 10; 11; 12 ];
    scratch = 8;
    nop;
    brk;
    insn_unit;
    nop_advance;
    (* GPRs, then FPRs, then pc at the end *)
    ctx_size = (4 * nregs) + (8 * nfregs) + 4;
    ctx_pc_off = (4 * nregs) + (8 * nfregs);
    ctx_reg_off = (fun r -> 4 * r);
    ctx_freg_off = (fun f -> (4 * nregs) + (8 * f));
    ctx_freg_bytes = 8;
    reg_names = numbered "r" nregs;
    freg_prefix = "f";
  }

let of_arch : Arch.t -> t = function
  | Mips -> mips
  | Sparc -> sparc
  | M68k -> m68k
  | Vax -> vax

let all = List.map of_arch Arch.all

let reg_name t r =
  if r >= 0 && r < Array.length t.reg_names then t.reg_names.(r)
  else Printf.sprintf "r?%d" r
