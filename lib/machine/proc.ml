(** A simulated target process: RAM + CPU + a tiny "kernel" providing the
    services compiled C code needs (exit, printf-style output, abort).

    Signals do not stop the simulation here; [run] simply returns the event.
    The debug nub (lib/nub) wraps a process, installs itself as the signal
    handler, captures contexts, and talks to the debugger. *)

type status =
  | Running
  | Stopped of Signal.t * int  (** signal, associated code (eg fault address) *)
  | Exited of int

type t = {
  target : Target.t;
  ram : Ram.t;
  cpu : Cpu.t;
  mutable status : status;
  stdout : Buffer.t;
  mutable entry : int;  (** address of the startup code *)
}

let create (target : Target.t) =
  let ram = Ram.create (Target.order target) in
  let cpu = Cpu.create target in
  Cpu.set_reg cpu target.Target.sp (Int32.of_int Ram.Layout.stack_top);
  (match target.Target.fp with
  | Some fp -> Cpu.set_reg cpu fp (Int32.of_int Ram.Layout.stack_top)
  | None -> ());
  { target; ram; cpu; status = Running; stdout = Buffer.create 256; entry = 0 }

let arch p = p.target.Target.arch
let output p = Buffer.contents p.stdout

(* --- kernel services ------------------------------------------------- *)

module Sys_abi = struct
  let exit = 0
  let printf = 1
  let abort = 2
end

let sysarg_word p i = Ram.get_u32 p.ram (Ram.Layout.sysarg_base + (4 * i))
let sysarg_f64 p i = Ram.get_f64 p.ram (Ram.Layout.sysarg_base + (4 * i))

(* A minimal printf: supports %d %u %x %c %s %f %g and %%.  Arguments come
   from the kernel argument block: 4-byte slots, except floats which occupy
   two slots (an 8-byte double). *)
let do_printf p =
  let fmt_ptr = Int32.to_int (sysarg_word p 0) in
  let fmt = Ram.read_cstring p.ram ~addr:fmt_ptr in
  let slot = ref 1 in
  let take_word () =
    let v = sysarg_word p !slot in
    incr slot;
    v
  in
  let take_f64 () =
    let v = sysarg_f64 p !slot in
    slot := !slot + 2;
    v
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c = '%' && !i + 1 < n then begin
      (match fmt.[!i + 1] with
      | 'd' | 'i' -> Buffer.add_string p.stdout (Int32.to_string (take_word ()))
      | 'u' ->
          let v = Int64.logand (Int64.of_int32 (take_word ())) 0xffffffffL in
          Buffer.add_string p.stdout (Int64.to_string v)
      | 'x' ->
          let v = Int64.logand (Int64.of_int32 (take_word ())) 0xffffffffL in
          Buffer.add_string p.stdout (Printf.sprintf "%Lx" v)
      | 'c' -> Buffer.add_char p.stdout (Char.chr (Int32.to_int (take_word ()) land 0xff))
      | 's' ->
          let ptr = Int32.to_int (take_word ()) in
          Buffer.add_string p.stdout (Ram.read_cstring p.ram ~addr:ptr)
      | 'f' -> Buffer.add_string p.stdout (Printf.sprintf "%f" (take_f64 ()))
      | 'g' -> Buffer.add_string p.stdout (Printf.sprintf "%g" (take_f64 ()))
      | '%' -> Buffer.add_char p.stdout '%'
      | other ->
          Buffer.add_char p.stdout '%';
          Buffer.add_char p.stdout other);
      i := !i + 2
    end
    else begin
      Buffer.add_char p.stdout c;
      incr i
    end
  done

let do_syscall p n =
  if n = Sys_abi.exit then p.status <- Exited (Int32.to_int (sysarg_word p 0))
  else if n = Sys_abi.printf then do_printf p
  else if n = Sys_abi.abort then p.status <- Stopped (SIGABRT, 0)
  else p.status <- Stopped (SIGILL, n)

(* --- execution -------------------------------------------------------- *)

(** Execute one instruction.  Faults and breakpoints set the status to
    [Stopped]; the caller (normally the nub) decides what to do next. *)
let step p =
  match p.status with
  | Exited _ | Stopped _ -> ()
  | Running -> (
      match Cpu.step p.cpu p.ram with
      | Cpu.Running -> ()
      | Cpu.Sys n -> do_syscall p n
      | Cpu.Trap (s, code) -> p.status <- Stopped (s, code))

let default_fuel = 50_000_000

(** Run until the process stops, exits, or [fuel] instructions have retired.
    Returns the resulting status ([Running] only on fuel exhaustion) and the
    number of instructions retired — the nub charges condition-driven silent
    resumes against one cumulative budget, so a conditional breakpoint in an
    infinite loop still surfaces as fuel exhaustion rather than a hang. *)
let run_counted ?(fuel = default_fuel) p =
  let n = ref 0 in
  while p.status = Running && !n < fuel do
    step p;
    incr n
  done;
  (p.status, !n)

(** Run until the process stops, exits, or [fuel] instructions have retired.
    Returns the resulting status ([Running] only on fuel exhaustion). *)
let run ?(fuel = default_fuel) p = fst (run_counted ~fuel p)

(** Clear a stop so execution can proceed (the nub uses this when told to
    continue). *)
let set_running p = match p.status with Exited _ -> () | _ -> p.status <- Running

let pc p = p.cpu.Cpu.pc
let set_pc p v = p.cpu.Cpu.pc <- v
