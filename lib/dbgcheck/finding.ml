(** dbgcheck findings: one record per violation of the debug contract,
    carrying the target, the check kind, and an address or file:line
    position (the issue's "each finding carrying target, check kind, and
    address or position").  The JSON shape is a contract, pinned by a
    golden test. *)

type kind =
  (* stopping points *)
  | Bad_nop          (** bytes at a stopping point are not the target's no-op *)
  | Misaligned_stop  (** stopping point is not on an instruction boundary *)
  | Nop_advance      (** decoded no-op width disagrees with [Target.nop_advance] *)
  | Bad_decode       (** code segment bytes the disassembler rejects *)
  (* symbols and anchors *)
  | Unresolved_sym   (** a name the loader table cannot resolve through nm *)
  | Bad_segment      (** an address outside the segment its kind demands *)
  | Alias_clash      (** two views of one symbol (or address) disagree *)
  | Dangling_slot    (** anchor slot index outside the anchor's data region *)
  (* frames *)
  | Frame_bounds     (** offset or size violating the frame layout *)
  | Bad_reg_var      (** register variable in a non-allocatable register *)
  | Rpt_mismatch     (** SIM-MIPS runtime procedure table disagrees *)
  (* differential: stabs view vs PostScript view *)
  | Stabs_mismatch   (** the two symbol tables disagree *)
  | Line_clamped     (** stabs u16 desc clamped a line the PS table keeps *)
  | Hint_mismatch    (** units-dict demand hints disagree with the forced unit *)
  (* breakpoint-condition bytecode *)
  | Bpc_verify      (** the static verifier's verdict on a seeded condition
                        program — pinned by a golden test so the safety
                        proof cannot drift silently *)
  (* core dumps *)
  | Core_arch       (** the dump names a different architecture than the image *)
  | Core_crc        (** a memory section's bytes do not checksum to its CRC *)
  | Core_reg_width  (** register-file shape disagrees with the architecture *)
  | Core_pc         (** the fault pc lies outside the image's code segment *)
  (* variable-validity ranges *)
  | Validity_missing        (** a local's ranges appear in one table only *)
  | Validity_range          (** malformed ranges: bad fact code, out-of-range
                                stop index, or gaps/overlaps in the cover *)
  | Validity_stabs_mismatch (** the two tables disagree on a local's ranges *)
  | Validity_unsound        (** recomputing the dataflow analysis from source
                                disagrees with what the tables claim *)
  (* the table itself could not be interpreted *)
  | Table_error

let kind_name = function
  | Bad_nop -> "bad-nop"
  | Misaligned_stop -> "misaligned-stop"
  | Nop_advance -> "nop-advance"
  | Bad_decode -> "bad-decode"
  | Unresolved_sym -> "unresolved-symbol"
  | Bad_segment -> "bad-segment"
  | Alias_clash -> "alias-clash"
  | Dangling_slot -> "dangling-slot"
  | Frame_bounds -> "frame-bounds"
  | Bad_reg_var -> "bad-reg-var"
  | Rpt_mismatch -> "rpt-mismatch"
  | Stabs_mismatch -> "stabs-mismatch"
  | Line_clamped -> "line-clamped"
  | Hint_mismatch -> "hint-mismatch"
  | Bpc_verify -> "bpcverify"
  | Core_arch -> "core-arch"
  | Core_crc -> "core-crc"
  | Core_reg_width -> "core-reg-width"
  | Core_pc -> "core-pc"
  | Validity_missing -> "validity-missing"
  | Validity_range -> "validity-range"
  | Validity_stabs_mismatch -> "validity-stabs-mismatch"
  | Validity_unsound -> "validity-unsound"
  | Table_error -> "table-error"

let kind_of_name = function
  | "bad-nop" -> Some Bad_nop
  | "misaligned-stop" -> Some Misaligned_stop
  | "nop-advance" -> Some Nop_advance
  | "bad-decode" -> Some Bad_decode
  | "unresolved-symbol" -> Some Unresolved_sym
  | "bad-segment" -> Some Bad_segment
  | "alias-clash" -> Some Alias_clash
  | "dangling-slot" -> Some Dangling_slot
  | "frame-bounds" -> Some Frame_bounds
  | "bad-reg-var" -> Some Bad_reg_var
  | "rpt-mismatch" -> Some Rpt_mismatch
  | "stabs-mismatch" -> Some Stabs_mismatch
  | "line-clamped" -> Some Line_clamped
  | "hint-mismatch" -> Some Hint_mismatch
  | "bpcverify" -> Some Bpc_verify
  | "core-arch" -> Some Core_arch
  | "core-crc" -> Some Core_crc
  | "core-reg-width" -> Some Core_reg_width
  | "core-pc" -> Some Core_pc
  | "validity-missing" -> Some Validity_missing
  | "validity-range" -> Some Validity_range
  | "validity-stabs-mismatch" -> Some Validity_stabs_mismatch
  | "validity-unsound" -> Some Validity_unsound
  | "table-error" -> Some Table_error
  | _ -> None

type t = {
  kind : kind;
  target : string;  (** architecture name *)
  where : string;   (** "0x%06x" address, "file:line", or a symbol name *)
  msg : string;
}

let at_addr addr = Printf.sprintf "0x%06x" addr
let at_pos file line = Printf.sprintf "%s:%d" file line

let to_string f = Printf.sprintf "%s: %s: %s: %s" f.target (kind_name f.kind) f.where f.msg

let json_escape = Ldb_util.Json.escape

let to_json f =
  Printf.sprintf {|{"target":"%s","kind":"%s","where":"%s","msg":"%s"}|}
    (json_escape f.target) (kind_name f.kind) (json_escape f.where) (json_escape f.msg)
