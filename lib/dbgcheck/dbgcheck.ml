(** dbgcheck: whole-artifact verification of the debug contract.

    The paper's debugger works because it can trust what the compiler and
    linker hand it: a no-op planted at every stopping point (Sec. 2), anchor
    symbols that make link-time values unnecessary, symbol tables that are
    executable data, and per-target frame conventions the stack walker
    relies on.  pslint (lib/pscheck) verifies the {e PostScript source}
    layer; this module verifies the {e binary artifacts} — the linked image,
    the anchor words, the stabs — and that the two symbol-table views agree.

    Four check families over a linked [Link.image] + its loader-table
    PostScript:

    - {b stops}: a full disassembly walk of the code segment establishes
      the instruction boundaries; every stopping point named by either
      symbol table must land on a boundary, hold exactly [Target.nop], and
      advance by [Target.nop_advance];
    - {b symbols}: every anchor/global/static resolves through [Link.Nm],
      lies in the right segment, and no two views of a symbol disagree;
    - {b frames}: frame sizes, local/parameter offsets, register variables
      and save slots respect the target's calling convention, including
      SIM-MIPS's no-frame-pointer runtime procedure table;
    - {b differential}: the stabs view and the PostScript view of each
      module agree on names, locations and line maps (and u16 line clamps
      in the stabs are reported rather than silently diverging). *)

open Ldb_machine
module V = Ldb_pscript.Value
module I = Ldb_pscript.Interp
module Link = Ldb_link.Link
module Nm = Ldb_link.Nm
module F = Finding

exception Extract of string

(* --- the PostScript-table view ---------------------------------------------- *)

type where_view =
  | Wreg of int
  | Wframe of int
  | Wanchor of string * int
  | Wglobal of string
  | Wcode of string
  | Wnone

type sym_view = {
  sv_name : string;
  sv_kind : string;  (** "variable" | "parameter" | "procedure" *)
  sv_where : where_view;
  sv_file : string;
  sv_line : int;
  sv_validity : (int * int * int) list;
      (** decoded /validity ranges (lo, hi, fact); [] when absent *)
  sv_validity_bad : bool;
      (** a /validity key was present but did not decode to flat triples *)
}

type locus_view = { lv_line : int; lv_anchor : string; lv_idx : int }

type proc_view = {
  pv_sym : sym_view;
  pv_label : string option;  (** linker label, from the where procedure *)
  pv_framesize : int;
  pv_raoffset : int;
  pv_savedregs : (int * int) list;
  pv_loci : locus_view list;
  pv_locals : sym_view list;  (** uplink chains of every stopping point *)
}

type unit_view = {
  uv_file : string;
  uv_procs : proc_view list;
  uv_statics : sym_view list;
  uv_names : string list option;  (** demand hints from the units dict, when present *)
  uv_labels : string list;
  uv_lines : (int * int) option;  (** /minline, /maxline hint *)
}

type ps_view = {
  psv_anchors : string list;          (** /anchors of __symtab *)
  psv_units : unit_view list;
  psv_anchormap : (string * int) list;
  psv_proctable : (int * string) list;
  psv_globalmap : (string * int) list;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Extract s)) fmt

let name_of (v : V.t) =
  match v.V.v with V.Name s | V.Str s -> s | _ -> fail "expected a name"

let dget d k = V.dict_get d k
let dget_exn d k = match dget d k with Some v -> v | None -> fail "missing /%s" k

let parse_where (w : V.t option) : where_view =
  match w with
  | None -> Wnone
  | Some v -> (
      match v.V.v with
      | V.Loc (Ldb_amemory.Amemory.Absolute { space = 'r'; offset }) -> Wreg offset
      | V.Arr items ->
          (* stored procedures: {off FrameLoc} {(anchor) idx LazyData}
             {(label) GlobalLoc} {(label) GlobalCodeLoc} *)
          let op =
            Array.fold_left
              (fun acc (it : V.t) ->
                match it.V.v with V.Name n -> Some n | _ -> acc)
              None items
          in
          let first_int =
            Array.fold_left
              (fun acc (it : V.t) ->
                match (acc, it.V.v) with None, V.Int n -> Some n | _ -> acc)
              None items
          in
          let first_str =
            Array.fold_left
              (fun acc (it : V.t) ->
                match (acc, it.V.v) with None, V.Str s -> Some s | _ -> acc)
              None items
          in
          (match (op, first_str, first_int) with
          | Some "FrameLoc", _, Some off -> Wframe off
          | Some "LazyData", Some a, Some idx -> Wanchor (a, idx)
          | Some "GlobalLoc", Some l, _ -> Wglobal l
          | Some "GlobalCodeLoc", Some l, _ -> Wcode l
          | _ -> Wnone)
      | _ -> Wnone)

let parse_validity (v : V.t option) : (int * int * int) list * bool =
  match v with
  | None -> ([], false)
  | Some { V.v = V.Arr a; _ } -> (
      let n = Array.length a in
      if n mod 3 <> 0 then ([], true)
      else
        try
          let rec go i acc =
            if i >= n then List.rev acc
            else
              go (i + 3)
                ((V.to_int a.(i), V.to_int a.(i + 1), V.to_int a.(i + 2)) :: acc)
          in
          (go 0 [], false)
        with _ -> ([], true))
  | Some _ -> ([], true)

let parse_sym (entry : V.t) : sym_view =
  let d = V.to_dict entry in
  let sv_validity, sv_validity_bad = parse_validity (dget d "validity") in
  {
    sv_name = V.to_str (dget_exn d "name");
    sv_kind = (match dget d "kind" with Some k -> V.to_str k | None -> "");
    sv_where = parse_where (dget d "where");
    sv_file = (match dget d "sourcefile" with Some f -> V.to_str f | None -> "");
    sv_line = (match dget d "sourcey" with Some l -> V.to_int l | None -> 0);
    sv_validity;
    sv_validity_bad;
  }

(** Locals reachable through the uplink chains of every stopping point,
    in chain order, each entry once (physical identity). *)
let chain_locals (proc_entry : V.t) : sym_view list =
  let seen : V.dict list ref = ref [] in
  let acc = ref [] in
  let rec walk (v : V.t) =
    match v.V.v with
    | V.Dict d when not (List.memq d !seen) ->
        seen := d :: !seen;
        acc := parse_sym v :: !acc;
        (match dget d "uplink" with Some up -> walk up | None -> ())
    | _ -> ()
  in
  (match dget (V.to_dict proc_entry) "loci" with
  | Some l -> Array.iter (fun locus -> walk (V.to_arr locus).(3)) (V.to_arr l)
  | None -> ());
  List.rev !acc

let parse_locus (locus : V.t) : locus_view =
  let a = V.to_arr locus in
  if Array.length a < 4 then fail "malformed locus";
  match parse_where (Some a.(2)) with
  | Wanchor (anchor, idx) -> { lv_line = V.to_int a.(0); lv_anchor = anchor; lv_idx = idx }
  | _ -> fail "locus without a LazyData object location"

let parse_proc (entry : V.t) : proc_view =
  let d = V.to_dict entry in
  let sv = parse_sym entry in
  let label = match sv.sv_where with Wcode l -> Some l | _ -> None in
  let loci =
    match dget d "loci" with
    | Some l -> Array.to_list (Array.map parse_locus (V.to_arr l))
    | None -> []
  in
  let saved =
    match dget d "savedregs" with
    | Some s ->
        Array.to_list
          (Array.map
             (fun pair ->
               let p = V.to_arr pair in
               (V.to_int p.(0), V.to_int p.(1)))
             (V.to_arr s))
    | None -> []
  in
  {
    pv_sym = sv;
    pv_label = label;
    pv_framesize = (match dget d "framesize" with Some n -> V.to_int n | None -> 0);
    pv_raoffset = (match dget d "raoffset" with Some n -> V.to_int n | None -> 0);
    pv_savedregs = saved;
    pv_loci = loci;
    pv_locals = chain_locals entry;
  }

(** Interpret the loader PostScript in a private interpreter and read both
    tables back as structured data.  Forces every deferred unit body, with
    the machine-dependent dictionary on the dictionary stack, exactly as
    the debugger would (Sec. 4.3) — but parses the {e stored} where
    procedures structurally instead of running them against a live
    process. *)
let ps_view_of ~(arch : Arch.t) (loader_ps : string) : ps_view =
  let interp = Ldb_pscript.Ps.create () in
  let defs = V.dict_create () in
  let arch_dict = V.dict_create () in
  I.begin_dict interp defs;
  Fun.protect
    ~finally:(fun () -> I.end_dict interp)
    (fun () ->
      I.run_string interp loader_ps;
      I.begin_dict interp arch_dict;
      Fun.protect
        ~finally:(fun () -> I.end_dict interp)
        (fun () ->
          I.run_string interp (Ldb_ldb.Mdep_ps.source arch);
          let loader =
            match dget defs "__loader" with
            | Some l -> V.to_dict l
            | None -> fail "loader PostScript did not define /__loader"
          in
          let symtab =
            match dget defs "__symtab" with
            | Some s -> V.to_dict s
            | None -> fail "loader PostScript did not define /__symtab"
          in
          let anchors =
            match dget symtab "anchors" with
            | Some a -> Array.to_list (Array.map name_of (V.to_arr a))
            | None -> []
          in
          let units =
            match dget symtab "units" with
            | None -> []
            | Some units ->
                let ud = V.to_dict units in
                Hashtbl.fold
                  (fun file entry acc ->
                    let ed = V.to_dict entry in
                    let body = dget_exn ed "body" in
                    let tag = V.to_str (dget_exn ed "tag") in
                    (* compressed bodies ship as LZW streams; decode before
                       forcing, exactly as the debugger does *)
                    let body =
                      match dget ed "encoding" with
                      | None -> body
                      | Some enc when V.to_str enc = "lzw" -> (
                          match body.V.v with
                          | V.Str s -> (
                              try V.str (Ldb_util.Lzw.decompress s)
                              with Invalid_argument _ ->
                                fail "unit %s: corrupt lzw body" file)
                          | _ -> fail "unit %s: encoded body is not a string" file)
                      | Some enc -> fail "unit %s: unknown body encoding %s" file (V.to_str enc)
                    in
                    let str_list key =
                      match dget ed key with
                      | Some v -> Some (Array.to_list (Array.map V.to_str (V.to_arr v)))
                      | None -> None
                    in
                    let lines =
                      match (dget ed "minline", dget ed "maxline") with
                      | Some lo, Some hi -> Some (V.to_int lo, V.to_int hi)
                      | _ -> None
                    in
                    (* force the deferred body; its definitions land in the
                       arch dictionary, the top of the dictionary stack *)
                    I.exec_value interp (V.cvx body);
                    let result =
                      match I.lookup interp ("UNITRESULT$" ^ tag) with
                      | Some r -> V.to_dict r
                      | None -> fail "unit %s did not define its result" file
                    in
                    let procs =
                      match dget result "procs" with
                      | Some ps -> Array.to_list (Array.map parse_proc (V.to_arr ps))
                      | None -> []
                    in
                    let statics =
                      match dget result "statics" with
                      | Some s ->
                          Hashtbl.fold
                            (fun _ e acc -> parse_sym e :: acc)
                            (V.to_dict s).V.tbl []
                      | None -> []
                    in
                    {
                      uv_file = file;
                      uv_procs = procs;
                      uv_statics = statics;
                      uv_names = str_list "names";
                      uv_labels = Option.value ~default:[] (str_list "labels");
                      uv_lines = lines;
                    }
                    :: acc)
                  ud.V.tbl []
          in
          let kv_int d =
            Hashtbl.fold (fun k v acc -> (k, V.to_int v) :: acc) d.V.tbl []
          in
          let anchormap =
            match dget loader "anchormap" with Some d -> kv_int (V.to_dict d) | None -> []
          in
          let globalmap =
            match dget loader "globalmap" with Some d -> kv_int (V.to_dict d) | None -> []
          in
          let proctable =
            match dget loader "proctable" with
            | Some p ->
                let a = V.to_arr p in
                let rec pairs i acc =
                  if i + 1 >= Array.length a then List.rev acc
                  else pairs (i + 2) ((V.to_int a.(i), V.to_str a.(i + 1)) :: acc)
                in
                pairs 0 []
            | None -> []
          in
          {
            psv_anchors = anchors;
            psv_units = units;
            psv_anchormap = anchormap;
            psv_proctable = proctable;
            psv_globalmap = globalmap;
          }))

(* --- shared artifact context -------------------------------------------------- *)

type ctx = {
  arch : Arch.t;
  tname : string;
  tdesc : Target.t;
  img : Link.image;
  nm : Nm.entry list;
  code_base : int;
  code_end : int;
  data_base : int;
  data_end : int;
  ps : ps_view;
  out : F.t list ref;
}

let report cx kind where fmt =
  Printf.ksprintf
    (fun msg -> cx.out := { F.kind; target = cx.tname; where; msg } :: !(cx.out))
    fmt

let in_code cx a = a >= cx.code_base && a < cx.code_end
let in_data cx a = a >= cx.data_base && a < cx.data_end

(** Read the 4-byte word at [addr] in the data segment, target byte order. *)
let data_word cx addr =
  if addr < cx.data_base || addr + 4 > cx.data_end then None
  else
    Some
      (Int32.to_int
         (Ldb_util.Endian.get_u32 (Arch.endian cx.arch)
            (Bytes.unsafe_of_string cx.img.Link.i_data)
            (addr - cx.data_base)))

let anchor_address cx name =
  match List.assoc_opt name cx.ps.psv_anchormap with
  | Some a -> Some a
  | None ->
      List.find_map
        (fun (e : Nm.entry) -> if e.Nm.name = name then Some e.Nm.addr else None)
        cx.nm

(** End of the data region an anchor owns: the next visible data symbol
    above it (anchor slots are laid out contiguously at the anchor). *)
let anchor_region_end cx anchor_addr =
  List.fold_left
    (fun best (e : Nm.entry) ->
      if (not (Nm.is_text e)) && e.Nm.addr > anchor_addr && e.Nm.addr < best then e.Nm.addr
      else best)
    cx.data_end cx.nm

(* --- family (a): stopping points ---------------------------------------------- *)

(** Disassemble the whole code segment, recording every instruction
    boundary and its width.  This is the ground truth the stopping-point
    checks stand on. *)
let walk_code cx : (int, int) Hashtbl.t =
  let code = cx.img.Link.i_code in
  let fetch a =
    let i = a - cx.code_base in
    if i >= 0 && i < String.length code then Char.code code.[i] else 0
  in
  let bounds = Hashtbl.create 1024 in
  let pos = ref cx.code_base in
  while !pos < cx.code_end do
    match Target.decode cx.tdesc ~fetch !pos with
    | _, w when w > 0 ->
        Hashtbl.replace bounds !pos w;
        pos := !pos + w
    | _, _ -> fail "decoder returned a zero width"
    | exception Optab.Bad_encoding m ->
        report cx F.Bad_decode (F.at_addr !pos) "code byte sequence does not decode: %s" m;
        pos := !pos + cx.tdesc.Target.insn_unit
  done;
  bounds

(** Verify one stopping point given as (anchor, slot index): resolve the
    slot, then prove the no-op contract at the stop address.  [what] says
    which table named it. *)
let check_stop cx bounds ~what ~anchor ~idx =
  match anchor_address cx anchor with
  | None -> report cx F.Unresolved_sym anchor "%s names an anchor the linker does not know" what
  | Some aaddr ->
      let slot = aaddr + (4 * idx) in
      if slot + 4 > anchor_region_end cx aaddr || idx < 0 then
        report cx F.Dangling_slot (F.at_addr slot)
          "%s: anchor slot %d of %s lies outside the anchor's data region" what idx anchor
      else
        match data_word cx slot with
        | None ->
            report cx F.Dangling_slot (F.at_addr slot)
              "%s: anchor slot %d of %s lies outside the data segment" what idx anchor
        | Some stop ->
            if not (in_code cx stop) then
              report cx F.Bad_segment (F.at_addr stop)
                "%s: stopping point is outside the code segment" what
            else begin
              (match Hashtbl.find_opt bounds stop with
              | None ->
                  report cx F.Misaligned_stop (F.at_addr stop)
                    "%s: stopping point is not on an instruction boundary" what
              | Some w ->
                  if w <> cx.tdesc.Target.nop_advance then
                    report cx F.Nop_advance (F.at_addr stop)
                      "%s: instruction width %d at the stopping point disagrees with nop_advance %d"
                      what w cx.tdesc.Target.nop_advance);
              let nop = cx.tdesc.Target.nop in
              let here =
                let off = stop - cx.code_base in
                if off + String.length nop <= String.length cx.img.Link.i_code then
                  String.sub cx.img.Link.i_code off (String.length nop)
                else ""
              in
              if not (String.equal here nop) then
                report cx F.Bad_nop (F.at_addr stop)
                  "%s: bytes at the stopping point are %s, not the %s no-op %s" what
                  (String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length here) (String.get here)))))
                  cx.tname
                  (String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length nop) (String.get nop)))))
            end

let check_stops cx =
  let bounds = walk_code cx in
  (* nop_advance must also be the encoder's published length for Nop *)
  if Target.insn_length cx.tdesc Insn.Nop <> cx.tdesc.Target.nop_advance then
    report cx F.Nop_advance (F.at_addr cx.code_base)
      "target description: nop_advance %d disagrees with the encoder's Nop length %d"
      cx.tdesc.Target.nop_advance
      (Target.insn_length cx.tdesc Insn.Nop);
  (* PostScript view: every locus of every procedure *)
  List.iter
    (fun uv ->
      List.iter
        (fun pv ->
          List.iter
            (fun lv ->
              check_stop cx bounds
                ~what:
                  (Printf.sprintf "pstab %s (%s:%d)" pv.pv_sym.sv_name uv.uv_file lv.lv_line)
                ~anchor:lv.lv_anchor ~idx:lv.lv_idx)
            pv.pv_loci)
        uv.uv_procs)
    cx.ps.psv_units;
  (* stabs view: every n_sline, against the unit's generated anchor *)
  List.iter
    (fun (uv : Ldb_stabsdbg.Stabsdbg.unit_view) ->
      let anchor = Ldb_cc.Sym.anchor_name uv.Ldb_stabsdbg.Stabsdbg.uv_name in
      List.iter
        (fun (fv : Ldb_stabsdbg.Stabsdbg.func_view) ->
          List.iter
            (fun (s : Ldb_stabsdbg.Stabsdbg.stab) ->
              check_stop cx bounds
                ~what:
                  (Printf.sprintf "stabs %s (%s:%d)"
                     (Ldb_stabsdbg.Stabsdbg.stab_name fv.Ldb_stabsdbg.Stabsdbg.fv_fun)
                     uv.Ldb_stabsdbg.Stabsdbg.uv_name s.Ldb_stabsdbg.Stabsdbg.st_desc)
                ~anchor ~idx:s.Ldb_stabsdbg.Stabsdbg.st_value)
            fv.Ldb_stabsdbg.Stabsdbg.fv_slines)
        uv.Ldb_stabsdbg.Stabsdbg.uv_funcs)
    (Ldb_stabsdbg.Stabsdbg.units (Ldb_stabsdbg.Stabsdbg.parse cx.img.Link.i_stabs))

(* --- family (b): symbols and anchors ------------------------------------------ *)

let check_symbols cx =
  let nm_by_name = Hashtbl.create 64 in
  List.iter (fun (e : Nm.entry) -> Hashtbl.replace nm_by_name e.Nm.name e) cx.nm;
  (* no address may be both text and data *)
  let by_addr = Hashtbl.create 64 in
  List.iter
    (fun (e : Nm.entry) ->
      (match Hashtbl.find_opt by_addr e.Nm.addr with
      | Some (other : Nm.entry) when Nm.is_text other <> Nm.is_text e ->
          report cx F.Alias_clash (F.at_addr e.Nm.addr)
            "%s and %s alias the same address with different segments" other.Nm.name e.Nm.name
      | _ -> ());
      Hashtbl.replace by_addr e.Nm.addr e)
    cx.nm;
  (* every anchor the symbol table claims must resolve, into the data
     segment, word-aligned *)
  List.iter
    (fun a ->
      match List.assoc_opt a cx.ps.psv_anchormap with
      | None -> report cx F.Unresolved_sym a "symbol table anchor is missing from the anchor map"
      | Some addr ->
          if not (in_data cx addr) then
            report cx F.Bad_segment (F.at_addr addr) "anchor %s lies outside the data segment" a
          else if addr mod 4 <> 0 then
            report cx F.Bad_segment (F.at_addr addr) "anchor %s is not word-aligned" a)
    cx.ps.psv_anchors;
  (* the anchor map must agree with nm *)
  List.iter
    (fun (name, addr) ->
      match Hashtbl.find_opt nm_by_name name with
      | None -> report cx F.Unresolved_sym name "anchor map entry has no nm symbol"
      | Some e ->
          if e.Nm.addr <> addr then
            report cx F.Alias_clash (F.at_addr addr)
              "anchor map places %s at 0x%06x but nm places it at 0x%06x" name addr e.Nm.addr)
    cx.ps.psv_anchormap;
  (* procedure table: text addresses, consistent with nm and the global map *)
  List.iter
    (fun (addr, name) ->
      if not (in_code cx addr) then
        report cx F.Bad_segment (F.at_addr addr)
          "procedure table entry %s lies outside the code segment" name;
      (match Hashtbl.find_opt nm_by_name name with
      | None -> report cx F.Unresolved_sym name "procedure table entry has no nm symbol"
      | Some e ->
          if e.Nm.addr <> addr then
            report cx F.Alias_clash (F.at_addr addr)
              "procedure table places %s at 0x%06x but nm places it at 0x%06x" name addr
              e.Nm.addr);
      match List.assoc_opt name cx.ps.psv_globalmap with
      | Some g when g <> addr ->
          report cx F.Alias_clash name
            "procedure table and global map disagree on %s (0x%06x vs 0x%06x)" name addr g
      | _ -> ())
    cx.ps.psv_proctable;
  (* global map: every entry backed by nm, in the segment its kind demands *)
  List.iter
    (fun (name, addr) ->
      match Hashtbl.find_opt nm_by_name name with
      | None -> report cx F.Unresolved_sym name "global map entry has no nm symbol"
      | Some e ->
          if e.Nm.addr <> addr then
            report cx F.Alias_clash (F.at_addr addr)
              "global map places %s at 0x%06x but nm places it at 0x%06x" name addr e.Nm.addr
          else if Nm.is_text e && not (in_code cx addr) then
            report cx F.Bad_segment (F.at_addr addr)
              "text symbol %s lies outside the code segment" name
          else if (not (Nm.is_text e)) && not (in_data cx addr) then
            report cx F.Bad_segment (F.at_addr addr)
              "data symbol %s lies outside the data segment" name)
    cx.ps.psv_globalmap;
  (* per-unit: procedure labels resolve as text; statics resolve through
     their unit's anchor into the data segment *)
  List.iter
    (fun uv ->
      List.iter
        (fun pv ->
          match pv.pv_label with
          | None ->
              report cx F.Unresolved_sym pv.pv_sym.sv_name
                "procedure entry has no global code location"
          | Some l -> (
              match Hashtbl.find_opt nm_by_name l with
              | Some e when Nm.is_text e -> ()
              | Some _ ->
                  report cx F.Bad_segment l "procedure label %s names a data symbol" l
              | None -> report cx F.Unresolved_sym l "procedure label has no nm symbol"))
        uv.uv_procs;
      List.iter
        (fun sv ->
          match sv.sv_where with
          | Wanchor (anchor, idx) -> (
              match anchor_address cx anchor with
              | None ->
                  report cx F.Unresolved_sym anchor
                    "static %s is anchored to an unknown anchor" sv.sv_name
              | Some aaddr -> (
                  let slot = aaddr + (4 * idx) in
                  if idx < 0 || slot + 4 > anchor_region_end cx aaddr then
                    report cx F.Dangling_slot (F.at_addr slot)
                      "static %s uses anchor slot %d outside the anchor's region" sv.sv_name
                      idx
                  else
                    match data_word cx slot with
                    | Some a when not (in_data cx a) ->
                        report cx F.Bad_segment (F.at_addr a)
                          "static %s resolves outside the data segment" sv.sv_name
                    | _ -> ()))
          | Wglobal l | Wcode l ->
              if not (Hashtbl.mem nm_by_name l) then
                report cx F.Unresolved_sym l "static/global %s has no nm symbol" sv.sv_name
          | _ -> ())
        uv.uv_statics)
    cx.ps.psv_units

(** The demand hints in the units dictionary are an index the debugger
    trusts to skip forcing units — stale hints silently break lazy lookup
    (a query forces nothing, or the wrong unit), so verify them against
    the forced unit's actual contents. *)
let check_hints cx =
  List.iter
    (fun uv ->
      (match uv.uv_names with
      | None -> ()
      | Some names ->
          List.iter
            (fun pv ->
              if not (List.mem pv.pv_sym.sv_name names) then
                report cx F.Hint_mismatch uv.uv_file
                  "unit defines %s but its /names hint omits it" pv.pv_sym.sv_name;
              match pv.pv_label with
              | Some l when not (List.mem l uv.uv_labels) ->
                  report cx F.Hint_mismatch uv.uv_file
                    "unit defines label %s but its /labels hint omits it" l
              | _ -> ())
            uv.uv_procs);
      match uv.uv_lines with
      | None ->
          if uv.uv_names <> None && List.exists (fun pv -> pv.pv_loci <> []) uv.uv_procs then
            report cx F.Hint_mismatch uv.uv_file
              "unit has stopping points but no /minline//maxline hint"
      | Some (lo, hi) ->
          List.iter
            (fun pv ->
              List.iter
                (fun lv ->
                  if lv.lv_line < lo || lv.lv_line > hi then
                    report cx F.Hint_mismatch
                      (F.at_pos uv.uv_file lv.lv_line)
                      "%s: stopping point at line %d lies outside the hinted range %d..%d"
                      pv.pv_sym.sv_name lv.lv_line lo hi)
                pv.pv_loci)
            uv.uv_procs)
    cx.ps.psv_units

(* --- family (c): frames -------------------------------------------------------- *)

(** Smallest legal parameter offset under the target's convention:
    SIM-MIPS (no frame pointer) addresses parameters from 0; the
    68020/VAX push a return address and save the frame pointer (so 8);
    SPARC saves only the frame pointer (so 4). *)
let min_param_offset (t : Target.t) =
  match (t.Target.fp, t.Target.ra) with
  | None, _ -> 0
  | _, None -> 8
  | _, _ -> 4

let check_frames cx =
  let reg_ok r = List.mem r cx.tdesc.Target.reg_vars in
  let rpt_by_addr = Hashtbl.create 16 in
  List.iter
    (fun (e : Ldb_machine.Rpt.entry) -> Hashtbl.replace rpt_by_addr e.Rpt.addr e)
    cx.img.Link.i_rpt;
  List.iter
    (fun uv ->
      List.iter
        (fun pv ->
          let where = F.at_pos pv.pv_sym.sv_file pv.pv_sym.sv_line in
          let fsize = pv.pv_framesize in
          if fsize < 0 || fsize mod 4 <> 0 then
            report cx F.Frame_bounds where "%s: frame size %d is not a non-negative multiple of 4"
              pv.pv_sym.sv_name fsize;
          if pv.pv_raoffset <> fsize - 4 then
            report cx F.Frame_bounds where
              "%s: return-address offset %d does not match frame size %d - 4" pv.pv_sym.sv_name
              pv.pv_raoffset fsize;
          List.iter
            (fun sv ->
              let swhere = F.at_pos sv.sv_file sv.sv_line in
              match sv.sv_where with
              | Wframe off ->
                  if sv.sv_kind = "parameter" then begin
                    if off < min_param_offset cx.tdesc then
                      report cx F.Frame_bounds swhere
                        "parameter %s of %s at offset %d is below the %s convention's minimum %d"
                        sv.sv_name pv.pv_sym.sv_name off cx.tname (min_param_offset cx.tdesc)
                  end
                  else if off >= 0 || -off > fsize then
                    report cx F.Frame_bounds swhere
                      "local %s of %s at offset %d does not fit the %d-byte frame" sv.sv_name
                      pv.pv_sym.sv_name off fsize
              | Wreg r ->
                  if not (reg_ok r) then
                    report cx F.Bad_reg_var swhere
                      "register variable %s of %s names r%d, not an allocatable register variable"
                      sv.sv_name pv.pv_sym.sv_name r
              | _ -> ())
            pv.pv_locals;
          List.iter
            (fun (r, off) ->
              if not (reg_ok r) then
                report cx F.Bad_reg_var where "%s saves r%d, not a register variable"
                  pv.pv_sym.sv_name r;
              if off >= 0 || -off > fsize then
                report cx F.Frame_bounds where
                  "%s: register save slot at offset %d does not fit the %d-byte frame"
                  pv.pv_sym.sv_name off fsize)
            pv.pv_savedregs;
          (* SIM-MIPS: the runtime procedure table is the frame contract *)
          if Arch.equal cx.arch Mips then
            match pv.pv_label with
            | None -> ()
            | Some l -> (
                let addr =
                  List.find_map
                    (fun (e : Nm.entry) -> if e.Nm.name = l then Some e.Nm.addr else None)
                    cx.nm
                in
                match addr with
                | None -> ()
                | Some addr -> (
                    match Hashtbl.find_opt rpt_by_addr addr with
                    | None ->
                        report cx F.Rpt_mismatch where
                          "%s has no runtime procedure table entry" pv.pv_sym.sv_name
                    | Some e ->
                        if e.Rpt.frame_size <> fsize || e.Rpt.ra_offset <> pv.pv_raoffset then
                          report cx F.Rpt_mismatch where
                            "%s: procedure table says frame %d/ra %d, symbol table says %d/%d"
                            pv.pv_sym.sv_name e.Rpt.frame_size e.Rpt.ra_offset fsize
                            pv.pv_raoffset)))
        uv.uv_procs)
    cx.ps.psv_units;
  (* every procedure-table entry must describe a text symbol *)
  if Arch.equal cx.arch Mips then begin
    let text_addrs = Hashtbl.create 64 in
    List.iter
      (fun (e : Nm.entry) -> if Nm.is_text e then Hashtbl.replace text_addrs e.Nm.addr ())
      cx.nm;
    List.iter
      (fun (e : Ldb_machine.Rpt.entry) ->
        if not (Hashtbl.mem text_addrs e.Rpt.addr) then
          report cx F.Rpt_mismatch (F.at_addr e.Rpt.addr)
            "runtime procedure table entry does not name a text symbol")
      cx.img.Link.i_rpt
  end

(* --- family (d): differential (stabs vs PostScript) --------------------------- *)

module Sd = Ldb_stabsdbg.Stabsdbg

(** Compare a stabs line (u16 desc) against the PostScript line, allowing
    for — and reporting — the emitter's documented clamp. *)
let check_line cx ~what ~where ~ps_line ~st_desc =
  if ps_line <> st_desc then
    if ps_line > 0xffff && st_desc = 0xffff then
      report cx F.Line_clamped where
        "%s: line %d was clamped to 65535 in the stabs u16 desc field" what ps_line
    else
      report cx F.Stabs_mismatch where "%s: stabs says line %d, PostScript table says %d" what
        st_desc ps_line

(* the stabs value field is a u32; frame offsets are stored two's
   complement, so sign-extend before comparing *)
let signed32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let stab_where_matches (sv : sym_view) (s : Sd.stab) =
  let module E = Ldb_cc.Stabsemit in
  if s.Sd.st_type = E.n_rsym then
    match sv.sv_where with Wreg r -> r = s.Sd.st_value | _ -> false
  else if s.Sd.st_type = E.n_psym || s.Sd.st_type = E.n_lsym then
    match sv.sv_where with
    | Wframe off -> off = signed32 s.Sd.st_value
    | Wnone -> s.Sd.st_value = 0
    | _ -> false
  else if s.Sd.st_type = E.n_stsym then
    match sv.sv_where with Wanchor (_, idx) -> idx = s.Sd.st_value | _ -> false
  else if s.Sd.st_type = E.n_gsym then
    match sv.sv_where with Wglobal _ | Wcode _ -> true | Wnone -> true | _ -> false
  else true

(** Compare one function's two views: name-matched symbols must agree on
    location and line; the stopping-point lists must agree pairwise. *)
let check_func_diff cx ~file (pv : proc_view) (fv : Sd.func_view) =
  let what = pv.pv_sym.sv_name in
  let where = F.at_pos pv.pv_sym.sv_file pv.pv_sym.sv_line in
  check_line cx ~what ~where ~ps_line:pv.pv_sym.sv_line ~st_desc:fv.Sd.fv_fun.Sd.st_desc;
  (* stopping points, in emission order on both sides *)
  let slines = fv.Sd.fv_slines in
  if List.length slines <> List.length pv.pv_loci then
    report cx F.Stabs_mismatch where
      "%s: stabs records %d stopping points, the PostScript table %d" what
      (List.length slines) (List.length pv.pv_loci)
  else
    List.iter2
      (fun lv (s : Sd.stab) ->
        if s.Sd.st_value <> lv.lv_idx then
          report cx F.Stabs_mismatch (F.at_pos file lv.lv_line)
            "%s: stabs stopping point uses anchor slot %d, the PostScript table slot %d" what
            s.Sd.st_value lv.lv_idx;
        check_line cx ~what ~where:(F.at_pos file lv.lv_line) ~ps_line:lv.lv_line
          ~st_desc:s.Sd.st_desc)
      pv.pv_loci slines;
  (* symbols, matched by name when unambiguous *)
  let count name l = List.length (List.filter (fun x -> x = name) l) in
  let ps_names = List.map (fun sv -> sv.sv_name) pv.pv_locals in
  let st_names = List.map Sd.stab_name fv.Sd.fv_syms in
  List.iter
    (fun sv ->
      if count sv.sv_name st_names = 0 then
        report cx F.Stabs_mismatch (F.at_pos sv.sv_file sv.sv_line)
          "%s: %s appears in the PostScript table but not in the stabs" what sv.sv_name)
    pv.pv_locals;
  List.iter
    (fun (s : Sd.stab) ->
      let n = Sd.stab_name s in
      if count n ps_names = 0 then
        report cx F.Stabs_mismatch where
          "%s: %s appears in the stabs but not in the PostScript table" what n)
    fv.Sd.fv_syms;
  List.iter
    (fun sv ->
      if count sv.sv_name ps_names = 1 && count sv.sv_name st_names = 1 then begin
        let s = List.find (fun s -> Sd.stab_name s = sv.sv_name) fv.Sd.fv_syms in
        if not (stab_where_matches sv s) then
          report cx F.Stabs_mismatch (F.at_pos sv.sv_file sv.sv_line)
            "%s: the two tables place %s differently (stabs value %d)" what sv.sv_name
            s.Sd.st_value;
        check_line cx ~what:(what ^ "/" ^ sv.sv_name) ~where:(F.at_pos sv.sv_file sv.sv_line)
          ~ps_line:sv.sv_line ~st_desc:s.Sd.st_desc
      end)
    pv.pv_locals

let check_differential cx =
  let st_units = Sd.units (Sd.parse cx.img.Link.i_stabs) in
  let ps_units = cx.ps.psv_units in
  List.iter
    (fun uv ->
      if not (List.exists (fun (u : Sd.unit_view) -> u.Sd.uv_name = uv.uv_file) st_units) then
        report cx F.Stabs_mismatch uv.uv_file "unit is missing from the stabs")
    ps_units;
  List.iter
    (fun (u : Sd.unit_view) ->
      match List.find_opt (fun uv -> uv.uv_file = u.Sd.uv_name) ps_units with
      | None -> report cx F.Stabs_mismatch u.Sd.uv_name "unit is missing from the PostScript table"
      | Some uv ->
          (* functions by name *)
          List.iter
            (fun pv ->
              match
                List.find_opt
                  (fun (fv : Sd.func_view) -> Sd.stab_name fv.Sd.fv_fun = pv.pv_sym.sv_name)
                  u.Sd.uv_funcs
              with
              | None ->
                  report cx F.Stabs_mismatch
                    (F.at_pos pv.pv_sym.sv_file pv.pv_sym.sv_line)
                    "%s is missing from the stabs" pv.pv_sym.sv_name
              | Some fv -> check_func_diff cx ~file:u.Sd.uv_name pv fv)
            uv.uv_procs;
          List.iter
            (fun (fv : Sd.func_view) ->
              let n = Sd.stab_name fv.Sd.fv_fun in
              if not (List.exists (fun pv -> pv.pv_sym.sv_name = n) uv.uv_procs) then
                report cx F.Stabs_mismatch u.Sd.uv_name
                  "%s is missing from the PostScript table" n)
            u.Sd.uv_funcs;
          (* unit-level statics: anchor slots must agree *)
          let module E = Ldb_cc.Stabsemit in
          List.iter
            (fun (s : Sd.stab) ->
              if s.Sd.st_type = E.n_stsym then
                let n = Sd.stab_name s in
                match List.find_opt (fun sv -> sv.sv_name = n) uv.uv_statics with
                | None ->
                    report cx F.Stabs_mismatch u.Sd.uv_name
                      "static %s is missing from the PostScript table" n
                | Some sv ->
                    if not (stab_where_matches sv s) then
                      report cx F.Stabs_mismatch (F.at_pos sv.sv_file sv.sv_line)
                        "the two tables place static %s differently" n)
            u.Sd.uv_toplevel)
    st_units

(* --- family (e): variable-validity ranges ------------------------------------- *)

(** Well-formedness of one local's emitted ranges: fact codes in {0,1,2},
    stop indexes inside [0, nstops), and the ranges a sorted, gapless,
    non-overlapping cover of the whole stop sequence — the shape
    [Validity.compute] always produces. *)
let check_validity_shape cx ~what ~where ~nstops ranges =
  let ok = ref true in
  List.iter
    (fun (lo, hi, f) ->
      if f < 0 || f > 2 then begin
        ok := false;
        report cx F.Validity_range where "%s: unknown fact code %d in range %d-%d" what f
          lo hi
      end;
      if lo < 0 || hi < lo || hi >= nstops then begin
        ok := false;
        report cx F.Validity_range where
          "%s: range %d-%d lies outside the function's %d stopping point(s)" what lo hi
          nstops
      end)
    ranges;
  if !ok then begin
    let rec cover expect = function
      | [] ->
          if expect <> nstops then
            report cx F.Validity_range where
              "%s: ranges cover stop indexes up to %d of %d" what (expect - 1) nstops
      | (lo, hi, _) :: rest ->
          if lo <> expect then begin
            report cx F.Validity_range where
              "%s: ranges %s at stop index %d" what
              (if lo > expect then "leave a gap" else "overlap")
              (min lo expect)
          end
          else cover (hi + 1) rest
    in
    cover 0 ranges
  end

(** Check the emitted validity ranges themselves: shape on the PostScript
    side, decodability on the stabs side, and agreement between the two
    tables local by local. *)
let check_validity cx =
  let st_units = Sd.units (Sd.parse cx.img.Link.i_stabs) in
  List.iter
    (fun uv ->
      let su =
        List.find_opt (fun (u : Sd.unit_view) -> u.Sd.uv_name = uv.uv_file) st_units
      in
      List.iter
        (fun pv ->
          let what = pv.pv_sym.sv_name in
          let nstops = List.length pv.pv_loci in
          (* shape of what the PostScript table carries *)
          List.iter
            (fun sv ->
              let where = F.at_pos sv.sv_file sv.sv_line in
              if sv.sv_validity_bad then
                report cx F.Validity_range where
                  "%s: /validity of %s is not a flat array of integer triples" what
                  sv.sv_name
              else if sv.sv_validity <> [] then
                check_validity_shape cx
                  ~what:(what ^ "/" ^ sv.sv_name)
                  ~where ~nstops sv.sv_validity)
            pv.pv_locals;
          (* the stabs view of the same function *)
          match su with
          | None -> () (* a whole missing unit is check_differential's complaint *)
          | Some u -> (
              match
                List.find_opt
                  (fun (fv : Sd.func_view) -> Sd.stab_name fv.Sd.fv_fun = what)
                  u.Sd.uv_funcs
              with
              | None -> ()
              | Some fv ->
                  let fwhere = F.at_pos uv.uv_file pv.pv_sym.sv_line in
                  List.iter
                    (fun (s : Sd.stab) ->
                      if Sd.parse_valid s = None then
                        report cx F.Validity_range fwhere
                          "%s: stabs validity record %S does not decode" what
                          s.Sd.st_name)
                    fv.Sd.fv_valid;
                  let st_ranges = List.filter_map Sd.parse_valid fv.Sd.fv_valid in
                  let count name l = List.length (List.filter (fun x -> x = name) l) in
                  let ps_named =
                    List.filter
                      (fun sv -> sv.sv_validity <> [] || sv.sv_validity_bad)
                      pv.pv_locals
                  in
                  let ps_names = List.map (fun sv -> sv.sv_name) ps_named in
                  let st_names = List.map fst st_ranges in
                  List.iter
                    (fun sv ->
                      if count sv.sv_name st_names = 0 then
                        report cx F.Validity_missing (F.at_pos sv.sv_file sv.sv_line)
                          "%s: validity ranges for %s appear in the PostScript table but not in the stabs"
                          what sv.sv_name)
                    ps_named;
                  List.iter
                    (fun (n, _) ->
                      if count n ps_names = 0 then
                        report cx F.Validity_missing fwhere
                          "%s: validity ranges for %s appear in the stabs but not in the PostScript table"
                          what n)
                    st_ranges;
                  List.iter
                    (fun sv ->
                      if count sv.sv_name ps_names = 1 && count sv.sv_name st_names = 1
                      then
                        let _, sr =
                          List.find (fun (n, _) -> n = sv.sv_name) st_ranges
                        in
                        if sr <> sv.sv_validity then
                          report cx F.Validity_stabs_mismatch
                            (F.at_pos sv.sv_file sv.sv_line)
                            "%s: the two tables carry different validity ranges for %s"
                            what sv.sv_name)
                    ps_named))
        uv.uv_procs)
    cx.ps.psv_units

(** Recompute the dataflow analysis from source and hold the emitted
    tables to it: every claim in the table must be exactly what the
    analysis proves, and every proof must be in the table.  This is the
    independent check the issue asks for — the emitters cannot vouch for
    themselves. *)
let check_validity_recompute cx (sources : (string * string) list) =
  let module Cc = Ldb_cc in
  let where_matches (s : Cc.Sym.t) sv =
    match (s.Cc.Sym.where, sv.sv_where) with
    | Some (Cc.Sym.Frame off), Wframe off' -> off = off'
    | Some (Cc.Sym.In_reg r), Wreg r' -> r = r'
    | _ -> false
  in
  List.iter
    (fun uv ->
      match List.assoc_opt uv.uv_file sources with
      | None -> ()
      | Some src -> (
          match
            try
              let ast = Cc.Parse.parse_unit ~file:uv.uv_file ~arch:cx.arch src in
              Some (Cc.Sema.translate ~arch:cx.arch ~debug:true ast)
            with _ -> None
          with
          | None ->
              report cx F.Validity_unsound uv.uv_file
                "could not recompile the unit to recompute validity"
          | Some ui ->
              List.iter
                (fun (fi : Cc.Sema.func_ir) ->
                  let expected = Cc.Validity.compute fi in
                  match
                    List.find_opt
                      (fun pv -> pv.pv_sym.sv_name = fi.Cc.Sema.fi_name)
                      uv.uv_procs
                  with
                  | None -> () (* missing procs are check_differential's complaint *)
                  | Some pv ->
                      List.iter
                        (fun ((s : Cc.Sym.t), ranges) ->
                          match
                            List.find_opt
                              (fun sv ->
                                sv.sv_name = s.Cc.Sym.sym_name && where_matches s sv)
                              pv.pv_locals
                          with
                          | None ->
                              if ranges <> [] then
                                report cx F.Validity_unsound
                                  (F.at_pos s.Cc.Sym.sfile s.Cc.Sym.spos.Cc.Lex.line)
                                  "%s: the analysis tracks %s but the table carries no entry for it"
                                  fi.Cc.Sema.fi_name s.Cc.Sym.sym_name
                          | Some sv ->
                              if sv.sv_validity <> ranges then
                                report cx F.Validity_unsound
                                  (F.at_pos sv.sv_file sv.sv_line)
                                  "%s: the table's validity ranges for %s are not what the analysis proves"
                                  fi.Cc.Sema.fi_name sv.sv_name)
                        expected;
                      List.iter
                        (fun sv ->
                          let proven =
                            List.exists
                              (fun ((s : Cc.Sym.t), _) ->
                                s.Cc.Sym.sym_name = sv.sv_name && where_matches s sv)
                              expected
                          in
                          if (sv.sv_validity <> [] || sv.sv_validity_bad) && not proven
                          then
                            report cx F.Validity_unsound
                              (F.at_pos sv.sv_file sv.sv_line)
                              "%s: the table claims validity ranges for %s the analysis does not prove"
                              fi.Cc.Sema.fi_name sv.sv_name)
                        pv.pv_locals)
                ui.Cc.Sema.ui_funcs))
    cx.ps.psv_units

(* --- core dumps ------------------------------------------------------------- *)

module Crc32 = Ldb_util.Crc32

(** Verify a core dump against the linked image it claims to come from:
    the architecture identity, the register-file shape, every section's
    checksum, and that the fault pc lies inside the image's code segment.
    {!Ldb_machine.Core.of_string} {e tolerates} damage so that salvage
    sessions can proceed; this check {e reports} it, and catches dumps
    that were miswritten rather than damaged in flight. *)
let check_core (img : Link.image) (co : Core.t) : F.t list =
  let arch = img.Link.i_arch in
  let out = ref [] in
  let report kind where fmt =
    Printf.ksprintf
      (fun msg -> out := { F.kind; target = Arch.name arch; where; msg } :: !out)
      fmt
  in
  if not (Arch.equal co.Core.co_arch arch) then
    report F.Core_arch "core" "dumped on %s but the image is for %s"
      (Arch.name co.Core.co_arch) (Arch.name arch);
  (* register files must have exactly the dumping architecture's shape *)
  let tdesc = Target.of_arch co.Core.co_arch in
  if Array.length co.Core.co_regs <> Target.nregs tdesc then
    report F.Core_reg_width "registers" "%d general registers in the dump, %d on %s"
      (Array.length co.Core.co_regs) (Target.nregs tdesc) (Arch.name co.Core.co_arch);
  if Array.length co.Core.co_fregs <> Target.nfregs tdesc then
    report F.Core_reg_width "registers" "%d float registers in the dump, %d on %s"
      (Array.length co.Core.co_fregs) (Target.nfregs tdesc) (Arch.name co.Core.co_arch);
  if co.Core.co_freg_bytes <> tdesc.Target.ctx_freg_bytes then
    report F.Core_reg_width "registers" "%d-byte float images, %s saves %d bytes"
      co.Core.co_freg_bytes (Arch.name co.Core.co_arch) tdesc.Target.ctx_freg_bytes;
  Array.iteri
    (fun i image ->
      if String.length image <> co.Core.co_freg_bytes then
        report F.Core_reg_width (Printf.sprintf "f%d" i)
          "float image is %d bytes, header promises %d" (String.length image)
          co.Core.co_freg_bytes)
    co.Core.co_fregs;
  (* every section's bytes must checksum to its stored CRC *)
  List.iter
    (fun (s : Core.section) ->
      let computed = Crc32.string s.Core.sec_bytes in
      if computed <> s.Core.sec_crc then
        report F.Core_crc s.Core.sec_name
          "stored CRC %08x, %d bytes checksum to %08x" s.Core.sec_crc
          (String.length s.Core.sec_bytes) computed
      else if not s.Core.sec_ok then
        report F.Core_crc s.Core.sec_name "section was recorded as damaged")
    co.Core.co_sections;
  (* the fault pc must point into the code segment the image defines *)
  let code_end = Ram.Layout.code_base + String.length img.Link.i_code in
  if co.Core.co_pc < Ram.Layout.code_base || co.Core.co_pc >= code_end then
    report F.Core_pc (F.at_addr co.Core.co_pc)
      "fault pc outside the code segment [%#x, %#x)" Ram.Layout.code_base code_end;
  List.rev !out

(* --- breakpoint-condition bytecode (bpcverify) --------------------------------- *)

module Bpc = Ldb_nub.Bpcode
module Bpv = Ldb_nub.Bpverify

let bpc_load = Bpc.Load { space = 'd'; size = 4; signed = true }

(** The seeded corpus: condition programs with a known verdict on every
    target.  The [`Accept] entries are the shapes the condition compiler
    emits (frame locals off sp, global flags, short-circuit jumps); the
    [`Reject] entries are one of each hostile class the verifier must
    stop at the door. *)
let bpc_corpus (t : Target.t) : (string * Bpc.prog * [ `Accept | `Reject ]) list =
  let data = Int32.of_int (Ram.Layout.data_base + 8) in
  let cmp rel = Bpc.Cmp { rel; signed = true } in
  [
    ( "frame-local-compare",
      [| Bpc.Load_reg t.Target.sp; Bpc.Push 8l; Bpc.Bin Bpc.Add; bpc_load;
         Bpc.Push 10l; cmp Bpc.Lt |],
      `Accept );
    ("global-flag", [| Bpc.Push data; bpc_load; Bpc.Push 0l; cmp Bpc.Ne |], `Accept);
    ( "short-circuit-and",
      [| Bpc.Push data; bpc_load; Bpc.Jz 5; Bpc.Push data; bpc_load; Bpc.Push 0l;
         cmp Bpc.Ne; Bpc.Jmp 1; Bpc.Push 0l |],
      `Accept );
    ("empty", [||], `Reject);
    ("backward-jump", [| Bpc.Push 1l; Bpc.Jmp (-2) |], `Reject);
    ("jump-past-end", [| Bpc.Push 1l; Bpc.Jmp 100 |], `Reject);
    ("wild-read", [| Bpc.Push 0l; bpc_load |], `Reject);
    ( "unbounded-frame-offset",
      [| Bpc.Load_reg t.Target.sp; Bpc.Push 100000l; Bpc.Bin Bpc.Add; bpc_load |],
      `Reject );
    ("bool-as-address", [| Bpc.Push 1l; Bpc.Push 2l; cmp Bpc.Eq; bpc_load |], `Reject);
    ("stack-leak", [| Bpc.Push 1l; Bpc.Push 2l |], `Reject);
    ("underflow", [| Bpc.Bin Bpc.Add |], `Reject);
    ("divide-by-zero", [| Bpc.Push 1l; Bpc.Push 0l; Bpc.Bin Bpc.Divs |], `Reject);
  ]

(** Report the verifier's verdict on every seeded program as findings of
    the [bpcverify] family — acceptances and rejections both, so the
    golden JSON pins the whole proof surface: a verifier that starts
    accepting a hostile shape, or rejecting a compiler shape, shows up
    as a diff, not as a silent behavior change in the field. *)
let check_bpcode (arch : Arch.t) : F.t list =
  let t = Target.of_arch arch in
  let out = ref [] in
  let report where fmt =
    Printf.ksprintf
      (fun msg ->
        out := { F.kind = F.Bpc_verify; target = Arch.name arch; where; msg } :: !out)
      fmt
  in
  List.iter
    (fun (name, prog, expect) ->
      match (Bpv.verify t prog, expect) with
      | [], `Accept ->
          report name "accepted: %d instruction(s), static cost %d"
            (Array.length prog)
            (Array.fold_left
               (fun acc insn ->
                 acc + (match insn with Bpc.Load _ -> Bpc.load_cost | _ -> 1))
               0 prog)
      | [], `Reject -> report name "DISAGREEMENT: hostile program accepted"
      | findings, `Reject ->
          List.iter (fun f -> report name "rejected: %s" (Bpv.finding_to_string f)) findings
      | findings, `Accept ->
          List.iter
            (fun f ->
              report name "DISAGREEMENT: compiler shape rejected: %s"
                (Bpv.finding_to_string f))
            findings)
    (bpc_corpus t);
  List.rev !out

(* --- entry points -------------------------------------------------------------- *)

type opts = {
  stops : bool;
  symbols : bool;
  frames : bool;
  differential : bool;
  validity : bool;
}

let all_checks =
  { stops = true; symbols = true; frames = true; differential = true; validity = true }

(** Verify a linked image against its loader-table PostScript.  [tdesc]
    overrides the registered target description (used by tests to seed
    description/artifact skew).  [sources] supplies the original C text
    so the validity check can recompute the dataflow analysis and hold
    the tables to it; without sources only the artifact-level validity
    checks run.  Extraction failures become a single [Table_error]
    finding rather than an exception. *)
let check ?(opts = all_checks) ?tdesc ?(sources = []) (img : Link.image)
    (loader_ps : string) : F.t list =
  let arch = img.Link.i_arch in
  let tdesc = match tdesc with Some t -> t | None -> Target.of_arch arch in
  let out = ref [] in
  (try
     let ps = ps_view_of ~arch loader_ps in
     let cx =
       {
         arch;
         tname = Arch.name arch;
         tdesc;
         img;
         nm = Nm.run img;
         code_base = Ram.Layout.code_base;
         code_end = Ram.Layout.code_base + String.length img.Link.i_code;
         data_base = Ram.Layout.data_base;
         data_end = Ram.Layout.data_base + String.length img.Link.i_data;
         ps;
         out;
       }
     in
     if opts.stops then check_stops cx;
     if opts.symbols then begin
       check_symbols cx;
       check_hints cx
     end;
     if opts.frames then check_frames cx;
     if opts.differential then check_differential cx;
     if opts.validity then begin
       check_validity cx;
       if sources <> [] then check_validity_recompute cx sources
     end
   with
  | Extract m | V.Error (m, _) ->
      out :=
        { F.kind = F.Table_error; target = Arch.name arch; where = "loader-ps"; msg = m }
        :: !out);
  List.rev !out

(** Install dbgcheck as the linker driver's post-link verifier. *)
let install ~(mode : [ `Fail | `Warn | `Off ]) () =
  Ldb_link.Driver.dbgcheck_mode := mode;
  Ldb_link.Driver.dbgcheck_hook :=
    Some (fun img loader_ps -> List.map F.to_string (check img loader_ps))
