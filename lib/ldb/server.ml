(** The debug server: many sessions, one debugger.

    Hanson's revisit of ldb reworked it client/server; this module takes
    the next step the ROADMAP asks for and makes one server safe for a
    fleet.  A {!session} wraps one {!Ldb.target} (one nub link, or one
    core dump) behind a small command protocol, and the server multiplexes
    any number of them over the shared interpreter.  The headline is not
    the multiplexing but the robustness contract around it:

    - {b crash isolation}: every command runs under a supervisor that
      converts any exception — transport fault, symbol-table poison,
      interpreter error — into a typed {!refusal} or session-state
      change.  Nothing a session does can propagate past its boundary;
      the server itself never dies.
    - {b liveness}: live sessions are heartbeat-probed.  A silent peer
      moves to {!Unresponsive} with bounded exponential backoff between
      probes; enough consecutive misses escalate to the PR-6 going-down
      path (core-dump salvage via the transport's [on_down] hook) and a
      typed [Down] state.
    - {b backpressure}: per-session RPC budgets per tick and a cap on
      admitted sessions.  Exceeding either yields a typed [Overloaded]
      refusal instead of queue collapse.
    - {b shared image cache}: sessions debugging the same program (same
      loader-PostScript digest) share one {!Ldb.image} — symbol tables,
      forced units and lookup indexes are forced once and served to all.
      A poisoned unit is quarantined inside {!Symtab}, so it degrades
      only the queries that touch it, in every session, without
      re-forcing or cross-contamination.

    Everything is observable: state transitions append to a bounded event
    log (the chaos soak's flight recorder), and {!stats} counts cache
    hits, refusals, downs and heals for the bench. *)

open Ldb_machine
module Chan = Ldb_nub.Chan
module Proto = Ldb_nub.Proto

(* --- session lifecycle ------------------------------------------------------ *)

(** The supervision state machine.  Transitions:
    [Healthy -> Unresponsive] (missed heartbeat or transport timeout),
    [Unresponsive -> Healthy] (a probe or command answered),
    [Healthy | Unresponsive -> Down] (link dead, or misses exhausted),
    [any -> Closed] (deliberate detach/kill/close).
    [Down] and [Closed] are terminal, except that a [Down] session still
    answers {!Fetch_core} when a core was salvaged on the way down. *)
type session_state =
  | Healthy
  | Unresponsive of {
      misses : int;  (** consecutive failed probes *)
      next_beat : int;  (** tick of the next probe (exponential backoff) *)
    }
  | Down of {
      reason : string;
      salvaged : bool;  (** a core dump was captured on the way down *)
    }
  | Closed

let state_name = function
  | Healthy -> "healthy"
  | Unresponsive { misses; _ } -> Printf.sprintf "unresponsive(%d)" misses
  | Down { salvaged; _ } -> if salvaged then "down(core)" else "down"
  | Closed -> "closed"

(** Resource caps.  [li_max_rpcs_per_tick] bounds one session's wire
    traffic between two {!tick}s; [li_max_core_bytes] bounds the
    serialized core a {!Fetch_core} may hold in the server. *)
type limits = {
  li_max_sessions : int;
  li_max_rpcs_per_tick : int;
  li_max_core_bytes : int;
  li_hb_every : int;  (** ticks between heartbeats on a healthy session *)
  li_hb_max_misses : int;  (** consecutive misses before escalating to Down *)
  li_hb_deadline : int;  (** pump deadline of a probe — probes fail fast *)
  li_max_log : int;  (** event-log entries kept before truncation *)
}

let default_limits =
  {
    li_max_sessions = 256;
    li_max_rpcs_per_tick = 512;
    li_max_core_bytes = 1 lsl 23;
    li_hb_every = 4;
    li_hb_max_misses = 3;
    li_hb_deadline = 4;
    li_max_log = 4096;
  }

type session = {
  ss_id : int;
  ss_name : string;
  ss_tg : Ldb.target;
  ss_image : string;  (** image-cache key (loader-PostScript digest) *)
  mutable ss_state : session_state;
  mutable ss_rpc_floor : int;  (** transport RPC count at the last tick *)
  mutable ss_hb_due : int;  (** tick of the next scheduled heartbeat *)
}

(* --- the server ------------------------------------------------------------- *)

type stats = {
  mutable sv_opened : int;
  mutable sv_cache_hits : int;  (** sessions served by an already-loaded image *)
  mutable sv_cache_misses : int;  (** images loaded *)
  mutable sv_refused : int;  (** typed refusals returned *)
  mutable sv_failed : int;  (** commands that failed, session surviving *)
  mutable sv_downs : int;  (** sessions that went down *)
  mutable sv_heartbeats : int;  (** probes sent *)
  mutable sv_heals : int;  (** Unresponsive -> Healthy transitions *)
  mutable sv_cond_compiles : int;  (** breakpoint-condition compilations asked for *)
  mutable sv_cond_rejected : int;  (** conditions the verifier refused to ship *)
  mutable sv_cond_hits : int;  (** stops delivered because a condition was true *)
}

type log_entry = { ev_tick : int; ev_session : int; ev_line : string }

let log_entry_to_string e =
  Printf.sprintf "[tick %4d] session %3d: %s" e.ev_tick e.ev_session e.ev_line

(** How a server turns condition text into verified bytecode.  The
    expression server lives a library above this one, so the compiler is
    injected (see {!set_cond_compiler}); a server without one refuses
    [Condition] commands, typedly. *)
type cond_compiler =
  Ldb.t ->
  Ldb.target ->
  addr:int ->
  string ->
  ( Ldb_nub.Bpcode.prog,
    [ `Error of string
    | `Unsupported of string
    | `Unverified of Ldb_nub.Bpverify.finding list ] )
  result

type t = {
  sv_d : Ldb.t;  (** the one debugger (and interpreter) under every session *)
  sv_sessions : (int, session) Hashtbl.t;
  sv_images : (string, Ldb.image) Hashtbl.t;  (** keyed by loader-PS digest *)
  sv_limits : limits;
  sv_stats : stats;
  mutable sv_next_id : int;
  mutable sv_tick : int;
  mutable sv_log : log_entry list;  (** newest first, bounded *)
  mutable sv_log_len : int;
  mutable sv_log_dropped : int;  (** entries lost to the cap, for the marker *)
  mutable sv_compile_cond : cond_compiler option;
}

let create ?(limits = default_limits) () : t =
  {
    sv_d = Ldb.create ();
    sv_sessions = Hashtbl.create 64;
    sv_images = Hashtbl.create 8;
    sv_limits = limits;
    sv_stats =
      { sv_opened = 0; sv_cache_hits = 0; sv_cache_misses = 0; sv_refused = 0;
        sv_failed = 0; sv_downs = 0; sv_heartbeats = 0; sv_heals = 0;
        sv_cond_compiles = 0; sv_cond_rejected = 0; sv_cond_hits = 0 };
    sv_next_id = 1;
    sv_tick = 0;
    sv_log = [];
    sv_log_len = 0;
    sv_log_dropped = 0;
    sv_compile_cond = None;
  }

let set_cond_compiler (sv : t) (f : cond_compiler) : unit = sv.sv_compile_cond <- Some f

let stats (sv : t) : stats = sv.sv_stats
let debugger (sv : t) : Ldb.t = sv.sv_d

let log (sv : t) (id : int) fmt =
  Printf.ksprintf
    (fun line ->
      sv.sv_log <- { ev_tick = sv.sv_tick; ev_session = id; ev_line = line } :: sv.sv_log;
      sv.sv_log_len <- sv.sv_log_len + 1;
      let cap = sv.sv_limits.li_max_log in
      if sv.sv_log_len > cap then begin
        (* drop a batch of the oldest, not one at a time: the trim is O(n)
           and must not run on every append once the log is full *)
        let keep = max 1 (cap - (cap / 4)) in
        sv.sv_log <- List.filteri (fun i _ -> i < keep) sv.sv_log;
        sv.sv_log_dropped <- sv.sv_log_dropped + (sv.sv_log_len - keep);
        sv.sv_log_len <- keep
      end)
    fmt

(** The event log, oldest first — the soak harness's flight recorder.
    Truncation is never silent: when the cap has dropped older entries, a
    marker entry (session 0, the server itself) opens the log saying how
    many are gone, so a reader knows the record starts mid-story. *)
let events (sv : t) : log_entry list =
  let entries = List.rev sv.sv_log in
  if sv.sv_log_dropped = 0 then entries
  else
    let oldest_tick = match entries with e :: _ -> e.ev_tick | [] -> sv.sv_tick in
    {
      ev_tick = oldest_tick;
      ev_session = 0;
      ev_line =
        Printf.sprintf "event log truncated: %d older entr%s dropped"
          sv.sv_log_dropped
          (if sv.sv_log_dropped = 1 then "y" else "ies");
    }
    :: entries

(** How many entries the cap has discarded so far. *)
let events_dropped (sv : t) : int = sv.sv_log_dropped

let session (sv : t) (id : int) : session option = Hashtbl.find_opt sv.sv_sessions id

let sessions (sv : t) : session list =
  Hashtbl.fold (fun _ s acc -> s :: acc) sv.sv_sessions []
  |> List.sort (fun a b -> compare a.ss_id b.ss_id)

let session_state (sv : t) (id : int) : session_state option =
  Option.map (fun s -> s.ss_state) (session sv id)

let live_sessions (sv : t) : int =
  Hashtbl.fold
    (fun _ s n ->
      match s.ss_state with Healthy | Unresponsive _ -> n + 1 | Down _ | Closed -> n)
    sv.sv_sessions 0

(* --- the command protocol --------------------------------------------------- *)

type command =
  | Break_function of string
  | Break_line of { file : string option; line : int }
  | Condition of { addr : int; cond : string }
      (** compile, verify and attach a condition to the breakpoint at [addr] *)
  | Continue
  | Step_source
  | Where
  | Backtrace
  | Print of string  (** print a variable in the top frame *)
  | Read_int of string  (** fetch a scalar in the top frame *)
  | Fetch_core
  | Detach
  | Kill

let command_name = function
  | Break_function f -> "break " ^ f
  | Break_line { file; line } ->
      Printf.sprintf "break %s:%d" (Option.value ~default:"*" file) line
  | Condition { addr; cond } -> Printf.sprintf "condition %#x if %s" addr cond
  | Continue -> "continue"
  | Step_source -> "step"
  | Where -> "where"
  | Backtrace -> "backtrace"
  | Print v -> "print " ^ v
  | Read_int v -> "read " ^ v
  | Fetch_core -> "core"
  | Detach -> "detach"
  | Kill -> "kill"

type reply =
  | R_unit
  | R_addr of int
  | R_addrs of int list
  | R_state of Ldb.state
  | R_text of string
  | R_int of int
  | R_core of Core.t

(** Why a command was not executed.  [Failed] is the crash-isolation
    catch-all: the command misfired (bad symbol, poisoned unit, transport
    retry exhaustion, ...) but the session survives.  The others are
    states of the session or server, not of the command. *)
type refusal =
  | No_such_session of int
  | Session_closed of int
  | Session_down of { reason : string; salvaged : bool }
  | Overloaded of string
  | Failed of string

let refusal_to_string = function
  | No_such_session id -> Printf.sprintf "no session %d" id
  | Session_closed id -> Printf.sprintf "session %d is closed" id
  | Session_down { reason; salvaged } ->
      Printf.sprintf "session is down (%s)%s" reason
        (if salvaged then "; a salvaged core answers `core`" else "")
  | Overloaded m -> "overloaded: " ^ m
  | Failed m -> "command failed: " ^ m

let state_to_string : Ldb.state -> string = function
  | Ldb.Running -> "running"
  | Ldb.Stopped { signal; code; _ } ->
      Printf.sprintf "stopped %s (code %#x)" (Signal.name signal) code
  | Ldb.Exited n -> Printf.sprintf "exited %d" n
  | Ldb.Detached -> "detached"

let reply_to_string = function
  | R_unit -> "ok"
  | R_addr a -> Printf.sprintf "%#x" a
  | R_addrs addrs ->
      String.concat " " (List.map (Printf.sprintf "%#x") addrs)
  | R_state st -> state_to_string st
  | R_text s -> s
  | R_int n -> string_of_int n
  | R_core co -> Printf.sprintf "core (%d bytes)" (String.length (Core.to_string co))

(* --- opening and closing sessions ------------------------------------------- *)

(** The cached image for [loader_ps], loading it on first sight. *)
let image_for (sv : t) ~(loader_ps : string) : Ldb.image =
  let h = Ldb.image_hash loader_ps in
  match Hashtbl.find_opt sv.sv_images h with
  | Some im ->
      sv.sv_stats.sv_cache_hits <- sv.sv_stats.sv_cache_hits + 1;
      im
  | None ->
      let im = Ldb.load_image sv.sv_d ~loader_ps in
      Hashtbl.replace sv.sv_images h im;
      sv.sv_stats.sv_cache_misses <- sv.sv_stats.sv_cache_misses + 1;
      im

let cached_images (sv : t) : int = Hashtbl.length sv.sv_images

let refuse (sv : t) (r : refusal) : ('a, refusal) result =
  sv.sv_stats.sv_refused <- sv.sv_stats.sv_refused + 1;
  Error r

let admit (sv : t) (name : string) (tg : Ldb.target) (image : string) : session =
  let id = sv.sv_next_id in
  sv.sv_next_id <- id + 1;
  let s =
    {
      ss_id = id;
      ss_name = name;
      ss_tg = tg;
      ss_image = image;
      ss_state = Healthy;
      ss_rpc_floor =
        (* the connect handshake is not charged against the first tick *)
        (match tg.Ldb.tg_conn with
        | Ldb.Live tr -> (Transport.stats tr).Transport.st_rpcs
        | Ldb.Postmortem _ -> 0);
      ss_hb_due = sv.sv_tick + sv.sv_limits.li_hb_every;
    }
  in
  Hashtbl.replace sv.sv_sessions id s;
  sv.sv_stats.sv_opened <- sv.sv_stats.sv_opened + 1;
  log sv id "opened (%s, image %s)" name (String.sub image 0 8);
  s

(** Open a session over a nub link.  Admission applies backpressure: a
    full server refuses with [Overloaded] rather than degrading everyone.
    Connection failures are typed, not raised. *)
let open_session ?deadline ?max_retries (sv : t) ~(name : string)
    ~(loader_ps : string) (chan : Chan.endpoint) : (int, refusal) result =
  if live_sessions sv >= sv.sv_limits.li_max_sessions then
    refuse sv
      (Overloaded
         (Printf.sprintf "server full: %d live sessions" sv.sv_limits.li_max_sessions))
  else
    match
      let image = image_for sv ~loader_ps in
      Ldb.connect_with_image ?deadline ?max_retries sv.sv_d ~name ~image chan
    with
    | tg -> Ok (admit sv name tg (Ldb.image_hash loader_ps)).ss_id
    | exception e ->
        sv.sv_stats.sv_failed <- sv.sv_stats.sv_failed + 1;
        refuse sv (Failed (Ldb.exn_text e))

(** Open a post-mortem session over a loaded core dump: queries only, no
    heartbeats, no transport. *)
let open_core_session (sv : t) ~(name : string) ~(loader_ps : string)
    (loaded : Core.t * Core.salvage list) : (int, refusal) result =
  match
    let image = image_for sv ~loader_ps in
    Ldb.connect_core_with_image sv.sv_d ~name ~image loaded
  with
  | tg -> Ok (admit sv name tg (Ldb.image_hash loader_ps)).ss_id
  | exception e ->
      sv.sv_stats.sv_failed <- sv.sv_stats.sv_failed + 1;
      refuse sv (Failed (Ldb.exn_text e))

(** Close a session: release the target (detach by default) and forget
    it.  Closing an already-down or closed session is a no-op. *)
let close_session ?(kill = false) (sv : t) (id : int) : unit =
  match session sv id with
  | None -> ()
  | Some s ->
      (match s.ss_state with
      | Closed -> ()
      | Down _ -> s.ss_state <- Closed
      | Healthy | Unresponsive _ ->
          (try if kill then Ldb.kill s.ss_tg else Ldb.detach s.ss_tg with _ -> ());
          s.ss_state <- Closed;
          log sv id "closed (%s)" (if kill then "killed" else "detached"));
      Ldb.remove_target sv.sv_d s.ss_tg

(* --- supervision ------------------------------------------------------------ *)

(** Take a session down: fire the transport's going-down hook (the PR-6
    salvage path — it grabs a core while the link still answers, at most
    once per connection) and record why. *)
let mark_down (sv : t) (s : session) ~(reason : string) : unit =
  (match s.ss_tg.Ldb.tg_conn with
  | Ldb.Live tr -> Transport.fire_down tr `Lost
  | Ldb.Postmortem _ -> ());
  let salvaged = s.ss_tg.Ldb.tg_core <> None in
  s.ss_state <- Down { reason; salvaged };
  sv.sv_stats.sv_downs <- sv.sv_stats.sv_downs + 1;
  log sv s.ss_id "down: %s%s" reason (if salvaged then " (core salvaged)" else "")

(** Release one session on the way to shutdown.  A healthy target is
    detached — {!Ldb.detach} runs the full [unplant_for_release] trap
    scrub, so the debuggee keeps running with clean text.  A target that
    cannot detach (wire already dead, scrub fails) goes down the salvage
    path instead: {!mark_down} grabs a core while anything still answers.
    Terminal sessions are left alone. *)
let drain_session (sv : t) (id : int) : [ `Detached | `Salvaged | `Already_over ] =
  match session sv id with
  | None -> `Already_over
  | Some s -> (
      match s.ss_state with
      | Closed | Down _ -> `Already_over
      | Healthy | Unresponsive _ -> (
          match Ldb.detach s.ss_tg with
          | () ->
              s.ss_state <- Closed;
              log sv id "drained (detached)";
              Ldb.remove_target sv.sv_d s.ss_tg;
              `Detached
          | exception _ ->
              mark_down sv s ~reason:"drain: detach failed";
              `Salvaged))

let heal (sv : t) (s : session) =
  match s.ss_state with
  | Unresponsive { misses; _ } ->
      s.ss_state <- Healthy;
      s.ss_hb_due <- sv.sv_tick + sv.sv_limits.li_hb_every;
      sv.sv_stats.sv_heals <- sv.sv_stats.sv_heals + 1;
      log sv s.ss_id "healed after %d missed probe%s" misses
        (if misses = 1 then "" else "s")
  | _ -> ()

(** One failed probe (or probe-like command failure): move toward Down
    with exponential backoff between probes, escalating when the miss
    budget is spent. *)
let suspect (sv : t) (s : session) ~(what : string) : unit =
  let misses =
    match s.ss_state with Unresponsive { misses; _ } -> misses + 1 | _ -> 1
  in
  if misses >= sv.sv_limits.li_hb_max_misses then
    mark_down sv s
      ~reason:(Printf.sprintf "unresponsive: %d consecutive misses (%s)" misses what)
  else begin
    let backoff = sv.sv_limits.li_hb_every * (1 lsl misses) in
    s.ss_state <- Unresponsive { misses; next_beat = sv.sv_tick + backoff };
    log sv s.ss_id "unresponsive (%s), probe %d/%d in %d ticks" what misses
      sv.sv_limits.li_hb_max_misses backoff
  end

let rpcs_since_tick (s : session) : int =
  match s.ss_tg.Ldb.tg_conn with
  | Ldb.Live tr -> (Transport.stats tr).Transport.st_rpcs - s.ss_rpc_floor
  | Ldb.Postmortem _ -> 0

exception Refused of refusal

(** A delivered stop at a breakpoint that carries a condition is, by
    construction, a {e true} hit (false ones were resumed silently, on
    whichever side evaluates); count and log it with its suppressions. *)
let count_cond_hit (sv : t) (s : session) (st : Ldb.state) : unit =
  match st with
  | Ldb.Stopped { ctx_addr; _ } -> (
      let tg = s.ss_tg in
      match
        Hashtbl.find_opt tg.Ldb.tg_breaks (Ldb.read_ctx_pc tg ctx_addr)
      with
      | Some { Breakpoint.bp_cond = Some c; bp_addr; _ } ->
          sv.sv_stats.sv_cond_hits <- sv.sv_stats.sv_cond_hits + 1;
          log sv s.ss_id "condition %s true at %#x (%d silent resume%s so far)"
            c.Breakpoint.c_text bp_addr c.Breakpoint.c_suppressed
            (if c.Breakpoint.c_suppressed = 1 then "" else "s")
      | _ -> ())
  | _ -> ()

(** Run one command for one session.  Raises only {!Refused}; every other
    failure mode is converted here — this is the isolation boundary. *)
let run_command (sv : t) (s : session) (cmd : command) : reply =
  let d = sv.sv_d in
  let tg = s.ss_tg in
  let dead m = raise (Refused (Failed m)) in
  match cmd with
  | Break_function f -> R_addr (Ldb.break_function d tg f)
  | Break_line { file; line } -> R_addrs (Ldb.break_line ?file d tg ~line)
  | Condition { addr; cond } -> (
      match sv.sv_compile_cond with
      | None -> raise (Refused (Failed "this server has no condition compiler"))
      | Some compile -> (
          sv.sv_stats.sv_cond_compiles <- sv.sv_stats.sv_cond_compiles + 1;
          let rejected fs =
            sv.sv_stats.sv_cond_rejected <- sv.sv_stats.sv_cond_rejected + 1;
            let msg =
              String.concat "; " (List.map Ldb_nub.Bpverify.finding_to_string fs)
            in
            log sv s.ss_id "condition at %#x rejected by the verifier: %s" addr msg;
            raise (Refused (Failed ("unverified condition: " ^ msg)))
          in
          match compile d tg ~addr cond with
          | Ok prog -> (
              match Ldb.set_condition d tg ~addr ~text:cond prog with
              | Ok site ->
                  let where =
                    match site with `Nub -> "on the nub" | `Debugger -> "in the debugger"
                  in
                  log sv s.ss_id "condition at %#x: %s (runs %s)" addr cond where;
                  R_text (match site with `Nub -> "nub" | `Debugger -> "debugger")
              | Error (`Unverified fs) -> rejected fs)
          | Error (`Unverified fs) -> rejected fs
          | Error (`Unsupported m) | Error (`Error m) -> raise (Refused (Failed m))))
  | Continue -> (
      match Ldb.continue_ d tg with
      | Ok st ->
          count_cond_hit sv s st;
          R_state st
      | Error (`Dead_process m) -> dead m)
  | Step_source -> (
      match Ldb.step_source d tg with
      | Ok st -> R_state st
      | Error (`Dead_process m) -> dead m)
  | Where -> R_text (Ldb.where d tg)
  | Backtrace ->
      let frames = Ldb.backtrace d tg in
      R_text
        (String.concat "\n"
           (List.mapi
              (fun i fr ->
                let line =
                  match Ldb.stop_of_frame d tg fr with
                  | Some st -> Printf.sprintf " line %d" st.Symtab.stop_line
                  | None -> ""
                in
                Printf.sprintf "#%d %s%s" i (Ldb.frame_function d tg fr) line)
              frames))
  | Print name -> R_text (String.trim (Ldb.print_value d tg (Ldb.top_frame d tg) name))
  | Read_int name -> R_int (Ldb.read_int_var d tg (Ldb.top_frame d tg) name)
  | Fetch_core ->
      let co = Ldb.fetch_core tg in
      let n = String.length (Core.to_string co) in
      if n > sv.sv_limits.li_max_core_bytes then
        raise
          (Refused
             (Overloaded
                (Printf.sprintf "core is %d bytes; the per-session cap is %d" n
                   sv.sv_limits.li_max_core_bytes)))
      else R_core co
  | Detach ->
      close_session sv s.ss_id;
      R_unit
  | Kill ->
      close_session ~kill:true sv s.ss_id;
      R_unit

(** Execute [cmd] on session [id], supervised.  All failure is typed:
    the server survives anything a session's wire or symbol table does.
    A command that answers on an [Unresponsive] session heals it. *)
let exec (sv : t) (id : int) (cmd : command) : (reply, refusal) result =
  match session sv id with
  | None -> refuse sv (No_such_session id)
  | Some s -> (
      match s.ss_state with
      | Closed -> refuse sv (Session_closed id)
      | Down { reason; salvaged } when not (salvaged && cmd = Fetch_core) ->
          (* a salvaged core still answers Fetch_core; everything else is
             over *)
          refuse sv (Session_down { reason; salvaged })
      | Down _ | Healthy | Unresponsive _ -> (
          if rpcs_since_tick s >= sv.sv_limits.li_max_rpcs_per_tick then
            refuse sv
              (Overloaded
                 (Printf.sprintf "session %d spent its %d-RPC budget this tick" id
                    sv.sv_limits.li_max_rpcs_per_tick))
          else
            match run_command sv s cmd with
            | reply ->
                heal sv s;
                Ok reply
            | exception Refused r ->
                sv.sv_stats.sv_failed <- sv.sv_stats.sv_failed + 1;
                refuse sv r
            | exception Transport.Error (Transport.Disconnected, m) ->
                mark_down sv s ~reason:m;
                let salvaged =
                  match s.ss_state with Down { salvaged; _ } -> salvaged | _ -> false
                in
                refuse sv (Session_down { reason = m; salvaged })
            | exception Transport.Error (_, m) ->
                (* link up but failing: treat like a missed probe *)
                suspect sv s ~what:(command_name cmd);
                sv.sv_stats.sv_failed <- sv.sv_stats.sv_failed + 1;
                refuse sv (Failed m)
            | exception e ->
                (* the catch-all that keeps the server alive *)
                sv.sv_stats.sv_failed <- sv.sv_stats.sv_failed + 1;
                log sv id "command %s failed: %s" (command_name cmd) (Ldb.exn_text e);
                refuse sv (Failed (Ldb.exn_text e))))

(* --- liveness --------------------------------------------------------------- *)

(** Probe one session with a fast-failing Hello (one attempt, short
    deadline — the probe must not ride the transport's full recovery
    policy, or a dead peer would stall the server's whole tick). *)
let heartbeat (sv : t) (s : session) : unit =
  match s.ss_tg.Ldb.tg_conn with
  | Ldb.Postmortem _ -> ()
  | Ldb.Live tr -> (
      sv.sv_stats.sv_heartbeats <- sv.sv_stats.sv_heartbeats + 1;
      match
        Transport.rpc ~deadline:sv.sv_limits.li_hb_deadline ~max_retries:0 tr
          Proto.Hello
      with
      | Proto.Hello_reply _ ->
          heal sv s;
          s.ss_hb_due <- sv.sv_tick + sv.sv_limits.li_hb_every
      | _ ->
          (* an answer, if a strange one: the peer is alive *)
          heal sv s;
          s.ss_hb_due <- sv.sv_tick + sv.sv_limits.li_hb_every
      | exception Transport.Error (Transport.Disconnected, m) ->
          mark_down sv s ~reason:m
      | exception Transport.Error (_, m) -> suspect sv s ~what:("heartbeat: " ^ m)
      | exception e -> suspect sv s ~what:("heartbeat: " ^ Ldb.exn_text e))

(** Advance the server's clock: reset every session's per-tick RPC budget
    and probe the sessions whose heartbeat is due.  An [Unresponsive]
    session's next probe follows its backoff schedule. *)
let tick (sv : t) : unit =
  sv.sv_tick <- sv.sv_tick + 1;
  Hashtbl.iter
    (fun _ s ->
      (match s.ss_tg.Ldb.tg_conn with
      | Ldb.Live tr -> s.ss_rpc_floor <- (Transport.stats tr).Transport.st_rpcs
      | Ldb.Postmortem _ -> ());
      match s.ss_state with
      | Healthy when sv.sv_tick >= s.ss_hb_due -> heartbeat sv s
      | Unresponsive { next_beat; _ } when sv.sv_tick >= next_beat -> heartbeat sv s
      | _ -> ())
    sv.sv_sessions

(* --- reporting -------------------------------------------------------------- *)

(** One line per session, for the CLI and the soak log. *)
let render_sessions (sv : t) : string =
  let b = Buffer.create 256 in
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "%3d  %-16s %-10s image %s\n" s.ss_id s.ss_name
           (state_name s.ss_state)
           (String.sub s.ss_image 0 8)))
    (sessions sv);
  Buffer.contents b
