(** The client interface (Sec. 6, 7.1): an event-driven layer above the
    debugger, of the kind the paper argues gdb and dbx should export for
    user interfaces and higher-level tools (dbxtool, Dalek, event-action
    debugging).

    Conditional breakpoints fall out as the special case the paper notes:
    an event handler that evaluates a predicate in the stopped frame and
    silently resumes when it is false. *)

open Ldb_machine

type event =
  | Ev_breakpoint of { addr : int; frame : Frame.t }
  | Ev_signal of { signal : Signal.t; code : int; frame : Frame.t }
  | Ev_exit of int

type decision =
  | Resume  (** continue the target *)
  | Pause   (** hand control back to the caller *)

type t = {
  d : Ldb.t;
  tg : Ldb.target;
  mutable conditions : (int * (Frame.t -> bool)) list;
      (** per-address breakpoint predicates *)
}

let create (d : Ldb.t) (tg : Ldb.target) : t = { d; tg; conditions = [] }

(** Plant a conditional breakpoint: the target only "stops" (from the
    client's point of view) when [cond] holds in the stopped frame. *)
let break_when (c : t) ~(addr : int) (cond : Frame.t -> bool) : unit =
  ignore (Breakpoint.plant c.tg.Ldb.tg_breaks c.tg.Ldb.tg_tdesc c.tg.Ldb.tg_wire ~addr);
  c.conditions <- (addr, cond) :: List.remove_assoc addr c.conditions

(** Conditional breakpoint by source line: plant at every stopping point
    on [line] (in [?file], when given — only that unit's symbol table is
    forced) and attach [cond] to each. *)
let break_line_when ?file (c : t) ~(line : int) (cond : Frame.t -> bool) : int list =
  let addrs = Ldb.break_line ?file c.d c.tg ~line in
  List.iter
    (fun addr -> c.conditions <- (addr, cond) :: List.remove_assoc addr c.conditions)
    addrs;
  addrs

(** Source position of a frame, via the symbol table's pc index:
    (procedure, line, column), when the pc maps to a known stopping
    point. *)
let source_of (c : t) (frame : Frame.t) : (string * int * int) option =
  match Ldb.stop_of_frame c.d c.tg frame with
  | None -> None
  | Some s ->
      Some
        (Symtab.entry_name s.Symtab.stop_proc, s.Symtab.stop_line, s.Symtab.stop_col)

(** Classify the current stop as an event. *)
let classify (c : t) : event =
  match c.tg.Ldb.tg_state with
  | Ldb.Exited n -> Ev_exit n
  | Ldb.Stopped { signal; code; ctx_addr } ->
      let frame = Ldb.top_frame c.d c.tg in
      let pc = Int32.to_int (Ldb_amemory.Amemory.fetch_i32 c.tg.Ldb.tg_wire
          (Ldb_amemory.Amemory.absolute 'd' (ctx_addr + c.tg.Ldb.tg_tdesc.Target.ctx_pc_off)))
      in
      if Breakpoint.is_breakpoint_fault c.tg.Ldb.tg_breaks ~signal ~pc then
        Ev_breakpoint { addr = pc; frame }
      else Ev_signal { signal; code; frame }
  | _ -> Ev_exit (-1)

(** Drive the target, delivering events to [handler] until it asks to
    pause or the target exits.  Breakpoints whose condition is false are
    resumed without consulting the handler. *)
let run (c : t) ~(handler : event -> decision) : event =
  let rec loop () =
    match Ldb.continue_ c.d c.tg with
    | Error (`Dead_process m) -> failwith m
    | Ok (Ldb.Exited n) ->
        let ev = Ev_exit n in
        ignore (handler ev);
        ev
    | Ok (Ldb.Stopped _) -> (
        let ev = classify c in
        let pass =
          match ev with
          | Ev_breakpoint { addr; frame } -> (
              match List.assoc_opt addr c.conditions with
              | Some cond -> cond frame
              | None -> true)
          | _ -> true
        in
        if not pass then loop ()
        else match handler ev with Resume -> loop () | Pause -> ev)
    | Ok _ -> classify c
  in
  loop ()

(** Like {!run}, but with every failure typed instead of raised: a server
    driving a client loop on behalf of a remote session must get a value
    back whatever the wire does.  [`Dead_process] is the PR-6 post-mortem
    answer; [`Transport_fault] carries the transport's classification so
    the supervisor can distinguish a silent peer from a dead link. *)
let try_run (c : t) ~(handler : event -> decision) :
    ( event,
      [ `Dead_process of string | `Transport_fault of Transport.kind * string ] )
    result =
  match run c ~handler with
  | ev -> Ok ev
  | exception Failure m -> Error (`Dead_process m)
  | exception Transport.Error (kind, m) -> Error (`Transport_fault (kind, m))

(* --- data watchpoints --------------------------------------------------- *)

(** Run until the 32-bit word at [addr] changes (a software watchpoint,
    implemented by single-stepping — slow, as on real debuggers without
    hardware assistance).  Returns the event at the instruction after the
    modification, or the exit/fault that ended the run. *)
let watch (c : t) ~(addr : int) ?(limit = 500_000) () : event =
  let read () =
    Ldb_amemory.Amemory.fetch_i32 c.tg.Ldb.tg_wire (Ldb_amemory.Amemory.absolute 'd' addr)
  in
  let initial = read () in
  let rec go n =
    if n >= limit then failwith "watch: no modification within the step budget"
    else
      match Ldb.step_instruction c.d c.tg with
      | Ok (Ldb.Stopped { signal = SIGTRAP; code = 1; _ }) ->
          if read () <> initial then classify c else go (n + 1)
      | Ok (Ldb.Exited code) -> Ev_exit code
      | Ok (Ldb.Stopped _) -> classify c
      | Error (`Dead_process m) -> failwith m
      | Ok _ -> Ev_exit (-1)
  in
  go 0
