(** Breakpoints, implemented entirely in the debugger with ordinary
    fetches and stores (Sec. 3, Sec. 6) — the nub protocol knows nothing
    about them.

    A breakpoint is planted by overwriting an instruction with the trap
    pattern.  For now (as in the paper) breakpoints may be planted only at
    no-op instructions, which can be skipped instead of interpreted; the
    implementation is machine-independent but manipulates four items of
    machine-dependent data: the no-op and trap bit patterns, the
    granularity used to fetch and store instructions, and the pc advance
    after "interpreting" the no-op. *)

open Ldb_machine
module A = Ldb_amemory.Amemory

exception Error of string

(** Where a breakpoint's condition is evaluated: on the nub, from
    verified bytecode shipped into the target's address space (one RPC
    per {e true} hit), or on the debugger side, interpreting the same
    bytecode over the wire memory (one round trip per {e trap}). *)
type cond_site = [ `Nub | `Debugger ]

type cond = {
  c_text : string;  (** the condition as the user wrote it *)
  c_prog : Ldb_nub.Bpcode.prog;  (** verified before it was accepted *)
  c_site : cond_site;
  mutable c_suppressed : int;
      (** stops silently resumed because the condition was false *)
}

type t = {
  bp_addr : int;
  bp_original : string;  (** the instruction bytes replaced by the trap *)
  bp_general : bool;     (** planted over a real instruction, not a no-op:
                             resuming needs the nub's single-step extension *)
  mutable bp_planted : bool;
  mutable bp_suspended : bool;
      (** unplanted by a detach, to be replanted on reattach — distinct
          from a user's removal, which must {e not} come back *)
  mutable bp_source : (string * int) option;
      (** (procedure, line) this breakpoint was set from, when it came from
          a source-level request — listing breakpoints names the source
          location without another symbol-table query *)
  mutable bp_cond : cond option;
      (** stop only when this (compiled, verified) condition is true *)
}

type table = (int, t) Hashtbl.t

let create_table () : table = Hashtbl.create 16

(* instructions are fetched and stored byte-wise through the code space,
   so byte order never enters the picture *)
let fetch_bytes (wire : A.t) addr n =
  String.init n (fun i -> Char.chr (A.fetch_u8 wire (A.absolute 'c' (addr + i))))

let store_bytes (wire : A.t) addr (s : string) =
  String.iteri (fun i c -> A.store_u8 wire (A.absolute 'c' (addr + i)) (Char.code c)) s

(** Plant a breakpoint at [addr], which must hold a no-op.  [?source]
    records the (procedure, line) the request named. *)
let plant ?source (tbl : table) (target : Target.t) (wire : A.t) ~addr : t =
  match Hashtbl.find_opt tbl addr with
  | Some bp ->
      if not bp.bp_planted then begin
        store_bytes wire addr target.Target.brk;
        bp.bp_planted <- true
      end;
      (match source with Some _ -> bp.bp_source <- source | None -> ());
      bp
  | None ->
      let nop = target.Target.nop in
      let current = fetch_bytes wire addr (String.length nop) in
      if not (String.equal current nop) then
        raise
          (Error
             (Printf.sprintf "%#x does not hold a no-op (found %s)" addr
                (String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length current) (String.get current)))))));
      store_bytes wire addr target.Target.brk;
      let bp =
        { bp_addr = addr; bp_original = nop; bp_general = false; bp_planted = true;
          bp_suspended = false; bp_source = source; bp_cond = None }
      in
      Hashtbl.replace tbl addr bp;
      bp

(** Plant a breakpoint over an arbitrary instruction (Sec. 7.1's
    replacement model): the overwritten bytes are saved, and resuming
    restores them, single-steps, and replants.  The caller must have
    verified that the nub supports the Step extension. *)
let plant_general (tbl : table) (target : Target.t) (wire : A.t) ~addr : t =
  match Hashtbl.find_opt tbl addr with
  | Some bp ->
      if not bp.bp_planted then begin
        store_bytes wire addr target.Target.brk;
        bp.bp_planted <- true
      end;
      bp
  | None ->
      let brk = target.Target.brk in
      let original = fetch_bytes wire addr (String.length brk) in
      store_bytes wire addr brk;
      let bp =
        { bp_addr = addr; bp_original = original; bp_general = true; bp_planted = true;
          bp_suspended = false; bp_source = None; bp_cond = None }
      in
      Hashtbl.replace tbl addr bp;
      bp

(** Remove a breakpoint: restore the no-op. *)
let remove (tbl : table) (wire : A.t) ~addr =
  match Hashtbl.find_opt tbl addr with
  | Some bp when bp.bp_planted ->
      store_bytes wire addr bp.bp_original;
      bp.bp_planted <- false;
      bp.bp_suspended <- false
  | _ -> ()

let remove_all (tbl : table) (wire : A.t) =
  Hashtbl.iter (fun addr _ -> remove tbl wire ~addr) tbl

(** Unplant every planted breakpoint without forgetting it, so a released
    target resumes over its own instructions (detach and kill must leave
    no trap bytes behind).  Suspended breakpoints are replanted by
    {!resume_suspended} on reattach.  Returns the number unplanted. *)
let suspend_all (tbl : table) (wire : A.t) : int =
  Hashtbl.fold
    (fun addr bp n ->
      if bp.bp_planted then begin
        store_bytes wire addr bp.bp_original;
        bp.bp_planted <- false;
        bp.bp_suspended <- true;
        n + 1
      end
      else n)
    tbl 0

(** Replant the breakpoints a detach suspended (user-removed ones stay
    removed).  Returns the number replanted. *)
let resume_suspended (tbl : table) (target : Target.t) (wire : A.t) : int =
  Hashtbl.fold
    (fun addr bp n ->
      if bp.bp_suspended then begin
        store_bytes wire addr target.Target.brk;
        bp.bp_planted <- true;
        bp.bp_suspended <- false;
        n + 1
      end
      else n)
    tbl 0

(** Breakpoints whose trap bytes are still in target memory although the
    debugger believes them unplanted (suspended or removed).  Non-empty
    after a release whose stores were lost on a faulty wire: the caller
    re-stores the originals until this comes back empty — leaving a trap
    in a target nobody is debugging turns its next execution into an
    unhandled fault. *)
let residual_traps (tbl : table) (wire : A.t) : t list =
  Hashtbl.fold
    (fun addr bp acc ->
      if bp.bp_planted then acc
      else
        let held = fetch_bytes wire addr (String.length bp.bp_original) in
        if String.equal held bp.bp_original then acc
        else { bp with bp_addr = addr } :: acc)
    tbl []

(** The machine-dependent procedure that distinguishes breakpoint faults
    from other faults (Sec. 4.3). *)
let is_breakpoint_fault (tbl : table) ~(signal : Signal.t) ~pc =
  Signal.equal signal SIGTRAP
  && (match Hashtbl.find_opt tbl pc with Some bp -> bp.bp_planted | None -> false)

let planted (tbl : table) = Hashtbl.fold (fun _ bp acc -> if bp.bp_planted then bp :: acc else acc) tbl []

(** After reattaching to a nub, confirm every breakpoint the debugger
    believes is planted still has its trap bytes in target memory, and
    replant any that do not (the nub preserves memory across debugger
    crashes, so this is normally a pure check).  Returns the number of
    breakpoints that had to be replanted. *)
let revalidate (tbl : table) (target : Target.t) (wire : A.t) : int =
  let brk = target.Target.brk in
  Hashtbl.fold
    (fun addr bp replanted ->
      if not bp.bp_planted then replanted
      else if String.equal (fetch_bytes wire addr (String.length brk)) brk then replanted
      else begin
        store_bytes wire addr brk;
        replanted + 1
      end)
    tbl 0
