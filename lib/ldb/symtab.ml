(** Symbol-table management: forcing deferred unit bodies, mapping program
    counters to procedure entries, mapping source locations to stopping
    points, and resolving names by walking the uplink tree (Sec. 2). *)

module V = Ldb_pscript.Value
module I = Ldb_pscript.Interp

exception Error of string

(** Static pre-execution check (pslint) of deferred unit bodies: the body
    string is verified before it is tokenized and run for the first time.
    [`Fail] refuses to force a unit with findings, [`Warn] records them in
    [lint_warnings] and forces anyway, [`Off] skips the check. *)
let lint_mode : [ `Fail | `Warn | `Off ] ref = ref `Fail

type t = {
  interp : I.t;
  symtab : V.dict;  (** the __symtab dictionary *)
  arch : Ldb_machine.Arch.t;
  mutable forced : bool;
  mutable procs : V.t list;  (** procedure entries from all units *)
  mutable externs : V.dict list;  (** per-unit externs dictionaries *)
  mutable sourcefiles : string list;
  mutable lint_warnings : string list;  (** findings kept under [`Warn] *)
}

let dict_str d key =
  match V.dict_get d key with Some v -> Some (V.to_str v) | None -> None

let make ~(interp : I.t) ~(symtab_dict : V.dict) : t =
  let arch =
    match dict_str symtab_dict "architecture" with
    | Some a -> (
        match Ldb_machine.Arch.of_name a with
        | Some a -> a
        | None -> raise (Error ("unknown architecture " ^ a)))
    | None -> raise (Error "symbol table lacks /architecture")
  in
  { interp; symtab = symtab_dict; arch; forced = false; procs = []; externs = [];
    sourcefiles = []; lint_warnings = [] }

(** Verify a deferred body before its first execution.  Bodies that are
    already procedures were tokenized (and emit-time checked) by the
    compiler, so only strings are re-verified here. *)
let lint_body (st : t) ~file (body : V.t) =
  match (!lint_mode, body.V.v) with
  | `Off, _ | _, V.Arr _ -> ()
  | mode, V.Str src -> (
      let env = Ldb_pscheck.Pscheck.debugger_env () in
      match
        Ldb_pscheck.Pscheck.check_program ~env ~deep:true ~name:(file ^ ":pstab") src
      with
      | [] -> ()
      | fs ->
          let msgs = List.map Ldb_pscheck.Lattice.finding_to_string fs in
          if mode = `Fail then
            raise
              (Error
                 (Printf.sprintf "unit %s fails pslint:\n%s" file (String.concat "\n" msgs)))
          else st.lint_warnings <- st.lint_warnings @ msgs)
  | _, _ -> ()

(** Force every unit body: execute the deferred strings (tokenizing them
    now) and collect each unit's result dictionary.  Requires the
    architecture dictionary to be on the interpreter's dictionary stack
    (register locations are computed as the table is interpreted). *)
let force (st : t) =
  if not st.forced then begin
    st.forced <- true;
    match V.dict_get st.symtab "units" with
    | None -> ()
    | Some units ->
        let ud = V.to_dict units in
        let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) ud.V.tbl [] in
        List.iter
          (fun (file, entry) ->
            let ed = V.to_dict entry in
            let body =
              match V.dict_get ed "body" with
              | Some b -> b
              | None -> raise (Error ("unit " ^ file ^ " lacks /body"))
            in
            let tag =
              match dict_str ed "tag" with
              | Some tg -> tg
              | None -> raise (Error ("unit " ^ file ^ " lacks /tag"))
            in
            st.sourcefiles <- file :: st.sourcefiles;
            (* execute the body: a deferred string or a procedure *)
            lint_body st ~file body;
            I.exec_value st.interp (V.cvx body);
            let result =
              match I.lookup st.interp ("UNITRESULT$" ^ tag) with
              | Some r -> V.to_dict r
              | None -> raise (Error ("unit " ^ file ^ " did not define its result"))
            in
            (match V.dict_get result "procs" with
            | Some ps -> st.procs <- st.procs @ Array.to_list (V.to_arr ps)
            | None -> ());
            match V.dict_get result "externs" with
            | Some e -> st.externs <- V.to_dict e :: st.externs
            | None -> ())
          entries
  end

(* --- procedure entries ------------------------------------------------------ *)

let entry_name (e : V.t) =
  match V.dict_get (V.to_dict e) "name" with Some n -> V.to_str n | None -> "?"

(** The linker label of a procedure entry (from its where procedure's
    global-code reference). *)
let proc_label (e : V.t) =
  match V.dict_get (V.to_dict e) "where" with
  | Some w -> (
      match w.V.v with
      | V.Arr items ->
          (* {(label) GlobalCodeLoc} *)
          Array.fold_left
            (fun acc (it : V.t) ->
              match (acc, it.V.v) with None, V.Str s -> Some s | acc, _ -> acc)
            None items
      | _ -> None)
  | None -> None

(** Find the procedure entry whose linker label is [label]. *)
let proc_by_label (st : t) label =
  force st;
  List.find_opt (fun e -> proc_label e = Some label) st.procs

(** Find a procedure entry by source-level name. *)
let proc_by_name (st : t) name =
  force st;
  List.find_opt (fun e -> entry_name e = name) st.procs

(* --- stopping points --------------------------------------------------------- *)

type stop = {
  stop_proc : V.t;    (** procedure entry *)
  stop_index : int;   (** index in the loci array *)
  stop_line : int;
  stop_col : int;
  stop_objloc : V.t;  (** procedure computing the object-code location *)
  stop_scope : V.t;   (** symbol entry visible here, or null *)
}

let loci_of (proc_entry : V.t) : V.t array =
  match V.dict_get (V.to_dict proc_entry) "loci" with
  | Some l -> V.to_arr l
  | None -> [||]

let stop_of_locus proc_entry idx (locus : V.t) : stop =
  let a = V.to_arr locus in
  if Array.length a < 4 then raise (Error "malformed locus");
  {
    stop_proc = proc_entry;
    stop_index = idx;
    stop_line = V.to_int a.(0);
    stop_col = V.to_int a.(1);
    stop_objloc = a.(2);
    stop_scope = a.(3);
  }

(** All stopping points of a procedure. *)
let stops_of_proc (proc_entry : V.t) : stop list =
  Array.to_list (Array.mapi (stop_of_locus proc_entry) (loci_of proc_entry))

(** Stopping points at a source line, across all procedures.  A single
    source location may correspond to more than one stopping point. *)
let stops_at_line (st : t) ~line : stop list =
  force st;
  List.concat_map (fun p -> List.filter (fun s -> s.stop_line = line) (stops_of_proc p))
    st.procs

(** The entry stopping point of a procedure (its lowest-numbered locus). *)
let entry_stop (st : t) ~name : stop option =
  match proc_by_name st name with
  | None -> None
  | Some p -> ( match stops_of_proc p with s :: _ -> Some s | [] -> None)

(* --- name resolution ---------------------------------------------------------- *)

(** Resolve [name] from a stopping point: walk the uplink tree of local
    entries, then the unit's statics, then the program's externs. *)
let resolve (st : t) (stop : stop option) (name : string) : V.t option =
  force st;
  let rec walk (entry : V.t) =
    match entry.V.v with
    | V.Null -> None
    | V.Dict d -> (
        match V.dict_get d "name" with
        | Some n when V.to_str n = name -> Some entry
        | _ -> ( match V.dict_get d "uplink" with Some up -> walk up | None -> None))
    | _ -> None
  in
  let local =
    match stop with
    | Some s -> walk s.stop_scope
    | None -> None
  in
  match local with
  | Some e -> Some e
  | None -> (
      (* statics of the stopped procedure's unit *)
      let from_statics =
        match stop with
        | Some s -> (
            match V.dict_get (V.to_dict s.stop_proc) "statics" with
            | Some statics -> V.dict_get (V.to_dict statics) name
            | None -> None)
        | None -> None
      in
      match from_statics with
      | Some e -> Some e
      | None ->
          (* externs across all units *)
          List.fold_left
            (fun acc d -> match acc with Some _ -> acc | None -> V.dict_get d name)
            None st.externs)

(** All source files known to this symbol table. *)
let source_files st =
  force st;
  st.sourcefiles
