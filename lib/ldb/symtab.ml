(** Symbol-table management: demand-driven forcing of deferred unit
    bodies, indexed lookup of procedures and stopping points, mapping
    program counters to procedure entries, and resolving names by walking
    the uplink tree (Sec. 2, Sec. 5).

    The paper's debugger "loads symbol tables on demand": a query touches
    only the compilation units it needs.  The top-level units dictionary
    carries demand hints emitted by the compiler — the names and linker
    labels each unit defines, and the source-line range of its stopping
    points — so [proc_by_name], [proc_by_label] and [stops_at_line] force
    exactly one unit in the common case.  Tables without hints still work:
    queries fall back to forcing unforced units one at a time until the
    answer appears.

    Lookup indexes are built incrementally as units are forced: name→proc
    and label→proc hashtables, a per-line stop index, a per-procedure
    sorted pc-interval index (built lazily, since object-code addresses
    require interpreting location procedures), and a per-name cache of
    extern resolutions. *)

module V = Ldb_pscript.Value
module I = Ldb_pscript.Interp

exception Error of string

(** Static pre-execution check (pslint) of deferred unit bodies: the body
    string is verified before it is tokenized and run for the first time.
    [`Fail] refuses to force a unit with findings, [`Warn] records them in
    [lint_warnings] and forces anyway, [`Off] skips the check. *)
let lint_mode : [ `Fail | `Warn | `Off ] ref = ref `Fail

(** Test/bench observation point: called with the unit's source file name
    immediately before its body is executed. *)
let force_hook : (string -> unit) ref = ref (fun _ -> ())

(* --- stopping points --------------------------------------------------------- *)

type stop = {
  stop_proc : V.t;    (** procedure entry *)
  stop_index : int;   (** index in the loci array *)
  stop_line : int;
  stop_col : int;
  stop_objloc : V.t;  (** procedure computing the object-code location *)
  stop_scope : V.t;   (** symbol entry visible here, or null *)
}

(* --- per-unit state ----------------------------------------------------------- *)

type unit_info = {
  u_file : string;                    (** source file, the forcing key *)
  u_tag : string;
  mutable u_body : V.t;               (** deferred string or procedure;
                                          replaced by the decoded text on
                                          first force of an encoded body *)
  mutable u_encoding : string option; (** [Some "lzw"] until decoded *)
  u_names : string list;              (** demand hints: names defined here *)
  u_labels : string list;             (** their linker labels *)
  u_lines : (int * int) option;       (** line range carrying stops *)
  u_has_hints : bool;                 (** entry carries /names metadata *)
  mutable u_forced : bool;
}

type t = {
  interp : I.t;
  symtab : V.dict;  (** the __symtab dictionary *)
  arch : Ldb_machine.Arch.t;
  units : unit_info list;  (** sorted by file name, for deterministic order *)
  mutable procs_rev : V.t list;  (** procedure entries of forced units,
                                     accumulated in reverse (no quadratic
                                     list append) *)
  mutable externs : (unit_info * V.dict) list;  (** per-unit externs, forced *)
  mutable lint_warnings_rev : string list;  (** findings kept under [`Warn] *)
  (* lookup indexes, filled as units are forced *)
  by_name : (string, V.t) Hashtbl.t;
  by_label : (string, V.t) Hashtbl.t;
  by_line : (int, stop list) Hashtbl.t;
  pc_index : (string, (int * stop) array) Hashtbl.t;
      (** proc label -> loci sorted by object-code address *)
  extern_cache : (string, V.t) Hashtbl.t;  (** memoized extern resolutions *)
  quarantined : (string, string) Hashtbl.t;
      (** file -> reason for every unit whose force failed.  A poisoned
          body is never re-executed: a direct force raises the recorded
          reason as a typed {!Error} immediately, and the demand-driven
          search paths route around the unit — so, on a table shared by
          many sessions, a broken unit degrades only the queries that
          actually need it, in every session, without re-forcing. *)
}

let dict_str d key =
  match V.dict_get d key with Some v -> Some (V.to_str v) | None -> None

let dict_int d key =
  match V.dict_get d key with Some v -> Some (V.to_int v) | None -> None

let str_list d key =
  match V.dict_get d key with
  | Some v -> Some (Array.to_list (Array.map V.to_str (V.to_arr v)))
  | None -> None

let unit_of_entry (file : string) (entry : V.t) : unit_info =
  let ed = V.to_dict entry in
  let body =
    match V.dict_get ed "body" with
    | Some b -> b
    | None -> raise (Error ("unit " ^ file ^ " lacks /body"))
  in
  let tag =
    match dict_str ed "tag" with
    | Some tg -> tg
    | None -> raise (Error ("unit " ^ file ^ " lacks /tag"))
  in
  let names = str_list ed "names" in
  let labels = Option.value ~default:[] (str_list ed "labels") in
  let lines =
    match (dict_int ed "minline", dict_int ed "maxline") with
    | Some lo, Some hi -> Some (lo, hi)
    | _ -> None
  in
  {
    u_file = file;
    u_tag = tag;
    u_body = body;
    u_encoding = dict_str ed "encoding";
    u_names = Option.value ~default:[] names;
    u_labels = labels;
    u_lines = lines;
    u_has_hints = names <> None;
    u_forced = false;
  }

let make ~(interp : I.t) ~(symtab_dict : V.dict) : t =
  let arch =
    match dict_str symtab_dict "architecture" with
    | Some a -> (
        match Ldb_machine.Arch.of_name a with
        | Some a -> a
        | None -> raise (Error ("unknown architecture " ^ a)))
    | None -> raise (Error "symbol table lacks /architecture")
  in
  let units =
    match V.dict_get symtab_dict "units" with
    | None -> []
    | Some units ->
        let ud = V.to_dict units in
        Hashtbl.fold (fun file entry acc -> unit_of_entry file entry :: acc) ud.V.tbl []
        |> List.sort (fun a b -> String.compare a.u_file b.u_file)
  in
  {
    interp;
    symtab = symtab_dict;
    arch;
    units;
    procs_rev = [];
    externs = [];
    lint_warnings_rev = [];
    by_name = Hashtbl.create 64;
    by_label = Hashtbl.create 64;
    by_line = Hashtbl.create 64;
    pc_index = Hashtbl.create 16;
    extern_cache = Hashtbl.create 16;
    quarantined = Hashtbl.create 4;
  }

(* --- procedure entries ------------------------------------------------------ *)

let entry_name (e : V.t) =
  match V.dict_get (V.to_dict e) "name" with Some n -> V.to_str n | None -> "?"

(** The linker label of a procedure entry (from its where procedure's
    global-code reference). *)
let proc_label (e : V.t) =
  match V.dict_get (V.to_dict e) "where" with
  | Some w -> (
      match w.V.v with
      | V.Arr items ->
          (* {(label) GlobalCodeLoc} *)
          Array.fold_left
            (fun acc (it : V.t) ->
              match (acc, it.V.v) with None, V.Str s -> Some s | acc, _ -> acc)
            None items
      | _ -> None)
  | None -> None

let loci_of (proc_entry : V.t) : V.t array =
  match V.dict_get (V.to_dict proc_entry) "loci" with
  | Some l -> V.to_arr l
  | None -> [||]

let stop_of_locus proc_entry idx (locus : V.t) : stop =
  let a = V.to_arr locus in
  if Array.length a < 4 then raise (Error "malformed locus");
  {
    stop_proc = proc_entry;
    stop_index = idx;
    stop_line = V.to_int a.(0);
    stop_col = V.to_int a.(1);
    stop_objloc = a.(2);
    stop_scope = a.(3);
  }

(** All stopping points of a procedure. *)
let stops_of_proc (proc_entry : V.t) : stop list =
  Array.to_list (Array.mapi (stop_of_locus proc_entry) (loci_of proc_entry))

(* --- variable validity ------------------------------------------------------ *)

(** Compiler-proven validity of a variable at one stopping point, decoded
    from the symbol entry's [/validity] ranges (a flat [lo hi fact ...]
    array over the procedure's stop indexes; see lib/cc/validity.ml). *)
type validity = Vuninit | Vvalid | Vdead

let validity_name = function
  | Vuninit -> "uninit"
  | Vvalid -> "valid"
  | Vdead -> "dead"

(** [validity_at entry ~stop_index] decodes the variable's fact at one
    stop.  [None] when the table carries no ranges for this variable (the
    analysis did not track it) or the ranges do not cover the index — the
    debugger must then assume the value is printable. *)
let validity_at (entry : V.t) ~(stop_index : int) : validity option =
  match entry.V.v with
  | V.Dict d -> (
      match V.dict_get d "validity" with
      | None -> None
      | Some rv -> (
          match rv.V.v with
          | V.Arr a when Array.length a mod 3 = 0 ->
              let n = Array.length a / 3 in
              let rec go i =
                if i >= n then None
                else
                  let lo = V.to_int a.((3 * i)) and hi = V.to_int a.((3 * i) + 1) in
                  if stop_index >= lo && stop_index <= hi then
                    match V.to_int a.((3 * i) + 2) with
                    | 0 -> Some Vuninit
                    | 1 -> Some Vvalid
                    | 2 -> Some Vdead
                    | _ -> None
                  else go (i + 1)
              in
              go 0
          | _ -> None))
  | _ -> None

(* --- forcing ----------------------------------------------------------------- *)

(** Verify a deferred body before its first execution.  Bodies that are
    already procedures were tokenized (and emit-time checked) by the
    compiler, so only strings are re-verified here. *)
let lint_body (st : t) ~file (body : V.t) =
  match (!lint_mode, body.V.v) with
  | `Off, _ | _, V.Arr _ -> ()
  | mode, V.Str src -> (
      let env = Ldb_pscheck.Pscheck.debugger_env () in
      match
        Ldb_pscheck.Pscheck.check_program ~env ~deep:true ~name:(file ^ ":pstab") src
      with
      | [] -> ()
      | fs ->
          let msgs = List.map Ldb_pscheck.Lattice.finding_to_string fs in
          if mode = `Fail then
            raise
              (Error
                 (Printf.sprintf "unit %s fails pslint:\n%s" file (String.concat "\n" msgs)))
          else st.lint_warnings_rev <- List.rev_append msgs st.lint_warnings_rev)
  | _, _ -> ()

(** Decode a transfer-encoded body (LZW-compressed deferred string),
    memoizing the decoded text so retries and the tokenization cache see
    the same string. *)
let decoded_body (u : unit_info) : V.t =
  match u.u_encoding with
  | Some "lzw" ->
      let src =
        match u.u_body.V.v with
        | V.Str s -> ( try Ldb_util.Lzw.decompress s
                       with Invalid_argument _ ->
                         raise (Error ("unit " ^ u.u_file ^ ": corrupt lzw body")))
        | _ -> raise (Error ("unit " ^ u.u_file ^ ": encoded body is not a string"))
      in
      u.u_body <- V.str src;
      u.u_encoding <- None;
      u.u_body
  | Some other -> raise (Error ("unit " ^ u.u_file ^ ": unknown body encoding " ^ other))
  | None -> u.u_body

(** Index one newly forced unit's procedures and stopping points. *)
let index_unit (st : t) (procs : V.t list) =
  List.iter
    (fun p ->
      let n = entry_name p in
      if not (Hashtbl.mem st.by_name n) then Hashtbl.replace st.by_name n p;
      (match proc_label p with
      | Some l -> if not (Hashtbl.mem st.by_label l) then Hashtbl.replace st.by_label l p
      | None -> ());
      List.iter
        (fun s ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt st.by_line s.stop_line) in
          Hashtbl.replace st.by_line s.stop_line (prev @ [ s ]))
        (stops_of_proc p))
    procs

(** Force one unit: execute its (decoded) body, collect the unit's result
    dictionary, extend the indexes.  A body that raises leaves the unit
    unforced and the table untouched, and {e quarantines} it: the failure
    reason is recorded, the interpreter's operand stack is restored (a
    body that died halfway may have left garbage on it), and every later
    force of the unit raises the recorded reason immediately instead of
    re-executing the poisoned body.  Requires the architecture dictionary
    on the interpreter's dictionary stack (register locations are
    computed as the table is interpreted). *)
let force_unit_info (st : t) (u : unit_info) =
  if not u.u_forced then begin
    (match Hashtbl.find_opt st.quarantined u.u_file with
    | Some reason -> raise (Error ("unit " ^ u.u_file ^ " is quarantined: " ^ reason))
    | None -> ());
    let saved_ostack = st.interp.I.ostack in
    match
      let body = decoded_body u in
      lint_body st ~file:u.u_file body;
      !force_hook u.u_file;
      I.exec_value st.interp (V.cvx body);
      match I.lookup st.interp ("UNITRESULT$" ^ u.u_tag) with
      | Some r -> V.to_dict r
      | None -> raise (Error ("unit " ^ u.u_file ^ " did not define its result"))
    with
    | result ->
        (* only now, with the body fully executed, commit the unit *)
        u.u_forced <- true;
        let procs =
          match V.dict_get result "procs" with
          | Some ps -> Array.to_list (V.to_arr ps)
          | None -> []
        in
        st.procs_rev <- List.rev_append procs st.procs_rev;
        (match V.dict_get result "externs" with
        | Some e -> st.externs <- (u, V.to_dict e) :: st.externs
        | None -> ());
        index_unit st procs
    | exception e ->
        st.interp.I.ostack <- saved_ostack;
        let reason = match e with Error m -> m | e -> Printexc.to_string e in
        Hashtbl.replace st.quarantined u.u_file reason;
        raise (Error ("unit " ^ u.u_file ^ ": " ^ reason))
  end

(** Broken units and why they are quarantined, in file order. *)
let quarantined_units (st : t) : (string * string) list =
  Hashtbl.fold (fun f r acc -> (f, r) :: acc) st.quarantined []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find_unit (st : t) ~file =
  match List.find_opt (fun u -> u.u_file = file) st.units with
  | Some u -> u
  | None -> raise (Error ("no unit for source file " ^ file))

(** Force the unit for one source file.  An explicit force is the repair
    path: it lifts any quarantine and re-executes the body — unlike the
    demand-driven lookups, which never retry a quarantined unit. *)
let force_unit (st : t) ~file =
  Hashtbl.remove st.quarantined file;
  force_unit_info st (find_unit st ~file)

(** Force every unit (differential tests, whole-table consumers). *)
let force_all (st : t) = List.iter (force_unit_info st) st.units

(** Kept as the historical name of whole-table forcing. *)
let force = force_all

(* --- forcing statistics ------------------------------------------------------ *)

let body_bytes (u : unit_info) =
  match u.u_body.V.v with V.Str s -> String.length s | _ -> 0

let unit_count (st : t) = List.length st.units
let forced_units (st : t) = List.filter_map (fun u -> if u.u_forced then Some u.u_file else None) st.units
let total_bytes (st : t) = List.fold_left (fun a u -> a + body_bytes u) 0 st.units
let forced_bytes (st : t) =
  List.fold_left (fun a u -> if u.u_forced then a + body_bytes u else a) 0 st.units

(** All source files known to this symbol table (available without
    forcing: the units dictionary names them). *)
let source_files (st : t) = List.map (fun u -> u.u_file) st.units

(** Lint findings recorded under [`Warn], in discovery order. *)
let lint_warnings (st : t) = List.rev st.lint_warnings_rev

(** All procedure entries, forcing the whole table; the linear-scan
    baseline for benches and differential tests. *)
let procs (st : t) =
  force_all st;
  List.rev st.procs_rev

(* --- demand-driven lookup ---------------------------------------------------- *)

(** Force units until [found] answers, preferring units whose demand hints
    say they define [key] ([hint] selects the hint list); units without
    hints are tried in file order.  A unit whose force fails (and is
    thereby quarantined) is routed around: the search continues with the
    remaining units, so a broken unit costs only the lookups whose answer
    actually lives inside it. *)
let search_units (st : t) ~(hint : unit_info -> string list) ~(key : string)
    (found : unit -> 'a option) : 'a option =
  match found () with
  | Some _ as r -> r
  | None ->
      let candidates, rest =
        List.partition
          (fun u -> (not u.u_forced) && List.mem key (hint u))
          (List.filter (fun u -> not u.u_forced) st.units)
      in
      let rec try_units = function
        | [] -> None
        | u :: us -> (
            (try force_unit_info st u with Error _ -> ());
            match found () with Some _ as r -> r | None -> try_units us)
      in
      (match try_units candidates with
      | Some _ as r -> r
      | None ->
          (* no (or wrong) hints: fall back to the remaining unforced
             units, hintless ones first (old-style tables) *)
          let hintless, hinted = List.partition (fun u -> not u.u_has_hints) rest in
          try_units (hintless @ hinted))

(** Find a procedure entry by source-level name, forcing (ideally) only
    the unit that defines it. *)
let proc_by_name (st : t) name =
  search_units st ~hint:(fun u -> u.u_names) ~key:name (fun () ->
      Hashtbl.find_opt st.by_name name)

(** Find the procedure entry whose linker label is [label]. *)
let proc_by_label (st : t) label =
  search_units st ~hint:(fun u -> u.u_labels) ~key:label (fun () ->
      Hashtbl.find_opt st.by_label label)

(** Stopping points at a source line.  With [?file] only that unit is
    consulted (and forced); otherwise every unit whose line-range hint
    covers [line] is forced, and hintless units are forced defensively. *)
let stops_at_line ?file (st : t) ~line : stop list =
  (match file with
  | Some f -> force_unit_info st (find_unit st ~file:f)
  | None ->
      List.iter
        (fun u ->
          let covers =
            match u.u_lines with
            | Some (lo, hi) -> line >= lo && line <= hi
            | None -> not u.u_has_hints  (* no hints: must look inside *)
          in
          (* a quarantined unit costs only the lines it covers *)
          if covers then try force_unit_info st u with Error _ -> ())
        st.units);
  let stops = Option.value ~default:[] (Hashtbl.find_opt st.by_line line) in
  match file with
  | None -> stops
  | Some f ->
      List.filter
        (fun s ->
          match V.dict_get (V.to_dict s.stop_proc) "sourcefile" with
          | Some sf -> V.to_str sf = f
          | None -> true)
        stops

(** The entry stopping point of a procedure (its lowest-numbered locus). *)
let entry_stop (st : t) ~name : stop option =
  match proc_by_name st name with
  | None -> None
  | Some p -> ( match stops_of_proc p with s :: _ -> Some s | [] -> None)

(* --- the pc-interval index ---------------------------------------------------- *)

let pc_key (proc_entry : V.t) =
  match proc_label proc_entry with Some l -> l | None -> entry_name proc_entry

(** The stopping points of a procedure sorted by object-code address.
    Addresses come from interpreting each locus's location procedure, so
    the caller supplies [addr_of] (with the target dictionaries bound);
    the result is memoized per procedure — the single-step loop and the
    frame walkers hit this on every step. *)
let stop_index (st : t) ~(addr_of : stop -> int) (proc_entry : V.t) : (int * stop) array =
  let key = pc_key proc_entry in
  match Hashtbl.find_opt st.pc_index key with
  | Some a -> a
  | None ->
      let a =
        stops_of_proc proc_entry
        |> List.map (fun s -> (addr_of s, s))
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> Array.of_list
      in
      Hashtbl.replace st.pc_index key a;
      a

(** Addresses of every stopping point of a procedure, ascending. *)
let stop_addresses (st : t) ~addr_of proc_entry : int list =
  Array.to_list (Array.map fst (stop_index st ~addr_of proc_entry))

(** The stopping point governing [pc]: the locus whose address is nearest
    at or below it (binary search over the pc-interval index). *)
let stop_at_pc (st : t) ~addr_of proc_entry ~pc : stop option =
  let idx = stop_index st ~addr_of proc_entry in
  let n = Array.length idx in
  let rec search lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let addr, s = idx.(mid) in
      if addr <= pc then search (mid + 1) hi (Some s) else search lo (mid - 1) best
  in
  if n = 0 then None else search 0 (n - 1) None

(* --- name resolution ---------------------------------------------------------- *)

(** Extern lookup across units: consult already-forced units' externs
    first, then force the unit whose hints claim the name, then (last
    resort) the rest of the table.  Hits are cached per name. *)
let resolve_extern (st : t) (name : string) : V.t option =
  match Hashtbl.find_opt st.extern_cache name with
  | Some e -> Some e
  | None ->
      let scan () =
        List.fold_left
          (fun acc (_, d) -> match acc with Some _ -> acc | None -> V.dict_get d name)
          None st.externs
      in
      let r = search_units st ~hint:(fun u -> u.u_names) ~key:name scan in
      (match r with Some e -> Hashtbl.replace st.extern_cache name e | None -> ());
      r

(** Resolve [name] from a stopping point: walk the uplink tree of local
    entries, then the unit's statics, then the program's externs — the
    locals and statics steps need no forcing beyond the unit the stop
    itself came from. *)
let resolve (st : t) (stop : stop option) (name : string) : V.t option =
  let rec walk (entry : V.t) =
    match entry.V.v with
    | V.Null -> None
    | V.Dict d -> (
        match V.dict_get d "name" with
        | Some n when V.to_str n = name -> Some entry
        | _ -> ( match V.dict_get d "uplink" with Some up -> walk up | None -> None))
    | _ -> None
  in
  let local =
    match stop with
    | Some s -> walk s.stop_scope
    | None -> None
  in
  match local with
  | Some e -> Some e
  | None -> (
      (* statics of the stopped procedure's unit *)
      let from_statics =
        match stop with
        | Some s -> (
            match V.dict_get (V.to_dict s.stop_proc) "statics" with
            | Some statics -> V.dict_get (V.to_dict statics) name
            | None -> None)
        | None -> None
      in
      match from_statics with
      | Some e -> Some e
      | None -> resolve_extern st name)

(* --- linear-scan baselines ---------------------------------------------------- *)

(** The pre-index lookups: force everything, scan flat lists.  Kept as the
    differential baseline the bench and the eager-vs-lazy tests compare
    the indexed paths against. *)
let proc_by_name_scan (st : t) name =
  List.find_opt (fun e -> entry_name e = name) (procs st)

let proc_by_label_scan (st : t) label =
  List.find_opt (fun e -> proc_label e = Some label) (procs st)

let stops_at_line_scan (st : t) ~line : stop list =
  List.concat_map
    (fun p -> List.filter (fun s -> s.stop_line = line) (stops_of_proc p))
    (procs st)
