(** The debugger's resilient end of the ldb↔nub link.

    Wraps a {!Ldb_nub.Chan} endpoint with the recovery policy the raw
    channel deliberately does not have:

    - every request travels as a checksummed, sequence-numbered frame
      ({!Ldb_nub.Frame});
    - a checksum failure or timeout triggers a bounded retry of the same
      request {e under the same sequence number} — the nub executes at
      most once and retransmits its cached reply to duplicates;
    - waiting "backs off" by doubling the pump deadline each attempt,
      the discrete-event analogue of exponential backoff, which rides
      out injected stalls;
    - stale replies (sequence number below the outstanding request) are
      discarded, so a duplicated or delayed reply can never be taken for
      the answer to a later question;
    - failures surface as one typed exception, {!Error}, classified
      {!Timeout} (link up, peer silent — retrying may help),
      {!Corrupt} (retries exhausted on damaged frames) or
      {!Disconnected} (link down — only {!reconnect}, followed by the
      caller's resync, can help).

    The transport survives its channel: [reconnect] swaps in a fresh
    endpoint after the old link died, preserving the caller's wire
    abstract memory and everything built over it. *)

module Chan = Ldb_nub.Chan
module Frame = Ldb_nub.Frame
module Proto = Ldb_nub.Proto

type kind = Timeout | Corrupt | Disconnected

let kind_name = function
  | Timeout -> "timeout"
  | Corrupt -> "corrupt"
  | Disconnected -> "disconnected"

exception Error of kind * string

let error kind fmt =
  Fmt.kstr (fun m -> raise (Error (kind, Printf.sprintf "%s: %s" (kind_name kind) m))) fmt

type stats = {
  mutable st_rpcs : int;            (** requests issued *)
  mutable st_retries : int;         (** re-sends after a failed attempt *)
  mutable st_corrupt : int;         (** corrupt frames observed *)
  mutable st_timeouts : int;        (** attempts that timed out *)
  mutable st_stale : int;           (** stale duplicate replies discarded *)
  mutable st_reconnects : int;      (** endpoints swapped in *)
  mutable st_down_fires : int;      (** going-down hook invocations — at
                                        most one per connection *)
}

type t = {
  mutable ep : Chan.endpoint;
  mutable seq : int;
  base_deadline : int;   (** pump deadline of the first attempt *)
  max_retries : int;     (** re-sends after the initial attempt *)
  stats : stats;
  mutable on_down : ([ `Deliberate | `Lost ] -> unit) option;
      (** fired once per connection as the link goes down — [`Deliberate]
          on a kill/detach shutdown, [`Lost] when an RPC finds the link
          dead.  The debugger hooks this to grab a core dump on the way
          down while the channel still works. *)
  mutable down_done : bool;
}

let make ?(deadline = 8) ?(max_retries = 4) (ep : Chan.endpoint) : t =
  {
    ep;
    seq = 0;
    base_deadline = max 1 deadline;
    max_retries = max 0 max_retries;
    stats =
      { st_rpcs = 0; st_retries = 0; st_corrupt = 0; st_timeouts = 0; st_stale = 0;
        st_reconnects = 0; st_down_fires = 0 };
    on_down = None;
    down_done = false;
  }

let stats t = t.stats
let endpoint t = t.ep
let is_connected t = Chan.is_connected t.ep

(** Install (or clear) the going-down hook.  The hook is guaranteed to
    fire {e at most once per connection}, no matter how the link dies or
    how many observers notice: a deliberate kill followed by an RPC that
    detects the same link as lost runs it only for the kill — the session
    must not, e.g., record two core dumps for one dead target.  Swapping
    the hook after the link already went down does {e not} re-arm it;
    only {!reconnect} (a genuinely new connection) does. *)
let set_on_down t f = t.on_down <- f

(** Run the going-down hook, at most once per connection.  [down_done] is
    set {e before} the hook runs, so an RPC the hook itself issues cannot
    re-enter it when that RPC also finds the link dead. *)
let fire_down t reason =
  if not t.down_done then begin
    t.down_done <- true;
    t.stats.st_down_fires <- t.stats.st_down_fires + 1;
    match t.on_down with
    | Some f -> ( try f reason with _ -> ())
    | None -> ()
  end

(** Whether the going-down hook has already run for this connection. *)
let down_fired t = t.down_done

(** Swap in a fresh endpoint after the old link died.  Sequence numbers
    restart — the nub resets its duplicate-detection state on attach. *)
let reconnect (t : t) (ep : Chan.endpoint) : unit =
  t.ep <- ep;
  t.seq <- 0;
  t.down_done <- false;
  t.stats.st_reconnects <- t.stats.st_reconnects + 1

(** Issue [req] and wait for its reply, retrying with exponential
    deadline backoff on damage or silence.  Raises {!Error}.

    [?deadline] and [?max_retries] override the transport's defaults for
    this one call — heartbeat probes want to fail fast rather than ride
    the full recovery policy. *)
let rpc ?deadline ?max_retries (t : t) (req : Proto.request) : Proto.reply =
  let base_deadline = match deadline with Some d -> max 1 d | None -> t.base_deadline in
  let max_retries = match max_retries with Some r -> max 0 r | None -> t.max_retries in
  t.stats.st_rpcs <- t.stats.st_rpcs + 1;
  t.seq <- t.seq + 1;
  let seq = t.seq in
  let payload = Proto.encode_request req in
  let describe () = Fmt.str "%a (seq %d)" Proto.pp_request req seq in
  (* await a reply numbered [seq]; anything older is a stale duplicate *)
  let await deadline =
    let rec go () =
      match Frame.recv ~deadline t.ep with
      | Ok f when f.Frame.fr_seq = seq -> (
          match Proto.decode_reply f.Frame.fr_payload with
          | Ok r -> `Reply r
          | Error m ->
              t.stats.st_corrupt <- t.stats.st_corrupt + 1;
              `Failed (Corrupt, m))
      | Ok f when f.Frame.fr_seq < seq ->
          t.stats.st_stale <- t.stats.st_stale + 1;
          go ()
      | Ok f -> `Failed (Corrupt, Fmt.str "reply from the future (seq %d)" f.Frame.fr_seq)
      | Error m ->
          t.stats.st_corrupt <- t.stats.st_corrupt + 1;
          `Failed (Corrupt, m)
      | exception Chan.Timeout ->
          t.stats.st_timeouts <- t.stats.st_timeouts + 1;
          `Failed (Timeout, "no reply")
      | exception Chan.Disconnected -> `Disconnected
    in
    go ()
  in
  let rec attempt k last =
    if k > max_retries then
      let kind, m = last in
      error kind "%s after %d attempts: %s" (describe ()) (k) m
    else begin
      if k > 0 then t.stats.st_retries <- t.stats.st_retries + 1;
      match Frame.send t.ep ~seq payload with
      | exception Chan.Disconnected ->
          fire_down t `Lost;
          error Disconnected "%s: link down" (describe ())
      | () -> (
          match await (base_deadline * (1 lsl k)) with
          | `Reply r -> r
          | `Disconnected ->
              fire_down t `Lost;
              error Disconnected "%s: link down" (describe ())
          | `Failed (kind, m) -> attempt (k + 1) (kind, m))
    end
  in
  attempt 0 (Timeout, "no reply")

(** Send a request that has no reply ([Kill], [Detach]).  A dead link is
    ignored: the nub is unreachable, and both requests are about letting
    the target go. *)
let send_oneway (t : t) (req : Proto.request) : unit =
  t.stats.st_rpcs <- t.stats.st_rpcs + 1;
  t.seq <- t.seq + 1;
  try Frame.send t.ep ~seq:t.seq (Proto.encode_request req)
  with Chan.Disconnected -> ()

(** Deliberately take the link down with a final one-way [req] (Kill or
    Detach).  The going-down hook runs {e first}, while the link still
    answers — its last chance to pull a core dump across.  [disconnect]
    also closes the local endpoint. *)
let shutdown ?(disconnect = false) (t : t) (req : Proto.request) : unit =
  fire_down t `Deliberate;
  send_oneway t req;
  if disconnect then Chan.disconnect t.ep
