(** A core dump presented as a read-only abstract memory.

    The paper's abstract memories (Sec. 4.1) are what make the debugger's
    machine-independent layers indifferent to where bytes come from; this
    module supplies the post-mortem instance.  Fetches are answered from
    the dump's rehydrated RAM with exactly the live nub's semantics
    (sizes, canonical little-endian values, the SIM-MIPS word-swap quirk
    — all via {!Ldb_machine.Core.Service}), so frame walkers, the
    expression server, [print] and [disas] run unchanged over a dead
    process.  Stores raise {!Dead_process}: a dump is evidence, not a
    target.

    Salvage discipline: reads that touch a truncated or CRC-damaged
    section still answer with the bytes that survived, but each such
    read is recorded as a {!note}; the session surfaces the accumulated
    notes as per-query warnings instead of refusing the query. *)

open Ldb_machine
module A = Ldb_amemory.Amemory

(** Raised by operations that need a live process — stores, run, step. *)
exception Dead_process of string

let dead fmt = Fmt.kstr (fun m -> raise (Dead_process m)) fmt

(** Something a query had to tolerate: evidence the answer may be
    tainted. *)
type note =
  | Damaged_read of { addr : int; size : int; section : string }
      (** a fetch overlapped a section that is truncated or fails CRC *)

let note_to_string = function
  | Damaged_read { addr; size; section } ->
      Printf.sprintf "read of %d byte(s) at %#x touches damaged section %S" size addr
        section

type t = {
  cd_core : Core.t;
  cd_tdesc : Target.t;
  cd_ram : Ram.t;  (** sections rehydrated into an address space *)
  cd_load_warnings : Core.salvage list;  (** what {!Core.of_string} papered over *)
  cd_notes : note list ref;  (** damaged reads since the last {!take_notes} *)
}

let make ((core : Core.t), (warnings : Core.salvage list)) : t =
  {
    cd_core = core;
    cd_tdesc = Target.of_arch core.Core.co_arch;
    cd_ram = Core.to_ram core;
    cd_load_warnings = warnings;
    cd_notes = ref [];
  }

let core cd = cd.cd_core
let load_warnings cd = cd.cd_load_warnings

(** Drain the accumulated damaged-read notes (deduplicated, in first-seen
    order).  Queries call this after running so each answer carries the
    warnings it earned. *)
let take_notes cd : note list =
  let notes = List.rev !(cd.cd_notes) in
  cd.cd_notes := [];
  List.fold_left (fun acc n -> if List.mem n acc then acc else acc @ [ n ]) [] notes

(** The dump as an abstract memory.  Read-only: stores are how debuggers
    mutate targets, and this target is dead. *)
let memory (cd : t) : A.t =
  let fetch_abs ~space ~offset ~size =
    (match Core.damaged_overlap cd.cd_core ~addr:offset ~size with
    | [] -> ()
    | damaged ->
        List.iter
          (fun s ->
            cd.cd_notes :=
              Damaged_read { addr = offset; size; section = s.Core.sec_name }
              :: !(cd.cd_notes))
          damaged);
    match Core.Service.fetch cd.cd_tdesc cd.cd_ram ~space ~addr:offset ~size with
    | Ok bytes -> bytes
    | Error m -> raise (A.Error ("core: " ^ m))
  in
  let store_abs ~space ~offset ~bytes_ =
    ignore bytes_;
    dead "cannot store %c:%#x: target is a core dump (read-only)" space offset
  in
  { A.name = Printf.sprintf "core(%s)" (Arch.name cd.cd_core.Core.co_arch);
    fetch_abs; store_abs }
