(** The server's event loop: many client connections, one {!Server},
    deterministic ticks.

    {!Swire} says what bytes mean; this module decides {e when} to read
    them, {e whether} to trust the peer sending them, and {e who} gets
    served next.  Connections are abstract {!io} endpoints, so the same
    loop runs over the discrete-event sim (chaos-testable under [dune
    runtest], with {!Ldb_nub.Faultchan} injecting seeded wire faults) and
    over real Unix sockets (the [-listen] daemon in [bin/ldb_main.ml]).

    The robustness layer, in the order a hostile client meets it:

    - {b admission control}: past [el_max_conns] (or once draining) a new
      connection is refused with a typed [Overloaded] frame {e before any
      handshake work} — no session, no parse, no allocation beyond the
      refusal itself.
    - {b handshake}: the first frame must be a versioned [LDBSRV1] hello;
      anything else is answered with a typed error and closed.
    - {b bounded buffers}: a connection may buffer at most [el_rx_buffer]
      unparsed bytes; overflowing is a protocol offense.
    - {b read deadlines}: a frame that sits incomplete for
      [el_read_deadline] ticks is presumed torn — the buffer is resynced
      past its magic and the connection earns a strike; [el_max_strikes]
      strikes is slowloris, and the client is quarantined (typed goodbye,
      session detached cleanly).
    - {b protocol-error budget}: garbage, bad CRCs and undecodable
      messages each earn a typed [S_error] reply, up to [el_max_errors];
      past that the connection is quarantined.
    - {b idle reaping}: a connection with nothing buffered, nothing
      queued and no traffic for [el_idle_timeout] ticks is half-open; its
      session goes down the heartbeat/[fire_down] salvage path
      ({!Server.mark_down}) so the target's core is grabbed while the nub
      still answers.
    - {b fair scheduling}: commands are served by deficit round robin
      with post-charging — each backlogged connection is credited
      [el_quantum × weight] per tick and pays the {e actual} RPC cost of
      each command after running it (the cost is unknowable beforehand),
      overdraft carrying forward — so one chatty client cannot drain the
      tick budget that used to go first-come-first-served.
    - {b graceful drain}: {!drain} stops admitting, refuses new commands
      typedly, finishes queued in-flight work, then releases every
      session — detach (with its [unplant_for_release] trap scrub) when
      the target answers, core salvage when it cannot — all bounded by
      [el_drain_deadline].

    The loop never raises on client behavior: every decode failure is a
    typed reply, every close is accounted, and the supervised {!Server}
    underneath already isolates whatever a session's own wire does. *)

module Chan = Ldb_nub.Chan
module Faultchan = Ldb_nub.Faultchan

(* --- abstract byte endpoints -------------------------------------------------- *)

(** What the loop needs from a connection's byte stream.  [io_read] is
    non-blocking: it returns whatever has arrived, [""] when nothing has.
    [io_alive] is the {e observable} disconnect — half-open peers look
    alive and are caught by deadlines instead. *)
type io = {
  io_label : string;
  io_read : unit -> string;
  io_write : string -> unit;
  io_alive : unit -> bool;
  io_close : unit -> unit;
}

(** The server side of a sim channel as an {!io}. *)
let io_of_endpoint (ep : Chan.endpoint) : io =
  {
    io_label = ep.Chan.label;
    io_read =
      (fun () ->
        let n = Chan.available ep in
        if n = 0 then ""
        else begin
          let s = Chan.peek ep n in
          Chan.skip ep n;
          s
        end);
    io_write = (fun s -> Chan.send ep s);
    io_alive = (fun () -> Chan.is_connected ep);
    io_close = (fun () -> Chan.disconnect ep);
  }

(** A connected sim link: the client's endpoint and the server's {!io}.
    With [~fault], a seeded {!Faultchan} is interposed — both directions
    suffer the profile's faults, and the returned injector must be
    {!Faultchan.tick}ed (or the client endpoint pumped) to age stalls. *)
let sim_link ?fault () : Chan.endpoint * io * Faultchan.t option =
  let client_end, server_end = Chan.pair ~labels:("client", "server") () in
  let fc =
    match fault with
    | None -> None
    | Some (seed, prof) ->
        Some (Faultchan.install ~seed prof ~dbg:client_end ~nub:server_end)
  in
  (client_end, io_of_endpoint server_end, fc)

(* --- connections -------------------------------------------------------------- *)

type phase =
  | Greeting  (** accepted; the versioned hello has not arrived yet *)
  | Serving of int  (** hello answered; bound to this server session *)

type conn = {
  cn_id : int;
  cn_io : io;
  cn_weight : int;  (** DRR weight; quantum credit scales with it *)
  mutable cn_phase : phase;
  mutable cn_rx : string;  (** unparsed received bytes, bounded *)
  mutable cn_q : Server.command Queue.t;
  mutable cn_tx_seq : int;
  mutable cn_deficit : int;  (** DRR balance; negative = overdraft *)
  mutable cn_partial_since : int option;
      (** tick when the currently-incomplete frame started sitting *)
  mutable cn_last_activity : int;
  mutable cn_strikes : int;  (** read-deadline expiries *)
  mutable cn_errors : int;  (** protocol offenses *)
  mutable cn_served : int;  (** commands executed for this connection *)
  mutable cn_open : bool;
}

type limits = {
  el_max_conns : int;
  el_rx_buffer : int;  (** unparsed bytes buffered per connection *)
  el_read_deadline : int;  (** ticks a frame may sit incomplete *)
  el_idle_timeout : int;  (** quiet ticks before a connection is half-open *)
  el_quantum : int;  (** DRR credit per tick per unit of weight *)
  el_max_queued : int;  (** commands queued per connection *)
  el_max_strikes : int;  (** deadline expiries before quarantine *)
  el_max_errors : int;  (** protocol offenses before quarantine *)
  el_drain_deadline : int;  (** ticks {!drain} may spend finishing work *)
}

let default_limits =
  {
    el_max_conns = 128;
    el_rx_buffer = 1 lsl 16;
    el_read_deadline = 8;
    el_idle_timeout = 64;
    el_quantum = 64;
    el_max_queued = 64;
    el_max_strikes = 3;
    el_max_errors = 32;
    el_drain_deadline = 256;
  }

type stats = {
  mutable es_admitted : int;
  mutable es_refused_admission : int;  (** typed [Overloaded] before handshake *)
  mutable es_frames : int;  (** well-formed frames received *)
  mutable es_protocol_errors : int;  (** garbage, bad CRC, undecodable, torn *)
  mutable es_quarantined : int;  (** connections closed for offenses *)
  mutable es_reaped_idle : int;  (** half-open connections reaped *)
  mutable es_disconnects : int;  (** observable client disconnects *)
  mutable es_served : int;  (** commands executed *)
  mutable es_refusals_sent : int;  (** typed refusal frames sent *)
  mutable es_bytes_in : int;
  mutable es_bytes_out : int;
}

(** How a new connection gets its server session: called once per
    accepted connection when its hello arrives.  The daemon launches a
    fresh process of its image here; the test harness picks an arch by
    [conn_id].  A refusal is sent to the client verbatim. *)
type binder = conn_id:int -> (int, Server.refusal) result

type t = {
  el_sv : Server.t;
  el_limits : limits;
  el_stats : stats;
  el_bind : binder;
  mutable el_conns : conn list;  (** open and recently-closed, id order *)
  mutable el_next_conn : int;
  mutable el_tick : int;
  mutable el_draining : bool;
}

let create ?(limits = default_limits) ~(bind : binder) (sv : Server.t) : t =
  {
    el_sv = sv;
    el_limits = limits;
    el_stats =
      { es_admitted = 0; es_refused_admission = 0; es_frames = 0;
        es_protocol_errors = 0; es_quarantined = 0; es_reaped_idle = 0;
        es_disconnects = 0; es_served = 0; es_refusals_sent = 0;
        es_bytes_in = 0; es_bytes_out = 0 };
    el_bind = bind;
    el_conns = [];
    el_next_conn = 1;
    el_tick = 0;
    el_draining = false;
  }

let stats (t : t) : stats = t.el_stats
let server (t : t) : Server.t = t.el_sv
let draining (t : t) : bool = t.el_draining
let conns (t : t) : conn list = List.filter (fun c -> c.cn_open) t.el_conns
let conn (t : t) (id : int) : conn option =
  List.find_opt (fun c -> c.cn_id = id) t.el_conns

let log t fmt = Server.log t.el_sv 0 fmt

(* --- sending ------------------------------------------------------------------ *)

(** Frame and send one server message.  A write that fails (peer already
    gone) is absorbed: the close path will notice via [io_alive]. *)
let send_msg (t : t) (c : conn) (m : Swire.server_msg) : unit =
  let frame = Swire.seal ~seq:c.cn_tx_seq (Swire.encode_server m) in
  c.cn_tx_seq <- c.cn_tx_seq + 1;
  t.el_stats.es_bytes_out <- t.el_stats.es_bytes_out + String.length frame;
  (match m with
  | Swire.S_refused _ -> t.el_stats.es_refusals_sent <- t.el_stats.es_refusals_sent + 1
  | _ -> ());
  try c.cn_io.io_write frame with _ -> ()

(** Close a connection's byte stream and forget its buffers.  What
    happens to its session is the caller's decision — the three close
    paths (clean, quarantine, reap) differ exactly there. *)
let close_conn (c : conn) : unit =
  if c.cn_open then begin
    c.cn_open <- false;
    c.cn_rx <- "";
    Queue.clear c.cn_q;
    try c.cn_io.io_close () with _ -> ()
  end

let session_of (c : conn) : int option =
  match c.cn_phase with Serving sid -> Some sid | Greeting -> None

(** Clean release: the client said goodbye or observably disconnected.
    The server↔nub link is independent of the client wire, so the target
    is detached properly ([unplant_for_release] scrubs the traps) even
    though the client is gone. *)
let release_clean (t : t) (c : conn) : unit =
  (match session_of c with
  | Some sid -> Server.close_session t.el_sv sid
  | None -> ());
  close_conn c

(** Quarantine: the client earned it (slowloris, offense budget spent).
    Typed goodbye, then a clean detach — the {e target} did nothing
    wrong. *)
let quarantine (t : t) (c : conn) ~(why : string) : unit =
  t.el_stats.es_quarantined <- t.el_stats.es_quarantined + 1;
  log t "conn %d quarantined: %s" c.cn_id why;
  send_msg t c (Swire.S_bye ("quarantined: " ^ why));
  release_clean t c

(** Reap a half-open connection: the client may still believe it is
    connected, so this is the link-loss path — {!Server.mark_down} fires
    the transport's going-down hook and salvages a core while the nub
    still answers, exactly as a missed-heartbeat escalation would. *)
let reap_half_open (t : t) (c : conn) : unit =
  t.el_stats.es_reaped_idle <- t.el_stats.es_reaped_idle + 1;
  log t "conn %d reaped: half-open (idle %d ticks)" c.cn_id
    (t.el_tick - c.cn_last_activity);
  (match session_of c with
  | Some sid -> (
      match Server.session t.el_sv sid with
      | Some s -> (
          match s.Server.ss_state with
          | Server.Healthy | Server.Unresponsive _ ->
              Server.mark_down t.el_sv s ~reason:"half-open client reaped"
          | Server.Down _ | Server.Closed -> ())
      | None -> ())
  | None -> ());
  send_msg t c (Swire.S_bye "reaped: half-open connection");
  close_conn c

(* --- admission ---------------------------------------------------------------- *)

(** Admit a connection, or refuse it with a typed [Overloaded] frame
    before any handshake work.  The refusal is the {e only} work a
    connection past the cap (or arriving during drain) costs. *)
let accept ?(weight = 1) (t : t) (io : io) : [ `Conn of int | `Refused ] =
  let refuse why =
    t.el_stats.es_refused_admission <- t.el_stats.es_refused_admission + 1;
    let frame =
      Swire.seal ~seq:0
        (Swire.encode_server (Swire.S_refused (Server.Overloaded why)))
    in
    t.el_stats.es_bytes_out <- t.el_stats.es_bytes_out + String.length frame;
    t.el_stats.es_refusals_sent <- t.el_stats.es_refusals_sent + 1;
    (try io.io_write frame with _ -> ());
    (try io.io_close () with _ -> ());
    `Refused
  in
  if t.el_draining then refuse "server is draining"
  else if List.length (conns t) >= t.el_limits.el_max_conns then
    refuse
      (Printf.sprintf "server full: %d connections" t.el_limits.el_max_conns)
  else begin
    let id = t.el_next_conn in
    t.el_next_conn <- id + 1;
    let c =
      {
        cn_id = id;
        cn_io = io;
        cn_weight = max 1 weight;
        cn_phase = Greeting;
        cn_rx = "";
        cn_q = Queue.create ();
        cn_tx_seq = 0;
        cn_deficit = 0;
        cn_partial_since = None;
        cn_last_activity = t.el_tick;
        cn_strikes = 0;
        cn_errors = 0;
        cn_served = 0;
        cn_open = true;
      }
    in
    t.el_conns <- t.el_conns @ [ c ];
    t.el_stats.es_admitted <- t.el_stats.es_admitted + 1;
    `Conn id
  end

(* --- the hostile-byte path ---------------------------------------------------- *)

(** Record one protocol offense; quarantines when the budget is spent.
    Returns [true] when the connection survived. *)
let offense (t : t) (c : conn) (err : Swire.error) : bool =
  t.el_stats.es_protocol_errors <- t.el_stats.es_protocol_errors + 1;
  c.cn_errors <- c.cn_errors + 1;
  send_msg t c (Swire.S_error (Swire.error_to_string err));
  if c.cn_errors >= t.el_limits.el_max_errors then begin
    quarantine t c ~why:(Printf.sprintf "%d protocol errors" c.cn_errors);
    false
  end
  else true

let handle_hello (t : t) (c : conn) (magic : string) : unit =
  if magic <> Swire.version_magic then begin
    t.el_stats.es_protocol_errors <- t.el_stats.es_protocol_errors + 1;
    send_msg t c
      (Swire.S_error
         (Printf.sprintf "unsupported version %S (this server speaks %S)" magic
            Swire.version_magic));
    release_clean t c
  end
  else
    match t.el_bind ~conn_id:c.cn_id with
    | Ok sid ->
        c.cn_phase <- Serving sid;
        log t "conn %d bound to session %d" c.cn_id sid;
        send_msg t c (Swire.S_hello { session = sid })
    | Error r ->
        send_msg t c (Swire.S_refused r);
        release_clean t c

let handle_msg (t : t) (c : conn) (m : Swire.client_msg) : unit =
  match (c.cn_phase, m) with
  | Greeting, Swire.C_hello { magic } -> handle_hello t c magic
  | Greeting, _ ->
      (* commands before the handshake: a client that skipped hello is
         not speaking this protocol; answer and hang up *)
      t.el_stats.es_protocol_errors <- t.el_stats.es_protocol_errors + 1;
      send_msg t c (Swire.S_error "expected a versioned hello first");
      release_clean t c
  | Serving _, Swire.C_hello _ ->
      ignore (offense t c (Swire.Bad_message "duplicate hello"))
  | Serving _, Swire.C_cmd cmd ->
      if t.el_draining then
        send_msg t c
          (Swire.S_refused (Server.Overloaded "server is draining: no new commands"))
      else if Queue.length c.cn_q >= t.el_limits.el_max_queued then
        send_msg t c
          (Swire.S_refused
             (Server.Overloaded
                (Printf.sprintf "connection %d has %d commands queued" c.cn_id
                   (Queue.length c.cn_q))))
      else Queue.add cmd c.cn_q
  | Serving _, Swire.C_bye ->
      log t "conn %d said goodbye (%d served)" c.cn_id c.cn_served;
      send_msg t c (Swire.S_bye "goodbye");
      release_clean t c

(** Parse everything parseable out of a connection's buffer.  Garbage and
    damaged frames are typed offenses with magic-scan resync; an
    incomplete tail starts the read-deadline clock. *)
let rec parse_frames (t : t) (c : conn) : unit =
  if c.cn_open then
    match Swire.scan c.cn_rx with
    | Swire.S_need ->
        if String.length c.cn_rx = 0 then c.cn_partial_since <- None
        else if c.cn_partial_since = None then
          c.cn_partial_since <- Some t.el_tick
    | Swire.S_skip { skip; error } ->
        c.cn_rx <- String.sub c.cn_rx skip (String.length c.cn_rx - skip);
        c.cn_partial_since <- None;
        if offense t c error then parse_frames t c
    | Swire.S_frame { payload; used; _ } ->
        c.cn_rx <- String.sub c.cn_rx used (String.length c.cn_rx - used);
        c.cn_partial_since <- None;
        c.cn_last_activity <- t.el_tick;
        t.el_stats.es_frames <- t.el_stats.es_frames + 1;
        (match Swire.decode_client payload with
        | Ok m -> handle_msg t c m
        | Error e -> ignore (offense t c e));
        parse_frames t c

(** Pull arrived bytes into the connection's buffer; an overflow is an
    offense serious enough to quarantine outright — a well-behaved client
    cannot outrun the parser by [el_rx_buffer] bytes. *)
let read_io (t : t) (c : conn) : unit =
  let bytes = try c.cn_io.io_read () with _ -> "" in
  if bytes <> "" then begin
    t.el_stats.es_bytes_in <- t.el_stats.es_bytes_in + String.length bytes;
    c.cn_rx <- c.cn_rx ^ bytes;
    if String.length c.cn_rx > t.el_limits.el_rx_buffer then begin
      t.el_stats.es_protocol_errors <- t.el_stats.es_protocol_errors + 1;
      quarantine t c
        ~why:
          (Printf.sprintf "receive buffer overflow (%d bytes unparsed)"
             (String.length c.cn_rx))
    end
  end

(** The read-deadline: a frame that has sat incomplete too long is
    presumed torn (its header promises bytes that will never come).
    Resync past its magic, strike the connection, and let the strike
    budget decide whether this is one torn frame or a slowloris. *)
let check_read_deadline (t : t) (c : conn) : unit =
  match c.cn_partial_since with
  | Some since when t.el_tick - since > t.el_limits.el_read_deadline ->
      c.cn_rx <- Swire.force_resync c.cn_rx;
      c.cn_partial_since <- None;
      c.cn_strikes <- c.cn_strikes + 1;
      t.el_stats.es_protocol_errors <- t.el_stats.es_protocol_errors + 1;
      if c.cn_strikes >= t.el_limits.el_max_strikes then
        quarantine t c
          ~why:(Printf.sprintf "slow client: %d stalled frames" c.cn_strikes)
      else begin
        send_msg t c
          (Swire.S_error
             (Printf.sprintf "read deadline: frame incomplete after %d ticks"
                t.el_limits.el_read_deadline));
        (* the resync may have exposed a complete frame behind the lie *)
        parse_frames t c
      end
  | _ -> ()

(* --- fair scheduling ---------------------------------------------------------- *)

let session_rpcs (t : t) (sid : int) : int =
  match Server.session t.el_sv sid with
  | Some s -> (
      match s.Server.ss_tg.Ldb.tg_conn with
      | Ldb.Live tr -> (Transport.stats tr).Transport.st_rpcs
      | Ldb.Postmortem _ -> 0)
  | None -> 0

(** Serve one connection's queue under its deficit.  Post-charging DRR:
    a command runs while the balance is positive and is charged its
    actual transport cost afterwards — the overdraft carries, so an
    expensive command steals from its own connection's future, not from
    the other connections' present. *)
let serve_conn (t : t) (c : conn) (sid : int) : unit =
  while c.cn_open && c.cn_deficit > 0 && not (Queue.is_empty c.cn_q) do
    let cmd = Queue.pop c.cn_q in
    let before = session_rpcs t sid in
    let res = Server.exec t.el_sv sid cmd in
    let cost = max 1 (session_rpcs t sid - before) in
    c.cn_deficit <- c.cn_deficit - cost;
    c.cn_served <- c.cn_served + 1;
    c.cn_last_activity <- t.el_tick;
    t.el_stats.es_served <- t.el_stats.es_served + 1;
    match res with
    | Ok r -> send_msg t c (Swire.S_reply r)
    | Error r -> send_msg t c (Swire.S_refused r)
  done;
  (* an emptied queue forfeits leftover credit (classic DRR: inactive
     flows do not bank the past), but debt is remembered *)
  if Queue.is_empty c.cn_q && c.cn_deficit > 0 then c.cn_deficit <- 0

(** One DRR round: every backlogged connection is credited its quantum,
    then served in connection order under its balance. *)
let serve_round (t : t) : unit =
  List.iter
    (fun c ->
      if c.cn_open && not (Queue.is_empty c.cn_q) then
        c.cn_deficit <- c.cn_deficit + (t.el_limits.el_quantum * c.cn_weight))
    t.el_conns;
  List.iter
    (fun c ->
      match (c.cn_open, session_of c) with
      | true, Some sid -> serve_conn t c sid
      | _ -> ())
    t.el_conns

(* --- the tick ----------------------------------------------------------------- *)

(** Advance the loop one tick: ingest bytes, parse frames, enforce
    deadlines, reap the dead and the half-open, serve one fair round, and
    let the server run its heartbeats.  Deterministic: connections are
    always visited in admission order. *)
let tick (t : t) : unit =
  t.el_tick <- t.el_tick + 1;
  List.iter
    (fun c ->
      if c.cn_open then begin
        read_io t c;
        parse_frames t c;
        check_read_deadline t c;
        if c.cn_open then begin
          if (not (c.cn_io.io_alive ())) && String.length c.cn_rx = 0 then begin
            (* observable disconnect, buffer drained: clean release *)
            t.el_stats.es_disconnects <- t.el_stats.es_disconnects + 1;
            log t "conn %d disconnected (%d served)" c.cn_id c.cn_served;
            release_clean t c
          end
          else if
            Queue.is_empty c.cn_q
            && String.length c.cn_rx = 0
            && t.el_tick - c.cn_last_activity > t.el_limits.el_idle_timeout
          then reap_half_open t c
        end
      end)
    t.el_conns;
  serve_round t;
  Server.tick t.el_sv;
  (* forget closed connections; their stats already counted *)
  t.el_conns <- List.filter (fun c -> c.cn_open) t.el_conns

(* --- graceful drain ----------------------------------------------------------- *)

type drain_report = {
  dr_ticks : int;  (** ticks spent finishing in-flight work *)
  dr_completed : bool;  (** every queue emptied before the deadline *)
  dr_detached : int;  (** sessions released by a clean detach *)
  dr_salvaged : int;  (** sessions that could not detach; core salvaged *)
  dr_conns_closed : int;  (** connections said goodbye to *)
}

(** Stop admitting and stop accepting new commands; queued work still
    runs.  Idempotent. *)
let begin_drain (t : t) : unit =
  if not t.el_draining then begin
    t.el_draining <- true;
    log t "drain: admissions closed, finishing %d queued command%s"
      (List.fold_left (fun n c -> n + Queue.length c.cn_q) 0 t.el_conns)
      (if List.fold_left (fun n c -> n + Queue.length c.cn_q) 0 t.el_conns = 1
       then ""
       else "s")
  end

let queued (t : t) : int =
  List.fold_left
    (fun n c -> if c.cn_open then n + Queue.length c.cn_q else n)
    0 t.el_conns

(** Drain to a stop: finish in-flight commands (bounded by
    [el_drain_deadline] ticks), say goodbye to every connection, then
    release every session the server still holds — clean detach when the
    target answers, core salvage when it cannot.  The report says whether
    the deadline was met and how each session went out. *)
let drain (t : t) : drain_report =
  begin_drain t;
  let start = t.el_tick in
  let deadline = t.el_tick + t.el_limits.el_drain_deadline in
  while queued t > 0 && t.el_tick < deadline do
    tick t
  done;
  let completed = queued t = 0 in
  let closed = ref 0 in
  List.iter
    (fun c ->
      if c.cn_open then begin
        incr closed;
        send_msg t c (Swire.S_bye "server draining: goodbye");
        close_conn c
      end)
    t.el_conns;
  t.el_conns <- [];
  let detached = ref 0 and salvaged = ref 0 in
  List.iter
    (fun s ->
      match Server.drain_session t.el_sv s.Server.ss_id with
      | `Detached -> incr detached
      | `Salvaged -> incr salvaged
      | `Already_over -> ())
    (Server.sessions t.el_sv);
  log t "drain: %s after %d ticks, %d detached, %d salvaged, %d conns closed"
    (if completed then "complete" else "deadline expired")
    (t.el_tick - start) !detached !salvaged !closed;
  {
    dr_ticks = t.el_tick - start;
    dr_completed = completed;
    dr_detached = !detached;
    dr_salvaged = !salvaged;
    dr_conns_closed = !closed;
  }
