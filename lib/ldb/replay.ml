(** Replay-backed debugging sessions: time travel over a recorded trace.

    A replay session owns a {!Ldb_nub.Trace.t} and materializes any
    historical instant of the recorded execution as an ordinary
    {!Ldb.target}: restore the nearest checkpoint at or before the
    requested cursor ({!Ldb_machine.Core.to_proc}), re-apply the logged
    requests through a fresh nub's own code paths
    ({!Ldb_nub.Nub.replay_apply}), and connect the debugger to it over a
    private channel with {!Ldb.connect_with_image}.  From there the
    whole machine-independent DAG — frame walking, printing,
    validity-aware display, disassembly — works unchanged, because the
    historical target answers the wire protocol exactly as the live one
    did at that instant.

    Positions are cursors [(ev, delta)]: [ev] indexes the trace's
    state-changing requests, [delta] counts instructions into request
    [ev]'s execution.  Three user-facing motions:

    - {!rstep}: one instruction back.
    - {!rcontinue}: back to the previous recorded stop, shown exactly
      as it was first reported — before any debugger stores made while
      sitting at it.
    - {!run_back_to_write}: the rr-style "when was this last written?"
      query — re-execute from checkpoints, sampling the watched bytes
      after every instruction and every logged store, and land just
      after the most recent change at or before the current position.

    Replayed execution is verified against the recording as it goes:
    every replayed continue/step must end in the recorded stop (same
    signal, code, pc and instruction count) or the session reports a
    typed [`Divergence] rather than show fabricated history. *)

open Ldb_machine
module Nub = Ldb_nub.Nub
module Chan = Ldb_nub.Chan
module Proto = Ldb_nub.Proto
module Trace = Ldb_nub.Trace

type error =
  [ `Bad_trace of string  (** the trace (or a checkpoint in it) is unusable *)
  | `Divergence of string  (** replay disagreed with the recording *)
  | `End_of_history  (** no earlier instant exists *)
  | `No_write  (** the watched bytes were never written in recorded history *)
  | `Unsupported of string ]

let error_to_string : error -> string = function
  | `Bad_trace m -> "bad trace: " ^ m
  | `Divergence m -> "replay divergence: " ^ m
  | `End_of_history -> "already at the beginning of recorded history"
  | `No_write -> "no write to those bytes in recorded history"
  | `Unsupported m -> m

type t = {
  rp_d : Ldb.t;
  rp_image : Ldb.image;
  rp_name : string;
  rp_trace : Trace.t;
  rp_reqs : Proto.request array;  (** state-changing requests, in order *)
  rp_dur : int array;  (** instruction units each request retired (0: none) *)
  rp_out : Trace.event option array;  (** recorded outcome per request *)
  rp_cks : Trace.checkpoint array;  (** cursor-ascending *)
  mutable rp_pos : int * int;  (** current cursor *)
  mutable rp_tg : Ldb.target option;  (** target materialized at [rp_pos] *)
  mutable rp_cost : int;  (** instructions re-executed by the last seek *)
}

let is_exec = function Proto.Continue | Proto.Step -> true | _ -> false

(** Digest the flat event stream into parallel request/outcome arrays,
    dropping a trailing executing request whose outcome the trace never
    got to record (a salvaged truncation mid-run): history ends at the
    last fully-known instant. *)
let analyze (tr : Trace.t) =
  let reqs = ref [] and outs = ref [] and cks = ref [] in
  List.iter
    (fun e ->
      match e with
      | Trace.Req r ->
          reqs := r :: !reqs;
          outs := None :: !outs
      | Trace.Stop _ | Trace.Exit _ -> (
          match (!outs, !reqs) with
          | None :: rest, r :: _ when is_exec r -> outs := Some e :: rest
          | _ -> ())
      | Trace.Checkpoint ck -> cks := ck :: !cks)
    tr.Trace.tr_events;
  let reqs = Array.of_list (List.rev !reqs) in
  let outs = Array.of_list (List.rev !outs) in
  let n = Array.length reqs in
  let keep =
    if n > 0 && is_exec reqs.(n - 1) && outs.(n - 1) = None then n - 1 else n
  in
  let reqs = Array.sub reqs 0 keep and outs = Array.sub outs 0 keep in
  let dur =
    Array.map
      (function
        | Some (Trace.Stop { instrs; _ }) | Some (Trace.Exit { instrs; _ }) -> instrs
        | _ -> 0)
      outs
  in
  let cks =
    List.filter
      (fun ck ->
        ck.Trace.ck_ev < keep || (ck.Trace.ck_ev = keep && ck.Trace.ck_delta = 0))
      (List.rev !cks)
  in
  (reqs, outs, dur, Array.of_list cks)

(** Open a replay session over serialized trace [bytes].  The [image]
    must be the same program the recording debugged — symbol tables and
    loader tables come from it, exactly as for a live connection.  The
    session starts positioned at the end of history (the last recorded
    instant); use the motions to travel.  Salvage warnings describe
    damage that shortened a damaged trace's usable prefix. *)
let of_string (d : Ldb.t) ~(name : string) ~(image : Ldb.image) (bytes : string) :
    (t * Trace.salvage list, error) result =
  match Trace.of_string bytes with
  | Error m -> Error (`Bad_trace m)
  | Ok (tr, warns) ->
      if not (Arch.equal image.Ldb.im_symtab.Symtab.arch tr.Trace.tr_arch) then
        Error
          (`Bad_trace
             (Printf.sprintf "trace was recorded on %s but the image is for %s"
                (Arch.name tr.Trace.tr_arch)
                (Arch.name image.Ldb.im_symtab.Symtab.arch)))
      else
        let reqs, outs, dur, cks = analyze tr in
        if Array.length cks = 0 then Error (`Bad_trace "no usable checkpoint")
        else if cks.(0).Trace.ck_ev <> 0 || cks.(0).Trace.ck_delta <> 0 then
          Error (`Bad_trace "history does not begin with a checkpoint")
        else
          Ok
            ( { rp_d = d; rp_image = image; rp_name = name; rp_trace = tr;
                rp_reqs = reqs; rp_dur = dur; rp_out = outs; rp_cks = cks;
                rp_pos = (Array.length reqs, 0); rp_tg = None; rp_cost = 0 },
              warns )

let position_cursor (t : t) = t.rp_pos
let target (t : t) = t.rp_tg
let requests (t : t) = Array.length t.rp_reqs
let checkpoint_count (t : t) = Array.length t.rp_cks

(** Instructions the last seek re-executed to materialize its position —
    the work a checkpoint saved us from repeating is not in it, so this
    is the number the spacing trade-off bounds. *)
let last_seek_cost (t : t) = t.rp_cost

(** Total instruction units the recorded execution retired. *)
let recorded_instructions (t : t) = Array.fold_left ( + ) 0 t.rp_dur

(** Human description of the current cursor, for the CLI prompt. *)
let describe (t : t) : string =
  let ev, delta = t.rp_pos in
  if ev >= Array.length t.rp_reqs && delta = 0 then
    Printf.sprintf "at end of history (event %d)" ev
  else if delta = 0 then Printf.sprintf "at event %d of %d" ev (Array.length t.rp_reqs)
  else
    Printf.sprintf "inside event %d of %d, %d instruction(s) in" ev
      (Array.length t.rp_reqs) delta

(* --- positioning -------------------------------------------------------- *)

exception Fail of error

let cursor_leq (a, b) (c, d) = a < c || (a = c && b <= d)

(** The checkpoint with the greatest cursor at or before [(ev, delta)];
    always defined because every trace begins with one at (0, 0). *)
let best_checkpoint (t : t) ~ev ~delta : Trace.checkpoint =
  let best = ref t.rp_cks.(0) in
  Array.iter
    (fun ck ->
      if
        cursor_leq (ck.Trace.ck_ev, ck.Trace.ck_delta) (ev, delta)
        && cursor_leq
             (!best.Trace.ck_ev, !best.Trace.ck_delta)
             (ck.Trace.ck_ev, ck.Trace.ck_delta)
      then best := ck)
    t.rp_cks;
  !best

let status_str = function
  | Proc.Running -> "running"
  | Proc.Stopped (s, code) -> Printf.sprintf "stop sig %d code %d" (Signal.number s) code
  | Proc.Exited n -> Printf.sprintf "exit %d" n

(** Rebuild a nub around the machine a checkpoint froze.  A checkpoint
    whose core comes back damaged is refused: salvaged memory would
    replay into fabricated history, and an earlier checkpoint cannot
    substitute (replaying across the damage still reads it). *)
let restore (t : t) (ck : Trace.checkpoint) : Nub.t =
  match Core.of_string ck.Trace.ck_core with
  | Error m -> raise (Fail (`Bad_trace ("checkpoint core unreadable: " ^ m)))
  | Ok (_, _ :: _) -> raise (Fail (`Bad_trace "checkpoint core damaged"))
  | Ok (co, []) ->
      if not (Arch.equal co.Core.co_arch t.rp_trace.Trace.tr_arch) then
        raise (Fail (`Bad_trace "checkpoint architecture differs from trace"));
      let p = Core.to_proc co in
      p.Proc.status <-
        (match ck.Trace.ck_status with
        | Trace.Ck_running -> Proc.Running
        | Trace.Ck_stopped { signal; code } ->
            Proc.Stopped
              (Option.value ~default:Signal.SIGINT (Signal.of_number signal), code)
        | Trace.Ck_exited st -> Proc.Exited st);
      Nub.create ~fuel:t.rp_trace.Trace.tr_fuel ~can_step:t.rp_trace.Trace.tr_can_step
        p

(** Hold a replayed execution to account: the stop it reached must be
    the stop the recording reached, field for field. *)
let check_outcome (t : t) (n : Nub.t) ~(ev : int) ~(used : int) : unit =
  let diverged fmt =
    Printf.ksprintf (fun m -> raise (Fail (`Divergence m))) fmt
  in
  match t.rp_out.(ev) with
  | Some (Trace.Stop { signal; code; pc; instrs }) -> (
      match n.Nub.proc.Proc.status with
      | Proc.Stopped (s, c)
        when Signal.number s = signal && c = code
             && Proc.pc n.Nub.proc = pc && used = instrs ->
          ()
      | st ->
          diverged
            "request %d: recorded stop sig %d code %d pc %#x after %d, replay \
             reached %s (pc %#x) after %d"
            ev signal code pc instrs (status_str st) (Proc.pc n.Nub.proc) used)
  | Some (Trace.Exit { status; instrs }) -> (
      match n.Nub.proc.Proc.status with
      | Proc.Exited st when st = status && used = instrs -> ()
      | st ->
          diverged "request %d: recorded exit %d after %d, replay reached %s after %d"
            ev status instrs (status_str st) used)
  | _ -> ()

let apply (t : t) (n : Nub.t) (i : int) ~cap : int =
  match Nub.replay_apply n t.rp_reqs.(i) ~cap with
  | Ok used ->
      t.rp_cost <- t.rp_cost + used;
      used
  | Error m -> raise (Fail (`Divergence m))

let resume (t : t) (n : Nub.t) ~consumed ~cap : int =
  let used = Nub.replay_resume n ~consumed ~cap in
  t.rp_cost <- t.rp_cost + used;
  used

(** Materialize the machine at cursor [(ev, delta)] in a fresh nub,
    without forcing a mid-run position into a stop — callers that want
    an inspectable target follow with {!Nub.replay_position}. *)
let position_raw (t : t) ~(ev : int) ~(delta : int) : Nub.t =
  let nreq = Array.length t.rp_reqs in
  if ev < 0 || ev > nreq || delta < 0 || (ev = nreq && delta > 0) then
    raise (Fail (`Bad_trace (Printf.sprintf "cursor (%d,%d) out of range" ev delta)));
  if delta > 0 && not (is_exec t.rp_reqs.(ev) && delta < t.rp_dur.(ev)) then
    raise (Fail (`Bad_trace (Printf.sprintf "cursor (%d,%d) not inside a run" ev delta)));
  let ck = best_checkpoint t ~ev ~delta in
  t.rp_cost <- 0;
  let n = restore t ck in
  let start =
    if ck.Trace.ck_delta = 0 then ck.Trace.ck_ev
    else if ck.Trace.ck_ev = ev then begin
      (* the checkpoint sits inside the very run the cursor targets *)
      if delta > ck.Trace.ck_delta then begin
        let want = delta - ck.Trace.ck_delta in
        let used = resume t n ~consumed:ck.Trace.ck_delta ~cap:(Some want) in
        if used < want then
          raise
            (Fail
               (`Divergence
                  (Printf.sprintf "request %d ended after %d instructions, cursor %d"
                     ev
                     (ck.Trace.ck_delta + used)
                     delta)))
      end;
      ev
    end
    else begin
      (* finish the checkpointed run, then continue with full requests *)
      let used = resume t n ~consumed:ck.Trace.ck_delta ~cap:None in
      check_outcome t n ~ev:ck.Trace.ck_ev ~used:(ck.Trace.ck_delta + used);
      ck.Trace.ck_ev + 1
    end
  in
  for i = start to ev - 1 do
    let used = apply t n i ~cap:None in
    check_outcome t n ~ev:i ~used
  done;
  if delta > 0 && not (ck.Trace.ck_ev = ev && ck.Trace.ck_delta > 0) then begin
    let used = apply t n ev ~cap:(Some delta) in
    if used < delta then
      raise
        (Fail
           (`Divergence
              (Printf.sprintf "request %d ended after %d instructions, cursor %d" ev
                 used delta)))
  end;
  n

(** Connect the debugger to a positioned nub over a private channel; the
    previous historical target, if any, is retired. *)
let attach_session (t : t) (n : Nub.t) : Ldb.target =
  let dbg_end, nub_end = Chan.pair ~labels:("ldb", "replay-nub") () in
  Nub.attach n nub_end;
  Chan.set_pump dbg_end (fun () -> Nub.pump n);
  (match t.rp_tg with Some old -> Ldb.remove_target t.rp_d old | None -> ());
  let tg = Ldb.connect_with_image t.rp_d ~name:t.rp_name ~image:t.rp_image dbg_end in
  t.rp_tg <- Some tg;
  tg

(** Move the session to cursor [(ev, delta)] and materialize a target
    there.  A cursor equal to a run's full duration normalizes to the
    position after that run. *)
let seek (t : t) ~(ev : int) ~(delta : int) : (Ldb.target, error) result =
  let ev, delta =
    if ev < Array.length t.rp_reqs && delta > 0 && delta >= t.rp_dur.(ev) then
      (ev + 1, 0)
    else (ev, delta)
  in
  match
    let n = position_raw t ~ev ~delta in
    Nub.replay_position n;
    n
  with
  | n ->
      let tg = attach_session t n in
      t.rp_pos <- (ev, delta);
      Ok tg
  | exception Fail e -> Error e

(* --- motions ------------------------------------------------------------ *)

(** Index of the latest request at or before [j0] that executed
    instructions. *)
let prev_exec (t : t) (j0 : int) : int option =
  let rec go j =
    if j < 0 then None
    else if is_exec t.rp_reqs.(j) && t.rp_dur.(j) > 0 then Some j
    else go (j - 1)
  in
  go j0

(** One instruction back. *)
let rstep (t : t) : (Ldb.target, error) result =
  let ev, delta = t.rp_pos in
  if delta > 0 then seek t ~ev ~delta:(delta - 1)
  else
    match prev_exec t (ev - 1) with
    | None -> Error `End_of_history
    | Some j -> seek t ~ev:j ~delta:(t.rp_dur.(j) - 1)

(** Back to the previous recorded stop, as first reported: the position
    immediately after the run that produced it, before any stores the
    debugger made while sitting there. *)
let rcontinue (t : t) : (Ldb.target, error) result =
  let ev, delta = t.rp_pos in
  if delta > 0 then
    (* mid-run: the previous stop is the one this run started from *)
    match prev_exec t (ev - 1) with
    | None -> seek t ~ev:0 ~delta:0
    | Some j -> seek t ~ev:(j + 1) ~delta:0
  else
    match prev_exec t (ev - 1) with
    | None -> Error `End_of_history
    | Some j -> (
        match prev_exec t (j - 1) with
        | None -> seek t ~ev:0 ~delta:0
        | Some k -> seek t ~ev:(k + 1) ~delta:0)

(* --- run back to the last write ----------------------------------------- *)

let sample (n : Nub.t) ~addr ~size : string =
  let ram = n.Nub.proc.Proc.ram in
  String.init size (fun i -> Char.chr (Ram.get_u8 ram (addr + i)))

(** Walk the recording forward from a checkpoint one observable mutation
    at a time — one instruction of a run, or one non-executing request —
    reporting the cursor after each move so a caller can sample state.
    Cursors are kept normalized: a completed run's cursor advances past
    it. *)
let walk_window (t : t) (n : Nub.t) ~(from : int * int) ~(upto : int * int)
    (visit : int * int -> unit) : unit =
  let nreq = Array.length t.rp_reqs in
  let ev = ref (fst from) and delta = ref (snd from) in
  while not (cursor_leq upto (!ev, !delta)) && !ev < nreq do
    (if !delta > 0 then begin
       let used = resume t n ~consumed:!delta ~cap:(Some 1) in
       if used < 1 then
         raise
           (Fail
              (`Divergence
                 (Printf.sprintf "request %d ended after %d instructions, %d recorded"
                    !ev !delta t.rp_dur.(!ev))));
       delta := !delta + used
     end
     else
       let req = t.rp_reqs.(!ev) in
       if is_exec req && t.rp_dur.(!ev) > 0 then begin
         let used = apply t n !ev ~cap:(Some 1) in
         if used < 1 then
           raise
             (Fail
                (`Divergence
                   (Printf.sprintf "request %d retired nothing, %d recorded" !ev
                      t.rp_dur.(!ev))))
         else delta := used
       end
       else begin
         ignore (apply t n !ev ~cap:None);
         incr ev
       end);
    if !delta >= t.rp_dur.(min !ev (nreq - 1)) && !delta > 0 then begin
      (* the run completed: verify its recorded stop and step past it *)
      check_outcome t n ~ev:!ev ~used:t.rp_dur.(!ev);
      incr ev;
      delta := 0
    end;
    visit (!ev, !delta)
  done

(** Run back to the last write of the [size] bytes at data address
    [addr] at or before the current position: re-execute history from
    each checkpoint window (latest first), sampling the watched bytes
    after every instruction and every logged store, and land just after
    the most recent change found.  Register-allocated variables never
    reach here — {!Ldb.variable_range} refuses them first. *)
let run_back_to_write (t : t) ~(addr : int) ~(size : int) :
    (Ldb.target * (int * int), error) result =
  if size < 1 || size > 64 then Error (`Unsupported "watch range must be 1..64 bytes")
  else
    try
      let upto = t.rp_pos in
      (* checkpoint cursors at or before the current position, ascending *)
      let cursors =
        Array.to_list t.rp_cks
        |> List.map (fun ck -> (ck.Trace.ck_ev, ck.Trace.ck_delta))
        |> List.filter (fun c -> cursor_leq c upto)
        |> List.sort_uniq compare
      in
      let windows =
        (* (start, end] pairs, latest window first *)
        let rec pair = function
          | a :: (b :: _ as rest) -> (a, b) :: pair rest
          | [ last ] -> [ (last, upto) ]
          | [] -> []
        in
        List.rev (pair cursors)
      in
      let found = ref None in
      let scan (from, upto') =
        if !found = None && not (cursor_leq upto' from) then begin
          let n = position_raw t ~ev:(fst from) ~delta:(snd from) in
          let prev = ref (sample n ~addr ~size) in
          walk_window t n ~from ~upto:upto' (fun cur ->
              let now = sample n ~addr ~size in
              if not (String.equal now !prev) then found := Some cur;
              prev := now)
        end
      in
      List.iter scan windows;
      match !found with
      | None -> Error `No_write
      | Some (ev, delta) -> (
          match seek t ~ev ~delta with
          | Ok tg -> Ok (tg, t.rp_pos)
          | Error e -> Error e)
    with
    | Fail e -> Error e
    | Ram.Fault _ -> Error (`Unsupported "watched address outside target memory")

(** Jump to the end of recorded history (the instant the trace was
    fetched). *)
let seek_end (t : t) : (Ldb.target, error) result =
  seek t ~ev:(Array.length t.rp_reqs) ~delta:0
