(** Disassembly through the debugger's abstract memories.

    Machine-independent code drives a machine-dependent decoder: the bytes
    are fetched one at a time through the code space (so this works over
    the wire, on a stopped process, and shows planted breakpoint traps as
    the [break] instructions they are), and the target's own encoder
    module does the decoding. *)

open Ldb_machine
module A = Ldb_amemory.Amemory

type line = {
  di_addr : int;
  di_bytes : string;
  di_insn : Insn.t option;  (** None when the bytes decode to nothing *)
  di_label : string option; (** procedure name when the address starts one *)
  di_stop : bool;           (** the address is a source-level stopping point *)
}

let fetch_via (mem : A.t) addr = A.fetch_u8 mem (A.absolute 'c' addr)

(** Disassemble [count] instructions starting at [addr].  [stop_at] marks
    source-level stopping points (the debugger supplies it from the
    symbol table's pc index). *)
let window ?(stop_at = fun _ -> false) (tdesc : Target.t) (mem : A.t) ~(addr : int)
    ~(count : int) ~(proc_of : int -> (int * string) option) : line list =
  let rec go addr n acc =
    if n = 0 then List.rev acc
    else
      let label =
        match proc_of addr with Some (a, name) when a = addr -> Some name | _ -> None
      in
      let stop = stop_at addr in
      match Target.decode tdesc ~fetch:(fetch_via mem) addr with
      | insn, len ->
          let bytes = String.init len (fun i -> Char.chr (fetch_via mem (addr + i))) in
          go (addr + len) (n - 1)
            ({ di_addr = addr; di_bytes = bytes; di_insn = Some insn; di_label = label;
               di_stop = stop }
            :: acc)
      | exception _ ->
          let bytes = String.init tdesc.Target.insn_unit (fun i -> Char.chr (fetch_via mem (addr + i))) in
          go
            (addr + tdesc.Target.insn_unit)
            (n - 1)
            ({ di_addr = addr; di_bytes = bytes; di_insn = None; di_label = label;
               di_stop = stop }
            :: acc)
  in
  go addr count []

let hex_bytes s =
  String.concat "" (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let pp_line ppf (l : line) =
  (match l.di_label with Some n -> Fmt.pf ppf "%s:@\n" n | None -> ());
  Fmt.pf ppf "%s %06x  %-16s %s"
    (if l.di_stop then "*" else " ")
    l.di_addr (hex_bytes l.di_bytes)
    (match l.di_insn with Some i -> Insn.to_string i | None -> "<bad encoding>")

let to_string lines = String.concat "\n" (List.map (Fmt.str "%a" pp_line) lines)
