(** The server's wire protocol: versioned, length-prefixed, CRC-framed
    messages between a debug client and the {!Server}.

    This is the nub transport's robustness discipline ({!Ldb_nub.Frame},
    PR 2) applied one layer up, where the peers are debug {e clients}
    rather than nubs — and a client, unlike a nub, must be presumed
    hostile.  The contract is therefore the same but stricter:

    - every message travels in a frame [0xF5 0x5B | seq | len | crc |
      payload] (all integers little-endian u32; the CRC-32 covers seq,
      len and payload), so corruption and truncation are detectable and
      a receiver can {e resynchronize} by scanning for the next magic;
    - the connection opens with a versioned hello carrying the literal
      {!version_magic} ([LDBSRV1]); anything else is a typed protocol
      error, answered and closed before a session is ever bound;
    - every decoder is {b total}: arbitrary bytes yield a typed
      {!error}, never an exception, and every length field is bounded
      before it is trusted, so a lying header cannot demand an absurd
      allocation or stall the stream (qcheck holds the never-raises and
      round-trip properties in [test_swire.ml]).

    The codec is pure — framing over actual byte endpoints, deadlines
    and scheduling live in {!Evloop}, which consumes {!scan} results
    over whatever bytes have arrived. *)

open Ldb_util
open Ldb_machine

let version_magic = "LDBSRV1"

let magic0 = '\xf5'
let magic1 = '\x5b'
let header_len = 14

(** Client→server payloads are commands: small by construction.  A frame
    claiming more is a lying length field, not a big command. *)
let max_client_payload = 8192

(** Server→client payloads include serialized core dumps. *)
let max_server_payload = (1 lsl 24) + 4096

let max_text = 1 lsl 16
let max_addrs = 4096
let max_core_wire = 1 lsl 24

(* --- typed protocol errors --------------------------------------------------- *)

(** What a hostile or damaged byte stream did.  Every decoder failure is
    one of these; none of them raises. *)
type error =
  | Garbage of int  (** bytes discarded scanning for the next magic *)
  | Bad_length of { seq : int; claimed : int; limit : int }
      (** a header whose length field cannot be a real frame *)
  | Bad_crc of { seq : int }
  | Bad_message of string  (** a checksum-valid payload that does not decode *)

let error_to_string = function
  | Garbage n -> Printf.sprintf "%d byte%s of garbage before a frame" n
                   (if n = 1 then "" else "s")
  | Bad_length { seq; claimed; limit } ->
      Printf.sprintf "frame %d claims a %d-byte payload (limit %d)" seq claimed limit
  | Bad_crc { seq } -> Printf.sprintf "frame %d fails its checksum" seq
  | Bad_message m -> "undecodable message: " ^ m

(* --- framing ------------------------------------------------------------------ *)

let u32_le (v : int) =
  let b = Bytes.create 4 in
  Endian.set_u32 Little b 0 (Int32.of_int v);
  Bytes.to_string b

let get_u32 s pos =
  Int32.to_int (Endian.get_u32 Little (Bytes.of_string (String.sub s pos 4)) 0)
  land 0xffffffff

(** Wrap [payload] in a frame. *)
let seal ~(seq : int) (payload : string) : string =
  if String.length payload > max_server_payload then
    invalid_arg "Swire.seal: payload too long";
  let head = u32_le seq ^ u32_le (String.length payload) in
  let crc =
    let c = Crc32.update (Crc32.init ()) head ~pos:0 ~len:8 in
    Crc32.finish (Crc32.update c payload ~pos:0 ~len:(String.length payload))
  in
  Printf.sprintf "%c%c" magic0 magic1 ^ head ^ u32_le crc ^ payload

(** One scanning decision over the front of a receive buffer.  The
    caller consumes exactly what the result says and calls again;
    [S_need] consumes nothing — the frame is merely incomplete so far. *)
type scan =
  | S_frame of { seq : int; payload : string; used : int }
  | S_skip of { skip : int; error : error }
  | S_need

(** Scan [buf] for the next frame.  Total, consumes nothing itself.
    [max_payload] is the receiver's trust bound: servers scan client
    bytes with {!max_client_payload}, clients scan replies with
    {!max_server_payload}. *)
let scan ?(max_payload = max_client_payload) (buf : string) : scan =
  let avail = String.length buf in
  if avail = 0 then S_need
  else
    (* garbage in front of the next possible magic is skipped, typed *)
    let start =
      let rec find i =
        if i >= avail then avail
        else if buf.[i] = magic0 && (i + 1 >= avail || buf.[i + 1] = magic1) then i
        else find (i + 1)
      in
      find 0
    in
    if start > 0 then S_skip { skip = start; error = Garbage start }
    else if avail < 2 then S_need
    else if buf.[1] <> magic1 then
      (* a lone magic byte: not a frame start *)
      S_skip { skip = 1; error = Garbage 1 }
    else if avail < header_len then S_need
    else
      let seq = get_u32 buf 2 in
      let len = get_u32 buf 6 in
      let crc = get_u32 buf 10 in
      if len > max_payload then
        (* a corrupted (or hostile) length field: skip the magic and let
           the scanner resynchronize on whatever follows *)
        S_skip { skip = 2; error = Bad_length { seq; claimed = len; limit = max_payload } }
      else if avail < header_len + len then S_need
      else
        let check =
          let c = Crc32.update (Crc32.init ()) buf ~pos:2 ~len:8 in
          Crc32.finish (Crc32.update c buf ~pos:header_len ~len)
        in
        if check <> crc then
          (* the length field itself may be lying; consume only the magic
             so a genuine frame inside the claimed span is recovered *)
          S_skip { skip = 2; error = Bad_crc { seq } }
        else
          S_frame { seq; payload = String.sub buf header_len len; used = header_len + len }

(** The resync step a receiver applies when buffered bytes stall as a
    forever-incomplete frame (a torn frame's lying header promising a
    payload that will never arrive): discard the presumed magic and
    rescan.  Anything genuine behind the lie is recovered. *)
let force_resync (buf : string) : string =
  let n = min 2 (String.length buf) in
  String.sub buf n (String.length buf - n)

(* --- message bodies ----------------------------------------------------------- *)

type client_msg =
  | C_hello of { magic : string }  (** must carry {!version_magic} *)
  | C_cmd of Server.command
  | C_bye

type server_msg =
  | S_hello of { session : int }  (** handshake accepted; session bound *)
  | S_reply of Server.reply
  | S_refused of Server.refusal
  | S_error of string  (** typed protocol error, echoed to the client *)
  | S_bye of string  (** server-initiated goodbye (drain, quarantine) *)

(* encode helpers, in the Trace codec's style *)

let buf_u32 b (v : int) = Buffer.add_string b (u32_le v)

let buf_str b s =
  buf_u32 b (String.length s);
  Buffer.add_string b s

exception Hard of string
exception Short of string

type cursor = { src : string; mutable pos : int }

let need c n what =
  if c.pos + n > String.length c.src then raise (Short what)

let u8 c what =
  need c 1 what;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u32 c what =
  need c 4 what;
  let v = get_u32 c.src c.pos in
  c.pos <- c.pos + 4;
  v

let i32 c what =
  let v = u32 c what in
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let take c n what =
  if n < 0 then raise (Hard ("negative length for " ^ what));
  need c n what;
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

let str c ~limit what =
  let n = u32 c (what ^ " length") in
  if n > limit then raise (Hard (Printf.sprintf "%s of %d bytes over the %d limit" what n limit));
  take c n what

(* --- commands ----------------------------------------------------------------- *)

let encode_command (cmd : Server.command) : string =
  let b = Buffer.create 32 in
  (match cmd with
  | Server.Break_function f ->
      Buffer.add_char b 'f';
      buf_str b f
  | Server.Break_line { file; line } ->
      Buffer.add_char b 'l';
      (match file with
      | None -> Buffer.add_char b '\000'
      | Some f ->
          Buffer.add_char b '\001';
          buf_str b f);
      buf_u32 b line
  | Server.Condition { addr; cond } ->
      Buffer.add_char b 'k';
      buf_u32 b addr;
      buf_str b cond
  | Server.Continue -> Buffer.add_char b 'c'
  | Server.Step_source -> Buffer.add_char b 's'
  | Server.Where -> Buffer.add_char b 'w'
  | Server.Backtrace -> Buffer.add_char b 'b'
  | Server.Print v ->
      Buffer.add_char b 'p';
      buf_str b v
  | Server.Read_int v ->
      Buffer.add_char b 'r';
      buf_str b v
  | Server.Fetch_core -> Buffer.add_char b 'o'
  | Server.Detach -> Buffer.add_char b 'd'
  | Server.Kill -> Buffer.add_char b 'x');
  Buffer.contents b

let decode_command (c : cursor) : Server.command =
  match Char.chr (u8 c "command opcode") with
  | 'f' -> Server.Break_function (str c ~limit:max_text "function name")
  | 'l' ->
      let file =
        match u8 c "file flag" with
        | 0 -> None
        | 1 -> Some (str c ~limit:max_text "file name")
        | f -> raise (Hard (Printf.sprintf "bad file flag %d" f))
      in
      let line = u32 c "line" in
      Server.Break_line { file; line }
  | 'k' ->
      let addr = u32 c "condition addr" in
      let cond = str c ~limit:max_text "condition text" in
      Server.Condition { addr; cond }
  | 'c' -> Server.Continue
  | 's' -> Server.Step_source
  | 'w' -> Server.Where
  | 'b' -> Server.Backtrace
  | 'p' -> Server.Print (str c ~limit:max_text "variable name")
  | 'r' -> Server.Read_int (str c ~limit:max_text "variable name")
  | 'o' -> Server.Fetch_core
  | 'd' -> Server.Detach
  | 'x' -> Server.Kill
  | op -> raise (Hard (Printf.sprintf "unknown command opcode %C" op))

(* --- replies ------------------------------------------------------------------ *)

let encode_state (b : Buffer.t) : Ldb.state -> unit = function
  | Ldb.Running -> Buffer.add_char b 'r'
  | Ldb.Stopped { signal; code; ctx_addr } ->
      Buffer.add_char b 's';
      buf_u32 b (Signal.number signal);
      buf_u32 b code;
      buf_u32 b ctx_addr
  | Ldb.Exited n ->
      Buffer.add_char b 'x';
      buf_u32 b n
  | Ldb.Detached -> Buffer.add_char b 'd'

let decode_state (c : cursor) : Ldb.state =
  match Char.chr (u8 c "state tag") with
  | 'r' -> Ldb.Running
  | 's' ->
      let sign = u32 c "stop signal" in
      let code = u32 c "stop code" in
      let ctx_addr = u32 c "stop ctx" in
      let signal =
        match Signal.of_number sign with
        | Some s -> s
        | None -> raise (Hard (Printf.sprintf "unknown signal %d" sign))
      in
      Ldb.Stopped { signal; code; ctx_addr }
  | 'x' -> Ldb.Exited (i32 c "exit status")
  | 'd' -> Ldb.Detached
  | t -> raise (Hard (Printf.sprintf "unknown state tag %C" t))

let encode_reply (r : Server.reply) : string =
  let b = Buffer.create 64 in
  (match r with
  | Server.R_unit -> Buffer.add_char b 'u'
  | Server.R_addr a ->
      Buffer.add_char b 'a';
      buf_u32 b a
  | Server.R_addrs addrs ->
      Buffer.add_char b 'A';
      buf_u32 b (List.length addrs);
      List.iter (buf_u32 b) addrs
  | Server.R_state st ->
      Buffer.add_char b 's';
      encode_state b st
  | Server.R_text t ->
      Buffer.add_char b 't';
      buf_str b t
  | Server.R_int n ->
      Buffer.add_char b 'i';
      buf_u32 b (n land 0xffffffff)
  | Server.R_core co ->
      Buffer.add_char b 'C';
      buf_str b (Core.to_string co));
  Buffer.contents b

let decode_reply (c : cursor) : Server.reply =
  match Char.chr (u8 c "reply opcode") with
  | 'u' -> Server.R_unit
  | 'a' -> Server.R_addr (u32 c "addr")
  | 'A' ->
      let n = u32 c "addr count" in
      if n > max_addrs then raise (Hard (Printf.sprintf "%d addresses over the limit" n));
      Server.R_addrs (List.init n (fun _ -> u32 c "addr"))
  | 's' -> Server.R_state (decode_state c)
  | 't' -> Server.R_text (str c ~limit:max_text "reply text")
  | 'i' -> Server.R_int (i32 c "reply int")
  | 'C' -> (
      let bytes = str c ~limit:max_core_wire "core bytes" in
      match Core.of_string bytes with
      | Ok (co, []) -> Server.R_core co
      | Ok (_, _ :: _) -> raise (Hard "damaged core in reply")
      | Error m -> raise (Hard ("bad core in reply: " ^ m)))
  | op -> raise (Hard (Printf.sprintf "unknown reply opcode %C" op))

(* --- refusals ----------------------------------------------------------------- *)

let encode_refusal (r : Server.refusal) : string =
  let b = Buffer.create 32 in
  (match r with
  | Server.No_such_session id ->
      Buffer.add_char b 'n';
      buf_u32 b id
  | Server.Session_closed id ->
      Buffer.add_char b 'c';
      buf_u32 b id
  | Server.Session_down { reason; salvaged } ->
      Buffer.add_char b 'd';
      Buffer.add_char b (if salvaged then '\001' else '\000');
      buf_str b reason
  | Server.Overloaded m ->
      Buffer.add_char b 'o';
      buf_str b m
  | Server.Failed m ->
      Buffer.add_char b 'f';
      buf_str b m);
  Buffer.contents b

let decode_refusal (c : cursor) : Server.refusal =
  match Char.chr (u8 c "refusal opcode") with
  | 'n' -> Server.No_such_session (u32 c "session id")
  | 'c' -> Server.Session_closed (u32 c "session id")
  | 'd' ->
      let salvaged =
        match u8 c "salvage flag" with
        | 0 -> false
        | 1 -> true
        | f -> raise (Hard (Printf.sprintf "bad salvage flag %d" f))
      in
      Server.Session_down { reason = str c ~limit:max_text "down reason"; salvaged }
  | 'o' -> Server.Overloaded (str c ~limit:max_text "overload reason")
  | 'f' -> Server.Failed (str c ~limit:max_text "failure reason")
  | op -> raise (Hard (Printf.sprintf "unknown refusal opcode %C" op))

(* --- whole messages ----------------------------------------------------------- *)

let encode_client (m : client_msg) : string =
  let b = Buffer.create 32 in
  (match m with
  | C_hello { magic } ->
      Buffer.add_char b 'H';
      buf_str b magic
  | C_cmd cmd ->
      Buffer.add_char b 'C';
      Buffer.add_string b (encode_command cmd)
  | C_bye -> Buffer.add_char b 'B');
  Buffer.contents b

let encode_server (m : server_msg) : string =
  let b = Buffer.create 64 in
  (match m with
  | S_hello { session } ->
      Buffer.add_char b 'H';
      buf_str b version_magic;
      buf_u32 b session
  | S_reply r ->
      Buffer.add_char b 'R';
      Buffer.add_string b (encode_reply r)
  | S_refused r ->
      Buffer.add_char b 'F';
      Buffer.add_string b (encode_refusal r)
  | S_error m ->
      Buffer.add_char b 'E';
      buf_str b m
  | S_bye m ->
      Buffer.add_char b 'D';
      buf_str b m);
  Buffer.contents b

(** Decode a client payload.  Total: anything undecodable is a typed
    {!Bad_message}, never an exception. *)
let decode_client (payload : string) : (client_msg, error) result =
  let c = { src = payload; pos = 0 } in
  let fin v =
    if c.pos <> String.length payload then Error (Bad_message "trailing bytes") else Ok v
  in
  try
    match Char.chr (u8 c "message opcode") with
    | 'H' -> fin (C_hello { magic = str c ~limit:64 "hello magic" })
    | 'C' -> fin (C_cmd (decode_command c))
    | 'B' -> fin C_bye
    | op -> Error (Bad_message (Printf.sprintf "unknown client opcode %C" op))
  with
  | Hard m -> Error (Bad_message m)
  | Short what -> Error (Bad_message ("truncated " ^ what))

(** Decode a server payload.  Total, like {!decode_client}. *)
let decode_server (payload : string) : (server_msg, error) result =
  let c = { src = payload; pos = 0 } in
  let fin v =
    if c.pos <> String.length payload then Error (Bad_message "trailing bytes") else Ok v
  in
  try
    match Char.chr (u8 c "message opcode") with
    | 'H' ->
        let magic = str c ~limit:64 "hello magic" in
        if magic <> version_magic then
          Error (Bad_message (Printf.sprintf "hello answers %S, not %S" magic version_magic))
        else fin (S_hello { session = u32 c "session id" })
    | 'R' -> fin (S_reply (decode_reply c))
    | 'F' -> fin (S_refused (decode_refusal c))
    | 'E' -> fin (S_error (str c ~limit:max_text "error text"))
    | 'D' -> fin (S_bye (str c ~limit:max_text "bye text"))
    | op -> Error (Bad_message (Printf.sprintf "unknown server opcode %C" op))
  with
  | Hard m -> Error (Bad_message m)
  | Short what -> Error (Bad_message ("truncated " ^ what))

(** Render a server message the way transcripts and logs want it. *)
let server_msg_to_string = function
  | S_hello { session } -> Printf.sprintf "hello: session %d" session
  | S_reply r -> "ok: " ^ Server.reply_to_string r
  | S_refused r -> "refused: " ^ Server.refusal_to_string r
  | S_error m -> "protocol error: " ^ m
  | S_bye m -> "bye: " ^ m
