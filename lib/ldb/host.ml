(** Host-side plumbing for the paper's connection mechanisms (Sec. 1, 4.2):
    forking the target as a child ([spawn]), connecting to an existing
    process over the (simulated) network ([attach_existing]), and being
    contacted by a faulty process whose nub preserved its state
    ([run_until_fault] + [attach_existing]). *)

open Ldb_machine
module Nub = Ldb_nub.Nub
module Chan = Ldb_nub.Chan

(** A target program running under its nub on the simulated host. *)
type process = {
  hp_proc : Proc.t;
  hp_nub : Nub.t;
  hp_image : Ldb_link.Link.image;
  hp_loader_ps : string;
}

(** Compile, link and load [sources] for [arch]; the program starts under
    its nub, paused before main. *)
let launch ?(debug = true) ?(defer = true) ?(compress = false) ?(paused = true)
    ~(arch : Arch.t) (sources : (string * string) list) : process =
  let img, loader_ps = Ldb_link.Driver.build ~debug ~defer ~compress ~arch sources in
  let proc = Ldb_link.Link.load img in
  let nub = Nub.create proc in
  Nub.start ~paused nub;
  { hp_proc = proc; hp_nub = nub; hp_image = img; hp_loader_ps = loader_ps }

(** Compile, link and load once; launch a fresh process of the built
    program.  A server hosting many sessions of the same program builds
    with {!build_image} and launches each process with {!launch_image} —
    recompiling per session would swamp the soak with compiler time. *)
let build_image ?(debug = true) ?(defer = true) ?(compress = false) ~(arch : Arch.t)
    (sources : (string * string) list) : Ldb_link.Link.image * string =
  Ldb_link.Driver.build ~debug ~defer ~compress ~arch sources

(** Load a prebuilt image into a fresh process under a fresh nub. *)
let launch_image ?(paused = true) ((img : Ldb_link.Link.image), (loader_ps : string)) :
    process =
  let proc = Ldb_link.Link.load img in
  let nub = Nub.create proc in
  Nub.start ~paused nub;
  { hp_proc = proc; hp_nub = nub; hp_image = img; hp_loader_ps = loader_ps }

(** Open a debugger connection to a process: returns the debugger-side
    endpoint, with its pump wired to the process's nub (the discrete-event
    stand-in for a socket to another machine). *)
let open_channel (p : process) : Chan.endpoint =
  let dbg_end, nub_end = Chan.pair ~labels:("ldb", "nub") () in
  Nub.attach p.hp_nub nub_end;
  Chan.set_pump dbg_end (fun () -> Nub.pump p.hp_nub);
  dbg_end

(** Like {!open_channel}, but with {!Ldb_nub.Faultchan} interposed on the
    link: messages in both directions suffer seeded, reproducible faults.
    Returns the injector so callers can inspect what was injected. *)
let open_faulty_channel ?armed (p : process) ~(seed : int)
    (profile : Ldb_nub.Faultchan.profile) : Chan.endpoint * Ldb_nub.Faultchan.t =
  let dbg_end, nub_end = Chan.pair ~labels:("ldb", "nub") () in
  Nub.attach p.hp_nub nub_end;
  Chan.set_pump dbg_end (fun () -> Nub.pump p.hp_nub);
  let fc = Ldb_nub.Faultchan.install ?armed ~seed profile ~dbg:dbg_end ~nub:nub_end in
  (dbg_end, fc)

(** Spawn under the debugger: launch paused and connect. *)
let spawn (d : Ldb.t) ?debug ?defer ?compress ~arch ~name sources : process * Ldb.target =
  let p = launch ?debug ?defer ?compress ~paused:true ~arch sources in
  let tg = Ldb.connect d ~name ~loader_ps:p.hp_loader_ps (open_channel p) in
  (p, tg)

(** Reattach a target to its (surviving) nub after the link died: open a
    fresh channel and run the debugger's resync — replay Hello, re-read
    the stop context, re-validate breakpoints. *)
let reattach (d : Ldb.t) (tg : Ldb.target) (p : process) : Ldb.state =
  Ldb.reattach d tg (open_channel p)

(** Run a program with no debugger attached until it faults or exits; the
    nub catches the fault and preserves the state, waiting for a
    connection. *)
let run_until_fault (p : process) : Proc.status =
  Nub.start ~paused:false p.hp_nub;
  p.hp_proc.Proc.status

(** Attach to an already-running (or faulted) process — the network /
    post-mortem mechanism. *)
let attach_existing (d : Ldb.t) ~name (p : process) : Ldb.target =
  Ldb.connect d ~name ~loader_ps:p.hp_loader_ps (open_channel p)

let output (p : process) = Proc.output p.hp_proc
