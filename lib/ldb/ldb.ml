(** The debugger proper.

    One [Ldb.t] can debug several targets simultaneously, possibly on
    different architectures; all per-target state lives in target objects
    (Sec. 7), and the single embedded PostScript interpreter serves them
    all — ldb changes architectures by rebinding the machine-dependent
    dictionary on the dictionary stack (Sec. 5).

    Connection mechanisms mirror the paper's: attach to an existing nub
    over a channel (the "network" case), spawn a program under the nub, or
    adopt a faulty process whose nub has preserved its state. *)

open Ldb_machine
module A = Ldb_amemory.Amemory
module V = Ldb_pscript.Value
module I = Ldb_pscript.Interp
module Nub = Ldb_nub.Nub
module Chan = Ldb_nub.Chan
module Proto = Ldb_nub.Proto

exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type state =
  | Running
  | Stopped of { signal : Signal.t; code : int; ctx_addr : int }
  | Exited of int
  | Detached

type target = {
  tg_name : string;
  tg_arch : Arch.t;
  tg_tdesc : Target.t;
  tg_tr : Transport.t;  (** retrying, reconnectable link to the nub *)
  tg_wire : A.t;
  tg_defs : V.dict;       (** dictionary holding this program's PS definitions *)
  tg_arch_dict : V.dict;  (** machine-dependent PostScript *)
  tg_ops : V.dict;        (** per-target operators: LazyData, GlobalLoc, ... *)
  tg_symtab : Symtab.t;
  tg_linkerif : Linkerif.t;
  tg_breaks : Breakpoint.table;
  tg_can_step : bool;  (** nub offers the single-step protocol extension *)
  mutable tg_state : state;
}

type t = {
  interp : I.t;
  mutable targets : target list;
}

let create () : t = { interp = Ldb_pscript.Ps.create (); targets = [] }

(** Create without loading the shared prelude (startup benchmarking). *)
let create_bare () : t = { interp = Ldb_pscript.Ps.create_bare (); targets = [] }

(* --- interpreting in a target's context ---------------------------------- *)

(** Run [f] with the target's definition, architecture, and operator
    dictionaries on the dictionary stack. *)
let with_target (d : t) (tg : target) (f : unit -> 'a) : 'a =
  I.begin_dict d.interp tg.tg_defs;
  I.begin_dict d.interp tg.tg_arch_dict;
  I.begin_dict d.interp tg.tg_ops;
  Fun.protect
    ~finally:(fun () ->
      I.end_dict d.interp;
      I.end_dict d.interp;
      I.end_dict d.interp)
    f

(* --- connecting ------------------------------------------------------------ *)

let read_loader_ps (d : t) ~(defs : V.dict) (loader_ps : string) : V.dict * V.dict =
  I.begin_dict d.interp defs;
  Fun.protect ~finally:(fun () -> I.end_dict d.interp) (fun () ->
      I.run_string d.interp loader_ps);
  let get k =
    match V.dict_get defs k with
    | Some v -> V.to_dict v
    | None -> fail "loader PostScript did not define /%s" k
  in
  (get "__loader", get "__symtab")

let state_of_hello (st : Proto.stop_state) : state =
  match st with
  | Proto.St_running -> Running
  | Proto.St_stopped { signal; code; ctx_addr } ->
      let signal = Option.value ~default:Signal.SIGINT (Signal.of_number signal) in
      Stopped { signal; code; ctx_addr }
  | Proto.St_exited n -> Exited n

(** Install the per-target operators whose behaviour depends on the
    target's loader table and connection. *)
let make_target_ops (d : t) (li : Linkerif.t) : V.dict =
  let ops = V.dict_create () in
  let def name f = V.dict_put ops name (V.op name f) in
  def "LazyData" (fun () ->
      (* anchorname idx -> data location *)
      let idx = I.pop_int d.interp in
      let name = I.pop_str d.interp in
      let addr = Linkerif.lazy_data li ~name ~idx in
      I.push d.interp (V.loc (A.absolute 'd' addr)));
  def "GlobalLoc" (fun () ->
      let name = I.pop_str d.interp in
      I.push d.interp (V.loc (A.absolute 'd' (Linkerif.global_address li name))));
  def "GlobalCodeLoc" (fun () ->
      let name = I.pop_str d.interp in
      I.push d.interp (V.loc (A.absolute 'c' (Linkerif.global_address li name))));
  def "GlobalAddr" (fun () ->
      let name = I.pop_str d.interp in
      I.push d.interp (V.int (Linkerif.global_address li name)));
  ops

(** Check that the anchor symbols named by the symbol table match the
    loader table, ensuring the top-level dictionary matches the object
    code (Sec. 2). *)
let check_anchors (tg : target) =
  match V.dict_get tg.tg_symtab.Symtab.symtab "anchors" with
  | None -> ()
  | Some anchors ->
      Array.iter
        (fun a ->
          let name = V.to_str a in
          try ignore (Linkerif.anchor_address tg.tg_linkerif name)
          with Linkerif.Error _ ->
            fail "symbol table does not match object code: anchor %s missing" name)
        (V.to_arr anchors)

(** Connect to a nub over [chan], reading the program's loader-table
    PostScript.  Works for all connection mechanisms: the nub end may be a
    fresh paused process, a long-running faulty one, or a process across
    the simulated network.  [deadline] and [max_retries] tune the
    transport's recovery policy. *)
let connect ?deadline ?max_retries (d : t) ~(name : string) ~(loader_ps : string)
    (chan : Chan.endpoint) : target =
  let tr = Transport.make ?deadline ?max_retries chan in
  let arch, st, can_step =
    match Transport.rpc tr Proto.Hello with
    | Proto.Hello_reply { arch; state; can_step } -> (
        match Arch.of_name arch with
        | Some a -> (a, state, can_step)
        | None -> fail "nub reports unknown architecture %s" arch)
    | r -> fail "unexpected reply to Hello: %s" (Fmt.str "%a" Proto.pp_reply r)
  in
  let defs = V.dict_create () in
  let loader, symtab_dict = read_loader_ps d ~defs loader_ps in
  let symtab = Symtab.make ~interp:d.interp ~symtab_dict in
  if not (Arch.equal symtab.Symtab.arch arch) then
    fail "symbol table is for %s but the target runs %s" (Arch.name symtab.Symtab.arch)
      (Arch.name arch);
  let wire = A.rpc_wire (Transport.rpc tr) in
  let li = Linkerif.make ~arch ~loader ~wire in
  let arch_dict = V.dict_create () in
  (* interpret the machine-dependent PostScript into its dictionary *)
  I.begin_dict d.interp arch_dict;
  Fun.protect ~finally:(fun () -> I.end_dict d.interp) (fun () ->
      I.run_string d.interp (Mdep_ps.source arch));
  let tg =
    {
      tg_name = name;
      tg_arch = arch;
      tg_tdesc = Target.of_arch arch;
      tg_tr = tr;
      tg_wire = wire;
      tg_defs = defs;
      tg_arch_dict = arch_dict;
      tg_ops = make_target_ops d li;
      tg_symtab = symtab;
      tg_linkerif = li;
      tg_breaks = Breakpoint.create_table ();
      tg_can_step = can_step;
      tg_state = state_of_hello st;
    }
  in
  check_anchors tg;
  d.targets <- tg :: d.targets;
  tg

(** Force the target's whole symbol table (normally demand-driven: queries
    force only the units they need). *)
let force_symbols (d : t) (tg : target) =
  with_target d tg (fun () -> Symtab.force_all tg.tg_symtab)

(** Force the symbol table of one compilation unit. *)
let force_unit (d : t) (tg : target) ~(file : string) =
  with_target d tg (fun () -> Symtab.force_unit tg.tg_symtab ~file)

(* --- execution control ------------------------------------------------------ *)

let ctx_pc_addr tg ctx_addr = ctx_addr + tg.tg_tdesc.Target.ctx_pc_off

let read_ctx_pc tg ctx_addr =
  Int32.to_int (A.fetch_i32 tg.tg_wire (A.absolute 'd' (ctx_pc_addr tg ctx_addr)))
  land 0xffffffff

let write_ctx_pc tg ctx_addr pc =
  A.store_i32 tg.tg_wire (A.absolute 'd' (ctx_pc_addr tg ctx_addr)) (Int32.of_int pc)

(** Issue a run request ([Continue] or [Step]) and interpret the event
    that answers it.  The transport retries transient faults; the nub's
    duplicate suppression guarantees the target runs at most once no
    matter how many times the request had to be re-sent. *)
let run_rpc (tg : target) (req : Proto.request) : state =
  let st =
    match Transport.rpc tg.tg_tr req with
    | Proto.Event { signal; code; ctx_addr } ->
        let signal = Option.value ~default:Signal.SIGINT (Signal.of_number signal) in
        Stopped { signal; code; ctx_addr }
    | Proto.Exit_event n -> Exited n
    | r -> fail "unexpected reply while running: %s" (Fmt.str "%a" Proto.pp_reply r)
  in
  tg.tg_state <- st;
  st

(** Execute exactly one target instruction (the nub's Step extension). *)
let step_instruction (_d : t) (tg : target) : state =
  if not tg.tg_can_step then
    fail "target %s: this nub does not support single-stepping" tg.tg_name;
  (match tg.tg_state with
  | Stopped _ -> ()
  | _ -> fail "target %s is not stopped" tg.tg_name);
  run_rpc tg Proto.Step

(** Resume the target and wait for the next event.

    At a no-op breakpoint, the no-op is "interpreted" by skipping it: the
    context pc advances by the machine-dependent amount.  At a general
    breakpoint (Sec. 7.1's model), the original instruction is restored,
    executed with one single step, and the trap replanted before
    continuing. *)
let continue_ (d : t) (tg : target) : state =
  ignore d;
  (match tg.tg_state with
  | Stopped { signal; code = _; ctx_addr } -> (
      let pc = read_ctx_pc tg ctx_addr in
      if Breakpoint.is_breakpoint_fault tg.tg_breaks ~signal ~pc then
        match Hashtbl.find_opt tg.tg_breaks pc with
        | Some bp when bp.Breakpoint.bp_general ->
            (* restore, single-step the original instruction, replant *)
            Breakpoint.remove tg.tg_breaks tg.tg_wire ~addr:pc;
            (match step_instruction d tg with
            | Stopped _ ->
                ignore
                  (Breakpoint.plant_general tg.tg_breaks tg.tg_tdesc tg.tg_wire ~addr:pc)
            | st ->
                (* exited or faulted during the step: report it *)
                tg.tg_state <- st)
        | _ -> write_ctx_pc tg ctx_addr (pc + tg.tg_tdesc.Target.nop_advance))
  | Running -> ()
  | Exited n -> fail "target %s already exited with status %d" tg.tg_name n
  | Detached -> fail "target %s is detached" tg.tg_name);
  match tg.tg_state with
  | Exited _ -> tg.tg_state
  | _ -> run_rpc tg Proto.Continue

let kill (tg : target) =
  Transport.send_oneway tg.tg_tr Proto.Kill;
  tg.tg_state <- Exited 137

(** Break the connection, preserving target state in the nub. *)
let detach (tg : target) =
  Transport.send_oneway tg.tg_tr Proto.Detach;
  Chan.disconnect (Transport.endpoint tg.tg_tr);
  tg.tg_state <- Detached

(* --- reattach and resync (debugger-crash survival, Sec. 4.2) -------------- *)

(** Reconnect a target whose link died — the debugger-crash-survival
    scenario, from this side: the nub preserved the target's state, and
    the debugger re-establishes everything it knew over a fresh channel.

    Replays [Hello] to re-learn the stop state (and re-check the
    architecture), re-reads the stop context address, and re-validates
    every planted breakpoint against target memory, replanting any whose
    trap bytes are gone.  The target's symbol tables, loader tables and
    wire memory survive untouched — they hang off the transport, which
    [Transport.reconnect] preserves. *)
let reattach (d : t) (tg : target) (chan : Chan.endpoint) : state =
  ignore d;
  Transport.reconnect tg.tg_tr chan;
  let st =
    match Transport.rpc tg.tg_tr Proto.Hello with
    | Proto.Hello_reply { arch; state; can_step = _ } -> (
        match Arch.of_name arch with
        | Some a when Arch.equal a tg.tg_arch -> state_of_hello state
        | Some a ->
            fail "reattach: nub now reports %s but target %s runs %s" (Arch.name a)
              tg.tg_name (Arch.name tg.tg_arch)
        | None -> fail "reattach: nub reports unknown architecture %s" arch)
    | r -> fail "unexpected reply to Hello: %s" (Fmt.str "%a" Proto.pp_reply r)
  in
  tg.tg_state <- st;
  (* the nub preserved target memory, so planted traps should still be
     there — but verify rather than trust, and replant any that are not *)
  ignore (Breakpoint.revalidate tg.tg_breaks tg.tg_tdesc tg.tg_wire : int);
  st

(* --- stopping points and breakpoints ----------------------------------------- *)

(** Object-code address of a stopping point: interpret its location
    procedure ({anchor idx LazyData}); results are memoized by the linker
    interface's anchor cache. *)
let stop_address (d : t) (tg : target) (s : Symtab.stop) : int =
  with_target d tg (fun () ->
      I.exec_value d.interp (V.cvx s.Symtab.stop_objloc);
      match (I.pop d.interp).V.v with
      | V.Loc (A.Absolute { offset; _ }) -> offset
      | V.Int n -> n
      | _ -> fail "stopping point location did not evaluate to a location")

(** Set a breakpoint at the entry to [funcname].  Demand-driven: only the
    unit defining the procedure is forced. *)
let break_function (d : t) (tg : target) (funcname : string) : int =
  match with_target d tg (fun () -> Symtab.entry_stop tg.tg_symtab ~name:funcname) with
  | None -> fail "no procedure named %s" funcname
  | Some s ->
      let addr = stop_address d tg s in
      ignore
        (Breakpoint.plant tg.tg_breaks tg.tg_tdesc tg.tg_wire ~addr
           ~source:(Symtab.entry_name s.Symtab.stop_proc, s.Symtab.stop_line));
      addr

(** Set breakpoints at every stopping point on a source line (a single
    source location may correspond to more than one stopping point).  With
    [?file] only that unit is consulted — and forced. *)
let break_line ?file (d : t) (tg : target) ~(line : int) : int list =
  let stops =
    with_target d tg (fun () -> Symtab.stops_at_line ?file tg.tg_symtab ~line)
  in
  if stops = [] then fail "no stopping point at line %d" line;
  List.map
    (fun s ->
      let addr = stop_address d tg s in
      ignore
        (Breakpoint.plant tg.tg_breaks tg.tg_tdesc tg.tg_wire ~addr
           ~source:(Symtab.entry_name s.Symtab.stop_proc, s.Symtab.stop_line));
      addr)
    stops

let clear_breakpoint (tg : target) ~addr = Breakpoint.remove tg.tg_breaks tg.tg_wire ~addr

(* --- stack frames -------------------------------------------------------------- *)

let proc_entry_at (d : t) (tg : target) ~pc : V.t option =
  (* the loader's proctable maps the pc to a linker label without touching
     the symbol table; only the unit defining that label is then forced *)
  match Linkerif.proc_of_pc tg.tg_linkerif ~pc with
  | None -> None
  | Some (_, label) ->
      with_target d tg (fun () -> Symtab.proc_by_label tg.tg_symtab label)

let proc_info_of_entry (e : V.t) : Frame.proc_info =
  let d = V.to_dict e in
  let geti k default = match V.dict_get d k with Some v -> V.to_int v | None -> default in
  let saved =
    match V.dict_get d "savedregs" with
    | Some arr ->
        Array.to_list (V.to_arr arr)
        |> List.map (fun pair ->
               let a = V.to_arr pair in
               (V.to_int a.(0), V.to_int a.(1)))
    | None -> []
  in
  { Frame.pi_frame_size = geti "framesize" 0; pi_ra_offset = geti "raoffset" (-4);
    pi_saved_regs = saved }

let make_query (d : t) (tg : target) : Frame.query =
  {
    Frame.q_target = tg.tg_tdesc;
    q_wire = tg.tg_wire;
    q_frame_size = (fun ~pc -> Linkerif.frame_size tg.tg_linkerif ~pc);
    q_proc_info =
      (fun ~pc -> Option.map proc_info_of_entry (proc_entry_at d tg ~pc));
    q_known_pc =
      (fun ~pc ->
        match Linkerif.proc_of_pc tg.tg_linkerif ~pc with
        | Some (_, label) -> label <> Ldb_link.Link.start_symbol && proc_entry_at d tg ~pc <> None
        | None -> false);
  }

(** The frame of the topmost activation; [Frame.fr_down] walks down. *)
let top_frame (d : t) (tg : target) : Frame.t =
  match tg.tg_state with
  | Stopped { ctx_addr; _ } -> (
      let q = make_query d tg in
      match tg.tg_arch with
      | Arch.Mips -> Frame_mips.top q ~ctx_addr
      | Arch.Sparc -> Frame_sparc.top q ~ctx_addr
      | Arch.M68k -> Frame_m68k.top q ~ctx_addr
      | Arch.Vax -> Frame_vax.top q ~ctx_addr)
  | _ -> fail "target %s is not stopped" tg.tg_name

(** The whole call stack, topmost first. *)
let backtrace (d : t) (tg : target) : Frame.t list =
  let rec go acc fr =
    let acc = fr :: acc in
    match fr.Frame.fr_down () with Some fr' -> go acc fr' | None -> List.rev acc
  in
  go [] (top_frame d tg)

(** The stopping point governing a frame: the loci entry whose address is
    nearest below the frame's pc (binary search over the symbol table's
    per-procedure pc index; the index is built on first use). *)
let stop_of_frame (d : t) (tg : target) (fr : Frame.t) : Symtab.stop option =
  match proc_entry_at d tg ~pc:fr.Frame.fr_pc with
  | None -> None
  | Some proc ->
      Symtab.stop_at_pc tg.tg_symtab ~addr_of:(stop_address d tg) proc
        ~pc:fr.Frame.fr_pc

(* --- variables -------------------------------------------------------------------- *)

(** Resolve [name] in the context of [frame] and return its symbol-table
    entry. *)
let resolve (d : t) (tg : target) (fr : Frame.t) (name : string) : V.t option =
  let stop = stop_of_frame d tg fr in
  (* locals and statics need no further forcing; extern misses may force
     the (hinted) unit defining the name *)
  with_target d tg (fun () -> Symtab.resolve tg.tg_symtab stop name)

(** Evaluate a symbol entry's /where in the context of a frame, yielding
    its location. *)
let location_of (d : t) (tg : target) (fr : Frame.t) (entry : V.t) : A.location =
  let dict = V.to_dict entry in
  match V.dict_get dict "where" with
  | None -> fail "symbol %s has no location" (Symtab.entry_name entry)
  | Some w -> (
      match w.V.v with
      | V.Loc l -> l (* register locations are computed when the table is read *)
      | V.Arr _ ->
          with_target d tg (fun () ->
              (* bind the frame context for FrameLoc *)
              let fdict = V.dict_create () in
              V.dict_put fdict "FrameBase" (V.int fr.Frame.fr_base);
              V.dict_put fdict "FrameMem" (V.mem fr.Frame.fr_mem);
              I.begin_dict d.interp fdict;
              Fun.protect ~finally:(fun () -> I.end_dict d.interp) (fun () ->
                  I.exec_value d.interp (V.cvx w);
                  match (I.pop d.interp).V.v with
                  | V.Loc l -> l
                  | _ -> fail "where procedure did not yield a location"))
      | _ -> fail "bad /where for %s" (Symtab.entry_name entry))

(** Print a variable's value using the printing procedure from its type
    dictionary — the debugger knows nothing about C data layout. *)
let print_value (d : t) (tg : target) (fr : Frame.t) (name : string) : string =
  match resolve d tg fr name with
  | None -> fail "%s is not visible here" name
  | Some entry ->
      let loc = location_of d tg fr entry in
      let tdict =
        match V.dict_get (V.to_dict entry) "type" with
        | Some ty -> ty
        | None -> fail "symbol %s has no type" name
      in
      with_target d tg (fun () ->
          ignore (I.take_output d.interp);
          I.push d.interp (V.mem fr.Frame.fr_mem);
          I.push d.interp (V.loc loc);
          I.push d.interp tdict;
          I.run_string d.interp "print";
          I.take_output d.interp)

(** Fetch a scalar variable as an integer (tests and assignments). *)
let read_int_var (d : t) (tg : target) (fr : Frame.t) (name : string) : int =
  match resolve d tg fr name with
  | None -> fail "%s is not visible here" name
  | Some entry ->
      let loc = location_of d tg fr entry in
      Int32.to_int (A.fetch_i32 fr.Frame.fr_mem loc)

(** Assign to a scalar variable (direct form; full expressions go through
    the expression server). *)
let assign_int (d : t) (tg : target) (fr : Frame.t) (name : string) (v : int) : unit =
  match resolve d tg fr name with
  | None -> fail "%s is not visible here" name
  | Some entry ->
      let loc = location_of d tg fr entry in
      A.store_i32 fr.Frame.fr_mem loc (Int32.of_int v)

let assign_float (d : t) (tg : target) (fr : Frame.t) (name : string) (v : float) : unit =
  match resolve d tg fr name with
  | None -> fail "%s is not visible here" name
  | Some entry ->
      let loc = location_of d tg fr entry in
      let size =
        match V.dict_get (V.to_dict entry) "type" with
        | Some ty -> (
            match V.dict_get (V.to_dict ty) "size" with Some s -> V.to_int s | None -> 8)
        | None -> 8
      in
      A.store_float fr.Frame.fr_mem loc ~size v

(** Name of the procedure a frame is stopped in. *)
let frame_function (d : t) (tg : target) (fr : Frame.t) : string =
  match proc_entry_at d tg ~pc:fr.Frame.fr_pc with
  | Some e -> Symtab.entry_name e
  | None -> (
      match Linkerif.proc_of_pc tg.tg_linkerif ~pc:fr.Frame.fr_pc with
      | Some (_, label) -> label
      | None -> Printf.sprintf "%#x" fr.Frame.fr_pc)

(** One-line description of the current stop. *)
let where (d : t) (tg : target) : string =
  match tg.tg_state with
  | Stopped { signal; _ } ->
      let fr = top_frame d tg in
      let line =
        match stop_of_frame d tg fr with
        | Some s -> Printf.sprintf " line %d" s.Symtab.stop_line
        | None -> ""
      in
      Printf.sprintf "%s in %s%s (pc=%#x)" (Signal.name signal) (frame_function d tg fr)
        line fr.Frame.fr_pc
  | Running -> "running"
  | Exited n -> Printf.sprintf "exited with status %d" n
  | Detached -> "detached"

(* --- breakpoints over arbitrary instructions (Sec. 7.1) ------------------- *)

(** Plant a breakpoint over any instruction (not just a stopping-point
    no-op).  Requires the nub's single-step extension for resumption, so
    this refuses when the extension is absent — ldb keeps functioning with
    the no-op scheme either way, as the paper prescribes for protocol
    extensions. *)
let break_address (d : t) (tg : target) ~(addr : int) : unit =
  ignore d;
  if not tg.tg_can_step then
    fail "target %s: general breakpoints need the nub's single-step extension" tg.tg_name;
  ignore (Breakpoint.plant_general tg.tg_breaks tg.tg_tdesc tg.tg_wire ~addr)

(* --- source-level single stepping (Sec. 7.1) ------------------------------- *)

(** Addresses of every stopping point in the procedure containing [pc]
    (memoized by the pc index — this is the single-step loop's hot path). *)
let stop_addresses (d : t) (tg : target) ~pc : int list =
  match proc_entry_at d tg ~pc with
  | None -> []
  | Some proc -> Symtab.stop_addresses tg.tg_symtab ~addr_of:(stop_address d tg) proc

(** Step to the next stopping point: single-step instructions until the pc
    lands on a stopping point different from the current one (entering
    callees counts — their entry point is a stopping point).  Returns the
    resulting state; gives up after [limit] instructions. *)
let step_source ?(limit = 200_000) (d : t) (tg : target) : state =
  (match tg.tg_state with
  | Stopped { signal; ctx_addr; _ } ->
      (* leaving a breakpoint: skip its no-op first so the step makes
         progress *)
      let pc = read_ctx_pc tg ctx_addr in
      if Breakpoint.is_breakpoint_fault tg.tg_breaks ~signal ~pc then
        write_ctx_pc tg ctx_addr (pc + tg.tg_tdesc.Target.nop_advance)
  | _ -> fail "target %s is not stopped" tg.tg_name);
  let start_pc =
    match tg.tg_state with Stopped { ctx_addr; _ } -> read_ctx_pc tg ctx_addr | _ -> 0
  in
  let rec go n =
    if n >= limit then fail "step: no stopping point within %d instructions" limit
    else
      match step_instruction d tg with
      | Stopped { signal = SIGTRAP; code = 1; ctx_addr } -> (
          let pc = read_ctx_pc tg ctx_addr in
          if pc <> start_pc && List.mem pc (stop_addresses d tg ~pc) then tg.tg_state
          else go (n + 1))
      | st -> st (* exit, fault, or a planted breakpoint: report it *)
  in
  go 0

(* --- disassembly ------------------------------------------------------------ *)

(** Disassemble [count] instructions at [addr] through the wire; planted
    breakpoints show up as the trap instructions they are, and addresses
    that are source-level stopping points are marked (from the pc index of
    the procedure containing [addr], forced on demand). *)
let disassemble (d : t) (tg : target) ~(addr : int) ~(count : int) : Disas.line list =
  let stops =
    match proc_entry_at d tg ~pc:addr with
    | None -> []
    | Some proc -> Symtab.stop_addresses tg.tg_symtab ~addr_of:(stop_address d tg) proc
  in
  Disas.window tg.tg_tdesc tg.tg_wire ~addr ~count
    ~stop_at:(fun a -> List.mem a stops)
    ~proc_of:(fun pc -> Linkerif.proc_of_pc tg.tg_linkerif ~pc)
