(** The debugger proper.

    One [Ldb.t] can debug several targets simultaneously, possibly on
    different architectures; all per-target state lives in target objects
    (Sec. 7), and the single embedded PostScript interpreter serves them
    all — ldb changes architectures by rebinding the machine-dependent
    dictionary on the dictionary stack (Sec. 5).

    Connection mechanisms mirror the paper's: attach to an existing nub
    over a channel (the "network" case), spawn a program under the nub, or
    adopt a faulty process whose nub has preserved its state. *)

open Ldb_machine
module A = Ldb_amemory.Amemory
module V = Ldb_pscript.Value
module I = Ldb_pscript.Interp
module Nub = Ldb_nub.Nub
module Chan = Ldb_nub.Chan
module Proto = Ldb_nub.Proto

exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type state =
  | Running
  | Stopped of { signal : Signal.t; code : int; ctx_addr : int }
  | Exited of int
  | Detached

(** What a target sits on: a live nub across a transport, or a core dump
    (a dead process examined post mortem).  Everything above the wire
    abstract memory — frame walkers, the expression server, printing,
    disassembly — is indifferent to which. *)
type conn =
  | Live of Transport.t  (** retrying, reconnectable link to the nub *)
  | Postmortem of Coredump.t

(** The typed error run/step/store operations return on a dead process
    instead of raising: a core dump answers queries, not commands. *)
type dead = [ `Dead_process of string ]

type target = {
  tg_name : string;
  tg_arch : Arch.t;
  tg_tdesc : Target.t;
  tg_conn : conn;
  tg_wire : A.t;
  tg_defs : V.dict;       (** dictionary holding this program's PS definitions *)
  tg_arch_dict : V.dict;  (** machine-dependent PostScript *)
  tg_ops : V.dict;        (** per-target operators: LazyData, GlobalLoc, ... *)
  tg_symtab : Symtab.t;
  tg_linkerif : Linkerif.t;
  tg_breaks : Breakpoint.table;
  tg_can_step : bool;  (** nub offers the single-step protocol extension *)
  mutable tg_state : state;
  mutable tg_core : Core.t option;
      (** the core dump captured as (or after) the target died *)
}

(** The live transport under a target; post-mortem targets have none. *)
let transport (tg : target) : Transport.t =
  match tg.tg_conn with
  | Live tr -> tr
  | Postmortem _ -> fail "target %s is a core dump (no transport)" tg.tg_name

let dead_msg tg =
  Printf.sprintf "target %s is dead: examining a core dump (read-only)" tg.tg_name

let is_postmortem tg = match tg.tg_conn with Postmortem _ -> true | Live _ -> false

type t = {
  interp : I.t;
  mutable targets : target list;
  mutable arch_dicts : (Arch.t * V.dict) list;
      (** machine-dependent PostScript, interpreted once per architecture
          and shared by every target on it — the dictionaries are
          read-only after interpretation, so sharing is safe *)
}

let create () : t =
  { interp = Ldb_pscript.Ps.create (); targets = []; arch_dicts = [] }

(** Create without loading the shared prelude (startup benchmarking). *)
let create_bare () : t =
  { interp = Ldb_pscript.Ps.create_bare (); targets = []; arch_dicts = [] }

(** Forget a target (a server closing a session; the connection is the
    caller's to shut down first).  Shared image state stays behind for the
    image's other targets. *)
let remove_target (d : t) (tg : target) : unit =
  d.targets <- List.filter (fun t -> t != tg) d.targets

(* --- interpreting in a target's context ---------------------------------- *)

(** Run [f] with the target's definition, architecture, and operator
    dictionaries on the dictionary stack. *)
let with_target (d : t) (tg : target) (f : unit -> 'a) : 'a =
  I.begin_dict d.interp tg.tg_defs;
  I.begin_dict d.interp tg.tg_arch_dict;
  I.begin_dict d.interp tg.tg_ops;
  Fun.protect
    ~finally:(fun () ->
      I.end_dict d.interp;
      I.end_dict d.interp;
      I.end_dict d.interp)
    f

(* --- connecting ------------------------------------------------------------ *)

let read_loader_ps (d : t) ~(defs : V.dict) (loader_ps : string) : V.dict * V.dict =
  I.begin_dict d.interp defs;
  Fun.protect ~finally:(fun () -> I.end_dict d.interp) (fun () ->
      I.run_string d.interp loader_ps);
  let get k =
    match V.dict_get defs k with
    | Some v -> V.to_dict v
    | None -> fail "loader PostScript did not define /%s" k
  in
  (get "__loader", get "__symtab")

(* --- images ---------------------------------------------------------------- *)

(** Everything a debugged program contributes that is independent of any
    particular process running it: the PostScript definitions its loader
    table arrived as, the loader dictionary, and the (demand-driven)
    symbol table with whatever units and indexes queries have forced so
    far.  All of it is a pure function of the loader PostScript, so
    sessions debugging the same program can share one image — forcing a
    unit once serves them all — and [im_hash] is the cache key. *)
type image = {
  im_hash : string;  (** digest of the loader PostScript *)
  im_loader_ps : string;
  im_defs : V.dict;
  im_loader : V.dict;
  im_symtab : Symtab.t;
}

let image_hash (loader_ps : string) : string = Digest.to_hex (Digest.string loader_ps)

(** Read a program's loader PostScript into a fresh image. *)
let load_image (d : t) ~(loader_ps : string) : image =
  let defs = V.dict_create () in
  let loader, symtab_dict = read_loader_ps d ~defs loader_ps in
  let symtab = Symtab.make ~interp:d.interp ~symtab_dict in
  {
    im_hash = image_hash loader_ps;
    im_loader_ps = loader_ps;
    im_defs = defs;
    im_loader = loader;
    im_symtab = symtab;
  }

(** The machine-dependent dictionary for [arch], interpreted on first use
    and shared by every target on that architecture. *)
let arch_dict_for (d : t) (arch : Arch.t) : V.dict =
  match List.find_opt (fun (a, _) -> Arch.equal a arch) d.arch_dicts with
  | Some (_, dict) -> dict
  | None ->
      let arch_dict = V.dict_create () in
      I.begin_dict d.interp arch_dict;
      Fun.protect ~finally:(fun () -> I.end_dict d.interp) (fun () ->
          I.run_string d.interp (Mdep_ps.source arch));
      d.arch_dicts <- (arch, arch_dict) :: d.arch_dicts;
      arch_dict

let state_of_hello (st : Proto.stop_state) : state =
  match st with
  | Proto.St_running -> Running
  | Proto.St_stopped { signal; code; ctx_addr } ->
      let signal = Option.value ~default:Signal.SIGINT (Signal.of_number signal) in
      Stopped { signal; code; ctx_addr }
  | Proto.St_exited n -> Exited n

(** Install the per-target operators whose behaviour depends on the
    target's loader table and connection. *)
let make_target_ops (d : t) (li : Linkerif.t) : V.dict =
  let ops = V.dict_create () in
  let def name f = V.dict_put ops name (V.op name f) in
  def "LazyData" (fun () ->
      (* anchorname idx -> data location *)
      let idx = I.pop_int d.interp in
      let name = I.pop_str d.interp in
      let addr = Linkerif.lazy_data li ~name ~idx in
      I.push d.interp (V.loc (A.absolute 'd' addr)));
  def "GlobalLoc" (fun () ->
      let name = I.pop_str d.interp in
      I.push d.interp (V.loc (A.absolute 'd' (Linkerif.global_address li name))));
  def "GlobalCodeLoc" (fun () ->
      let name = I.pop_str d.interp in
      I.push d.interp (V.loc (A.absolute 'c' (Linkerif.global_address li name))));
  def "GlobalAddr" (fun () ->
      let name = I.pop_str d.interp in
      I.push d.interp (V.int (Linkerif.global_address li name)));
  ops

(** Check that the anchor symbols named by the symbol table match the
    loader table, ensuring the top-level dictionary matches the object
    code (Sec. 2). *)
let check_anchors (tg : target) =
  match V.dict_get tg.tg_symtab.Symtab.symtab "anchors" with
  | None -> ()
  | Some anchors ->
      Array.iter
        (fun a ->
          let name = V.to_str a in
          try ignore (Linkerif.anchor_address tg.tg_linkerif name)
          with Linkerif.Error _ ->
            fail "symbol table does not match object code: anchor %s missing" name)
        (V.to_arr anchors)

(** Pull the whole serialized core dump across the wire in
    {!Proto.max_core_chunk}-sized windows. *)
let fetch_core_raw (tr : Transport.t) : string =
  let buf = Buffer.create 4096 in
  let rec go offset =
    match Transport.rpc tr (Proto.Dump { offset }) with
    | Proto.Core_chunk { total; offset = off; chunk } ->
        if off <> offset then
          fail "core transfer out of sync: wanted offset %d, nub sent %d" offset off;
        if String.length chunk = 0 && offset < total then
          fail "core transfer stalled at offset %d of %d" offset total;
        Buffer.add_string buf chunk;
        let next = offset + String.length chunk in
        if next >= total then Buffer.contents buf else go next
    | Proto.Nub_error m -> fail "no core dump: %s" m
    | r -> fail "unexpected reply to Dump: %s" (Fmt.str "%a" Proto.pp_reply r)
  in
  go 0

(** Connect to a nub over [chan] using an already-loaded [image] — the
    server's path, where many sessions debugging the same program share
    one image and its forced symbol tables.  The per-process pieces —
    transport, wire abstract memory, linker interface with its caches,
    breakpoint table — are built fresh; everything image-derived is
    shared. *)
let connect_with_image ?deadline ?max_retries (d : t) ~(name : string)
    ~(image : image) (chan : Chan.endpoint) : target =
  let tr = Transport.make ?deadline ?max_retries chan in
  let arch, st, can_step =
    match Transport.rpc tr Proto.Hello with
    | Proto.Hello_reply { arch; state; can_step } -> (
        match Arch.of_name arch with
        | Some a -> (a, state, can_step)
        | None -> fail "nub reports unknown architecture %s" arch)
    | r -> fail "unexpected reply to Hello: %s" (Fmt.str "%a" Proto.pp_reply r)
  in
  if not (Arch.equal image.im_symtab.Symtab.arch arch) then
    fail "symbol table is for %s but the target runs %s"
      (Arch.name image.im_symtab.Symtab.arch) (Arch.name arch);
  let wire = A.rpc_wire (Transport.rpc tr) in
  let li = Linkerif.make ~arch ~loader:image.im_loader ~wire in
  let tg =
    {
      tg_name = name;
      tg_arch = arch;
      tg_tdesc = Target.of_arch arch;
      tg_conn = Live tr;
      tg_wire = wire;
      tg_defs = image.im_defs;
      tg_arch_dict = arch_dict_for d arch;
      tg_ops = make_target_ops d li;
      tg_symtab = image.im_symtab;
      tg_linkerif = li;
      tg_breaks = Breakpoint.create_table ();
      tg_can_step = can_step;
      tg_state = state_of_hello st;
      tg_core = None;
    }
  in
  (* On the way down — deliberate kill/detach, or an RPC finding the link
     dead — grab the core of a fatally-stopped target while (if) the
     channel still answers.  Best-effort by design: a lost link usually
     cannot serve it, and the nub preserves the dump for a reattach. *)
  Transport.set_on_down tr
    (Some
       (fun _reason ->
         match (tg.tg_state, tg.tg_core) with
         | Stopped { signal; _ }, None when Core.fatal_signal signal -> (
             match Core.of_string (fetch_core_raw tr) with
             | Ok (co, _) -> tg.tg_core <- Some co
             | Error _ | (exception Error _) | (exception Transport.Error _) -> ())
         | _ -> ()));
  check_anchors tg;
  d.targets <- tg :: d.targets;
  tg

(** Connect to a nub over [chan], reading the program's loader-table
    PostScript into a private image.  Works for all connection mechanisms:
    the nub end may be a fresh paused process, a long-running faulty one,
    or a process across the simulated network.  [deadline] and
    [max_retries] tune the transport's recovery policy. *)
let connect ?deadline ?max_retries (d : t) ~(name : string) ~(loader_ps : string)
    (chan : Chan.endpoint) : target =
  connect_with_image ?deadline ?max_retries d ~name ~image:(load_image d ~loader_ps)
    chan

(** Force the target's whole symbol table (normally demand-driven: queries
    force only the units they need). *)
let force_symbols (d : t) (tg : target) =
  with_target d tg (fun () -> Symtab.force_all tg.tg_symtab)

(** Force the symbol table of one compilation unit. *)
let force_unit (d : t) (tg : target) ~(file : string) =
  with_target d tg (fun () -> Symtab.force_unit tg.tg_symtab ~file)

(* --- execution control ------------------------------------------------------ *)

let ctx_pc_addr tg ctx_addr = ctx_addr + tg.tg_tdesc.Target.ctx_pc_off

let read_ctx_pc tg ctx_addr =
  Int32.to_int (A.fetch_i32 tg.tg_wire (A.absolute 'd' (ctx_pc_addr tg ctx_addr)))
  land 0xffffffff

let write_ctx_pc tg ctx_addr pc =
  A.store_i32 tg.tg_wire (A.absolute 'd' (ctx_pc_addr tg ctx_addr)) (Int32.of_int pc)

(** Issue a run request ([Continue] or [Step]) and interpret the event
    that answers it.  The transport retries transient faults; the nub's
    duplicate suppression guarantees the target runs at most once no
    matter how many times the request had to be re-sent. *)
let run_rpc (tg : target) (req : Proto.request) : state =
  let st =
    match Transport.rpc (transport tg) req with
    | Proto.Event { signal; code; ctx_addr } ->
        let signal = Option.value ~default:Signal.SIGINT (Signal.of_number signal) in
        Stopped { signal; code; ctx_addr }
    | Proto.Cond_hit { signal; code; ctx_addr; suppressed } ->
        (* a nub-evaluated condition came up true; credit the traps the
           nub resumed silently to the breakpoint's own count *)
        let signal = Option.value ~default:Signal.SIGINT (Signal.of_number signal) in
        (match Hashtbl.find_opt tg.tg_breaks (read_ctx_pc tg ctx_addr) with
        | Some { Breakpoint.bp_cond = Some c; _ } ->
            c.Breakpoint.c_suppressed <- c.Breakpoint.c_suppressed + suppressed
        | _ -> ());
        Stopped { signal; code; ctx_addr }
    | Proto.Exit_event n -> Exited n
    | r -> fail "unexpected reply while running: %s" (Fmt.str "%a" Proto.pp_reply r)
  in
  tg.tg_state <- st;
  st

(* The execution-control entry points come in two layers: [_exn] versions
   raising {!Error} (internal — continue/step compose), and the public
   API, which returns [Error (`Dead_process _)] on a post-mortem target
   instead of raising: a debugger script iterating "continue until exit"
   must be able to see, typedly, that there is nothing left to run. *)

(** Execute exactly one target instruction (the nub's Step extension). *)
let step_instruction_exn (_d : t) (tg : target) : state =
  if not tg.tg_can_step then
    fail "target %s: this nub does not support single-stepping" tg.tg_name;
  (match tg.tg_state with
  | Stopped _ -> ()
  | _ -> fail "target %s is not stopped" tg.tg_name);
  run_rpc tg Proto.Step

(** The environment a breakpoint condition evaluates in on the debugger
    side: registers from the stop context, loads through the wire
    abstract memory.  The nub builds the same environment over the saved
    context and target RAM, and both decode little-endian protocol
    values, so the two sites compute bit-identical results — the
    differential tests hold this equation down. *)
let cond_env (tg : target) (ctx_addr : int) : Ldb_nub.Bpcode.env =
  let td = tg.tg_tdesc in
  let fetch32 addr = A.fetch_i32 tg.tg_wire (A.absolute 'd' addr) in
  {
    Ldb_nub.Bpcode.rd_reg = (fun r -> fetch32 (ctx_addr + td.Target.ctx_reg_off r));
    rd_pc = (fun () -> fetch32 (ctx_addr + td.Target.ctx_pc_off));
    load =
      (fun ~space ~addr ~size ~signed ->
        let loc = A.absolute space addr in
        match
          match (size, signed) with
          | 1, false -> Int32.of_int (A.fetch_u8 tg.tg_wire loc)
          | 1, true -> Int32.of_int (A.fetch_i8 tg.tg_wire loc)
          | 2, false -> Int32.of_int (A.fetch_u16 tg.tg_wire loc)
          | 2, true -> Int32.of_int (A.fetch_i16 tg.tg_wire loc)
          | _ -> A.fetch_i32 tg.tg_wire loc
        with
        | v -> Ok v
        | exception A.Error m -> Error m
        | exception Transport.Error (_, m) -> Error m);
  }

(** Does a debugger-evaluated condition say this stop is a non-hit to
    resume past silently?  Evaluation faults stop conservatively. *)
let cond_suppresses (tg : target) ~signal ~ctx_addr : bool =
  let pc = read_ctx_pc tg ctx_addr in
  Breakpoint.is_breakpoint_fault tg.tg_breaks ~signal ~pc
  &&
  match Hashtbl.find_opt tg.tg_breaks pc with
  | Some { Breakpoint.bp_cond = Some ({ Breakpoint.c_site = `Debugger; _ } as c); _ }
    -> (
      match Ldb_nub.Bpcode.eval (cond_env tg ctx_addr) c.Breakpoint.c_prog with
      | Ok false ->
          c.Breakpoint.c_suppressed <- c.Breakpoint.c_suppressed + 1;
          true
      | Ok true | Error _ -> false)
  | _ -> false

(** Resume the target and wait for the next event.

    At a no-op breakpoint, the no-op is "interpreted" by skipping it: the
    context pc advances by the machine-dependent amount.  At a general
    breakpoint (Sec. 7.1's model), the original instruction is restored,
    executed with one single step, and the trap replanted before
    continuing.

    A breakpoint whose condition is evaluated on the debugger side
    ([`Debugger], the fallback when the nub cannot run the bytecode)
    loops here: a false condition resumes the target without returning
    to the caller — correct stop semantics at one round trip per trap,
    which is exactly the cost the nub-side site eliminates. *)
let rec continue_exn (d : t) (tg : target) : state =
  (match tg.tg_state with
  | Stopped { signal; code = _; ctx_addr } -> (
      let pc = read_ctx_pc tg ctx_addr in
      if Breakpoint.is_breakpoint_fault tg.tg_breaks ~signal ~pc then
        match Hashtbl.find_opt tg.tg_breaks pc with
        | Some bp when bp.Breakpoint.bp_general ->
            (* restore, single-step the original instruction, replant *)
            Breakpoint.remove tg.tg_breaks tg.tg_wire ~addr:pc;
            (match step_instruction_exn d tg with
            | Stopped _ ->
                ignore
                  (Breakpoint.plant_general tg.tg_breaks tg.tg_tdesc tg.tg_wire ~addr:pc)
            | st ->
                (* exited or faulted during the step: report it *)
                tg.tg_state <- st)
        | _ -> write_ctx_pc tg ctx_addr (pc + tg.tg_tdesc.Target.nop_advance))
  | Running -> ()
  | Exited n -> fail "target %s already exited with status %d" tg.tg_name n
  | Detached -> fail "target %s is detached" tg.tg_name);
  match tg.tg_state with
  | Exited _ -> tg.tg_state
  | _ -> (
      match run_rpc tg Proto.Continue with
      | Stopped { signal; code = _; ctx_addr } when cond_suppresses tg ~signal ~ctx_addr
        ->
          continue_exn d tg
      | st -> st)

let guard_dead (tg : target) (f : unit -> 'a) : ('a, dead) result =
  if is_postmortem tg then Error (`Dead_process (dead_msg tg))
  else try Ok (f ()) with Coredump.Dead_process m -> Error (`Dead_process m)

let continue_ (d : t) (tg : target) : (state, dead) result =
  guard_dead tg (fun () -> continue_exn d tg)

let step_instruction (d : t) (tg : target) : (state, dead) result =
  guard_dead tg (fun () -> step_instruction_exn d tg)

(** Unplant every breakpoint so the released target resumes (or dies)
    over its own instructions, not the debugger's traps.

    Releases happen on wires at their worst — a detach is often the
    response to a link going bad — so the restores are verified: after the
    unplant, any breakpoint whose trap bytes are still in target memory
    ({!Breakpoint.residual_traps}) has its original bytes re-stored, a
    bounded number of rounds.  A dead link ends the effort: the nub
    preserves target state, and a reattach's revalidation cleans up. *)
let unplant_for_release (tg : target) : unit =
  let rec scrub round =
    if round < 4 then
      match
        ignore (Breakpoint.suspend_all tg.tg_breaks tg.tg_wire : int);
        Breakpoint.residual_traps tg.tg_breaks tg.tg_wire
      with
      | [] -> ()
      | residuals ->
          List.iter
            (fun bp ->
              Breakpoint.store_bytes tg.tg_wire bp.Breakpoint.bp_addr
                bp.Breakpoint.bp_original)
            residuals;
          scrub (round + 1)
      | exception Transport.Error (Transport.Disconnected, _) -> ()
      | exception Transport.Error _ -> scrub (round + 1)
  in
  scrub 0

let kill (tg : target) =
  (match tg.tg_conn with
  | Postmortem _ -> ()
  | Live tr ->
      unplant_for_release tg;
      (* the going-down hook snapshots the core of a fatal stop before
         the Kill goes out *)
      Transport.shutdown tr Proto.Kill);
  tg.tg_state <- Exited 137

(** Break the connection, preserving target state in the nub. *)
let detach (tg : target) =
  (match tg.tg_conn with
  | Postmortem _ -> ()
  | Live tr ->
      unplant_for_release tg;
      Transport.shutdown ~disconnect:true tr Proto.Detach);
  tg.tg_state <- Detached

(* --- reattach and resync (debugger-crash survival, Sec. 4.2) -------------- *)

(** Reconnect a target whose link died — the debugger-crash-survival
    scenario, from this side: the nub preserved the target's state, and
    the debugger re-establishes everything it knew over a fresh channel.

    Replays [Hello] to re-learn the stop state (and re-check the
    architecture), re-reads the stop context address, and re-validates
    every planted breakpoint against target memory, replanting any whose
    trap bytes are gone.  The target's symbol tables, loader tables and
    wire memory survive untouched — they hang off the transport, which
    [Transport.reconnect] preserves. *)
let reattach (d : t) (tg : target) (chan : Chan.endpoint) : state =
  ignore d;
  let tr = transport tg in
  Transport.reconnect tr chan;
  let st =
    match Transport.rpc tr Proto.Hello with
    | Proto.Hello_reply { arch; state; can_step = _ } -> (
        match Arch.of_name arch with
        | Some a when Arch.equal a tg.tg_arch -> state_of_hello state
        | Some a ->
            fail "reattach: nub now reports %s but target %s runs %s" (Arch.name a)
              tg.tg_name (Arch.name tg.tg_arch)
        | None -> fail "reattach: nub reports unknown architecture %s" arch)
    | r -> fail "unexpected reply to Hello: %s" (Fmt.str "%a" Proto.pp_reply r)
  in
  tg.tg_state <- st;
  (* the nub preserved target memory, so planted traps should still be
     there — but verify rather than trust, and replant any that are not;
     breakpoints a detach unplanted come back too *)
  ignore (Breakpoint.revalidate tg.tg_breaks tg.tg_tdesc tg.tg_wire : int);
  ignore (Breakpoint.resume_suspended tg.tg_breaks tg.tg_tdesc tg.tg_wire : int);
  st

(* --- stopping points and breakpoints ----------------------------------------- *)

(** Object-code address of a stopping point: interpret its location
    procedure ({anchor idx LazyData}); results are memoized by the linker
    interface's anchor cache. *)
let stop_address (d : t) (tg : target) (s : Symtab.stop) : int =
  with_target d tg (fun () ->
      I.exec_value d.interp (V.cvx s.Symtab.stop_objloc);
      match (I.pop d.interp).V.v with
      | V.Loc (A.Absolute { offset; _ }) -> offset
      | V.Int n -> n
      | _ -> fail "stopping point location did not evaluate to a location")

(** Set a breakpoint at the entry to [funcname].  Demand-driven: only the
    unit defining the procedure is forced. *)
let break_function (d : t) (tg : target) (funcname : string) : int =
  if is_postmortem tg then fail "%s" (dead_msg tg);
  match with_target d tg (fun () -> Symtab.entry_stop tg.tg_symtab ~name:funcname) with
  | None -> fail "no procedure named %s" funcname
  | Some s ->
      let addr = stop_address d tg s in
      ignore
        (Breakpoint.plant tg.tg_breaks tg.tg_tdesc tg.tg_wire ~addr
           ~source:(Symtab.entry_name s.Symtab.stop_proc, s.Symtab.stop_line));
      addr

(** Set breakpoints at every stopping point on a source line (a single
    source location may correspond to more than one stopping point).  With
    [?file] only that unit is consulted — and forced. *)
let break_line ?file (d : t) (tg : target) ~(line : int) : int list =
  if is_postmortem tg then fail "%s" (dead_msg tg);
  let stops =
    with_target d tg (fun () -> Symtab.stops_at_line ?file tg.tg_symtab ~line)
  in
  if stops = [] then fail "no stopping point at line %d" line;
  List.map
    (fun s ->
      let addr = stop_address d tg s in
      ignore
        (Breakpoint.plant tg.tg_breaks tg.tg_tdesc tg.tg_wire ~addr
           ~source:(Symtab.entry_name s.Symtab.stop_proc, s.Symtab.stop_line));
      addr)
    stops

(* --- breakpoint conditions ------------------------------------------------ *)

(** Attach a compiled condition to the breakpoint at [addr], preferring
    the nub-side site: the bytecode is verified {e again} here — nothing
    the verifier rejects reaches the wire, whatever produced it — then
    shipped with [Set_cond].  A nub that refuses it (an old nub without
    the extension, or one whose own verification disagrees) demotes the
    condition to debugger-side evaluation, which needs no cooperation.
    Returns the site that ended up owning the condition. *)
let set_condition (_d : t) (tg : target) ~(addr : int) ~(text : string)
    (prog : Ldb_nub.Bpcode.prog) :
    (Breakpoint.cond_site, [ `Unverified of Ldb_nub.Bpverify.finding list ]) result =
  let bp =
    match Hashtbl.find_opt tg.tg_breaks addr with
    | Some bp -> bp
    | None -> fail "no breakpoint at %#x to attach a condition to" addr
  in
  match Ldb_nub.Bpverify.verify tg.tg_tdesc prog with
  | _ :: _ as findings -> Error (`Unverified findings)
  | [] ->
      let site =
        match tg.tg_conn with
        | Postmortem _ -> `Debugger
        | Live tr -> (
            match
              Transport.rpc tr (Proto.Set_cond { addr; prog = Ldb_nub.Bpcode.encode prog })
            with
            | Proto.Stored -> `Nub
            | Proto.Nub_error _ -> `Debugger
            | r -> fail "unexpected reply to Set_cond: %s" (Fmt.str "%a" Proto.pp_reply r)
            | exception Transport.Error _ -> `Debugger)
      in
      bp.Breakpoint.bp_cond <-
        Some { Breakpoint.c_text = text; c_prog = prog; c_site = site; c_suppressed = 0 };
      Ok site

(** Drop the condition on the breakpoint at [addr] (the breakpoint
    itself stays).  A nub-side condition is cleared in the nub too; a
    dead link only loses the RPC, and the nub clears its table on the
    next attach anyway. *)
let clear_condition (tg : target) ~(addr : int) : unit =
  match Hashtbl.find_opt tg.tg_breaks addr with
  | Some ({ Breakpoint.bp_cond = Some c; _ } as bp) ->
      bp.Breakpoint.bp_cond <- None;
      (match (c.Breakpoint.c_site, tg.tg_conn) with
      | `Nub, Live tr -> (
          match Transport.rpc tr (Proto.Clear_cond { addr }) with
          | _ -> ()
          | exception Transport.Error _ -> ())
      | _ -> ())
  | _ -> ()

let clear_breakpoint (tg : target) ~addr =
  clear_condition tg ~addr;
  Breakpoint.remove tg.tg_breaks tg.tg_wire ~addr

(* --- stack frames -------------------------------------------------------------- *)

let proc_entry_at (d : t) (tg : target) ~pc : V.t option =
  (* the loader's proctable maps the pc to a linker label without touching
     the symbol table; only the unit defining that label is then forced *)
  match Linkerif.proc_of_pc tg.tg_linkerif ~pc with
  | None -> None
  | Some (_, label) ->
      with_target d tg (fun () -> Symtab.proc_by_label tg.tg_symtab label)

let proc_info_of_entry (e : V.t) : Frame.proc_info =
  let d = V.to_dict e in
  let geti k default = match V.dict_get d k with Some v -> V.to_int v | None -> default in
  let saved =
    match V.dict_get d "savedregs" with
    | Some arr ->
        Array.to_list (V.to_arr arr)
        |> List.map (fun pair ->
               let a = V.to_arr pair in
               (V.to_int a.(0), V.to_int a.(1)))
    | None -> []
  in
  { Frame.pi_frame_size = geti "framesize" 0; pi_ra_offset = geti "raoffset" (-4);
    pi_saved_regs = saved }

let make_query (d : t) (tg : target) : Frame.query =
  {
    Frame.q_target = tg.tg_tdesc;
    q_wire = tg.tg_wire;
    q_frame_size = (fun ~pc -> Linkerif.frame_size tg.tg_linkerif ~pc);
    q_proc_info =
      (fun ~pc -> Option.map proc_info_of_entry (proc_entry_at d tg ~pc));
    q_known_pc =
      (fun ~pc ->
        match Linkerif.proc_of_pc tg.tg_linkerif ~pc with
        | Some (_, label) -> label <> Ldb_link.Link.start_symbol && proc_entry_at d tg ~pc <> None
        | None -> false);
  }

(** The frame of the topmost activation; [Frame.fr_down] walks down. *)
let top_frame (d : t) (tg : target) : Frame.t =
  match tg.tg_state with
  | Stopped { ctx_addr; _ } -> (
      let q = make_query d tg in
      match tg.tg_arch with
      | Arch.Mips -> Frame_mips.top q ~ctx_addr
      | Arch.Sparc -> Frame_sparc.top q ~ctx_addr
      | Arch.M68k -> Frame_m68k.top q ~ctx_addr
      | Arch.Vax -> Frame_vax.top q ~ctx_addr)
  | _ -> fail "target %s is not stopped" tg.tg_name

(** The whole call stack, topmost first. *)
let backtrace (d : t) (tg : target) : Frame.t list =
  let rec go acc fr =
    let acc = fr :: acc in
    match fr.Frame.fr_down () with Some fr' -> go acc fr' | None -> List.rev acc
  in
  go [] (top_frame d tg)

(** The stopping point governing a frame: the loci entry whose address is
    nearest below the frame's pc (binary search over the symbol table's
    per-procedure pc index; the index is built on first use). *)
let stop_of_frame (d : t) (tg : target) (fr : Frame.t) : Symtab.stop option =
  match proc_entry_at d tg ~pc:fr.Frame.fr_pc with
  | None -> None
  | Some proc ->
      Symtab.stop_at_pc tg.tg_symtab ~addr_of:(stop_address d tg) proc
        ~pc:fr.Frame.fr_pc

(* --- variables -------------------------------------------------------------------- *)

(** Resolve [name] in the context of [frame] and return its symbol-table
    entry. *)
let resolve (d : t) (tg : target) (fr : Frame.t) (name : string) : V.t option =
  let stop = stop_of_frame d tg fr in
  (* locals and statics need no further forcing; extern misses may force
     the (hinted) unit defining the name *)
  with_target d tg (fun () -> Symtab.resolve tg.tg_symtab stop name)

(** Evaluate a symbol entry's /where in the context of a frame, yielding
    its location. *)
let location_of (d : t) (tg : target) (fr : Frame.t) (entry : V.t) : A.location =
  let dict = V.to_dict entry in
  match V.dict_get dict "where" with
  | None -> fail "symbol %s has no location" (Symtab.entry_name entry)
  | Some w -> (
      match w.V.v with
      | V.Loc l -> l (* register locations are computed when the table is read *)
      | V.Arr _ ->
          with_target d tg (fun () ->
              (* bind the frame context for FrameLoc *)
              let fdict = V.dict_create () in
              V.dict_put fdict "FrameBase" (V.int fr.Frame.fr_base);
              V.dict_put fdict "FrameMem" (V.mem fr.Frame.fr_mem);
              I.begin_dict d.interp fdict;
              Fun.protect ~finally:(fun () -> I.end_dict d.interp) (fun () ->
                  I.exec_value d.interp (V.cvx w);
                  match (I.pop d.interp).V.v with
                  | V.Loc l -> l
                  | _ -> fail "where procedure did not yield a location"))
      | _ -> fail "bad /where for %s" (Symtab.entry_name entry))

(** Compiler-proven validity of a symbol entry at the stopping point
    governing [fr] (see [Symtab.validity_at]).  [None] when the table has
    no ranges for the variable or the frame is between stops. *)
let validity_of (d : t) (tg : target) (fr : Frame.t) (entry : V.t) :
    Symtab.validity option =
  match stop_of_frame d tg fr with
  | None -> None
  | Some stop -> Symtab.validity_at entry ~stop_index:stop.Symtab.stop_index

(** [variable_validity d tg fr name] — the fact for a named variable, for
    tests and the differential harness. *)
let variable_validity (d : t) (tg : target) (fr : Frame.t) (name : string) :
    Symtab.validity option =
  match resolve d tg fr name with
  | None -> None
  | Some entry -> validity_of d tg fr entry

(** The declaration display of a symbol entry, e.g. "int i": the /decl
    template from its type dictionary with the name substituted. *)
let decl_display (entry : V.t) (name : string) : string =
  let decl =
    match V.dict_get (V.to_dict entry) "type" with
    | Some ty -> (
        match V.dict_get (V.to_dict ty) "decl" with
        | Some dv -> V.to_str dv
        | None -> "%s")
    | None -> "%s"
  in
  match String.index_opt decl '%' with
  | Some i when i + 1 < String.length decl && decl.[i + 1] = 's' ->
      String.sub decl 0 i ^ name ^ String.sub decl (i + 2) (String.length decl - i - 2)
  | _ -> decl ^ " " ^ name

(** Print a variable's value using the printing procedure from its type
    dictionary — the debugger knows nothing about C data layout.  When
    the compiler's validity ranges say no assignment can have reached
    this stopping point, the slot holds garbage: say so instead of
    printing it as if it were a value. *)
let print_value (d : t) (tg : target) (fr : Frame.t) (name : string) : string =
  match resolve d tg fr name with
  | None -> fail "%s is not visible here" name
  | Some entry when validity_of d tg fr entry = Some Symtab.Vuninit ->
      Printf.sprintf "<%s: uninitialized at this point>" (decl_display entry name)
  | Some entry ->
      let loc = location_of d tg fr entry in
      let tdict =
        match V.dict_get (V.to_dict entry) "type" with
        | Some ty -> ty
        | None -> fail "symbol %s has no type" name
      in
      with_target d tg (fun () ->
          ignore (I.take_output d.interp);
          I.push d.interp (V.mem fr.Frame.fr_mem);
          I.push d.interp (V.loc loc);
          I.push d.interp tdict;
          I.run_string d.interp "print";
          I.take_output d.interp)

(** A variable's absolute target-memory range — space, address, byte
    size — for watch-style queries ("run back to the last write of x").
    [Error] for register-located symbols: registers are renamed and
    spilled freely, so "the last write" of a register cell is not a
    meaningful question to ask of a memory trace. *)
let variable_range (d : t) (tg : target) (fr : Frame.t) (name : string) :
    (char * int * int, string) result =
  match resolve d tg fr name with
  | None -> Error (Printf.sprintf "%s is not visible here" name)
  | Some entry -> (
      let size =
        match V.dict_get (V.to_dict entry) "type" with
        | Some ty -> (
            match V.dict_get (V.to_dict ty) "size" with
            | Some s -> V.to_int s
            | None -> 4)
        | None -> 4
      in
      match location_of d tg fr entry with
      | A.Absolute { space; offset } -> Ok (space, offset, size)
      | A.Immediate _ ->
          Error (Printf.sprintf "%s lives in a register, not memory" name))

(** Fetch a scalar variable as an integer (tests and assignments). *)
let read_int_var (d : t) (tg : target) (fr : Frame.t) (name : string) : int =
  match resolve d tg fr name with
  | None -> fail "%s is not visible here" name
  | Some entry ->
      let loc = location_of d tg fr entry in
      Int32.to_int (A.fetch_i32 fr.Frame.fr_mem loc)

(** Assign to a scalar variable (direct form; full expressions go through
    the expression server).  On a post-mortem target the store comes back
    as a typed [`Dead_process] error: the dump is read-only evidence. *)
let assign_int (d : t) (tg : target) (fr : Frame.t) (name : string) (v : int) :
    (unit, dead) result =
  try
    match resolve d tg fr name with
    | None -> fail "%s is not visible here" name
    | Some entry ->
        let loc = location_of d tg fr entry in
        Ok (A.store_i32 fr.Frame.fr_mem loc (Int32.of_int v))
  with Coredump.Dead_process m -> Error (`Dead_process m)

let assign_float (d : t) (tg : target) (fr : Frame.t) (name : string) (v : float) :
    (unit, dead) result =
  try
    match resolve d tg fr name with
    | None -> fail "%s is not visible here" name
    | Some entry ->
        let loc = location_of d tg fr entry in
        let size =
          match V.dict_get (V.to_dict entry) "type" with
          | Some ty -> (
              match V.dict_get (V.to_dict ty) "size" with Some s -> V.to_int s | None -> 8)
          | None -> 8
        in
        Ok (A.store_float fr.Frame.fr_mem loc ~size v)
  with Coredump.Dead_process m -> Error (`Dead_process m)

(** Name of the procedure a frame is stopped in. *)
let frame_function (d : t) (tg : target) (fr : Frame.t) : string =
  match proc_entry_at d tg ~pc:fr.Frame.fr_pc with
  | Some e -> Symtab.entry_name e
  | None -> (
      match Linkerif.proc_of_pc tg.tg_linkerif ~pc:fr.Frame.fr_pc with
      | Some (_, label) -> label
      | None -> Printf.sprintf "%#x" fr.Frame.fr_pc)

(** One-line description of the current stop. *)
let where (d : t) (tg : target) : string =
  match tg.tg_state with
  | Stopped { signal; _ } ->
      let fr = top_frame d tg in
      let line =
        match stop_of_frame d tg fr with
        | Some s -> Printf.sprintf " line %d" s.Symtab.stop_line
        | None -> ""
      in
      Printf.sprintf "%s in %s%s (pc=%#x)" (Signal.name signal) (frame_function d tg fr)
        line fr.Frame.fr_pc
  | Running -> "running"
  | Exited n -> Printf.sprintf "exited with status %d" n
  | Detached -> "detached"

(* --- breakpoints over arbitrary instructions (Sec. 7.1) ------------------- *)

(** Plant a breakpoint over any instruction (not just a stopping-point
    no-op).  Requires the nub's single-step extension for resumption, so
    this refuses when the extension is absent — ldb keeps functioning with
    the no-op scheme either way, as the paper prescribes for protocol
    extensions. *)
let break_address (d : t) (tg : target) ~(addr : int) : unit =
  ignore d;
  if is_postmortem tg then fail "%s" (dead_msg tg);
  if not tg.tg_can_step then
    fail "target %s: general breakpoints need the nub's single-step extension" tg.tg_name;
  ignore (Breakpoint.plant_general tg.tg_breaks tg.tg_tdesc tg.tg_wire ~addr)

(* --- source-level single stepping (Sec. 7.1) ------------------------------- *)

(** Addresses of every stopping point in the procedure containing [pc]
    (memoized by the pc index — this is the single-step loop's hot path). *)
let stop_addresses (d : t) (tg : target) ~pc : int list =
  match proc_entry_at d tg ~pc with
  | None -> []
  | Some proc -> Symtab.stop_addresses tg.tg_symtab ~addr_of:(stop_address d tg) proc

(** Step to the next stopping point: single-step instructions until the pc
    lands on a stopping point different from the current one (entering
    callees counts — their entry point is a stopping point).  Returns the
    resulting state; gives up after [limit] instructions. *)
let step_source_exn ?(limit = 200_000) (d : t) (tg : target) : state =
  (match tg.tg_state with
  | Stopped { signal; ctx_addr; _ } ->
      (* leaving a breakpoint: skip its no-op first so the step makes
         progress *)
      let pc = read_ctx_pc tg ctx_addr in
      if Breakpoint.is_breakpoint_fault tg.tg_breaks ~signal ~pc then
        write_ctx_pc tg ctx_addr (pc + tg.tg_tdesc.Target.nop_advance)
  | _ -> fail "target %s is not stopped" tg.tg_name);
  let start_pc =
    match tg.tg_state with Stopped { ctx_addr; _ } -> read_ctx_pc tg ctx_addr | _ -> 0
  in
  let rec go n =
    if n >= limit then fail "step: no stopping point within %d instructions" limit
    else
      match step_instruction_exn d tg with
      | Stopped { signal = SIGTRAP; code = 1; ctx_addr } -> (
          let pc = read_ctx_pc tg ctx_addr in
          if pc <> start_pc && List.mem pc (stop_addresses d tg ~pc) then tg.tg_state
          else go (n + 1))
      | st -> st (* exit, fault, or a planted breakpoint: report it *)
  in
  go 0

let step_source ?limit (d : t) (tg : target) : (state, dead) result =
  guard_dead tg (fun () -> step_source_exn ?limit d tg)

(* --- disassembly ------------------------------------------------------------ *)

(** Disassemble [count] instructions at [addr] through the wire; planted
    breakpoints show up as the trap instructions they are, and addresses
    that are source-level stopping points are marked (from the pc index of
    the procedure containing [addr], forced on demand). *)
let disassemble (d : t) (tg : target) ~(addr : int) ~(count : int) : Disas.line list =
  let stops =
    match proc_entry_at d tg ~pc:addr with
    | None -> []
    | Some proc -> Symtab.stop_addresses tg.tg_symtab ~addr_of:(stop_address d tg) proc
  in
  Disas.window tg.tg_tdesc tg.tg_wire ~addr ~count
    ~stop_at:(fun a -> List.mem a stops)
    ~proc_of:(fun pc -> Linkerif.proc_of_pc tg.tg_linkerif ~pc)

(* --- post-mortem debugging ---------------------------------------------------- *)

(** The target's core dump.  On a live target this pulls the dump across
    the wire (the nub serializes the current stop on demand, and keeps
    serving the dump its target's death left behind even after an exit);
    on a post-mortem target it is simply the dump the session opened.
    The fetched core is cached on the target. *)
let fetch_core (tg : target) : Core.t =
  match tg.tg_conn with
  | Postmortem cd -> Coredump.core cd
  | Live tr -> (
      match tg.tg_core with
      | Some co -> co
      | None -> (
          match Core.of_string (fetch_core_raw tr) with
          | Ok (co, _) ->
              tg.tg_core <- Some co;
              co
          | Error m -> fail "nub sent an unreadable core: %s" m))

(** The serialized dump, for writing to a file. *)
let core_bytes (tg : target) : string = Core.to_string (fetch_core tg)

(* --- record/replay ------------------------------------------------------------- *)

(** Ask the nub to start recording an execution trace at the current
    stop, checkpointing roughly every [spacing] instructions.  History
    begins here: a previous recording on this nub is discarded. *)
let start_record (tg : target) ~(spacing : int) : unit =
  if spacing < 1 then fail "checkpoint spacing must be positive";
  match Transport.rpc (transport tg) (Proto.Record { spacing }) with
  | Proto.Stored -> ()
  | Proto.Nub_error m -> fail "cannot record: %s" m
  | r -> fail "unexpected reply to Record: %s" (Fmt.str "%a" Proto.pp_reply r)

(** Pull the whole serialized execution trace across the wire in
    {!Proto.max_trace_chunk}-sized windows, like {!fetch_core_raw}. *)
let fetch_trace_raw (tr : Transport.t) : string =
  let buf = Buffer.create 4096 in
  let rec go offset =
    match Transport.rpc tr (Proto.Fetch_trace { offset }) with
    | Proto.Trace_chunk { total; offset = off; chunk } ->
        if off <> offset then
          fail "trace transfer out of sync: wanted offset %d, nub sent %d" offset off;
        if String.length chunk = 0 && offset < total then
          fail "trace transfer stalled at offset %d of %d" offset total;
        Buffer.add_string buf chunk;
        let next = offset + String.length chunk in
        if next >= total then Buffer.contents buf else go next
    | Proto.Nub_error m -> fail "no trace: %s" m
    | r -> fail "unexpected reply to Fetch_trace: %s" (Fmt.str "%a" Proto.pp_reply r)
  in
  go 0

(** The serialized trace of the recording in progress on the target's
    nub, for writing to a file or opening a replay session. *)
let trace_bytes (tg : target) : string = fetch_trace_raw (transport tg)

(** Open a loaded core dump as a target: same symbol tables, loader
    tables, machine-dependent PostScript and operators as a live
    connection, but the wire abstract memory reads the dump.  The target
    is permanently stopped at the fault; run/step/store answer with
    typed [`Dead_process] errors. *)
let connect_core_with_image (d : t) ~(name : string) ~(image : image)
    ((core : Core.t), (warnings : Core.salvage list)) : target =
  let cd = Coredump.make (core, warnings) in
  let arch = core.Core.co_arch in
  if not (Arch.equal image.im_symtab.Symtab.arch arch) then
    fail "symbol table is for %s but the core was dumped on %s"
      (Arch.name image.im_symtab.Symtab.arch) (Arch.name arch);
  let wire = Coredump.memory cd in
  let li = Linkerif.make ~arch ~loader:image.im_loader ~wire in
  let signal =
    Option.value ~default:Signal.SIGINT (Signal.of_number core.Core.co_signal)
  in
  let tg =
    {
      tg_name = name;
      tg_arch = arch;
      tg_tdesc = Target.of_arch arch;
      tg_conn = Postmortem cd;
      tg_wire = wire;
      tg_defs = image.im_defs;
      tg_arch_dict = arch_dict_for d arch;
      tg_ops = make_target_ops d li;
      tg_symtab = image.im_symtab;
      tg_linkerif = li;
      tg_breaks = Breakpoint.create_table ();
      tg_can_step = false;
      tg_state =
        Stopped { signal; code = core.Core.co_code; ctx_addr = core.Core.co_ctx_addr };
      tg_core = Some core;
    }
  in
  check_anchors tg;
  d.targets <- tg :: d.targets;
  tg

let connect_core (d : t) ~(name : string) ~(loader_ps : string)
    (loaded : Core.t * Core.salvage list) : target =
  connect_core_with_image d ~name ~image:(load_image d ~loader_ps) loaded

(** Salvage warnings the dump earned at load time (truncations, CRC
    failures); empty on a live target. *)
let load_warnings (tg : target) : Core.salvage list =
  match tg.tg_conn with
  | Postmortem cd -> Coredump.load_warnings cd
  | Live _ -> []

(** Drain the damaged-read warnings the queries since the last call
    accumulated (post-mortem targets only): each string names a read that
    touched a truncated or CRC-damaged section, evidence that an answer
    derived from it may be tainted. *)
let take_salvage (tg : target) : string list =
  match tg.tg_conn with
  | Postmortem cd -> List.map Coredump.note_to_string (Coredump.take_notes cd)
  | Live _ -> []

(* --- crash reports -------------------------------------------------------------- *)

type frame_line = {
  fl_level : int;
  fl_pc : int;
  fl_func : string;
  fl_line : int option;
}

(** Why a crash report is less than whole. *)
type crash_note =
  | Dump_note of Core.salvage  (** the dump itself was damaged *)
  | Tainted of { what : string; detail : string }
      (** produced, but from questionable bytes or a partial walk *)
  | Missing of { what : string; reason : string }  (** could not be produced *)

let crash_note_to_string = function
  | Dump_note s -> "dump: " ^ Core.salvage_to_string s
  | Tainted { what; detail } -> Printf.sprintf "%s may be tainted: %s" what detail
  | Missing { what; reason } -> Printf.sprintf "%s unavailable: %s" what reason

type crash_report = {
  cr_target : string;
  cr_arch : Arch.t;
  cr_signal : Signal.t;
  cr_code : int;
  cr_pc : int;
  cr_regs : (string * int32) list;
  cr_frames : frame_line list;
  cr_locals : (string * string) list;
  cr_disas : string option;
  cr_notes : crash_note list;
}

let exn_text = function
  | Error m -> m
  | Transport.Error (_, m) -> m
  | A.Error m -> m
  | Coredump.Dead_process m -> m
  | e -> Printexc.to_string e

(** One-shot best-effort summary of a stopped (normally: dead) target:
    fault identity, registers, backtrace, the top frame's locals, and a
    disassembly window around the fault pc.  Every piece degrades
    independently — a corrupt data section costs the locals it covers,
    not the report — and [`Salvage] marks a report that carries warnings,
    [`Full] one that does not. *)
let crash_report (d : t) (tg : target) :
    [ `Full of crash_report | `Salvage of crash_report ] =
  let signal, code, ctx_addr =
    match tg.tg_state with
    | Stopped { signal; code; ctx_addr } -> (signal, code, ctx_addr)
    | _ -> fail "target %s is not stopped at a fault" tg.tg_name
  in
  let notes = ref [] in
  let note n = notes := n :: !notes in
  (match tg.tg_conn with
  | Postmortem cd ->
      List.iter (fun w -> note (Dump_note w)) (Coredump.load_warnings cd);
      (* reset the damaged-read log so the notes below are this report's *)
      ignore (Coredump.take_notes cd : Coredump.note list)
  | Live _ -> ());
  let pc =
    try read_ctx_pc tg ctx_addr
    with e ->
      note (Missing { what = "fault pc"; reason = exn_text e });
      0
  in
  let reg_name i =
    let names = tg.tg_tdesc.Target.reg_names in
    if i < Array.length names then names.(i) else Printf.sprintf "r%d" i
  in
  let regs =
    try
      match tg.tg_conn with
      | Postmortem cd ->
          let co = Coredump.core cd in
          Array.to_list (Array.mapi (fun i v -> (reg_name i, v)) co.Core.co_regs)
      | Live _ ->
          List.init (Target.nregs tg.tg_tdesc) (fun r ->
              ( reg_name r,
                A.fetch_i32 tg.tg_wire
                  (A.absolute 'd' (ctx_addr + tg.tg_tdesc.Target.ctx_reg_off r)) ))
    with e ->
      note (Missing { what = "registers"; reason = exn_text e });
      []
  in
  let frames = ref [] in
  let level = ref 0 in
  (try
     let rec walk fr =
       let func =
         try frame_function d tg fr
         with e ->
           note
             (Tainted
                { what = Printf.sprintf "frame #%d" !level; detail = exn_text e });
           Printf.sprintf "%#x" fr.Frame.fr_pc
       in
       let line =
         try Option.map (fun s -> s.Symtab.stop_line) (stop_of_frame d tg fr)
         with _ -> None
       in
       frames :=
         { fl_level = !level; fl_pc = fr.Frame.fr_pc; fl_func = func; fl_line = line }
         :: !frames;
       incr level;
       match fr.Frame.fr_down () with Some fr' -> walk fr' | None -> ()
     in
     walk (top_frame d tg)
   with e -> note (Tainted { what = "backtrace"; detail = exn_text e }));
  let frames = List.rev !frames in
  let locals =
    try
      let fr = top_frame d tg in
      match stop_of_frame d tg fr with
      | None ->
          note
            (Missing
               { what = "locals"; reason = "no stopping point covers the fault pc" });
          []
      | Some stop ->
          let rec scope_names (entry : V.t) acc =
            match entry.V.v with
            | V.Dict dd ->
                let acc =
                  match V.dict_get dd "name" with
                  | Some n -> (
                      match V.to_str n with
                      | nm when not (List.mem nm acc) -> nm :: acc
                      | _ | (exception _) -> acc)
                  | None -> acc
                in
                (match V.dict_get dd "uplink" with
                | Some up -> scope_names up acc
                | None -> acc)
            | _ -> acc
          in
          let names = List.rev (scope_names stop.Symtab.stop_scope []) in
          List.filter_map
            (fun nm ->
              match print_value d tg fr nm with
              | text -> Some (nm, String.trim text)
              | exception e ->
                  note (Missing { what = "local " ^ nm; reason = exn_text e });
                  None)
            names
    with e ->
      note (Missing { what = "locals"; reason = exn_text e });
      []
  in
  let disas =
    match disassemble d tg ~addr:pc ~count:6 with
    | lines -> Some (Disas.to_string lines)
    | exception e ->
        note (Missing { what = "disassembly"; reason = exn_text e });
        None
  in
  (match tg.tg_conn with
  | Postmortem cd ->
      List.iter
        (fun n ->
          note (Tainted { what = "memory"; detail = Coredump.note_to_string n }))
        (Coredump.take_notes cd)
  | Live _ -> ());
  let r =
    {
      cr_target = tg.tg_name;
      cr_arch = tg.tg_arch;
      cr_signal = signal;
      cr_code = code;
      cr_pc = pc;
      cr_regs = regs;
      cr_frames = frames;
      cr_locals = locals;
      cr_disas = disas;
      cr_notes = List.rev !notes;
    }
  in
  if r.cr_notes = [] then `Full r else `Salvage r

(** Render a crash report as the text the CLI prints. *)
let render_crash_report (r : crash_report) : string =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "=== crash report: %s (%s) ===\n" r.cr_target (Arch.name r.cr_arch);
  pf "fault: %s (code %#x) at pc %#x\n" (Signal.name r.cr_signal) r.cr_code r.cr_pc;
  if r.cr_regs <> [] then begin
    pf "registers:\n";
    List.iteri
      (fun i (n, v) -> pf "  %-5s %08lx%s" n v (if i mod 4 = 3 then "\n" else ""))
      r.cr_regs;
    if List.length r.cr_regs mod 4 <> 0 then pf "\n"
  end;
  pf "backtrace:\n";
  if r.cr_frames = [] then pf "  (none recovered)\n"
  else
    List.iter
      (fun f ->
        pf "  #%d %s%s (pc=%#x)\n" f.fl_level f.fl_func
          (match f.fl_line with Some l -> Printf.sprintf " line %d" l | None -> "")
          f.fl_pc)
      r.cr_frames;
  if r.cr_locals <> [] then begin
    pf "locals (top frame):\n";
    List.iter (fun (n, v) -> pf "  %s = %s\n" n v) r.cr_locals
  end;
  (match r.cr_disas with
  | Some dis -> pf "disassembly at fault pc:\n%s\n" dis
  | None -> ());
  if r.cr_notes <> [] then begin
    pf "salvage warnings:\n";
    List.iter (fun n -> pf "  ! %s\n" (crash_note_to_string n)) r.cr_notes
  end;
  Buffer.contents b
