(** Compiling breakpoint conditions from the compiler's IR into
    {!Ldb_nub.Bpcode} programs.

    The front half of the pipeline is the expression server's own: the C
    parser and {!Ldb_cc.Sema.rvalue} produce the same typed operator
    trees the PostScript rewriter consumes.  This module is the
    alternative back end — instead of PostScript for the debugger's
    interpreter, it emits stack-machine bytecode the nub can run at a
    trap site without a debugger round trip.

    Only side-effect-free integer expressions compile: conditions must
    not perturb the target, and the nub evaluator is integer-only.
    Anything else — assignments, calls, floating point — raises
    {!Unsupported} with a message naming the construct, and the caller
    falls back to evaluating the condition on the debugger side.

    A frame local's address at a future stop is a saved register plus a
    compile-time constant: [base] names the register (sp on SIM-MIPS,
    which has no frame pointer; fp elsewhere) and [bias] the constant
    correction from that register to the frame base ([Ir.Addrl] offsets
    are frame-base-relative).  The machine-dependent walkers compute the
    same sum at stop time, so both evaluation sites agree by
    construction. *)

module Ir = Ldb_cc.Ir
module Bpcode = Ldb_nub.Bpcode

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let binop ~signed (op : Ir.binop) : Bpcode.binop =
  match op with
  | Ir.Add -> Bpcode.Add
  | Ir.Sub -> Bpcode.Sub
  | Ir.Mul -> Bpcode.Mul
  | Ir.Div -> if signed then Bpcode.Divs else Bpcode.Divu
  | Ir.Rem -> if signed then Bpcode.Rems else Bpcode.Remu
  | Ir.Band -> Bpcode.And
  | Ir.Bor -> Bpcode.Or
  | Ir.Bxor -> Bpcode.Xor
  | Ir.Shl -> Bpcode.Shl
  | Ir.Shr -> if signed then Bpcode.Shrs else Bpcode.Shru

let relop (r : Ir.relop) : Bpcode.relop =
  match r with
  | Ir.Req -> Bpcode.Eq
  | Ir.Rne -> Bpcode.Ne
  | Ir.Rlt -> Bpcode.Lt
  | Ir.Rle -> Bpcode.Le
  | Ir.Rgt -> Bpcode.Gt
  | Ir.Rge -> Bpcode.Ge

let int_ty = function
  | Ir.I1 | Ir.U1 | Ir.I2 | Ir.U2 | Ir.I4 | Ir.U4 | Ir.P4 -> true
  | Ir.F4 | Ir.F8 | Ir.F10 | Ir.V -> false

(** Is [e] guaranteed to evaluate to 0 or 1?  (The operands [Sema]'s
    branch-free [&&]/[||] lowering builds are always comparisons.) *)
let boolish = function Ir.Cmp _ -> true | _ -> false

let rec compile ~base ~bias (e : Ir.exp) : Bpcode.insn list =
  let recur = compile ~base ~bias in
  match e with
  | Ir.Cnst (_, v) -> [ Bpcode.Push v ]
  | Ir.Cnstf _ -> unsupported "floating point does not evaluate on the nub"
  | Ir.Addrg l -> unsupported "unresolved label %s in a condition" l
  | Ir.Addrl off ->
      (* frame local: saved base register + compile-time constant *)
      [ Bpcode.Load_reg base;
        Bpcode.Push (Int32.of_int (off + bias));
        Bpcode.Bin Bpcode.Add ]
  | Ir.Reguse r -> [ Bpcode.Load_reg r ]
  | Ir.Indir (ty, addr) ->
      let signed =
        match ty with
        | Ir.I1 | Ir.I2 | Ir.I4 -> true
        | Ir.U1 | Ir.U2 | Ir.U4 | Ir.P4 -> false
        | t -> unsupported "%s load does not evaluate on the nub" (Ir.ty_name t)
      in
      recur addr @ [ Bpcode.Load { space = 'd'; size = Ir.ty_bytes ty; signed } ]
  | Ir.Bin (ty, op, a, b) -> (
      let signed =
        match ty with
        | Ir.I4 -> true
        | Ir.U4 | Ir.P4 -> false
        | t -> unsupported "%s arithmetic does not evaluate on the nub" (Ir.ty_name t)
      in
      (* Sema's branch-free && / || over comparison operands regains its
         short circuit here: both operands are 0/1, so the skipped-side
         value is the constant the jump encodes.  The right operand's
         loads never run when the left side decides — the fuel the
         verifier certifies is the acyclic worst case. *)
      match (op, boolish a && boolish b) with
      | Ir.Band, true ->
          let cb = recur b in
          recur a
          @ [ Bpcode.Jz (List.length cb + 1) ]
          @ cb
          @ [ Bpcode.Jmp 1; Bpcode.Push 0l ]
      | Ir.Bor, true ->
          let cb = recur b in
          recur a
          @ [ Bpcode.Jnz (List.length cb + 1) ]
          @ cb
          @ [ Bpcode.Jmp 1; Bpcode.Push 1l ]
      | _ -> recur a @ recur b @ [ Bpcode.Bin (binop ~signed op) ])
  | Ir.Cmp (ty, rel, a, b) ->
      let signed =
        match ty with
        | Ir.I4 -> true
        | Ir.U4 | Ir.P4 -> false
        | t -> unsupported "%s comparison does not evaluate on the nub" (Ir.ty_name t)
      in
      recur a @ recur b @ [ Bpcode.Cmp { rel = relop rel; signed } ]
  | Ir.Cvt (from, to_, e) ->
      if not (int_ty from && int_ty to_) then
        unsupported "floating point does not evaluate on the nub";
      let v = recur e in
      (* values are canonical 32-bit; only narrowing changes bits *)
      (match to_ with
      | Ir.I1 ->
          v @ [ Bpcode.Push 24l; Bpcode.Bin Bpcode.Shl;
                Bpcode.Push 24l; Bpcode.Bin Bpcode.Shrs ]
      | Ir.U1 -> v @ [ Bpcode.Push 0xffl; Bpcode.Bin Bpcode.And ]
      | Ir.I2 ->
          v @ [ Bpcode.Push 16l; Bpcode.Bin Bpcode.Shl;
                Bpcode.Push 16l; Bpcode.Bin Bpcode.Shrs ]
      | Ir.U2 -> v @ [ Bpcode.Push 0xffffl; Bpcode.Bin Bpcode.And ]
      | _ -> v)
  | Ir.Asgn _ | Ir.Regasgn _ ->
      unsupported "a condition may not assign to the target"
  | Ir.Call _ | Ir.Callind _ ->
      unsupported "a condition may not call target code"

(** Compile a condition expression to a complete program: the final value
    is the verdict, nonzero meaning "really stop". *)
let compile_prog ~base ~bias (e : Ir.exp) : Bpcode.prog =
  Array.of_list (compile ~base ~bias e)
