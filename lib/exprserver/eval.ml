(** The debugger's half of expression evaluation (Sec. 3).

    ldb treats each expression as a string: it sends the string to the
    expression server, then interprets PostScript from the pipe until the
    server tells it to stop — [ExpressionServer.result] puts the value on
    the operand stack and stops the interpretation, and
    [ExpressionServer.lookup] requests are answered out of the PostScript
    symbol tables with type and location information. *)

open Ldb_machine
module A = Ldb_amemory.Amemory
module V = Ldb_pscript.Value
module I = Ldb_pscript.Interp
module Chan = Ldb_nub.Chan
module Ldb = Ldb_ldb.Ldb
module Symtab = Ldb_ldb.Symtab

exception Error of string

type session = {
  server : Exprserver.t;
  pipe : Chan.endpoint;  (** ldb's end *)
  arch : Arch.t;
}

let start ~(arch : Arch.t) : session =
  let server, pipe = Exprserver.create ~arch in
  { server; pipe; arch }

(* --- serializing symbol information for the server ------------------------ *)

let subst_decl decl name =
  (* "int %s[20]" -> "int __v[20]" *)
  match String.index_opt decl '%' with
  | Some i when i + 1 < String.length decl && decl.[i + 1] = 's' ->
      String.sub decl 0 i ^ name ^ String.sub decl (i + 2) (String.length decl - i - 2)
  | _ -> decl ^ " " ^ name

let decl_of_type (ty : V.t) =
  match V.dict_get (V.to_dict ty) "decl" with Some d -> V.to_str d | None -> "int %s"

(** Struct name out of a decl like "struct point %s". *)
let struct_name_of_decl decl =
  match String.split_on_char ' ' decl with
  | "struct" :: name :: _ -> Some name
  | _ -> None

(** Feed "T struct point { ... }" definition lines to [emit] for every
    struct reachable from a type dictionary, innermost first. *)
let rec emit_struct_defs ~(emit : string -> unit) ~(visited : (string, unit) Hashtbl.t)
    (ty : V.t) =
  let d = V.to_dict ty in
  (match V.dict_get d "pointee" with
  | Some inner -> emit_struct_defs ~emit ~visited inner
  | None -> ());
  (match V.dict_get d "elemtype" with
  | Some inner -> emit_struct_defs ~emit ~visited inner
  | None -> ());
  match V.dict_get d "fields" with
  | None -> ()
  | Some fields -> (
      match struct_name_of_decl (decl_of_type ty) with
      | None -> ()
      | Some name ->
          if not (Hashtbl.mem visited name) then begin
            Hashtbl.replace visited name ();
            let field_decls =
              Array.to_list (V.to_arr fields)
              |> List.map (fun f ->
                     let fa = V.to_arr f in
                     let fname = V.to_str fa.(0) in
                     let fty = fa.(2) in
                     emit_struct_defs ~emit ~visited fty;
                     subst_decl (decl_of_type fty) fname ^ ";")
            in
            emit (Printf.sprintf "T struct %s { %s }" name (String.concat " " field_decls))
          end)

(** Send the definitions down the pipe, the lookup-reply path. *)
let send_struct_defs (sess : session) ~visited (ty : V.t) =
  emit_struct_defs ~emit:(fun line -> Chan.send sess.pipe (line ^ "\n")) ~visited ty

let locspec_of_location (loc : A.location) : string =
  match loc with
  | A.Absolute { space = 'd'; offset } -> Printf.sprintf "d %d" offset
  | A.Absolute { space = 'c'; offset } -> Printf.sprintf "d %d" offset
  | A.Absolute { space = 'r'; offset } -> Printf.sprintf "r %d" offset
  | A.Absolute { space; _ } -> raise (Error (Printf.sprintf "cannot evaluate in space %c" space))
  | A.Immediate _ -> raise (Error "immediate location in expression")

(* --- the evaluation loop ----------------------------------------------------- *)

let drain_file (ep : Chan.endpoint) : V.file =
  V.file_of_fun "%exprpipe" (fun () ->
      if Chan.available ep > 0 then Some (Chan.recv_exactly ep 1).[0] else None)

(** Evaluate [expr] in the context of [fr], returning (formatted value,
    type name). *)
let evaluate (d : Ldb.t) (tg : Ldb.target) (fr : Ldb_ldb.Frame.t) (sess : session)
    (expr : string) : string * string =
  if not (Arch.equal sess.arch tg.Ldb.tg_arch) then
    raise (Error "expression server serves a different architecture");
  Ldb.force_symbols d tg;
  let interp = d.Ldb.interp in
  let result_type = ref "int" in
  let visited = Hashtbl.create 8 in
  (* operators the server-generated PostScript relies on *)
  let ops = V.dict_create () in
  V.dict_put ops "FrameMem" (V.mem fr.Ldb_ldb.Frame.fr_mem);
  V.dict_put ops "FrameBase" (V.int fr.Ldb_ldb.Frame.fr_base);
  V.dict_put ops "ExpressionServer.lookup"
    (V.op "ExpressionServer.lookup" (fun () ->
         let name = I.pop_str interp in
         match Ldb.resolve d tg fr name with
         | None -> Chan.send sess.pipe "U\n"
         | Some entry -> (
             match V.dict_get (V.to_dict entry) "kind" with
             | Some k when V.to_str k = "procedure" -> Chan.send sess.pipe "U\n"
             | _ ->
                 (* the compiler proved no assignment reaches this stop:
                    evaluating the slot would compute on garbage *)
                 (match Ldb.validity_of d tg fr entry with
                 | Some Symtab.Vuninit ->
                     raise (Error (name ^ " is uninitialized at this point"))
                 | _ -> ());
                 let ty =
                   match V.dict_get (V.to_dict entry) "type" with
                   | Some t -> t
                   | None -> raise (Error (name ^ " has no type"))
                 in
                 send_struct_defs sess ~visited ty;
                 let loc = Ldb.location_of d tg fr entry in
                 let decl = subst_decl (decl_of_type ty) "__v" in
                 Chan.send sess.pipe
                   (Printf.sprintf "S var ; %s ; %s\n" decl (locspec_of_location loc)))));
  V.dict_put ops "ExpressionServer.result"
    (V.op "ExpressionServer.result" (fun () ->
         result_type := I.pop_str interp;
         raise I.Stop));
  V.dict_put ops "ExpressionServer.error"
    (V.op "ExpressionServer.error" (fun () ->
         let msg = I.pop_str interp in
         raise (Error msg)));
  let interpret_available () =
    (* interpreting until told to stop: "cvx stopped" applied to the pipe *)
    I.run_file interp (drain_file sess.pipe)
  in
  Ldb.with_target d tg (fun () ->
      I.begin_dict interp ops;
      Fun.protect ~finally:(fun () -> I.end_dict interp) (fun () ->
          Chan.send sess.pipe ("E " ^ expr ^ "\n");
          sess.server.Exprserver.need_input <- interpret_available;
          Exprserver.pump sess.server;
          match interpret_available () with
          | () -> raise (Error "expression server never sent a result")
          | exception I.Stop ->
              let v = I.pop interp in
              let formatted =
                match v.V.v with
                | V.Int n when String.contains !result_type '*' -> Printf.sprintf "0x%x" n
                | _ -> V.to_text v
              in
              (formatted, !result_type)))

(** Convenience: evaluate and discard the type. *)
let eval_string d tg fr sess expr = fst (evaluate d tg fr sess expr)

(* --- compiled breakpoint conditions ------------------------------------------ *)

(** A pseudo-frame for resolving names at a breakpoint address the target
    need not have reached: scope resolution only consults the pc, and a
    base of zero makes a frame-local /where evaluate to its pure frame
    offset should it ever be interpreted. *)
let frame_at (tg : Ldb.target) ~(addr : int) : Ldb_ldb.Frame.t =
  {
    Ldb_ldb.Frame.fr_pc = addr;
    fr_base = 0;
    fr_sp = 0;
    fr_level = 0;
    fr_mem = tg.Ldb.tg_wire;
    fr_aliases = Hashtbl.create 1;
    fr_down = (fun () -> None);
  }

(** Map a symbol entry to the compiler's address kind, keeping frame
    locals {e symbolic}: a stored /where naming FrameLoc carries the
    frame offset as its literal integer, and becomes [Cframe] so the
    condition compiler can form the address from the saved base register
    at any future stop.  Everything else is interpreted now — globals
    and lazy anchors yield absolute addresses, register variables their
    register. *)
let caddr_of_entry (d : Ldb.t) (tg : Ldb.target) (fr : Ldb_ldb.Frame.t) (entry : V.t) :
    Ldb_cc.Sema.caddr option =
  let frame_off =
    match V.dict_get (V.to_dict entry) "where" with
    | Some { V.v = V.Arr items; _ }
      when Array.exists
             (fun (it : V.t) ->
               match it.V.v with V.Name "FrameLoc" -> true | _ -> false)
             items ->
        Array.fold_left
          (fun acc (it : V.t) ->
            match (acc, it.V.v) with None, V.Int n -> Some n | _ -> acc)
          None items
    | _ -> None
  in
  match frame_off with
  | Some off -> Some (Ldb_cc.Sema.Cframe off)
  | None -> (
      match Ldb.location_of d tg fr entry with
      | A.Absolute { space = 'r'; offset } -> Some (Ldb_cc.Sema.Creg offset)
      | A.Absolute { space = 'd' | 'c'; offset } ->
          Some (Ldb_cc.Sema.Cabs (Int32.of_int offset))
      | _ -> None)

(** Compile [expr] into verified nub bytecode for a breakpoint at
    [addr].  The result is proved safe by {!Ldb_nub.Bpverify} before it
    is returned; on [`Unsupported] the caller may evaluate the same
    condition on the debugger side instead. *)
let compile_condition (d : Ldb.t) (tg : Ldb.target) (sess : session) ~(addr : int)
    (expr : string) :
    ( Ldb_nub.Bpcode.prog,
      [ `Error of string
      | `Unsupported of string
      | `Unverified of Ldb_nub.Bpverify.finding list ] )
    result =
  if not (Arch.equal sess.arch tg.Ldb.tg_arch) then
    Stdlib.Error (`Error "expression server serves a different architecture")
  else begin
    Ldb.force_symbols d tg;
    let fr = frame_at tg ~addr in
    let visited = Hashtbl.create 8 in
    let lookup name =
      match Ldb.resolve d tg fr name with
      | None -> None
      | Some entry -> (
          match V.dict_get (V.to_dict entry) "kind" with
          | Some k when V.to_str k = "procedure" -> None
          | _ ->
              (* refuse to compile a condition that reads a local the
                 compiler proved uninitialized at this stop: the nub
                 would evaluate garbage on every hit *)
              (match Ldb.validity_of d tg fr entry with
              | Some Symtab.Vuninit ->
                  raise
                    (Bpcompile.Unsupported
                       (name ^ " is uninitialized at this breakpoint"))
              | _ -> ());
              let ty =
                match V.dict_get (V.to_dict entry) "type" with
                | Some t -> t
                | None -> raise (Exprserver.Error (name ^ " has no type"))
              in
              emit_struct_defs
                ~emit:(fun line -> Exprserver.process_typedef sess.server line)
                ~visited ty;
              let cty =
                Exprserver.parse_decl sess.server (subst_decl (decl_of_type ty) "__v")
              in
              (match caddr_of_entry d tg fr entry with
              | Some b_addr -> Some { Ldb_cc.Sema.b_ty = cty; b_addr }
              | None ->
                  raise
                    (Exprserver.Error (name ^ " has no address a condition can use"))))
    in
    let q = Ldb.make_query d tg in
    let frame_size =
      match q.Ldb_ldb.Frame.q_frame_size ~pc:addr with
      | Some s -> s
      | None -> (
          match q.Ldb_ldb.Frame.q_proc_info ~pc:addr with
          | Some pi -> pi.Ldb_ldb.Frame.pi_frame_size
          | None -> 0)
    in
    match
      Exprserver.compile_cond sess.server ~tdesc:tg.Ldb.tg_tdesc ~frame_size ~lookup
        expr
    with
    | r -> r
    | exception Ldb.Error m -> Stdlib.Error (`Error m)
    | exception Error m -> Stdlib.Error (`Error m)
  end
