(** The expression server (Sec. 3, Fig. 3): a variant of the compiler front
    end, living in its own address space and talking to ldb over a pair of
    pipes.

    To evaluate an expression, ldb sends the text; the server parses,
    type-checks and produces an IR tree, rewriting it into a PostScript
    procedure.  When the server fails to find an identifier it does not
    stop: it sends "/name ExpressionServer.lookup" back to ldb, ldb
    interprets that (finding the PostScript symbol-table entry and
    replying with type and location information in C-token form), and the
    server reconstructs the symbol entry on the fly.

    Per the paper, the server discards reconstructed symbol entries after
    each expression but keeps type (struct) information until the
    debugger switches programs. *)

open Ldb_machine
module Chan = Ldb_nub.Chan

exception Error of string

type t = {
  arch : Arch.t;
  ep : Chan.endpoint;  (** the server's end of the pipe pair *)
  structs : (string, Ldb_cc.Ctype.struct_def) Hashtbl.t;  (** kept across expressions *)
  mutable bindings : (string * Ldb_cc.Sema.binding) list;  (** discarded after each one *)
  mutable need_input : unit -> unit;
      (** invoked when the server must wait for ldb (lookup replies) *)
}

(** Create a server and return it with the debugger's pipe end. *)
let create ~(arch : Arch.t) : t * Chan.endpoint =
  let ldb_end, srv_end = Chan.pair ~labels:("ldb", "exprserver") () in
  ( { arch; ep = srv_end; structs = Hashtbl.create 8; bindings = [];
      need_input = (fun () -> ()) },
    ldb_end )

(* --- line IO over the pipe ---------------------------------------------- *)

let read_line_blocking (s : t) : string =
  let buf = Buffer.create 64 in
  let rec go () =
    if Chan.available s.ep = 0 then begin
      s.need_input ();
      if Chan.available s.ep = 0 then raise (Error "expression server: ldb went away")
    end;
    let c = (Chan.recv_exactly s.ep 1).[0] in
    if c = '\n' then Buffer.contents buf
    else begin
      Buffer.add_char buf c;
      go ()
    end
  in
  go ()

let send s line = Chan.send s.ep (line ^ "\n")

(* --- symbol reconstruction ------------------------------------------------ *)

(** Parse a C type declaration such as "int __v[20]" or "struct point *__v"
    using the compiler's own parser, against the server's struct table. *)
let parse_decl (s : t) (decl : string) : Ldb_cc.Ctype.t =
  let toks = Ldb_cc.Lex.all decl in
  let st = Ldb_cc.Parse.make toks in
  Hashtbl.iter (fun k v -> Hashtbl.replace st.Ldb_cc.Parse.structs k v) s.structs;
  let base = Ldb_cc.Parse.base_type st s.arch in
  (* pull any newly completed struct definitions back into our table *)
  Hashtbl.iter (fun k v -> Hashtbl.replace s.structs k v) st.Ldb_cc.Parse.structs;
  let _, ty = Ldb_cc.Parse.declarator st s.arch base in
  ty

(** Process a struct-definition line: "T struct point { int x; int y; }". *)
let process_typedef (s : t) (line : string) =
  let body = String.sub line 2 (String.length line - 2) in
  let toks = Ldb_cc.Lex.all body in
  let st = Ldb_cc.Parse.make toks in
  Hashtbl.iter (fun k v -> Hashtbl.replace st.Ldb_cc.Parse.structs k v) s.structs;
  ignore (Ldb_cc.Parse.base_type st s.arch);
  Hashtbl.iter (fun k v -> Hashtbl.replace s.structs k v) st.Ldb_cc.Parse.structs

let parse_locspec (spec : string) : Ldb_cc.Sema.caddr =
  match String.split_on_char ' ' (String.trim spec) with
  | [ "d"; addr ] -> Ldb_cc.Sema.Cabs (Int32.of_string addr)
  | [ "r"; reg ] -> Ldb_cc.Sema.Creg (int_of_string reg)
  | [ "imm"; v ] -> Ldb_cc.Sema.Cabs (Int32.of_string v)
  | _ -> raise (Error ("bad location spec " ^ spec))

(** Ask ldb about an identifier; block (pumping ldb) for the reply. *)
let remote_lookup (s : t) (name : string) : Ldb_cc.Sema.binding option =
  send s (Printf.sprintf "/%s ExpressionServer.lookup" name);
  let rec read_reply () =
    let line = read_line_blocking s in
    if String.length line >= 2 && String.sub line 0 2 = "T " then begin
      process_typedef s line;
      read_reply ()
    end
    else if line = "U" then None
    else if String.length line >= 2 && String.sub line 0 2 = "S " then begin
      (* "S var ; int __v[20] ; d 1049600" *)
      match String.split_on_char ';' (String.sub line 2 (String.length line - 2)) with
      | [ _kind; decl; locspec ] ->
          let ty = parse_decl s (String.trim decl) in
          let addr = parse_locspec locspec in
          Some { Ldb_cc.Sema.b_ty = ty; b_addr = addr }
      | _ -> raise (Error ("bad lookup reply " ^ line))
    end
    else raise (Error ("bad lookup reply " ^ line))
  in
  read_reply ()

let lookup (s : t) (name : string) : Ldb_cc.Sema.binding option =
  match List.assoc_opt name s.bindings with
  | Some b -> Some b
  | None -> (
      match remote_lookup s name with
      | Some b ->
          s.bindings <- (name, b) :: s.bindings;
          Some b
      | None -> None)

(* --- evaluation ------------------------------------------------------------- *)

let ectx (s : t) : Ldb_cc.Sema.ectx =
  {
    Ldb_cc.Sema.e_arch = s.arch;
    e_lookup = (fun n -> lookup s n);
    e_func_ty = (fun _ -> None);
    e_string = (fun _ -> raise (Error "string literals are not supported in expressions"));
    e_emit = None;
    e_temp = None;
    e_label = None;
  }

let parse_with_structs (s : t) (text : string) : Ldb_cc.Ast.expr =
  let st = Ldb_cc.Parse.make (Ldb_cc.Lex.all text) in
  Hashtbl.iter (fun k v -> Hashtbl.replace st.Ldb_cc.Parse.structs k v) s.structs;
  let e = Ldb_cc.Parse.expression st s.arch in
  (match (Ldb_cc.Parse.peek st).Ldb_cc.Lex.tok with
  | Ldb_cc.Lex.Teof | Ldb_cc.Lex.Tpunct ";" -> ()
  | _ -> raise (Ldb_cc.Parse.Error ("trailing tokens after expression", Ldb_cc.Parse.pos st)));
  e

(** Static check (pslint) of compiled expression code before it ships:
    a finding here is a rewriter bug, reported to ldb like any other
    expression error instead of crashing the debugger's interpreter. *)
let lint_expression (ps : string) : string option =
  let env = Ldb_pscheck.Pscheck.debugger_env () in
  match Ldb_pscheck.Pscheck.check_program ~env ~deep:true ~name:"%expr" ps with
  | [] -> None
  | fs ->
      Some (String.concat "; " (List.map Ldb_pscheck.Lattice.finding_to_string fs))

(** Handle one expression request: parse, translate, rewrite, reply. *)
let serve_expression (s : t) (text : string) =
  match
    let ast = parse_with_structs s text in
    let ir, ty = Ldb_cc.Sema.rvalue (ectx s) ast in
    (Rewrite.rewrite ir, Ldb_cc.Ctype.to_string ty)
  with
  | ps, tyname -> (
      (match lint_expression ps with
      | None ->
          send s ps;
          send s
            (Printf.sprintf "(%s) ExpressionServer.result" (Ldb_cc.Psemit.ps_escape tyname))
      | Some msg ->
          send s
            (Printf.sprintf "(compiled expression fails pslint: %s) ExpressionServer.error"
               (Ldb_cc.Psemit.ps_escape msg)));
      s.bindings <- [])
  | exception Ldb_cc.Parse.Error (m, _) ->
      send s (Printf.sprintf "(parse error: %s) ExpressionServer.error" (Ldb_cc.Psemit.ps_escape m));
      s.bindings <- []
  | exception Ldb_cc.Lex.Error (m, _) ->
      send s (Printf.sprintf "(lexical error: %s) ExpressionServer.error" (Ldb_cc.Psemit.ps_escape m));
      s.bindings <- []
  | exception Ldb_cc.Sema.Error (m, _) ->
      send s (Printf.sprintf "(%s) ExpressionServer.error" (Ldb_cc.Psemit.ps_escape m));
      s.bindings <- []
  | exception Rewrite.Unsupported m ->
      send s (Printf.sprintf "(%s) ExpressionServer.error" (Ldb_cc.Psemit.ps_escape m));
      s.bindings <- []
  | exception Error m ->
      send s (Printf.sprintf "(%s) ExpressionServer.error" (Ldb_cc.Psemit.ps_escape m));
      s.bindings <- []

(* --- breakpoint conditions ------------------------------------------------- *)

(** An evaluation context over a caller-supplied symbol resolver — the
    condition compiler bypasses the pipe protocol: the debugger is in
    the same process and answers lookups directly, with frame locals
    kept symbolic (as frame offsets) rather than flattened to the
    current stop's addresses. *)
let cond_ectx (s : t) (lookup : string -> Ldb_cc.Sema.binding option) : Ldb_cc.Sema.ectx =
  {
    Ldb_cc.Sema.e_arch = s.arch;
    e_lookup = lookup;
    e_func_ty = (fun _ -> None);
    e_string = (fun _ -> raise (Error "string literals are not supported in conditions"));
    e_emit = None;
    e_temp = None;
    e_label = None;
  }

(** Compile a breakpoint condition to verified nub bytecode.

    The pipeline is the expression server's own front half — parse
    against the retained struct table, type-check and translate with
    {!Ldb_cc.Sema.rvalue} — with {!Bpcompile} as the back end and
    {!Ldb_nub.Bpverify} as the gate: a program the verifier rejects is
    {e never returned}, so nothing unproved can reach the wire.
    [frame_size] is the bias from the saved base register to the frame
    base at the breakpoint's pc (nonzero only on SIM-MIPS, whose frame
    base is virtual).

    Errors are typed: [`Unsupported] names a construct that cannot run
    on the nub (the caller may fall back to debugger-side evaluation),
    [`Unverified] carries the verifier's findings (a compiler bug or a
    hostile program — there is no fallback that would make it safe),
    and [`Error] covers parse and type failures. *)
let compile_cond (s : t) ~(tdesc : Target.t) ~(frame_size : int)
    ~(lookup : string -> Ldb_cc.Sema.binding option) (text : string) :
    ( Ldb_nub.Bpcode.prog,
      [ `Error of string
      | `Unsupported of string
      | `Unverified of Ldb_nub.Bpverify.finding list ] )
    result =
  let base, bias =
    match tdesc.Target.fp with
    | Some fp -> (fp, 0)
    | None -> (tdesc.Target.sp, frame_size)
  in
  let finish r =
    s.bindings <- [];
    r
  in
  match
    let ast = parse_with_structs s text in
    let ir, _ty = Ldb_cc.Sema.rvalue (cond_ectx s lookup) ast in
    let prog = Bpcompile.compile_prog ~base ~bias ir in
    if
      Array.length prog > Ldb_nub.Bpcode.max_insns
      || String.length (Ldb_nub.Bpcode.encode prog) > Ldb_nub.Bpcode.max_prog_bytes
    then None
    else Some prog
  with
  | None -> finish (Stdlib.Error (`Unsupported "condition compiles to too large a program"))
  | Some prog ->
      finish
        (match Ldb_nub.Bpverify.verify tdesc prog with
        | [] -> Stdlib.Ok prog
        | findings -> Stdlib.Error (`Unverified findings))
  | exception Ldb_nub.Bpcode.Encode_error m ->
      finish (Stdlib.Error (`Unsupported ("condition does not encode: " ^ m)))
  | exception Ldb_cc.Parse.Error (m, _) -> finish (Stdlib.Error (`Error ("parse error: " ^ m)))
  | exception Ldb_cc.Lex.Error (m, _) -> finish (Stdlib.Error (`Error ("lexical error: " ^ m)))
  | exception Ldb_cc.Sema.Error (m, _) -> finish (Stdlib.Error (`Error m))
  | exception Bpcompile.Unsupported m -> finish (Stdlib.Error (`Unsupported m))
  | exception Error m -> finish (Stdlib.Error (`Error m))

(** Process one pending request if any bytes are waiting. *)
let pump (s : t) =
  while Chan.available s.ep > 0 do
    let line = read_line_blocking s in
    if String.length line >= 2 && String.sub line 0 2 = "E " then
      serve_expression s (String.sub line 2 (String.length line - 2))
    else if line = "" then ()
    else raise (Error ("expression server: bad request " ^ line))
  done
