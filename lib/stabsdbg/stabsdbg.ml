(** A minimal dbx/gdb-style baseline debugger front end that reads the
    {e binary, machine-dependent} stabs emitted by the compiler
    (lib/cc/stabsemit).

    This exists for the paper's comparisons (Sec. 7):
    - startup time: "dbx: start and read a.out for lcc: 1.5s; gdb: 1.1s"
      versus ldb's PostScript interpretation — reading flat binary records
      is much faster, which T2 reproduces;
    - size: dbx stabs are ~9x smaller than the PostScript tables (T5).

    The cost of the speed is exactly what the paper says: this reader is
    machine-dependent (it bakes in record layout and the meaning of each
    value field) and language-dependent (the type codes are C-specific),
    and it cannot print structured values without knowing C's data layout
    itself. *)

type stab = {
  st_type : int;
  st_desc : int;  (** typically a source line *)
  st_value : int;
  st_name : string;
}

type t = {
  stabs : stab list;
  by_name : (string, stab) Hashtbl.t;
  functions : stab list;
  nlines : int;
}

let u16 s i = Char.code s.[i] lor (Char.code s.[i + 1] lsl 8)

let u32 s i =
  Char.code s.[i]
  lor (Char.code s.[i + 1] lsl 8)
  lor (Char.code s.[i + 2] lsl 16)
  lor (Char.code s.[i + 3] lsl 24)

exception Corrupt of string

(** Parse a raw stabs byte string. *)
let parse (raw : string) : t =
  let n = String.length raw in
  let stabs = ref [] in
  let pos = ref 0 in
  while !pos < n do
    if !pos + 9 > n then raise (Corrupt "truncated record header");
    let st_type = Char.code raw.[!pos] in
    let st_desc = u16 raw (!pos + 1) in
    let st_value = u32 raw (!pos + 3) in
    let nstr = u16 raw (!pos + 7) in
    if !pos + 9 + nstr > n then raise (Corrupt "truncated record name");
    let st_name = String.sub raw (!pos + 9) nstr in
    stabs := { st_type; st_desc; st_value; st_name } :: !stabs;
    pos := !pos + 9 + nstr
  done;
  let stabs = List.rev !stabs in
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun s ->
      (* n_valid records reuse the "name:..." shape but are metadata, not
         the symbol itself — keep them out of the name index *)
      if s.st_type <> Ldb_cc.Stabsemit.n_valid then
        match String.index_opt s.st_name ':' with
        | Some i -> Hashtbl.replace by_name (String.sub s.st_name 0 i) s
        | None -> ())
    stabs;
  let functions = List.filter (fun s -> s.st_type = Ldb_cc.Stabsemit.n_fun) stabs in
  let nlines = List.length (List.filter (fun s -> s.st_type = Ldb_cc.Stabsemit.n_sline) stabs) in
  { stabs; by_name; functions; nlines }

(** "Start and read" an image, like dbx/gdb starting on an a.out. *)
let start (img : Ldb_link.Link.image) : t = parse img.Ldb_link.Link.i_stabs

let find t name = Hashtbl.find_opt t.by_name name

let function_names t =
  List.filter_map
    (fun s -> match String.index_opt s.st_name ':' with
      | Some i -> Some (String.sub s.st_name 0 i)
      | None -> None)
    t.functions

(** Decode a type code back to a display string (machine- and
    C-dependent, unlike ldb's interpreted printers). *)
let rec type_display (code : string) : string =
  if code = "" then "?"
  else
    match code.[0] with
    | 'v' -> "void"
    | 'c' -> "char"
    | 's' -> "short"
    | 'i' -> "int"
    | 'u' -> "unsigned"
    | 'f' -> "float"
    | 'd' -> "double"
    | 'x' -> "long double"
    | '*' -> type_display (String.sub code 1 (String.length code - 1)) ^ " *"
    | 'S' -> "struct " ^ String.sub code 1 (String.length code - 1)
    | 'F' -> type_display (String.sub code 1 (String.length code - 1)) ^ " ()"
    | 'a' -> (
        match String.index_opt code ',' with
        | Some i ->
            let count = String.sub code 1 (i - 1) in
            type_display (String.sub code (i + 1) (String.length code - i - 1))
            ^ "[" ^ count ^ "]"
        | None -> "array")
    | _ -> "?"

let sym_type_display (s : stab) =
  match String.index_opt s.st_name ':' with
  | Some i -> type_display (String.sub s.st_name (i + 1) (String.length s.st_name - i - 1))
  | None -> "?"

(* --- grouping views (used by dbgcheck's differential pass) ----------------- *)

let stab_name (s : stab) =
  match String.index_opt s.st_name ':' with
  | Some i -> String.sub s.st_name 0 i
  | None -> s.st_name

(** One function's records: the [n_fun] stab, the symbol stabs that follow
    it, its [n_sline] stopping points (desc = line, value = anchor slot
    index), and its [n_valid] validity-range records. *)
type func_view = {
  fv_fun : stab;
  fv_syms : stab list;
  fv_slines : stab list;
  fv_valid : stab list;
}

(** Decode an [n_valid] record: "name:lo-hi=f,..." with f in {u,v,d}
    (0/1/2).  [None] if the record is malformed. *)
let parse_valid (s : stab) : (string * (int * int * int) list) option =
  match String.index_opt s.st_name ':' with
  | None -> None
  | Some i -> (
      let name = String.sub s.st_name 0 i in
      let rest = String.sub s.st_name (i + 1) (String.length s.st_name - i - 1) in
      try
        let ranges =
          List.map
            (fun part ->
              Scanf.sscanf part "%d-%d=%c" (fun lo hi c ->
                  let f =
                    match c with
                    | 'u' -> 0
                    | 'v' -> 1
                    | 'd' -> 2
                    | _ -> raise Exit
                  in
                  (lo, hi, f)))
            (String.split_on_char ',' rest)
        in
        Some (name, ranges)
      with _ -> None)

(** One compilation unit: everything between an [n_so] record and the
    next.  Symbols appearing before the first function are unit-level
    (statics and globals). *)
type unit_view = {
  uv_name : string;
  uv_toplevel : stab list;
  uv_funcs : func_view list;
}

(** Split a parsed table into per-unit, per-function views, preserving
    record order.  This is the structural inverse of
    [Stabsemit.emit_unit]. *)
let units (t : t) : unit_view list =
  let module S = Ldb_cc.Stabsemit in
  let finish_func uf syms slines valid funcs =
    match uf with
    | None -> funcs
    | Some f ->
        {
          fv_fun = f;
          fv_syms = List.rev syms;
          fv_slines = List.rev slines;
          fv_valid = List.rev valid;
        }
        :: funcs
  in
  let finish_unit cur top uf syms slines valid funcs units =
    match cur with
    | None -> units
    | Some name ->
        let top = if uf = None then List.rev_append syms top else top in
        {
          uv_name = name;
          uv_toplevel = List.rev top;
          uv_funcs = List.rev (finish_func uf syms slines valid funcs);
        }
        :: units
  in
  let rec go cur top uf syms slines valid funcs units = function
    | [] -> List.rev (finish_unit cur top uf syms slines valid funcs units)
    | s :: rest ->
        if s.st_type = S.n_so then
          let units = finish_unit cur top uf syms slines valid funcs units in
          go (Some s.st_name) [] None [] [] [] [] units rest
        else if s.st_type = S.n_fun then
          let funcs = finish_func uf syms slines valid funcs in
          let top = if uf = None then List.rev_append syms top else top in
          go cur top (Some s) [] [] [] funcs units rest
        else if s.st_type = S.n_sline then go cur top uf syms (s :: slines) valid funcs units rest
        else if s.st_type = S.n_valid then go cur top uf syms slines (s :: valid) funcs units rest
        else go cur top uf (s :: syms) slines valid funcs units rest
  in
  go None [] None [] [] [] [] [] t.stabs
