(** Minimal JSON string escaping, shared by every hand-rolled JSON
    emitter in the tree (irlint findings, dbgcheck findings, pscheck
    lattice dumps).  The output shape of each emitter is pinned by golden
    tests, so this must stay byte-compatible with the copies it
    replaced. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
