(** An LZW codec equivalent in spirit to UNIX [compress(1)], used to
    reproduce the paper's "PostScript symbol tables are ~9x dbx stabs, ~2x
    after compression" measurement (Sec. 7).

    Variable-width codes (9..16 bits).  Encoder and decoder derive the code
    width from the same counter of codes transmitted, so the two sides can
    never disagree about the width schedule. *)

let min_bits = 9
let max_bits = 16
let max_entries = 1 lsl max_bits
let first_code = 256

(* Width in effect for the [n]-th (1-based) code of the stream: wide enough
   for every code the encoder could possibly send at that point. *)
let width_at n =
  let virtual_next = min (first_code + (n - 1)) max_entries in
  let b = ref min_bits in
  while 1 lsl !b < virtual_next do
    incr b
  done;
  !b

type bitwriter = { out : Buffer.t; mutable acc : int; mutable nbits : int }

let bw_make () = { out = Buffer.create 1024; acc = 0; nbits = 0 }

let bw_put bw code bits =
  bw.acc <- bw.acc lor (code lsl bw.nbits);
  bw.nbits <- bw.nbits + bits;
  while bw.nbits >= 8 do
    Buffer.add_char bw.out (Char.chr (bw.acc land 0xff));
    bw.acc <- bw.acc lsr 8;
    bw.nbits <- bw.nbits - 8
  done

let bw_flush bw = if bw.nbits > 0 then Buffer.add_char bw.out (Char.chr (bw.acc land 0xff))

type bitreader = { src : string; mutable pos : int; mutable racc : int; mutable rbits : int }

let br_make src = { src; pos = 0; racc = 0; rbits = 0 }

let br_get br bits =
  while br.rbits < bits && br.pos < String.length br.src do
    br.racc <- br.racc lor (Char.code br.src.[br.pos] lsl br.rbits);
    br.rbits <- br.rbits + 8;
    br.pos <- br.pos + 1
  done;
  if br.rbits < bits then None
  else begin
    let code = br.racc land ((1 lsl bits) - 1) in
    br.racc <- br.racc lsr bits;
    br.rbits <- br.rbits - bits;
    Some code
  end

(** [compress s] returns the LZW-compressed form of [s]. *)
let compress (s : string) : string =
  let n = String.length s in
  if n = 0 then ""
  else begin
    let table = Hashtbl.create 4096 in
    for i = 0 to 255 do
      Hashtbl.replace table (String.make 1 (Char.chr i)) i
    done;
    let bw = bw_make () in
    let next_code = ref first_code in
    let sent = ref 0 in
    let emit code =
      incr sent;
      bw_put bw code (width_at !sent)
    in
    let w = ref (String.make 1 s.[0]) in
    for i = 1 to n - 1 do
      let c = String.make 1 s.[i] in
      let wc = !w ^ c in
      if Hashtbl.mem table wc then w := wc
      else begin
        emit (Hashtbl.find table !w);
        if !next_code < max_entries then begin
          Hashtbl.replace table wc !next_code;
          incr next_code
        end;
        w := c
      end
    done;
    emit (Hashtbl.find table !w);
    bw_flush bw;
    Buffer.contents bw.out
  end

(** [decompress s] inverts {!compress}.  Raises [Invalid_argument] on a
    corrupt stream, or when the output would exceed [max_out] — callers
    decoding untrusted bytes pass the bound they would accept raw, so a
    small hostile stream cannot demand an enormous expansion. *)
let decompress ?(max_out = max_int) (s : string) : string =
  if s = "" then ""
  else begin
    let dict = Hashtbl.create 4096 in
    for i = 0 to 255 do
      Hashtbl.replace dict i (String.make 1 (Char.chr i))
    done;
    let br = br_make s in
    let next_code = ref first_code in
    let received = ref 0 in
    let read () =
      incr received;
      br_get br (width_at !received)
    in
    let out = Buffer.create (max 16 (min max_out (String.length s * 3))) in
    let add entry =
      if Buffer.length out + String.length entry > max_out then
        invalid_arg "Lzw.decompress: output over bound";
      Buffer.add_string out entry
    in
    match read () with
    | None -> ""
    | Some c0 ->
        let prev = ref (try Hashtbl.find dict c0 with Not_found -> invalid_arg "Lzw.decompress") in
        add !prev;
        let continue = ref true in
        while !continue do
          match read () with
          | None -> continue := false
          | Some code ->
              let entry =
                match Hashtbl.find_opt dict code with
                | Some e -> e
                | None ->
                    if code = !next_code then !prev ^ String.make 1 !prev.[0]
                    else invalid_arg "Lzw.decompress: corrupt stream"
              in
              add entry;
              if !next_code < max_entries then begin
                Hashtbl.replace dict !next_code (!prev ^ String.make 1 entry.[0]);
                incr next_code
              end;
              prev := entry
        done;
        Buffer.contents out
  end

(** Compression ratio original/compressed; 1.0 for empty input. *)
let ratio s =
  if s = "" then 1.0
  else float_of_int (String.length s) /. float_of_int (String.length (compress s))
