(** CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.

    Used by the nub transport to detect corruption and truncation of
    frames on the simulated wire: a frame whose payload no longer matches
    its checksum is discarded and retransmitted rather than mis-decoded. *)

let polynomial = 0xedb88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then polynomial lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(** Feed [s.[pos..pos+len)] into a running CRC.  Start from [init ()];
    finish with [finish]. *)
let update (crc : int) (s : string) ~(pos : int) ~(len : int) : int =
  let t = Lazy.force table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    crc := t.((!crc lxor Char.code s.[i]) land 0xff) lxor (!crc lsr 8)
  done;
  !crc

let init () = 0xffffffff
let finish crc = crc lxor 0xffffffff land 0xffffffff

(** CRC-32 of a whole string. *)
let string (s : string) : int =
  finish (update (init ()) s ~pos:0 ~len:(String.length s))

(** CRC-32 of a substring. *)
let substring (s : string) ~(pos : int) ~(len : int) : int =
  finish (update (init ()) s ~pos ~len)
