(** The type lattice and abstract stack states of the static checker.

    Abstract values pair a lattice type with an optional known constant;
    constants keep the analysis precise through the idioms the emitted
    tables actually use ([3 -1 roll], [8 dict], [(r) Absolute], procedure
    literals passed to [if]). *)

type ty =
  | Int
  | Real
  | Num   (** Int or Real *)
  | Bool
  | Str
  | Name
  | Arr   (** literal array *)
  | Proc  (** executable array *)
  | Dict
  | Mem
  | Loc
  | MarkT
  | Null
  | Any

type konst =
  | KI of int
  | KS of string
  | KB of bool
  | KP of Past.proc                     (** a procedure literal in the source *)
  | KSig of cls list * ty list
      (** an opaque procedure with a known signature (consumes top-first,
          produces in push order): how debugger-provided procedures such as
          [FrameLoc] are declared without their source *)

(** Argument classes of the signature table: what a builtin's runtime
    coercion accepts.  A clash is reported only when the abstract type is
    definitely outside the class. *)
and cls =
  | CInt   (** to_int: Int or Real *)
  | CNum
  | CBool  (** strict *)
  | CStr   (** to_str: Str or Name *)
  | CDict
  | CArr   (** to_arr: any array *)
  | CProc  (** a body to execute *)
  | CMem
  | CLoc
  | CKey   (** dictionary key: Name, Str, Int or Bool *)
  | CAny

type av = { t : ty; c : konst option }

let any = { t = Any; c = None }
let of_ty t = { t; c = None }

let ty_name = function
  | Int -> "integer" | Real -> "real" | Num -> "number" | Bool -> "boolean"
  | Str -> "string" | Name -> "name" | Arr -> "array" | Proc -> "procedure"
  | Dict -> "dict" | Mem -> "memory" | Loc -> "location" | MarkT -> "mark"
  | Null -> "null" | Any -> "any"

let cls_name = function
  | CInt -> "integer" | CNum -> "number" | CBool -> "boolean" | CStr -> "string"
  | CDict -> "dict" | CArr -> "array" | CProc -> "procedure" | CMem -> "memory"
  | CLoc -> "location" | CKey -> "dict key" | CAny -> "any"

let ty_join a b =
  if a = b then a
  else
    match (a, b) with
    | Any, _ | _, Any -> Any
    | (Int | Real | Num), (Int | Real | Num) -> Num
    | _ -> Any

let konst_equal a b =
  match (a, b) with
  | KI x, KI y -> x = y
  | KS x, KS y -> String.equal x y
  | KB x, KB y -> x = y
  | KP x, KP y -> x.Past.proc_id = y.Past.proc_id
  | KSig (c1, p1), KSig (c2, p2) -> c1 = c2 && p1 = p2
  | _ -> false

let av_join a b =
  {
    t = ty_join a.t b.t;
    c =
      (match (a.c, b.c) with
      | Some x, Some y when konst_equal x y -> Some x
      | _ -> None);
  }

(** Does [ty] possibly satisfy [cls]?  [false] means a guaranteed runtime
    typecheck (or invalidaccess) — the only case the checker reports. *)
let cls_admits (c : cls) (t : ty) =
  t = Any
  ||
  match c with
  | CAny -> true
  | CInt | CNum -> ( match t with Int | Real | Num -> true | _ -> false)
  | CBool -> t = Bool
  | CStr -> ( match t with Str | Name -> true | _ -> false)
  | CDict -> t = Dict
  | CArr -> ( match t with Arr | Proc -> true | _ -> false)
  | CProc -> t = Proc
  | CMem -> t = Mem
  | CLoc -> t = Loc
  | CKey -> ( match t with Name | Str | Int | Bool | Num -> true | _ -> false)

(* --- findings ----------------------------------------------------------- *)

type kind =
  | Unknown_op      (** executed name bound nowhere *)
  | Underflow       (** guaranteed stack underflow *)
  | Type_clash      (** operand definitely outside an operator's class *)
  | Unmatched_mark  (** ], >>, cleartomark or counttomark with no mark *)
  | Branch_arity    (** if/ifelse branches with different stack effects *)
  | Dict_access     (** put into an immutable string, bad dict key, odd << >> *)
  | Range           (** statically out-of-range argument *)
  | Syntax          (** the scanner rejected the program *)

let kind_name = function
  | Unknown_op -> "unknown-op"
  | Underflow -> "underflow"
  | Type_clash -> "type-clash"
  | Unmatched_mark -> "unmatched-mark"
  | Branch_arity -> "branch-arity"
  | Dict_access -> "dict-access"
  | Range -> "rangecheck"
  | Syntax -> "syntax"

let kind_of_name = function
  | "unknown-op" -> Some Unknown_op
  | "underflow" -> Some Underflow
  | "type-clash" -> Some Type_clash
  | "unmatched-mark" -> Some Unmatched_mark
  | "branch-arity" -> Some Branch_arity
  | "dict-access" -> Some Dict_access
  | "rangecheck" -> Some Range
  | "syntax" -> Some Syntax
  | _ -> None

type finding = { kind : kind; file : string; line : int; col : int; msg : string }

let finding_to_string f =
  Printf.sprintf "%s:%d:%d: %s: %s" f.file f.line f.col (kind_name f.kind) f.msg

let json_escape = Ldb_util.Json.escape

let finding_to_json f =
  Printf.sprintf {|{"kind":"%s","file":"%s","line":%d,"col":%d,"msg":"%s"}|}
    (kind_name f.kind) (json_escape f.file) f.line f.col (json_escape f.msg)
