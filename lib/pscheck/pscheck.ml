(** pslint: a static stack-effect and type verifier for the embedded
    PostScript dialect.

    The checker abstractly interprets a program over the type lattice of
    {!Lattice}: the operand stack is a list of abstract values over an
    [Empty] base (a program run from an empty stack) or an [Unknown] base
    (a procedure analyzed polymorphically, where pops past the base yield
    [Any] instead of underflowing).  Branches of [if]/[ifelse] are joined;
    loop bodies run to a small fixpoint with widening; procedure literals
    passed around as values are inlined at their call sites, with a
    recursion guard.  Anything the analysis cannot follow (executing an
    unknown value, [where], marks below an unknown base) drops the state
    to chaos, which suppresses all later findings in that sequence — the
    checker only reports what is guaranteed to go wrong. *)

open Ldb_pscript
open Lattice

(* --- abstract machine state --------------------------------------------- *)

type bse = Empty | Unknown

type stk = {
  items : av list;  (** top first: only values pushed above [base] *)
  base : bse;
  below : int;  (** pops past an [Unknown] base (the procedure's demand) *)
}

type state =
  | Chaos     (** analysis gave up; no further findings in this sequence *)
  | Diverged  (** control left this sequence (exit / stop / quit) *)
  | St of stk

let empty_state = St { items = []; base = Empty; below = 0 }
let poly_state = St { items = []; base = Unknown; below = 0 }

let av_equal a b =
  a.t = b.t
  && (match (a.c, b.c) with
     | None, None -> true
     | Some x, Some y -> konst_equal x y
     | _ -> false)

let state_equal a b =
  match (a, b) with
  | Chaos, Chaos | Diverged, Diverged -> true
  | St x, St y ->
      x.base = y.base && x.below = y.below
      && List.length x.items = List.length y.items
      && List.for_all2 av_equal x.items y.items
  | _ -> false

(* --- checker context ----------------------------------------------------- *)

type ctx = {
  mutable findings : finding list;  (** reverse order *)
  seen : (string, unit) Hashtbl.t;  (** finding dedup *)
  mutable scopes : (string, av) Hashtbl.t list;  (** top first; last = global *)
  mutable inline_stack : int list;  (** proc ids being inlined (recursion guard) *)
  analyzed : (int, unit) Hashtbl.t;  (** proc ids whose body was analyzed *)
  mutable exit_collectors : state list ref list;  (** innermost loop first *)
  mutable saw_stop : bool;
  file : string;
}

let report ctx kind (n : Past.node) msg =
  let f = { kind; file = ctx.file; line = n.Past.line; col = n.Past.col; msg } in
  let key = finding_to_string f in
  if not (Hashtbl.mem ctx.seen key) then begin
    Hashtbl.replace ctx.seen key ();
    ctx.findings <- f :: ctx.findings
  end

(* --- stack primitives ----------------------------------------------------- *)

let push v (s : stk) = { s with items = v :: s.items }

(** Pop [n] values (top first).  Running out over an [Empty] base is a
    guaranteed underflow (reported once per operator); over an [Unknown]
    base the missing values are the caller's, so they become [Any]. *)
let popn ctx node opname n (s : stk) : av list * stk =
  let rec go k items acc =
    if k = 0 then (List.rev acc, items, 0)
    else
      match items with
      | v :: rest -> go (k - 1) rest (v :: acc)
      | [] ->
          let missing = k in
          let rec fill k acc = if k = 0 then acc else fill (k - 1) (any :: acc) in
          (List.rev (fill missing acc), [], missing)
  in
  let vs, items, missing = go n s.items [] in
  if missing > 0 && s.base = Empty then
    report ctx Underflow node
      (Printf.sprintf "%s: needs %d operand%s, stack has %d" opname n
         (if n = 1 then "" else "s")
         (n - missing));
  let below = if s.base = Unknown then s.below + missing else s.below in
  (vs, { s with items; below })

let chk ctx node opname cls (v : av) =
  if not (cls_admits cls v.t) then
    report ctx Type_clash node
      (Printf.sprintf "%s: expected %s, got %s" opname (cls_name cls) (ty_name v.t))

(** Split the pushed items at the topmost mark.  [None] when no mark is
    among them (it may still be below an [Unknown] base). *)
let split_at_mark (s : stk) : (av list * av list) option =
  let rec go acc = function
    | { t = MarkT; _ } :: rest -> Some (List.rev acc, rest)
    | v :: rest -> go (v :: acc) rest
    | [] -> None
  in
  go [] s.items

(* --- joins ---------------------------------------------------------------- *)

(** Join two states after a branch.  Differing net stack effects are a
    [Branch_arity] finding at a conditional (and silent widening to chaos
    inside a loop fixpoint). *)
let join ctx node ~loop a b =
  match (a, b) with
  | Diverged, x | x, Diverged -> x
  | Chaos, _ | _, Chaos -> Chaos
  | St s1, St s2 ->
      if s1.base <> s2.base then Chaos
      else
        let n1 = List.length s1.items and n2 = List.length s2.items in
        let net1 = n1 - s1.below and net2 = n2 - s2.below in
        if net1 <> net2 then begin
          if not loop then
            report ctx Branch_arity node
              (Printf.sprintf "branches leave different stack depths (%+d vs %+d)" net1 net2);
          Chaos
        end
        else if s1.below = s2.below then
          St { s1 with items = List.map2 av_join s1.items s2.items }
        else
          (* same net effect through different demand: widen to all-Any *)
          let m = max s1.below s2.below in
          St { base = s1.base; below = m; items = List.init (net1 + m) (fun _ -> any) }

(* --- the builtin signature table ------------------------------------------ *)

(** Generic operators: operands consumed (top first) and results pushed
    (in push order).  Operators needing constants, marks, control flow or
    polymorphism are handled specially in [exec_special]. *)
let builtin_sig : string -> (cls list * ty list) option = function
  | "pop" -> Some ([ CAny ], [])
  | "mark" | "[" | "<<" -> Some ([], [ MarkT ])
  | "div" -> Some ([ CNum; CNum ], [ Real ])
  | "idiv" | "mod" | "bitshift" -> Some ([ CInt; CInt ], [ Int ])
  | "sqrt" | "ln" | "log" | "sin" | "cos" -> Some ([ CNum ], [ Real ])
  | "atan" | "exp" -> Some ([ CNum; CNum ], [ Real ])
  | "eq" | "ne" -> Some ([ CAny; CAny ], [ Bool ])
  | "dict" -> Some ([ CInt ], [ Dict ])
  | "known" -> Some ([ CKey; CDict ], [ Bool ])
  | "undef" -> Some ([ CKey; CDict ], [])
  | "currentdict" -> Some ([], [ Dict ])
  | "countdictstack" -> Some ([], [ Int ])
  | "type" -> Some ([ CAny ], [ Name ])
  | "cvn" -> Some ([ CStr ], [ Name ])
  | "cvs" -> Some ([ CAny ], [ Str ])
  | "xcheck" -> Some ([ CAny ], [ Bool ])
  | "print" | "SysPrint" -> Some ([ CStr ], [])
  | "=" | "==" -> Some ([ CAny ], [])
  | "pstack" | "flush" -> Some ([], [])
  | "Put" -> Some ([ CStr ], [])
  | "Break" | "Begin" | "PPWidth" -> Some ([ CInt ], [])
  | "End" | "Newline" -> Some ([], [])
  (* debugging extensions *)
  | "Shifted" -> Some ([ CInt; CLoc ], [ Loc ])
  | "Immediate" | "DataLoc" | "CodeLoc" -> Some ([ CInt ], [ Loc ])
  | "LocOffset" -> Some ([ CLoc ], [ Int ])
  | "LocSpace" -> Some ([ CLoc ], [ Str ])
  | "FetchI8" | "FetchU8" | "FetchI16" | "FetchU16" | "FetchI32" | "FetchU32" ->
      Some ([ CLoc; CMem ], [ Int ])
  | "FetchF32" | "FetchF64" | "FetchF80" -> Some ([ CLoc; CMem ], [ Real ])
  | "FetchString" -> Some ([ CInt; CLoc; CMem ], [ Str ])
  | "StoreI8" | "StoreI16" | "StoreI32" | "StoreF32" | "StoreF64" | "StoreF80" ->
      Some ([ CNum; CLoc; CMem ], [])
  | "hexstr" -> Some ([ CInt ], [ Str ])
  | "DeclSubst" | "concatstr" -> Some ([ CStr; CStr ], [ Str ])
  | "LocalMemory" -> Some ([], [ Mem ])
  | "charstr" -> Some ([ CInt ], [ Str ])
  | _ -> None

let special_ops =
  [
    "exch"; "dup"; "copy"; "index"; "roll"; "clear"; "count"; "cleartomark";
    "counttomark"; "add"; "sub"; "mul"; "max"; "min"; "neg"; "abs"; "ceiling";
    "floor"; "round"; "truncate"; "gt"; "ge"; "lt"; "le";
    "and"; "or"; "xor"; "not"; "exec"; "if"; "ifelse"; "for"; "repeat"; "loop";
    "exit"; "stop"; "stopped"; "quit"; "forall"; ">>"; "begin"; "end"; "def";
    "load"; "store"; "where"; "get"; "put"; "length"; "array"; "]"; "aload";
    "astore"; "cvi"; "cvr"; "cvx"; "cvlit"; "Absolute"; "ImmediateCell";
  ]

let builtin_const : string -> av option = function
  | "true" -> Some { t = Bool; c = Some (KB true) }
  | "false" -> Some { t = Bool; c = Some (KB false) }
  | "null" -> Some (of_ty Null)
  | _ -> None

(** Is [name] in the checker's signature table (exhaustiveness over
    [Interp.registered_ops])? *)
let covers name =
  builtin_sig name <> None || List.mem name special_ops || builtin_const name <> None

(* --- environments ---------------------------------------------------------- *)

type env = { mutable env_scopes : (string, av) Hashtbl.t list }

let base_env () = { env_scopes = [ Hashtbl.create 64 ] }

(** Declare a name the surrounding system binds before the checked code
    runs (machine-dependent PostScript, per-target operators, frame
    context).  Goes to the global (bottom) scope. *)
let declare env name v =
  match List.rev env.env_scopes with
  | g :: _ -> Hashtbl.replace g name v
  | [] -> ()

let v_sig consumes produces = { t = Proc; c = Some (KSig (consumes, produces)) }
let v_str ?k () = { t = Str; c = Option.map (fun s -> KS s) k }

(* --- the abstract interpreter ---------------------------------------------- *)

let lookup ctx name =
  let rec go = function
    | [] -> None
    | sc :: rest -> ( match Hashtbl.find_opt sc name with Some v -> Some v | None -> go rest)
  in
  go ctx.scopes

let rec run ctx (st : state) (nodes : Past.node list) : state =
  List.fold_left
    (fun st n -> match st with Chaos | Diverged -> st | St _ -> exec_node ctx st n)
    st nodes

and exec_node ctx (st : state) (n : Past.node) : state =
  let s = match st with St s -> s | _ -> assert false in
  match n.Past.it with
  | Past.PInt k -> St (push { t = Int; c = Some (KI k) } s)
  | Past.PReal _ -> St (push (of_ty Real) s)
  | Past.PStr str -> St (push { t = Str; c = Some (KS str) } s)
  | Past.PLitName nm -> St (push { t = Name; c = Some (KS nm) } s)
  | Past.PProc p -> St (push { t = Proc; c = Some (KP p) } s)
  | Past.PExecName nm -> exec_name ctx st n nm

and exec_name ctx st n name : state =
  match lookup ctx name with
  | Some b -> (
      match b.c with
      | Some (KP p) when b.t = Proc -> inline ctx n st p
      | Some (KSig (cons, prods)) -> apply_sig ctx n name st cons prods
      | _ ->
          if b.t = Proc then Chaos
          else
            let s = match st with St s -> s | _ -> assert false in
            St (push b s))
  | None -> (
      match builtin_const name with
      | Some v ->
          let s = match st with St s -> s | _ -> assert false in
          St (push v s)
      | None -> (
          match builtin_sig name with
          | Some (cons, prods) -> apply_sig ctx n name st cons prods
          | None ->
              if List.mem name special_ops then exec_special ctx n st name
              else begin
                report ctx Unknown_op n (Printf.sprintf "unknown operator '%s'" name);
                Chaos
              end))

and apply_sig ctx n name st consumes produces : state =
  let s = match st with St s -> s | _ -> assert false in
  let vs, s = popn ctx n name (List.length consumes) s in
  List.iter2 (fun c v -> chk ctx n name c v) consumes vs;
  St (List.fold_left (fun s t -> push (of_ty t) s) s produces)

(** Inline a known procedure body at its (dynamic) call site. *)
and inline ctx n st (p : Past.proc) : state =
  if List.mem p.Past.proc_id ctx.inline_stack then Chaos
  else begin
    Hashtbl.replace ctx.analyzed p.Past.proc_id ();
    ctx.inline_stack <- p.Past.proc_id :: ctx.inline_stack;
    let r = run ctx st p.Past.body in
    ctx.inline_stack <- List.tl ctx.inline_stack;
    ignore n;
    r
  end

(** Analyze a stored procedure polymorphically: unknown caller stack, so
    only defects independent of the calling context are reported. *)
and analyze_poly ctx (p : Past.proc) =
  if not (Hashtbl.mem ctx.analyzed p.Past.proc_id) then begin
    let dummy = { Past.it = Past.PProc p; line = 0; col = 0 } in
    ignore (inline ctx dummy poly_state p)
  end

(** Loop fixpoint: iterate [body] from [st0], pushing [iter_push] per
    iteration, until the joined state is stable (or widen to chaos).  The
    result joins the invariant with every state captured at an [exit]. *)
and run_loop ctx n st0 (p : Past.proc) ~(iter_push : ty list) ~(infinite : bool) : state =
  let exits = ref [] in
  ctx.exit_collectors <- exits :: ctx.exit_collectors;
  let rec go st iters =
    match st with
    | Chaos -> Chaos
    | Diverged -> Diverged
    | St s ->
        if iters > 4 then Chaos
        else
          let st_in = St (List.fold_left (fun s t -> push (of_ty t) s) s iter_push) in
          let st' = inline ctx n st_in p in
          let j = join ctx n ~loop:true st st' in
          if state_equal j st then st else go j (iters + 1)
  in
  let inv = go st0 1 in
  ctx.exit_collectors <- List.tl ctx.exit_collectors;
  let inv = if infinite then Diverged else inv in
  List.fold_left (fun a b -> join ctx n ~loop:true a b) inv !exits

and exec_special ctx n st name : state =
  let s = match st with St s -> s | _ -> assert false in
  let pop1 cls s =
    let vs, s = popn ctx n name 1 s in
    let v = List.hd vs in
    chk ctx n name cls v;
    (v, s)
  in
  match name with
  (* ---- stack manipulation ---- *)
  | "exch" ->
      let vs, s = popn ctx n name 2 s in
      let b, a = (List.nth vs 0, List.nth vs 1) in
      St (push a (push b s))
  | "dup" ->
      let v, s = pop1 CAny s in
      St (push v (push v s))
  | "copy" -> (
      let v, s = pop1 CInt s in
      match v.c with
      | Some (KI k) when k < 0 ->
          report ctx Range n "copy: negative count";
          St s
      | Some (KI 0) -> St s
      | Some (KI k) ->
          let j = List.length s.items in
          if j >= k then
            let top = List.filteri (fun i _ -> i < k) s.items in
            St { s with items = top @ s.items }
          else if s.base = Empty then begin
            report ctx Underflow n
              (Printf.sprintf "copy: needs %d operands, stack has %d" k j);
            St s
          end
          else Chaos
      | _ -> Chaos)
  | "index" -> (
      let v, s = pop1 CInt s in
      match v.c with
      | Some (KI k) when k < 0 ->
          report ctx Range n "index: negative index";
          St (push any s)
      | Some (KI k) ->
          let j = List.length s.items in
          if k < j then St (push (List.nth s.items k) s)
          else if s.base = Empty then begin
            report ctx Underflow n
              (Printf.sprintf "index: needs depth %d, stack has %d" (k + 1) j);
            St (push any s)
          end
          else St (push any s)
      | _ -> St (push any s))
  | "roll" -> (
      let vj, s = pop1 CInt s in
      let vn, s =
        let vs, s = popn ctx n name 1 s in
        let v = List.hd vs in
        chk ctx n name CInt v;
        (v, s)
      in
      match vn.c with
      | Some (KI k) when k < 0 ->
          report ctx Range n "roll: negative count";
          St s
      | Some (KI 0) -> St s
      | Some (KI k) ->
          let j = List.length s.items in
          if j >= k then
            let top = List.filteri (fun i _ -> i < k) s.items in
            let rest = List.filteri (fun i _ -> i >= k) s.items in
            let rotated =
              match vj.c with
              | Some (KI jj) ->
                  let arr = Array.of_list (List.rev top) in
                  let out = Array.make k arr.(0) in
                  Array.iteri (fun i v -> out.((((i + jj) mod k) + k) mod k) <- v) arr;
                  List.rev (Array.to_list out)
              | None | Some _ ->
                  let joined = List.fold_left av_join (List.hd top) top in
                  List.init k (fun _ -> joined)
            in
            St { s with items = rotated @ rest }
          else if s.base = Empty then begin
            report ctx Underflow n
              (Printf.sprintf "roll: needs %d operands, stack has %d" k j);
            St s
          end
          else Chaos
      | _ -> Chaos)
  | "clear" -> if s.base = Empty then St { s with items = [] } else Chaos
  | "count" ->
      let v =
        if s.base = Empty then { t = Int; c = Some (KI (List.length s.items)) }
        else of_ty Int
      in
      St (push v s)
  | "cleartomark" -> (
      match split_at_mark s with
      | Some (_, rest) -> St { s with items = rest }
      | None ->
          if s.base = Empty then begin
            report ctx Unmatched_mark n "cleartomark: no mark on the stack";
            St { s with items = [] }
          end
          else Chaos)
  | "counttomark" -> (
      match split_at_mark s with
      | Some (elems, _) -> St (push { t = Int; c = Some (KI (List.length elems)) } s)
      | None ->
          if s.base = Empty then begin
            report ctx Unmatched_mark n "counttomark: no mark on the stack";
            St (push (of_ty Int) s)
          end
          else St (push (of_ty Int) s))
  (* ---- arithmetic with constant folding ---- *)
  | "add" | "sub" | "mul" | "max" | "min" ->
      let vs, s = popn ctx n name 2 s in
      let b, a = (List.nth vs 0, List.nth vs 1) in
      chk ctx n name CNum a;
      chk ctx n name CNum b;
      let v =
        match (a.t, b.t, a.c, b.c) with
        | Int, Int, Some (KI x), Some (KI y) ->
            let k =
              match name with
              | "add" -> x + y
              | "sub" -> x - y
              | "mul" -> x * y
              | "max" -> max x y
              | _ -> min x y
            in
            { t = Int; c = Some (KI k) }
        | Int, Int, _, _ -> of_ty Int
        | Real, _, _, _ | _, Real, _, _ -> of_ty Real
        | _ -> of_ty Num
      in
      St (push v s)
  | "neg" | "abs" | "ceiling" | "floor" | "round" | "truncate" ->
      (* the interpreter keeps an Int an Int and anything else a Real, so
         the abstract result must preserve the operand type — widening a
         definite Real to Num here let "2.5 abs not" slip past the check
         and trap at run time *)
      let vs, s = popn ctx n name 1 s in
      let a = List.hd vs in
      chk ctx n name CNum a;
      let v =
        match (a.t, a.c) with
        | Int, Some (KI x) ->
            let k = match name with "neg" -> -x | "abs" -> abs x | _ -> x in
            { t = Int; c = Some (KI k) }
        | Int, _ -> of_ty Int
        | Real, _ -> of_ty Real
        | _ -> of_ty Num
      in
      St (push v s)
  (* ---- comparison and logic ---- *)
  | "gt" | "ge" | "lt" | "le" ->
      let vs, s = popn ctx n name 2 s in
      let b, a = (List.nth vs 0, List.nth vs 1) in
      let numish t = match t with Int | Real | Num -> true | _ -> false in
      let strish t = match t with Str | Name -> true | _ -> false in
      let ok t = t = Any || numish t || strish t in
      if not (ok a.t) then
        report ctx Type_clash n
          (Printf.sprintf "%s: expected number or string, got %s" name (ty_name a.t))
      else if not (ok b.t) then
        report ctx Type_clash n
          (Printf.sprintf "%s: expected number or string, got %s" name (ty_name b.t))
      else if (numish a.t && strish b.t) || (strish a.t && numish b.t) then
        report ctx Type_clash n
          (Printf.sprintf "%s: cannot compare %s with %s" name (ty_name a.t) (ty_name b.t));
      St (push (of_ty Bool) s)
  | "and" | "or" | "xor" | "not" ->
      let arity = if name = "not" then 1 else 2 in
      let vs, s = popn ctx n name arity s in
      List.iter
        (fun (v : av) ->
          match v.t with
          | Bool | Int | Num | Any -> ()
          | t ->
              report ctx Type_clash n
                (Printf.sprintf "%s: expected boolean or integer, got %s" name (ty_name t)))
        vs;
      let v =
        if List.for_all (fun (v : av) -> v.t = Bool) vs then of_ty Bool
        else if List.for_all (fun (v : av) -> v.t = Int) vs then of_ty Int
        else any
      in
      St (push v s)
  (* ---- control ---- *)
  | "exec" -> (
      let v, s = pop1 CAny s in
      match (v.t, v.c) with
      | Proc, Some (KP p) -> inline ctx n (St s) p
      | (Int | Real | Num | Bool | Dict | Mem | Loc | MarkT | Null | Arr), _ -> St (push v s)
      | _ -> Chaos)
  | "if" -> (
      let p, s = pop1 CProc s in
      let c, s = pop1 CBool s in
      ignore c;
      match p.c with
      | Some (KP body) ->
          let taken = inline ctx n (St s) body in
          join ctx n ~loop:false (St s) taken
      | _ -> if p.t = Proc || p.t = Any then Chaos else St s)
  | "ifelse" -> (
      let p2, s = pop1 CProc s in
      let p1, s = pop1 CProc s in
      let c, s = pop1 CBool s in
      ignore c;
      match (p1.c, p2.c) with
      | Some (KP b1), Some (KP b2) ->
          let s1 = inline ctx n (St s) b1 in
          let s2 = inline ctx n (St s) b2 in
          join ctx n ~loop:false s1 s2
      | _ -> Chaos)
  | "repeat" -> (
      let p, s = pop1 CProc s in
      let cnt, s = pop1 CInt s in
      (match cnt.c with
      | Some (KI k) when k < 0 -> report ctx Range n "repeat: negative count"
      | _ -> ());
      match p.c with
      | Some (KP body) -> run_loop ctx n (St s) body ~iter_push:[] ~infinite:false
      | _ -> Chaos)
  | "for" -> (
      let p, s = pop1 CProc s in
      let _, s = pop1 CNum s in
      let _, s = pop1 CNum s in
      let _, s = pop1 CNum s in
      match p.c with
      | Some (KP body) -> run_loop ctx n (St s) body ~iter_push:[ Num ] ~infinite:false
      | _ -> Chaos)
  | "loop" -> (
      let p, s = pop1 CProc s in
      match p.c with
      | Some (KP body) -> run_loop ctx n (St s) body ~iter_push:[] ~infinite:true
      | _ -> Chaos)
  | "forall" -> (
      let p, s = pop1 CProc s in
      let o, s =
        let vs, s = popn ctx n name 1 s in
        let v = List.hd vs in
        (match v.t with
        | Arr | Proc | Str | Name | Dict | Any -> ()
        | t ->
            report ctx Type_clash n
              (Printf.sprintf "forall: expected array, string or dict, got %s" (ty_name t)));
        (v, s)
      in
      match p.c with
      | Some (KP body) -> (
          match o.t with
          | Arr | Proc -> run_loop ctx n (St s) body ~iter_push:[ Any ] ~infinite:false
          | Str -> run_loop ctx n (St s) body ~iter_push:[ Int ] ~infinite:false
          | Dict -> run_loop ctx n (St s) body ~iter_push:[ Name; Any ] ~infinite:false
          | _ ->
              (* element shape unknown: still look inside the body *)
              analyze_poly ctx body;
              Chaos)
      | _ -> Chaos)
  | "exit" ->
      (match ctx.exit_collectors with
      | c :: _ -> c := St s :: !c
      | [] -> ());
      Diverged
  | "stop" ->
      ctx.saw_stop <- true;
      Diverged
  | "quit" -> Diverged
  | "stopped" -> (
      let p, s = pop1 CProc s in
      match p.c with
      | Some (KP body) -> (
          let saved = ctx.saw_stop in
          ctx.saw_stop <- false;
          let st' = inline ctx n (St s) body in
          let stopped_inside = ctx.saw_stop in
          ctx.saw_stop <- saved;
          if stopped_inside then Chaos
          else
            match st' with
            | St s' -> St (push (of_ty Bool) s')
            | other -> other)
      | _ -> Chaos)
  (* ---- dictionaries and scoping ---- *)
  | ">>" -> (
      match split_at_mark s with
      | Some (elems, rest) ->
          if List.length elems mod 2 <> 0 then
            report ctx Dict_access n ">>: odd number of key/value operands"
          else
            (* [elems] is top-first; keys sit at even offsets from the mark *)
            List.iteri
              (fun i (v : av) ->
                if i mod 2 = 0 && not (cls_admits CKey v.t) then
                  report ctx Dict_access n
                    (Printf.sprintf ">>: bad dictionary key of type %s" (ty_name v.t)))
              (List.rev elems);
          St (push (of_ty Dict) { s with items = rest })
      | None ->
          if s.base = Empty then begin
            report ctx Unmatched_mark n ">>: no mark on the stack";
            St (push (of_ty Dict) { s with items = [] })
          end
          else Chaos)
  | "]" -> (
      match split_at_mark s with
      | Some (_, rest) -> St (push (of_ty Arr) { s with items = rest })
      | None ->
          if s.base = Empty then begin
            report ctx Unmatched_mark n "]: no mark on the stack";
            St (push (of_ty Arr) { s with items = [] })
          end
          else Chaos)
  | "begin" ->
      let _, s = pop1 CDict s in
      ctx.scopes <- Hashtbl.create 8 :: ctx.scopes;
      St s
  | "end" ->
      (match ctx.scopes with
      | _ :: (_ :: _ as rest) -> ctx.scopes <- rest
      | _ -> ());
      St s
  | "def" -> (
      let v, s = pop1 CAny s in
      let k, s = pop1 CKey s in
      (match key_const k with
      | Some key -> (
          match ctx.scopes with sc :: _ -> Hashtbl.replace sc key v | [] -> ())
      | None -> ());
      St s)
  | "store" -> (
      let v, s = pop1 CAny s in
      let k, s = pop1 CKey s in
      (match key_const k with
      | Some key ->
          let rec go = function
            | [] -> (
                match ctx.scopes with sc :: _ -> Hashtbl.replace sc key v | [] -> ())
            | sc :: rest -> if Hashtbl.mem sc key then Hashtbl.replace sc key v else go rest
          in
          go ctx.scopes
      | None -> ());
      St s)
  | "load" -> (
      let k, s = pop1 CKey s in
      match key_const k with
      | Some key -> (
          match lookup ctx key with
          | Some b -> St (push b s)
          | None -> St (push any s))
      | None -> St (push any s))
  | "where" ->
      let _, _ = pop1 CKey s in
      Chaos
  (* ---- polymorphic get/put/length ---- *)
  | "get" -> (
      let k, s = pop1 CAny s in
      let o, s =
        let vs, s = popn ctx n name 1 s in
        (List.hd vs, s)
      in
      match o.t with
      | Dict ->
          chk ctx n "get" CKey k;
          St (push any s)
      | Arr | Proc ->
          chk ctx n "get" CInt k;
          (match k.c with
          | Some (KI i) when i < 0 -> report ctx Range n "get: negative index"
          | _ -> ());
          St (push any s)
      | Str ->
          chk ctx n "get" CInt k;
          St (push (of_ty Int) s)
      | Any -> St (push any s)
      | t ->
          report ctx Type_clash n
            (Printf.sprintf "get: expected dict, array or string, got %s" (ty_name t));
          St (push any s)
  )
  | "put" -> (
      let _, s = pop1 CAny s in
      let k, s =
        let vs, s = popn ctx n name 1 s in
        (List.hd vs, s)
      in
      let o, s =
        let vs, s = popn ctx n name 1 s in
        (List.hd vs, s)
      in
      match o.t with
      | Dict ->
          chk ctx n "put" CKey k;
          St s
      | Arr | Proc ->
          chk ctx n "put" CInt k;
          St s
      | Str | Name ->
          report ctx Dict_access n "put: strings are immutable in this dialect";
          St s
      | Any -> St s
      | t ->
          report ctx Type_clash n
            (Printf.sprintf "put: expected dict or array, got %s" (ty_name t));
          St s)
  | "length" ->
      let o, s =
        let vs, s = popn ctx n name 1 s in
        (List.hd vs, s)
      in
      (match o.t with
      | Dict | Arr | Proc | Str | Name | Any -> ()
      | t ->
          report ctx Type_clash n
            (Printf.sprintf "length: expected dict, array or string, got %s" (ty_name t)));
      St (push (of_ty Int) s)
  (* ---- arrays ---- *)
  | "array" ->
      let v, s = pop1 CInt s in
      (match v.c with
      | Some (KI k) when k < 0 -> report ctx Range n "array: negative length"
      | _ -> ());
      St (push (of_ty Arr) s)
  | "aload" | "astore" ->
      let _, _ = pop1 CArr s in
      Chaos
  (* ---- conversions ---- *)
  | "cvi" | "cvr" ->
      let v, s =
        let vs, s = popn ctx n name 1 s in
        (List.hd vs, s)
      in
      (match v.t with
      | Int | Real | Num | Str | Any -> ()
      | t ->
          report ctx Type_clash n
            (Printf.sprintf "%s: expected number or string, got %s" name (ty_name t)));
      St (push (of_ty (if name = "cvi" then Int else Real)) s)
  | "cvx" ->
      let v, s = pop1 CAny s in
      let v = if v.t = Arr then { v with t = Proc } else v in
      St (push v s)
  | "cvlit" ->
      let v, s = pop1 CAny s in
      let v = if v.t = Proc then { t = Arr; c = None } else v in
      St (push v s)
  (* ---- debugging extensions needing constants ---- *)
  | "Absolute" ->
      let sp, s = pop1 CStr s in
      let _, s = pop1 CInt s in
      (match sp.c with
      | Some (KS str) when String.length str <> 1 ->
          report ctx Range n (Printf.sprintf "Absolute: bad space (%s)" str)
      | _ -> ());
      St (push (of_ty Loc) s)
  | "ImmediateCell" ->
      let v, s = pop1 CInt s in
      (match v.c with
      | Some (KI w) when w < 1 || w > 16 ->
          report ctx Range n "ImmediateCell: width out of range"
      | _ -> ());
      St (push (of_ty Loc) s)
  | _ -> assert false

(** The constant key text of a [def]/[store]/[load] operand, when known. *)
and key_const (k : av) : string option =
  match k.c with
  | Some (KS s) -> Some s
  | Some (KI i) -> Some (string_of_int i)
  | Some (KB b) -> Some (string_of_bool b)
  | _ -> None

(* --- entry points ----------------------------------------------------------- *)

(** Check a program.  [deep] additionally analyzes, polymorphically, every
    procedure literal that was stored but never executed during the
    toplevel pass (symbol-table [where] clauses, printing procedures).
    The environment accumulates definitions, so several sources can be
    checked in sequence against one [env]. *)
let check_program ?env ?(deep = false) ?(name = "%pslint") (src : string) : finding list =
  let env = match env with Some e -> e | None -> base_env () in
  let ctx =
    {
      findings = [];
      seen = Hashtbl.create 32;
      scopes = env.env_scopes;
      inline_stack = [];
      analyzed = Hashtbl.create 64;
      exit_collectors = [];
      saw_stop = false;
      file = name;
    }
  in
  let f = Value.file_of_string name src in
  (try
     let prog = Past.parse_file f in
     ignore (run ctx empty_state prog);
     if deep then
       List.iter (fun p -> analyze_poly ctx p) (Past.all_procs prog)
   with Value.Error (err_name, detail) ->
     let line, col = Value.file_token_pos f in
     let fnd =
       { kind = Syntax; file = name; line; col; msg = err_name ^ ": " ^ detail }
     in
     ctx.findings <- fnd :: ctx.findings);
  env.env_scopes <- ctx.scopes;
  List.rev ctx.findings

(** Base + the shared prelude processed (its definitions in scope). *)
let prelude_env () =
  let env = base_env () in
  ignore (check_program ~env ~name:"%prelude" Ldb_pscript.Prelude.source);
  env

(** What the debugger binds before symbol tables or expression code run:
    the machine-dependent PostScript names, the per-target operators, and
    the per-frame context. *)
let declare_debugger env =
  declare env "Regset0" (v_str ~k:"r" ());
  declare env "Fregset" (v_str ~k:"f" ());
  declare env "Xregset" (v_str ~k:"x" ());
  declare env "FrameLoc" (v_sig [ CInt ] [ Loc ]);
  declare env "FloatFetch" (v_sig [ CLoc; CMem ] [ Real ]);
  declare env "FloatStore" (v_sig [ CNum; CLoc; CMem ] []);
  declare env "NumRegs" (of_ty Int);
  declare env "RegName" (v_sig [ CInt ] [ Str ]);
  declare env "LazyData" (v_sig [ CInt; CStr ] [ Loc ]);
  declare env "GlobalLoc" (v_sig [ CStr ] [ Loc ]);
  declare env "GlobalCodeLoc" (v_sig [ CStr ] [ Loc ]);
  declare env "GlobalAddr" (v_sig [ CStr ] [ Int ]);
  declare env "FrameBase" (of_ty Int);
  declare env "FrameMem" (of_ty Mem)

let debugger_env () =
  let env = prelude_env () in
  declare_debugger env;
  env
