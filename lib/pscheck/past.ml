(** Positioned abstract syntax for the static checker (pslint).

    The checker re-scans source with the dialect's own tokenizer
    ([Ldb_pscript.Scan]) but keeps every token's line/column so findings can
    name the exact spot.  Procedure bodies get a unique id so the abstract
    interpreter can memoize analyses and guard against recursion. *)

open Ldb_pscript

type node = { it : item; line : int; col : int }

and item =
  | PInt of int
  | PReal of float
  | PStr of string
  | PLitName of string   (** /name *)
  | PExecName of string
  | PProc of proc

and proc = { body : node list; proc_id : int }

(** Scan a whole file into a positioned token tree.  Raises [Value.Error]
    with a syntaxerror on malformed input, like the interpreter would. *)
let parse_file (f : Value.file) : node list =
  let next_id = ref 0 in
  let rec seq ~in_proc acc =
    match Scan.token f with
    | Scan.TEof ->
        if in_proc then Value.err "syntaxerror" "unterminated procedure"
        else List.rev acc
    | Scan.TProcEnd ->
        if in_proc then List.rev acc else Value.err "syntaxerror" "unmatched }"
    | tok ->
        let line, col = Value.file_token_pos f in
        let it =
          match tok with
          | Scan.TNum v -> (
              match v.Value.v with
              | Value.Int n -> PInt n
              | Value.Real r -> PReal r
              | _ -> assert false)
          | Scan.TStr s -> PStr s
          | Scan.TName (n, true) -> PLitName n
          | Scan.TName (n, false) -> PExecName n
          | Scan.TProcStart ->
              incr next_id;
              let id = !next_id in
              PProc { body = seq ~in_proc:true []; proc_id = id }
          | Scan.TEof | Scan.TProcEnd -> assert false
        in
        seq ~in_proc ({ it; line; col } :: acc)
  in
  seq ~in_proc:false []

let parse_string ?(name = "%pslint") (s : string) : node list =
  parse_file (Value.file_of_string name s)

(** Every procedure literal in a program, outermost first. *)
let all_procs (prog : node list) : proc list =
  let acc = ref [] in
  let rec node n = match n.it with PProc p -> proc p | _ -> ()
  and proc p =
    acc := p :: !acc;
    List.iter node p.body
  in
  List.iter node prog;
  List.rev !acc
