(** In-memory duplex byte channels standing in for the paper's sockets.

    A channel endpoint reads bytes its peer wrote.  Reads never block:
    when bytes are missing, the endpoint invokes its registered {e pump} —
    a closure that gives the peer a chance to produce output (for the
    debugger's endpoint, the pump runs the target's nub).  This is the
    discrete-event analogue of blocking on a socket while the other process
    runs.

    Failure semantics are differentiated so callers can pick a recovery:

    - {!Disconnected}: the link itself is down (either side called
      [disconnect], or a fault cut it mid-message).  Retrying a read is
      pointless; the caller must reattach.
    - {!Timeout}: the link is up but the peer produced nothing for
      [deadline] consecutive pumps.  The caller may retry (the transport
      layer re-sends the request with a longer deadline).

    Endpoints survive a peer "crash": [disconnect] drops the link but the
    nub's endpoint object remains, matching the paper's requirement that
    the nub preserve target state across debugger crashes.

    For fault-injection (see {!Faultchan}) an endpoint carries an optional
    [on_send] hook: when present it is invoked {e instead of} enqueuing the
    bytes, and decides what actually reaches the peer via {!deliver}. *)

exception Disconnected
exception Timeout

type fifo = { q : Buffer.t; mutable rpos : int }

let fifo () = { q = Buffer.create 256; rpos = 0 }
let fifo_len f = Buffer.length f.q - f.rpos

let fifo_compact f =
  if f.rpos > 65536 && f.rpos = Buffer.length f.q then begin
    Buffer.clear f.q;
    f.rpos <- 0
  end

let fifo_read f n =
  let avail = fifo_len f in
  let take = min n avail in
  let s = Buffer.sub f.q f.rpos take in
  f.rpos <- f.rpos + take;
  fifo_compact f;
  s

let fifo_peek f n =
  let take = min n (fifo_len f) in
  Buffer.sub f.q f.rpos take

let fifo_skip f n =
  f.rpos <- f.rpos + min n (fifo_len f);
  fifo_compact f

(** Link state shared by both endpoints: a disconnect from either side
    takes the whole link down, and the peer can observe it directly
    (rather than inferring it from a stall). *)
type link = { mutable up : bool }

type endpoint = {
  mutable rx : fifo;  (** bytes the peer wrote for us *)
  mutable tx : fifo;  (** bytes we write for the peer *)
  link : link;
  mutable pump : unit -> unit;  (** let the peer make progress *)
  mutable on_send : (string -> unit) option;
      (** fault-injection hook: replaces direct delivery when set *)
  mutable deadline : int;
      (** consecutive stalled pumps tolerated before {!Timeout} *)
  label : string;
}

let default_deadline = 2

(** Create a connected pair of endpoints. *)
let pair ?(labels = ("a", "b")) () =
  let ab = fifo () and ba = fifo () in
  let link = { up = true } in
  let mk rx tx label =
    { rx; tx; link; pump = (fun () -> ()); on_send = None;
      deadline = default_deadline; label }
  in
  (mk ba ab (fst labels), mk ab ba (snd labels))

let set_pump e f = e.pump <- f
let pump_of e = e.pump
let set_on_send e f = e.on_send <- f
let set_deadline e d = e.deadline <- max 0 d
let is_connected e = e.link.up

(** Sever the link.  Both sides observe it: sends raise {!Disconnected}
    immediately, reads raise it once the already-buffered bytes run out. *)
let disconnect e = e.link.up <- false

(** Enqueue bytes for the peer, bypassing the [on_send] hook — this is
    what the hook itself uses to deliver (possibly mangled) bytes. *)
let deliver e (s : string) = Buffer.add_string e.tx.q s

let send e (s : string) =
  if not e.link.up then raise Disconnected;
  match e.on_send with None -> deliver e s | Some hook -> hook s

(** Bytes currently readable without pumping. *)
let available e = fifo_len e.rx

(** Up to [n] readable bytes, without consuming them. *)
let peek e n = fifo_peek e.rx n

(** Discard up to [n] readable bytes. *)
let skip e n = fifo_skip e.rx n

(** Read exactly [n] bytes, pumping the peer as needed.  Raises
    {!Disconnected} when the link is down and the bytes can never arrive,
    {!Timeout} when the link is up but the peer stays silent for more than
    [deadline] (default: the endpoint's own deadline) consecutive
    unproductive pumps. *)
let recv_exactly ?deadline e n =
  let deadline = match deadline with Some d -> d | None -> e.deadline in
  let buf = Buffer.create n in
  let stalled = ref 0 in
  while Buffer.length buf < n do
    let need = n - Buffer.length buf in
    let got = fifo_read e.rx need in
    Buffer.add_string buf got;
    if Buffer.length buf < n then begin
      if not e.link.up then raise Disconnected;
      let before = fifo_len e.rx in
      e.pump ();
      if fifo_len e.rx = before then begin
        incr stalled;
        if !stalled > deadline then
          if e.link.up then raise Timeout else raise Disconnected
      end
      else stalled := 0
    end
  done;
  Buffer.contents buf

let recv_u8 e = Char.code (recv_exactly e 1).[0]
