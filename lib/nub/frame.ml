(** Length-prefixed, checksummed, sequence-numbered frames over {!Chan}.

    The raw protocol ({!Proto}) is a stream of opcode-prefixed messages;
    a single flipped bit in a length byte used to desynchronize the
    stream forever, and truncation was indistinguishable from a slow
    peer.  Every message therefore travels inside a frame:

    {v
      +------+------+---------+---------+---------+=============+
      | 0xF5 | 0xDB | seq u32 | len u32 | crc u32 | len payload |
      +------+------+---------+---------+---------+=============+
    v}

    all fields little-endian; [crc] is the CRC-32 of seq, len, and the
    payload.  The two magic bytes exist for {e resynchronization}: a
    receiver that finds garbage (a truncated frame's tail, a corrupted
    header) scans forward for the next magic, so one damaged frame can
    never poison the rest of the stream.  [seq] implements at-most-once
    request semantics: the debugger retries a lost request under the same
    sequence number, the nub caches its last reply and retransmits it
    instead of re-executing (re-running a [Continue] would skip a
    breakpoint), and stale duplicate replies are discarded by number.

    [try_recv] never blocks and consumes bytes only when it can make a
    definite decision, so a frame that is merely {e incomplete} stays
    buffered until its remaining bytes (or the retry that follows them)
    arrive. *)

open Ldb_util

let magic0 = '\xf5'
let magic1 = '\xdb'
let header_len = 14

(** Upper bound on a frame payload.  Protocol messages are tiny (the
    largest is an error string); anything claiming to be bigger is a
    corrupted length field, and treating it as garbage keeps a bit-flip
    from stalling the stream while the receiver waits for megabytes that
    will never come. *)
let max_payload = Proto.max_string + 64

type frame = { fr_seq : int; fr_payload : string }

let u32_le (v : int) =
  let b = Bytes.create 4 in
  Endian.set_u32 Little b 0 (Int32.of_int v);
  Bytes.to_string b

let get_u32 s pos =
  Int32.to_int (Endian.get_u32 Little (Bytes.of_string (String.sub s pos 4)) 0)
  land 0xffffffff

(** Wrap [payload] in a frame. *)
let seal ~(seq : int) (payload : string) : string =
  if String.length payload > max_payload then
    invalid_arg "Frame.seal: payload too long";
  let head = u32_le seq ^ u32_le (String.length payload) in
  let crc =
    let c = Crc32.update (Crc32.init ()) head ~pos:0 ~len:8 in
    Crc32.finish (Crc32.update c payload ~pos:0 ~len:(String.length payload))
  in
  Printf.sprintf "%c%c" magic0 magic1 ^ head ^ u32_le crc ^ payload

let send (ep : Chan.endpoint) ~(seq : int) (payload : string) : unit =
  Chan.send ep (seal ~seq payload)

(* --- receiving --------------------------------------------------------- *)

type recv_status =
  [ `Frame of frame  (** a complete, checksum-valid frame was consumed *)
  | `Corrupt of string
    (** damaged bytes were found and (partially) discarded; calling again
        resumes scanning for the next frame *)
  | `Incomplete
    (** not enough bytes buffered for a decision; nothing was consumed
        beyond leading garbage *) ]

(** Non-blocking receive over whatever is buffered. *)
let try_recv (ep : Chan.endpoint) : recv_status =
  let rec scan () =
    let avail = Chan.available ep in
    if avail = 0 then `Incomplete
    else
      let buf = Chan.peek ep avail in
      (* discard garbage in front of the next magic *)
      let start =
        let rec find i =
          if i >= avail then avail
          else if
            buf.[i] = magic0 && (i + 1 >= avail || buf.[i + 1] = magic1)
          then i
          else find (i + 1)
        in
        find 0
      in
      if start > 0 then begin
        Chan.skip ep start;
        scan ()
      end
      else if avail < header_len then `Incomplete
      else if buf.[1] <> magic1 then begin
        (* lone magic byte: not a frame start *)
        Chan.skip ep 1;
        scan ()
      end
      else
        let seq = get_u32 buf 2 in
        let len = get_u32 buf 6 in
        let crc = get_u32 buf 10 in
        if len > max_payload then begin
          (* corrupted length field: this cannot be a real header.  Skip
             past the magic and rescan — a frame swallowed by the bogus
             length is still buffered. *)
          Chan.skip ep 2;
          `Corrupt (Printf.sprintf "frame claims %d-byte payload" len)
        end
        else if avail < header_len + len then `Incomplete
        else begin
          let check =
            let c = Crc32.update (Crc32.init ()) buf ~pos:2 ~len:8 in
            Crc32.finish (Crc32.update c buf ~pos:header_len ~len)
          in
          if check <> crc then begin
            (* bad checksum: the length field itself may be lying, so
               consume only the magic and let the scanner resynchronize
               on whatever follows. *)
            Chan.skip ep 2;
            `Corrupt (Printf.sprintf "frame %d fails checksum" seq)
          end
          else begin
            Chan.skip ep (header_len + len);
            `Frame { fr_seq = seq; fr_payload = String.sub buf header_len len }
          end
        end
  in
  scan ()

(** Blocking receive: pump the peer until a frame (or damage) shows up.
    Returns [Error] on a corrupt frame so the caller can retry the
    request.  Raises {!Chan.Timeout} after [deadline] unproductive pumps
    and {!Chan.Disconnected} when the link is down and the buffered bytes
    cannot form a frame. *)
let recv ?deadline (ep : Chan.endpoint) : (frame, string) result =
  let deadline = match deadline with Some d -> d | None -> 8 in
  let stalled = ref 0 in
  let rec loop () =
    match try_recv ep with
    | `Frame f -> Ok f
    | `Corrupt m -> Error m
    | `Incomplete ->
        if not (Chan.is_connected ep) then raise Chan.Disconnected;
        let before = Chan.available ep in
        (Chan.pump_of ep) ();
        if Chan.available ep = before then begin
          incr stalled;
          if !stalled > deadline then
            if before > 0 then begin
              (* bytes are buffered but never complete a frame: a
                 corrupted length field is promising a payload that will
                 not come.  Discard the lying header's magic and rescan —
                 anything genuine behind it is recovered. *)
              Chan.skip ep 2;
              stalled := 0
            end
            else if Chan.is_connected ep then raise Chan.Timeout
            else raise Chan.Disconnected
        end
        else stalled := 0;
        loop ()
  in
  loop ()
