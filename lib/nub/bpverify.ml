(** Static verifier for breakpoint-condition bytecode — the eBPF
    discipline applied to {!Bpcode}: the debugger refuses to ship, and
    the nub refuses to run, any program this module has not proved safe.

    The verifier is an abstract interpreter in the pslint style: one
    forward pass over the instruction array, tracking the exact operand
    stack depth and an abstract value for every slot, merging states at
    jump targets.  Because only forward jumps are accepted, program
    order is already a topological order of the control-flow graph, so a
    single pass sees every predecessor of an instruction before the
    instruction itself, and termination of accepted programs is
    structural — no loop can even be expressed past the verifier.

    What acceptance proves, and the evaluator's faults it rules out:

    - {e bounded stack}: every path reaching an instruction does so at
      one exact depth, within 0..{!Bpcode.max_stack} — no
      [Stack_underflow] or [Stack_overflow];
    - {e confined reads}: every memory read is either an absolute
      address provably inside the mapped code or data segment, or a
      small offset from the stack or frame pointer saved in the stop
      context — no wild reads of unmapped space;
    - {e type-correct operands}: a comparison result (a 0/1 boolean) is
      never dereferenced as an address;
    - {e finite fuel}: the sum of per-instruction costs bounds every
      acyclic path, and it must fit the evaluator's fuel — no [Fuel];
    - {e tame control flow}: every jump lands on an instruction
      boundary in (here, end] — no [Bad_jump], no backward edges.

    The one fault class verification cannot exclude is a refused load
    on the {e live} target (the stack pointer is only known at stop
    time); the evaluator treats it conservatively, and the segment
    bounds above make it unreachable for compiler-produced programs. *)

open Ldb_machine

(* --- findings ----------------------------------------------------------- *)

type finding =
  | Underflow of { at : int; want : int; have : int }
  | Overflow of { at : int; depth : int }
  | Bad_reg of { at : int; reg : int; nregs : int }
  | Wild_read of { at : int; space : char; what : string }
  | Type_clash of { at : int; what : string }
  | Backward_jump of { at : int; target : int }
  | Jump_out_of_range of { at : int; target : int }
  | Depth_mismatch of { at : int; a : int; b : int }
  | Cost_bound of { cost : int; limit : int }
  | Bad_result of { depth : int }
  | Zero_divisor of { at : int }
  | Empty_program

let finding_to_string = function
  | Underflow { at; want; have } ->
      Printf.sprintf "insn %d: stack underflow (needs %d operands, has %d)" at want have
  | Overflow { at; depth } ->
      Printf.sprintf "insn %d: stack overflow (depth %d exceeds %d)" at depth
        Bpcode.max_stack
  | Bad_reg { at; reg; nregs } ->
      Printf.sprintf "insn %d: register %d outside target's 0..%d" at reg (nregs - 1)
  | Wild_read { at; space; what } ->
      Printf.sprintf "insn %d: wild read in space '%c' (%s)" at space what
  | Type_clash { at; what } -> Printf.sprintf "insn %d: type clash (%s)" at what
  | Backward_jump { at; target } ->
      Printf.sprintf "insn %d: backward jump to %d (loops are not verifiable)" at target
  | Jump_out_of_range { at; target } ->
      Printf.sprintf "insn %d: jump to %d outside the program" at target
  | Depth_mismatch { at; a; b } ->
      Printf.sprintf "insn %d: paths meet at stack depths %d and %d" at a b
  | Cost_bound { cost; limit } ->
      Printf.sprintf "static cost %d exceeds the fuel bound %d" cost limit
  | Bad_result { depth } ->
      Printf.sprintf "program ends at stack depth %d, not 1" depth
  | Zero_divisor { at } -> Printf.sprintf "insn %d: division by constant zero" at
  | Empty_program -> "empty program"

let pp_finding ppf f = Fmt.string ppf (finding_to_string f)

(* --- abstract values ----------------------------------------------------- *)

(** One operand-stack slot.  [Cst] and [Regoff] are the shapes addresses
    take (the compiler emits globals as constants and frame locals as
    sp/fp plus a constant); [Bool] is a comparison result; [Num] is
    anything else. *)
type slot =
  | Cst of int32
  | Regoff of int * int32   (** saved register + compile-time offset *)
  | Bool
  | Num

let slot_lub a b =
  match (a, b) with
  | Cst x, Cst y when Int32.equal x y -> Cst x
  | Regoff (r, x), Regoff (s, y) when r = s && Int32.equal x y -> a
  | Bool, Bool -> Bool
  | _ -> Num

(* --- segment bounds ------------------------------------------------------ *)

(** Frame locals live at small offsets from the saved sp/fp; anything
    farther afield must come in as an absolute address the bounds below
    can check. *)
let max_frame_offset = 4096

let seg_bounds (space : char) : int * int =
  let open Ram.Layout in
  if space = 'c' then (code_base, data_base) else (data_base, size)

let unsigned (v : int32) = Int32.to_int v land 0xffffffff

(** May a load of [size] bytes at abstract address [slot] proceed?
    Findings come back with [at = 0]; the caller stamps the real index. *)
let check_read (tg : Target.t) ~space ~size (addr : slot) : (unit, finding) result =
  match addr with
  | Cst a ->
      let lo, hi = seg_bounds space in
      let a = unsigned a in
      if a >= lo && a + size <= hi then Ok ()
      else
        Error
          (Wild_read
             { at = 0; space; what = Printf.sprintf "address %#x outside %#x..%#x" a lo hi })
  | Regoff (r, off) ->
      let frameish = r = tg.Target.sp || tg.Target.fp = Some r in
      let off = Int32.to_int off in
      if space <> 'd' then
        Error (Wild_read { at = 0; space; what = "register-relative code read" })
      else if not frameish then
        Error
          (Wild_read
             { at = 0; space;
               what = Printf.sprintf "relative to %s, not sp/fp" (Target.reg_name tg r) })
      else if off < -max_frame_offset || off > max_frame_offset then
        Error
          (Wild_read
             { at = 0; space;
               what = Printf.sprintf "frame offset %d beyond ±%d" off max_frame_offset })
      else Ok ()
  | Bool -> Error (Type_clash { at = 0; what = "boolean used as address" })
  | Num -> Error (Wild_read { at = 0; space; what = "unbounded address" })

let at_of at = function
  | Wild_read w -> Wild_read { w with at }
  | Type_clash t -> Type_clash { t with at }
  | f -> f

(* --- abstract transfer --------------------------------------------------- *)

let abstract_binop op (a : slot) (b : slot) : slot =
  match (op, a, b) with
  | _, Cst x, Cst y -> Cst (Bpcode.eval_binop op x y)
  | Bpcode.Add, Regoff (r, o), Cst c | Bpcode.Add, Cst c, Regoff (r, o) ->
      Regoff (r, Int32.add o c)
  | Bpcode.Sub, Regoff (r, o), Cst c -> Regoff (r, Int32.sub o c)
  | _ -> Num

(* --- the verifier -------------------------------------------------------- *)

let insn_cost = function Bpcode.Load _ -> Bpcode.load_cost | _ -> 1

(** Verify [p] against the target description.  Returns the (possibly
    empty) list of findings, in program order; an empty list is the
    proof-of-safety the debugger and the nub both insist on. *)
let verify (tg : Target.t) (p : Bpcode.prog) : finding list =
  let n = Array.length p in
  if n = 0 then [ Empty_program ]
  else begin
    let findings = ref [] in
    let found f = findings := f :: !findings in
    (* states.(i): the abstract stack (top first) on entry to insn i, or
       None while unreached; states.(n) is the halt state *)
    let states : slot list option array = Array.make (n + 1) None in
    states.(0) <- Some [];
    let merge ~at target (stack : slot list) =
      match states.(target) with
      | None -> states.(target) <- Some stack
      | Some prev ->
          if List.length prev <> List.length stack then
            found (Depth_mismatch { at; a = List.length prev; b = List.length stack })
          else states.(target) <- Some (List.map2 slot_lub prev stack)
    in
    let nregs = Target.nregs tg in
    for i = 0 to n - 1 do
      match states.(i) with
      | None -> ()   (* unreachable (e.g. after an unconditional jump) *)
      | Some stack ->
          let depth = List.length stack in
          let pop1 k =
            match stack with
            | v :: rest -> k v rest
            | [] -> found (Underflow { at = i; want = 1; have = 0 })
          in
          let pop2 k =
            match stack with
            | b :: a :: rest -> k a b rest
            | _ -> found (Underflow { at = i; want = 2; have = depth })
          in
          let push v rest =
            if List.length rest + 1 > Bpcode.max_stack then
              found (Overflow { at = i; depth = List.length rest + 1 })
            else merge ~at:i (i + 1) (v :: rest)
          in
          let jump_target off k =
            let t = i + 1 + off in
            if t < 0 || t > n then found (Jump_out_of_range { at = i; target = t })
            else if t <= i then found (Backward_jump { at = i; target = t })
            else k t
          in
          (match p.(i) with
          | Bpcode.Push v -> push (Cst v) stack
          | Bpcode.Load_reg r ->
              if r < 0 || r >= nregs then found (Bad_reg { at = i; reg = r; nregs })
              else
                let v =
                  if r = tg.Target.sp || tg.Target.fp = Some r then Regoff (r, 0l)
                  else Num
                in
                push v stack
          | Bpcode.Load_pc -> push Num stack
          | Bpcode.Load { space; size; _ } ->
              pop1 (fun addr rest ->
                  (match check_read tg ~space ~size addr with
                  | Ok () -> ()
                  | Error f -> found (at_of i f));
                  push Num rest)
          | Bpcode.Bin op ->
              pop2 (fun a b rest ->
                  (match op with
                  | Bpcode.Divs | Bpcode.Divu | Bpcode.Rems | Bpcode.Remu -> (
                      match b with
                      | Cst 0l -> found (Zero_divisor { at = i })
                      | _ -> ())
                  | _ -> ());
                  push (abstract_binop op a b) rest)
          | Bpcode.Cmp _ -> pop2 (fun _ _ rest -> push Bool rest)
          | Bpcode.Not -> pop1 (fun _ rest -> push Bool rest)
          | Bpcode.Jz off | Bpcode.Jnz off ->
              pop1 (fun _ rest ->
                  jump_target off (fun t -> merge ~at:i t rest);
                  merge ~at:i (i + 1) rest)
          | Bpcode.Jmp off -> jump_target off (fun t -> merge ~at:i t stack))
    done;
    (* the halt state must hold exactly the answer *)
    (match states.(n) with
    | Some [ _ ] -> ()
    | Some stack -> found (Bad_result { depth = List.length stack })
    | None -> found (Bad_result { depth = 0 }));
    (* any acyclic path visits each instruction at most once, so the sum
       of costs bounds every execution the evaluator can take *)
    let cost = Array.fold_left (fun acc insn -> acc + insn_cost insn) 0 p in
    if cost > Bpcode.max_fuel then found (Cost_bound { cost; limit = Bpcode.max_fuel });
    List.rev !findings
  end

(** Convenience: does the verifier accept [p] outright? *)
let accepts (tg : Target.t) (p : Bpcode.prog) : bool = verify tg p = []
