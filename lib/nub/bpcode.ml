(** Breakpoint-condition bytecode: a tiny stack machine the nub can run
    at a trap site to decide whether a conditional breakpoint really hit.

    The design follows the eBPF discipline: programs are compact byte
    strings, the decoder is {e total} (any byte string either decodes to
    a well-formed instruction array or yields [Error] — no exceptions),
    and nothing is executed that the static verifier ({!Bpverify}) has
    not proved safe.  The evaluator still carries a fuel counter and
    checks every step dynamically: verification is a proof, fuel is the
    belt to its suspenders, and a hostile peer who skips verification
    merely earns a fault, never a wedged target.

    Semantics are chosen to be {e total and deterministic} so that the
    debugger-side and nub-side evaluations of the same program are
    byte-identical: all arithmetic is two's-complement on [int32],
    shifts mask their count to 0..31, and division or remainder by zero
    yields 0 (the eBPF convention) rather than trapping.  Loaded values
    are canonical little-endian-decoded int32s on both sides.

    Jumps are relative {e instruction} offsets (not byte offsets) over
    the decoded instruction array, so a jump can never land mid-
    instruction.  Offsets are signed so hostile programs can {e express}
    backward jumps — the verifier rejects them, which is what makes
    termination structural for everything it accepts. *)

open Ldb_util

(* --- limits ------------------------------------------------------------ *)

(** Encoded programs are bounded so a corrupted length field cannot
    demand an absurd allocation, and so the verifier's static cost bound
    is meaningful. *)
let max_prog_bytes = 1024

(** Decoded programs are bounded in instruction count. *)
let max_insns = 128

(** Operand-stack slots available to a program. *)
let max_stack = 32

(** Dynamic fuel: total evaluation steps permitted, where a memory load
    costs {!load_cost} steps and everything else costs 1.  The verifier
    proves accepted programs stay under this statically. *)
let max_fuel = 4096

(** Relative cost of a memory load (it crosses the target description
    and possibly a wire). *)
let load_cost = 8

(* --- instructions ------------------------------------------------------ *)

type binop =
  | Add | Sub | Mul
  | Divs | Divu | Rems | Remu   (** division by zero yields 0 *)
  | And | Or | Xor
  | Shl | Shrs | Shru           (** count masked to 0..31 *)

type relop = Eq | Ne | Lt | Le | Gt | Ge

type insn =
  | Push of int32                  (** push an immediate *)
  | Load_reg of int                (** push saved register [r] *)
  | Load_pc                        (** push the saved pc *)
  | Load of { space : char; size : int; signed : bool }
      (** pop an address, push the [size]-byte value at it in [space]
          ('c' or 'd'), sign- or zero-extended to 32 bits *)
  | Bin of binop                   (** pop b, pop a, push a op b *)
  | Cmp of { rel : relop; signed : bool }  (** pop b, pop a, push 0/1 *)
  | Not                            (** pop v, push (v = 0) as 0/1 *)
  | Jz of int                      (** pop v; if v = 0, pc += 1 + offset *)
  | Jnz of int                     (** pop v; if v <> 0, pc += 1 + offset *)
  | Jmp of int                     (** pc += 1 + offset, unconditionally *)

type prog = insn array

(* --- encoding ---------------------------------------------------------- *)

exception Encode_error of string

let binop_code = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Divs -> 3 | Divu -> 4 | Rems -> 5
  | Remu -> 6 | And -> 7 | Or -> 8 | Xor -> 9 | Shl -> 10 | Shrs -> 11
  | Shru -> 12

let binop_of_code = function
  | 0 -> Some Add | 1 -> Some Sub | 2 -> Some Mul | 3 -> Some Divs
  | 4 -> Some Divu | 5 -> Some Rems | 6 -> Some Remu | 7 -> Some And
  | 8 -> Some Or | 9 -> Some Xor | 10 -> Some Shl | 11 -> Some Shrs
  | 12 -> Some Shru | _ -> None

let relop_code = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5

let relop_of_code = function
  | 0 -> Some Eq | 1 -> Some Ne | 2 -> Some Lt | 3 -> Some Le | 4 -> Some Gt
  | 5 -> Some Ge | _ -> None

let i32_le (v : int32) =
  let b = Bytes.create 4 in
  Endian.set_u32 Little b 0 v;
  Bytes.to_string b

let i16_le (v : int) =
  if v < -32768 || v > 32767 then
    raise (Encode_error (Printf.sprintf "jump offset %d outside i16" v));
  let b = Bytes.create 2 in
  Endian.set_u16 Little b 0 (v land 0xffff);
  Bytes.to_string b

let encode_insn = function
  | Push v -> "P" ^ i32_le v
  | Load_reg r ->
      if r < 0 || r > 255 then raise (Encode_error "register out of u8 range");
      Printf.sprintf "r%c" (Char.chr r)
  | Load_pc -> "x"
  | Load { space; size; signed } ->
      if size <> 1 && size <> 2 && size <> 4 then
        raise (Encode_error (Printf.sprintf "load size %d not 1/2/4" size));
      if space <> 'c' && space <> 'd' then
        raise (Encode_error (Printf.sprintf "load space %C" space));
      Printf.sprintf "m%c%c%c" space (Char.chr size) (if signed then '\x01' else '\x00')
  | Bin op -> Printf.sprintf "a%c" (Char.chr (binop_code op))
  | Cmp { rel; signed } ->
      Printf.sprintf "c%c%c" (Char.chr (relop_code rel)) (if signed then '\x01' else '\x00')
  | Not -> "!"
  | Jz off -> "z" ^ i16_le off
  | Jnz off -> "n" ^ i16_le off
  | Jmp off -> "j" ^ i16_le off

let encode (p : prog) : string =
  if Array.length p > max_insns then
    raise (Encode_error (Printf.sprintf "%d instructions exceed limit %d"
                           (Array.length p) max_insns));
  let s = String.concat "" (Array.to_list (Array.map encode_insn p)) in
  if String.length s > max_prog_bytes then
    raise (Encode_error (Printf.sprintf "%d encoded bytes exceed limit %d"
                           (String.length s) max_prog_bytes));
  s

(* --- decoding (total) --------------------------------------------------- *)

(* the same cursor discipline as {!Proto}: [Bad] never escapes [decode] *)
exception Bad of string

type cursor = { src : string; mutable pos : int }

let need c n what =
  if c.pos + n > String.length c.src then raise (Bad ("truncated " ^ what))

let u8 c what =
  need c 1 what;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let i32 c what =
  need c 4 what;
  let v = Endian.get_u32 Little (Bytes.of_string (String.sub c.src c.pos 4)) 0 in
  c.pos <- c.pos + 4;
  v

let i16 c what =
  need c 2 what;
  let v = Endian.get_u16 Little (Bytes.of_string (String.sub c.src c.pos 2)) 0 in
  c.pos <- c.pos + 2;
  if v >= 0x8000 then v - 0x10000 else v

let decode_insn c : insn =
  match Char.chr (u8 c "opcode") with
  | 'P' -> Push (i32 c "push immediate")
  | 'r' -> Load_reg (u8 c "register number")
  | 'x' -> Load_pc
  | 'm' ->
      let space = Char.chr (u8 c "load space") in
      if space <> 'c' && space <> 'd' then
        raise (Bad (Printf.sprintf "load space %C not 'c'/'d'" space));
      let size = u8 c "load size" in
      if size <> 1 && size <> 2 && size <> 4 then
        raise (Bad (Printf.sprintf "load size %d not 1/2/4" size));
      let signed =
        match u8 c "load signedness" with
        | 0 -> false
        | 1 -> true
        | f -> raise (Bad (Printf.sprintf "load signedness flag %d" f))
      in
      Load { space; size; signed }
  | 'a' -> (
      let code = u8 c "binop code" in
      match binop_of_code code with
      | Some op -> Bin op
      | None -> raise (Bad (Printf.sprintf "binop code %d" code)))
  | 'c' -> (
      let code = u8 c "relop code" in
      let signed =
        match u8 c "compare signedness" with
        | 0 -> false
        | 1 -> true
        | f -> raise (Bad (Printf.sprintf "compare signedness flag %d" f))
      in
      match relop_of_code code with
      | Some rel -> Cmp { rel; signed }
      | None -> raise (Bad (Printf.sprintf "relop code %d" code)))
  | '!' -> Not
  | 'z' -> Jz (i16 c "jump offset")
  | 'n' -> Jnz (i16 c "jump offset")
  | 'j' -> Jmp (i16 c "jump offset")
  | op -> raise (Bad (Printf.sprintf "unknown bpcode opcode %C" op))

(** Decode a complete program.  Total: any string that is not the exact
    encoding of a program within the size limits yields [Error]. *)
let decode (s : string) : (prog, string) result =
  if String.length s > max_prog_bytes then
    Error (Printf.sprintf "program of %d bytes exceeds limit %d" (String.length s)
             max_prog_bytes)
  else
    let c = { src = s; pos = 0 } in
    let acc = ref [] in
    let n = ref 0 in
    match
      while c.pos < String.length s do
        incr n;
        if !n > max_insns then raise (Bad (Printf.sprintf "more than %d instructions" max_insns));
        acc := decode_insn c :: !acc
      done
    with
    | () -> Ok (Array.of_list (List.rev !acc))
    | exception Bad m -> Error m

(* --- printing ----------------------------------------------------------- *)

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Divs -> "divs" | Divu -> "divu"
  | Rems -> "rems" | Remu -> "remu" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shrs -> "shrs" | Shru -> "shru"

let relop_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp_insn ppf = function
  | Push v -> Fmt.pf ppf "push %ld" v
  | Load_reg r -> Fmt.pf ppf "reg %d" r
  | Load_pc -> Fmt.string ppf "pc"
  | Load { space; size; signed } ->
      Fmt.pf ppf "load.%c %d%s" space size (if signed then "s" else "u")
  | Bin op -> Fmt.string ppf (binop_name op)
  | Cmp { rel; signed } ->
      Fmt.pf ppf "cmp.%s%s" (relop_name rel) (if signed then "" else "u")
  | Not -> Fmt.string ppf "not"
  | Jz off -> Fmt.pf ppf "jz %+d" off
  | Jnz off -> Fmt.pf ppf "jnz %+d" off
  | Jmp off -> Fmt.pf ppf "jmp %+d" off

let pp_prog ppf (p : prog) =
  Array.iteri (fun i insn -> Fmt.pf ppf "%3d: %a@\n" i pp_insn insn) p

let to_string (p : prog) = Fmt.str "%a" pp_prog p

(* --- evaluation --------------------------------------------------------- *)

(** How the evaluator sees the stopped target.  The nub implements this
    over its own RAM and saved context; the debugger implements it over
    the wire abstract memory — both decode values from canonical
    little-endian bytes, which is what makes the two sites agree. *)
type env = {
  rd_reg : int -> int32;   (** saved general register *)
  rd_pc : unit -> int32;   (** saved pc *)
  load : space:char -> addr:int -> size:int -> signed:bool -> (int32, string) result;
}

type fault =
  | Stack_underflow
  | Stack_overflow
  | Fuel
  | Bad_jump of int        (** target instruction index *)
  | Load_fault of string

let fault_to_string = function
  | Stack_underflow -> "stack underflow"
  | Stack_overflow -> "stack overflow"
  | Fuel -> "out of fuel"
  | Bad_jump pc -> Printf.sprintf "jump to instruction %d" pc
  | Load_fault m -> "load fault: " ^ m

(* total int32 arithmetic: wrap-around, masked shifts, div/0 = 0 *)
let eval_binop op (a : int32) (b : int32) : int32 =
  let open Int32 in
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Divs -> if equal b 0l then 0l else div a b
  | Divu -> if equal b 0l then 0l else unsigned_div a b
  | Rems -> if equal b 0l then 0l else rem a b
  | Remu -> if equal b 0l then 0l else unsigned_rem a b
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Shl -> shift_left a (to_int (logand b 31l))
  | Shrs -> shift_right a (to_int (logand b 31l))
  | Shru -> shift_right_logical a (to_int (logand b 31l))

let eval_cmp rel ~signed (a : int32) (b : int32) : int32 =
  let c = if signed then Int32.compare a b else Int32.unsigned_compare a b in
  let hit =
    match rel with
    | Eq -> c = 0 | Ne -> c <> 0 | Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0
    | Ge -> c >= 0
  in
  if hit then 1l else 0l

(** Run [p] against [env].  The result is the truth of the final value:
    a program "hits" when it leaves a nonzero value on the stack.  Every
    dynamic hazard — underflow, overflow, fuel exhaustion, wild jump, a
    refused load — is a [fault], never an exception; verified programs
    fault only through [Load_fault], and compiled conditions not even
    that (the verifier confines their reads to mapped segments). *)
let eval ?(fuel = max_fuel) (env : env) (p : prog) : (bool, fault) result =
  let n = Array.length p in
  let stack = Array.make max_stack 0l in
  let exception Fault of fault in
  let sp = ref 0 in
  let push v =
    if !sp >= max_stack then raise (Fault Stack_overflow);
    stack.(!sp) <- v;
    incr sp
  in
  let pop () =
    if !sp <= 0 then raise (Fault Stack_underflow);
    decr sp;
    stack.(!sp)
  in
  let fuel = ref fuel in
  let burn cost = fuel := !fuel - cost; if !fuel < 0 then raise (Fault Fuel) in
  let jump pc off =
    let pc' = pc + 1 + off in
    (* falling off the end exactly is a normal halt; anywhere else is wild *)
    if pc' < 0 || pc' > n then raise (Fault (Bad_jump pc'));
    pc'
  in
  let rec step pc =
    if pc = n then
      (* halted: the program's answer is the top of stack *)
      if !sp = 0 then raise (Fault Stack_underflow) else pop () <> 0l
    else if pc < 0 || pc > n then raise (Fault (Bad_jump pc))
    else begin
      let next =
        match p.(pc) with
        | Push v -> burn 1; push v; pc + 1
        | Load_reg r -> burn 1; push (env.rd_reg r); pc + 1
        | Load_pc -> burn 1; push (env.rd_pc ()); pc + 1
        | Load { space; size; signed } -> (
            burn load_cost;
            let addr = Int32.to_int (pop ()) land 0xffffffff in
            match env.load ~space ~addr ~size ~signed with
            | Ok v -> push v; pc + 1
            | Error m -> raise (Fault (Load_fault m)))
        | Bin op ->
            burn 1;
            let b = pop () in
            let a = pop () in
            push (eval_binop op a b);
            pc + 1
        | Cmp { rel; signed } ->
            burn 1;
            let b = pop () in
            let a = pop () in
            push (eval_cmp rel ~signed a b);
            pc + 1
        | Not -> burn 1; push (if pop () = 0l then 1l else 0l); pc + 1
        | Jz off -> burn 1; if pop () = 0l then jump pc off else pc + 1
        | Jnz off -> burn 1; if pop () <> 0l then jump pc off else pc + 1
        | Jmp off -> burn 1; jump pc off
      in
      step next
    end
  in
  match step 0 with v -> Ok v | exception Fault f -> Error f
