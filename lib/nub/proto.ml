(** The little-endian communication protocol between ldb and the nub
    (Sec. 4.2).

    Every message is one opcode byte followed by fixed-width little-endian
    fields.  Values fetched from target memory travel in little-endian
    order {e regardless of host and target byte order} — the nub performs
    the target-order access and re-serializes; this is what lets the same
    debugger code drive big- and little-endian targets.

    Messages are {e pure byte strings} here; putting them on a wire —
    framing, sequencing, checksumming — is {!Frame}'s job, and the
    decoders below are total: [decode_request] and [decode_reply] return
    [Error] on any malformed input (unknown opcode, out-of-range size
    field, truncated or over-long body) and never raise, so a corrupted
    frame that slips past the checksum still cannot crash either end.
    The codec is validated by qcheck round-trip and never-raises
    properties in the test suite.

    Deliberately absent, as in the paper: breakpoint {e planting}
    messages.  Breakpoints are implemented entirely in the debugger with
    ordinary fetches and stores.  [Step] is the optional protocol
    extension the paper's Sec. 7.1 anticipates: a nub may not offer it,
    and the debugger must keep functioning when it doesn't.  The one
    breakpoint-adjacent extension is the conditional pair
    [Set_cond]/[Clear_cond]: a verified {!Bpcode} program shipped to the
    nub so a condition in a hot loop is decided target-side instead of
    costing a round trip per trap (see {!Bpverify}). *)

open Ldb_util

type request =
  | Hello
  | Fetch of { space : char; addr : int; size : int }
      (** [size] in 1..16 bytes; the reply carries the value little-endian *)
  | Store of { space : char; addr : int; bytes : string }
  | Continue  (** restore registers from the context and resume *)
  | Step      (** protocol extension (Sec. 7.1): restore, execute one
                  instruction, stop again.  Nubs may not support it; the
                  debugger must keep working without it. *)
  | Kill
  | Detach    (** break the connection but preserve target state *)
  | Dump of { offset : int }
      (** request a window of the target's core dump starting at byte
          [offset]; the dump is serialized once per stop and served in
          {!Core_chunk} pieces of at most {!max_core_chunk} bytes *)
  | Set_cond of { addr : int; prog : string }
      (** attach a verified {!Bpcode} program to the breakpoint at
          [addr]: on a trap there, the nub evaluates the condition and
          resumes silently unless it holds.  The nub re-verifies the
          program on receipt — a hostile debugger cannot ship unproved
          code — and answers {!Stored} or {!Nub_error}. *)
  | Clear_cond of { addr : int }
      (** forget the condition at [addr]; traps there report again *)
  | Record of { spacing : int }
      (** start recording an execution trace at the current stop, taking
          a checkpoint roughly every [spacing] instructions (see
          {!Trace}); a previous recording is discarded.  Valid only while
          the target is stopped — answered with {!Stored} or
          {!Nub_error}. *)
  | Fetch_trace of { offset : int }
      (** request a window of the serialized trace starting at byte
          [offset]; served in {!Trace_chunk} pieces like a core dump *)

type stop_state =
  | St_running
  | St_stopped of { signal : int; code : int; ctx_addr : int }
  | St_exited of int

type reply =
  | Hello_reply of { arch : string; state : stop_state; can_step : bool }
  | Fetched of string
  | Stored
  | Event of { signal : int; code : int; ctx_addr : int }
      (** unsolicited: the target hit a signal *)
  | Exit_event of int
  | Nub_error of string
  | Core_chunk of { total : int; offset : int; chunk : string }
      (** a window of the serialized core dump: [total] is the whole
          dump's size, [chunk] the bytes starting at [offset] *)
  | Cond_hit of { signal : int; code : int; ctx_addr : int; suppressed : int }
      (** unsolicited, like {!Event}, but from a conditional breakpoint
          whose condition held; [suppressed] counts the trap visits the
          nub resumed silently since the last report *)
  | Trace_chunk of { total : int; offset : int; chunk : string }
      (** a window of the serialized execution trace, shaped exactly
          like {!Core_chunk} *)

(* --- field limits ------------------------------------------------------ *)

(** Fetch and Store move at most this many bytes per request; larger
    transfers are split by the caller.  A decoded size outside 1..16 is a
    protocol violation, not a request the nub should try to honor. *)
let max_transfer = 16

(** Strings (architecture names, error messages) are bounded so a
    corrupted length field cannot demand an absurd allocation. *)
let max_string = 4096

(** Core-dump windows per {!Core_chunk} reply; kept well under
    [max_string] (and the frame payload limit) so a dump transfer is just
    an ordinary sequence of framed RPCs. *)
let max_core_chunk = 2048

(** Condition programs per {!Set_cond}: bounded like {!max_string}, and
    aligned with {!Bpcode.max_prog_bytes} so a length the bytecode layer
    would refuse never even decodes. *)
let max_cond_prog = 1024

(** Trace windows per {!Trace_chunk} reply, bounded like
    {!max_core_chunk} for the same reason. *)
let max_trace_chunk = 2048

(* --- serialization ---------------------------------------------------- *)

exception Encode_error of string

let u32_to_le (v : int) =
  let b = Bytes.create 4 in
  Endian.set_u32 Little b 0 (Int32.of_int v);
  Bytes.to_string b

let str16 s =
  if String.length s > max_string then
    raise (Encode_error (Printf.sprintf "string of %d bytes exceeds protocol limit"
                           (String.length s)));
  u32_to_le (String.length s) ^ s

let check_transfer what n =
  if n < 1 || n > max_transfer then
    raise (Encode_error (Printf.sprintf "%s size %d outside 1..%d" what n max_transfer))

let encode_request (r : request) : string =
  match r with
  | Hello -> "H"
  | Fetch { space; addr; size } ->
      check_transfer "fetch" size;
      Printf.sprintf "F%c" space ^ u32_to_le addr ^ String.make 1 (Char.chr size)
  | Store { space; addr; bytes } ->
      check_transfer "store" (String.length bytes);
      Printf.sprintf "S%c" space ^ u32_to_le addr
      ^ String.make 1 (Char.chr (String.length bytes))
      ^ bytes
  | Continue -> "C"
  | Step -> "T"
  | Kill -> "K"
  | Detach -> "D"
  | Dump { offset } -> "U" ^ u32_to_le offset
  | Set_cond { addr; prog } ->
      let n = String.length prog in
      if n < 1 || n > max_cond_prog then
        raise (Encode_error (Printf.sprintf "condition program of %d bytes outside 1..%d"
                               n max_cond_prog));
      "B" ^ u32_to_le addr ^ u32_to_le n ^ prog
  | Clear_cond { addr } -> "Q" ^ u32_to_le addr
  | Record { spacing } ->
      if spacing < 1 then raise (Encode_error "checkpoint spacing must be positive");
      "R" ^ u32_to_le spacing
  | Fetch_trace { offset } -> "G" ^ u32_to_le offset

let encode_reply (r : reply) : string =
  match r with
  | Hello_reply { arch; state; can_step } ->
      let st =
        match state with
        | St_running -> "r" ^ u32_to_le 0 ^ u32_to_le 0 ^ u32_to_le 0
        | St_stopped { signal; code; ctx_addr } ->
            "s" ^ u32_to_le signal ^ u32_to_le code ^ u32_to_le ctx_addr
        | St_exited status -> "x" ^ u32_to_le status ^ u32_to_le 0 ^ u32_to_le 0
      in
      "h" ^ st ^ (if can_step then "S" else "-") ^ str16 arch
  | Fetched bytes ->
      if String.length bytes > 255 then raise (Encode_error "fetched value too long");
      "f" ^ String.make 1 (Char.chr (String.length bytes)) ^ bytes
  | Stored -> "a"
  | Event { signal; code; ctx_addr } ->
      "e" ^ u32_to_le signal ^ u32_to_le code ^ u32_to_le ctx_addr
  | Exit_event status -> "X" ^ u32_to_le status
  | Nub_error msg -> "E" ^ str16 msg
  | Core_chunk { total; offset; chunk } ->
      if String.length chunk > max_core_chunk then
        raise (Encode_error "core chunk too long");
      "u" ^ u32_to_le total ^ u32_to_le offset ^ str16 chunk
  | Cond_hit { signal; code; ctx_addr; suppressed } ->
      "j" ^ u32_to_le signal ^ u32_to_le code ^ u32_to_le ctx_addr ^ u32_to_le suppressed
  | Trace_chunk { total; offset; chunk } ->
      if String.length chunk > max_trace_chunk then
        raise (Encode_error "trace chunk too long");
      "t" ^ u32_to_le total ^ u32_to_le offset ^ str16 chunk

(* --- deserialization (total) ------------------------------------------- *)

(* Internal cursor over a complete message.  [Bad] never escapes the
   decoders below. *)
exception Bad of string

type cursor = { src : string; mutable pos : int }

let need c n what =
  if c.pos + n > String.length c.src then raise (Bad ("truncated " ^ what))

let u8 c what =
  need c 1 what;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let chr c what = Char.chr (u8 c what)

let u32 c what =
  need c 4 what;
  let v = Int32.to_int (Endian.get_u32 Little (Bytes.of_string (String.sub c.src c.pos 4)) 0) in
  c.pos <- c.pos + 4;
  v

let take c n what =
  if n < 0 then raise (Bad ("negative length for " ^ what));
  need c n what;
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

let str c what =
  let n = u32 c what in
  if n < 0 || n > max_string then raise (Bad ("bad string length for " ^ what));
  take c n what

let finish c (v : 'a) : 'a =
  if c.pos <> String.length c.src then raise (Bad "trailing bytes");
  v

let run (f : cursor -> 'a) (s : string) : ('a, string) result =
  let c = { src = s; pos = 0 } in
  match finish c (f c) with
  | v -> Ok v
  | exception Bad m -> Error m

(** Decode a complete request message.  Total: any input that is not the
    exact encoding of a request yields [Error]. *)
let decode_request : string -> (request, string) result =
  run (fun c ->
      match chr c "request opcode" with
      | 'H' -> Hello
      | 'F' ->
          let space = chr c "fetch space" in
          let addr = u32 c "fetch address" in
          let size = u8 c "fetch size" in
          if size < 1 || size > max_transfer then raise (Bad "fetch size outside 1..16");
          Fetch { space; addr; size }
      | 'S' ->
          let space = chr c "store space" in
          let addr = u32 c "store address" in
          let len = u8 c "store size" in
          if len < 1 || len > max_transfer then raise (Bad "store size outside 1..16");
          Store { space; addr; bytes = take c len "store bytes" }
      | 'C' -> Continue
      | 'T' -> Step
      | 'K' -> Kill
      | 'D' -> Detach
      | 'U' -> Dump { offset = u32 c "dump offset" }
      | 'B' ->
          let addr = u32 c "condition address" in
          let len = u32 c "condition length" in
          if len < 1 || len > max_cond_prog then
            raise (Bad (Printf.sprintf "condition length outside 1..%d" max_cond_prog));
          Set_cond { addr; prog = take c len "condition program" }
      | 'Q' -> Clear_cond { addr = u32 c "condition address" }
      | 'R' ->
          let spacing = u32 c "record spacing" in
          if spacing < 1 then raise (Bad "record spacing must be positive");
          Record { spacing }
      | 'G' -> Fetch_trace { offset = u32 c "trace offset" }
      | op -> raise (Bad (Printf.sprintf "unknown request opcode %C" op)))

(** Decode a complete reply message.  Total, like {!decode_request}. *)
let decode_reply : string -> (reply, string) result =
  run (fun c ->
      match chr c "reply opcode" with
      | 'h' ->
          let st = chr c "hello state" in
          let a = u32 c "hello a" in
          let b = u32 c "hello b" in
          let cx = u32 c "hello c" in
          let can_step =
            match chr c "hello step flag" with
            | 'S' -> true
            | '-' -> false
            | f -> raise (Bad (Printf.sprintf "bad step flag %C" f))
          in
          let arch = str c "hello arch" in
          let state =
            match st with
            | 'r' -> St_running
            | 's' -> St_stopped { signal = a; code = b; ctx_addr = cx }
            | 'x' -> St_exited a
            | s -> raise (Bad (Printf.sprintf "bad hello state %C" s))
          in
          Hello_reply { arch; state; can_step }
      | 'f' ->
          let len = u8 c "fetched length" in
          Fetched (take c len "fetched bytes")
      | 'a' -> Stored
      | 'e' ->
          let signal = u32 c "event signal" in
          let code = u32 c "event code" in
          let ctx_addr = u32 c "event context" in
          Event { signal; code; ctx_addr }
      | 'X' -> Exit_event (u32 c "exit status")
      | 'E' -> Nub_error (str c "error message")
      | 'u' ->
          let total = u32 c "core total" in
          let offset = u32 c "core offset" in
          let chunk = str c "core chunk" in
          if String.length chunk > max_core_chunk then
            raise (Bad "core chunk exceeds limit");
          Core_chunk { total; offset; chunk }
      | 'j' ->
          let signal = u32 c "hit signal" in
          let code = u32 c "hit code" in
          let ctx_addr = u32 c "hit context" in
          let suppressed = u32 c "hit suppressed count" in
          Cond_hit { signal; code; ctx_addr; suppressed }
      | 't' ->
          let total = u32 c "trace total" in
          let offset = u32 c "trace offset" in
          let chunk = str c "trace chunk" in
          if String.length chunk > max_trace_chunk then
            raise (Bad "trace chunk exceeds limit");
          Trace_chunk { total; offset; chunk }
      | op -> raise (Bad (Printf.sprintf "unknown reply opcode %C" op)))

let pp_request ppf = function
  | Hello -> Fmt.string ppf "Hello"
  | Fetch { space; addr; size } -> Fmt.pf ppf "Fetch %c:%#x/%d" space addr size
  | Store { space; addr; bytes } ->
      Fmt.pf ppf "Store %c:%#x/%d" space addr (String.length bytes)
  | Continue -> Fmt.string ppf "Continue"
  | Step -> Fmt.string ppf "Step"
  | Kill -> Fmt.string ppf "Kill"
  | Detach -> Fmt.string ppf "Detach"
  | Dump { offset } -> Fmt.pf ppf "Dump@%#x" offset
  | Set_cond { addr; prog } -> Fmt.pf ppf "SetCond %#x/%d" addr (String.length prog)
  | Clear_cond { addr } -> Fmt.pf ppf "ClearCond %#x" addr
  | Record { spacing } -> Fmt.pf ppf "Record/%d" spacing
  | Fetch_trace { offset } -> Fmt.pf ppf "FetchTrace@%#x" offset

let pp_reply ppf = function
  | Hello_reply { arch; _ } -> Fmt.pf ppf "HelloReply(%s)" arch
  | Fetched b -> Fmt.pf ppf "Fetched/%d" (String.length b)
  | Stored -> Fmt.string ppf "Stored"
  | Event { signal; _ } -> Fmt.pf ppf "Event(sig %d)" signal
  | Exit_event s -> Fmt.pf ppf "Exit(%d)" s
  | Nub_error m -> Fmt.pf ppf "Error(%s)" m
  | Core_chunk { total; offset; chunk } ->
      Fmt.pf ppf "Core %d+%d/%d" offset (String.length chunk) total
  | Cond_hit { signal; suppressed; _ } ->
      Fmt.pf ppf "CondHit(sig %d, %d suppressed)" signal suppressed
  | Trace_chunk { total; offset; chunk } ->
      Fmt.pf ppf "Trace %d+%d/%d" offset (String.length chunk) total
