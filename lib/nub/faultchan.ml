(** Deterministic fault injection for the ldb↔nub link.

    Wraps a {!Chan} endpoint pair: every message either passes through or
    suffers one of the classic network faults, chosen by a PRNG seeded by
    the test, so every failure mode is exactly reproducible.

    Fault classes:
    - {b Drop}: the message vanishes.
    - {b Corrupt}: one random bit is flipped (the frame checksum must
      catch it).
    - {b Truncate}: only a strict prefix is delivered; the rest never
      arrives.
    - {b Duplicate}: the message is delivered twice (the sequence number
      must make the second copy harmless).
    - {b Stall}: delivery is postponed for a number of pump ticks — the
      link looks alive but silent, exercising the timeout/retry path.
    - {b Disconnect}: a prefix is delivered and the link is cut
      mid-message — the debugger-crash/network-partition scenario; only
      reattaching to the surviving nub recovers.

    The injector hooks both endpoints' [on_send], so faults hit requests
    and replies alike, and it piggybacks a {e tick} on the debugger
    endpoint's pump to age stalled messages. *)

type kind = Drop | Corrupt | Truncate | Duplicate | Stall | Disconnect

let kind_name = function
  | Drop -> "drop"
  | Corrupt -> "corrupt"
  | Truncate -> "truncate"
  | Duplicate -> "duplicate"
  | Stall -> "stall"
  | Disconnect -> "disconnect"

let all_kinds = [ Drop; Corrupt; Truncate; Duplicate; Stall; Disconnect ]

type profile = {
  fp_rate : float;       (** probability that a given message is faulted *)
  fp_kinds : kind list;  (** fault classes to draw from *)
  fp_max_faults : int;   (** injection budget; negative = unlimited *)
  fp_stall_ticks : int;  (** pump ticks a stalled message waits *)
}

let profile ?(rate = 0.05) ?(kinds = all_kinds) ?(max_faults = -1) ?(stall_ticks = 6) () =
  { fp_rate = rate; fp_kinds = kinds; fp_max_faults = max_faults;
    fp_stall_ticks = stall_ticks }

type t = {
  rng : Random.State.t;
  prof : profile;
  mutable armed : bool;           (** disarmed injectors pass everything through *)
  mutable injected : int;         (** faults actually injected *)
  mutable messages : int;         (** messages that crossed the link *)
  mutable delayed : (int ref * Chan.endpoint * string) list;
  mutable log : (kind * int) list;  (** injected (kind, message length), newest first *)
}

let injected t = t.injected
let messages t = t.messages
let log t = List.rev t.log

(** Turn injection on or off; a disarmed injector still counts messages.
    Useful for letting a session connect cleanly before the weather
    turns. *)
let set_armed t b = t.armed <- b

let budget_left t = t.prof.fp_max_faults < 0 || t.injected < t.prof.fp_max_faults

let flip_one_bit rng s =
  let b = Bytes.of_string s in
  let i = Random.State.int rng (Bytes.length b) in
  let bit = 1 lsl Random.State.int rng 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
  Bytes.to_string b

(** Age stalled messages by one tick, delivering the expired ones. *)
let tick t =
  let due, still =
    List.partition
      (fun (left, _, _) ->
        decr left;
        !left <= 0)
      t.delayed
  in
  t.delayed <- still;
  List.iter (fun (_, ep, bytes) -> Chan.deliver ep bytes) (List.rev due)

let inject t (sender : Chan.endpoint) (bytes : string) =
  t.messages <- t.messages + 1;
  if
    (not t.armed)
    || String.length bytes = 0
    || (not (budget_left t))
    || t.prof.fp_kinds = []
    || Random.State.float t.rng 1.0 >= t.prof.fp_rate
  then Chan.deliver sender bytes
  else begin
    let kind = List.nth t.prof.fp_kinds (Random.State.int t.rng (List.length t.prof.fp_kinds)) in
    t.injected <- t.injected + 1;
    t.log <- (kind, String.length bytes) :: t.log;
    match kind with
    | Drop -> ()
    | Corrupt -> Chan.deliver sender (flip_one_bit t.rng bytes)
    | Truncate ->
        Chan.deliver sender (String.sub bytes 0 (Random.State.int t.rng (String.length bytes)))
    | Duplicate ->
        Chan.deliver sender bytes;
        Chan.deliver sender bytes
    | Stall ->
        t.delayed <- (ref (max 1 t.prof.fp_stall_ticks), sender, bytes) :: t.delayed
    | Disconnect ->
        Chan.deliver sender (String.sub bytes 0 (Random.State.int t.rng (String.length bytes)));
        Chan.disconnect sender
  end

(** Interpose on an endpoint pair.  [dbg] is the debugger-side endpoint
    (its pump is wrapped to age stalled messages); [nub] is the
    target-side endpoint.  Install {e after} the pumps are wired. *)
let install ?(armed = true) ~(seed : int) (prof : profile) ~(dbg : Chan.endpoint)
    ~(nub : Chan.endpoint) : t =
  let t =
    { rng = Random.State.make [| seed; 0xfa017 |]; prof; armed; injected = 0; messages = 0;
      delayed = []; log = [] }
  in
  Chan.set_on_send dbg (Some (inject t dbg));
  Chan.set_on_send nub (Some (inject t nub));
  let old_pump = Chan.pump_of dbg in
  Chan.set_pump dbg (fun () ->
      tick t;
      old_pump ());
  t
