(** The debug nub (Sec. 4.2): a small servant loaded with every target
    program.  It installs itself as the signal handler, and when the target
    stops it saves the machine state into a {e context} in the target's own
    data memory, notifies the debugger, and services fetch and store
    requests until told to continue, terminate, or break the connection.

    The nub knows nothing about breakpoint {e planting} — that is
    implemented entirely in the debugger with ordinary fetches and
    stores, exactly as in the paper.  Single-stepping is the optional
    protocol extension of Sec. 7.1: a nub may advertise it ([can_step])
    or not, and the debugger works either way.

    The conditional-breakpoint extension ([Set_cond]/[Clear_cond]) lets
    the debugger attach a {!Bpcode} program to a trap address: when the
    target traps there, the nub evaluates the condition against the
    saved context and resumes silently when it is false, so a condition
    in a hot loop costs zero round trips per miss.  The nub {e re-runs
    the static verifier} ({!Bpverify}) on every program it receives —
    it never trusts the debugger's claim of safety, so a hostile or
    buggy peer cannot wedge the target with an unbounded or wild
    program.  Evaluation faults (a refused load on the live target) are
    conservative: the nub stops and reports, never loops blind.
    Silent resumes are charged against the same per-continue fuel
    budget as ordinary execution, so a satisfied-never condition in an
    infinite loop still surfaces as SIGINT fuel exhaustion.

    Machine dependence is confined to:
    - the context layout (a sigcontext works on SIM-MIPS/SIM-SPARC; the
      other two use their own representations — see [Target]);
    - 80-bit float save/restore on SIM-68020 (the "assembly code");
    - the SIM-MIPS word-swap quirk: the kernel saves floating-point
      registers in the context with the least significant word first, so
      the nub must swap words on 8-byte fetches and stores that hit the
      saved-FP area (the paper's footnote 3). *)

open Ldb_machine

(** Recording state for the record/replay subsystem.  Events accumulate
    newest-first; the serialized form is rebuilt lazily and cached keyed
    by the event count, so polling [Fetch_trace] after every stop costs
    one serialization per new event batch rather than per chunk. *)
type recorder = {
  rc_spacing : int;  (** requested instructions between checkpoints *)
  mutable rc_events : Trace.event list;  (** reversed stream order *)
  mutable rc_nev : int;  (** total events recorded (cache key) *)
  mutable rc_nreq : int;  (** state-changing requests among them *)
  mutable rc_since : int;  (** instructions retired since last checkpoint *)
  mutable rc_blocked : bool;
      (** a checkpoint came due at a point where the CPU held a pending
          delayed load (SIM-MIPS): dumping would have committed it early
          and changed delay-slot semantics, so it was deferred *)
  mutable rc_cache : (int * string) option;
}

type t = {
  proc : Proc.t;
  mutable conn : Chan.endpoint option;
  mutable resume : bool;  (** a Continue arrived and the target should run *)
  mutable step : bool;    (** a Step arrived: execute exactly one instruction *)
  mutable killed : bool;
  mutable fuel : int;     (** instruction budget per continue, then SIGINT *)
  mutable notified : bool; (** current stop already reported to the debugger *)
  can_step : bool;        (** whether this nub offers the Step extension *)
  (* at-most-once request transport state (see Frame): *)
  mutable last_seq : int;   (** highest request sequence number served *)
  mutable cur_seq : int;    (** sequence number replies are tagged with *)
  mutable replies : (int * string) list;
      (** sealed frames of recent replies, newest first, keyed by request
          sequence number and retransmitted on duplicates.  Bounded: a
          fresh request acknowledges every older entry (the debugger only
          advances after an answer), and {!max_cached_replies} caps the
          list even against a peer that never advances — a long session
          cannot grow the cache without limit. *)
  mutable rx_mark : int;   (** buffered byte count at the last quiet pump *)
  mutable rx_quiet : int;  (** consecutive pumps with bytes buffered but no
                               frame completed — a lying length field *)
  mutable core : string option;
      (** serialized {!Core} dump of the current stop; written when the
          target dies (fatal signal, kill) and served in chunks to
          [Dump] requests, surviving even the process's exit *)
  conds : (int, Bpcode.prog) Hashtbl.t;
      (** verified condition programs keyed by trap address *)
  mutable suppressed : int;
      (** trap visits resumed silently since the last reported hit *)
  mutable cond_hit : bool;
      (** the current stop came from a condition that held (or faulted):
          report it as {!Proto.Cond_hit}, not a plain {!Proto.Event} *)
  mutable recorder : recorder option;
      (** an execution trace being recorded, if a [Record] arrived *)
}

let ctx_base = Ram.Layout.context_base

(** Hard cap on cached retransmittable replies. *)
let max_cached_replies = 8

let create ?(fuel = 50_000_000) ?(can_step = true) (proc : Proc.t) =
  { proc; conn = None; resume = false; step = false; killed = false; fuel; notified = false;
    can_step; last_seq = 0; cur_seq = 0; replies = []; rx_mark = 0; rx_quiet = 0;
    core = None; conds = Hashtbl.create 4; suppressed = 0; cond_hit = false;
    recorder = None }

(** Number of sealed replies currently cached (tests assert the bound). *)
let cached_replies n = List.length n.replies

(** Number of condition programs currently installed (for tests). *)
let conditions n = Hashtbl.length n.conds

let target n = n.proc.Proc.target
let ram n = n.proc.Proc.ram

(* --- context save/restore --------------------------------------------- *)

let save_context n =
  let t = target n and p = n.proc in
  let cpu = p.Proc.cpu in
  Cpu.drain cpu;
  Ram.set_u32 (ram n) (ctx_base + t.Target.ctx_pc_off) (Int32.of_int cpu.Cpu.pc);
  for r = 0 to Target.nregs t - 1 do
    Ram.set_u32 (ram n) (ctx_base + t.Target.ctx_reg_off r) (Cpu.reg cpu r)
  done;
  for f = 0 to Target.nfregs t - 1 do
    let off = ctx_base + t.Target.ctx_freg_off f in
    let v = Cpu.freg cpu f in
    if t.Target.ctx_freg_bytes = 10 then
      (* SIM-68020: store in 80-bit extended format *)
      Ram.blit_in (ram n) ~addr:off (Float80.to_bytes v)
    else if Arch.equal t.Target.arch Mips then begin
      (* SIM-MIPS kernel quirk: least significant word first *)
      let bits = Int64.bits_of_float v in
      Ram.set_u32 (ram n) off (Int64.to_int32 bits);
      Ram.set_u32 (ram n) (off + 4) (Int64.to_int32 (Int64.shift_right_logical bits 32))
    end
    else Ram.set_f64 (ram n) off v
  done

let restore_context n =
  let t = target n and p = n.proc in
  let cpu = p.Proc.cpu in
  Proc.set_pc p (Int32.to_int (Ram.get_u32 (ram n) (ctx_base + t.Target.ctx_pc_off)));
  for r = 0 to Target.nregs t - 1 do
    Cpu.set_reg cpu r (Ram.get_u32 (ram n) (ctx_base + t.Target.ctx_reg_off r))
  done;
  for f = 0 to Target.nfregs t - 1 do
    let off = ctx_base + t.Target.ctx_freg_off f in
    let v =
      if t.Target.ctx_freg_bytes = 10 then
        Float80.of_bytes (Ram.read_string (ram n) ~addr:off ~len:10)
      else if Arch.equal t.Target.arch Mips then
        let lo = Int64.logand (Int64.of_int32 (Ram.get_u32 (ram n) off)) 0xffffffffL in
        let hi = Int64.of_int32 (Ram.get_u32 (ram n) (off + 4)) in
        Int64.float_of_bits (Int64.logor (Int64.shift_left hi 32) lo)
      else Ram.get_f64 (ram n) off
    in
    Cpu.set_freg cpu f v
  done

(* --- fetch/store service ---------------------------------------------- *)

(* The byte-access semantics (sizes, canonical little-endian values, the
   SIM-MIPS word-swap quirk) live in {!Core.Service} so dump-backed
   memories answer exactly like a live nub; here we only add the "nub: "
   provenance to errors. *)

let nubbed r = Result.map_error (fun m -> "nub: " ^ m) r

(** Fetch [size] bytes at [addr] using the target's byte order and return
    the value serialized little-endian (the protocol's canonical order). *)
let do_fetch n ~space ~addr ~size : (string, string) result =
  nubbed (Core.Service.fetch (target n) (ram n) ~space ~addr ~size)

let do_store n ~space ~addr (bytes : string) : (unit, string) result =
  nubbed (Core.Service.store (target n) (ram n) ~space ~addr bytes)

(* --- core dumps --------------------------------------------------------- *)

(** Freeze the current stop into a serialized core dump.  Fatal signals
    dump automatically; [force] also dumps recoverable stops (the
    debugger's explicit [core] command, or a kill). *)
let record_core ?(force = false) n =
  match n.proc.Proc.status with
  | Proc.Stopped (s, code) when force || Core.fatal_signal s ->
      n.core <-
        Some (Core.to_string (Core.of_proc n.proc ~signal:(Signal.number s) ~code))
  | _ -> ()

(* --- trace recording ---------------------------------------------------- *)

(* Recording is passive: every helper is a no-op unless a [Record]
   request installed a recorder.  What gets logged is exactly the
   nondeterminism a deterministic target admits — the state-changing
   requests the debugger sent (stores, conditions, continues, steps,
   kill) and the outcome of each execution — plus periodic checkpoints
   so replay never re-executes more than a bounded span. *)

let rec_event n (e : Trace.event) =
  match n.recorder with
  | None -> ()
  | Some rc ->
      rc.rc_events <- e :: rc.rc_events;
      rc.rc_nev <- rc.rc_nev + 1;
      (match e with
      | Trace.Req _ -> rc.rc_nreq <- rc.rc_nreq + 1
      | _ -> ())

(** Log the stop or exit that ended the execution request just served,
    with the number of counted instruction units it retired. *)
let rec_outcome n ~(instrs : int) =
  match n.recorder with
  | None -> ()
  | Some _ -> (
      match n.proc.Proc.status with
      | Proc.Stopped (s, code) ->
          rec_event n
            (Trace.Stop
               { signal = Signal.number s; code; pc = Proc.pc n.proc; instrs })
      | Proc.Exited status -> rec_event n (Trace.Exit { status; instrs })
      | Proc.Running -> ())

(** Freeze the current machine into a checkpoint at replay cursor
    [(ev, delta)].  Callers guarantee the dump is drain-safe: either the
    target is stopped (its context was just saved, which drains), or the
    caller checked there is no pending delayed load. *)
let checkpoint_of n ~(ev : int) ~(delta : int) : Trace.checkpoint =
  let status, signal, code =
    match n.proc.Proc.status with
    | Proc.Running -> (Trace.Ck_running, 0, 0)
    | Proc.Stopped (s, c) ->
        (Trace.Ck_stopped { signal = Signal.number s; code = c }, Signal.number s, c)
    | Proc.Exited st -> (Trace.Ck_exited st, 0, 0)
  in
  { Trace.ck_ev = ev; ck_delta = delta; ck_status = status;
    ck_core = Core.to_string (Core.of_proc n.proc ~signal ~code) }

let rec_checkpoint n ~ev ~delta =
  match n.recorder with
  | None -> ()
  | Some rc ->
      rec_event n (Trace.Checkpoint (checkpoint_of n ~ev ~delta));
      rc.rc_since <- 0;
      rc.rc_blocked <- false

(** Charge [used] retired instructions against the checkpoint period. *)
let rec_charge n used =
  match n.recorder with
  | None -> ()
  | Some rc -> rc.rc_since <- rc.rc_since + used

(** Take a checkpoint at a stop if one is due.  The cursor is
    [(next request, 0)]: everything logged so far is fully applied. *)
let rec_stop_checkpoint n =
  match n.recorder with
  | None -> ()
  | Some rc -> if rc.rc_since >= rc.rc_spacing then rec_checkpoint n ~ev:rc.rc_nreq ~delta:0

(** Mid-continue checkpoint attempt: [delta] instructions into the
    execution of the request indexed [rc_nreq - 1] (the continue being
    served).  Deferred while a delayed load is pending — committing it
    early would change what the delay-slot instruction reads — and
    retried one instruction later, where it has necessarily drained or
    been replaced (at most one load can be in flight). *)
let rec_mid_checkpoint n ~(delta : int) =
  match n.recorder with
  | None -> ()
  | Some rc ->
      if rc.rc_since >= rc.rc_spacing then begin
        if n.proc.Proc.cpu.Cpu.pending_load = None then
          rec_checkpoint n ~ev:(rc.rc_nreq - 1) ~delta
        else rc.rc_blocked <- true
      end

(* --- breakpoint conditions ---------------------------------------------- *)

(** The condition evaluator's view of the stopped target: registers and
    pc from the saved context, memory through the same {!Core.Service}
    semantics the wire uses — so every value here is byte-identical to
    what the debugger would compute over fetches of the same state. *)
let cond_env n : Bpcode.env =
  let t = target n in
  {
    Bpcode.rd_reg = (fun r -> Ram.get_u32 (ram n) (ctx_base + t.Target.ctx_reg_off r));
    rd_pc = (fun () -> Ram.get_u32 (ram n) (ctx_base + t.Target.ctx_pc_off));
    load =
      (fun ~space ~addr ~size ~signed ->
        match Core.Service.fetch t (ram n) ~space ~addr ~size with
        | Error m -> Error m
        | Ok bytes ->
            (* canonical little-endian bytes → int32, extended per signedness *)
            let v = ref 0 in
            String.iteri (fun i ch -> v := !v lor (Char.code ch lsl (8 * i))) bytes;
            let v = if signed then Ldb_util.Endian.sext !v (8 * size) else !v in
            Ok (Int32.of_int v));
  }

(** Judge the current stop against the installed conditions.  [None]:
    not a trap with a condition — report as usual.  [Some true]: the
    condition held, or its evaluation faulted (a refused load on the
    live target) — stop conservatively and report.  [Some false]: a
    miss, resume silently. *)
let cond_verdict n : bool option =
  match n.proc.Proc.status with
  | Proc.Stopped (SIGTRAP, _) -> (
      match Hashtbl.find_opt n.conds (Proc.pc n.proc) with
      | None -> None
      | Some prog -> (
          match Bpcode.eval (cond_env n) prog with
          | Ok hit -> Some hit
          | Error _ -> Some true))
  | _ -> None

(* --- stop reporting ---------------------------------------------------- *)

let stop_state n : Proto.stop_state =
  match n.proc.Proc.status with
  | Proc.Running -> Proto.St_running
  | Proc.Stopped (s, code) ->
      Proto.St_stopped { signal = Signal.number s; code; ctx_addr = ctx_base }
  | Proc.Exited st -> Proto.St_exited st

(** Send a reply framed with the sequence number of the request being
    served, and remember the sealed frame so a duplicate of that request
    can be answered by retransmission instead of re-execution.  A dead
    link is not an error here: the nub preserves the target's state and
    waits for a reattach. *)
let send_reply n (ep : Chan.endpoint) (r : Proto.reply) =
  let sealed = Frame.seal ~seq:n.cur_seq (Proto.encode_reply r) in
  let keep = List.filter (fun (s, _) -> s <> n.cur_seq) n.replies in
  n.replies <-
    (n.cur_seq, sealed)
    :: (if List.length keep >= max_cached_replies then
          List.filteri (fun i _ -> i < max_cached_replies - 1) keep
        else keep);
  try Chan.send ep sealed with Chan.Disconnected -> ()

let notify n =
  match (n.conn, n.proc.Proc.status) with
  | Some ep, Proc.Stopped (s, code) when Chan.is_connected ep && not n.notified ->
      n.notified <- true;
      if n.cond_hit then begin
        n.cond_hit <- false;
        let suppressed = n.suppressed in
        n.suppressed <- 0;
        send_reply n ep
          (Proto.Cond_hit
             { signal = Signal.number s; code; ctx_addr = ctx_base; suppressed })
      end
      else
        send_reply n ep (Proto.Event { signal = Signal.number s; code; ctx_addr = ctx_base })
  | Some ep, Proc.Exited st when Chan.is_connected ep && not n.notified ->
      n.notified <- true;
      send_reply n ep (Proto.Exit_event st)
  | _ -> ()

(* --- main service pump ------------------------------------------------- *)

(** Consecutive quiet pumps tolerated while bytes are buffered but no
    frame completes, before assuming a lying length field and forcing a
    resync. *)
let rx_stall_limit = 8

(** One continue's worth of target time, shared by live execution and
    replay.  Runs until the target stops, exits, exhausts [fuel] (then a
    SIGINT stop, as an interrupt would), or — replay positioning — has
    retired [cap] counted instruction units, in which case the target is
    left [Running] for the caller to turn into a step-style stop.
    Returns the units retired.

    Execution proceeds in chunks so the recorder can take a checkpoint
    every [rc_spacing] instructions without perturbing semantics: a
    chunk ends at whichever of fuel, cap, or the next checkpoint comes
    first.  One cumulative fuel budget covers the whole continue:
    silent condition-driven resumes burn from the same tank, so a
    never-true condition in an infinite loop still ends in a SIGINT,
    not a hang. *)
let run_loop n ~fuel:fuel0 ~(cap : int option) : int =
  let fuel = ref fuel0 in
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    let cap_room = match cap with None -> max_int | Some c -> c - !total in
    if cap_room <= 0 then continue := false
    else begin
      let ck_room =
        match n.recorder with
        | None -> max_int
        | Some rc ->
            if rc.rc_blocked then 1 else max 1 (rc.rc_spacing - rc.rc_since)
      in
      let chunk = min (min (max 0 !fuel) cap_room) ck_room in
      let status, used = Proc.run_counted ~fuel:chunk n.proc in
      fuel := !fuel - used;
      total := !total + used;
      rec_charge n used;
      match status with
      | Proc.Running ->
          if (match cap with Some c -> !total >= c | None -> false) then
            (* positioned: leave the target running mid-continue *)
            continue := false
          else if !fuel <= 0 then begin
            (* fuel exhausted: behave like an interrupt *)
            n.proc.Proc.status <- Proc.Stopped (SIGINT, 0);
            save_context n;
            continue := false
          end
          else rec_mid_checkpoint n ~delta:!total
      | Proc.Exited _ -> continue := false
      | Proc.Stopped _ -> (
          save_context n;
          match cond_verdict n with
          | Some false ->
              (* a miss: skip the trapped no-op and resume — no RPC, no
                 report *)
              n.suppressed <- n.suppressed + 1;
              Proc.set_pc n.proc (Proc.pc n.proc + (target n).Target.nop_advance);
              Proc.set_running n.proc
          | Some true ->
              n.cond_hit <- true;
              continue := false
          | None -> continue := false)
    end
  done;
  !total

let run_target n =
  let instrs = run_loop n ~fuel:n.fuel ~cap:None in
  record_core n;
  rec_outcome n ~instrs;
  rec_stop_checkpoint n;
  n.notified <- false;
  notify n

(** Execute exactly one instruction and report the stop, as the [Step]
    extension requires; shared by the live pump and replay. *)
let step_target n =
  Proc.step n.proc;
  (match n.proc.Proc.status with
  | Proc.Running -> n.proc.Proc.status <- Proc.Stopped (SIGTRAP, 1)
  | _ -> ());
  (match n.proc.Proc.status with
  | Proc.Stopped _ -> save_context n
  | _ -> ());
  record_core n;
  rec_charge n 1;
  rec_outcome n ~instrs:1;
  rec_stop_checkpoint n;
  n.notified <- false;
  notify n

let serve_one n (ep : Chan.endpoint) (req : Proto.request) =
  match req with
  | Proto.Hello ->
      send_reply n ep
        (Proto.Hello_reply
           { arch = Arch.name (Proc.arch n.proc); state = stop_state n;
             can_step = n.can_step })
  | Proto.Fetch { space; addr; size } -> (
      match do_fetch n ~space ~addr ~size with
      | Ok bytes -> send_reply n ep (Proto.Fetched bytes)
      | Error m -> send_reply n ep (Proto.Nub_error m))
  | Proto.Store { space; addr; bytes } -> (
      match do_store n ~space ~addr bytes with
      | Ok () ->
          (* only applied stores enter the trace: a refused store changed
             nothing and replay must not re-attempt it *)
          rec_event n (Trace.Req req);
          send_reply n ep Proto.Stored
      | Error m -> send_reply n ep (Proto.Nub_error m))
  | Proto.Continue ->
      n.core <- None;
      rec_event n (Trace.Req req);
      restore_context n;
      Proc.set_running n.proc;
      n.resume <- true
  | Proto.Step ->
      if n.can_step then begin
        n.core <- None;
        rec_event n (Trace.Req req);
        restore_context n;
        Proc.set_running n.proc;
        n.step <- true
      end
      else send_reply n ep (Proto.Nub_error "nub: single-step not supported")
  | Proto.Kill ->
      (* preserve the dying stop as a core before the state is gone *)
      record_core ~force:true n;
      rec_event n (Trace.Req req);
      n.killed <- true;
      n.proc.Proc.status <- Proc.Exited 137
  | Proto.Detach -> (
      match n.conn with
      | Some e ->
          Chan.disconnect e;
          n.conn <- None
      | None -> ())
  | Proto.Dump { offset } -> (
      (* a live stopped target dumps on demand; a dead one serves the
         dump its demise left behind *)
      (match n.core with None -> record_core ~force:true n | Some _ -> ());
      match n.core with
      | None ->
          let msg =
            match n.proc.Proc.status with
            | Proc.Running -> "nub: target is running"
            | Proc.Exited _ -> "nub: target exited leaving no core"
            | Proc.Stopped _ -> "nub: no core available"
          in
          send_reply n ep (Proto.Nub_error msg)
      | Some dump ->
          let total = String.length dump in
          if offset < 0 || offset > total then
            send_reply n ep (Proto.Nub_error "nub: dump offset out of range")
          else
            let len = min Proto.max_core_chunk (total - offset) in
            send_reply n ep
              (Proto.Core_chunk { total; offset; chunk = String.sub dump offset len }))
  | Proto.Set_cond { addr; prog } -> (
      (* never trust the peer: decode totally, then re-verify.  A program
         the verifier rejects is refused before it can ever run. *)
      match Bpcode.decode prog with
      | Error m -> send_reply n ep (Proto.Nub_error ("nub: bad condition: " ^ m))
      | Ok p -> (
          match Bpverify.verify (target n) p with
          | [] ->
              Hashtbl.replace n.conds addr p;
              rec_event n (Trace.Req req);
              send_reply n ep Proto.Stored
          | f :: _ ->
              send_reply n ep
                (Proto.Nub_error
                   ("nub: unverified condition: " ^ Bpverify.finding_to_string f))))
  | Proto.Clear_cond { addr } ->
      Hashtbl.remove n.conds addr;
      rec_event n (Trace.Req req);
      send_reply n ep Proto.Stored
  | Proto.Record { spacing } -> (
      match n.proc.Proc.status with
      | Proc.Stopped _ ->
          n.recorder <-
            Some
              { rc_spacing = spacing; rc_events = []; rc_nev = 0; rc_nreq = 0;
                rc_since = 0; rc_blocked = false; rc_cache = None };
          (* history starts here: the initial checkpoint anchors replay
             at cursor (0, 0), before any logged request *)
          rec_checkpoint n ~ev:0 ~delta:0;
          send_reply n ep Proto.Stored
      | Proc.Running -> send_reply n ep (Proto.Nub_error "nub: target is running")
      | Proc.Exited _ ->
          send_reply n ep (Proto.Nub_error "nub: cannot record an exited target"))
  | Proto.Fetch_trace { offset } -> (
      match n.recorder with
      | None -> send_reply n ep (Proto.Nub_error "nub: not recording")
      | Some rc ->
          let dump =
            match rc.rc_cache with
            | Some (key, s) when key = rc.rc_nev -> s
            | _ ->
                let s =
                  Trace.to_string
                    { Trace.tr_arch = (target n).Target.arch; tr_fuel = n.fuel;
                      tr_can_step = n.can_step; tr_spacing = rc.rc_spacing;
                      tr_events = List.rev rc.rc_events }
                in
                rc.rc_cache <- Some (rc.rc_nev, s);
                s
          in
          let total = String.length dump in
          if offset < 0 || offset > total then
            send_reply n ep (Proto.Nub_error "nub: trace offset out of range")
          else
            let len = min Proto.max_trace_chunk (total - offset) in
            send_reply n ep
              (Proto.Trace_chunk { total; offset; chunk = String.sub dump offset len }))

(** Serve one incoming frame, enforcing at-most-once execution: a frame
    numbered at or below the last served request is a duplicate of a
    request whose effect already happened — its cached reply is
    retransmitted when still held, and it is silently dropped otherwise
    (the debugger has long since moved on); only a fresh number executes.
    A fresh number also acknowledges every older cached reply — the
    debugger issues sequence numbers in order and never retries a request
    after advancing past it — so acknowledged entries are evicted here.
    This is what makes the debugger's retry of a lost [Continue] safe —
    re-running it would resume the target a second time. *)
let serve_frame n (ep : Chan.endpoint) (f : Frame.frame) =
  let seq = f.Frame.fr_seq in
  if seq <= n.last_seq && n.last_seq > 0 then (
    match List.assoc_opt seq n.replies with
    | Some sealed -> ( try Chan.send ep sealed with Chan.Disconnected -> ())
    | None -> ())
  else begin
    n.last_seq <- seq;
    n.cur_seq <- seq;
    n.replies <- List.filter (fun (s, _) -> s >= seq) n.replies;
    match Proto.decode_request f.Frame.fr_payload with
    | Ok req -> serve_one n ep req
    | Error m -> send_reply n ep (Proto.Nub_error ("nub: bad request: " ^ m))
  end

(** Process every pending request, running the target when a continue has
    been received.  This is the closure installed as the debugger
    endpoint's pump.  A link failure mid-service is absorbed: the nub
    drops the dead connection and keeps the target's state for the next
    attach. *)
let rec pump n =
  match n.conn with
  | None -> ()
  | Some ep ->
      (try
         let draining = ref true in
         while !draining do
           match Frame.try_recv ep with
           | `Frame f ->
               n.rx_quiet <- 0;
               serve_frame n ep f
           | `Corrupt _ -> ()  (* dropped; the debugger retries *)
           | `Incomplete ->
               (* a header whose corrupted length field promises bytes
                  that never arrive would block the stream forever: after
                  enough quiet pumps, discard its magic and rescan *)
               let avail = Chan.available ep in
               if avail > 0 && avail = n.rx_mark then begin
                 n.rx_quiet <- n.rx_quiet + 1;
                 if n.rx_quiet > rx_stall_limit then begin
                   Chan.skip ep 2;
                   n.rx_quiet <- 0
                 end
                 else draining := false
               end
               else begin
                 n.rx_mark <- avail;
                 n.rx_quiet <- 0;
                 draining := false
               end
         done
       with Chan.Disconnected -> n.conn <- None);
      if n.step then begin
        n.step <- false;
        (* one instruction, then stop and report *)
        step_target n;
        pump n
      end
      else if n.resume then begin
        n.resume <- false;
        run_target n;
        (* servicing the continue may have queued more requests *)
        pump n
      end

(** Attach a (new) debugger connection.  Any previous connection is
    forgotten; target state is preserved, so a fresh debugger instance can
    pick up where a crashed one left off.  The request-sequence state
    resets with the connection: a fresh debugger numbers from 1 again. *)
let attach n (ep : Chan.endpoint) =
  n.conn <- Some ep;
  n.last_seq <- 0;
  n.cur_seq <- 0;
  n.replies <- [];
  n.rx_mark <- 0;
  n.rx_quiet <- 0;
  (* conditions belong to the debugger that shipped them; a fresh
     debugger re-ships the ones it wants *)
  Hashtbl.reset n.conds;
  n.suppressed <- 0;
  n.cond_hit <- false;
  (* resetting the conditions above desynchronizes any trace in
     progress (the reset is not a logged request), so a recording does
     not survive a re-attach: time travel is per-session *)
  n.recorder <- None;
  n.notified <- true (* new debugger learns state from its Hello *)

(** Start the target under the nub.  [paused] mimics the one-line "pause"
    procedure: the target stops with SIGTRAP before calling main, waiting
    for a debugger.  Unpaused targets run immediately (and the nub catches
    any fault, preserving state until a debugger connects). *)
let start ?(paused = true) n =
  Proc.set_pc n.proc n.proc.Proc.entry;
  if paused then begin
    n.proc.Proc.status <- Proc.Stopped (SIGTRAP, 0);
    save_context n;
    n.notified <- true (* nobody to notify yet; Hello will report it *)
  end
  else run_target n

(* --- replay ------------------------------------------------------------- *)

(* The other half of record/replay: a nub wrapped around a process
   rebuilt from a checkpoint ({!Core.to_proc}) re-applies recorded
   requests through the {e same} code paths the live nub executed —
   [do_store], the condition verifier, [run_loop], the step block — so
   replayed execution cannot diverge from recorded execution by
   construction rather than by careful imitation.  These entry points
   are driven by {!Ldb_ldb.Replay}, not by the wire. *)

(** Re-apply one recorded state-changing request.  [cap], for replay
    positioning, bounds a continue to that many counted instruction
    units; a capped continue that reaches its cap leaves the target
    [Running] mid-continue (see {!replay_position}).  Returns the units
    retired.  Only requests the recorder logs are accepted — anything
    else in a trace is evidence of corruption the caller reports. *)
let replay_apply n (req : Proto.request) ~(cap : int option) : (int, string) result =
  match req with
  | Proto.Store { space; addr; bytes } -> (
      match do_store n ~space ~addr bytes with
      | Ok () -> Ok 0
      | Error m -> Error ("replay: recorded store refused: " ^ m))
  | Proto.Set_cond { addr; prog } -> (
      match Bpcode.decode prog with
      | Error m -> Error ("replay: recorded condition undecodable: " ^ m)
      | Ok p -> (
          match Bpverify.verify (target n) p with
          | [] ->
              Hashtbl.replace n.conds addr p;
              Ok 0
          | f :: _ ->
              Error
                ("replay: recorded condition unverifiable: "
                ^ Bpverify.finding_to_string f)))
  | Proto.Clear_cond { addr } ->
      Hashtbl.remove n.conds addr;
      Ok 0
  | Proto.Kill ->
      record_core ~force:true n;
      n.killed <- true;
      n.proc.Proc.status <- Proc.Exited 137;
      Ok 0
  | Proto.Continue ->
      restore_context n;
      Proc.set_running n.proc;
      let used = run_loop n ~fuel:n.fuel ~cap in
      record_core n;
      Ok used
  | Proto.Step ->
      if not n.can_step then Error "replay: trace steps but this nub cannot"
      else begin
        restore_context n;
        Proc.set_running n.proc;
        Proc.step n.proc;
        (match n.proc.Proc.status with
        | Proc.Running -> n.proc.Proc.status <- Proc.Stopped (SIGTRAP, 1)
        | _ -> ());
        (match n.proc.Proc.status with
        | Proc.Stopped _ -> save_context n
        | _ -> ());
        record_core n;
        Ok 1
      end
  | Proto.Hello | Proto.Fetch _ | Proto.Detach | Proto.Dump _ | Proto.Record _
  | Proto.Fetch_trace _ ->
      Error "replay: request is not state-changing"

(** Resume execution from a mid-continue checkpoint: the restored CPU is
    already [consumed] instructions into its continue, so only the
    remaining fuel is available, and [cap] (if any) is measured from
    here.  Used when the nearest checkpoint before a target cursor lies
    inside the same continue. *)
let replay_resume n ~(consumed : int) ~(cap : int option) : int =
  Proc.set_running n.proc;
  let used = run_loop n ~fuel:(n.fuel - consumed) ~cap in
  record_core n;
  used

(** Turn a mid-continue position into an observable stop, exactly the
    way the step extension would: a running target becomes a SIGTRAP
    stop with its context saved, indistinguishable from the stop a
    live [stepi] at the same instant would have produced. *)
let replay_position n =
  (match n.proc.Proc.status with
  | Proc.Running -> n.proc.Proc.status <- Proc.Stopped (SIGTRAP, 1)
  | _ -> ());
  (match n.proc.Proc.status with
  | Proc.Stopped _ -> save_context n
  | _ -> ());
  record_core n
