(** Execution traces for record/replay time travel.

    Our simulated targets are deterministic: the only nondeterminism a
    debugging session can observe enters through the debugger itself —
    stores into target memory, verified condition programs, continues and
    steps, and the kill switch.  A trace therefore logs exactly the
    state-changing requests the nub served, the outcome of every
    execution request (the stop or exit it ended in, with the retired
    instruction count), and periodic {e checkpoints}.  A checkpoint is an
    [LDBCORE1] dump (see {!Ldb_machine.Core}) plus a {e replay cursor}
    [(ev, delta)]: the index of the next state-changing request and, for
    a cursor inside a continue, how many instructions of that continue
    had retired when the dump was taken.  Restoring the dump and
    re-applying the logged requests from the cursor reproduces the
    machine state at any historical instant, bit for bit.

    The format is framed like the core codec: a magic string, a small
    header, then self-delimiting records each protected by a CRC-32.
    Decoding is {e total} and degrades the way {!Ldb_machine.Core}
    does: header damage is a hard error, but a truncated or corrupted
    record merely ends the usable prefix of the trace with a typed
    {!salvage} warning — replay over the surviving prefix is still
    sound because every prefix of a trace is itself a valid trace.

    Nothing in a trace depends on wall-clock time, allocation order, or
    any other ambient state, so recording the same session twice yields
    byte-identical files — the CI determinism gate relies on this. *)

open Ldb_util
open Ldb_machine

(** How a checkpointed machine was executing when it was dumped. *)
type ck_status =
  | Ck_running  (** mid-continue: resume executing to go forward *)
  | Ck_stopped of { signal : int; code : int }
  | Ck_exited of int

type checkpoint = {
  ck_ev : int;
      (** index of the next state-changing request not yet (fully)
          applied at the moment of the dump *)
  ck_delta : int;
      (** instructions of request [ck_ev]'s execution already retired
          (nonzero only inside a continue) *)
  ck_status : ck_status;
  ck_core : string;  (** serialized [LDBCORE1] dump *)
}

type event =
  | Req of Proto.request
      (** a state-changing request the nub applied, in arrival order *)
  | Stop of { signal : int; code : int; pc : int; instrs : int }
      (** the preceding continue/step ended in this stop after [instrs]
          counted instruction units *)
  | Exit of { status : int; instrs : int }
  | Checkpoint of checkpoint
      (** appears in stream order, between the events it separates *)

type t = {
  tr_arch : Arch.t;
  tr_fuel : int;      (** the recording nub's per-continue budget *)
  tr_can_step : bool;
  tr_spacing : int;   (** requested instructions between checkpoints *)
  tr_events : event list;
}

(** Typed degradation for damaged traces, in the style of
    {!Ldb_machine.Core.salvage}: the decoder never raises, it reports. *)
type salvage =
  | Truncated of { what : string; expected : int; got : int }
  | Bad_crc of { index : int; stored : int; computed : int }
  | Bad_record of { index : int; what : string }

let salvage_to_string = function
  | Truncated { what; expected; got } ->
      Printf.sprintf "trace truncated in %s: need %d bytes, have %d" what expected got
  | Bad_crc { index; stored; computed } ->
      Printf.sprintf "trace record %d checksum mismatch: stored %#x, computed %#x"
        index stored computed
  | Bad_record { index; what } ->
      Printf.sprintf "trace record %d malformed: %s" index what

(* --- accessors used by replay ------------------------------------------ *)

(** The state-changing requests in order; [ck_ev] indexes this array. *)
let requests (tr : t) : Proto.request array =
  Array.of_list
    (List.filter_map (function Req r -> Some r | _ -> None) tr.tr_events)

(** All checkpoints, in stream order (cursor-ascending by construction). *)
let checkpoints (tr : t) : checkpoint list =
  List.filter_map (function Checkpoint c -> Some c | _ -> None) tr.tr_events

(** The outcome (stop or exit) recorded for execution request [ev],
    when the trace contains one: the first [Stop]/[Exit] event after the
    [ev]-th request. *)
let outcome_of (tr : t) (ev : int) : event option =
  let rec scan i = function
    | [] -> None
    | Req _ :: rest when i = ev ->
        let rec next = function
          | [] -> None
          | (Stop _ as e) :: _ | (Exit _ as e) :: _ -> Some e
          | Req _ :: _ -> None
          | Checkpoint _ :: rest -> next rest
        in
        next rest
    | Req _ :: rest -> scan (i + 1) rest
    | _ :: rest -> scan i rest
  in
  scan 0 tr.tr_events

(* --- codec -------------------------------------------------------------- *)

(* Layout (all integers little-endian u32 unless noted):
     "LDBTRACE2"
     u32 len + arch name bytes
     u32 fuel | u32 spacing | u8 step flag ('S'/'-')
     then records until end of string, each:
       u8 tag | u32 body length | body bytes | u32 CRC-32(body)
     tags and bodies:
       'Q'  encoded Proto.request
       'S'  u32 signal | u32 code | u32 pc | u32 instrs
       'X'  u32 status | u32 instrs
       'C'  u32 ev | u32 delta | u8 kind | u32 a | u32 b
            | u8 comp | u32 stored length | stored bytes
            (kind 'r': running, a=b=0; 's': a=signal b=code; 'x': a=status;
             comp 'L': stored bytes are the LZW-compressed core,
             comp 'R': stored bytes are the raw core — the encoder picks
             whichever is smaller, the decoder is transparent)
   Version 1 ("LDBTRACE1") is identical except that its 'C' body has no
   compression flag: after kind/a/b comes the raw core length directly.
   The decoder keys on the magic and accepts both; the encoder always
   writes version 2. *)

let magic = "LDBTRACE2"
let magic_v1 = "LDBTRACE1"

(** A checkpoint body is dominated by its core dump; bounded like the
    core codec's section limit so a corrupt length cannot demand an
    absurd allocation. *)
let max_core_bytes = 1 lsl 26

let max_record_bytes = max_core_bytes + 4096

let buf_u32 b (v : int) =
  let cell = Bytes.create 4 in
  Endian.set_u32 Little cell 0 (Int32.of_int v);
  Buffer.add_bytes b cell

let buf_str b s =
  buf_u32 b (String.length s);
  Buffer.add_string b s

(** Checkpoint cores dominate a trace's size and compress well (sparse
    dumps are runs of structure); each is stored LZW-compressed when that
    is actually smaller, raw otherwise, one flag byte deciding.  With
    [~compress:false] cores are always stored raw — the bench uses it to
    measure what compaction saves. *)
let encode_event ?(compress = true) (e : event) : char * string =
  let b = Buffer.create 64 in
  let tag =
    match e with
    | Req r ->
        Buffer.add_string b (Proto.encode_request r);
        'Q'
    | Stop { signal; code; pc; instrs } ->
        buf_u32 b signal;
        buf_u32 b code;
        buf_u32 b pc;
        buf_u32 b instrs;
        'S'
    | Exit { status; instrs } ->
        buf_u32 b status;
        buf_u32 b instrs;
        'X'
    | Checkpoint ck ->
        buf_u32 b ck.ck_ev;
        buf_u32 b ck.ck_delta;
        (match ck.ck_status with
        | Ck_running ->
            Buffer.add_char b 'r';
            buf_u32 b 0;
            buf_u32 b 0
        | Ck_stopped { signal; code } ->
            Buffer.add_char b 's';
            buf_u32 b signal;
            buf_u32 b code
        | Ck_exited status ->
            Buffer.add_char b 'x';
            buf_u32 b status;
            buf_u32 b 0);
        let packed = if compress then Lzw.compress ck.ck_core else ck.ck_core in
        if compress && String.length packed < String.length ck.ck_core then begin
          Buffer.add_char b 'L';
          buf_str b packed
        end
        else begin
          Buffer.add_char b 'R';
          buf_str b ck.ck_core
        end;
        'C'
  in
  (tag, Buffer.contents b)

let to_string ?(compress = true) (tr : t) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  buf_str b (Arch.name tr.tr_arch);
  buf_u32 b tr.tr_fuel;
  buf_u32 b tr.tr_spacing;
  Buffer.add_char b (if tr.tr_can_step then 'S' else '-');
  List.iter
    (fun e ->
      let tag, body = encode_event ~compress e in
      Buffer.add_char b tag;
      buf_u32 b (String.length body);
      Buffer.add_string b body;
      buf_u32 b (Crc32.string body))
    tr.tr_events;
  Buffer.contents b

(* Decoder: header damage is hard, body damage salvages the prefix. *)

exception Hard of string
exception Short of string * int * int  (* what, needed, have *)

type cursor = { src : string; mutable pos : int }

let need c n what =
  if c.pos + n > String.length c.src then
    raise (Short (what, n, String.length c.src - c.pos))

let u8 c what =
  need c 1 what;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u32 c what =
  need c 4 what;
  let v =
    Int32.to_int (Endian.get_u32 Little (Bytes.of_string (String.sub c.src c.pos 4)) 0)
    land 0xffffffff
  in
  c.pos <- c.pos + 4;
  v

let take c n what =
  if n < 0 then raise (Hard ("negative length for " ^ what));
  need c n what;
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

let decode_body ~(version : int) (tag : char) (body : string) :
    (event, string) result =
  let c = { src = body; pos = 0 } in
  let fin v = if c.pos <> String.length body then Error "trailing bytes" else Ok v in
  try
    match tag with
    | 'Q' -> (
        match Proto.decode_request body with
        | Ok r -> Ok (Req r)
        | Error m -> Error ("bad request: " ^ m))
    | 'S' ->
        let signal = u32 c "stop signal" in
        let code = u32 c "stop code" in
        let pc = u32 c "stop pc" in
        let instrs = u32 c "stop instrs" in
        fin (Stop { signal; code; pc; instrs })
    | 'X' ->
        let status = u32 c "exit status" in
        let instrs = u32 c "exit instrs" in
        fin (Exit { status; instrs })
    | 'C' ->
        let ck_ev = u32 c "checkpoint ev" in
        let ck_delta = u32 c "checkpoint delta" in
        if ck_ev < 0 || ck_delta < 0 then Error "negative checkpoint cursor"
        else
          let kind = Char.chr (u8 c "checkpoint kind") in
          let a = u32 c "checkpoint a" in
          let b = u32 c "checkpoint b" in
          let ck_status =
            match kind with
            | 'r' -> Ck_running
            | 's' -> Ck_stopped { signal = a; code = b }
            | 'x' -> Ck_exited a
            | k -> raise (Hard (Printf.sprintf "bad checkpoint kind %C" k))
          in
          (* v1 checkpoints have no compression flag: the core is raw *)
          let comp =
            if version < 2 then 'R'
            else Char.chr (u8 c "checkpoint compression flag")
          in
          let core_len = u32 c "checkpoint core length" in
          if core_len < 0 || core_len > max_core_bytes then Error "bad core length"
          else
            let stored = take c core_len "checkpoint core" in
            let ck_core =
              match comp with
              | 'R' -> stored
              | 'L' -> (
                  (* bounded: a CRC-valid but hostile stream must not
                     expand past what we would accept as a raw core *)
                  try Lzw.decompress ~max_out:max_core_bytes stored
                  with Invalid_argument _ ->
                    raise (Hard "corrupt compressed checkpoint core"))
              | f -> raise (Hard (Printf.sprintf "bad compression flag %C" f))
            in
            fin (Checkpoint { ck_ev; ck_delta; ck_status; ck_core })
    | t -> Error (Printf.sprintf "unknown record tag %C" t)
  with
  | Hard m -> Error m
  | Short (what, needed, have) ->
      Error (Printf.sprintf "truncated %s: need %d bytes, have %d" what needed have)

(** Decode a trace.  Total: header damage yields [Error]; a damaged or
    truncated record ends the event list there, with the reason as a
    typed {!salvage} alongside the surviving prefix.  Because replay
    only ever consumes a prefix of history, the salvaged trace remains
    fully usable up to the damage point. *)
let of_string (s : string) : (t * salvage list, string) result =
  try
    let c = { src = s; pos = 0 } in
    let m = take c (String.length magic) "magic" in
    let version =
      if m = magic then 2
      else if m = magic_v1 then 1
      else raise (Hard "not an LDBTRACE1/LDBTRACE2 trace")
    in
    let arch_len = u32 c "arch length" in
    if arch_len < 0 || arch_len > 256 then raise (Hard "bad arch length");
    let arch_name = take c arch_len "arch name" in
    let tr_arch =
      match Arch.of_name arch_name with
      | Some a -> a
      | None -> raise (Hard (Printf.sprintf "unknown architecture %S" arch_name))
    in
    let tr_fuel = u32 c "fuel" in
    let tr_spacing = u32 c "spacing" in
    if tr_fuel < 1 then raise (Hard "bad fuel");
    if tr_spacing < 1 then raise (Hard "bad spacing");
    let tr_can_step =
      match Char.chr (u8 c "step flag") with
      | 'S' -> true
      | '-' -> false
      | f -> raise (Hard (Printf.sprintf "bad step flag %C" f))
    in
    let events = ref [] in
    let warns = ref [] in
    let index = ref 0 in
    let stop = ref false in
    (* a salvage ends the stream: indices after damage are unreliable *)
    while not !stop && c.pos < String.length s do
      match
        let tag = Char.chr (u8 c "record tag") in
        let len = u32 c "record length" in
        if len < 0 || len > max_record_bytes then raise (Hard "bad record length");
        let body = take c len "record body" in
        let crc = u32 c "record checksum" in
        (tag, body, crc)
      with
      | exception Short (what, needed, have) ->
          warns := [ Truncated { what; expected = needed; got = have } ];
          stop := true
      | exception Hard m ->
          warns := [ Bad_record { index = !index; what = m } ];
          stop := true
      | tag, body, stored ->
          let computed = Crc32.string body in
          if computed <> stored then begin
            warns := [ Bad_crc { index = !index; stored; computed } ];
            stop := true
          end
          else begin
            match decode_body ~version tag body with
            | Ok e ->
                events := e :: !events;
                incr index
            | Error what ->
                warns := [ Bad_record { index = !index; what } ];
                stop := true
          end
    done;
    Ok
      ( { tr_arch; tr_fuel; tr_spacing; tr_can_step; tr_events = List.rev !events },
        !warns )
  with
  | Hard m -> Error m
  | Short (what, needed, have) ->
      Error (Printf.sprintf "truncated %s: need %d bytes, have %d" what needed have)

let pp_event ppf = function
  | Req r -> Fmt.pf ppf "req %a" Proto.pp_request r
  | Stop { signal; code; pc; instrs } ->
      Fmt.pf ppf "stop sig %d code %d pc %#x after %d" signal code pc instrs
  | Exit { status; instrs } -> Fmt.pf ppf "exit %d after %d" status instrs
  | Checkpoint { ck_ev; ck_delta; ck_core; _ } ->
      Fmt.pf ppf "checkpoint (%d,%d) core %d bytes" ck_ev ck_delta
        (String.length ck_core)
