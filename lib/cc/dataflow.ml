(** Reusable CFG + worklist dataflow over [Ir].

    This generalizes the ad-hoc passes that grew inside [Irlint] into a
    small framework: an explicit control-flow graph over a function body,
    a depth-first reachability pass, and generic forward/backward
    worklist solvers parameterized by a lattice ([join]/[equal]) and a
    transfer function.  May-analyses join with union, must-analyses with
    intersection; the solvers do not care.

    Two clients exist today: [Irlint] (definite assignment, dead stores,
    unreachable stopping points) and [Validity] (per-stopping-point
    variable validity facts emitted into the symbol tables).  Both track
    the same variable universe — named locals whose every occurrence is a
    direct scalar frame load/store or register access — as bit masks in
    one native int, so the shared read/write walker and gen/kill helpers
    live here too. *)

(* --- variables --------------------------------------------------------------- *)

type var = Voff of int | Vreg of int  (** frame slot / register variable *)

let max_tracked = 60 (* state sets are bit masks in one native int *)

(** Named locals of a function with their symbol-table entries, found by
    walking the uplink chains of its stopping points (the same walk the
    debugger's name resolution does). *)
let named_local_syms (fd : Sym.func_debug) : (var * Sym.t) list =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec chain = function
    | None -> ()
    | Some (s : Sym.t) ->
        if not (Hashtbl.mem seen s.Sym.sid) then begin
          Hashtbl.replace seen s.Sym.sid ();
          (match (s.Sym.kind, s.Sym.where) with
          | Sym.Kvar, Some (Sym.Frame off) when off < 0 -> acc := (Voff off, s) :: !acc
          | Sym.Kvar, Some (Sym.In_reg r) -> acc := (Vreg r, s) :: !acc
          | _ -> ());
          chain s.Sym.uplink
        end
  in
  List.iter (fun (sp : Sym.stop_point) -> chain sp.Sym.sp_scope) fd.Sym.fd_stops;
  List.rev !acc

let named_locals (fd : Sym.func_debug) : (var * string) list =
  List.map (fun (v, s) -> (v, s.Sym.sym_name)) (named_local_syms fd)

(** Frame offsets that escape: any occurrence of [Addrl off] other than the
    address of a direct scalar load or store means the address is taken (or
    the slot holds an aggregate), so the slot cannot be tracked. *)
let escaped_offsets (body : Ir.stmt list) : (int, unit) Hashtbl.t =
  let escaped = Hashtbl.create 16 in
  let rec exp (e : Ir.exp) =
    match e with
    | Ir.Indir (t, Ir.Addrl off) -> if t = Ir.V then Hashtbl.replace escaped off ()
    | Ir.Asgn (t, Ir.Addrl off, v) ->
        if t = Ir.V then Hashtbl.replace escaped off ();
        exp v
    | Ir.Addrl off -> Hashtbl.replace escaped off ()
    | Ir.Cnst _ | Ir.Cnstf _ | Ir.Addrg _ | Ir.Reguse _ -> ()
    | Ir.Indir (_, a) -> exp a
    | Ir.Bin (_, _, a, b) | Ir.Cmp (_, _, a, b) -> exp a; exp b
    | Ir.Cvt (_, _, a) | Ir.Regasgn (_, a) -> exp a
    | Ir.Asgn (_, a, v) -> exp a; exp v
    | Ir.Call (_, _, args) -> List.iter exp args
    | Ir.Callind (_, f, args) -> exp f; List.iter exp args
  in
  List.iter
    (function
      | Ir.Sexp e -> exp e
      | Ir.Scjump (_, _, a, b, _) -> exp a; exp b
      | Ir.Sret (Some e) -> exp e
      | Ir.Sret None | Ir.Slabel _ | Ir.Sjump _ | Ir.Sstop _ -> ())
    body;
  escaped

(** The tracked variable universe of a function: named locals minus
    escapees, capped at [max_tracked]. *)
let tracked (body : Ir.stmt list) (fd : Sym.func_debug) : (var * Sym.t) list =
  let escaped = escaped_offsets body in
  List.filteri
    (fun i _ -> i < max_tracked)
    (List.filter
       (fun (v, _) ->
         match v with Voff off -> not (Hashtbl.mem escaped off) | Vreg _ -> true)
       (named_local_syms fd))

(** Walk one statement in evaluation order, calling [on_read] on each
    direct scalar read of a trackable variable and [on_write] on each
    direct store — the write of an assignment fires {e after} the reads
    of its right-hand side, matching the machine's order. *)
let walk ~(on_read : var -> unit) ~(on_write : var -> unit) (stmt : Ir.stmt) : unit =
  let rec exp (e : Ir.exp) =
    match e with
    | Ir.Indir (_, Ir.Addrl off) -> on_read (Voff off)
    | Ir.Reguse r -> on_read (Vreg r)
    | Ir.Asgn (_, Ir.Addrl off, v) -> exp v; on_write (Voff off)
    | Ir.Regasgn (r, v) -> exp v; on_write (Vreg r)
    | Ir.Asgn (_, a, v) -> exp a; exp v
    | Ir.Indir (_, a) -> exp a
    | Ir.Bin (_, _, a, b) | Ir.Cmp (_, _, a, b) -> exp a; exp b
    | Ir.Cvt (_, _, a) -> exp a
    | Ir.Call (_, _, args) -> List.iter exp args
    | Ir.Callind (_, f, args) -> exp f; List.iter exp args
    | Ir.Cnst _ | Ir.Cnstf _ | Ir.Addrg _ | Ir.Addrl _ -> ()
  in
  match stmt with
  | Ir.Sexp e -> exp e
  | Ir.Scjump (_, _, a, b, _) -> exp a; exp b
  | Ir.Sret (Some e) -> exp e
  | Ir.Sret None | Ir.Slabel _ | Ir.Sjump _ | Ir.Sstop _ -> ()

(* --- control-flow graph ------------------------------------------------------- *)

type cfg = {
  stmts : Ir.stmt array;
  succ : int list array;
  pred : int list array;
}

let cfg_of_body (body : Ir.stmt list) : cfg =
  let stmts = Array.of_list body in
  let n = Array.length stmts in
  let label_at = Hashtbl.create 16 in
  Array.iteri
    (fun i s -> match s with Ir.Slabel l -> Hashtbl.replace label_at l i | _ -> ())
    stmts;
  let succ_of i =
    match stmts.(i) with
    | Ir.Sjump l -> (match Hashtbl.find_opt label_at l with Some j -> [ j ] | None -> [])
    | Ir.Scjump (_, _, _, _, l) ->
        let fall = if i + 1 < n then [ i + 1 ] else [] in
        (match Hashtbl.find_opt label_at l with Some j -> j :: fall | None -> fall)
    | Ir.Sret _ -> []
    | _ -> if i + 1 < n then [ i + 1 ] else []
  in
  let succ = Array.init n succ_of in
  let pred = Array.make n [] in
  Array.iteri (fun i js -> List.iter (fun j -> pred.(j) <- i :: pred.(j)) js) succ;
  { stmts; succ; pred }

(** Statements reachable from entry (statement 0). *)
let reachable (g : cfg) : bool array =
  let n = Array.length g.stmts in
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs g.succ.(i)
    end
  in
  if n > 0 then dfs 0;
  seen

(* --- generic worklist solvers ------------------------------------------------- *)

(** The lattice a solver iterates over.  [join] combines facts flowing
    into a statement: union for may-analyses, intersection for
    must-analyses. *)
type 'a lattice = { join : 'a -> 'a -> 'a; equal : 'a -> 'a -> bool }

(** Bit-mask lattices over the tracked-variable universe. *)
let may_mask : int lattice = { join = ( lor ); equal = Int.equal }
let must_mask : int lattice = { join = ( land ); equal = Int.equal }

(** Forward solve to fixpoint.  Returns the state {e entering} each
    statement; [None] means the statement is not reachable from entry, so
    no fact holds there.  [entry] is the boundary state at statement 0;
    [transfer i stmt s] yields the state after executing [stmt] in state
    [s]. *)
let solve_forward (g : cfg) (l : 'a lattice) ~(entry : 'a)
    ~(transfer : int -> Ir.stmt -> 'a -> 'a) : 'a option array =
  let n = Array.length g.stmts in
  let in_state = Array.make n None in
  if n > 0 then begin
    in_state.(0) <- Some entry;
    let work = Queue.create () in
    Queue.add 0 work;
    while not (Queue.is_empty work) do
      let i = Queue.pop work in
      match in_state.(i) with
      | None -> ()
      | Some s ->
          let out = transfer i g.stmts.(i) s in
          List.iter
            (fun j ->
              let nw =
                match in_state.(j) with None -> out | Some old -> l.join old out
              in
              let changed =
                match in_state.(j) with None -> true | Some old -> not (l.equal old nw)
              in
              if changed then begin
                in_state.(j) <- Some nw;
                Queue.add j work
              end)
            g.succ.(i)
    done
  end;
  in_state

(** Backward solve to fixpoint.  Returns the state {e entering} each
    statement (against the flow: the fact that holds just before it
    executes).  All statements start at [bottom]; statements with no
    successors see [bottom] flowing in.  [transfer i stmt out] yields the
    in-state from the joined successor state [out]. *)
let solve_backward (g : cfg) (l : 'a lattice) ~(bottom : 'a)
    ~(transfer : int -> Ir.stmt -> 'a -> 'a) : 'a array =
  let n = Array.length g.stmts in
  let in_state = Array.make n bottom in
  let work = Queue.create () in
  Array.iteri (fun i _ -> Queue.add i work) g.stmts;
  while not (Queue.is_empty work) do
    let i = Queue.pop work in
    let out = List.fold_left (fun acc j -> l.join acc in_state.(j)) bottom g.succ.(i) in
    let nw = transfer i g.stmts.(i) out in
    if not (l.equal nw in_state.(i)) then begin
      in_state.(i) <- nw;
      List.iter (fun p -> Queue.add p work) g.pred.(i)
    end
  done;
  in_state

(* --- shared bit-mask transfer functions --------------------------------------- *)

(** Forward may-uninitialized transfer: bit set = possibly uninitialized.
    Threads the mask through one statement in evaluation order; [on_read]
    sees each tracked read's bit index with the mask at that moment. *)
let uninit_transfer ~(idx_of : var -> int option) ?(on_read = fun _ _ -> ())
    (s0 : int) (stmt : Ir.stmt) : int =
  let state = ref s0 in
  walk stmt
    ~on_read:(fun v -> match idx_of v with Some i -> on_read i !state | None -> ())
    ~on_write:(fun v ->
      match idx_of v with
      | Some i -> state := !state land lnot (1 lsl i)
      | None -> ());
  !state

(** Gen (read) and kill (write) masks of one statement, for backward
    liveness: [live_in = gen lor (live_out land lnot kill)]. *)
let genkill ~(idx_of : var -> int option) (stmt : Ir.stmt) : int * int =
  let g = ref 0 and k = ref 0 in
  walk stmt
    ~on_read:(fun v -> match idx_of v with Some i -> g := !g lor (1 lsl i) | None -> ())
    ~on_write:(fun v -> match idx_of v with Some i -> k := !k lor (1 lsl i) | None -> ());
  (!g, !k)

(** Backward liveness over the tracked universe: returns the live-in mask
    per statement (bit set = the variable's value may still be read). *)
let liveness (g : cfg) ~(idx_of : var -> int option) : int array =
  let n = Array.length g.stmts in
  let gens = Array.make n 0 and kills = Array.make n 0 in
  Array.iteri
    (fun i stmt ->
      let gen, kill = genkill ~idx_of stmt in
      gens.(i) <- gen;
      kills.(i) <- kill)
    g.stmts;
  solve_backward g may_mask ~bottom:0 ~transfer:(fun i _ out ->
      gens.(i) lor (out land lnot kills.(i)))
