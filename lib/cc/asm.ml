(** Abstract assembly and object-file records produced by the code
    generator and consumed by the linker. *)

open Ldb_machine

type text_item =
  | Ins of Insn.t
  | InsR of Insn.t * string * int
      (** instruction whose 32-bit immediate is relocated to
          [addr(symbol) + addend] at link time *)
  | Label of string

type data_item =
  | Dlabel of string
  | Dword of int32
  | Dwordsym of string * int  (** relocated word: addr(symbol)+addend *)
  | Dbytes of string
  | Dspace of int
  | Dalign of int

(** Replace the 32-bit immediate carried by an instruction (used by the
    linker to apply relocations). *)
let set_imm (i : Insn.t) (v : int32) : Insn.t =
  match i with
  | Li (rd, _) -> Li (rd, v)
  | Alui (op, rd, rs, _) -> Alui (op, rd, rs, v)
  | Load (sz, rd, rs, _) -> Load (sz, rd, rs, v)
  | Loadu (sz, rd, rs, _) -> Loadu (sz, rd, rs, v)
  | Store (sz, rv, rs, _) -> Store (sz, rv, rs, v)
  | Fload (sz, fd, rs, _) -> Fload (sz, fd, rs, v)
  | Fstore (sz, fv, rs, _) -> Fstore (sz, fv, rs, v)
  | Br (c, rs, rt, _) -> Br (c, rs, rt, v)
  | Jmp _ -> Jmp v
  | Call _ -> Call v
  | i -> i

(** Structured pieces of a unit's PostScript symbol table, kept separate so
    the compiler driver can merge several units into one top-level
    dictionary (Sec. 2: "A top-level dictionary describes a single
    compilation unit or any combination of compilation units"). *)
type ps_pieces = {
  pp_defs : string;  (** the S-name definitions (optionally deferred) *)
  pp_procs : string list;  (** S-names of procedure entries, in order *)
  pp_externs : (string * string) list;  (** extern name -> S-name *)
  pp_statics : (string * string) list;  (** unit-static name -> S-name *)
  pp_sourcemap : (string * string list) list;  (** file -> proc S-names *)
  pp_anchors : string list;  (** anchor symbol names used *)
  pp_funcs : (string * string) list;
      (** source-level name -> linker label of every procedure, shipped in
          the top-level units dictionary so the debugger can force exactly
          the unit that defines a queried procedure *)
  pp_lines : (int * int) option;
      (** min/max source line carrying a stopping point, the demand hint
          for line-to-stop queries; [None] when the unit has no loci *)
  pp_encoding : string option;
      (** transfer encoding of the deferred body ([Some "lzw"]), decoded
          transparently when the unit is forced *)
}

type t = {
  o_arch : Arch.t;
  o_unit : string;
  o_text : text_item list;
  o_data : data_item list;
  o_globals : string list;  (** labels visible to other units *)
  o_debug : Sym.unit_debug option;  (** present when compiled with -g *)
  o_ps : ps_pieces option;  (** PostScript symbol table (with -g) *)
  o_stabs : string;  (** machine-dependent binary stabs (with -g) *)
  o_rpt : (string * int * int) list;
      (** (proc label, frame size, ra offset) for the SIM-MIPS runtime
          procedure table *)
}

(** Number of machine instructions in a text stream (labels excluded). *)
let insn_count items =
  List.fold_left (fun n -> function Ins _ | InsR _ -> n + 1 | Label _ -> n) 0 items

(** Encoded size in bytes of a text stream on [target]. *)
let text_size (target : Target.t) items =
  List.fold_left
    (fun n -> function
      | Ins i | InsR (i, _, _) -> n + Target.insn_length target i
      | Label _ -> n)
    0 items

let data_size items =
  (* alignment is resolved during layout; here we compute the worst case *)
  List.fold_left
    (fun n -> function
      | Dlabel _ -> n
      | Dword _ | Dwordsym _ -> n + 4
      | Dbytes s -> n + String.length s
      | Dspace k -> n + k
      | Dalign a -> n + a - 1)
    0 items
