(** PostScript symbol-table emission (Sec. 2).

    Each symbol becomes a dictionary bound to an S-name; local symbols are
    linked into an uplink tree; procedures carry a [loci] array of stopping
    points; statics and stopping points are located through anchor-symbol
    procedures ([LazyData]) interpreted at debug time; type dictionaries
    carry a declaration template, a printing procedure, and whatever
    machine-dependent data (element sizes, field offsets) that procedure
    needs.

    With [~defer:true] (the default) the body of the unit's definitions is
    wrapped in parentheses so the debugger's scanner reads it as one string
    and tokenizes it only when the unit is first needed — the Sec. 5
    deferral technique (a ~40% startup saving in the paper). *)

open Ldb_machine

(** Static verification of the emitted table (pslint, Sec. 2): a finding
    in generated PostScript is a compiler bug, so it fails the build.
    [lint_enabled] exists so the seeded-defect tests can emit bad tables
    on purpose. *)
let lint_enabled = ref true

let lint_body ~(unit_name : string) (body : string) =
  if !lint_enabled then begin
    let env = Ldb_pscheck.Pscheck.debugger_env () in
    match
      Ldb_pscheck.Pscheck.check_program ~env ~deep:true ~name:(unit_name ^ ":pstab") body
    with
    | [] -> ()
    | fs ->
        let msgs = List.map Ldb_pscheck.Lattice.finding_to_string fs in
        failwith
          ("psemit: generated symbol table fails pslint:\n" ^ String.concat "\n" msgs)
  end

let ps_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '(' -> Buffer.add_string buf "\\("
      | ')' -> Buffer.add_string buf "\\)"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pstr s = "(" ^ ps_escape s ^ ")"

type emitter = {
  buf : Buffer.t;
  arch : Arch.t;
  tag : string;
  mutable ntype : int;
  types : (Ctype.t * string) list ref;  (** memo: type -> T-name *)
}

let out e fmt = Fmt.kstr (fun s -> Buffer.add_string e.buf s) fmt

(* --- type dictionaries ---------------------------------------------------- *)

let rec type_name (e : emitter) (t : Ctype.t) : string =
  match List.find_opt (fun (t', _) -> Ctype.equal t' t) !(e.types) with
  | Some (_, n) -> n
  | None ->
      e.ntype <- e.ntype + 1;
      let n = Printf.sprintf "T%d$%s" e.ntype e.tag in
      e.types := (t, n) :: !(e.types);
      (* declare first so recursive types (struct node *next) can refer to
         the dictionary before it is filled *)
      out e "/%s 8 dict def\n" n;
      fill_type e n t;
      n

and printer_for (e : emitter) (t : Ctype.t) : string =
  match t with
  | Ctype.Char -> "{CHAR}"
  | Ctype.Short -> "{SHORT}"
  | Ctype.Int -> "{INT}"
  | Ctype.Unsigned -> "{UNSIGNED}"
  | Ctype.Float -> "{FLOAT}"
  | Ctype.Double -> "{DOUBLE}"
  | Ctype.LongDouble -> if Arch.equal e.arch M68k then "{LDOUBLE}" else "{DOUBLE}"
  | Ctype.Ptr Ctype.Char -> "{CSTRING}"
  | Ctype.Ptr _ | Ctype.Func _ -> "{POINTER}"
  | Ctype.Array _ -> "{ARRAY}"
  | Ctype.Struct _ -> "{STRUCT}"
  | Ctype.Void -> "{POINTER}"

and fill_type (e : emitter) (n : string) (t : Ctype.t) =
  out e "%s /decl %s put\n" n (pstr (Ctype.decl_string t));
  out e "%s /printer %s put\n" n (printer_for e t);
  out e "%s /size %d put\n" n (Ctype.size e.arch t);
  (match t with
  | Ctype.Array (elem, count) ->
      (* machine-dependent data for the machine-independent ARRAY printer *)
      let en = type_name e elem in
      out e "%s /elemtype %s put\n" n en;
      out e "%s /elemsize %d put\n" n (Ctype.size e.arch elem);
      out e "%s /arraysize %d put\n" n (count * Ctype.size e.arch elem);
      out e "%s /count %d put\n" n count
  | Ctype.Struct sd when sd.Ctype.complete ->
      let fields =
        List.map
          (fun (f : Ctype.field) ->
            Printf.sprintf "[ %s %d %s ]" (pstr f.Ctype.fname) f.Ctype.foffset
              (type_name e f.Ctype.fty))
          sd.Ctype.fields
      in
      out e "%s /fields [ %s ] put\n" n (String.concat " " fields)
  | Ctype.Ptr inner when not (Ctype.equal inner Ctype.Char) ->
      let en = type_name e inner in
      out e "%s /pointee %s put\n" n en
  | _ -> ())

(* --- where procedures ------------------------------------------------------- *)

let where_text (ud : Sym.unit_debug) (s : Sym.t) : string option =
  match s.Sym.where with
  | None -> None
  | Some (Sym.In_reg r) ->
      (* computed when the symbol table is interpreted: Regset0 comes from
         the per-architecture dictionary the debugger keeps on the
         dictionary stack *)
      Some (Printf.sprintf "%d Regset0 Absolute" r)
  | Some (Sym.Frame off) ->
      (* interpreted per frame: FrameLoc is machine-dependent PostScript *)
      Some (Printf.sprintf "{%d FrameLoc}" off)
  | Some (Sym.Global label) ->
      if s.Sym.kind = Sym.Kfunc then Some (Printf.sprintf "{%s GlobalCodeLoc}" (pstr label))
      else Some (Printf.sprintf "{%s GlobalLoc}" (pstr label))
  | Some (Sym.Anchored idx) ->
      Some (Printf.sprintf "{%s %d LazyData}" (pstr ud.Sym.ud_anchor) idx)

let sym_ref tag = function
  | None -> "null"
  | Some (s : Sym.t) -> Printf.sprintf "%s$%s" (Sym.sname s) tag

let kind_string = function
  | Sym.Kvar -> "variable"
  | Sym.Kparam -> "parameter"
  | Sym.Kfunc -> "procedure"

(* --- symbol entries --------------------------------------------------------- *)

let emit_sym (e : emitter) (ud : Sym.unit_debug) (s : Sym.t) ~(extra : string list) =
  let tn = type_name e s.Sym.sym_ty in
  out e "/%s$%s <<\n" (Sym.sname s) e.tag;
  out e "  /name %s\n" (pstr s.Sym.sym_name);
  out e "  /type %s\n" tn;
  out e "  /sourcefile %s /sourcey %d /sourcex %d\n" (pstr s.Sym.sfile) s.Sym.spos.Lex.line
    s.Sym.spos.Lex.col;
  out e "  /kind %s\n" (pstr (kind_string s.Sym.kind));
  (match where_text ud s with
  | Some w -> out e "  /where %s\n" w
  | None -> ());
  out e "  /uplink %s\n" (sym_ref e.tag s.Sym.uplink);
  (* compiler-proven validity ranges over the function's stop indexes:
     a flat [lo hi fact ...] array, absent when the analysis does not
     track this variable *)
  if s.Sym.validity <> [] then
    out e "  /validity [ %s ]\n"
      (String.concat " "
         (List.map
            (fun (lo, hi, f) -> Printf.sprintf "%d %d %d" lo hi f)
            s.Sym.validity));
  List.iter (fun line -> out e "  %s\n" line) extra;
  out e ">> def\n"

(** Emit every symbol reachable through the uplink chains of a function, in
    definition order (uplink targets first). *)
let emit_chain (e : emitter) (ud : Sym.unit_debug) ~(emitted : (int, unit) Hashtbl.t)
    (tip : Sym.t option) =
  let rec collect acc = function
    | None -> acc
    | Some (s : Sym.t) ->
        if Hashtbl.mem emitted s.Sym.sid then acc else collect (s :: acc) s.Sym.uplink
  in
  (* collect from every stopping point's scope *)
  let syms = collect [] tip in
  List.iter
    (fun (s : Sym.t) ->
      if not (Hashtbl.mem emitted s.Sym.sid) then begin
        Hashtbl.replace emitted s.Sym.sid ();
        emit_sym e ud s ~extra:[]
      end)
    syms

(* --- whole unit -------------------------------------------------------------- *)

(** Linker label of a function symbol, from its location info. *)
let func_label (s : Sym.t) : string option =
  match s.Sym.where with Some (Sym.Global label) -> Some label | _ -> None

(** Emit the PostScript symbol table for one unit.  Returns the structured
    pieces (the driver merges several units into a top-level dictionary).
    With [~compress:true] (requires [~defer:true]) the deferred body ships
    LZW-compressed, to be decompressed transparently when the unit is
    forced — the paper compressed its tables the same way (Sec. 7). *)
let emit_unit ?(defer = true) ?(compress = false) (ud : Sym.unit_debug) : Asm.ps_pieces =
  let tag = String.map (fun c -> if c = '.' || c = '/' || c = '-' then '_' else c) ud.Sym.ud_name in
  let e = { buf = Buffer.create 4096; arch = ud.Sym.ud_arch; tag; ntype = 0; types = ref [] } in
  let emitted = Hashtbl.create 64 in

  (* file-scope statics and globals *)
  List.iter
    (fun s ->
      Hashtbl.replace emitted s.Sym.sid ();
      emit_sym e ud s ~extra:[])
    ud.Sym.ud_statics;
  List.iter
    (fun s ->
      Hashtbl.replace emitted s.Sym.sid ();
      emit_sym e ud s ~extra:[])
    ud.Sym.ud_globals;

  (* the unit's statics dictionary, shared by every procedure entry *)
  out e "/Statics$%s <<" tag;
  List.iter
    (fun (s : Sym.t) -> out e " /%s %s$%s" s.Sym.sym_name (Sym.sname s) tag)
    ud.Sym.ud_statics;
  out e " >> def\n";

  (* procedures *)
  let proc_names = ref [] in
  let externs = ref [] in
  List.iter
    (fun (fd : Sym.func_debug) ->
      (* local symbols first (uplink targets must exist before use) *)
      List.iter (fun (sp : Sym.stop_point) -> emit_chain e ud ~emitted sp.Sym.sp_scope)
        fd.Sym.fd_stops;
      (* loci: [sourcey sourcex {objloc} entry] per stopping point *)
      let loci =
        List.map
          (fun (sp : Sym.stop_point) ->
            Printf.sprintf "[ %d %d {%s %d LazyData} %s ]" sp.Sym.sp_pos.Lex.line
              sp.Sym.sp_pos.Lex.col (pstr ud.Sym.ud_anchor) sp.Sym.sp_anchor
              (sym_ref tag sp.Sym.sp_scope))
          fd.Sym.fd_stops
      in
      let formals =
        match List.rev fd.Sym.fd_params with
        | last :: _ -> sym_ref tag (Some last)
        | [] -> "null"
      in
      let saved =
        String.concat " "
          (List.map (fun (r, off) -> Printf.sprintf "[ %d %d ]" r off) fd.Sym.fd_saved_regs)
      in
      let extra =
        [
          Printf.sprintf "/formals %s" formals;
          Printf.sprintf "/loci [\n    %s\n  ]" (String.concat "\n    " loci);
          Printf.sprintf "/statics Statics$%s" tag;
          (* machine-dependent additions, like the 68020 register-save
             masks the paper mentions: frame size and register-variable
             save slots for the stack walker *)
          Printf.sprintf "/framesize %d" fd.Sym.fd_frame_size;
          Printf.sprintf "/raoffset %d" fd.Sym.fd_ra_offset;
          Printf.sprintf "/savedregs [ %s ]" saved;
        ]
      in
      Hashtbl.replace emitted fd.Sym.fd_sym.Sym.sid ();
      emit_sym e ud fd.Sym.fd_sym ~extra;
      proc_names := Printf.sprintf "%s$%s" (Sym.sname fd.Sym.fd_sym) tag :: !proc_names;
      externs :=
        (fd.Sym.fd_sym.Sym.sym_name, Printf.sprintf "%s$%s" (Sym.sname fd.Sym.fd_sym) tag)
        :: !externs)
    ud.Sym.ud_funcs;
  List.iter
    (fun (s : Sym.t) ->
      externs := (s.Sym.sym_name, Printf.sprintf "%s$%s" (Sym.sname s) tag) :: !externs)
    ud.Sym.ud_globals;

  let procs = List.rev !proc_names in
  (* the unit's result dictionary, read by the debugger after forcing *)
  out e "/UNITRESULT$%s <<\n" tag;
  out e "  /procs [ %s ]\n" (String.concat " " procs);
  out e "  /externs << %s >>\n"
    (String.concat " "
       (List.map (fun (n, s) -> Printf.sprintf "/%s %s" n s) (List.rev !externs)));
  out e "  /statics Statics$%s\n" tag;
  out e ">> def\n";

  let body = Buffer.contents e.buf in
  lint_body ~unit_name:ud.Sym.ud_name body;
  let compress = compress && defer in
  let defs =
    if defer then
      (* Sec. 5 deferral: the whole body reads as one string; UNITBODY is
         executed (tokenized) only when the unit is first needed.  The body
         is re-escaped so that scanning the outer string reproduces it
         exactly.  A compressed body is the LZW stream of the source text,
         escaped the same way (the scanner preserves arbitrary bytes). *)
      let payload = if compress then Ldb_util.Lzw.compress body else body in
      Printf.sprintf "/UNITBODY$%s (%s) def\n" tag (ps_escape payload)
    else Printf.sprintf "/UNITBODY$%s {%s} def\n" tag body
  in
  (* demand hints for the top-level units dictionary: which procedures and
     global data the unit defines (by source name and linker label) and
     which source lines carry stopping points *)
  let funcs =
    List.filter_map
      (fun (fd : Sym.func_debug) ->
        Option.map
          (fun label -> (fd.Sym.fd_sym.Sym.sym_name, label))
          (func_label fd.Sym.fd_sym))
      ud.Sym.ud_funcs
    @ List.filter_map
        (fun (s : Sym.t) -> Option.map (fun label -> (s.Sym.sym_name, label)) (func_label s))
        ud.Sym.ud_globals
  in
  let lines =
    List.fold_left
      (fun acc (fd : Sym.func_debug) ->
        List.fold_left
          (fun acc (sp : Sym.stop_point) ->
            let l = sp.Sym.sp_pos.Lex.line in
            match acc with
            | None -> Some (l, l)
            | Some (lo, hi) -> Some (min lo l, max hi l))
          acc fd.Sym.fd_stops)
      None ud.Sym.ud_funcs
  in
  {
    Asm.pp_defs = defs;
    pp_procs = procs;
    pp_externs = List.rev !externs;
    pp_statics =
      List.map
        (fun (s : Sym.t) -> (s.Sym.sym_name, Printf.sprintf "%s$%s" (Sym.sname s) tag))
        ud.Sym.ud_statics;
    pp_sourcemap = [ (ud.Sym.ud_name, procs) ];
    pp_anchors = [ ud.Sym.ud_anchor ];
    pp_funcs = funcs;
    pp_lines = lines;
    pp_encoding = (if compress then Some "lzw" else None);
  }
