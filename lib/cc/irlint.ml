(** IR-level dataflow lint (the compiler half of dbgcheck's static story).

    Three checks over [Ir.stmt]/[Ir.exp], run after translation and before
    code generation, all instances of the [Dataflow] framework:

    - {e definite assignment}: a read of a local that may happen before any
      write on some path (forward may-uninitialized analysis);
    - {e dead stores}: a store to a local whose value can never be read
      (backward liveness);
    - {e unreachable statements}: a stopping point the control-flow graph
      cannot reach — in this system that is a user-visible defect, because
      an unreachable stopping point is a place the user can set a
      breakpoint that will never be hit.

    Findings carry source positions taken from the stopping points the
    compiler plants before every statement, so they point at real
    file:line:col locations even though [Ir.exp] itself carries none.

    Only {e named} locals whose every occurrence is a direct frame load or
    store (or a register read/write, for [register] variables) are tracked;
    a local whose address escapes — aggregates manipulated by address,
    [&x], compiler temporaries — is left alone, which keeps the analysis
    free of false positives at the cost of missing escapees.  The tracked
    universe, escape analysis, and bit-mask transfer functions are shared
    with [Validity] through [Dataflow]. *)

type kind = Uninit_read | Dead_store | Unreachable | Truncated

let kind_name = function
  | Uninit_read -> "uninit-read"
  | Dead_store -> "dead-store"
  | Unreachable -> "unreachable"
  | Truncated -> "truncated"

let kind_of_name = function
  | "uninit-read" -> Some Uninit_read
  | "dead-store" -> Some Dead_store
  | "unreachable" -> Some Unreachable
  | "truncated" -> Some Truncated
  | _ -> None

type finding = { kind : kind; file : string; line : int; col : int; msg : string }

let finding_to_string f =
  Printf.sprintf "%s:%d:%d: %s: %s" f.file f.line f.col (kind_name f.kind) f.msg

let json_escape = Ldb_util.Json.escape

let finding_to_json f =
  Printf.sprintf {|{"kind":"%s","file":"%s","line":%d,"col":%d,"msg":"%s"}|}
    (kind_name f.kind) (json_escape f.file) f.line f.col (json_escape f.msg)

(** [`Fail] makes a finding a compile error, [`Warn] (the default) records
    it in [collected] for the driver/CLI to report, [`Off] skips the pass. *)
let mode : [ `Fail | `Warn | `Off ] ref = ref `Warn

exception Failed of finding list

let collected : finding list ref = ref []
let collected_cap = 1000
let dropped = ref 0

(** Take (and clear) the findings accumulated under [`Warn].  If the cap
    was hit, the last finding is an explicit [Truncated] marker carrying
    the dropped count — silence is not an acceptable way to lose
    findings. *)
let take () =
  let fs = List.rev !collected in
  collected := [];
  let d = !dropped in
  dropped := 0;
  if d = 0 then fs
  else
    fs
    @ [
        {
          kind = Truncated;
          file = "<irlint>";
          line = 0;
          col = 0;
          msg =
            Printf.sprintf "finding list truncated: %d finding(s) dropped after the first %d"
              d collected_cap;
        };
      ]

(* --- the analysis ------------------------------------------------------------- *)

type var = Dataflow.var = Voff of int | Vreg of int

let named_locals = Dataflow.named_locals
let escaped_offsets = Dataflow.escaped_offsets

let check_func ~(file : string) (fi : Sema.func_ir) : finding list =
  match fi.Sema.fi_debug with
  | None -> []
  | Some fd ->
      let cfg = Dataflow.cfg_of_body fi.Sema.fi_body in
      let stmts = cfg.Dataflow.stmts in
      let n = Array.length stmts in
      if n = 0 then []
      else begin
        let findings = ref [] in
        let stop_pos = Hashtbl.create 16 in
        List.iter
          (fun (sp : Sym.stop_point) -> Hashtbl.replace stop_pos sp.Sym.sp_id sp.Sym.sp_pos)
          fd.Sym.fd_stops;
        let exit_stop_id =
          List.fold_left (fun m (sp : Sym.stop_point) -> max m sp.Sym.sp_id) (-1)
            fd.Sym.fd_stops
        in
        (* position of the nearest preceding stopping point, per statement *)
        let pos_at = Array.make n fd.Sym.fd_sym.Sym.spos in
        let cur = ref fd.Sym.fd_sym.Sym.spos in
        Array.iteri
          (fun i s ->
            (match s with
            | Ir.Sstop (id, _) -> (
                match Hashtbl.find_opt stop_pos id with Some p -> cur := p | None -> ())
            | _ -> ());
            pos_at.(i) <- !cur)
          stmts;
        let report kind i msg =
          let p = pos_at.(i) in
          findings := { kind; file; line = p.Lex.line; col = p.Lex.col; msg } :: !findings
        in
        let succs i = cfg.Dataflow.succ.(i) in

        (* reachability, and the unreachable-stopping-point check *)
        let reachable = Dataflow.reachable cfg in
        Array.iteri
          (fun i s ->
            match s with
            | Ir.Sstop (id, _) when (not reachable.(i)) && id <> exit_stop_id ->
                report Unreachable i
                  (Printf.sprintf
                     "stopping point in %s can never be reached (a breakpoint here would never hit)"
                     fi.Sema.fi_name)
            | _ -> ())
          stmts;

        (* tracked variable set *)
        let vars =
          List.map
            (fun (v, s) -> (v, s.Sym.sym_name))
            (Dataflow.tracked fi.Sema.fi_body fd)
        in
        let nvars = List.length vars in
        let var_index = Hashtbl.create 16 in
        List.iteri (fun i (v, _) -> Hashtbl.replace var_index v i) vars;
        let var_name i = snd (List.nth vars i) in
        let idx_of v = Hashtbl.find_opt var_index v in
        if nvars = 0 then List.rev !findings
        else begin
          let all_mask = (1 lsl nvars) - 1 in

          (* forward may-uninitialized: bit set = possibly uninitialized *)
          let in_state =
            Dataflow.solve_forward cfg Dataflow.may_mask ~entry:all_mask
              ~transfer:(fun _ stmt s -> Dataflow.uninit_transfer ~idx_of s stmt)
          in
          let reported = Hashtbl.create 16 in
          Array.iteri
            (fun i stmt ->
              match in_state.(i) with
              | None -> ()
              | Some s ->
                  ignore
                    (Dataflow.uninit_transfer ~idx_of
                       ~on_read:(fun v st ->
                         if st land (1 lsl v) <> 0 && not (Hashtbl.mem reported (i, v))
                         then begin
                           Hashtbl.replace reported (i, v) ();
                           report Uninit_read i
                             (Printf.sprintf "%s may be read before it is assigned"
                                (var_name v))
                         end)
                       s stmt))
            stmts;

          (* backward liveness: bit set = value may still be read *)
          let live_in = Dataflow.liveness cfg ~idx_of in
          Array.iteri
            (fun i stmt ->
              let gens, kills = Dataflow.genkill ~idx_of stmt in
              if in_state.(i) <> None && kills <> 0 then begin
                let out = List.fold_left (fun acc j -> acc lor live_in.(j)) 0 (succs i) in
                List.iteri
                  (fun v _ ->
                    if kills land (1 lsl v) <> 0 && out land (1 lsl v) = 0
                       && gens land (1 lsl v) = 0 then
                      report Dead_store i
                        (Printf.sprintf "value stored to %s is never read" (var_name v)))
                  vars
              end)
            stmts;
          List.rev !findings
        end
      end

let check_unit ~(file : string) (ui : Sema.unit_ir) : finding list =
  List.concat_map (fun fi -> check_func ~file fi) ui.Sema.ui_funcs

(** Compiler hook: honour [mode].  Called by [Compile.compile]. *)
let run ~(file : string) (ui : Sema.unit_ir) : unit =
  match !mode with
  | `Off -> ()
  | m -> (
      match check_unit ~file ui with
      | [] -> ()
      | fs when m = `Fail -> raise (Failed fs)
      | fs ->
          let have = List.length !collected in
          let room = collected_cap - have in
          if room <= 0 then dropped := !dropped + List.length fs
          else begin
            let keep = List.filteri (fun i _ -> i < room) fs in
            let lost = List.length fs - List.length keep in
            dropped := !dropped + lost;
            collected := List.rev_append keep !collected
          end)
