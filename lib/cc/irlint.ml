(** IR-level dataflow lint (the compiler half of dbgcheck's static story).

    Three checks over [Ir.stmt]/[Ir.exp], run after translation and before
    code generation:

    - {e definite assignment}: a read of a local that may happen before any
      write on some path (forward may-uninitialized analysis);
    - {e dead stores}: a store to a local whose value can never be read
      (backward liveness);
    - {e unreachable statements}: a stopping point the control-flow graph
      cannot reach — in this system that is a user-visible defect, because
      an unreachable stopping point is a place the user can set a
      breakpoint that will never be hit.

    Findings carry source positions taken from the stopping points the
    compiler plants before every statement, so they point at real
    file:line:col locations even though [Ir.exp] itself carries none.

    Only {e named} locals whose every occurrence is a direct frame load or
    store (or a register read/write, for [register] variables) are tracked;
    a local whose address escapes — aggregates manipulated by address,
    [&x], compiler temporaries — is left alone, which keeps the analysis
    free of false positives at the cost of missing escapees. *)

type kind = Uninit_read | Dead_store | Unreachable

let kind_name = function
  | Uninit_read -> "uninit-read"
  | Dead_store -> "dead-store"
  | Unreachable -> "unreachable"

let kind_of_name = function
  | "uninit-read" -> Some Uninit_read
  | "dead-store" -> Some Dead_store
  | "unreachable" -> Some Unreachable
  | _ -> None

type finding = { kind : kind; file : string; line : int; col : int; msg : string }

let finding_to_string f =
  Printf.sprintf "%s:%d:%d: %s: %s" f.file f.line f.col (kind_name f.kind) f.msg

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json f =
  Printf.sprintf {|{"kind":"%s","file":"%s","line":%d,"col":%d,"msg":"%s"}|}
    (kind_name f.kind) (json_escape f.file) f.line f.col (json_escape f.msg)

(** [`Fail] makes a finding a compile error, [`Warn] (the default) records
    it in [collected] for the driver/CLI to report, [`Off] skips the pass. *)
let mode : [ `Fail | `Warn | `Off ] ref = ref `Warn

exception Failed of finding list

let collected : finding list ref = ref []
let collected_cap = 1000

(** Take (and clear) the findings accumulated under [`Warn]. *)
let take () =
  let fs = List.rev !collected in
  collected := [];
  fs

(* --- tracked variables ------------------------------------------------------- *)

type var = Voff of int | Vreg of int  (** frame slot / register variable *)

let max_tracked = 60 (* state sets are bit masks in one native int *)

(** Named locals of a function, found by walking the uplink chains of its
    stopping points (the same walk the debugger's name resolution does). *)
let named_locals (fd : Sym.func_debug) : (var * string) list =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec chain = function
    | None -> ()
    | Some (s : Sym.t) ->
        if not (Hashtbl.mem seen s.Sym.sid) then begin
          Hashtbl.replace seen s.Sym.sid ();
          (match (s.Sym.kind, s.Sym.where) with
          | Sym.Kvar, Some (Sym.Frame off) when off < 0 -> acc := (Voff off, s.Sym.sym_name) :: !acc
          | Sym.Kvar, Some (Sym.In_reg r) -> acc := (Vreg r, s.Sym.sym_name) :: !acc
          | _ -> ());
          chain s.Sym.uplink
        end
  in
  List.iter (fun (sp : Sym.stop_point) -> chain sp.Sym.sp_scope) fd.Sym.fd_stops;
  List.rev !acc

(** Frame offsets that escape: any occurrence of [Addrl off] other than the
    address of a direct scalar load or store means the address is taken (or
    the slot holds an aggregate), so the slot cannot be tracked. *)
let escaped_offsets (body : Ir.stmt list) : (int, unit) Hashtbl.t =
  let escaped = Hashtbl.create 16 in
  let rec exp (e : Ir.exp) =
    match e with
    | Ir.Indir (t, Ir.Addrl off) -> if t = Ir.V then Hashtbl.replace escaped off ()
    | Ir.Asgn (t, Ir.Addrl off, v) ->
        if t = Ir.V then Hashtbl.replace escaped off ();
        exp v
    | Ir.Addrl off -> Hashtbl.replace escaped off ()
    | Ir.Cnst _ | Ir.Cnstf _ | Ir.Addrg _ | Ir.Reguse _ -> ()
    | Ir.Indir (_, a) -> exp a
    | Ir.Bin (_, _, a, b) | Ir.Cmp (_, _, a, b) -> exp a; exp b
    | Ir.Cvt (_, _, a) | Ir.Regasgn (_, a) -> exp a
    | Ir.Asgn (_, a, v) -> exp a; exp v
    | Ir.Call (_, _, args) -> List.iter exp args
    | Ir.Callind (_, f, args) -> exp f; List.iter exp args
  in
  List.iter
    (function
      | Ir.Sexp e -> exp e
      | Ir.Scjump (_, _, a, b, _) -> exp a; exp b
      | Ir.Sret (Some e) -> exp e
      | Ir.Sret None | Ir.Slabel _ | Ir.Sjump _ | Ir.Sstop _ -> ())
    body;
  escaped

(* --- the analysis ------------------------------------------------------------- *)

let check_func ~(file : string) (fi : Sema.func_ir) : finding list =
  match fi.Sema.fi_debug with
  | None -> []
  | Some fd ->
      let stmts = Array.of_list fi.Sema.fi_body in
      let n = Array.length stmts in
      if n = 0 then []
      else begin
        let findings = ref [] in
        let stop_pos = Hashtbl.create 16 in
        List.iter
          (fun (sp : Sym.stop_point) -> Hashtbl.replace stop_pos sp.Sym.sp_id sp.Sym.sp_pos)
          fd.Sym.fd_stops;
        let exit_stop_id =
          List.fold_left (fun m (sp : Sym.stop_point) -> max m sp.Sym.sp_id) (-1)
            fd.Sym.fd_stops
        in
        (* position of the nearest preceding stopping point, per statement *)
        let pos_at = Array.make n fd.Sym.fd_sym.Sym.spos in
        let cur = ref fd.Sym.fd_sym.Sym.spos in
        Array.iteri
          (fun i s ->
            (match s with
            | Ir.Sstop (id, _) -> (
                match Hashtbl.find_opt stop_pos id with Some p -> cur := p | None -> ())
            | _ -> ());
            pos_at.(i) <- !cur)
          stmts;
        let report kind i msg =
          let p = pos_at.(i) in
          findings := { kind; file; line = p.Lex.line; col = p.Lex.col; msg } :: !findings
        in

        (* control flow *)
        let label_at = Hashtbl.create 16 in
        Array.iteri
          (fun i s -> match s with Ir.Slabel l -> Hashtbl.replace label_at l i | _ -> ())
          stmts;
        let succs i =
          match stmts.(i) with
          | Ir.Sjump l -> (match Hashtbl.find_opt label_at l with Some j -> [ j ] | None -> [])
          | Ir.Scjump (_, _, _, _, l) ->
              let fall = if i + 1 < n then [ i + 1 ] else [] in
              (match Hashtbl.find_opt label_at l with Some j -> j :: fall | None -> fall)
          | Ir.Sret _ -> []
          | _ -> if i + 1 < n then [ i + 1 ] else []
        in
        let preds = Array.make n [] in
        Array.iteri (fun i _ -> List.iter (fun j -> preds.(j) <- i :: preds.(j)) (succs i)) stmts;

        (* reachability, and the unreachable-stopping-point check *)
        let reachable = Array.make n false in
        let rec dfs i =
          if not reachable.(i) then begin
            reachable.(i) <- true;
            List.iter dfs (succs i)
          end
        in
        dfs 0;
        Array.iteri
          (fun i s ->
            match s with
            | Ir.Sstop (id, _) when (not reachable.(i)) && id <> exit_stop_id ->
                report Unreachable i
                  (Printf.sprintf
                     "stopping point in %s can never be reached (a breakpoint here would never hit)"
                     fi.Sema.fi_name)
            | _ -> ())
          stmts;

        (* tracked variable set *)
        let escaped = escaped_offsets fi.Sema.fi_body in
        let vars =
          List.filteri (fun i _ -> i < max_tracked)
            (List.filter
               (fun (v, _) -> match v with Voff off -> not (Hashtbl.mem escaped off) | Vreg _ -> true)
               (named_locals fd))
        in
        let nvars = List.length vars in
        let var_index = Hashtbl.create 16 in
        List.iteri (fun i (v, _) -> Hashtbl.replace var_index v i) vars;
        let var_name i = snd (List.nth vars i) in
        let idx_of v = Hashtbl.find_opt var_index v in
        if nvars = 0 then List.rev !findings
        else begin
          let all_mask = (1 lsl nvars) - 1 in

          (* forward may-uninitialized: bit set = possibly uninitialized.
             [transfer] threads the state through one statement in
             evaluation order; [on_read] sees each tracked read with the
             state at that moment. *)
          let transfer ?(on_read = fun _ _ -> ()) (s0 : int) (stmt : Ir.stmt) : int =
            let state = ref s0 in
            let read v = match idx_of v with
              | Some i -> on_read i !state
              | None -> ()
            in
            let write v = match idx_of v with
              | Some i -> state := !state land lnot (1 lsl i)
              | None -> ()
            in
            let rec exp (e : Ir.exp) =
              match e with
              | Ir.Indir (_, Ir.Addrl off) -> read (Voff off)
              | Ir.Reguse r -> read (Vreg r)
              | Ir.Asgn (_, Ir.Addrl off, v) -> exp v; write (Voff off)
              | Ir.Regasgn (r, v) -> exp v; write (Vreg r)
              | Ir.Asgn (_, a, v) -> exp a; exp v
              | Ir.Indir (_, a) -> exp a
              | Ir.Bin (_, _, a, b) | Ir.Cmp (_, _, a, b) -> exp a; exp b
              | Ir.Cvt (_, _, a) -> exp a
              | Ir.Call (_, _, args) -> List.iter exp args
              | Ir.Callind (_, f, args) -> exp f; List.iter exp args
              | Ir.Cnst _ | Ir.Cnstf _ | Ir.Addrg _ | Ir.Addrl _ -> ()
            in
            (match stmt with
            | Ir.Sexp e -> exp e
            | Ir.Scjump (_, _, a, b, _) -> exp a; exp b
            | Ir.Sret (Some e) -> exp e
            | Ir.Sret None | Ir.Slabel _ | Ir.Sjump _ | Ir.Sstop _ -> ());
            !state
          in
          let in_state = Array.make n (-1) (* -1: not yet visited *) in
          in_state.(0) <- all_mask;
          let work = Queue.create () in
          Queue.add 0 work;
          while not (Queue.is_empty work) do
            let i = Queue.pop work in
            let out = transfer in_state.(i) stmts.(i) in
            List.iter
              (fun j ->
                let nw = if in_state.(j) = -1 then out else in_state.(j) lor out in
                if nw <> in_state.(j) then begin
                  in_state.(j) <- nw;
                  Queue.add j work
                end)
              (succs i)
          done;
          let reported = Hashtbl.create 16 in
          Array.iteri
            (fun i stmt ->
              if in_state.(i) <> -1 then
                ignore
                  (transfer
                     ~on_read:(fun v st ->
                       if st land (1 lsl v) <> 0 && not (Hashtbl.mem reported (i, v)) then begin
                         Hashtbl.replace reported (i, v) ();
                         report Uninit_read i
                           (Printf.sprintf "%s may be read before it is assigned" (var_name v))
                       end)
                     in_state.(i) stmt))
            stmts;

          (* backward liveness: bit set = value may still be read *)
          let gens = Array.make n 0 and kills = Array.make n 0 in
          Array.iteri
            (fun i stmt ->
              let g = ref 0 and k = ref 0 in
              ignore
                (transfer ~on_read:(fun v _ -> g := !g lor (1 lsl v)) all_mask stmt);
              let rec kexp (e : Ir.exp) =
                match e with
                | Ir.Asgn (_, Ir.Addrl off, v) ->
                    (match idx_of (Voff off) with Some x -> k := !k lor (1 lsl x) | None -> ());
                    kexp v
                | Ir.Regasgn (r, v) ->
                    (match idx_of (Vreg r) with Some x -> k := !k lor (1 lsl x) | None -> ());
                    kexp v
                | Ir.Asgn (_, a, v) -> kexp a; kexp v
                | Ir.Indir (_, a) -> kexp a
                | Ir.Bin (_, _, a, b) | Ir.Cmp (_, _, a, b) -> kexp a; kexp b
                | Ir.Cvt (_, _, a) -> kexp a
                | Ir.Call (_, _, args) -> List.iter kexp args
                | Ir.Callind (_, f, args) -> kexp f; List.iter kexp args
                | Ir.Cnst _ | Ir.Cnstf _ | Ir.Addrg _ | Ir.Addrl _ | Ir.Reguse _ -> ()
              in
              (match stmt with
              | Ir.Sexp e -> kexp e
              | Ir.Scjump (_, _, a, b, _) -> kexp a; kexp b
              | Ir.Sret (Some e) -> kexp e
              | Ir.Sret None | Ir.Slabel _ | Ir.Sjump _ | Ir.Sstop _ -> ());
              gens.(i) <- !g;
              kills.(i) <- !k)
            stmts;
          let live_in = Array.make n 0 in
          let work = Queue.create () in
          Array.iteri (fun i _ -> Queue.add i work) stmts;
          while not (Queue.is_empty work) do
            let i = Queue.pop work in
            let out = List.fold_left (fun acc j -> acc lor live_in.(j)) 0 (succs i) in
            let nw = gens.(i) lor (out land lnot kills.(i)) in
            if nw <> live_in.(i) then begin
              live_in.(i) <- nw;
              List.iter (fun p -> Queue.add p work) preds.(i)
            end
          done;
          Array.iteri
            (fun i _ ->
              if in_state.(i) <> -1 && kills.(i) <> 0 then begin
                let out = List.fold_left (fun acc j -> acc lor live_in.(j)) 0 (succs i) in
                List.iteri
                  (fun v _ ->
                    if kills.(i) land (1 lsl v) <> 0 && out land (1 lsl v) = 0
                       && gens.(i) land (1 lsl v) = 0 then
                      report Dead_store i
                        (Printf.sprintf "value stored to %s is never read" (var_name v)))
                  vars
              end)
            stmts;
          List.rev !findings
        end
      end

let check_unit ~(file : string) (ui : Sema.unit_ir) : finding list =
  List.concat_map (fun fi -> check_func ~file fi) ui.Sema.ui_funcs

(** Compiler hook: honour [mode].  Called by [Compile.compile]. *)
let run ~(file : string) (ui : Sema.unit_ir) : unit =
  match !mode with
  | `Off -> ()
  | m -> (
      match check_unit ~file ui with
      | [] -> ()
      | fs when m = `Fail -> raise (Failed fs)
      | fs ->
          if List.length !collected < collected_cap then collected := List.rev_append fs !collected)
