(** dbx-style "stabs": the machine-dependent binary symbol-table format
    that production compilers emit (Sec. 2, Sec. 7).

    This emitter exists for the baselines: the stabs debugger
    (lib/stabsdbg) consumes it, and the T5 experiment compares its size
    against the PostScript symbol tables (the paper reports PostScript ~9x
    larger, ~2x after compression).

    Format (little-endian, deliberately compact like a.out stabs):
    each record is
      type:u8  desc:u16  value:u32  nstr:u16  bytes[nstr]
    with the classic stab types. *)

open Ldb_machine

let n_so = 0x64  (* source file *)
let n_fun = 0x24 (* function *)
let n_gsym = 0x20 (* global *)
let n_stsym = 0x26 (* static *)
let n_lsym = 0x80 (* stack local *)
let n_psym = 0xa0 (* parameter *)
let n_rsym = 0x40 (* register variable *)
let n_sline = 0x44 (* line number / stopping point *)
let n_valid = 0x90 (* per-variable validity ranges over stop indexes *)

(** The desc field is a u16, so a source line past 65535 cannot be
    represented — a real limitation of the stabs format that the PostScript
    tables do not share.  Instead of silently emitting [line mod 65536]
    (which would send the debugger to a wildly wrong line), clamp to the
    maximum and record a diagnostic; dbgcheck's differential pass reports
    the clamp when the two views of the module disagree. *)
let clamp_diagnostics : string list ref = ref []

let max_desc = 0xffff

let clamp_desc ~what desc =
  if desc >= 0 && desc <= max_desc then desc
  else begin
    clamp_diagnostics :=
      Printf.sprintf "%s: line %d does not fit the u16 stabs desc field; clamped to %d" what
        desc max_desc
      :: !clamp_diagnostics;
    if desc < 0 then 0 else max_desc
  end

let add_record buf ~ty ~desc ~value ~str =
  Buffer.add_char buf (Char.chr (ty land 0xff));
  Buffer.add_char buf (Char.chr (desc land 0xff));
  Buffer.add_char buf (Char.chr ((desc lsr 8) land 0xff));
  let v = Int32.of_int value in
  for i = 0 to 3 do
    Buffer.add_char buf
      (Char.chr (Int32.to_int (Int32.shift_right_logical v (8 * i)) land 0xff))
  done;
  let n = String.length str in
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_string buf str

(* dbx-style type codes packed into the name string: "name:code" *)
let rec type_code (arch : Arch.t) (t : Ctype.t) : string =
  match t with
  | Ctype.Void -> "v"
  | Ctype.Char -> "c"
  | Ctype.Short -> "s"
  | Ctype.Int -> "i"
  | Ctype.Unsigned -> "u"
  | Ctype.Float -> "f"
  | Ctype.Double -> "d"
  | Ctype.LongDouble -> if Arch.equal arch M68k then "x" else "d"
  | Ctype.Ptr t -> "*" ^ type_code arch t
  | Ctype.Array (t, n) -> Printf.sprintf "a%d,%s" n (type_code arch t)
  | Ctype.Struct sd -> "S" ^ sd.Ctype.sname
  | Ctype.Func (r, _) -> "F" ^ type_code arch r

let sym_value (s : Sym.t) =
  match s.Sym.where with
  | Some (Sym.In_reg r) -> r
  | Some (Sym.Frame off) -> off
  | Some (Sym.Anchored idx) -> idx
  | Some (Sym.Global _) | None -> 0

let sym_stab_type (s : Sym.t) =
  match (s.Sym.kind, s.Sym.where) with
  | Sym.Kfunc, _ -> n_fun
  | _, Some (Sym.In_reg _) -> n_rsym
  | Sym.Kparam, _ -> n_psym
  | _, Some (Sym.Anchored _) -> n_stsym
  | _, Some (Sym.Global _) -> n_gsym
  | _, _ -> n_lsym

let emit_sym buf arch (s : Sym.t) =
  add_record buf ~ty:(sym_stab_type s)
    ~desc:(clamp_desc ~what:s.Sym.sym_name s.Sym.spos.Lex.line)
    ~value:(sym_value s)
    ~str:(s.Sym.sym_name ^ ":" ^ type_code arch s.Sym.sym_ty)

(** Serialize a unit's debug information as binary stabs. *)
let emit_unit (ud : Sym.unit_debug) : string =
  let buf = Buffer.create 1024 in
  let arch = ud.Sym.ud_arch in
  add_record buf ~ty:n_so ~desc:0 ~value:0 ~str:ud.Sym.ud_name;
  List.iter (emit_sym buf arch) ud.Sym.ud_statics;
  List.iter (emit_sym buf arch) ud.Sym.ud_globals;
  List.iter
    (fun (fd : Sym.func_debug) ->
      emit_sym buf arch fd.Sym.fd_sym;
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (sp : Sym.stop_point) ->
          (* locals visible at each stopping point, once each *)
          let rec chain = function
            | None -> ()
            | Some (s : Sym.t) ->
                if not (Hashtbl.mem seen s.Sym.sid) then begin
                  Hashtbl.replace seen s.Sym.sid ();
                  emit_sym buf arch s;
                  chain s.Sym.uplink
                end
          in
          chain sp.Sym.sp_scope;
          add_record buf ~ty:n_sline
            ~desc:(clamp_desc ~what:fd.Sym.fd_label sp.Sym.sp_pos.Lex.line)
            ~value:sp.Sym.sp_anchor ~str:"")
        fd.Sym.fd_stops;
      (* compiler-proven validity ranges, one n_valid record per tracked
         local: str = "name:lo-hi=f,...", f in {u,v,d}; value carries the
         variable's frame offset or register so same-named locals stay
         distinguishable; desc is the range count *)
      List.iter
        (fun (s : Sym.t) ->
          if s.Sym.validity <> [] then
            add_record buf ~ty:n_valid
              ~desc:(List.length s.Sym.validity)
              ~value:(sym_value s)
              ~str:
                (s.Sym.sym_name ^ ":"
                ^ String.concat ","
                    (List.map
                       (fun (lo, hi, f) ->
                         Printf.sprintf "%d-%d=%c" lo hi
                           (match f with 0 -> 'u' | 1 -> 'v' | 2 -> 'd' | _ -> '?'))
                       s.Sym.validity)))
        fd.Sym.fd_locals)
    ud.Sym.ud_funcs;
  Buffer.contents buf
